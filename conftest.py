"""Repository-wide pytest configuration.

Registers the ``perf`` marker for performance micro-benchmarks (e.g.
``benchmarks/test_perf_sampling.py``).  Perf benchmarks are *skipped* by
default so the tier-1 ``pytest -x -q`` run stays fast; opt in with::

    pytest -m perf benchmarks/test_perf_sampling.py

or by setting ``CHATFUZZ_RUN_PERF=1``.
"""

from __future__ import annotations

import os

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "perf: performance micro-benchmark; skipped unless selected with "
        "-m perf or CHATFUZZ_RUN_PERF=1",
    )


def pytest_collection_modifyitems(config, items):
    if os.environ.get("CHATFUZZ_RUN_PERF", "").lower() in ("1", "true", "yes"):
        return
    if "perf" in (getattr(config.option, "markexpr", "") or ""):
        return
    skip = pytest.mark.skip(
        reason="perf micro-benchmark; run with -m perf or CHATFUZZ_RUN_PERF=1"
    )
    for item in items:
        if "perf" in item.keywords:
            item.add_marker(skip)
