"""Repository-wide pytest configuration.

Registers the ``perf`` marker for performance micro-benchmarks (e.g.
``benchmarks/test_perf_sampling.py``, ``benchmarks/test_perf_harness.py``).
Perf benchmarks are *skipped* by default so the tier-1 ``pytest -x -q`` run
stays fast; opt in with any of::

    pytest --runperf benchmarks/
    pytest -m perf benchmarks/test_perf_sampling.py
    CHATFUZZ_RUN_PERF=1 pytest benchmarks/
"""

from __future__ import annotations

import os

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--runperf",
        action="store_true",
        default=False,
        help="run perf-marked micro-benchmarks (default: skipped)",
    )


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "perf: performance micro-benchmark; skipped unless selected with "
        "--runperf, -m perf or CHATFUZZ_RUN_PERF=1",
    )


def _perf_enabled(config) -> bool:
    if config.getoption("--runperf"):
        return True
    if os.environ.get("CHATFUZZ_RUN_PERF", "").lower() in ("1", "true", "yes"):
        return True
    return "perf" in (getattr(config.option, "markexpr", "") or "")


def pytest_collection_modifyitems(config, items):
    if _perf_enabled(config):
        return
    skip = pytest.mark.skip(
        reason="perf micro-benchmark; run with --runperf, -m perf or "
        "CHATFUZZ_RUN_PERF=1"
    )
    for item in items:
        if "perf" in item.keywords:
            item.add_marker(skip)


def pytest_terminal_summary(terminalreporter):
    """After a perf run: one line per benchmark artifact written.

    The registry lives in ``benchmarks.conftest`` (the module the
    benchmarks import ``write_bench_json`` from); it is only populated when
    perf benchmarks actually ran.
    """
    import sys

    bench_conftest = sys.modules.get("benchmarks.conftest")
    lines = getattr(bench_conftest, "_BENCH_SUMMARY", None)
    if not lines:
        return
    terminalreporter.section("benchmark artifacts")
    for line in lines:
        terminalreporter.write_line(line)
