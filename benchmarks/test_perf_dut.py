"""PERF-DUT — DUT-model throughput, scalar vs batched numpy lanes.

The DUT half of the differential step was the dominant serial cost once the
golden ISS went vectorised (PERF-GOLDEN): ``RocketCore`` stepped
instruction-by-instruction while the golden side ran lockstep lanes.  This
micro-benchmark pins the batched structure-of-arrays DUT engine's
advantage: a fixed batch of random test programs is executed by the scalar
``RocketCore`` and by ``DutBatchSimulator`` across a lane-width ladder
(8/32/128), measuring tests/sec on identical work — bit-identical traces
*and* coverage reports, in fact (see ``tests/soc/test_batch.py``).

Results go to ``BENCH_dut.json`` and ``bench_results.txt``.  Marked
``perf``: run with ``pytest --runperf benchmarks/test_perf_dut.py``.

Timing takes the best of ``REPEATS`` runs per configuration: the engines
are single-threaded pure compute, so minimum wall-clock is the measurement
least polluted by scheduler noise on shared machines.  The acceptance gate
(>= 2x somewhere on the ladder at width >= 32) sits well under the quiet-
machine headroom (~8x at 128 lanes) for the same reason; the DUT engine
clears the golden engine's ratios because its scalar baseline also pays
per-step coverage recording, which the batch folds into vectorised ORs.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import emit, write_bench_json
from repro.analysis.report import format_table
from repro.baselines.random_regression import RandomRegressionGenerator
from repro.soc.batch import DutBatchSimulator
from repro.soc.harness import build_program
from repro.soc.rocket.core import RocketCore

#: Bench workload: one program per lane at the widest rung.
BATCH = 128
BODY_INSTRUCTIONS = 48
LANE_WIDTHS = (8, 32, 128)
REPEATS = 5


def _fixed_programs() -> list[list[int]]:
    generator = RandomRegressionGenerator(
        body_instructions=BODY_INSTRUCTIONS, seed=0
    )
    return [build_program(list(test.words))
            for test in generator.generate_batch(BATCH)]


def _best_of(run, n_tests: int) -> float:
    run()  # warm-up: decode-meta/arm-table/cond-block caches
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
    return n_tests / best


@pytest.mark.perf
def test_dut_tests_per_sec():
    programs = _fixed_programs()

    scalar = RocketCore()
    scalar_tps = _best_of(
        lambda: [scalar.run(p) for p in programs], len(programs)
    )

    lane_tps: dict[int, float] = {}
    for lanes in LANE_WIDTHS:
        sim = DutBatchSimulator(lanes=lanes)
        lane_tps[lanes] = _best_of(
            lambda: sim.run_batch(programs), len(programs)
        )

    record = {
        "benchmark": "dut_tests_per_sec",
        "batch": BATCH,
        "body_instructions": BODY_INSTRUCTIONS,
        "scalar_tests_per_sec": round(scalar_tps, 1),
        "lanes": {
            str(n): {
                "tests_per_sec": round(tps, 1),
                "speedup": round(tps / scalar_tps, 2),
            }
            for n, tps in lane_tps.items()
        },
    }
    best_n = max(lane_tps, key=lane_tps.get)
    best_ratio = lane_tps[best_n] / scalar_tps
    headline = f"batched {best_ratio:.2f}x at {best_n} lanes"
    write_bench_json("BENCH_dut.json", record, headline=headline)

    rows = [["scalar", f"{scalar_tps:.1f}", "1.00x"]]
    rows += [[f"{n} lanes", f"{tps:.1f}", f"{tps / scalar_tps:.2f}x"]
             for n, tps in lane_tps.items()]
    emit(format_table(
        ["engine", "tests/sec", "speedup"], rows,
        title=(
            f"PERF-DUT: DUT throughput, batch {BATCH} x "
            f"{BODY_INSTRUCTIONS} instr"
        ),
    ))

    # Acceptance: >= 2x scalar somewhere on the ladder at width >= 32.
    gate = max(lane_tps[n] / scalar_tps for n in LANE_WIDTHS if n >= 32)
    assert gate >= 2.0, f"best >=32-lane speedup {gate:.2f}x under the 2x gate"
