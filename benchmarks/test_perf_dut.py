"""PERF-DUT — DUT-model throughput, scalar vs batched numpy lanes.

The DUT half of the differential step was the dominant serial cost once the
golden ISS went vectorised (PERF-GOLDEN): the scalar cores stepped
instruction-by-instruction while the golden side ran lockstep lanes.  This
micro-benchmark pins the batched structure-of-arrays DUT engines'
advantage, parametrised over every core kind with a batch engine in
``ENGINE_REGISTRY`` (Rocket's ``DutBatchSimulator``, BOOM's
``BoomBatchSimulator``): a fixed batch of random test programs is executed
by the scalar core and by the batch engine across a lane-width ladder
(8/32/128), measuring tests/sec on identical work — bit-identical traces
*and* coverage reports, in fact (see ``tests/soc/test_batch.py`` and
``tests/soc/test_batch_boom.py``).

Each parametrisation merges its ladder into the shared ``BENCH_dut.json``
under ``cores.<kind>``, so one artifact carries the whole matrix; rungs
that fall under scalar break-even are annotated rather than hidden.  Also
emitted to ``bench_results.txt``.  Marked ``perf``: run with ``pytest
--runperf benchmarks/test_perf_dut.py``.

Timing takes the best of ``REPEATS`` runs per configuration: the engines
are single-threaded pure compute (the lane width is a batch size, not
parallelism — everything here runs on one core), so minimum wall-clock is
the measurement least polluted by scheduler noise on shared machines.  The
acceptance gate (>= 2x somewhere on the ladder at width >= 32, per kind)
sits well under the quiet-machine headroom for the same reason.  BOOM
clears it on the back of the analytic clean-handler fast-forward: random
bodies are trap-chain-heavy, and collapsing each six-instruction handler
pass into one vectorised step removes most of the rounds the lockstep
ladder would otherwise spend on untraced handler commits.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from benchmarks.conftest import emit, write_bench_json
from repro.analysis.report import format_table
from repro.baselines.random_regression import RandomRegressionGenerator
from repro.soc.harness import ENGINE_REGISTRY, build_program, resolve_engine

#: Bench workload: one program per lane at the widest rung.
BATCH = 128
BODY_INSTRUCTIONS = 48
LANE_WIDTHS = (8, 32, 128)
REPEATS = 5

#: Every registered kind that declares a batch engine rides the ladder.
BATCHED_KINDS = tuple(
    kind for kind in ENGINE_REGISTRY if resolve_engine(kind).batch_cls
)


def _fixed_programs() -> list[list[int]]:
    generator = RandomRegressionGenerator(
        body_instructions=BODY_INSTRUCTIONS, seed=0
    )
    return [build_program(list(test.words))
            for test in generator.generate_batch(BATCH)]


def _best_of(run, n_tests: int) -> float:
    run()  # warm-up: decode-meta/arm-table/cond-block caches
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
    return n_tests / best


def _merge_record(kind: str, entry: dict) -> tuple[dict, str]:
    """Fold one kind's ladder into the shared multi-core record.

    ``write_bench_json`` replaces the artifact wholesale, so the previous
    record's other cores are read back and carried over — each
    parametrisation refreshes only its own ``cores.<kind>`` entry.
    """
    path = Path(__file__).resolve().parent.parent / "BENCH_dut.json"
    cores: dict = {}
    if path.exists():
        prior = json.loads(path.read_text())
        cores = prior.get("cores", {})
    cores[kind] = entry
    record = {
        "benchmark": "dut_tests_per_sec",
        "batch": BATCH,
        "body_instructions": BODY_INSTRUCTIONS,
        "note": ("single-threaded pure compute: lane width is batch size,"
                 " not parallelism"),
        "cores": {k: cores[k] for k in sorted(cores)},
    }
    parts = []
    for k in sorted(cores):
        ladder = cores[k]["lanes"]
        best_n = max(ladder, key=lambda n: ladder[n]["tests_per_sec"])
        parts.append(f"{k} {ladder[best_n]['speedup']:.2f}x at {best_n} lanes")
    return record, "batched " + ", ".join(parts)


@pytest.mark.perf
@pytest.mark.parametrize("kind", BATCHED_KINDS)
def test_dut_tests_per_sec(kind):
    engine = resolve_engine(kind)
    programs = _fixed_programs()

    scalar = engine.core_cls()
    scalar_tps = _best_of(
        lambda: [scalar.run(p) for p in programs], len(programs)
    )

    lane_tps: dict[int, float] = {}
    for lanes in LANE_WIDTHS:
        sim = engine.batch_cls(lanes=lanes)
        lane_tps[lanes] = _best_of(
            lambda: sim.run_batch(programs), len(programs)
        )

    entry = {
        "scalar_tests_per_sec": round(scalar_tps, 1),
        "lanes": {
            str(n): {
                "tests_per_sec": round(tps, 1),
                "speedup": round(tps / scalar_tps, 2),
                **({"below_break_even": True} if tps < scalar_tps else {}),
            }
            for n, tps in lane_tps.items()
        },
    }
    record, headline = _merge_record(kind, entry)
    write_bench_json("BENCH_dut.json", record, headline=headline)

    rows = [["scalar", f"{scalar_tps:.1f}", "1.00x"]]
    rows += [[f"{n} lanes", f"{tps:.1f}", f"{tps / scalar_tps:.2f}x"]
             for n, tps in lane_tps.items()]
    emit(format_table(
        ["engine", "tests/sec", "speedup"], rows,
        title=(
            f"PERF-DUT[{kind}]: DUT throughput, batch {BATCH} x "
            f"{BODY_INSTRUCTIONS} instr"
        ),
    ))

    # Acceptance: >= 2x scalar somewhere on the ladder at width >= 32.
    gate = max(lane_tps[n] / scalar_tps for n in LANE_WIDTHS if n >= 32)
    assert gate >= 2.0, (
        f"{kind}: best >=32-lane speedup {gate:.2f}x under the 2x gate")
