"""FIG2 — condition coverage over time, RocketCore (paper Figure 2).

The paper plots ChatFuzz and TheHuzz condition coverage across 24 hours of
fuzzing: ChatFuzz rises steeply to ~75% within the first hour and plateaus
near 79%, while TheHuzz climbs slowly toward ~77%.  This bench reruns both
campaigns on the RocketCore model, maps test counts onto the paper's time
axis with the calibrated SimClock, and prints the two series.
"""

from benchmarks.conftest import bench_executor, emit, scaled
from repro.analysis.report import format_table
from repro.baselines.thehuzz import TheHuzzGenerator
from repro.fuzzing.campaign import Campaign
from repro.fuzzing.chatfuzz import FuzzLoop
from repro.soc.harness import rocket_harness_factory


def _run_campaigns(chatfuzz, n_tests):
    results = {}
    for name, generator in [
        ("ChatFuzz", chatfuzz.generator(seed=101)),
        ("TheHuzz", TheHuzzGenerator(body_instructions=24, seed=7)),
    ]:
        # CHATFUZZ_BENCH_WORKERS shards simulation over a worker pool;
        # curves are identical to serial either way (executor parity).
        loop = FuzzLoop(generator, rocket_harness_factory(), batch_size=20,
                        executor=bench_executor())
        with Campaign(loop, name) as campaign:
            results[name] = campaign.run_tests(n_tests)
    return results


def test_fig2_coverage_over_time(benchmark, chatfuzz):
    n_tests = scaled(500)
    results = benchmark.pedantic(
        _run_campaigns, args=(chatfuzz, n_tests), rounds=1, iterations=1
    )
    # Sample both series at the same simulated-time points.
    fractions = (0.1, 0.25, 0.5, 0.75, 1.0)
    total = results["ChatFuzz"].curve[-1].tests
    rows = []
    for fraction in fractions:
        at = int(total * fraction)
        chat = results["ChatFuzz"].coverage_at_tests(at)
        huzz = results["TheHuzz"].coverage_at_tests(at)
        hours = results["ChatFuzz"].curve[-1].sim_hours * fraction
        rows.append([at, f"{hours:.2f}", f"{chat:.2f}", f"{huzz:.2f}"])
    emit(format_table(
        ["tests", "sim-hours", "ChatFuzz cov%", "TheHuzz cov%"], rows,
        title=f"FIG2: coverage over time, RocketCore ({n_tests} tests/fuzzer)\n"
              "paper shape: ChatFuzz rises fast to ~75-79%, TheHuzz trails",
    ))
    chat_final = results["ChatFuzz"].final_coverage_percent
    huzz_final = results["TheHuzz"].final_coverage_percent
    # Shape assertions: ChatFuzz dominates at every sampled point.
    for fraction in fractions:
        at = int(total * fraction)
        assert (results["ChatFuzz"].coverage_at_tests(at)
                >= results["TheHuzz"].coverage_at_tests(at) - 0.5), fraction
    assert chat_final > huzz_final
