"""E-DIFU — baseline ordering (paper §I context claims).

"TheHuzz exhibits greater efficiency compared to random regression
techniques and is approximately **3.33x swifter** than DifuzzRTL."  The
bench races TheHuzz, DifuzzRTL (same engine, control-register-only feedback)
and random regression to a common coverage target and reports the simulated
time each one needed.
"""

from benchmarks.conftest import emit, scaled
from repro.analysis.report import format_table
from repro.baselines.difuzzrtl import DifuzzRTLGenerator
from repro.baselines.random_regression import RandomRegressionGenerator
from repro.baselines.thehuzz import TheHuzzGenerator
from repro.fuzzing.campaign import Campaign
from repro.fuzzing.chatfuzz import FuzzLoop
from repro.soc.harness import make_rocket_harness


def _race(target, max_tests):
    outcomes = {}
    for name in ("TheHuzz", "DifuzzRTL", "random"):
        harness = make_rocket_harness()
        if name == "TheHuzz":
            generator = TheHuzzGenerator(body_instructions=24, seed=37)
        elif name == "DifuzzRTL":
            generator = DifuzzRTLGenerator.for_core(
                harness.core, body_instructions=24, seed=37)
        else:
            generator = RandomRegressionGenerator(body_instructions=24, seed=37)
        loop = FuzzLoop(generator, harness, batch_size=20)
        result = Campaign(loop, name).run_to_coverage(target, max_tests)
        outcomes[name] = result
    return outcomes


def _fuzz_hours(result, target):
    """Simulated fuzzing time to target, excluding the one-time elaboration
    cost (the paper's throughput comparison is about the fuzzing itself)."""
    total = result.time_to_coverage(target)
    if total is None:
        return None
    from repro.fuzzing.simclock import DEFAULT_ELAB_SECONDS

    return max(total - DEFAULT_ELAB_SECONDS / 3600.0, 1e-9)


def test_baseline_comparison(benchmark):
    target = 71.0
    max_tests = scaled(1200)
    outcomes = benchmark.pedantic(_race, args=(target, max_tests),
                                  rounds=1, iterations=1)
    rows = []
    for name, result in outcomes.items():
        hours = _fuzz_hours(result, target)
        rows.append([
            name,
            f"{result.final_coverage_percent:.2f}",
            str(result.tests_run),
            f"{hours:.3f} h" if hours else f"not reached @ {result.tests_run}",
        ])
    the_huzz = _fuzz_hours(outcomes["TheHuzz"], target)
    difuzz = _fuzz_hours(outcomes["DifuzzRTL"], target)
    if the_huzz and difuzz:
        rows.append(["TheHuzz vs DifuzzRTL", "", "",
                     f"{difuzz / the_huzz:.2f}x (paper ~3.33x)"])
    emit(format_table(
        ["fuzzer", "final cov%", "tests", f"fuzz-time to {target}%"],
        rows,
        title="E-DIFU: coverage-guided baselines race, RocketCore "
              "(times exclude the one-off elaboration cost)",
    ))
    # Ordering: the paper's claim is TheHuzz >= DifuzzRTL.  Tolerate noise
    # in absolute times but require TheHuzz not to lose.
    assert the_huzz is not None, "TheHuzz failed to reach the target"
    if difuzz is not None:
        assert the_huzz <= difuzz * 1.15
