"""PERF-FLEET — whole-fleet campaign throughput and dispatch utilisation.

Two scaling claims live here:

1. **Campaign sharding** (PR 4): N independent campaigns (the paper's
   fuzzer-comparison shape) spread over campaign workers.  A fixed
   four-arm TheHuzz fleet runs to a fixed budget in-process (the serial
   baseline) and with 1/2/4 campaign workers, measuring end-to-end fleet
   tests/sec — including per-worker campaign construction (harness
   elaboration), a real per-campaign cost the pool pays in parallel.
2. **Streaming dispatch** (PR 5): with a budget scheduler in play, round
   mode makes every round wait for its slowest slice, so heterogeneous
   arms leave workers idle at the barrier.  The same fleet — made
   deliberately skewed via per-arm body lengths — runs scheduled in both
   modes at each worker count, recording tests/sec *and* worker
   utilisation (worker-side busy seconds / (wall seconds x slots), from
   :class:`repro.fuzzing.fleet.FleetStats`) so the streaming win is
   attributable to reclaimed barrier idle time rather than noise.
3. **Fault-tolerance overhead** (PR 6): retry/requeue, timeouts and
   quarantine are always on by default, so the *fault-free* path must not
   pay for them.  The same in-process fleet runs with the default retry
   policy and with fault tolerance disabled (``max_retries=0,
   quarantine=False``); the ratio is recorded and gated near 1.0.

Results go to ``BENCH_fleet.json`` and ``bench_results.txt``.  Marked
``perf``: run with ``pytest --runperf benchmarks/test_perf_fleet.py``.

Like PERF-HARNESS, the numbers are hardware-bound: campaign workers beyond
the machine's cores time-slice pure-Python simulators and cannot beat the
in-process baseline; those entries are annotated ``"exceeds_cores"`` (they
are still *recorded* — the 1/2/4 ladder is the artifact's contract) and
excluded from any acceptance gate.  On a 1-core box streaming ≈ rounds *by
construction* — one worker slot means there is no barrier idle time to
reclaim — and the mode entries carry a ``"single_core"`` annotation saying
so; the streaming >= rounds acceptance gate only fires with >= 2 cores.
"""

from __future__ import annotations

import os
import time

import pytest

from benchmarks.conftest import emit, write_bench_json
from repro.analysis.report import format_table
from repro.fuzzing.fleet import CampaignSpec, FleetRunner
from repro.fuzzing.scheduler import RoundRobin

#: Four TheHuzz arms (seed-swept, as the paper's repeats are).  For the
#: mode comparison the body lengths are skewed so slice costs differ —
#: the heterogeneity that makes round barriers expensive.
N_CAMPAIGNS = 4
BUDGET_TESTS = 48
BATCH_SIZE = 16
BODY_INSTRUCTIONS = 24
SKEWED_BODIES = (8, 16, 32, 48)
SLICE_TESTS = 16
WORKER_COUNTS = (1, 2, 4)


def _specs(bodies=None) -> list[CampaignSpec]:
    return [
        CampaignSpec(
            f"thehuzz-{seed}",
            fuzzer="thehuzz",
            fuzzer_config={
                "body_instructions": (bodies[seed] if bodies
                                      else BODY_INSTRUCTIONS),
            },
            seed=seed,
            batch_size=BATCH_SIZE,
            budget_tests=BUDGET_TESTS,
        )
        for seed in range(N_CAMPAIGNS)
    ]


def _fleet_tests_per_sec(n_workers: int, **runner_kwargs) -> tuple[float, object]:
    start = time.perf_counter()
    with FleetRunner(_specs(), n_workers=n_workers, **runner_kwargs) as fleet:
        result = fleet.run()
    elapsed = time.perf_counter() - start
    assert result.total_tests == N_CAMPAIGNS * BUDGET_TESTS
    return result.total_tests / elapsed, result


def _scheduled(n_workers: int, mode: str) -> tuple[float, float, object]:
    """(tests/sec, utilisation, result) for one scheduled run."""
    start = time.perf_counter()
    with FleetRunner(_specs(SKEWED_BODIES), n_workers=n_workers) as fleet:
        result = fleet.run_scheduled(RoundRobin(), slice_tests=SLICE_TESTS,
                                     mode=mode)
        stats = fleet.last_stats
    elapsed = time.perf_counter() - start
    assert result.total_tests == N_CAMPAIGNS * BUDGET_TESTS
    return result.total_tests / elapsed, stats.utilisation, result


@pytest.mark.perf
def test_fleet_tests_per_sec():
    cores = os.cpu_count() or 1

    # -- claim 1: whole-budget campaign sharding ladder ------------------------
    serial_tps, serial = _fleet_tests_per_sec(0)
    sharded: dict[int, tuple[float, object]] = {}
    for n_workers in WORKER_COUNTS:
        sharded[n_workers] = _fleet_tests_per_sec(n_workers)
        # Placement never changes results: pin the parity while we're here.
        assert sharded[n_workers][1].campaigns == serial.campaigns

    # -- claim 2: rounds vs streaming dispatch on a skewed fleet ---------------
    modes: dict[int, dict[str, tuple[float, float, object]]] = {}
    for n_workers in WORKER_COUNTS:
        modes[n_workers] = {
            mode: _scheduled(n_workers, mode)
            for mode in ("rounds", "streaming")
        }
        # Full per-arm budgets: per-campaign trajectories are deterministic,
        # so the two modes must agree bit for bit on final results.
        assert (modes[n_workers]["streaming"][2].campaigns
                == modes[n_workers]["rounds"][2].campaigns)

    # -- claim 3: fault tolerance is free when nothing faults ------------------
    # In-process, whole-budget: the steadiest configuration, so the ratio
    # measures the retry machinery (attempt bookkeeping, fault lookups)
    # rather than pool scheduling noise.  Results must also be identical.
    bare_tps, bare = _fleet_tests_per_sec(0, max_retries=0, quarantine=False)
    guarded_tps, guarded = _fleet_tests_per_sec(0)  # default retry policy
    assert guarded.campaigns == bare.campaigns
    assert guarded.health.healthy
    retry_overhead = bare_tps / guarded_tps if guarded_tps else 1.0

    record = {
        "benchmark": "fleet_tests_per_sec",
        "n_campaigns": N_CAMPAIGNS,
        "budget_tests": BUDGET_TESTS,
        "batch_size": BATCH_SIZE,
        "body_instructions": BODY_INSTRUCTIONS,
        "n_cores": cores,
        "in_process_tests_per_sec": round(serial_tps, 1),
        "workers": {
            str(n): {
                "tests_per_sec": round(tps, 1),
                "speedup": round(tps / serial_tps, 2),
                **({"exceeds_cores": True} if n > cores else {}),
            }
            for n, (tps, _) in sharded.items()
        },
        "scheduled_modes": {
            "skewed_body_instructions": list(SKEWED_BODIES),
            "slice_tests": SLICE_TESTS,
            **{
                str(n): {
                    mode: {
                        "tests_per_sec": round(tps, 1),
                        "worker_utilisation": round(util, 3),
                    }
                    for mode, (tps, util, _) in by_mode.items()
                }
                | {
                    "streaming_speedup": round(
                        by_mode["streaming"][0] / by_mode["rounds"][0], 2
                    ),
                    **({"exceeds_cores": True} if n > cores else {}),
                    # One slot -> no barrier idle time to reclaim: equal
                    # throughput is the *expected* outcome, not a miss.
                    **({"single_core": True} if cores == 1 else {}),
                }
                for n, by_mode in modes.items()
            },
        },
        "fault_tolerance": {
            "retries_disabled_tests_per_sec": round(bare_tps, 1),
            "default_policy_tests_per_sec": round(guarded_tps, 1),
            # > 1.0 means the always-on retry machinery costs throughput
            # on the fault-free path; the gate keeps it within noise.
            "fault_free_overhead": round(retry_overhead, 3),
        },
    }
    fitting = [n for n in WORKER_COUNTS if n <= cores] or [WORKER_COUNTS[0]]
    best_n = max(fitting, key=lambda n: sharded[n][0])
    gain = modes[max(fitting)]["streaming"][0] / modes[max(fitting)]["rounds"][0]
    headline = (
        f"fleet {sharded[best_n][0] / serial_tps:.2f}x at {best_n} campaign "
        f"workers; streaming {gain:.2f}x rounds at {max(fitting)} workers "
        f"({cores} cores)"
    )
    write_bench_json("BENCH_fleet.json", record, headline=headline)

    rows = [["in-process", "whole-budget", f"{serial_tps:.1f}", "1.00x", "-"],
            ["in-process (no retries)", "whole-budget", f"{bare_tps:.1f}",
             f"{bare_tps / guarded_tps:.2f}x vs default", "-"]]
    rows += [
        [f"{n} workers" + (" (> cores)" if n > cores else ""),
         "whole-budget", f"{tps:.1f}", f"{tps / serial_tps:.2f}x", "-"]
        for n, (tps, _) in sharded.items()
    ]
    for n, by_mode in modes.items():
        for mode, (tps, util, _) in by_mode.items():
            rows.append([
                f"{n} workers" + (" (> cores)" if n > cores else ""),
                mode, f"{tps:.1f}",
                f"{tps / by_mode['rounds'][0]:.2f}x",
                f"{util:.2f}",
            ])
    emit(format_table(
        ["fleet mode", "dispatch", "tests/sec", "speedup", "utilisation"],
        rows,
        title=(
            f"PERF-FLEET: {N_CAMPAIGNS} campaigns x {BUDGET_TESTS} tests "
            f"({cores} cores; speedup vs in-process for whole-budget, vs "
            f"rounds for scheduled)"
        ),
    ))

    # Acceptance only where the hardware allows a win: with >= 2 spare
    # cores, two campaign workers must beat running campaigns back-to-back,
    # and streaming dispatch must not lose to round barriers.
    if cores >= 2:
        assert sharded[2][0] / serial_tps >= 1.3
        assert (modes[2]["streaming"][0]
                >= modes[2]["rounds"][0] * 0.98)  # >= up to timing noise
    # The fault-free path must not pay for fault tolerance: allow 10%
    # measurement noise, no more.
    assert retry_overhead <= 1.10
