"""PERF-FLEET — whole-fleet campaign throughput, in-process vs sharded.

Multi-campaign sharding is the scaling axis the fleet subsystem adds: N
independent campaigns (the paper's fuzzer-comparison shape) spread over
campaign workers.  This benchmark runs a fixed four-arm TheHuzz fleet to a
fixed budget in-process (the serial baseline) and with 1/2/4 campaign
workers, measuring end-to-end fleet tests/sec — including per-worker
campaign construction (harness elaboration), which is a real per-campaign
cost the pool pays in parallel.

Results go to ``BENCH_fleet.json`` and ``bench_results.txt``.  Marked
``perf``: run with ``pytest --runperf benchmarks/test_perf_fleet.py``.

Like PERF-HARNESS, the numbers are hardware-bound: campaign workers beyond
the machine's cores time-slice pure-Python simulators and cannot beat the
in-process baseline; those entries are annotated ``"exceeds_cores"`` (they
are still *recorded* — the 1/2/4 ladder is the artifact's contract) and
excluded from any acceptance gate.
"""

from __future__ import annotations

import os
import time

import pytest

from benchmarks.conftest import emit, write_bench_json
from repro.analysis.report import format_table
from repro.fuzzing.fleet import CampaignSpec, FleetRunner

#: Four equal TheHuzz arms (seed-swept, as the paper's repeats are).
N_CAMPAIGNS = 4
BUDGET_TESTS = 48
BATCH_SIZE = 16
BODY_INSTRUCTIONS = 24
WORKER_COUNTS = (1, 2, 4)


def _specs() -> list[CampaignSpec]:
    return [
        CampaignSpec(
            f"thehuzz-{seed}",
            fuzzer="thehuzz",
            fuzzer_config={"body_instructions": BODY_INSTRUCTIONS},
            seed=seed,
            batch_size=BATCH_SIZE,
            budget_tests=BUDGET_TESTS,
        )
        for seed in range(N_CAMPAIGNS)
    ]


def _fleet_tests_per_sec(n_workers: int) -> tuple[float, object]:
    start = time.perf_counter()
    with FleetRunner(_specs(), n_workers=n_workers) as fleet:
        result = fleet.run()
    elapsed = time.perf_counter() - start
    assert result.total_tests == N_CAMPAIGNS * BUDGET_TESTS
    return result.total_tests / elapsed, result


@pytest.mark.perf
def test_fleet_tests_per_sec():
    cores = os.cpu_count() or 1

    serial_tps, serial = _fleet_tests_per_sec(0)
    sharded: dict[int, tuple[float, object]] = {}
    for n_workers in WORKER_COUNTS:
        sharded[n_workers] = _fleet_tests_per_sec(n_workers)
        # Placement never changes results: pin the parity while we're here.
        assert sharded[n_workers][1].campaigns == serial.campaigns

    record = {
        "benchmark": "fleet_tests_per_sec",
        "n_campaigns": N_CAMPAIGNS,
        "budget_tests": BUDGET_TESTS,
        "batch_size": BATCH_SIZE,
        "body_instructions": BODY_INSTRUCTIONS,
        "n_cores": cores,
        "in_process_tests_per_sec": round(serial_tps, 1),
        "workers": {
            str(n): {
                "tests_per_sec": round(tps, 1),
                "speedup": round(tps / serial_tps, 2),
                **({"exceeds_cores": True} if n > cores else {}),
            }
            for n, (tps, _) in sharded.items()
        },
    }
    fitting = [n for n in WORKER_COUNTS if n <= cores] or [WORKER_COUNTS[0]]
    best_n = max(fitting, key=lambda n: sharded[n][0])
    headline = (
        f"fleet {sharded[best_n][0] / serial_tps:.2f}x at {best_n} "
        f"campaign workers ({cores} cores)"
    )
    write_bench_json("BENCH_fleet.json", record, headline=headline)

    rows = [["in-process", f"{serial_tps:.1f}", "1.00x"]]
    rows += [
        [f"{n} workers" + (" (> cores)" if n > cores else ""),
         f"{tps:.1f}", f"{tps / serial_tps:.2f}x"]
        for n, (tps, _) in sharded.items()
    ]
    emit(format_table(
        ["fleet mode", "tests/sec", "speedup"], rows,
        title=(
            f"PERF-FLEET: {N_CAMPAIGNS} campaigns x {BUDGET_TESTS} tests "
            f"({cores} cores)"
        ),
    ))

    # Acceptance only where the hardware allows a win: with >= 2 spare
    # cores, two campaign workers must beat running campaigns back-to-back.
    if cores >= 2:
        assert sharded[2][0] / serial_tps >= 1.3
