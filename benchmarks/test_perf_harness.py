"""PERF-HARNESS — differential-simulation throughput, serial vs sharded.

With generation on the KV-cached fast path (PERF-SAMPLING), campaign
throughput is bounded by the differential step: DUT + golden ISS simulation
of every test body.  This micro-benchmark pins the worker-pool executor's
advantage: a fixed batch of random test bodies is simulated with
``SerialExecutor`` and with ``ShardedExecutor`` at 2/4/8 workers, measuring
steady-state tests/sec (pool spin-up and per-worker harness construction are
amortised by a warm-up batch, as they are across a real campaign's batches).

Results go to ``BENCH_harness.json`` and ``bench_results.txt``.  Marked
``perf``: run with ``pytest --runperf benchmarks/test_perf_harness.py``.

Speed-up is hardware-bound: a worker pool cannot beat serial on a
single-CPU machine (the simulators are pure-Python compute), so the
benchmark is *core-aware*: worker counts exceeding the machine's cores are
skipped (their tests/sec would measure pure IPC overhead — 0.84-0.90x on a
1-core box — and read as a regression), recorded in the JSON as
``{"skipped": ...}`` entries next to ``n_cores``.  On a machine with no
eligible count, the smallest one still runs, annotated
``"exceeds_cores": true``, so the artifact always carries one sharded data
point.  The 2x acceptance gate applies only where the pool has >= 4 cores.
"""

from __future__ import annotations

import os
import time

import pytest

from benchmarks.conftest import emit, write_bench_json
from repro.analysis.report import format_table
from repro.baselines.random_regression import RandomRegressionGenerator
from repro.fuzzing.executor import SerialExecutor
from repro.fuzzing.pool import ShardedExecutor
from repro.soc.harness import rocket_harness_factory

#: Batch size (acceptance point: >= 32) and per-test body length.
BATCH = 64
BODY_INSTRUCTIONS = 48
WORKER_COUNTS = (2, 4, 8)
REPEATS = 3
#: Batched engine lane widths (the end-to-end path under test rides the
#: vectorised golden ISS *and* the vectorised DUT; 0s would restore the
#: scalar baselines).
GOLDEN_LANES = 32
DUT_LANES = 32


def _fixed_bodies() -> list[list[int]]:
    generator = RandomRegressionGenerator(
        body_instructions=BODY_INSTRUCTIONS, seed=0
    )
    return [list(test.words) for test in generator.generate_batch(BATCH)]


def _tests_per_sec(executor, bodies) -> float:
    executor.run_batch(bodies)  # warm-up: builds harnesses, spins the pool
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        results = executor.run_batch(bodies)
        best = min(best, time.perf_counter() - start)
        assert len(results) == len(bodies)
    return len(bodies) / best


def eligible_worker_counts(cores: int) -> list[int]:
    """Worker counts worth measuring on a ``cores``-core machine.

    Counts beyond the core count only measure pool overhead; when *none*
    fit (single-core box), keep the smallest so the artifact still has a
    sharded point — annotated, not asserted on.
    """
    fitting = [n for n in WORKER_COUNTS if n <= cores]
    return fitting or [WORKER_COUNTS[0]]


@pytest.mark.perf
def test_harness_tests_per_sec():
    factory = rocket_harness_factory(golden_lanes=GOLDEN_LANES,
                                     dut_lanes=DUT_LANES)
    bodies = _fixed_bodies()
    cores = os.cpu_count() or 1
    measured_counts = eligible_worker_counts(cores)

    with SerialExecutor(factory) as serial:
        serial_tps = _tests_per_sec(serial, bodies)

    sharded_tps: dict[int, float] = {}
    for n_workers in measured_counts:
        with ShardedExecutor(factory, n_workers=n_workers) as sharded:
            sharded_tps[n_workers] = _tests_per_sec(sharded, bodies)

    def entry(n: int) -> dict:
        if n not in sharded_tps:
            return {"skipped": f"{n} workers exceed {cores} cores"}
        result = {
            "tests_per_sec": round(sharded_tps[n], 1),
            "speedup": round(sharded_tps[n] / serial_tps, 2),
        }
        if n > cores:
            result["exceeds_cores"] = True  # overhead probe, not a speedup
        return result

    record = {
        "benchmark": "harness_tests_per_sec",
        "batch": BATCH,
        "body_instructions": BODY_INSTRUCTIONS,
        # Rocket arm; BOOM rides the same lane plumbing (see BENCH_dut.json
        # for the per-kind batched-DUT ladders).
        "harness_kind": "rocket",
        "golden_lanes": GOLDEN_LANES,
        "dut_lanes": DUT_LANES,
        "n_cores": cores,
        "serial_tests_per_sec": round(serial_tps, 1),
        "sharded": {str(n): entry(n) for n in WORKER_COUNTS},
    }
    best_n = max(sharded_tps, key=sharded_tps.get)
    best_ratio = sharded_tps[best_n] / serial_tps
    headline = (
        f"rocket lanes {GOLDEN_LANES}g/{DUT_LANES}d: sharded "
        f"{best_ratio:.2f}x at {best_n} workers ({cores} cores)"
    )
    if best_n > cores:
        headline += " [pool-overhead bound: workers exceed cores]"
    write_bench_json("BENCH_harness.json", record, headline=headline)

    rows = [["serial", f"{serial_tps:.1f}", "1.00x"]]
    rows += [
        [f"{n} workers" + (" (> cores)" if n > cores else ""),
         f"{tps:.1f}", f"{tps / serial_tps:.2f}x"]
        for n, tps in sharded_tps.items()
    ]
    emit(format_table(
        ["executor", "tests/sec", "speedup"], rows,
        title=(
            f"PERF-HARNESS: differential throughput, batch {BATCH} x "
            f"{BODY_INSTRUCTIONS} instr ({cores} cores)"
        ),
    ))

    # Acceptance: >= 2x at 4 workers — reachable only with cores to use.
    if cores >= 4:
        assert sharded_tps[4] / serial_tps >= 2.0
    elif cores >= 2:
        assert sharded_tps[2] / serial_tps >= 1.3
