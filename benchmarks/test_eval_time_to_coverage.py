"""E-SPEED — time-to-coverage speed-up (paper §V-A).

The paper: ChatFuzz reaches ~75% condition coverage in **52 minutes** of
simulated fuzzing; TheHuzz needs roughly **30 hours** for the same level —
a **34.6x** speed-up.  Using the calibrated SimClock, this bench measures
the simulated time each fuzzer needs to reach a common coverage target and
reports the ratio.
"""

from benchmarks.conftest import emit, scaled
from repro.analysis.report import format_table
from repro.baselines.thehuzz import TheHuzzGenerator
from repro.fuzzing.campaign import Campaign
from repro.fuzzing.chatfuzz import FuzzLoop
from repro.soc.harness import make_rocket_harness


def _time_to(generator, target, max_tests):
    loop = FuzzLoop(generator, make_rocket_harness(), batch_size=20)
    result = Campaign(loop, "ttc").run_to_coverage(target, max_tests=max_tests)
    reached = result.final_coverage_percent >= target
    return result.time_to_coverage(target), reached, result


def _run(chatfuzz, target, max_tests):
    chat_time, chat_ok, chat = _time_to(chatfuzz.generator(seed=121),
                                        target, max_tests)
    huzz_time, huzz_ok, huzz = _time_to(
        TheHuzzGenerator(body_instructions=24, seed=27), target, max_tests * 6)
    return chat_time, chat_ok, huzz_time, huzz_ok, chat, huzz


def _ex_elab(hours):
    """Fuzzing time with the one-off elaboration cost removed.  At paper
    scale elaboration is negligible (39 min of 30 h); at laptop-scale
    budgets it would otherwise dominate both numerators."""
    from repro.fuzzing.simclock import DEFAULT_ELAB_SECONDS

    if hours is None:
        return None
    return max(hours - DEFAULT_ELAB_SECONDS / 3600.0, 1e-9)


def test_time_to_coverage(benchmark, chatfuzz):
    max_tests = scaled(600)
    # A target ChatFuzz reaches quickly but TheHuzz has to grind toward —
    # the scaled analogue of the paper's 75% line.
    target = 74.5
    chat_time, chat_ok, huzz_time, huzz_ok, chat, huzz = benchmark.pedantic(
        _run, args=(chatfuzz, target, max_tests), rounds=1, iterations=1
    )
    chat_fuzz_time = _ex_elab(chat_time)
    huzz_fuzz_time = _ex_elab(huzz_time)
    rows = [
        ["ChatFuzz", f"{target:.1f}%",
         f"{chat_time:.2f} h" if chat_time else f"not reached @ {chat.tests_run}",
         f"{chat_fuzz_time * 60:.1f} min" if chat_fuzz_time else "-",
         "0.87 h (52 min)"],
        ["TheHuzz", f"{target:.1f}%",
         f"{huzz_time:.2f} h" if huzz_time else f"not reached @ {huzz.tests_run}",
         f"{huzz_fuzz_time * 60:.1f} min" if huzz_fuzz_time else "-",
         "~30 h"],
    ]
    if chat_fuzz_time and huzz_fuzz_time:
        rows.append(["speed-up (fuzzing time)", "", "",
                     f"{huzz_fuzz_time / chat_fuzz_time:.1f}x", "34.6x"])
    elif chat_fuzz_time and not huzz_ok:
        rows.append(["speed-up (fuzzing time)", "", "",
                     f">{_ex_elab(huzz.sim_hours) / chat_fuzz_time:.0f}x",
                     "34.6x"])
    emit(format_table(
        ["fuzzer", "target", "total sim-time", "fuzz-time (ex-elab)", "paper"],
        rows,
        title="E-SPEED: simulated time to common coverage target, RocketCore",
    ))
    assert chat_ok, "ChatFuzz failed to reach the target"
    # Either TheHuzz needed (much) longer, or it never got there at 6x budget.
    if huzz_fuzz_time is not None:
        assert huzz_fuzz_time > chat_fuzz_time
    else:
        assert not huzz_ok
