"""PERF-COVERAGE — the coverage data path, set engine vs bitset engine.

Coverage bookkeeping is the dominant *serial* cost of every simulated
instruction: with generation on the KV-cached fast path (PERF-SAMPLING) and
the differential step sharded (PERF-HARNESS), what remains on the hot loop
is recording condition observations and scoring the resulting reports.

Methodology ("before/after")
----------------------------
The "before" engine is the original hash-set implementation, retained
verbatim in ``repro.coverage.reference``: one ``set.add`` per observation,
``frozenset`` report snapshots, set-difference scoring.  The "after" engine
is the packed-bitset data path that replaced it (``repro.rtl.coverage`` /
``repro.coverage.calculator``).  Both engines are driven with **identical
observation streams** shaped like one real simulated instruction (measured
on ``RocketCore.run``):

- one *decode-style group* of 23 conditions whose outcome is a pure
  function of the instruction word (drawn from a small hot-word pool, as in
  a real test body) — the set engine records each arm individually, which
  is what the old core code did; the bitset engine uses the memoized
  ``record_mask`` group fold, which is what the migrated cores do;
- one *idle-IRQ group* of 12 always-false conditions (the per-cycle
  ``InterruptController.poll``), same treatment;
- one *hazard-style group* of 10 data-dependent conditions — not
  memoizable, but foldable: the bitset engine indexes prebound
  (false_bit, true_bit) pairs with each condition's bool and records the
  group as one mask, as ``RocketCore``'s hazard block now does;
- 6 further scalar conditions through each engine's ``record`` (the
  branch-interleaved residue: cache/predictor/CSR conditions).

Per test the engines snapshot a report, and per 64-test batch the matching
calculator (+ scorer) computes standalone/incremental/total coverage and
scores.  Outputs are asserted identical before timing — the speedup is
never bought with a behaviour change (see also
``tests/coverage/test_bitset_parity.py``).

Results go to ``BENCH_coverage.json`` and ``bench_results.txt``.  Marked
``perf``: run with ``pytest --runperf benchmarks/test_perf_coverage.py``.
"""

from __future__ import annotations

import random
import time

import pytest

from benchmarks.conftest import emit, write_bench_json
from repro.analysis.report import format_table
from repro.coverage.calculator import CoverageCalculator
from repro.coverage.reference import (
    SetConditionCoverage,
    SetCoverageCalculator,
    SetCoverageReport,
)
from repro.coverage.scoring import CoverageScorer
from repro.rtl.coverage import ConditionCoverage
from repro.rtl.report import CoverageReport

#: The standard batch (matches PERF-HARNESS) and a RocketCore-scale design.
BATCH = 64
N_CONDITIONS = 160
#: Per-test instruction count and the real cores' per-instruction group mix.
INSTRUCTIONS_PER_TEST = 60
DECODE_GROUP = 23   # word-determined decode conditions (RocketCore)
IRQ_GROUP = 12      # always-false idle interrupt poll
HAZARD_GROUP = 10   # data-dependent but pair-foldable (hazard block)
SCALAR_CONDS = 6    # branch-interleaved conditions recorded one by one
HOT_WORDS = 48      # distinct instruction words per test body
REPEATS = 3


def _make_streams(seed: int = 0):
    """The observation streams of one 64-test batch, engine-agnostic.

    Each instruction is ``(word_key, scalar_observations)``; the per-word
    decode group and the constant IRQ group are derived from the key so both
    engines see exactly the same arms.
    """
    rng = random.Random(seed)
    word_outcomes = {
        w: [(rng.randrange(N_CONDITIONS), rng.random() < 0.5)
            for _ in range(DECODE_GROUP)]
        for w in range(HOT_WORDS)
    }
    irq_group = [(rng.randrange(N_CONDITIONS), False) for _ in range(IRQ_GROUP)]
    hazard_handles = [rng.randrange(N_CONDITIONS) for _ in range(HAZARD_GROUP)]
    tests = []
    for _ in range(BATCH):
        body = [
            (
                rng.randrange(HOT_WORDS),
                tuple(rng.random() < 0.5 for _ in range(HAZARD_GROUP)),
                [(rng.randrange(N_CONDITIONS), rng.random() < 0.5)
                 for _ in range(SCALAR_CONDS)],
            )
            for _ in range(INSTRUCTIONS_PER_TEST)
        ]
        tests.append(body)
    return word_outcomes, irq_group, hazard_handles, tests


def _declare(cov):
    for i in range(N_CONDITIONS):
        cov.declare(f"unit.c{i}")
    cov.freeze()
    return cov


def _run_set_engine(streams):
    """Original data path: per-arm record, frozenset snapshot, set scoring."""
    word_outcomes, irq_group, hazard_handles, tests = streams
    cov = _declare(SetConditionCoverage())
    calc = SetCoverageCalculator(cov.total_arms, batch_mode=True)
    scorer = CoverageScorer()
    reports = []
    for body in tests:
        cov.begin_run()
        record = cov.record
        for word, hazard_values, scalars in body:
            for handle, value in word_outcomes[word]:
                record(handle, value)
            for handle, value in irq_group:
                record(handle, value)
            for handle, value in zip(hazard_handles, hazard_values):
                record(handle, value)
            for handle, value in scalars:
                record(handle, value)
        reports.append(SetCoverageReport.from_coverage(cov))
    coverages = calc.observe_batch(reports)
    scores = [scorer.score(c) for c in coverages]
    return coverages, scores, calc.total_percent


def _run_bitset_engine(streams):
    """Bitset data path: memoized group masks, pair-folded hazard group,
    packed snapshot, vectorised batch scoring — exactly what the migrated
    cores and FuzzLoop do."""
    word_outcomes, irq_group, hazard_handles, tests = streams
    cov = _declare(ConditionCoverage())
    calc = CoverageCalculator(cov.total_arms, batch_mode=True)
    scorer = CoverageScorer()
    # Group masks are memoized per key, as the cores memoize decode masks
    # per instruction word and the IRQ poll precomputes its idle mask; the
    # hazard group prebinds (false_bit, true_bit) pairs indexed by bool.
    mask_cache: dict[int, int] = {}
    irq_mask = 0
    for handle, value in irq_group:
        irq_mask |= cov.arm_bit(handle, value)
    hazard_pairs = tuple(
        (cov.arm_bit(handle, False), cov.arm_bit(handle, True))
        for handle in hazard_handles
    )
    reports = []
    for body in tests:
        cov.begin_run()
        record = cov.record
        record_mask = cov.record_mask
        for word, hazard_values, scalars in body:
            mask = mask_cache.get(word)
            if mask is None:
                mask = 0
                for handle, value in word_outcomes[word]:
                    mask |= cov.arm_bit(handle, value)
                mask_cache[word] = mask
            mask |= irq_mask
            for pair, value in zip(hazard_pairs, hazard_values):
                mask |= pair[value]
            record_mask(mask)
            for handle, value in scalars:
                record(handle, value)
        reports.append(CoverageReport.from_coverage(cov))
    coverages = calc.observe_batch(reports)
    scores = scorer.score_batch(coverages)
    return coverages, scores, calc.total_percent


def _tests_per_sec(fn, streams) -> float:
    fn(streams)  # warm-up (mask memoization, numpy import paths)
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        fn(streams)
        best = min(best, time.perf_counter() - start)
    return BATCH / best


@pytest.mark.perf
def test_coverage_engine_tests_per_sec():
    streams = _make_streams(seed=0)

    # Parity first: the engines must agree bit-for-bit on this workload.
    set_out = _run_set_engine(streams)
    bit_out = _run_bitset_engine(streams)
    assert bit_out[0] == set_out[0]   # InputCoverage triples
    assert bit_out[1] == set_out[1]   # scores
    assert bit_out[2] == set_out[2]   # total percent

    set_tps = _tests_per_sec(_run_set_engine, streams)
    bit_tps = _tests_per_sec(_run_bitset_engine, streams)
    speedup = bit_tps / set_tps

    obs_per_test = INSTRUCTIONS_PER_TEST * (
        DECODE_GROUP + IRQ_GROUP + HAZARD_GROUP + SCALAR_CONDS
    )
    record = {
        "benchmark": "coverage_engine_tests_per_sec",
        "batch": BATCH,
        "conditions": N_CONDITIONS,
        "instructions_per_test": INSTRUCTIONS_PER_TEST,
        "observations_per_test": obs_per_test,
        "group_mix": {
            "decode_group": DECODE_GROUP,
            "irq_group": IRQ_GROUP,
            "hazard_group": HAZARD_GROUP,
            "scalar": SCALAR_CONDS,
        },
        "methodology": (
            "identical observation streams through both engines; set engine "
            "= retained reference (per-arm set.add, frozenset reports, set "
            "calculator); bitset engine = memoized/pair-folded group masks "
            "+ packed reports + vectorised batch calculator, mirroring the "
            "migrated cores; outputs asserted identical before timing; "
            f"best of {REPEATS} timed runs"
        ),
        "set_tests_per_sec": round(set_tps, 1),
        "bitset_tests_per_sec": round(bit_tps, 1),
        "speedup": round(speedup, 2),
    }
    write_bench_json(
        "BENCH_coverage.json", record,
        headline=f"bitset engine {speedup:.2f}x ({bit_tps:.0f} tests/s)",
    )

    emit(format_table(
        ["engine", "tests/sec", "speedup"],
        [
            ["set (reference)", f"{set_tps:.1f}", "1.00x"],
            ["bitset", f"{bit_tps:.1f}", f"{speedup:.2f}x"],
        ],
        title=(
            f"PERF-COVERAGE: coverage data path, batch {BATCH} x "
            f"{obs_per_test} observations/test"
        ),
    ))

    # Acceptance: the bitset engine must at least double coverage
    # throughput on the standard batch.
    assert speedup >= 2.0
