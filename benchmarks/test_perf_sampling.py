"""PERF-SAMPLING — tokens/sec of KV-cached vs uncached decoding.

The fuzzer's throughput ceiling is ``Sampler.generate``; this micro-benchmark
pins the cached fast path's advantage at the model's full context
(max_seq=96).  Results go to ``BENCH_sampling.json`` (machine-readable
artifact) and are appended to ``bench_results.txt`` like every other
benchmark.  Marked ``perf`` so the tier-1 test run skips it (see the root
``conftest.py``); run with ``pytest -m perf benchmarks/test_perf_sampling.py``.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from benchmarks.conftest import emit, write_bench_json
from repro.analysis.report import format_table
from repro.ml.sampling import Sampler, SamplerConfig
from repro.ml.transformer import GPT2Config, GPT2LMModel

#: The default model geometry at full context — the acceptance point.
BENCH_CONFIG = GPT2Config(vocab_size=512, max_seq=96, dim=64,
                          n_layers=2, n_heads=2)
BATCH = 8
PROMPT_LEN = 4
SAMPLER_CONFIG = SamplerConfig(top_k=50)


def _tokens_per_sec(model, use_cache: bool, n_new: int,
                    repeats: int = 3) -> float:
    prompts = np.arange(BATCH * PROMPT_LEN, dtype=np.int64).reshape(
        BATCH, PROMPT_LEN
    ) % model.config.vocab_size
    best = float("inf")
    for repeat in range(repeats):
        sampler = Sampler(model, SAMPLER_CONFIG, seed=repeat,
                          use_cache=use_cache)
        start = time.perf_counter()
        out = sampler.generate(prompts, n_new)
        elapsed = time.perf_counter() - start
        assert out.shape == (BATCH, PROMPT_LEN + n_new)
        best = min(best, elapsed)
    return BATCH * n_new / best


@pytest.mark.perf
def test_sampling_tokens_per_sec():
    model = GPT2LMModel(BENCH_CONFIG, seed=0)
    n_new = BENCH_CONFIG.max_seq - PROMPT_LEN
    uncached = _tokens_per_sec(model, use_cache=False, n_new=n_new)
    cached = _tokens_per_sec(model, use_cache=True, n_new=n_new)
    speedup = cached / uncached

    record = {
        "benchmark": "sampling_tokens_per_sec",
        "max_seq": BENCH_CONFIG.max_seq,
        "batch": BATCH,
        "prompt_len": PROMPT_LEN,
        "n_new_tokens": n_new,
        "dim": BENCH_CONFIG.dim,
        "n_layers": BENCH_CONFIG.n_layers,
        "uncached_tokens_per_sec": round(uncached, 1),
        "cached_tokens_per_sec": round(cached, 1),
        "speedup": round(speedup, 2),
    }
    write_bench_json(
        "BENCH_sampling.json", record,
        headline=f"KV-cached decode {speedup:.2f}x ({cached:.0f} tok/s)",
    )

    emit(format_table(
        ["decode path", "tokens/sec", "speedup"],
        [
            ["uncached (full recompute)", f"{uncached:.0f}", "1.00x"],
            ["KV-cached prefill+decode", f"{cached:.0f}", f"{speedup:.2f}x"],
        ],
        title=(
            "PERF-SAMPLING: generation throughput at max_seq="
            f"{BENCH_CONFIG.max_seq} (batch {BATCH})"
        ),
    ))
    # Acceptance: the fast path must be at least 3x the uncached baseline.
    assert speedup >= 3.0
