"""A-NOCLEAN / A-NOCOV — ablating pipeline steps (DESIGN.md §3).

The paper motivates step 2 ("helps avoid unnecessary CPU simulation of
bad/malformed data") and step 3 (coverage-directed exploration) but does not
sweep them.  This ablation trains three variants from the same step-1
checkpoint — full pipeline, no-cleanup (skip step 2) and no-coverage-RL
(skip step 3) — and compares generation validity and campaign coverage.
"""

import numpy as np

from benchmarks.conftest import emit, scaled
from repro.analysis.report import format_table
from repro.fuzzing.campaign import Campaign
from repro.fuzzing.chatfuzz import FuzzLoop
from repro.ml.lm_training import LMTrainConfig
from repro.ml.pipeline import ChatFuzzPipeline, PipelineConfig
from repro.ml.rewards import DisassemblerReward
from repro.ml.transformer import GPT2Config
from repro.soc.harness import make_rocket_harness

CONFIG = PipelineConfig(
    corpus_functions=150,
    tokenizer_max_vocab=2048,
    model=GPT2Config(dim=48, n_layers=2, n_heads=2, max_seq=80),
    lm=LMTrainConfig(steps=250, batch_size=12, lr=2e-3),
    step2_steps=5,
    step3_steps=3,
    ppo_batch_size=12,
    response_instructions=16,
)


def _measure(pipeline, n_tests, seed):
    reward = DisassemblerReward()
    bodies = pipeline.make_generator(seed=seed).generate_batch(16)
    validity = float(np.mean([reward.validity_rate(b) for b in bodies]))
    loop = FuzzLoop(pipeline.make_generator(seed=seed + 1),
                    make_rocket_harness(), batch_size=20)
    result = Campaign(loop, "ablation").run_tests(n_tests)
    return validity, result.final_coverage_percent


def _run(n_tests):
    outcomes = {}
    for variant in ("full", "no-cleanup", "no-coverage-rl"):
        pipeline = ChatFuzzPipeline(CONFIG)
        pipeline.run_step1()
        if variant != "no-cleanup":
            pipeline.run_step2()
        if variant != "no-coverage-rl":
            pipeline.run_step3(make_rocket_harness())
        outcomes[variant] = _measure(pipeline, n_tests, seed=71)
    return outcomes


def test_pipeline_step_ablation(benchmark):
    n_tests = scaled(200)
    outcomes = benchmark.pedantic(_run, args=(n_tests,), rounds=1, iterations=1)
    rows = [
        [variant, f"{validity:.2%}", f"{coverage:.2f}"]
        for variant, (validity, coverage) in outcomes.items()
    ]
    emit(format_table(
        ["pipeline variant", "generation validity", f"coverage% @ {n_tests}"],
        rows,
        title="A-NOCLEAN / A-NOCOV: ablating pipeline steps",
    ))
    full_validity, full_coverage = outcomes["full"]
    # The full pipeline should not lose to either ablation on its own
    # objective (small tolerances absorb sampling noise).
    assert full_validity >= outcomes["no-cleanup"][0] - 0.08
    assert full_coverage >= outcomes["no-coverage-rl"][1] - 2.0
