"""E-1P8K / E-199K — coverage at matched test budgets (paper §V-A).

Paper numbers for RocketCore:

- at 1.8 K tests (same instruction count per test):
  ChatFuzz **74.96%** vs TheHuzz **67.4%** condition coverage;
- at 199 K tests: ChatFuzz **79.14%** vs TheHuzz **76.7%**.

The bench runs both fuzzers at a scaled-down matched budget (the short-run
point) and a 4x longer budget (the long-run point), checking that the gap
and the ordering match the paper's shape.
"""

from benchmarks.conftest import bench_executor, emit, scaled
from repro.analysis.report import format_table
from repro.baselines.thehuzz import TheHuzzGenerator
from repro.fuzzing.campaign import Campaign
from repro.fuzzing.chatfuzz import FuzzLoop
from repro.soc.harness import rocket_harness_factory

PAPER = {
    "short": {"ChatFuzz": 74.96, "TheHuzz": 67.4, "tests": 1800},
    "long": {"ChatFuzz": 79.14, "TheHuzz": 76.7, "tests": 199_000},
}


def _run(chatfuzz, budget_short, budget_long):
    outcomes = {}
    for name, generator in [
        ("ChatFuzz", chatfuzz.generator(seed=111)),
        ("TheHuzz", TheHuzzGenerator(body_instructions=24, seed=17)),
    ]:
        # CHATFUZZ_BENCH_WORKERS shards simulation over a worker pool;
        # curves are identical to serial either way (executor parity).
        loop = FuzzLoop(generator, rocket_harness_factory(), batch_size=20,
                        executor=bench_executor())
        with Campaign(loop, name) as campaign:
            result = campaign.run_tests(budget_long)
        outcomes[name] = {
            "short": result.coverage_at_tests(budget_short),
            "long": result.final_coverage_percent,
        }
    return outcomes


def test_coverage_at_budget(benchmark, chatfuzz):
    budget_short = scaled(150)
    budget_long = scaled(600)
    outcomes = benchmark.pedantic(
        _run, args=(chatfuzz, budget_short, budget_long), rounds=1, iterations=1
    )
    rows = []
    for point, budget in (("short", budget_short), ("long", budget_long)):
        for fuzzer in ("ChatFuzz", "TheHuzz"):
            rows.append([
                point, budget, fuzzer,
                f"{outcomes[fuzzer][point]:.2f}",
                f"{PAPER[point][fuzzer]:.2f} @ {PAPER[point]['tests']}",
            ])
    emit(format_table(
        ["point", "tests (scaled)", "fuzzer", "measured cov%", "paper cov% @ tests"],
        rows,
        title="E-1P8K / E-199K: condition coverage at matched budgets, RocketCore",
    ))
    # Shape: ChatFuzz leads at both budgets; the short-run gap is the larger
    # one (paper: 7.6 points short vs 2.4 long).
    short_gap = outcomes["ChatFuzz"]["short"] - outcomes["TheHuzz"]["short"]
    long_gap = outcomes["ChatFuzz"]["long"] - outcomes["TheHuzz"]["long"]
    assert short_gap > 0, f"short-run gap {short_gap:.2f}"
    assert long_gap > 0, f"long-run gap {long_gap:.2f}"
    assert outcomes["ChatFuzz"]["short"] > 65.0
