"""A-PENALTY / A-SCORE — reward-design ablations (DESIGN.md §3).

- A-PENALTY sweeps the invalid-instruction penalty around the paper's
  ``f = N − 5·Invalid`` (Eq. 1): with no penalty there is no pressure toward
  legality; heavier penalties push validity up.
- A-SCORE adds Gaussian noise to the reward agent, quantifying the paper's
  argument for *deterministic* reward agents ("prevent uncertainty and
  reduce errors").
"""

import numpy as np

from benchmarks.conftest import emit
from repro.analysis.report import format_table
from repro.ml.lm_training import LMTrainConfig
from repro.ml.pipeline import ChatFuzzPipeline, PipelineConfig
from repro.ml.rewards import DisassemblerReward
from repro.ml.transformer import GPT2Config

CONFIG = PipelineConfig(
    corpus_functions=120,
    tokenizer_max_vocab=2048,
    model=GPT2Config(dim=32, n_layers=2, n_heads=2, max_seq=80),
    lm=LMTrainConfig(steps=200, batch_size=12, lr=2e-3),
    step2_steps=5,
    ppo_batch_size=12,
    response_instructions=16,
)


def _validity(pipeline, seed=81):
    probe = DisassemblerReward()
    bodies = pipeline.make_generator(seed=seed).generate_batch(16)
    return float(np.mean([probe.validity_rate(b) for b in bodies]))


def _train_with(reward):
    pipeline = ChatFuzzPipeline(CONFIG)
    pipeline.run_step1()
    pipeline.run_step2(reward=reward)
    return _validity(pipeline), pipeline.result.step2_history.mean_rewards[-1]


def _run():
    outcomes = {}
    for label, reward in [
        ("penalty=0", DisassemblerReward(penalty=0.0)),
        ("penalty=5 (paper)", DisassemblerReward(penalty=5.0)),
        ("penalty=10", DisassemblerReward(penalty=10.0)),
        ("penalty=5 + noise(1.0)", DisassemblerReward(penalty=5.0,
                                                      noise_stddev=1.0)),
    ]:
        outcomes[label] = _train_with(reward)
    return outcomes


def test_reward_ablation(benchmark):
    outcomes = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = [
        [label, f"{validity:.2%}", f"{reward:+.3f}"]
        for label, (validity, reward) in outcomes.items()
    ]
    emit(format_table(
        ["reward agent", "validity after step2", "final mean reward"],
        rows,
        title="A-PENALTY / A-SCORE: step-2 reward design ablation",
    ))
    # All variants train stably; the deterministic paper setting must not
    # lose badly to its own noisy variant (the paper's determinism argument
    # is about precision of guidance, which shows up as lower variance —
    # with one seed we only check it stays competitive).
    paper = outcomes["penalty=5 (paper)"][0]
    assert paper >= outcomes["penalty=0"][0] - 0.10
    assert all(np.isfinite(v) for v, _ in outcomes.values())
