"""E-BUGS — bug and finding detection (paper §V-B).

The paper's campaign surfaced two new bugs — Bug1 (CWE-1202, stale I$ after
unfenced code patching) and Bug2 (CWE-440, missing MUL/DIV trace
write-backs) — plus three ISA-deviation findings (trap-priority inversion,
AMO-to-x0 trace data, spurious x0 trace writes).  The bench runs a fuzzing
campaign on the buggy RocketCore and classifies the unique mismatches
against the five known behaviours.
"""

from benchmarks.conftest import emit, scaled
from repro.analysis.bugs import KNOWN_BUGS, classify_mismatches
from repro.analysis.report import format_table
from repro.fuzzing.campaign import Campaign
from repro.fuzzing.chatfuzz import FuzzLoop
from repro.soc.harness import make_rocket_harness


def _run(chatfuzz, n_tests):
    loop = FuzzLoop(chatfuzz.generator(seed=151), make_rocket_harness(),
                    batch_size=20)
    Campaign(loop, "bughunt").run_tests(n_tests)
    return classify_mismatches(loop.detector.unique.values())


def test_bug_findings(benchmark, chatfuzz):
    n_tests = scaled(500)
    groups = benchmark.pedantic(_run, args=(chatfuzz, n_tests),
                                rounds=1, iterations=1)
    rows = []
    for bug_id, info in KNOWN_BUGS.items():
        count = len(groups.get(bug_id, []))
        rows.append([
            bug_id,
            info.cwe or "-",
            "DETECTED" if count else "missed",
            str(count),
            info.description[:52],
        ])
    rows.append(["(unexplained)", "-", "-",
                 str(len(groups.get("UNEXPLAINED", []))), ""])
    emit(format_table(
        ["behaviour", "CWE", "status", "unique sigs", "description"],
        rows,
        title=f"E-BUGS: known-behaviour detection after {n_tests} fuzz tests",
    ))
    detected = {k for k, v in groups.items() if k != "UNEXPLAINED" and v}
    # Bug2/Finding2 fire on common instructions and must always be found;
    # a laptop-scale campaign should surface at least four of the five.
    assert "BUG2" in detected
    assert len(detected) >= 4, detected
