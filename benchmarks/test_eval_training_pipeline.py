"""E-TRAIN — training-pipeline telemetry (paper §IV-C).

The paper monitors, per PPO step, "the PPO algorithm's loss, the
Kullback-Leibler divergence between optimization policies, and the mean
rewards assigned at each step"; step 2's purpose is raising the validity of
generations (fewer illegal instructions burnt in RTL simulation).  The bench
runs the three-step pipeline from scratch at a reduced scale and reports the
step-1 loss drop, the step-2 validity improvement and reward trend, and the
step-3 coverage-reward telemetry.
"""

import numpy as np

from benchmarks.conftest import emit
from repro.analysis.report import format_table
from repro.ml.lm_training import LMTrainConfig
from repro.ml.pipeline import ChatFuzzPipeline, PipelineConfig
from repro.ml.rewards import DisassemblerReward
from repro.ml.transformer import GPT2Config
from repro.soc.harness import make_rocket_harness


def _validity(pipeline, seed):
    reward = DisassemblerReward()
    bodies = pipeline.make_generator(seed=seed).generate_batch(16)
    return float(np.mean([reward.validity_rate(b) for b in bodies]))


def _run():
    pipeline = ChatFuzzPipeline(PipelineConfig(
        corpus_functions=150,
        tokenizer_max_vocab=2048,
        model=GPT2Config(dim=48, n_layers=2, n_heads=2, max_seq=80),
        lm=LMTrainConfig(steps=300, batch_size=12, lr=2e-3),
        step2_steps=5,
        step3_steps=3,
        ppo_batch_size=12,
        response_instructions=16,
    ))
    lm_result = pipeline.run_step1()
    validity_after_1 = _validity(pipeline, seed=61)
    step2 = pipeline.run_step2()
    validity_after_2 = _validity(pipeline, seed=61)
    step3 = pipeline.run_step3(make_rocket_harness())
    return pipeline, lm_result, step2, step3, validity_after_1, validity_after_2


def test_training_pipeline_telemetry(benchmark):
    (pipeline, lm_result, step2, step3,
     validity_after_1, validity_after_2) = benchmark.pedantic(
        _run, rounds=1, iterations=1)
    rows = [
        ["step1 LM loss", f"{lm_result.initial_loss:.2f} -> {lm_result.final_loss:.2f}",
         "decreasing"],
        ["step2 mean reward", f"{step2.mean_rewards[0]:+.2f} -> {step2.mean_rewards[-1]:+.2f}",
         "increasing (Eq.1)"],
        ["step2 |KL| final", f"{abs(step2.kls[-1]):.4f}", "monitored"],
        ["validity after step1", f"{validity_after_1:.2%}", "-"],
        ["validity after step2", f"{validity_after_2:.2%}", "improves"],
        ["step3 coverage reward", f"{step3.mean_rewards[0]:+.2f} -> {step3.mean_rewards[-1]:+.2f}",
         "monitored"],
        ["step3 campaign coverage", f"{pipeline.result.step3_coverage_percent:.2f}%",
         "grows during training"],
    ]
    emit(format_table(["telemetry", "measured", "paper expectation"], rows,
                      title="E-TRAIN: three-step pipeline telemetry"))
    assert lm_result.final_loss < lm_result.initial_loss * 0.5
    assert validity_after_2 >= validity_after_1 - 0.05
    assert len(step2.losses) == 5
    assert all(np.isfinite(step2.losses))
    assert pipeline.result.step3_coverage_percent > 0
