"""PERF-GOLDEN — golden-ISS throughput, scalar vs batched numpy lanes.

Differential fuzzing runs every test program through the golden reference
as well as the DUT, so golden-model throughput bounds the whole loop (the
paper's Spike role; GoldenFuzz makes the same observation at scale).  This
micro-benchmark pins the batched structure-of-arrays engine's advantage:
a fixed batch of random test programs is executed by the scalar
``GoldenSimulator`` and by ``GoldenBatchSimulator`` across a lane-width
ladder (8/32/128), measuring tests/sec on identical (bit-identical, in
fact — see ``tests/golden/test_batch.py``) work.

Results go to ``BENCH_golden.json`` and ``bench_results.txt``.  Marked
``perf``: run with ``pytest --runperf benchmarks/test_perf_golden.py``.

Timing takes the best of ``REPEATS`` runs per configuration: the engines
are single-threaded pure compute, so minimum wall-clock is the measurement
least polluted by scheduler noise on shared machines.  The acceptance gate
(>= 3x somewhere on the ladder at width >= 32) sits well under the quiet-
machine headroom (~4x+ at 128 lanes) for the same reason.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import emit, write_bench_json
from repro.analysis.report import format_table
from repro.baselines.random_regression import RandomRegressionGenerator
from repro.golden.batch import GoldenBatchSimulator
from repro.golden.simulator import GoldenSimulator, SimConfig
from repro.soc.harness import build_program

#: Bench workload: one program per lane at the widest rung.
BATCH = 128
BODY_INSTRUCTIONS = 48
LANE_WIDTHS = (8, 32, 128)
REPEATS = 5


def _fixed_programs() -> list[list[int]]:
    generator = RandomRegressionGenerator(
        body_instructions=BODY_INSTRUCTIONS, seed=0
    )
    return [build_program(list(test.words))
            for test in generator.generate_batch(BATCH)]


def _best_of(run, n_tests: int) -> float:
    run()  # warm-up: decode/dispatch-table caches
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
    return n_tests / best


@pytest.mark.perf
def test_golden_tests_per_sec():
    programs = _fixed_programs()
    config = SimConfig()

    scalar = GoldenSimulator(config)
    scalar_tps = _best_of(
        lambda: [scalar.run(p) for p in programs], len(programs)
    )

    lane_tps: dict[int, float] = {}
    for lanes in LANE_WIDTHS:
        sim = GoldenBatchSimulator(config, lanes=lanes)
        lane_tps[lanes] = _best_of(
            lambda: sim.run_batch(programs), len(programs)
        )

    record = {
        "benchmark": "golden_tests_per_sec",
        "batch": BATCH,
        "body_instructions": BODY_INSTRUCTIONS,
        "scalar_tests_per_sec": round(scalar_tps, 1),
        "lanes": {
            str(n): {
                "tests_per_sec": round(tps, 1),
                "speedup": round(tps / scalar_tps, 2),
            }
            for n, tps in lane_tps.items()
        },
    }
    best_n = max(lane_tps, key=lane_tps.get)
    best_ratio = lane_tps[best_n] / scalar_tps
    headline = f"batched {best_ratio:.2f}x at {best_n} lanes"
    write_bench_json("BENCH_golden.json", record, headline=headline)

    rows = [["scalar", f"{scalar_tps:.1f}", "1.00x"]]
    rows += [[f"{n} lanes", f"{tps:.1f}", f"{tps / scalar_tps:.2f}x"]
             for n, tps in lane_tps.items()]
    emit(format_table(
        ["engine", "tests/sec", "speedup"], rows,
        title=(
            f"PERF-GOLDEN: golden-ISS throughput, batch {BATCH} x "
            f"{BODY_INSTRUCTIONS} instr"
        ),
    ))

    # Acceptance: >= 3x scalar somewhere on the ladder at width >= 32.
    gate = max(lane_tps[n] / scalar_tps for n in LANE_WIDTHS if n >= 32)
    assert gate >= 3.0, f"best >=32-lane speedup {gate:.2f}x under the 3x gate"
