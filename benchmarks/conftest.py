"""Shared infrastructure for the experiment benchmarks.

Every benchmark regenerates one paper artifact (see DESIGN.md §3).  The
trained ChatFuzz model is expensive, so it is built once per session and
cached on disk under ``.bench_cache/`` — delete the directory to retrain.

Scaling: campaigns default to a few hundred tests (laptop-scale); set
``CHATFUZZ_BENCH_SCALE`` (float ≥ 1) to run longer campaigns approaching
paper scale.  Result tables are printed *and* appended to
``bench_results.txt`` in the repository root, which EXPERIMENTS.md references.
"""

from __future__ import annotations

import json
import os
import platform
from pathlib import Path

import pytest

from repro.fuzzing.pool import ShardedExecutor

from repro.dataset.corpus import Corpus
from repro.ml.lm_training import LMTrainConfig, LMTrainer
from repro.ml.pipeline import LLMInputGenerator, PipelineConfig, ChatFuzzPipeline
from repro.ml.tokenizer import HalfwordTokenizer
from repro.ml.transformer import GPT2Config, GPT2LMModel
from repro.soc.harness import make_rocket_harness

REPO_ROOT = Path(__file__).resolve().parent.parent
CACHE_DIR = REPO_ROOT / ".bench_cache"
RESULTS_PATH = REPO_ROOT / "bench_results.txt"

#: Scale factor for campaign budgets (1.0 = laptop-scale defaults).
SCALE = float(os.environ.get("CHATFUZZ_BENCH_SCALE", "1.0"))


def scaled(n: int) -> int:
    """Scale a test budget by CHATFUZZ_BENCH_SCALE."""
    return max(16, int(n * SCALE))


def _section_key(title: str) -> str:
    """The part of a section title that identifies the *artifact*.

    Benchmark titles follow ``"NAME: parameters"``, and the parameters can
    embed machine facts (core counts), so matching on the full title would
    re-append rather than replace when the same benchmark runs on different
    hardware.  Key on the name before the colon; titles without one are
    their own key.
    """
    return title.split(":", 1)[0].strip()


def emit(table: str) -> None:
    """Print a result table and write it to bench_results.txt.

    Sections are keyed by benchmark (see :func:`_section_key`): re-running
    one *replaces* its section in place instead of appending another copy —
    the file stays one-section-per-artifact no matter how many times
    ``--runperf`` runs or on which machine.  Unknown benchmarks append at
    the end, preserving the historical ordering of the file.
    """
    print("\n" + table)
    key = _section_key(table.splitlines()[0])
    blocks = []
    if RESULTS_PATH.exists():
        blocks = [block for block in RESULTS_PATH.read_text().split("\n\n")
                  if block.strip()]
    replaced = False
    kept: list[str] = []
    for block in blocks:
        if _section_key(block.splitlines()[0]) == key:
            if not replaced:
                kept.append(table)  # replace the first occurrence in place
                replaced = True
            continue  # drop historical duplicates of the same section
        kept.append(block)
    if not replaced:
        kept.append(table)
    RESULTS_PATH.write_text("\n\n".join(kept) + "\n\n")


#: One line per BENCH_*.json written this session, for the terminal summary.
_BENCH_SUMMARY: list[str] = []


def machine_context() -> dict:
    """The host facts every benchmark artifact should carry, uniformly."""
    return {
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "platform": platform.platform(),
    }


def write_bench_json(filename: str, record: dict,
                     headline: str | None = None) -> Path:
    """Write a machine-readable benchmark artifact (``BENCH_*.json``) to the
    repository root; shared by the perf micro-benchmarks.

    Every record is stamped with the host's :func:`machine_context` so
    numbers from different machines are comparable, and registered for the
    one-line-per-benchmark table printed at the end of ``--runperf`` runs
    (``headline`` is that line's free-text result summary).
    """
    record = dict(record)
    record.setdefault("machine", machine_context())
    if headline is not None:
        record.setdefault("headline", headline)
    path = REPO_ROOT / filename
    path.write_text(json.dumps(record, indent=2) + "\n")
    name = record.get("benchmark", filename)
    _BENCH_SUMMARY.append(
        f"{filename:<24} {name:<28} {record.get('headline', '')}".rstrip()
    )
    # The one-line-per-artifact table is printed at session end by the root
    # conftest's pytest_terminal_summary (this module is imported by the
    # benchmarks as a plain module, not as pytest's conftest plugin, so the
    # hook cannot live here).
    return path


#: Worker-pool size for campaign benches (0 = serial, the default).
BENCH_WORKERS = int(os.environ.get("CHATFUZZ_BENCH_WORKERS", "0"))


def bench_executor() -> ShardedExecutor | None:
    """Executor for campaign benches per ``CHATFUZZ_BENCH_WORKERS``.

    Returns None (FuzzLoop then defaults to serial in-process execution) or
    an unbound ShardedExecutor that the loop binds to its harness factory.
    Sharded results are order-identical to serial (see
    ``repro.fuzzing.executor``), so the knob changes wall-clock only, never
    the curves.
    """
    if BENCH_WORKERS <= 1:
        return None
    return ShardedExecutor(n_workers=BENCH_WORKERS)


BENCH_PIPELINE_CONFIG = PipelineConfig(
    corpus_functions=250,
    tokenizer_max_vocab=2048,
    model=GPT2Config(dim=48, n_layers=2, n_heads=2, max_seq=80),
    lm=LMTrainConfig(steps=450, batch_size=12, lr=2e-3),
    step2_steps=6,
    step3_steps=3,
    ppo_batch_size=12,
    response_instructions=20,
)


class TrainedChatFuzz:
    """The trained artifacts a fuzzing campaign needs."""

    def __init__(self, model, tokenizer, corpus):
        self.model = model
        self.tokenizer = tokenizer
        self.corpus = corpus

    def generator(self, seed: int = 0,
                  response_instructions: int = 20) -> LLMInputGenerator:
        return LLMInputGenerator(
            self.model, self.tokenizer, self.corpus,
            prompt_bounds=(2, 5),
            response_instructions=response_instructions,
            seed=seed,
        )


def _train_and_cache() -> TrainedChatFuzz:
    CACHE_DIR.mkdir(exist_ok=True)
    model_path = CACHE_DIR / "model.npz"
    tokenizer_path = CACHE_DIR / "tokenizer.json"
    corpus_path = CACHE_DIR / "corpus.json"
    if model_path.exists() and tokenizer_path.exists() and corpus_path.exists():
        return TrainedChatFuzz(
            GPT2LMModel.load(model_path),
            HalfwordTokenizer.load(tokenizer_path),
            Corpus.load(corpus_path),
        )
    pipeline = ChatFuzzPipeline(BENCH_PIPELINE_CONFIG)
    pipeline.run_step1()
    pipeline.run_step2()
    pipeline.run_step3(make_rocket_harness())
    pipeline.model.save(model_path)
    pipeline.tokenizer.save(tokenizer_path)
    pipeline.corpus.save(corpus_path)
    return TrainedChatFuzz(pipeline.model, pipeline.tokenizer, pipeline.corpus)


@pytest.fixture(scope="session")
def chatfuzz() -> TrainedChatFuzz:
    """The fully-trained (3-step) ChatFuzz model, cached across sessions."""
    return _train_and_cache()
