"""PERF-OBS — what does watching a fuzzing run cost?

The telemetry contract (``repro.obs``) is that observation is opt-in and
near-free: the default :data:`~repro.obs.events.NULL_SINK` does *no*
telemetry work (instrumented code guards payload construction and even its
``perf_counter`` calls behind ``sink.enabled``), an in-memory
:class:`~repro.obs.events.ListSink` pays only for event objects, and a
durable :class:`~repro.obs.store.StoreSink` adds one flushed JSONL append
per event.  Events fire at *batch* rate (a handful per batch), not test
rate, so even the durable sink should be noise next to differential
simulation.

One TheHuzz campaign runs to a fixed budget under each sink; tests/sec and
the overhead ratios versus the disabled-telemetry baseline go to
``BENCH_obs.json`` and ``bench_results.txt``.  The curves and mismatch
sets must be identical across sinks — telemetry observes, never perturbs.

Marked ``perf``: run with ``pytest --runperf benchmarks/test_perf_obs.py``.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import emit, scaled, write_bench_json
from repro.analysis.report import format_table
from repro.baselines.thehuzz import TheHuzzGenerator
from repro.fuzzing.campaign import Campaign
from repro.fuzzing.chatfuzz import FuzzLoop
from repro.obs.events import NULL_SINK, ListSink
from repro.obs.store import ResultsStore
from repro.soc.harness import rocket_harness_factory

BATCH_SIZE = 16
BODY_INSTRUCTIONS = 24


#: Timed repetitions per sink; best-of wins.  One campaign at this budget
#: runs well under a second, so scheduler/allocator noise and slow machine
#: drift dominate single runs — the sinks are measured *interleaved*
#: (round-robin, one run of each per round) so drift hits all three
#: equally, and the best round per sink is the stable cost estimate.
REPEATS = 3


def _run_campaign(sink, budget: int) -> tuple[float, object]:
    generator = TheHuzzGenerator(body_instructions=BODY_INSTRUCTIONS, seed=7)
    loop = FuzzLoop(generator, rocket_harness_factory(),
                    batch_size=BATCH_SIZE, sink=sink)
    start = time.perf_counter()
    with Campaign(loop, "obs-bench") as campaign:
        result = campaign.run_tests(budget)
    elapsed = time.perf_counter() - start
    return result.tests_run / elapsed, result


@pytest.mark.perf
def test_telemetry_overhead(tmp_path):
    budget = scaled(96)

    _run_campaign(NULL_SINK, budget)  # warm caches/allocator
    list_sink = ListSink()
    store = ResultsStore(tmp_path / "store")
    best: dict[str, float] = {}
    results: dict[str, object] = {}
    with store.sink() as store_sink:
        for _ in range(REPEATS):
            for name, sink in (("null", NULL_SINK), ("list", list_sink),
                               ("store", store_sink)):
                tps, results[name] = _run_campaign(sink, budget)
                best[name] = max(best.get(name, 0.0), tps)
    null_tps, list_tps, store_tps = best["null"], best["list"], best["store"]
    baseline, listed, stored = (results["null"], results["list"],
                                results["store"])

    # Telemetry observes, never perturbs: identical trajectories.
    assert listed.curve == baseline.curve
    assert stored.curve == baseline.curve
    assert {m.signature for m in stored.mismatches} == \
        {m.signature for m in baseline.mismatches}
    # And the durable sink actually recorded the run.
    assert list_sink.events
    assert len(store.read_events()) == len(list_sink.events) + 1  # +worker_started

    list_overhead = null_tps / list_tps if list_tps else 1.0
    store_overhead = null_tps / store_tps if store_tps else 1.0
    events_per_test = len(list_sink.events) / (REPEATS * budget)

    record = {
        "benchmark": "telemetry_overhead",
        "budget_tests": budget,
        "batch_size": BATCH_SIZE,
        "body_instructions": BODY_INSTRUCTIONS,
        "events_per_test": round(events_per_test, 2),
        "null_sink_tests_per_sec": round(null_tps, 1),
        "list_sink_tests_per_sec": round(list_tps, 1),
        "store_sink_tests_per_sec": round(store_tps, 1),
        # > 1.0 means telemetry costs throughput; the gates keep the
        # durable path within the acceptance budget.
        "list_sink_overhead": round(list_overhead, 3),
        "store_sink_overhead": round(store_overhead, 3),
    }
    headline = (
        f"store sink {store_overhead:.3f}x baseline "
        f"({events_per_test:.1f} events/test); list {list_overhead:.3f}x"
    )
    write_bench_json("BENCH_obs.json", record, headline=headline)

    emit(format_table(
        ["sink", "tests/sec", "overhead"],
        [["null (telemetry off)", f"{null_tps:.1f}", "1.000x"],
         ["list (in-memory)", f"{list_tps:.1f}", f"{list_overhead:.3f}x"],
         ["store (durable JSONL)", f"{store_tps:.1f}",
          f"{store_overhead:.3f}x"]],
        title=f"PERF-OBS: telemetry sink overhead ({budget} tests, "
              f"batch {BATCH_SIZE})",
    ))

    # Acceptance: the durable sink stays within a few percent of the
    # disabled-telemetry baseline (3% target + measurement noise).
    assert store_overhead <= 1.08
    assert list_overhead <= 1.05
