"""E-BOOM — BOOM saturates quickly (paper §V-A).

"ChatFuzz accomplishes a remarkable **97.02%** condition coverage in **49
minutes** while running experiments on the Boom processor."  BOOM's profile
is dominated by structural conditions that varied legal code exercises, so
coverage saturates near its reachable maximum within a small test budget.
"""

from benchmarks.conftest import emit, scaled
from repro.analysis.report import format_table
from repro.fuzzing.campaign import Campaign
from repro.fuzzing.chatfuzz import FuzzLoop
from repro.soc.harness import make_boom_harness


def _run(chatfuzz, n_tests):
    loop = FuzzLoop(chatfuzz.generator(seed=131), make_boom_harness(),
                    batch_size=20)
    return Campaign(loop, "chatfuzz-boom").run_tests(n_tests)


def test_boom_saturation(benchmark, chatfuzz):
    n_tests = scaled(300)
    result = benchmark.pedantic(_run, args=(chatfuzz, n_tests),
                                rounds=1, iterations=1)
    half = result.coverage_at_tests(n_tests // 2)
    emit(format_table(
        ["metric", "measured", "paper"],
        [
            ["coverage %", f"{result.final_coverage_percent:.2f}", "97.02"],
            ["sim-minutes", f"{result.sim_hours * 60:.0f}", "49"],
            ["tests", str(result.tests_run), "(not reported)"],
            ["coverage at half budget", f"{half:.2f}", "(saturation shape)"],
        ],
        title="E-BOOM: ChatFuzz on the BOOM model",
    ))
    # Shape: well above Rocket's plateau, and already saturated at half
    # budget (the 49-minute claim is about *fast* saturation).
    assert result.final_coverage_percent > 90.0
    assert result.final_coverage_percent - half < 3.0
