"""E-MISM — mismatch volumes and automated unique filtering (paper §V-B).

"ChatFuzz effectively identified **5,866** instances of disparities …
these identified mismatches underwent a secondary filtration process,
separating more than **100 unique** mismatches.  This filtration process was
executed in an automated fashion."

The bench fuzzes the buggy RocketCore (with the realistic timed counter CSR
enabled, so the counter-read false-positive class exists) and reports raw
mismatches, filter suppressions, and unique signatures.  Absolute counts
scale with the test budget; the paper property is the successive reduction:
raw >> unique.
"""

from benchmarks.conftest import emit, scaled
from repro.analysis.report import format_table
from repro.fuzzing.campaign import Campaign
from repro.fuzzing.chatfuzz import FuzzLoop
from repro.soc.harness import make_rocket_harness
from repro.soc.rocket import RocketParams


def _run(chatfuzz, n_tests):
    harness = make_rocket_harness(RocketParams(timed_counter_csr=True))
    loop = FuzzLoop(chatfuzz.generator(seed=141), harness, batch_size=20)
    result = Campaign(loop, "mismatches").run_tests(n_tests)
    return result, loop.detector


def test_mismatch_filtering(benchmark, chatfuzz):
    n_tests = scaled(400)
    result, detector = benchmark.pedantic(
        _run, args=(chatfuzz, n_tests), rounds=1, iterations=1
    )
    emit(format_table(
        ["metric", "measured", "paper (199K tests)"],
        [
            ["tests", str(result.tests_run), "199,000"],
            ["raw mismatches", str(detector.raw_count), "5,866"],
            ["filtered false positives", str(detector.filtered_count), "(majority)"],
            ["unique mismatches", str(detector.unique_count), ">100"],
            ["raw / unique ratio", f"{detector.raw_count / max(1, detector.unique_count):.0f}x", "~58x"],
        ],
        title="E-MISM: mismatch detection and automated unique filtering",
    ))
    assert detector.raw_count > detector.unique_count * 5
    assert detector.unique_count >= 5
