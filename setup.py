"""Legacy setup shim.

The execution environment has no network and no ``wheel`` package, so pip
cannot perform a PEP 660 editable install.  This shim lets
``pip install -e . --no-build-isolation`` (and plain ``python setup.py
develop``) fall back to the classic egg-link mechanism.  All metadata lives
in pyproject.toml.

Pytest markers (``perf`` for throughput micro-benchmarks, skipped in the
tier-1 run) are registered in the repository-root ``conftest.py``.
"""

from setuptools import setup

setup()
