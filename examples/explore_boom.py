#!/usr/bin/env python3
"""BOOM exploration: reproduce the fast coverage saturation (paper §V-A).

"ChatFuzz accomplishes a remarkable 97.02% condition coverage in 49 minutes"
on BOOM.  This example fuzzes the BOOM model and shows which condition arms
remain uncovered — on BOOM that residue is essentially the debug logic.

Run:  python examples/explore_boom.py [--golden-lanes N] [--dut-lanes N]

Lane widths are pure perf knobs (``BoomBatchSimulator`` is bit-identical
to the scalar core): the coverage numbers below are the same at any
width; only wall-clock changes.
"""

import argparse

from repro.fuzzing.campaign import Campaign
from repro.fuzzing.chatfuzz import FuzzLoop
from repro.ml.lm_training import LMTrainConfig
from repro.ml.pipeline import ChatFuzzPipeline, PipelineConfig
from repro.ml.transformer import GPT2Config
from repro.soc.harness import make_boom_harness, make_rocket_harness

parser = argparse.ArgumentParser(description=__doc__)
parser.add_argument("--golden-lanes", type=int, default=0, metavar="N",
                    help="batched golden engine lane width "
                         "(0 = scalar golden, the default)")
parser.add_argument("--dut-lanes", type=int, default=0, metavar="N",
                    help="batched BOOM DUT engine lane width "
                         "(0 = scalar DUT, the default)")
args = parser.parse_args()

print("training ChatFuzz...")
pipeline = ChatFuzzPipeline(PipelineConfig(
    corpus_functions=180,
    model=GPT2Config(dim=48, n_layers=2, n_heads=2, max_seq=80),
    lm=LMTrainConfig(steps=300, batch_size=12, lr=2e-3),
    step2_steps=4, step3_steps=2, ppo_batch_size=12,
    response_instructions=20,
))
pipeline.run_all(make_rocket_harness())

print("fuzzing the BOOM model...")
harness = make_boom_harness(golden_lanes=args.golden_lanes,
                            dut_lanes=args.dut_lanes)
loop = FuzzLoop(pipeline.make_generator(seed=21), harness, batch_size=20)
result = Campaign(loop, "chatfuzz-boom").run_tests(250)

print(f"\n{result.summary()}")
print(f"paper: 97.02% in 49 minutes; "
      f"measured: {result.final_coverage_percent:.2f}% in "
      f"{result.sim_hours * 60:.0f} simulated minutes")

print("\ncoverage trajectory:")
for point in result.curve[:: max(1, len(result.curve) // 8)]:
    bar = "#" * int(point.coverage_percent / 2)
    print(f"  {point.tests:5d} tests  {point.coverage_percent:6.2f}%  {bar}")

cov = harness.core.cov
missed = sorted(
    cov.arm_name(arm) for arm in loop.calculator.cumulative.missing()
)
print(f"\nuncovered arms ({len(missed)}):")
for name in missed:
    print("  ", name)
print("\n(the boom.dm.* debug-module arms are unreachable by instruction "
      "fuzzing — they are BOOM's ~3% residue, as in the paper)")
