#!/usr/bin/env python3
"""Quickstart: assemble a program, run it differentially, read the coverage.

This walks the three layers a new user meets first:

1. the ISA layer (assemble / disassemble),
2. the differential harness (golden ISS vs. the RocketCore model),
3. condition coverage and the mismatch detector.

Run:  python examples/quickstart.py
"""

from repro.fuzzing.mismatch import compare_traces
from repro.isa import Assembler, Disassembler
from repro.isa.spec import DRAM_BASE
from repro.soc.harness import make_rocket_harness, preamble_words

# ---------------------------------------------------------------------------
# 1. Write a small test program.  The harness preamble initialises sp/s0/gp
#    to valid data addresses and points ra at the terminating wfi.
# ---------------------------------------------------------------------------
body_base = DRAM_BASE + 4 * (len(preamble_words()) + 2)
body = Assembler(base=body_base).assemble("""
    li   a0, 6
    li   a1, 7
    mul  a2, a0, a1        # 42 — Bug2: Rocket's tracer drops this write-back
    sd   a2, 0(s0)
    ld   a3, 0(s0)
loop:
    addi a0, a0, -1
    bnez a0, loop          # trains the branch predictor
    amoor.d x0, a1, (s0)   # Finding2: trace shows data arriving at x0
    ecall                  # takes a trap; the handler skips it
""")

print("=== program ===")
print(Disassembler().listing(body, base=body_base))

# ---------------------------------------------------------------------------
# 2. Run it on the RocketCore model (with the paper's bugs injected) and on
#    the golden ISS.
# ---------------------------------------------------------------------------
harness = make_rocket_harness()
dut_trace, golden_trace, report = harness.run_differential(body)

print("\n=== DUT commit trace (first 12 retired instructions) ===")
print(dut_trace.render(limit=12))

# ---------------------------------------------------------------------------
# 3. Coverage + mismatches — the two feedback signals ChatFuzz runs on.
# ---------------------------------------------------------------------------
print(f"\ncondition coverage: {report.standalone_count}/{report.total_arms} "
      f"arms = {100 * report.standalone_fraction:.1f}% "
      f"in {report.cycles} cycles")

mismatches = compare_traces(dut_trace, golden_trace)
print(f"\n=== {len(mismatches)} mismatches vs. golden model ===")
for mismatch in mismatches:
    print(" ", mismatch)

from repro.analysis.bugs import classify_mismatch  # noqa: E402

print("\n=== classified against the paper's findings ===")
for mismatch in mismatches:
    match = classify_mismatch(mismatch)
    if match is not None:
        print(f"  {match.bug_id} ({match.cwe or 'spec deviation'}): "
              f"{match.description}")
