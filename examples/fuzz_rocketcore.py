#!/usr/bin/env python3
"""Run the Figure-1a fuzzing loop on RocketCore and compare fuzzers.

Trains a small ChatFuzz model, then races it against TheHuzz-style mutation
fuzzing and random regression at an equal test budget, printing the
coverage curves on the paper's simulated time axis.

Run:  python examples/fuzz_rocketcore.py [--workers N]

With ``--workers N`` each batch's differential simulation is sharded over a
pool of N worker processes (each owning its own DUT + golden ISS); results
are bit-identical to serial, only the wall-clock changes.  Serial wins on a
single-core machine and for tiny batches — see ROADMAP.md.

With ``--golden-lanes N`` the golden half of every differential batch runs
on the batched numpy engine (N lockstep lanes; 0 = scalar golden, the
default), and ``--dut-lanes N`` does the same for the DUT half (traces and
coverage reports both).  Also bit-identical — only faster; see the
ROADMAP's "Choosing lane widths (golden + DUT)" guidance for picking N.

To run the whole comparison as parallel *campaigns* instead (one worker
process per fuzzer arm, with budget scheduling, checkpoint/resume and
cross-campaign aggregation), use ``examples/run_fleet.py``.
"""

import argparse

from repro.analysis.report import format_table
from repro.baselines.random_regression import RandomRegressionGenerator
from repro.baselines.thehuzz import TheHuzzGenerator
from repro.fuzzing.campaign import Campaign
from repro.fuzzing.chatfuzz import FuzzLoop
from repro.fuzzing.pool import ShardedExecutor
from repro.ml.lm_training import LMTrainConfig
from repro.obs.events import NULL_SINK
from repro.obs.store import ResultsStore
from repro.ml.pipeline import ChatFuzzPipeline, PipelineConfig
from repro.ml.transformer import GPT2Config
from repro.soc.harness import make_rocket_harness, rocket_harness_factory

parser = argparse.ArgumentParser(description=__doc__)
parser.add_argument("--workers", type=int, default=0, metavar="N",
                    help="shard each batch over N worker processes "
                         "(0 = serial, the default)")
parser.add_argument("--tests", type=int, default=300, metavar="N",
                    help="test budget per fuzzer")
parser.add_argument("--golden-lanes", type=int, default=0, metavar="N",
                    help="batched golden engine lane width "
                         "(0 = scalar golden, the default)")
parser.add_argument("--dut-lanes", type=int, default=0, metavar="N",
                    help="batched DUT engine lane width "
                         "(0 = scalar DUT, the default)")
parser.add_argument("--store", metavar="DIR", default=None,
                    help="append structured telemetry (per-phase batch "
                         "timings, coverage points, mismatch discoveries, "
                         "coverage bitmaps) to a results store at DIR; "
                         "inspect with python -m repro.obs.dashboard "
                         "--store DIR [--report]")
args = parser.parse_args()

sink = NULL_SINK
if args.store is not None:
    store = ResultsStore(args.store)
    sink = store.sink()
    print(f"results store: {store.directory}")

print("training ChatFuzz (three-step pipeline)...")
pipeline = ChatFuzzPipeline(PipelineConfig(
    corpus_functions=200,
    model=GPT2Config(dim=48, n_layers=2, n_heads=2, max_seq=80),
    lm=LMTrainConfig(steps=350, batch_size=12, lr=2e-3),
    step2_steps=5, step3_steps=3, ppo_batch_size=12,
    response_instructions=20,
))
pipeline.run_all(make_rocket_harness())

mode = f"{args.workers} workers" if args.workers > 1 else "serial"
if args.golden_lanes > 0:
    mode += f", {args.golden_lanes} golden lanes"
if args.dut_lanes > 0:
    mode += f", {args.dut_lanes} DUT lanes"
print(f"fuzzing RocketCore: {args.tests} tests per fuzzer ({mode})\n")
results = {}
for name, generator in [
    ("ChatFuzz", pipeline.make_generator(seed=11)),
    ("TheHuzz", TheHuzzGenerator(body_instructions=24, seed=1)),
    ("random", RandomRegressionGenerator(body_instructions=24, seed=2)),
]:
    executor = (ShardedExecutor(n_workers=args.workers)
                if args.workers > 1 else None)
    factory = rocket_harness_factory(golden_lanes=args.golden_lanes,
                                     dut_lanes=args.dut_lanes)
    loop = FuzzLoop(generator, factory, batch_size=20,
                    executor=executor, sink=sink)
    with Campaign(loop, name) as campaign:
        results[name] = campaign.run_tests(args.tests)
    if sink.enabled:
        sink.save_coverage(name, results[name].final_coverage)
    print(" ", results[name].summary())

if sink.enabled:
    sink.close()

rows = []
for fraction in (0.2, 0.5, 1.0):
    at = int(args.tests * fraction)
    sim_hours = results["ChatFuzz"].curve[-1].sim_hours * fraction
    rows.append([at, f"{sim_hours:.2f}"] + [
        f"{results[name].coverage_at_tests(at):.1f}"
        for name in ("ChatFuzz", "TheHuzz", "random")
    ])
print()
print(format_table(
    ["tests", "sim-hours", "ChatFuzz", "TheHuzz", "random"], rows,
    title="condition coverage %, RocketCore (paper Fig. 2 shape)",
))

print("\nmismatch detector (buggy DUT vs golden model):")
for name, result in results.items():
    print(f"  {name}: raw={result.raw_mismatches} "
          f"unique={result.unique_mismatches}")
