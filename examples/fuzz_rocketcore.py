#!/usr/bin/env python3
"""Run the Figure-1a fuzzing loop on RocketCore and compare fuzzers.

Trains a small ChatFuzz model, then races it against TheHuzz-style mutation
fuzzing and random regression at an equal test budget, printing the
coverage curves on the paper's simulated time axis.

Run:  python examples/fuzz_rocketcore.py
"""

from repro.analysis.report import format_table
from repro.baselines.random_regression import RandomRegressionGenerator
from repro.baselines.thehuzz import TheHuzzGenerator
from repro.fuzzing.campaign import Campaign
from repro.fuzzing.chatfuzz import FuzzLoop
from repro.ml.lm_training import LMTrainConfig
from repro.ml.pipeline import ChatFuzzPipeline, PipelineConfig
from repro.ml.transformer import GPT2Config
from repro.soc.harness import make_rocket_harness

N_TESTS = 300

print("training ChatFuzz (three-step pipeline)...")
pipeline = ChatFuzzPipeline(PipelineConfig(
    corpus_functions=200,
    model=GPT2Config(dim=48, n_layers=2, n_heads=2, max_seq=80),
    lm=LMTrainConfig(steps=350, batch_size=12, lr=2e-3),
    step2_steps=5, step3_steps=3, ppo_batch_size=12,
    response_instructions=20,
))
pipeline.run_all(make_rocket_harness())

print(f"fuzzing RocketCore: {N_TESTS} tests per fuzzer\n")
results = {}
for name, generator in [
    ("ChatFuzz", pipeline.make_generator(seed=11)),
    ("TheHuzz", TheHuzzGenerator(body_instructions=24, seed=1)),
    ("random", RandomRegressionGenerator(body_instructions=24, seed=2)),
]:
    loop = FuzzLoop(generator, make_rocket_harness(), batch_size=20)
    results[name] = Campaign(loop, name).run_tests(N_TESTS)
    print(" ", results[name].summary())

rows = []
for fraction in (0.2, 0.5, 1.0):
    at = int(N_TESTS * fraction)
    sim_hours = results["ChatFuzz"].curve[-1].sim_hours * fraction
    rows.append([at, f"{sim_hours:.2f}"] + [
        f"{results[name].coverage_at_tests(at):.1f}"
        for name in ("ChatFuzz", "TheHuzz", "random")
    ])
print()
print(format_table(
    ["tests", "sim-hours", "ChatFuzz", "TheHuzz", "random"], rows,
    title="condition coverage %, RocketCore (paper Fig. 2 shape)",
))

print("\nmismatch detector (buggy DUT vs golden model):")
for name, result in results.items():
    print(f"  {name}: raw={result.raw_mismatches} "
          f"unique={result.unique_mismatches}")
