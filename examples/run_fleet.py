#!/usr/bin/env python3
"""Reproduce the paper's Figure-2 fuzzer comparison as one fleet run.

Builds a fleet of campaign arms — ChatFuzz (trained on the fly), TheHuzz,
DifuzzRTL and random regression, optionally seed-swept — and runs them
through :class:`repro.fuzzing.fleet.FleetRunner`: sharded over campaign
worker processes, optionally budget-scheduled (round-robin or the
MABFuzz-style UCB1 bandit), checkpointable, and aggregated into union
coverage, a merged coverage curve on the shared sim-hours epoch, and the
cross-campaign E-BUGS detection table with per-campaign attribution.

Run:  python examples/run_fleet.py [--tests N] [--workers W]
          [--scheduler none|roundrobin|bandit] [--mode rounds|streaming]
          [--slice N] [--checkpoint DIR] [--recover-checkpoint]
          [--seeds K] [--no-chatfuzz] [--max-retries N]
          [--slice-timeout S] [--no-quarantine]
          [--chaos-seed SEED] [--chaos-rate P] [--chaos-kinds K[,K]]
          [--store DIR] [--dashboard PORT]
          [--harness rocket|boom] [--golden-lanes N] [--dut-lanes N]

Useful shapes:

- ``--workers 4`` on a >= 4-core box runs four campaigns concurrently
  (campaign workers, *not* harness workers — see ROADMAP.md: campaigns
  inside fleet workers always simulate serially).
- ``--scheduler bandit`` spends the shared budget where new coverage is
  still being found instead of splitting it evenly.
- ``--scheduler roundrobin --mode streaming --workers 4`` keeps all four
  workers saturated: slices are dispatched as workers free up instead of
  waiting at round barriers (see ``--mode`` help for the determinism
  tradeoff).
- ``--checkpoint DIR`` makes the run resumable: kill it, rerun the same
  command, and completed slices are not redone.
- ``--chaos-seed 7 --chaos-rate 0.2 --workers 2`` injects a deterministic
  fault plan (raised exceptions by default; add ``--chaos-kinds
  raise,hang,die`` for hung slices and worker deaths) to watch the fleet
  retry, recycle its pool and quarantine — the run should still complete
  and, fault kinds permitting, match the fault-free result bit-for-bit.
- ``--harness boom --golden-lanes 8 --dut-lanes 8`` points every arm at
  the BOOM model on the batched engines (any kind in the engine registry
  with a batch engine works; lane widths are pure perf knobs — results
  are bit-identical to scalar at every width).
- ``--store results/`` streams structured telemetry into a durable
  results store (events + coverage bitmaps; survives kills, appends
  across resumes — combine with ``--checkpoint`` for resumable runs with
  a persistent history), and ``--dashboard 8080`` serves the live
  dashboard over it at http://127.0.0.1:8080/ while the fleet runs
  (``--dashboard 0`` picks a free port).  Both work with either dispatch
  mode.  Inspect a finished store headlessly with
  ``python -m repro.obs.dashboard --store results/ --report``.
"""

import argparse
import pickle
from pathlib import Path

from repro.analysis.fleet import (
    fleet_bug_table,
    fleet_health_table,
    fleet_stats_table,
)
from repro.analysis.report import format_table
from repro.fuzzing.faults import FaultPlan
from repro.fuzzing.fleet import CampaignSpec, FleetRunner
from repro.fuzzing.scheduler import BanditScheduler, RoundRobin
from repro.obs.dashboard import DashboardServer
from repro.obs.events import NULL_SINK
from repro.obs.store import ResultsStore
from repro.ml.lm_training import LMTrainConfig
from repro.ml.pipeline import ChatFuzzPipeline, PipelineConfig
from repro.ml.transformer import GPT2Config
from repro.soc.harness import make_rocket_harness

parser = argparse.ArgumentParser(
    description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
)
parser.add_argument("--tests", type=int, default=200, metavar="N",
                    help="test budget per campaign arm")
parser.add_argument("--workers", type=int, default=0, metavar="W",
                    help="campaign worker processes (0 = in-process)")
parser.add_argument("--scheduler", choices=("none", "roundrobin", "bandit"),
                    default="none",
                    help="budget scheduling: none = every arm runs its whole "
                         "budget; roundrobin/bandit allocate slices")
parser.add_argument("--mode", choices=("rounds", "streaming"),
                    default="rounds",
                    help="scheduled dispatch (needs --scheduler "
                         "roundrobin|bandit): 'rounds' synchronises slices "
                         "at round barriers and is bit-for-bit reproducible "
                         "run to run; 'streaming' dispatches a new slice "
                         "the moment a worker frees up, so workers never "
                         "idle — each campaign's own trajectory stays "
                         "deterministic, but the slice interleaving (and "
                         "therefore the bandit's allocation under shared "
                         "caps) varies run to run on a worker pool.  With "
                         "--scheduler none, fleet.run() already streams "
                         "per-campaign checkpoints as arms finish")
parser.add_argument("--slice", type=int, default=40, metavar="N",
                    dest="slice_tests", help="tests per scheduler slice")
parser.add_argument("--checkpoint", metavar="DIR", default=None,
                    help="checkpoint directory (enables resume)")
parser.add_argument("--recover-checkpoint", action="store_true",
                    help="resume past torn checkpoint snapshots (a previous "
                         "run killed mid-write): fall back to the last "
                         "intact per-arm snapshot, or restart the arm, "
                         "instead of refusing to load")
parser.add_argument("--seeds", type=int, default=1, metavar="K",
                    help="seed-sweep: K arms per fuzzer kind")
parser.add_argument("--harness", choices=("rocket", "boom"), default="rocket",
                    help="DUT core kind for every arm (default: rocket)")
parser.add_argument("--golden-lanes", type=int, default=0, metavar="N",
                    help="batched golden engine lane width for every arm "
                         "(0 = scalar golden, the default)")
parser.add_argument("--dut-lanes", type=int, default=0, metavar="N",
                    help="batched DUT engine lane width for every arm "
                         "(0 = scalar DUT; kinds without a batch engine "
                         "reject nonzero widths loudly)")
parser.add_argument("--no-chatfuzz", action="store_true",
                    help="skip ChatFuzz (and its training step)")
parser.add_argument("--store", metavar="DIR", default=None,
                    help="append structured telemetry (events + coverage "
                         "bitmaps) to a durable results store at DIR; "
                         "resumed runs append to the same store")
parser.add_argument("--dashboard", type=int, default=None, metavar="PORT",
                    help="serve the live dashboard over the results store "
                         "on PORT while the fleet runs (0 = pick a free "
                         "port; requires --store)")

fault = parser.add_argument_group(
    "fault tolerance / chaos testing",
    "The fleet retries failed slices, rebuilds broken worker pools and "
    "quarantines arms that keep failing (see ROADMAP.md 'Failure "
    "semantics').  The chaos knobs inject deterministic faults to "
    "exercise those paths end-to-end.")
fault.add_argument("--max-retries", type=int, default=2, metavar="N",
                   help="attempts per slice beyond the first before the "
                        "arm is quarantined (default: 2)")
fault.add_argument("--slice-timeout", type=float, default=None, metavar="S",
                   help="seconds a slice may run before it is treated as "
                        "hung: pooled fleets recycle the worker pool, "
                        "in-process fleets flag the slice after the fact")
fault.add_argument("--no-quarantine", action="store_true",
                   help="fail the whole fleet on the first exhausted arm "
                        "instead of quarantining it and continuing")
fault.add_argument("--chaos-seed", type=int, default=None, metavar="SEED",
                   help="inject a deterministic seeded fault plan "
                        "(FaultPlan.seeded) into the run; same seed = "
                        "same faults")
fault.add_argument("--chaos-rate", type=float, default=0.1, metavar="P",
                   help="with --chaos-seed: probability each (arm, slice) "
                        "gets a fault point (default: 0.1)")
fault.add_argument("--chaos-kinds", default="raise", metavar="K[,K]",
                   help="with --chaos-seed: comma-separated fault kinds "
                        "drawn from raise,hang,die,crash (default: raise; "
                        "'die' needs --workers > 0 to have a pool to kill)")
args = parser.parse_args()

# Every arm shares the DUT kind and lane widths; a kind without a batch
# engine rejects nonzero --dut-lanes at spec construction, before any
# worker spins up.
arm_kw = dict(harness=args.harness, golden_lanes=args.golden_lanes,
              dut_lanes=args.dut_lanes)

specs = []
for k in range(args.seeds):
    specs += [
        CampaignSpec(f"TheHuzz#{k}", fuzzer="thehuzz",
                     fuzzer_config={"body_instructions": 24}, seed=1 + k,
                     batch_size=20, budget_tests=args.tests, **arm_kw),
        CampaignSpec(f"DifuzzRTL#{k}", fuzzer="difuzzrtl",
                     fuzzer_config={"body_instructions": 24}, seed=31 + k,
                     batch_size=20, budget_tests=args.tests, **arm_kw),
        CampaignSpec(f"random#{k}", fuzzer="random",
                     fuzzer_config={"body_instructions": 24}, seed=61 + k,
                     batch_size=20, budget_tests=args.tests, **arm_kw),
    ]

if not args.no_chatfuzz:
    # With --checkpoint, the trained generators are cached next to the
    # checkpoint: a resumed run must rebuild *identical* specs (the
    # checkpoint fingerprint hashes the generator), and retraining on
    # every resume would waste minutes to produce state the checkpoint
    # supersedes anyway.
    cache = (Path(args.checkpoint) / "chatfuzz_generators.pkl"
             if args.checkpoint else None)
    if cache is not None and cache.exists():
        print("loading cached ChatFuzz generators from the checkpoint...")
        generators = pickle.loads(cache.read_bytes())
    else:
        print("training ChatFuzz (three-step pipeline)...")
        pipeline = ChatFuzzPipeline(PipelineConfig(
            corpus_functions=200,
            model=GPT2Config(dim=48, n_layers=2, n_heads=2, max_seq=80),
            lm=LMTrainConfig(steps=350, batch_size=12, lr=2e-3),
            step2_steps=5, step3_steps=3, ppo_batch_size=12,
            response_instructions=20,
        ))
        pipeline.run_all(make_rocket_harness())
        generators = [pipeline.make_generator(seed=11 + k)
                      for k in range(args.seeds)]
        if cache is not None:
            cache.parent.mkdir(parents=True, exist_ok=True)
            cache.write_bytes(pickle.dumps(generators))
    # The trained generator is picklable, so it ships to fleet workers and
    # travels inside checkpoints like any other campaign state.
    specs += [
        CampaignSpec(f"ChatFuzz#{k}", generator=generator,
                     batch_size=20, budget_tests=args.tests, **arm_kw)
        for k, generator in enumerate(generators)
    ]

fault_plan = None
if args.chaos_seed is not None:
    kinds = tuple(k.strip() for k in args.chaos_kinds.split(",") if k.strip())
    n_slices = max(1, -(-args.tests // args.slice_tests))
    fault_plan = FaultPlan.seeded(args.chaos_seed, n_arms=len(specs),
                                  n_slices=n_slices, rate=args.chaos_rate,
                                  kinds=kinds)
    print(f"chaos: injecting {len(fault_plan)} fault points "
          f"(seed={args.chaos_seed}, rate={args.chaos_rate}, "
          f"kinds={','.join(kinds)})")

placement = f"{args.workers} campaign workers" if args.workers else "in-process"
lanes = ""
if args.golden_lanes or args.dut_lanes:
    lanes = f", {args.golden_lanes}g/{args.dut_lanes}d lanes"
print(f"\nfleet: {len(specs)} campaigns x {args.tests} tests on "
      f"{args.harness}{lanes} "
      f"({placement}, scheduler={args.scheduler}, mode={args.mode})\n")

if args.dashboard is not None and args.store is None:
    parser.error("--dashboard requires --store")

sink = NULL_SINK
dashboard = None
if args.store is not None:
    store = ResultsStore(args.store)
    sink = store.sink()
    print(f"results store: {store.directory}")
    if args.dashboard is not None:
        dashboard = DashboardServer(store, port=args.dashboard).start()
        print(f"dashboard: {dashboard.url}")

try:
    with FleetRunner(specs, n_workers=args.workers,
                     checkpoint_dir=args.checkpoint,
                     checkpoint_recover=args.recover_checkpoint,
                     max_retries=args.max_retries,
                     slice_timeout=args.slice_timeout,
                     quarantine=not args.no_quarantine,
                     fault_plan=fault_plan,
                     sink=sink) as fleet:
        if args.scheduler == "none":
            result = fleet.run()
        else:
            scheduler = (RoundRobin() if args.scheduler == "roundrobin"
                         else BanditScheduler(exploration=0.1))
            result = fleet.run_scheduled(scheduler,
                                         slice_tests=args.slice_tests,
                                         mode=args.mode)
        stats = fleet.last_stats
finally:
    sink.close()
    if dashboard is not None:
        dashboard.stop()

print(result.summary())
print()
print(fleet_stats_table({"this run": stats}))
if not result.health.healthy:
    print()
    print(fleet_health_table(result.health))

names = [spec.name for spec in specs]
rows = []
for fraction in (0.2, 0.5, 1.0):
    at = int(args.tests * fraction)
    rows.append([at] + [
        f"{campaign.coverage_at_tests(at):.1f}"
        for campaign in result.campaigns
    ])
print()
core_label = {"rocket": "RocketCore", "boom": "BOOM"}[args.harness]
print(format_table(
    ["tests"] + names, rows,
    title=f"condition coverage %, {core_label} (paper Fig. 2 shape)",
))

merged = result.merged_curve()
rows = [[f"{point.sim_hours:.2f}", point.tests,
         f"{point.coverage_percent:.2f}"]
        for point in merged[:: max(1, len(merged) // 8)]]
print()
print(format_table(
    ["sim-hours", "fleet tests", "union cov%"], rows,
    title="fleet union coverage on the shared sim-hours epoch",
))

print()
print(fleet_bug_table(result.campaigns))
