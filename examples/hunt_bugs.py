#!/usr/bin/env python3
"""Bug hunting: reproduce the paper's five RocketCore findings (§V-B).

Part 1 triggers each behaviour with a targeted program (the "manual
analysis" view); part 2 finds them by fuzzing (the campaign view).

Run:  python examples/hunt_bugs.py

For the fleet-scale version of part 2 — several fuzzers hunting at once,
with signatures deduped across campaigns and per-campaign attribution in
the E-BUGS table — see ``examples/run_fleet.py``.
"""

from repro.analysis.bugs import KNOWN_BUGS, classify_mismatches, detected_bugs
from repro.fuzzing.campaign import Campaign
from repro.fuzzing.chatfuzz import FuzzLoop
from repro.fuzzing.mismatch import compare_traces
from repro.isa import Assembler
from repro.isa.spec import DRAM_BASE
from repro.ml.lm_training import LMTrainConfig
from repro.ml.pipeline import ChatFuzzPipeline, PipelineConfig
from repro.ml.transformer import GPT2Config
from repro.soc.harness import make_rocket_harness, preamble_words

harness = make_rocket_harness()
body_base = DRAM_BASE + 4 * (len(preamble_words()) + 2)

TARGETED = {
    "BUG1 (CWE-1202) stale I$ after unfenced code patch": """
        auipc t1, 0
        addi t1, t1, 36
        lui t0, 0x138
        addi t0, t0, 0x393
        addi t3, x0, 0
        j target
    patch:
        sw t0, 0(t1)
        nop                  # the missing FENCE.I
        j target
    target:
        addi t2, t2, 2
        bne t3, x0, done
        addi t3, x0, 1
        j patch
    done:
        nop
    """,
    "BUG2 (CWE-440) tracer drops mul/div write-backs": """
        li a0, 6
        li a1, 7
        mul a2, a0, a1
        div a3, a2, a1
    """,
    "FINDING1 trap-priority inversion": """
        slli t1, t1, 1
        addi t1, t1, 1
        ld a0, 0(t1)
    """,
    "FINDING2 AMO rd=x0 shows data in trace": """
        amoor.d x0, a1, (s0)
    """,
    "FINDING3 spurious x0 write after load+jalr": """
        ld a0, 0(s0)
        jalr x0, 0(ra)
    """,
}

print("=== part 1: targeted reproduction ===")
for title, source in TARGETED.items():
    body = Assembler(base=body_base).assemble(source)
    dut, gold, _ = harness.run_differential(body)
    mismatches = compare_traces(dut, gold)
    status = "TRIGGERED" if mismatches else "no divergence"
    print(f"\n{title}: {status}")
    for mismatch in mismatches[:2]:
        print("   ", mismatch)

print("\n=== part 2: find them by fuzzing ===")
print("training a small ChatFuzz model...")
pipeline = ChatFuzzPipeline(PipelineConfig(
    corpus_functions=180,
    model=GPT2Config(dim=48, n_layers=2, n_heads=2, max_seq=80),
    lm=LMTrainConfig(steps=300, batch_size=12, lr=2e-3),
    step2_steps=4, step3_steps=2, ppo_batch_size=12,
    response_instructions=20,
))
pipeline.run_all(make_rocket_harness())

loop = FuzzLoop(pipeline.make_generator(seed=5), make_rocket_harness(),
                batch_size=20)
result = Campaign(loop, "bughunt").run_tests(400)
print(f"\n{result.summary()}")

groups = classify_mismatches(loop.detector.unique.values())
found = detected_bugs(loop.detector.unique.values())
for bug_id, info in KNOWN_BUGS.items():
    status = "FOUND" if bug_id in found else "not found in this campaign"
    count = len(groups.get(bug_id, []))
    print(f"  {bug_id:9s} ({info.cwe or 'spec deviation':13s}) "
          f"{status} [{count} unique signature(s)]")
print(f"  unexplained unique signatures: "
      f"{len(groups.get('UNEXPLAINED', []))}")
