#!/usr/bin/env python3
"""Train the full three-step ChatFuzz pipeline (paper Figure 1b) and inspect
every stage's telemetry.

Scale is controlled by one knob so the script runs in a couple of minutes on
a laptop; raise SCALE for better models.

Run:  python examples/train_pipeline.py
"""

import time

import numpy as np

from repro.ml.lm_training import LMTrainConfig
from repro.ml.pipeline import ChatFuzzPipeline, PipelineConfig
from repro.ml.rewards import DisassemblerReward
from repro.ml.transformer import GPT2Config
from repro.soc.harness import make_rocket_harness

SCALE = 1.0

config = PipelineConfig(
    corpus_functions=int(200 * SCALE),
    tokenizer_max_vocab=2048,
    model=GPT2Config(dim=48, n_layers=2, n_heads=2, max_seq=80),
    lm=LMTrainConfig(steps=int(350 * SCALE), batch_size=12, lr=2e-3),
    step2_steps=int(6 * SCALE),       # paper: 30 epochs
    step3_steps=int(3 * SCALE),       # paper: 15 epochs
    ppo_batch_size=12,
    response_instructions=20,
)

t0 = time.time()
pipeline = ChatFuzzPipeline(config)
print(f"corpus: {len(pipeline.corpus)} functions, "
      f"{pipeline.corpus.total_instructions()} instructions")
print(f"tokenizer: {pipeline.tokenizer.vocab_size} half-word tokens")
print(f"model: {pipeline.model.num_parameters():,} parameters\n")

probe = DisassemblerReward()


def validity() -> float:
    bodies = pipeline.make_generator(seed=99).generate_batch(16)
    return float(np.mean([probe.validity_rate(b) for b in bodies]))


# -- step 1: unsupervised machine-language modelling -------------------------
lm = pipeline.run_step1()
print(f"[step1] LM loss {lm.initial_loss:.3f} -> {lm.final_loss:.3f} "
      f"({time.time() - t0:.0f}s)")
print(f"[step1] generation validity: {validity():.1%}")

# -- step 2: PPO clean-up with the disassembler reward (Eq. 1) ---------------
step2 = pipeline.run_step2()
print(f"[step2] mean reward {step2.mean_rewards[0]:+.3f} -> "
      f"{step2.mean_rewards[-1]:+.3f}, |KL| {abs(step2.kls[-1]):.4f} "
      f"({time.time() - t0:.0f}s)")
print(f"[step2] generation validity: {validity():.1%}")

# -- step 3: PPO against RTL-simulation coverage -----------------------------
harness = make_rocket_harness()
step3 = pipeline.run_step3(harness)
print(f"[step3] coverage reward {step3.mean_rewards[0]:+.3f} -> "
      f"{step3.mean_rewards[-1]:+.3f}; campaign coverage "
      f"{pipeline.result.step3_coverage_percent:.2f}% "
      f"({time.time() - t0:.0f}s)")

# -- the product: an input generator for the fuzzing loop --------------------
from repro.isa import Disassembler  # noqa: E402

generator = pipeline.make_generator(seed=7)
body = generator.generate_batch(1)[0]
print(f"\nsample generated test ({len(body)} instructions):")
print(Disassembler().listing(body))
