"""The retained set-based coverage engine — reference for the bitset path.

This module preserves, verbatim in behaviour, the original hash-set
implementation of the coverage data path (recording, per-test reports,
cumulative merging, calculator scoring) that the packed-bitset engine in
``repro.rtl.coverage`` / ``repro.rtl.report`` / ``repro.coverage.calculator``
replaced.  It exists for two jobs:

- **parity pinning** — ``tests/coverage/test_bitset_parity.py`` drives both
  engines with identical observation streams and asserts bit-for-bit equal
  hits, counts, increments, totals and scores;
- **benchmarking** — ``benchmarks/test_perf_coverage.py`` measures the
  bitset engine's tests/sec against this implementation as the "before"
  baseline.

It is *not* part of the production data path; nothing outside tests and
benchmarks should import it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.coverage.calculator import InputCoverage


class SetConditionCoverage:
    """Original set-based coverage database (one ``set.add`` per record)."""

    def __init__(self) -> None:
        self._names: list[str] = []
        self._frozen = False
        self.run_hits: set[int] = set()

    def declare(self, name: str) -> int:
        if self._frozen:
            raise RuntimeError(f"cannot declare {name!r}: frozen")
        self._names.append(name)
        return len(self._names) - 1

    def freeze(self) -> None:
        self._frozen = True

    def record(self, handle: int, value) -> bool:
        value = bool(value)
        self.run_hits.add(2 * handle + (1 if value else 0))
        return value

    def begin_run(self) -> None:
        self.run_hits = set()

    @property
    def total_arms(self) -> int:
        return 2 * len(self._names)


@dataclass(frozen=True)
class SetCoverageReport:
    """Original per-test report: a frozenset of arm indices."""

    hits: frozenset[int]
    total_arms: int
    cycles: int = 0

    @classmethod
    def from_coverage(cls, cov: SetConditionCoverage, cycles: int = 0) -> "SetCoverageReport":
        return cls(hits=frozenset(cov.run_hits), total_arms=cov.total_arms,
                   cycles=cycles)

    @property
    def standalone_count(self) -> int:
        return len(self.hits)


@dataclass
class SetCumulativeCoverage:
    """Original mutable union-of-hits accumulator."""

    total_arms: int
    hits: set[int] = field(default_factory=set)

    def merge(self, report) -> int:
        new = set(report.hits) - self.hits
        self.hits |= new
        return len(new)

    @property
    def count(self) -> int:
        return len(self.hits)

    @property
    def percent(self) -> float:
        if self.total_arms == 0:
            return 0.0
        return 100.0 * len(self.hits) / self.total_arms


class SetCoverageCalculator:
    """Original calculator: per-report set differences and unions."""

    def __init__(self, total_arms: int, batch_mode: bool = True) -> None:
        self.cumulative = SetCumulativeCoverage(total_arms=total_arms)
        self.batch_mode = batch_mode
        self._batch_baseline: set[int] = set()

    @property
    def total_arms(self) -> int:
        return self.cumulative.total_arms

    @property
    def total_percent(self) -> float:
        return self.cumulative.percent

    def begin_batch(self) -> None:
        self._batch_baseline = set(self.cumulative.hits)

    def observe(self, report) -> InputCoverage:
        baseline = self._batch_baseline if self.batch_mode else self.cumulative.hits
        incremental = len(set(report.hits) - baseline)
        self.cumulative.merge(report)
        return InputCoverage(
            standalone=report.standalone_count,
            incremental=incremental,
            total=self.cumulative.count,
            total_arms=self.cumulative.total_arms,
        )

    def observe_batch(self, reports) -> list[InputCoverage]:
        self.begin_batch()
        return [self.observe(report) for report in reports]
