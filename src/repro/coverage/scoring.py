"""Input scoring: coverage values -> scalar score/reward (paper §III-B3).

The paper's step-3 reward "takes into account the overall knowledge of
architecture until the i-th step, the incremental coverage (i.e., whether
there was an improvement), and stand-alone coverage", giving a bonus to
inputs that increase coverage and a negative reward to those that do not.
:class:`CoverageScorer` implements exactly that shape with explicit weights.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.coverage.calculator import InputCoverage

#: Below this batch size the numpy staging overhead outweighs the win.
_VECTOR_MIN_BATCH = 8


@dataclass(frozen=True)
class ScoreWeights:
    """Weights of the coverage-based reward.

    score = standalone_weight * standalone_fraction
          + incremental_weight * (incremental / total_arms)
          + improvement_bonus                    (if incremental > 0)
          - stagnation_penalty                   (if incremental == 0)
          + exploration_weight * (1 - total_fraction)  * standalone_fraction

    The final term scales the value of standalone coverage by how much of the
    design is still unexplored ("overall knowledge of the architecture").
    """

    standalone_weight: float = 2.0
    incremental_weight: float = 30.0
    improvement_bonus: float = 1.0
    stagnation_penalty: float = 1.0
    exploration_weight: float = 1.0


class CoverageScorer:
    """Deterministic reward agent for coverage feedback (no learned scorer —
    the paper argues deterministic agents give more precise guidance)."""

    def __init__(self, weights: ScoreWeights | None = None) -> None:
        self.weights = weights or ScoreWeights()

    def score(self, coverage: InputCoverage) -> float:
        """Scalar score for one test input's coverage outcome."""
        w = self.weights
        value = w.standalone_weight * coverage.standalone_fraction
        if coverage.total_arms:
            value += w.incremental_weight * (
                coverage.incremental / coverage.total_arms
            )
        if coverage.improved:
            value += w.improvement_bonus
        else:
            value -= w.stagnation_penalty
        value += (
            w.exploration_weight
            * (1.0 - coverage.total_fraction)
            * coverage.standalone_fraction
        )
        return value

    def score_batch(self, coverages: list[InputCoverage]) -> list[float]:
        """Score a whole batch.

        Vectorised over ``numpy`` float64 with the same operation order as
        :meth:`score`, so results are bit-for-bit identical to the scalar
        loop (pinned by ``tests/coverage/test_bitset_parity.py``).
        """
        if (
            len(coverages) < _VECTOR_MIN_BATCH
            or any(c.total_arms == 0 for c in coverages)
        ):
            return [self.score(c) for c in coverages]
        w = self.weights
        total_arms = np.array([c.total_arms for c in coverages], dtype=np.float64)
        standalone = np.array([c.standalone for c in coverages], dtype=np.float64)
        incremental = np.array([c.incremental for c in coverages], dtype=np.float64)
        total = np.array([c.total for c in coverages], dtype=np.float64)

        sa_frac = standalone / total_arms
        value = w.standalone_weight * sa_frac
        value = value + w.incremental_weight * (incremental / total_arms)
        value = value + np.where(
            incremental > 0, w.improvement_bonus, -w.stagnation_penalty
        )
        value = value + (
            w.exploration_weight * (1.0 - total / total_arms) * sa_frac
        )
        return [float(v) for v in value]
