"""The Coverage Calculator (paper §IV-B).

Receives per-test :class:`~repro.rtl.report.CoverageReport` objects from the
RTL simulator and computes, for each test input:

- **stand-alone coverage** — cover points attained by the input alone;
- **incremental coverage** — newly achieved points relative to the total
  recorded before this input (the paper computes increments against the
  previous *batch*; both granularities are supported);
- **total coverage** — the cumulative tally so far.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.rtl.report import CoverageReport, CumulativeCoverage


@dataclass(frozen=True)
class InputCoverage:
    """The three coverage values the calculator assigns to one test input."""

    standalone: int
    incremental: int
    total: int
    total_arms: int

    @property
    def standalone_fraction(self) -> float:
        return self.standalone / self.total_arms if self.total_arms else 0.0

    @property
    def total_fraction(self) -> float:
        return self.total / self.total_arms if self.total_arms else 0.0

    @property
    def total_percent(self) -> float:
        return 100.0 * self.total_fraction

    @property
    def improved(self) -> bool:
        """Did this input reach any new cover point?"""
        return self.incremental > 0


class CoverageCalculator:
    """Stateful accumulator over a fuzzing campaign.

    ``batch_mode=True`` reproduces the paper exactly: incremental coverage is
    measured against the total recorded at the end of the *previous batch*,
    so inputs within a batch do not shadow each other.  With
    ``batch_mode=False`` increments are against the running total.
    """

    def __init__(self, total_arms: int, batch_mode: bool = True) -> None:
        self.cumulative = CumulativeCoverage(total_arms=total_arms)
        self.batch_mode = batch_mode
        self._batch_baseline: set[int] = set()

    @property
    def total_arms(self) -> int:
        return self.cumulative.total_arms

    @property
    def total_percent(self) -> float:
        return self.cumulative.percent

    def begin_batch(self) -> None:
        """Snapshot the baseline used for incremental coverage this batch."""
        self._batch_baseline = set(self.cumulative.hits)

    def observe(self, report: CoverageReport) -> InputCoverage:
        """Fold one test's report into the totals and score it."""
        baseline = self._batch_baseline if self.batch_mode else self.cumulative.hits
        incremental = len(report.hits - baseline)
        self.cumulative.merge(report)
        return InputCoverage(
            standalone=report.standalone_count,
            incremental=incremental,
            total=self.cumulative.count,
            total_arms=self.cumulative.total_arms,
        )

    def observe_batch(self, reports: list[CoverageReport]) -> list[InputCoverage]:
        """Score a whole generation batch (paper's granularity)."""
        self.begin_batch()
        return [self.observe(report) for report in reports]
