"""The Coverage Calculator (paper §IV-B).

Receives per-test :class:`~repro.rtl.report.CoverageReport` objects from the
RTL simulator and computes, for each test input:

- **stand-alone coverage** — cover points attained by the input alone;
- **incremental coverage** — newly achieved points relative to the total
  recorded before this input (the paper computes increments against the
  previous *batch*; both granularities are supported);
- **total coverage** — the cumulative tally so far.

The state is packed bitmaps end to end: incremental coverage is
``report & ~baseline`` (one AND-NOT plus popcount), merging is a bitwise OR.
:meth:`CoverageCalculator.observe_batch` additionally vectorises a whole
generation batch through ``numpy`` — the reports' packed bytes are stacked
into a ``(n_tests, words)`` uint64 matrix, incrementals come from one
masked ``bitwise_count`` sweep and running totals from one
``bitwise_or.accumulate`` — with results bit-for-bit identical to the
scalar loop (pinned by ``tests/coverage/test_bitset_parity.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.rtl.report import CoverageReport, CumulativeCoverage

#: numpy >= 2.0 provides a vectorised popcount; without it the batch path
#: simply falls back to the scalar loop (same results, less speed).
_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")

#: Below this batch size the numpy staging overhead outweighs the win.
_VECTOR_MIN_BATCH = 4


@dataclass(frozen=True)
class InputCoverage:
    """The three coverage values the calculator assigns to one test input."""

    standalone: int
    incremental: int
    total: int
    total_arms: int

    @property
    def standalone_fraction(self) -> float:
        return self.standalone / self.total_arms if self.total_arms else 0.0

    @property
    def total_fraction(self) -> float:
        return self.total / self.total_arms if self.total_arms else 0.0

    @property
    def total_percent(self) -> float:
        return 100.0 * self.total_fraction

    @property
    def improved(self) -> bool:
        """Did this input reach any new cover point?"""
        return self.incremental > 0


class CoverageCalculator:
    """Stateful accumulator over a fuzzing campaign.

    ``batch_mode=True`` reproduces the paper exactly: incremental coverage is
    measured against the total recorded at the end of the *previous batch*,
    so inputs within a batch do not shadow each other.  With
    ``batch_mode=False`` increments are against the running total.
    """

    def __init__(self, total_arms: int, batch_mode: bool = True) -> None:
        self.cumulative = CumulativeCoverage(total_arms=total_arms)
        self.batch_mode = batch_mode
        #: Packed bitmap snapshot of the cumulative total at batch start.
        self._batch_baseline = 0

    @property
    def total_arms(self) -> int:
        return self.cumulative.total_arms

    @property
    def total_percent(self) -> float:
        return self.cumulative.percent

    def begin_batch(self) -> None:
        """Snapshot the baseline used for incremental coverage this batch."""
        self._batch_baseline = self.cumulative.bits()

    def observe(self, report: CoverageReport) -> InputCoverage:
        """Fold one test's report into the totals and score it."""
        bits = report.hits.to_int()
        baseline = (
            self._batch_baseline if self.batch_mode else self.cumulative.bits()
        )
        incremental = (bits & ~baseline).bit_count()
        self.cumulative.merge_bits(bits)
        return InputCoverage(
            standalone=report.standalone_count,
            incremental=incremental,
            total=self.cumulative.count,
            total_arms=self.cumulative.total_arms,
        )

    def observe_batch(self, reports: list[CoverageReport]) -> list[InputCoverage]:
        """Score a whole generation batch (paper's granularity).

        Equivalent to ``begin_batch()`` followed by per-report
        :meth:`observe` calls, but computed in one vectorised sweep when the
        batch is large enough.
        """
        self.begin_batch()
        if len(reports) < _VECTOR_MIN_BATCH or not _HAS_BITWISE_COUNT:
            return [self.observe(report) for report in reports]
        return self._observe_batch_vectorised(reports)

    def _observe_batch_vectorised(self, reports) -> list[InputCoverage]:
        n_words = max(
            (self.total_arms + 63) // 64,
            max((r.hits.nbits + 63) // 64 for r in reports),
            1,
        )
        width = 8 * n_words
        matrix = np.frombuffer(
            b"".join(r.hits.to_bytes(width) for r in reports), dtype="<u8"
        ).reshape(len(reports), n_words)
        baseline_bits = self.cumulative.bits()
        baseline = np.frombuffer(
            baseline_bits.to_bytes(width, "little"), dtype="<u8"
        )

        # Newly-hit arms per input.  Batch mode measures every input against
        # the batch baseline; running mode against baseline | OR of all
        # earlier inputs (the accumulate, shifted down one row).
        accumulated = np.bitwise_or.accumulate(matrix, axis=0) | baseline
        if self.batch_mode:
            fresh = matrix & ~baseline
        else:
            running = np.empty_like(accumulated)
            running[0] = baseline
            running[1:] = accumulated[:-1]
            fresh = matrix & ~running
        incrementals = np.bitwise_count(fresh).sum(axis=1)
        totals = np.bitwise_count(accumulated).sum(axis=1)

        self.cumulative.merge_bits(
            int.from_bytes(accumulated[-1].tobytes(), "little")
        )
        total_arms = self.cumulative.total_arms
        return [
            InputCoverage(
                standalone=report.standalone_count,
                incremental=int(incrementals[i]),
                total=int(totals[i]),
                total_arms=total_arms,
            )
            for i, report in enumerate(reports)
        ]
