"""Coverage feedback: the paper's Coverage Calculator (§IV-B) and the input
scoring used both by the fuzzing loop and the step-3 RL reward.

- :class:`~repro.coverage.calculator.CoverageCalculator` — computes
  stand-alone, incremental and total coverage per test input.
- :class:`~repro.coverage.scoring.CoverageScorer` — turns those three values
  into the scalar score/reward assigned to each generated input.
"""

from repro.coverage.calculator import CoverageCalculator, InputCoverage
from repro.coverage.scoring import CoverageScorer, ScoreWeights

__all__ = ["CoverageCalculator", "CoverageScorer", "InputCoverage", "ScoreWeights"]
