"""Plain-text tables for benchmark output (paper-style result rows)."""

from __future__ import annotations


def format_table(headers: list[str], rows: list[list], title: str | None = None) -> str:
    """Render an aligned ASCII table.

    Cells are stringified with ``str``; floats should be pre-formatted by the
    caller so benches control the precision they claim.
    """
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
