"""Plain-text tables for benchmark output (paper-style result rows)."""

from __future__ import annotations


def format_table(headers: list[str], rows: list[list], title: str | None = None) -> str:
    """Render an aligned ASCII table.

    Cells are stringified with ``str``; floats should be pre-formatted by the
    caller so benches control the precision they claim.  Ragged rows are
    tolerated: short rows pad with empty cells, long rows extend the table
    with blank-headed columns rather than crashing the renderer.
    """
    cells = [[str(c) for c in row] for row in rows]
    n_cols = max([len(headers)] + [len(row) for row in cells])
    headers = list(headers) + [""] * (n_cols - len(headers))
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        padded = row + [""] * (n_cols - len(row))
        lines.append("  ".join(c.ljust(w) for c, w in zip(padded, widths)))
    return "\n".join(lines)


def store_report(aggregates) -> str:
    """Render a results store's aggregates as plain text.

    The headless twin of the live dashboard: the same precomputed view
    (:meth:`repro.obs.store.ResultsStore.aggregate`, or its ``as_dict``
    form — the dashboard's ``/api/summary`` payload works too), rendered
    with :func:`format_table` for boxes without a browser::

        python -m repro.obs.dashboard --store DIR --report
    """
    # Imported lazily: repro.analysis.fleet imports this module, and the
    # bug classifier pulls in the fuzzing/ISA layers this renderer
    # otherwise doesn't need.
    from repro.analysis.bugs import classify_mismatch
    from repro.fuzzing.mismatch import Mismatch

    agg = aggregates.as_dict() if hasattr(aggregates, "as_dict") else aggregates
    lines = [
        "Fleet results store",
        f"  runs: {agg['runs']}{' (live)' if agg['live'] else ''}"
        f"  mode: {agg['mode'] or '-'}  worker slots: {agg['worker_slots']}",
        f"  union coverage: {agg['union_percent']:.2f}% of {agg['universe']}"
        f"  tests: {agg['total_tests']}",
        f"  wall: {agg['wall_seconds']:.1f}s  busy: {agg['busy_seconds']:.1f}s"
        f"  utilisation: {100.0 * agg['utilisation']:.0f}%",
        "",
    ]
    arm_rows = [
        [
            row["name"],
            row["tests"],
            f"{row['coverage_percent']:.2f}",
            f"{row['busy_seconds']:.1f}",
            row["slices"],
            len(row["curve"]),
            "yes" if row["quarantined"] else "",
        ]
        for row in agg["arms"]
    ]
    lines.append(format_table(
        ["arm", "tests", "cov %", "busy s", "slices", "points", "quarantined"],
        arm_rows, title="Arms"))
    lines.append("")

    phases = agg["phases"]
    lines.append(format_table(
        ["phase", "seconds"],
        [[name.removesuffix("_seconds"), f"{seconds:.2f}"]
         for name, seconds in sorted(phases.items())],
        title="Per-phase wall time"))
    lines.append("")

    # An aggregates object built from an empty store has empty health —
    # render zeros rather than crash (the dashboard page does the same).
    health = agg["health"]
    lines.append(format_table(
        ["retries", "timeouts", "pool rebuilds", "quarantined arms"],
        [[health.get("retries", 0), health.get("timeouts", 0),
          health.get("pool_rebuilds", 0),
          len(health.get("quarantined", []))]],
        title="Fleet health"))
    lines.append("")

    bug_rows = []
    for entry in agg["mismatches"]:
        signature = _freeze(entry["signature"])
        match = classify_mismatch(Mismatch(
            kind=entry["kind"], index=0, pc=entry["pc"],
            detail=entry["detail"], signature=signature,
        ))
        bug_rows.append([
            match.bug_id if match else "UNEXPLAINED",
            entry["kind"],
            ", ".join(entry["campaigns"]),
            entry["detail"][:48],
        ])
    bug_rows.sort(key=lambda row: (row[0], row[1]))
    lines.append(format_table(
        ["bug", "kind", "campaigns", "detail"], bug_rows,
        title=f"E-BUGS ({len(bug_rows)} unique signatures)"))
    return "\n".join(lines)


def _freeze(value):
    if isinstance(value, list):
        return tuple(_freeze(item) for item in value)
    return value
