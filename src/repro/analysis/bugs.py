"""Known-bug matching: the paper's manual analysis step, automated.

The paper's verification engineers manually inspected >100 unique mismatches
and attributed them to two bugs and three specification-deviation findings.
Since our DUT injects exactly those five behaviours, this module can classify
unique mismatch signatures mechanically and verify that a fuzzing campaign
*detected* each one (the E-BUGS experiment).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fuzzing.mismatch import Mismatch
from repro.isa.instructions import INSTRUCTIONS
from repro.isa.spec import (
    EXC_LOAD_ACCESS_FAULT,
    EXC_LOAD_MISALIGNED,
    EXC_STORE_ACCESS_FAULT,
    EXC_STORE_MISALIGNED,
)

_MULDIV = {m for m, s in INSTRUCTIONS.items() if s.is_muldiv}
_AMO = {m for m, s in INSTRUCTIONS.items()
        if s.is_amo and not m.startswith(("lr.", "sc."))}


@dataclass(frozen=True)
class BugMatch:
    """One known behaviour matched against a mismatch."""

    bug_id: str
    cwe: str | None
    description: str


KNOWN_BUGS = {
    "BUG1": BugMatch(
        "BUG1", "CWE-1202",
        "stale instruction fetched after store to code without FENCE.I",
    ),
    "BUG2": BugMatch(
        "BUG2", "CWE-440",
        "tracer omits MUL/DIV destination-register write-back",
    ),
    "FINDING1": BugMatch(
        "FINDING1", None,
        "access-fault reported where the spec prioritises address-misaligned",
    ),
    "FINDING2": BugMatch(
        "FINDING2", None,
        "AMO with rd=x0 shows data arriving at x0 in the trace",
    ),
    "FINDING3": BugMatch(
        "FINDING3", None,
        "spurious x0 write-back records in the trace",
    ),
}

_MISALIGNED_TO_FAULT = {
    (EXC_LOAD_ACCESS_FAULT, EXC_LOAD_MISALIGNED),
    (EXC_STORE_ACCESS_FAULT, EXC_STORE_MISALIGNED),
}


def classify_mismatch(mismatch: Mismatch) -> BugMatch | None:
    """Attribute one mismatch to a known behaviour, or None if unexplained."""
    signature = mismatch.signature
    if not signature:
        return None  # degenerate/foreign signature: unexplained, not a crash
    kind = signature[0]
    if kind == "instr_word":
        return KNOWN_BUGS["BUG1"]
    if kind in ("pc_divergence", "trace_length", "stop_reason", "rd_value",
                "mem", "csr"):
        # Downstream consequences of a stale-fetch divergence (or a filtered
        # false positive); attribute the architectural ones to Bug1.
        if kind in ("pc_divergence", "trace_length", "stop_reason"):
            return KNOWN_BUGS["BUG1"]
        return None
    if kind == "rd_missing" and len(signature) > 1 and signature[1] in _MULDIV:
        return KNOWN_BUGS["BUG2"]
    if kind == "rd_spurious_x0" and len(signature) > 1:
        if signature[1] in _AMO:
            return KNOWN_BUGS["FINDING2"]
        if signature[1] == "jalr":
            return KNOWN_BUGS["FINDING3"]
    if kind == "trap_cause" and len(signature) >= 4:
        if (signature[2], signature[3]) in _MISALIGNED_TO_FAULT:
            return KNOWN_BUGS["FINDING1"]
    return None


def classify_mismatches(mismatches) -> dict[str, list[Mismatch]]:
    """Group mismatches by matched bug id ('UNEXPLAINED' for the rest)."""
    groups: dict[str, list[Mismatch]] = {}
    for mismatch in mismatches:
        match = classify_mismatch(mismatch)
        key = match.bug_id if match is not None else "UNEXPLAINED"
        groups.setdefault(key, []).append(mismatch)
    return groups


def detected_bugs(mismatches) -> set[str]:
    """The set of known bug ids evidenced by the given mismatches."""
    return {
        bug_id
        for bug_id, items in classify_mismatches(mismatches).items()
        if bug_id != "UNEXPLAINED" and items
    }
