"""Cross-campaign analysis: mismatch dedup, attribution, E-BUGS tables.

A fleet of campaigns (``repro.fuzzing.fleet``) finds the same bugs many
times over — every TheHuzz seed that stumbles on Bug2 produces the same
mismatch signature.  The paper's detection table counts each *finding*
once, so this module dedupes unique mismatch signatures across campaigns
while retaining which campaigns found each one (attribution is the
interesting per-fuzzer result: did the weaker feedback still find Bug1?).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.analysis.bugs import KNOWN_BUGS, classify_mismatch
from repro.analysis.report import format_table
from repro.fuzzing.campaign import CampaignResult
from repro.fuzzing.fleet import FleetHealth, FleetStats
from repro.fuzzing.mismatch import Mismatch


@dataclass(frozen=True)
class FleetMismatch:
    """One deduped mismatch signature with per-campaign attribution."""

    #: Representative mismatch (from the first campaign that found it).
    mismatch: Mismatch
    #: Names of every campaign that found this signature, in fleet order.
    campaigns: tuple[str, ...]

    @property
    def signature(self) -> tuple:
        return self.mismatch.signature


def dedupe_mismatches(
    campaigns: Iterable[CampaignResult],
) -> dict[tuple, FleetMismatch]:
    """Collapse identical signatures across campaigns (count-once view).

    Keyed by signature; each entry keeps the first campaign's representative
    mismatch and accumulates the names of all campaigns that found it.
    """
    deduped: dict[tuple, FleetMismatch] = {}
    for campaign in campaigns:
        for mismatch in campaign.mismatches:
            entry = deduped.get(mismatch.signature)
            if entry is None:
                deduped[mismatch.signature] = FleetMismatch(
                    mismatch, (campaign.name,)
                )
            elif campaign.name not in entry.campaigns:
                deduped[mismatch.signature] = FleetMismatch(
                    entry.mismatch, entry.campaigns + (campaign.name,)
                )
    return deduped


def classify_fleet_mismatches(
    campaigns: Iterable[CampaignResult],
) -> dict[str, list[FleetMismatch]]:
    """Deduped signatures grouped by known-bug id ('UNEXPLAINED' rest)."""
    groups: dict[str, list[FleetMismatch]] = {}
    for entry in dedupe_mismatches(campaigns).values():
        match = classify_mismatch(entry.mismatch)
        key = match.bug_id if match is not None else "UNEXPLAINED"
        groups.setdefault(key, []).append(entry)
    return groups


def fleet_detected_bugs(campaigns: Iterable[CampaignResult]) -> set[str]:
    """Known bug ids evidenced anywhere in the fleet."""
    return {
        bug_id
        for bug_id, entries in classify_fleet_mismatches(campaigns).items()
        if bug_id != "UNEXPLAINED" and entries
    }


def fleet_bug_rows(campaigns: Iterable[CampaignResult]) -> list[list[str]]:
    """E-BUGS detection rows: one per known bug, plus the unexplained tail.

    Columns: bug id, CWE, detected?, deduped unique signatures, and the
    campaigns that found it (per-campaign attribution).
    """
    campaigns = list(campaigns)
    groups = classify_fleet_mismatches(campaigns)
    rows: list[list[str]] = []
    for bug_id, info in KNOWN_BUGS.items():
        entries = groups.get(bug_id, [])
        found_by = sorted({name for e in entries for name in e.campaigns})
        rows.append([
            bug_id,
            info.cwe or "spec deviation",
            "FOUND" if entries else "not found",
            str(len(entries)),
            ", ".join(found_by) if found_by else "-",
        ])
    unexplained = groups.get("UNEXPLAINED", [])
    if unexplained:
        found_by = sorted({n for e in unexplained for n in e.campaigns})
        rows.append(["UNEXPLAINED", "-", "-", str(len(unexplained)),
                     ", ".join(found_by)])
    return rows


def fleet_stats_rows(stats: Mapping[str, FleetStats]) -> list[list[str]]:
    """Dispatch-accounting rows, one per labelled run (label -> stats).

    Columns: label, mode, worker slots, tests, tests/sec (wall), and
    worker utilisation (busy-time / wall-time per slot) — the metric the
    streaming runtime improves.  A ``~`` marks utilisation on single-slot
    runs, where it is near 1.0 by construction and says nothing about
    dispatch quality.
    """
    rows: list[list[str]] = []
    for label, stat in stats.items():
        tps = (stat.tests / stat.wall_seconds
               if stat.wall_seconds > 0 else 0.0)
        single = "~" if stat.worker_slots == 1 else ""
        rows.append([
            label,
            stat.mode,
            str(stat.worker_slots),
            str(stat.tests),
            f"{tps:.1f}",
            f"{single}{stat.utilisation:.2f}",
        ])
    return rows


def fleet_stats_table(stats: Mapping[str, FleetStats],
                      title: str = "fleet dispatch: throughput and worker "
                                   "utilisation") -> str:
    """The dispatch accounting as an aligned text table."""
    return format_table(
        ["run", "mode", "slots", "tests", "tests/sec", "utilisation"],
        fleet_stats_rows(stats),
        title=title,
    )


def fleet_health_rows(health: FleetHealth) -> list[list[str]]:
    """Fault-tolerance ledger rows: the recovery counters, then one row
    per quarantined arm (and per dropped checkpoint snapshot).

    Columns: event, arm, detail.  Empty on a healthy run — callers
    usually gate on ``health.healthy`` and skip the table entirely.
    """
    rows: list[list[str]] = []
    if health.retries:
        rows.append(["retries", "-", f"{health.retries} slices re-dispatched"])
    if health.timeouts:
        rows.append(["timeouts", "-",
                     f"{health.timeouts} slices exceeded slice_timeout"])
    if health.pool_rebuilds:
        rows.append(["pool rebuilds", "-",
                     f"{health.pool_rebuilds} worker pools recycled"])
    for record in health.quarantined:
        rows.append([
            "quarantined",
            f"{record.arm} ({record.name})",
            f"after {record.retries} retries at {record.tests_run} tests: "
            f"{record.error}",
        ])
    for note in health.dropped_snapshots:
        rows.append(["dropped snapshot", "-", note])
    return rows


def fleet_health_table(health: FleetHealth,
                       title: str = "fleet health: retries, timeouts and "
                                    "quarantined arms") -> str:
    """The fault-tolerance ledger as an aligned text table."""
    return format_table(
        ["event", "arm", "detail"],
        fleet_health_rows(health),
        title=title,
    )


def fleet_bug_table(campaigns: Iterable[CampaignResult],
                    title: str = "E-BUGS: fleet detection table "
                                 "(signatures deduped across campaigns)") -> str:
    """The detection table as paper-style aligned text."""
    return format_table(
        ["bug", "cwe", "status", "unique sigs", "found by"],
        fleet_bug_rows(campaigns),
        title=title,
    )
