"""Analysis: bug classification and experiment reporting.

- :mod:`repro.analysis.bugs` — maps unique mismatches to the paper's named
  findings (Bug1/CWE-1202, Bug2/CWE-440, Findings 1–3).
- :mod:`repro.analysis.report` — plain-text tables used by the benchmark
  harness to print paper-style result rows.
"""

from repro.analysis.bugs import KNOWN_BUGS, BugMatch, classify_mismatches
from repro.analysis.report import format_table

__all__ = ["BugMatch", "KNOWN_BUGS", "classify_mismatches", "format_table"]
