"""Analysis: bug classification and experiment reporting.

- :mod:`repro.analysis.bugs` — maps unique mismatches to the paper's named
  findings (Bug1/CWE-1202, Bug2/CWE-440, Findings 1–3).
- :mod:`repro.analysis.fleet` — cross-campaign views: mismatch signatures
  deduped across a fleet with per-campaign attribution, the fleet-level
  E-BUGS detection table, and the dispatch throughput/utilisation table.
- :mod:`repro.analysis.report` — plain-text tables used by the benchmark
  harness to print paper-style result rows.
"""

from repro.analysis.bugs import KNOWN_BUGS, BugMatch, classify_mismatches
from repro.analysis.fleet import (
    FleetMismatch,
    dedupe_mismatches,
    fleet_bug_table,
    fleet_detected_bugs,
    fleet_stats_table,
)
from repro.analysis.report import format_table

__all__ = [
    "BugMatch",
    "FleetMismatch",
    "KNOWN_BUGS",
    "classify_mismatches",
    "dedupe_mismatches",
    "fleet_bug_table",
    "fleet_detected_bugs",
    "fleet_stats_table",
    "format_table",
]
