"""Deterministic fault injection for the fleet runtime.

The fault-tolerance guarantees of :mod:`repro.fuzzing.fleet` — slice
retry/requeue, pool self-healing, timeouts, arm quarantine — are only
worth having if every recovery path is pinned by tests rather than hoped
for.  This module is the chaos harness that makes those paths
reproducible on demand:

- :class:`FaultPlan` — a set of *schedule-keyed* fault points.  Each
  point names ``(arm, ordinal, attempt)``: the arm index, the arm's Nth
  dispatched slice, and which retry attempt triggers.  Keys are counted
  parent-side by the fleet runner (an arm never has two slices in
  flight), so a plan fires identically regardless of worker count,
  dispatch mode or completion timing — and a point keyed to
  ``attempt=0`` makes the *retry* of that slice succeed, which is what
  the recovery-parity tests rely on.  :meth:`FaultPlan.seeded` derives a
  plan from an RNG seed for randomized-but-reproducible chaos runs.
- fault *kinds* — ``"raise"`` (an ordinary worker exception, retryable),
  ``"hang"`` (stall long enough to trip ``slice_timeout``, then proceed
  normally — the timeout machinery must discard the late result),
  ``"die"`` (``os._exit`` mid-task: a hard worker crash surfacing as
  ``BrokenProcessPool``), and ``"crash"`` (an injected
  :class:`InjectedCrash`, which subclasses ``BaseException`` and is
  therefore *never* retried — it aborts the fleet like an operator
  kill, the in-process stand-in for SIGKILL in crash/resume tests).
- chaos wrappers — :class:`FaultyHarnessFactory` (building the harness
  fails: the always-raising arm of the quarantine acceptance test) and
  :class:`ChaosHarnessFactory` (the harness's Nth differential run
  fires a fault: die-mid-chunk for :class:`~repro.fuzzing.pool.
  ShardedExecutor` self-healing).  Both are picklable frozen dataclasses
  so they ship to pool workers like any other factory; ``once_dir``
  gives :class:`ChaosHarnessFactory` a filesystem latch so a fault fires
  exactly once even across pool rebuilds (a freshly respawned worker
  must not re-fire the crash that killed its predecessor, or
  self-healing could never be observed to succeed).

Everything here is inert unless explicitly injected: the fleet runner
consults a plan only when one is passed, and the wrappers only wrap what
tests hand them.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass
from pathlib import Path

#: Fault kinds a point or wrapper may fire (see module docstring).
FAULT_KINDS = ("raise", "hang", "die", "crash")


class InjectedFault(RuntimeError):
    """An injected, *retryable* worker failure (an ordinary exception)."""


class InjectedCrash(BaseException):
    """An injected, *fatal* failure: subclasses ``BaseException`` so the
    fleet's retry machinery never swallows it — the run aborts with
    checkpoints intact, simulating an operator kill for crash/resume
    equality tests."""


def fire(kind: str, context: str, hang_seconds: float = 0.05) -> None:
    """Perform one fault action (called at the injection site).

    ``"hang"`` returns normally after stalling — the caller proceeds, and
    it is the *parent's* timeout machinery that must notice and discard
    the late work.  The other kinds never return.
    """
    if kind == "raise":
        raise InjectedFault(f"injected fault: {context}")
    if kind == "crash":
        raise InjectedCrash(f"injected crash: {context}")
    if kind == "die":
        os._exit(17)  # hard worker death: no cleanup, no exception
    if kind == "hang":
        time.sleep(hang_seconds)
        return
    raise ValueError(f"unknown fault kind {kind!r} (known: {FAULT_KINDS})")


@dataclass(frozen=True)
class FaultPoint:
    """One scheduled fault: fires on ``arm``'s ``ordinal``-th dispatched
    slice, but only on retry attempt ``attempt`` — so a point at
    ``attempt=0`` tests that the retry succeeds, while points covering
    every attempt test quarantine."""

    arm: int
    ordinal: int
    attempt: int = 0
    kind: str = "raise"
    hang_seconds: float = 0.05

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r} (known: {FAULT_KINDS})"
            )

    @property
    def key(self) -> tuple[int, int, int]:
        return (self.arm, self.ordinal, self.attempt)

    def fire(self) -> None:
        fire(self.kind,
             f"arm {self.arm} slice {self.ordinal} attempt {self.attempt}",
             self.hang_seconds)


class FaultPlan:
    """A deterministic schedule of :class:`FaultPoint`\\ s.

    The fleet runner looks up each dispatch by ``(arm, ordinal,
    attempt)`` and ships the matching point (if any) with the slice; the
    worker fires it before touching campaign state, so faulted slices
    are side-effect-free and retries are idempotent.
    """

    def __init__(self, points: object = ()) -> None:
        self.points: tuple[FaultPoint, ...] = tuple(points)
        self._index: dict[tuple[int, int, int], FaultPoint] = {
            point.key: point for point in self.points
        }
        if len(self._index) != len(self.points):
            raise ValueError("duplicate fault points (same arm/ordinal/attempt)")

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)

    def find(self, arm: int, ordinal: int, attempt: int) -> FaultPoint | None:
        """The point scheduled for this dispatch, or None."""
        return self._index.get((arm, ordinal, attempt))

    @classmethod
    def seeded(cls, seed: int, n_arms: int, n_slices: int,
               rate: float = 0.2, kinds: object = ("raise",),
               hang_seconds: float = 0.05) -> "FaultPlan":
        """A reproducible random plan: each (arm, slice) pair faults on
        its first attempt with probability ``rate``, with the kind drawn
        from ``kinds``.  Same seed, same plan — chaos runs stay
        diffable."""
        rng = random.Random(seed)
        kinds = list(kinds)
        points = []
        for arm in range(n_arms):
            for ordinal in range(n_slices):
                if rng.random() < rate:
                    points.append(FaultPoint(
                        arm, ordinal, kind=rng.choice(kinds),
                        hang_seconds=hang_seconds,
                    ))
        return cls(points)


# -- chaos wrappers ------------------------------------------------------------

#: Per-process build counters for :class:`FaultyHarnessFactory` (keyed by
#: label; a frozen dataclass cannot carry its own mutable counter).
_BUILD_COUNTS: dict[str, int] = {}


def reset_build_counts() -> None:
    """Reset the process-local build counters (test isolation)."""
    _BUILD_COUNTS.clear()


@dataclass(frozen=True)
class FaultyHarnessFactory:
    """Picklable chaos wrapper: *building* the harness fires a fault.

    ``fail_builds=-1`` fails every build — the always-raising arm of the
    quarantine acceptance test; ``fail_builds=N`` fails only the first N
    builds *in each process* (counters are process-local, keyed by
    ``label``), after which the inner factory is used normally.
    """

    factory: object
    kind: str = "raise"
    fail_builds: int = -1
    hang_seconds: float = 0.05
    label: str = "faulty-harness"

    def __call__(self):
        count = _BUILD_COUNTS.get(self.label, 0)
        _BUILD_COUNTS[self.label] = count + 1
        if self.fail_builds < 0 or count < self.fail_builds:
            fire(self.kind, f"{self.label}: harness build {count}",
                 self.hang_seconds)
        return self.factory()


@dataclass(frozen=True)
class ChaosHarnessFactory:
    """Picklable chaos wrapper: the harness's ``fail_test``-th
    ``run_differential`` call fires a fault — ``kind="die"`` is the
    die-mid-chunk scenario executor self-healing must survive.

    ``once_dir`` (a directory path) makes the fault one-shot *across
    processes*: a latch file is written just before firing, and any
    harness that sees the latch skips the fault.  Without it the fault
    re-fires in every worker that reaches ``fail_test`` — including the
    respawned worker after a pool rebuild, which would make self-healing
    look like an infinite crash loop.
    """

    factory: object
    fail_test: int = 0
    kind: str = "die"
    hang_seconds: float = 0.05
    once_dir: str | None = None
    label: str = "chaos-harness"

    def __call__(self):
        return _ChaosHarness(self.factory(), self)

    @property
    def latch_path(self) -> Path | None:
        if self.once_dir is None:
            return None
        return Path(self.once_dir) / f"{self.label}.fired"


class _ChaosHarness:
    """Worker-side harness proxy built by :class:`ChaosHarnessFactory`."""

    def __init__(self, inner, config: ChaosHarnessFactory) -> None:
        self._inner = inner
        self._config = config
        self._runs = 0

    @property
    def total_arms(self) -> int:
        return self._inner.total_arms

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def _take_latch(self) -> bool:
        """True if this harness should fire (and mark the latch taken)."""
        latch = self._config.latch_path
        if latch is None:
            return True
        if latch.exists():
            return False
        latch.parent.mkdir(parents=True, exist_ok=True)
        # Written *before* firing: a "die" must not re-fire after respawn.
        latch.write_text("fired\n")
        return True

    def run_differential(self, body, *args, **kwargs):
        ordinal = self._runs
        self._runs += 1
        config = self._config
        if ordinal == config.fail_test and self._take_latch():
            fire(config.kind, f"{config.label}: test {ordinal}",
                 config.hang_seconds)
        return self._inner.run_differential(body, *args, **kwargs)

    def run_differential_batch(self, bodies, *args, **kwargs):
        """Lane-aware chunk routing with an exact fault ordinal.

        The fault ordinal counts individual tests, so the chunk that
        contains ``fail_test`` runs per body — executors that route whole
        chunks through this method must still hit the fault at precisely
        that test.  Every other chunk delegates to the inner batched path,
        keeping the ``golden_lanes``/``dut_lanes`` engines vectorised
        under chaos testing instead of silently degrading them to scalar.
        """
        config = self._config
        start = self._runs
        fires_here = start <= config.fail_test < start + len(bodies)
        inner_batch = getattr(self._inner, "run_differential_batch", None)
        if inner_batch is not None and not fires_here:
            self._runs += len(bodies)
            return inner_batch(bodies, *args, **kwargs)
        return [self.run_differential(body, *args, **kwargs)
                for body in bodies]
