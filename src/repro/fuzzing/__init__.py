"""The fuzzing loop (paper Figure 1a and §III-C).

- :class:`~repro.fuzzing.chatfuzz.FuzzLoop` — batch generation, differential
  execution (DUT vs golden), coverage accounting, mismatch detection.
- :class:`~repro.fuzzing.mismatch.MismatchDetector` — trace diffing with
  signature-based unique-mismatch filtering and user filters (§IV-A).
- :class:`~repro.fuzzing.simclock.SimClock` — the simulated wall-clock that
  maps test counts to the paper's time axis (DESIGN.md §1).
- :class:`~repro.fuzzing.campaign.Campaign` — drives a fuzzer to a
  test-count / sim-time / coverage target and records the coverage curve.
"""

from repro.fuzzing.campaign import Campaign, CampaignResult, CurvePoint
from repro.fuzzing.chatfuzz import FuzzLoop
from repro.fuzzing.input import TestInput
from repro.fuzzing.mismatch import Mismatch, MismatchDetector, counter_csr_filter
from repro.fuzzing.simclock import SimClock

__all__ = [
    "Campaign",
    "CampaignResult",
    "CurvePoint",
    "FuzzLoop",
    "Mismatch",
    "MismatchDetector",
    "SimClock",
    "TestInput",
    "counter_csr_filter",
]
