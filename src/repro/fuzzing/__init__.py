"""The fuzzing loop (paper Figure 1a and §III-C).

- :class:`~repro.fuzzing.chatfuzz.FuzzLoop` — batch generation, differential
  execution (DUT vs golden), coverage accounting, mismatch detection.
- :class:`~repro.fuzzing.mismatch.MismatchDetector` — trace diffing with
  signature-based unique-mismatch filtering and user filters (§IV-A).
- :class:`~repro.fuzzing.simclock.SimClock` — the simulated wall-clock that
  maps test counts to the paper's time axis (DESIGN.md §1).
- :class:`~repro.fuzzing.campaign.Campaign` — drives a fuzzer to a
  test-count / sim-time / coverage target and records the coverage curve.
- :class:`~repro.fuzzing.executor.HarnessExecutor` — injectable execution
  strategy for the differential step: in-process
  :class:`~repro.fuzzing.executor.SerialExecutor` (default) or the
  process-pool :class:`~repro.fuzzing.pool.ShardedExecutor`.
- :class:`~repro.fuzzing.fleet.FleetRunner` — whole *fleets* of campaigns
  (declarative :class:`~repro.fuzzing.fleet.CampaignSpec` arms) sharded over
  a process pool, budget-scheduled (:mod:`repro.fuzzing.scheduler`) in
  barrier-synchronised rounds or as an event-driven stream of slices,
  checkpointable, and aggregated into a
  :class:`~repro.fuzzing.fleet.FleetResult` (dispatch accounting in
  :class:`~repro.fuzzing.fleet.FleetStats`), with fault tolerance —
  slice retry, pool self-healing, timeouts, arm quarantine — reported in
  :class:`~repro.fuzzing.fleet.FleetHealth` and pinned by the
  deterministic chaos harness in :mod:`repro.fuzzing.faults`.
"""

from repro.fuzzing.campaign import Campaign, CampaignResult, CurvePoint
from repro.fuzzing.chatfuzz import FuzzLoop
from repro.fuzzing.executor import (
    DifferentialResult,
    HarnessExecutor,
    SerialExecutor,
)
from repro.fuzzing.faults import (
    ChaosHarnessFactory,
    FaultPlan,
    FaultPoint,
    FaultyHarnessFactory,
    InjectedCrash,
    InjectedFault,
)
from repro.fuzzing.fleet import (
    CampaignSpec,
    FleetCheckpoint,
    FleetHealth,
    FleetResult,
    FleetRunner,
    FleetStats,
    QuarantinedArm,
    SliceTimeout,
    register_generator,
)
from repro.fuzzing.input import TestInput
from repro.fuzzing.mismatch import Mismatch, MismatchDetector, counter_csr_filter
from repro.fuzzing.pool import ShardedExecutor, default_workers
from repro.fuzzing.scheduler import BanditScheduler, BudgetScheduler, RoundRobin
from repro.fuzzing.simclock import SimClock

__all__ = [
    "BanditScheduler",
    "BudgetScheduler",
    "Campaign",
    "CampaignResult",
    "CampaignSpec",
    "ChaosHarnessFactory",
    "CurvePoint",
    "DifferentialResult",
    "FaultPlan",
    "FaultPoint",
    "FaultyHarnessFactory",
    "FleetCheckpoint",
    "FleetHealth",
    "FleetResult",
    "FleetRunner",
    "FleetStats",
    "FuzzLoop",
    "HarnessExecutor",
    "InjectedCrash",
    "InjectedFault",
    "Mismatch",
    "MismatchDetector",
    "QuarantinedArm",
    "RoundRobin",
    "SerialExecutor",
    "ShardedExecutor",
    "SimClock",
    "SliceTimeout",
    "TestInput",
    "counter_csr_filter",
    "default_workers",
    "register_generator",
]
