"""Simulated wall-clock: maps executed tests to the paper's time axis.

The paper runs ten Synopsys VCS instances for 24 hours per experiment; our
substrate executes tests in milliseconds.  To reproduce time-axis claims
(Figure 2, the 34.6x speed-up, "75% in 52 minutes") we charge each test a
simulated cost with an affine model::

    T(n) = elab_seconds + per_test_seconds * n

calibrated on the paper's two anchor points for RocketCore:

- 1.8 K tests  ≈ 52 min   (ChatFuzz reaches 74.96% coverage)
- 199 K tests ≈ 24 h      (ChatFuzz reaches 79.14% coverage)

which gives ``per_test_seconds = (86400 - 3120) / 197200 ≈ 0.4223`` and
``elab_seconds ≈ 2360`` (≈ 39 min — VCS compile/elaboration of a Rocket
config, paid once per campaign).  Both fuzzers are charged identically, as
the paper reports "similar runtime overhead" for ChatFuzz and TheHuzz; the
curves therefore differ only through coverage-per-test, which is the honest
comparison (DESIGN.md §1).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Calibrated constants (see module docstring).
DEFAULT_ELAB_SECONDS = 2360.0
DEFAULT_PER_TEST_SECONDS = 0.4223


@dataclass
class SimClock:
    """Accumulates simulated seconds over a campaign."""

    elab_seconds: float = DEFAULT_ELAB_SECONDS
    per_test_seconds: float = DEFAULT_PER_TEST_SECONDS
    #: Elapsed simulated time; starts after elaboration.
    seconds: float = 0.0
    started: bool = False

    def start(self) -> None:
        """Charge the one-time elaboration cost."""
        if not self.started:
            self.seconds += self.elab_seconds
            self.started = True

    def charge_tests(self, n: int = 1) -> None:
        """Charge the per-test simulation cost for ``n`` tests."""
        self.start()
        self.seconds += self.per_test_seconds * n

    @property
    def hours(self) -> float:
        return self.seconds / 3600.0

    @property
    def minutes(self) -> float:
        return self.seconds / 60.0
