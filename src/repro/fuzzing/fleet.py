"""Campaign fleets: many campaigns, one experiment.

The paper's headline artifacts (the Figure-2 coverage comparison, the
E-BUGS detection table) are *fleets* of campaigns — ChatFuzz vs. TheHuzz
vs. DifuzzRTL vs. random, across seeds and SoC configs — and this module
turns the single-campaign driver into that horizontally scalable
experiment engine:

- :class:`CampaignSpec` — a declarative, fully picklable recipe for one
  campaign arm: fuzzer kind + config (or a prebuilt generator), harness
  factory, seed, batch size and test budget.
- :class:`FleetRunner` — shards specs over a process pool (same lazy
  spin-up / worker reuse / graceful shutdown / deterministic ordering
  playbook as :mod:`repro.fuzzing.pool`).  Workers cache the expensive
  campaign shell (harness elaboration) per spec; the *mutable* state
  travels with each slice as a compact state dict, so any worker can
  continue any campaign and a kill never strands state in a dead process.
- budget scheduling — :meth:`FleetRunner.run_scheduled` allocates the
  shared budget in slices through a pluggable
  :class:`~repro.fuzzing.scheduler.BudgetScheduler` (round-robin baseline
  or MABFuzz-style UCB1 bandit rewarded by new fleet-union coverage).
- checkpoint/resume — with ``checkpoint_dir`` set, per-campaign state is
  snapshotted as JSON (scalars + curve) + ``.cov`` bitmap + ``.pkl``
  (generator/detector) after every round, so a killed fleet resumes
  without losing completed slices and finishes with a result equal to an
  uninterrupted run.
- :class:`FleetResult` — aggregation: unions the campaigns' packed
  ``final_coverage`` bitmaps, merges their coverage curves onto a shared
  sim-hours epoch, and dedupes mismatch signatures across campaigns
  (classification/attribution tables live in ``repro.analysis.fleet``).

Nested-pool caveat: campaigns built from specs always run their
differential step on a :class:`~repro.fuzzing.executor.SerialExecutor` —
fleet workers *are* the parallelism, and a ``ShardedExecutor`` inside a
pool worker would oversubscribe the machine (see ROADMAP's "fleet workers
vs. harness workers" guidance).
"""

from __future__ import annotations

import copy
import hashlib
import json
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from repro.fuzzing.campaign import Campaign, CampaignResult, CurvePoint
from repro.fuzzing.chatfuzz import FuzzLoop
from repro.fuzzing.executor import SerialExecutor
from repro.fuzzing.pool import default_workers
from repro.fuzzing.scheduler import BudgetScheduler, RoundRobin
from repro.rtl.bitset import Bitset
from repro.soc.harness import HarnessFactory, harness_factory

#: Fuzzer kinds a spec can name without shipping a generator object.
#: Builders are called as ``builder(seed=spec.seed, **spec.fuzzer_config)``.
#: The baseline kinds are installed lazily by :func:`_ensure_builtin_kinds`
#: — ``repro.baselines`` itself imports ``repro.fuzzing``, so importing it
#: at module scope here would be circular.
GENERATOR_KINDS: dict[str, Callable] = {}


def _ensure_builtin_kinds() -> None:
    if GENERATOR_KINDS.keys() >= {"thehuzz", "difuzzrtl", "random"}:
        return
    from repro.baselines.difuzzrtl import DifuzzRTLGenerator
    from repro.baselines.random_regression import RandomRegressionGenerator
    from repro.baselines.thehuzz import TheHuzzGenerator

    GENERATOR_KINDS.setdefault("thehuzz", TheHuzzGenerator)
    GENERATOR_KINDS.setdefault("difuzzrtl", DifuzzRTLGenerator)
    GENERATOR_KINDS.setdefault("random", RandomRegressionGenerator)


def register_generator(kind: str, builder: Callable) -> None:
    """Register a generator builder for :attr:`CampaignSpec.fuzzer`.

    ``builder`` must accept a ``seed`` keyword plus the spec's
    ``fuzzer_config`` entries, and be importable from worker processes
    (module-level, picklable) for pooled fleets.
    """
    GENERATOR_KINDS[kind] = builder


@dataclass(frozen=True)
class CampaignSpec:
    """Declarative recipe for one campaign arm (fully picklable).

    Either name a registered ``fuzzer`` kind (built per worker from
    ``seed`` + ``fuzzer_config``) or supply a prebuilt picklable
    ``generator`` object (the ChatFuzz path: the trained
    ``LLMInputGenerator`` carries its own model); the generator is
    deep-copied at build time so one spec can be built repeatedly without
    sharing mutable fuzzer state.
    """

    name: str
    fuzzer: str = "thehuzz"
    fuzzer_config: dict = field(default_factory=dict)
    #: Prebuilt generator object; overrides ``fuzzer``/``fuzzer_config``.
    generator: object = None
    #: HarnessFactory, or a kind string ("rocket"/"boom"); None = rocket.
    harness: object = None
    seed: int = 0
    batch_size: int = 16
    #: Test budget for whole-budget fleet runs (:meth:`FleetRunner.run`)
    #: and the per-arm cap in scheduled runs.
    budget_tests: int = 256
    use_default_filters: bool = True

    def __post_init__(self) -> None:
        # Fail at spec construction, not inside a pool worker mid-run.
        self.harness_factory()

    def harness_factory(self) -> HarnessFactory:
        """Resolve the harness field to a picklable zero-arg factory."""
        if self.harness is None:
            return harness_factory("rocket")
        if isinstance(self.harness, str):
            return harness_factory(self.harness)
        if callable(self.harness):
            return self.harness
        raise TypeError(
            f"spec {self.name!r}: harness must be a factory or kind string, "
            f"got {type(self.harness).__name__}"
        )

    def build_generator(self):
        """Build a fresh generator for one campaign instance."""
        if self.generator is not None:
            return copy.deepcopy(self.generator)
        _ensure_builtin_kinds()
        try:
            builder = GENERATOR_KINDS[self.fuzzer]
        except KeyError:
            raise ValueError(
                f"spec {self.name!r}: unknown fuzzer kind {self.fuzzer!r} "
                f"(known: {sorted(GENERATOR_KINDS)}; see register_generator)"
            ) from None
        return builder(seed=self.seed, **self.fuzzer_config)

    def build_campaign(self) -> Campaign:
        """Materialise the campaign shell (harness elaboration happens here).

        Always a :class:`SerialExecutor` inside: fleet workers are already
        processes, so the differential step must stay in-process.
        """
        loop = FuzzLoop(
            self.build_generator(),
            self.harness_factory(),
            batch_size=self.batch_size,
            use_default_filters=self.use_default_filters,
            executor=SerialExecutor(),
        )
        return Campaign(loop, self.name)

    def fingerprint(self) -> str:
        """Stable identity string (checkpoint compatibility guard).

        A prebuilt generator contributes a content hash of its pickled
        initial state — two fleets whose "ChatFuzz" arms were trained
        differently must not pass as the same fleet — and a custom factory
        its qualified name, not just ``function``.
        """
        factory = self.harness_factory()
        harness_id = (
            (factory.kind, repr(factory.params))
            if isinstance(factory, HarnessFactory)
            else (getattr(factory, "__module__", "?"),
                  getattr(factory, "__qualname__", type(factory).__name__))
        )
        generator_id = (
            (type(self.generator).__name__,
             hashlib.sha256(pickle.dumps(self.generator)).hexdigest())
            if self.generator is not None
            else (self.fuzzer, sorted(self.fuzzer_config.items()))
        )
        return repr((self.name, generator_id, harness_id, self.seed,
                     self.batch_size, self.budget_tests,
                     self.use_default_filters))


# -- aggregation ---------------------------------------------------------------


@dataclass
class FleetResult:
    """Aggregated outcome of a fleet run (campaigns in spec order)."""

    campaigns: list[CampaignResult]

    @property
    def total_tests(self) -> int:
        return sum(c.tests_run for c in self.campaigns)

    @property
    def total_sim_hours(self) -> float:
        """Aggregate simulator-hours (the paper's "ten VCS instances" cost
        axis): campaigns run in parallel, so this is compute, not latency."""
        return sum(c.sim_hours for c in self.campaigns)

    def _universe(self) -> int:
        sizes = {c.total_arms for c in self.campaigns if c.total_arms}
        if len(sizes) > 1:
            raise ValueError(
                "campaigns cover different DUT universes "
                f"({sorted(sizes)} arms); union coverage is only defined "
                "per-universe — aggregate matching campaigns separately"
            )
        return sizes.pop() if sizes else 0

    def union_coverage(self) -> Bitset:
        """Union of every campaign's packed coverage bitmap (no
        re-simulation — the whole point of carrying bitmaps in results)."""
        universe = self._universe()
        bits = 0
        for campaign in self.campaigns:
            bits |= campaign.final_coverage.to_int()
        return Bitset(bits, universe)

    @property
    def union_percent(self) -> float:
        universe = self._universe()
        if universe == 0:
            return 0.0
        return 100.0 * len(self.union_coverage()) / universe

    def merged_curve(self) -> list[CurvePoint]:
        """The fleet's coverage trajectory on a shared sim-hours epoch.

        Campaigns run in parallel and each charges its own elaboration, so
        their clocks share one epoch; at every snapshot time the fleet's
        coverage is the *union* of each campaign's latest bitmap (percent
        values cannot be merged, bitmaps can).  ``tests`` accumulates the
        fleet-wide test count at that moment.
        """
        universe = self._universe()
        events = sorted(
            ((point.sim_hours, index, point)
             for index, campaign in enumerate(self.campaigns)
             for point in campaign.curve),
            key=lambda event: (event[0], event[1], event[2].tests),
        )
        latest_bits = [0] * len(self.campaigns)
        latest_tests = [0] * len(self.campaigns)
        merged: list[CurvePoint] = []
        for position, (hours, index, point) in enumerate(events):
            if point.hits is not None:
                latest_bits[index] = point.hits.to_int()
            latest_tests[index] = point.tests
            # Emit one point per distinct time: fold simultaneous snapshots.
            if position + 1 < len(events) and events[position + 1][0] == hours:
                continue
            union = 0
            for bits in latest_bits:
                union |= bits
            merged.append(CurvePoint(
                tests=sum(latest_tests),
                sim_hours=hours,
                coverage_percent=(
                    100.0 * union.bit_count() / universe if universe else 0.0
                ),
                hits=Bitset(union, universe),
            ))
        return merged

    @property
    def unique_signatures(self) -> set[tuple]:
        """Mismatch signatures deduped across campaigns (count-once view;
        per-campaign attribution lives in ``repro.analysis.fleet``)."""
        return {m.signature for c in self.campaigns for m in c.mismatches}

    def summary(self) -> str:
        lines = [
            f"fleet: {len(self.campaigns)} campaigns, "
            f"{self.total_tests} tests, "
            f"{self.total_sim_hours:.2f} sim-hours, "
            f"union coverage {self.union_percent:.2f}%, "
            f"{len(self.unique_signatures)} deduped unique mismatches",
        ]
        lines += [f"  {campaign.summary()}" for campaign in self.campaigns]
        return "\n".join(lines)


# -- worker protocol -----------------------------------------------------------

#: Installed by :func:`_fleet_init` in each pool worker.
_WORKER_SPECS: list[CampaignSpec] | None = None
#: Campaign shells cached per spec index (harness built once per worker).
_WORKER_CAMPAIGNS: dict[int, Campaign] = {}


def _fleet_init(specs: list[CampaignSpec]) -> None:
    global _WORKER_SPECS, _WORKER_CAMPAIGNS
    _WORKER_SPECS = specs
    _WORKER_CAMPAIGNS = {}


def _get_campaign(specs, cache, index: int, fresh: bool) -> Campaign:
    """The cached campaign shell for ``index`` (rebuilt when ``fresh``).

    ``fresh`` marks a campaign's first-ever slice: no state will be loaded,
    so a shell left over from an earlier fleet run on this worker must not
    leak its state forward.
    """
    campaign = cache.get(index)
    if campaign is None or fresh:
        campaign = cache[index] = specs[index].build_campaign()
    return campaign


def _run_slice(campaign: Campaign, n_tests: int, state: dict | None):
    """Continue one campaign by one slice; returns (new state, snapshot).

    ``state`` is the authoritative mutable state from the parent (None only
    for a campaign's very first slice) — the cached shell contributes only
    the immutable, expensive parts (harness, executor), so slices of one
    campaign may land on different workers in any order.
    """
    if state is not None:
        campaign.load_state_dict(state)
    result = campaign.run_slice(n_tests)
    return campaign.state_dict(), result


def _fleet_slice(index: int, n_tests: int, state: dict | None):
    campaign = _get_campaign(_WORKER_SPECS, _WORKER_CAMPAIGNS, index,
                             fresh=state is None)
    return _run_slice(campaign, n_tests, state)


# -- checkpointing -------------------------------------------------------------


class FleetCheckpoint:
    """JSON+bitmap snapshots of per-campaign fleet state.

    Layout under ``directory`` (one set per campaign arm ``i``):

    - ``campaign_<i>.json`` — human-readable scalars: tests run, sim clock,
      coverage curve (bitmaps hex-packed per point), mismatch counters;
    - ``campaign_<i>.cov``  — the packed cumulative coverage bitmap;
    - ``campaign_<i>.pkl``  — the generator + detector objects (the state
      with no faithful JSON form: RNGs, corpora, signature dicts);
    - ``manifest.json``     — fleet-level: spec fingerprints, per-arm test
      counts, scheduler state, rounds completed.

    Torn-write safety: every file is written to a temp name and
    ``os.replace``d (each file is all-or-nothing), the manifest is written
    last, and all three arm artifacts carry the arm's test count (the JSON
    directly, the pickle via a ``tests_run`` stamp, the bitmap via its
    popcount — coverage only ever grows, so equal popcounts mean equal
    bitmaps).  A kill between any two writes therefore leaves a mix that
    :meth:`load_arm` detects and refuses rather than silently resuming
    from inconsistent state.
    """

    def __init__(self, directory: Path, specs: Sequence[CampaignSpec]) -> None:
        self.directory = Path(directory)
        self.specs = list(specs)

    def _fingerprints(self) -> list[str]:
        return [spec.fingerprint() for spec in self.specs]

    @property
    def manifest_path(self) -> Path:
        return self.directory / "manifest.json"

    def _arm_paths(self, index: int) -> tuple[Path, Path, Path]:
        stem = self.directory / f"campaign_{index}"
        return (stem.with_suffix(".json"), stem.with_suffix(".cov"),
                stem.with_suffix(".pkl"))

    # -- save ------------------------------------------------------------------

    @staticmethod
    def _write_atomic(path: Path, data: bytes) -> None:
        """All-or-nothing file write (temp + rename): a kill mid-write can
        never leave a truncated artifact behind."""
        temp = path.with_name(path.name + ".tmp")
        temp.write_bytes(data)
        os.replace(temp, path)

    def save_arm(self, index: int, state: dict) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        json_path, cov_path, pkl_path = self._arm_paths(index)
        loop = state["loop"]
        coverage: Bitset = loop["coverage"]
        detector = loop["detector"]
        self._write_atomic(cov_path, coverage.to_bytes())
        self._write_atomic(pkl_path, pickle.dumps({
            "tests_run": loop["tests_run"],  # cross-file consistency stamp
            "generator": loop["generator"],
            "detector": detector,
        }))
        document = {
            "name": self.specs[index].name,
            "tests_run": loop["tests_run"],
            "clock_seconds": loop["clock_seconds"],
            "clock_started": loop["clock_started"],
            "total_arms": coverage.nbits,
            "covered_arms": len(coverage),
            "raw_mismatches": detector.raw_count,
            "filtered_mismatches": detector.filtered_count,
            "unique_mismatches": detector.unique_count,
            "curve": [
                {
                    "tests": point.tests,
                    "sim_hours": point.sim_hours,
                    "coverage_percent": point.coverage_percent,
                    "hits": (point.hits.to_bytes().hex()
                             if point.hits is not None else None),
                }
                for point in (state["curve"] or [])
            ],
        }
        self._write_atomic(json_path,
                           (json.dumps(document, indent=2) + "\n").encode())

    def save_manifest(self, states: dict[int, dict],
                      scheduler: BudgetScheduler | None,
                      rounds: int) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        manifest = {
            "fingerprints": self._fingerprints(),
            "rounds": rounds,
            "arms": {
                str(index): {"tests_run": state["loop"]["tests_run"]}
                for index, state in states.items()
            },
            "scheduler": scheduler.state_dict() if scheduler else None,
        }
        self._write_atomic(self.manifest_path,
                           (json.dumps(manifest, indent=2) + "\n").encode())

    # -- load ------------------------------------------------------------------

    def load(self) -> dict | None:
        """The manifest, or None when no checkpoint exists yet.

        Raises on a spec mismatch (the checkpoint belongs to a different
        fleet) — resuming someone else's state silently would be worse.
        """
        if not self.manifest_path.exists():
            return None
        manifest = json.loads(self.manifest_path.read_text())
        if manifest["fingerprints"] != self._fingerprints():
            raise ValueError(
                f"checkpoint at {self.directory} was written for different "
                "campaign specs; point the fleet at a fresh directory or "
                "delete the stale checkpoint"
            )
        return manifest

    def load_arm(self, index: int, expected_tests: int) -> dict:
        json_path, cov_path, pkl_path = self._arm_paths(index)
        document = json.loads(json_path.read_text())

        def torn(artifact: str, found) -> ValueError:
            return ValueError(
                f"torn checkpoint for arm {index}: manifest says "
                f"{expected_tests} tests, {artifact} says {found} — "
                f"delete {self.directory} and rerun"
            )

        if document["tests_run"] != expected_tests:
            raise torn(json_path.name, document["tests_run"])
        total_arms = document["total_arms"]
        coverage = Bitset.from_bytes(cov_path.read_bytes(), total_arms)
        # Coverage grows monotonically, so a bitmap from any other round
        # has a different popcount — this pins .cov to the JSON's round.
        if len(coverage) != document["covered_arms"]:
            raise torn(cov_path.name, f"{len(coverage)} covered arms")
        with pkl_path.open("rb") as fh:
            opaque = pickle.load(fh)
        if opaque["tests_run"] != expected_tests:
            raise torn(pkl_path.name, opaque["tests_run"])
        curve = [
            CurvePoint(
                tests=point["tests"],
                sim_hours=point["sim_hours"],
                coverage_percent=point["coverage_percent"],
                hits=(Bitset.from_bytes(bytes.fromhex(point["hits"]),
                                        total_arms)
                      if point["hits"] is not None else None),
            )
            for point in document["curve"]
        ]
        return {
            "loop": {
                "generator": opaque["generator"],
                "detector": opaque["detector"],
                "coverage": coverage,
                "clock_seconds": document["clock_seconds"],
                "clock_started": document["clock_started"],
                "tests_run": document["tests_run"],
            },
            "curve": curve or None,
        }


# -- the runner ----------------------------------------------------------------


class FleetRunner:
    """Runs a fleet of campaign specs, optionally sharded over a process
    pool and scheduled by a budget policy (see module docstring).

    Parameters
    ----------
    specs:
        The campaign arms, in result order.  Names must be unique (they key
        cross-campaign mismatch attribution).
    n_workers:
        ``0`` runs everything in-process (deterministic and pool-free — the
        right mode for tests and one-core machines); ``N >= 1`` shards
        slices over ``N`` worker processes.  Defaults to the machine's core
        count.  Results are identical across modes (for scheduled runs, at
        equal ``concurrent_slices``): state travels with each slice, so
        placement never affects behaviour.
    checkpoint_dir:
        Enables :class:`FleetCheckpoint` snapshots (written after every
        completed slice/round) and resume-on-construction: an existing
        compatible checkpoint is loaded and completed work is not redone.
    """

    def __init__(self, specs: Sequence[CampaignSpec],
                 n_workers: int | None = None,
                 checkpoint_dir: str | Path | None = None) -> None:
        self.specs = list(specs)
        if not self.specs:
            raise ValueError("a fleet needs at least one campaign spec")
        names = [spec.name for spec in self.specs]
        if len(set(names)) != len(names):
            raise ValueError(f"campaign names must be unique, got {names}")
        self.n_workers = default_workers() if n_workers is None else n_workers
        if self.n_workers < 0:
            raise ValueError(f"n_workers must be >= 0, got {self.n_workers}")
        self.checkpoint = (
            FleetCheckpoint(Path(checkpoint_dir), self.specs)
            if checkpoint_dir is not None else None
        )
        self._pool: ProcessPoolExecutor | None = None
        self._local_campaigns: dict[int, Campaign] = {}
        self._closed = False

    # -- lifecycle -------------------------------------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._closed:
            raise RuntimeError("FleetRunner is closed")
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.n_workers,
                initializer=_fleet_init,
                initargs=(self.specs,),
            )
        return self._pool

    def close(self) -> None:
        """Release the worker pool (idempotent); in-process shells stay."""
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def __enter__(self) -> "FleetRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- dispatch --------------------------------------------------------------

    def _dispatch(self, jobs: list[tuple[int, int, dict | None]]):
        """Run (index, n_tests, state) jobs; results in job order."""
        if self._closed:
            raise RuntimeError("FleetRunner is closed")
        if self.n_workers == 0:
            outputs = []
            for index, n_tests, state in jobs:
                campaign = _get_campaign(
                    self.specs, self._local_campaigns, index,
                    fresh=state is None,
                )
                outputs.append(_run_slice(campaign, n_tests, state))
            return outputs
        pool = self._ensure_pool()
        futures = [pool.submit(_fleet_slice, index, n_tests, state)
                   for index, n_tests, state in jobs]
        outputs = []
        try:
            for future in futures:
                outputs.append(future.result())
        except BaseException:
            for future in futures:
                future.cancel()
            raise
        return outputs

    # -- checkpoint plumbing ---------------------------------------------------

    @staticmethod
    def _state_tests(state: dict | None) -> int:
        return 0 if state is None else state["loop"]["tests_run"]

    def _load_states(self, scheduler: BudgetScheduler | None):
        """(states, rounds) from the checkpoint, or fresh when absent."""
        states: dict[int, dict] = {}
        if self.checkpoint is None:
            return states, 0
        manifest = self.checkpoint.load()
        if manifest is None:
            return states, 0
        for key, arm in manifest["arms"].items():
            states[int(key)] = self.checkpoint.load_arm(
                int(key), arm["tests_run"]
            )
        if scheduler is not None and manifest["scheduler"] is not None:
            scheduler.load_state_dict(manifest["scheduler"])
        return states, manifest["rounds"]

    def _save_round(self, states: dict[int, dict],
                    scheduler: BudgetScheduler | None, rounds: int,
                    dirty: Sequence[int]) -> None:
        if self.checkpoint is None:
            return
        for index in dirty:
            self.checkpoint.save_arm(index, states[index])
        self.checkpoint.save_manifest(states, scheduler, rounds)

    @staticmethod
    def _result_from_state(name: str, state: dict) -> CampaignResult:
        """Rebuild the result snapshot a finished slice would have returned
        (field-for-field identical to ``Campaign._finalize`` output)."""
        loop = state["loop"]
        coverage: Bitset = loop["coverage"]
        detector = loop["detector"]
        # Same association order as CumulativeCoverage.percent, so rebuilt
        # results compare bit-identical to live ones.
        percent = (100.0 * (len(coverage) / coverage.nbits)
                   if coverage.nbits else 0.0)
        return CampaignResult(
            name=name,
            curve=list(state["curve"] or []),
            tests_run=loop["tests_run"],
            sim_hours=loop["clock_seconds"] / 3600.0,
            final_coverage_percent=percent,
            raw_mismatches=detector.raw_count,
            unique_mismatches=detector.unique_count,
            final_coverage=coverage,
            mismatches=list(detector.unique.values()),
        )

    # -- entry points ----------------------------------------------------------

    def run(self) -> FleetResult:
        """Run every spec to its full ``budget_tests`` (one slice each).

        The basic sharding mode: N independent campaigns spread over the
        pool, gathered in spec order.  With a checkpoint, arms that already
        reached their budget are not re-run.
        """
        states, rounds = self._load_states(scheduler=None)
        jobs = []
        for index, spec in enumerate(self.specs):
            remaining = spec.budget_tests - self._state_tests(states.get(index))
            if remaining > 0:
                jobs.append((index, remaining, states.get(index)))
        outputs = self._dispatch(jobs)
        results: dict[int, CampaignResult] = {}
        for (index, _, _), (state, result) in zip(jobs, outputs):
            states[index] = state
            results[index] = result
        self._save_round(states, None, rounds + 1,
                         dirty=[index for index, _, _ in jobs])
        for index, spec in enumerate(self.specs):
            if index not in results:  # completed in a previous run (or n=0)
                results[index] = (
                    self._result_from_state(spec.name, states[index])
                    if index in states else CampaignResult(name=spec.name)
                )
        return FleetResult([results[i] for i in range(len(self.specs))])

    def run_scheduled(self, scheduler: BudgetScheduler | None = None,
                      slice_tests: int = 64,
                      total_tests: int | None = None,
                      target_percent: float | None = None,
                      concurrent_slices: int | None = None) -> FleetResult:
        """Allocate the budget in slices via ``scheduler`` (MABFuzz-style).

        Each round the scheduler picks up to ``concurrent_slices`` distinct
        arms (default: the worker count); their slices run concurrently,
        then the scheduler is updated in pick order with each slice's
        reward — the arm's *new* contribution to the fleet-wide coverage
        union, normalised by the universe size.  Rounds are deterministic
        for a given configuration regardless of worker timing.

        Stops when every arm reached its ``budget_tests``, the fleet spent
        ``total_tests`` (checked at slice granularity — batch rounding may
        overshoot slightly), or union coverage reached ``target_percent``.
        """
        scheduler = scheduler if scheduler is not None else RoundRobin()
        scheduler.bind(len(self.specs))
        states, rounds = self._load_states(scheduler)
        concurrency = (concurrent_slices if concurrent_slices is not None
                       else max(1, self.n_workers))
        union_bits = 0
        universe = 0
        for state in states.values():
            coverage: Bitset = state["loop"]["coverage"]
            union_bits |= coverage.to_int()
            universe = max(universe, coverage.nbits)
        spent = sum(self._state_tests(s) for s in states.values())

        def target_reached() -> bool:
            return (target_percent is not None and universe > 0
                    and 100.0 * union_bits.bit_count() / universe
                    >= target_percent)

        while True:
            if target_reached():
                break
            if total_tests is not None and spent >= total_tests:
                break
            available = {
                index for index, spec in enumerate(self.specs)
                if self._state_tests(states.get(index)) < spec.budget_tests
            }
            if not available:
                break
            picks: list[tuple[int, int]] = []
            budget_left = (None if total_tests is None
                           else total_tests - spent)
            while available and len(picks) < concurrency:
                if budget_left is not None and budget_left <= 0:
                    break
                arm = scheduler.select(sorted(available))
                available.discard(arm)
                spec = self.specs[arm]
                n_tests = min(
                    slice_tests,
                    spec.budget_tests - self._state_tests(states.get(arm)),
                )
                if budget_left is not None:
                    n_tests = min(n_tests, budget_left)
                    budget_left -= n_tests
                picks.append((arm, n_tests))
            if not picks:
                break
            outputs = self._dispatch(
                [(arm, n_tests, states.get(arm)) for arm, n_tests in picks]
            )
            for (arm, _), (state, result) in zip(picks, outputs):
                ran = result.tests_run - self._state_tests(states.get(arm))
                spent += ran
                states[arm] = state
                bits = result.final_coverage.to_int()
                gained = (bits & ~union_bits).bit_count()
                union_bits |= bits
                universe = max(universe, result.final_coverage.nbits)
                reward = gained / universe if universe else 0.0
                scheduler.update(arm, ran, reward)
            rounds += 1
            self._save_round(states, scheduler, rounds,
                             dirty=[arm for arm, _ in picks])
        return FleetResult([
            self._result_from_state(spec.name, states[index])
            if index in states
            else CampaignResult(name=spec.name)
            for index, spec in enumerate(self.specs)
        ])
