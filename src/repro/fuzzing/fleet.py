"""Campaign fleets: many campaigns, one experiment.

The paper's headline artifacts (the Figure-2 coverage comparison, the
E-BUGS detection table) are *fleets* of campaigns — ChatFuzz vs. TheHuzz
vs. DifuzzRTL vs. random, across seeds and SoC configs — and this module
turns the single-campaign driver into that horizontally scalable
experiment engine:

- :class:`CampaignSpec` — a declarative, fully picklable recipe for one
  campaign arm: fuzzer kind + config (or a prebuilt generator), harness
  factory, seed, batch size and test budget.
- :class:`FleetRunner` — shards specs over a process pool (same lazy
  spin-up / worker reuse / graceful shutdown / deterministic ordering
  playbook as :mod:`repro.fuzzing.pool`).  Workers cache the expensive
  campaign shell (harness elaboration) per spec; the *mutable* state
  travels with each slice as a compact state dict, so any worker can
  continue any campaign and a kill never strands state in a dead process.
- budget scheduling — :meth:`FleetRunner.run_scheduled` allocates the
  shared budget in slices through a pluggable
  :class:`~repro.fuzzing.scheduler.BudgetScheduler` (round-robin baseline
  or MABFuzz-style UCB1 bandit rewarded by new fleet-union coverage), in
  one of two dispatch modes: ``"rounds"`` (barrier-synchronised, fully
  deterministic) or ``"streaming"`` (futures-based — each slice is folded
  into the fleet union, fed to the scheduler and replaced by the next
  dispatch the moment it completes, so workers never idle at a round
  barrier; see the determinism contract on :meth:`FleetRunner.
  run_scheduled`).
- checkpoint/resume — with ``checkpoint_dir`` set, per-campaign state is
  snapshotted as JSON (scalars + curve) + ``.cov`` bitmap + ``.pkl``
  (generator/detector) incrementally, as each slice completes (round mode
  batches the writes at its barrier), so a killed fleet resumes without
  losing completed slices and finishes with a result equal to an
  uninterrupted run.
- :class:`FleetResult` — aggregation: unions the campaigns' packed
  ``final_coverage`` bitmaps, merges their coverage curves onto a shared
  sim-hours epoch, and dedupes mismatch signatures across campaigns
  (classification/attribution tables live in ``repro.analysis.fleet``).
- fault tolerance — a failed or timed-out slice is retried from its last
  known state (slices are idempotent: the authoritative state never
  leaves the parent), worker death (``BrokenProcessPool``) triggers a
  pool rebuild with only the in-flight slices requeued, and an arm that
  keeps failing past ``max_retries`` is *quarantined*: excluded from
  further scheduling, recorded with its terminal exception in
  :class:`FleetHealth`, while the rest of the fleet runs to completion.
  Health travels on :class:`FleetStats`/:class:`FleetResult` and in
  checkpoint manifests (resume never resurrects a quarantined arm).
  Every recovery path is pinned by deterministic fault injection
  (:mod:`repro.fuzzing.faults`).  See ROADMAP "Failure semantics".

Nested-pool caveat: campaigns built from specs always run their
differential step on a :class:`~repro.fuzzing.executor.SerialExecutor` —
fleet workers *are* the parallelism, and a ``ShardedExecutor`` inside a
pool worker would oversubscribe the machine (see ROADMAP's "fleet workers
vs. harness workers" guidance).
"""

from __future__ import annotations

import copy
import hashlib
import json
import os
import pickle
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Sequence

from repro.fuzzing.campaign import Campaign, CampaignResult, CurvePoint
from repro.fuzzing.chatfuzz import FuzzLoop
from repro.fuzzing.executor import SerialExecutor
from repro.fuzzing.faults import FaultPlan, FaultPoint
from repro.fuzzing.pool import default_workers
from repro.fuzzing.scheduler import BudgetScheduler, RoundRobin
from repro.obs.events import NULL_SINK, EventSink, ListSink
from repro.rtl.bitset import Bitset
from repro.soc.harness import HarnessFactory, harness_factory

#: Fuzzer kinds a spec can name without shipping a generator object.
#: Builders are called as ``builder(seed=spec.seed, **spec.fuzzer_config)``.
#: The baseline kinds are installed lazily by :func:`_ensure_builtin_kinds`
#: — ``repro.baselines`` itself imports ``repro.fuzzing``, so importing it
#: at module scope here would be circular.
GENERATOR_KINDS: dict[str, Callable] = {}


def _ensure_builtin_kinds() -> None:
    if GENERATOR_KINDS.keys() >= {"thehuzz", "difuzzrtl", "random"}:
        return
    from repro.baselines.difuzzrtl import DifuzzRTLGenerator
    from repro.baselines.random_regression import RandomRegressionGenerator
    from repro.baselines.thehuzz import TheHuzzGenerator

    GENERATOR_KINDS.setdefault("thehuzz", TheHuzzGenerator)
    GENERATOR_KINDS.setdefault("difuzzrtl", DifuzzRTLGenerator)
    GENERATOR_KINDS.setdefault("random", RandomRegressionGenerator)


def register_generator(kind: str, builder: Callable) -> None:
    """Register a generator builder for :attr:`CampaignSpec.fuzzer`.

    ``builder`` must accept a ``seed`` keyword plus the spec's
    ``fuzzer_config`` entries, and be importable from worker processes
    (module-level, picklable) for pooled fleets.
    """
    GENERATOR_KINDS[kind] = builder


@dataclass(frozen=True)
class CampaignSpec:
    """Declarative recipe for one campaign arm (fully picklable).

    Either name a registered ``fuzzer`` kind (built per worker from
    ``seed`` + ``fuzzer_config``) or supply a prebuilt picklable
    ``generator`` object (the ChatFuzz path: the trained
    ``LLMInputGenerator`` carries its own model); the generator is
    deep-copied at build time so one spec can be built repeatedly without
    sharing mutable fuzzer state.
    """

    name: str
    fuzzer: str = "thehuzz"
    fuzzer_config: dict = field(default_factory=dict)
    #: Prebuilt generator object; overrides ``fuzzer``/``fuzzer_config``.
    generator: object = None
    #: HarnessFactory, or a kind string ("rocket"/"boom"); None = rocket.
    harness: object = None
    #: Lane-group width for the batched golden engine when ``harness`` is a
    #: kind string or None (0 = scalar golden).  A perf knob only: lane
    #: width never changes results (batched traces are bit-identical), so
    #: it is deliberately excluded from :meth:`fingerprint` — checkpoints
    #: resume fine under a different width.
    golden_lanes: int = 0
    #: Lane-group width for the kind's batched DUT engine (0 = scalar DUT;
    #: kinds without one reject it at spec-construction time).  Same
    #: perf-knob contract as ``golden_lanes``: bit-identical
    #: traces and coverage at any width, so it is likewise excluded from
    #: :meth:`fingerprint`.
    dut_lanes: int = 0
    seed: int = 0
    batch_size: int = 16
    #: Test budget for whole-budget fleet runs (:meth:`FleetRunner.run`)
    #: and the per-arm cap in scheduled runs.
    budget_tests: int = 256
    use_default_filters: bool = True

    def __post_init__(self) -> None:
        # Fail at spec construction, not inside a pool worker mid-run.
        self.harness_factory()

    def harness_factory(self) -> HarnessFactory:
        """Resolve the harness field to a picklable zero-arg factory."""
        if self.harness is None:
            return harness_factory("rocket", golden_lanes=self.golden_lanes,
                                   dut_lanes=self.dut_lanes)
        if isinstance(self.harness, str):
            return harness_factory(self.harness,
                                   golden_lanes=self.golden_lanes,
                                   dut_lanes=self.dut_lanes)
        if callable(self.harness):
            return self.harness
        raise TypeError(
            f"spec {self.name!r}: harness must be a factory or kind string, "
            f"got {type(self.harness).__name__}"
        )

    def build_generator(self):
        """Build a fresh generator for one campaign instance."""
        if self.generator is not None:
            return copy.deepcopy(self.generator)
        _ensure_builtin_kinds()
        try:
            builder = GENERATOR_KINDS[self.fuzzer]
        except KeyError:
            raise ValueError(
                f"spec {self.name!r}: unknown fuzzer kind {self.fuzzer!r} "
                f"(known: {sorted(GENERATOR_KINDS)}; see register_generator)"
            ) from None
        return builder(seed=self.seed, **self.fuzzer_config)

    def build_campaign(self) -> Campaign:
        """Materialise the campaign shell (harness elaboration happens here).

        Always a :class:`SerialExecutor` and a synchronous (non-pipelined)
        loop inside: fleet workers are already processes, so the
        differential step must stay in-process, and slice state dicts
        cannot ship an in-flight pipelined batch between workers.
        """
        loop = FuzzLoop(
            self.build_generator(),
            self.harness_factory(),
            batch_size=self.batch_size,
            use_default_filters=self.use_default_filters,
            executor=SerialExecutor(),
        )
        return Campaign(loop, self.name)

    def fingerprint(self) -> str:
        """Stable identity string (checkpoint compatibility guard).

        A prebuilt generator contributes a content hash of its pickled
        initial state — two fleets whose "ChatFuzz" arms were trained
        differently must not pass as the same fleet — and a custom factory
        its qualified name, not just ``function``.
        """
        factory = self.harness_factory()
        harness_id = (
            (factory.kind, repr(factory.params))
            if isinstance(factory, HarnessFactory)
            else (getattr(factory, "__module__", "?"),
                  getattr(factory, "__qualname__", type(factory).__name__))
        )
        generator_id = (
            (type(self.generator).__name__,
             hashlib.sha256(pickle.dumps(self.generator)).hexdigest())
            if self.generator is not None
            else (self.fuzzer, sorted(self.fuzzer_config.items()))
        )
        return repr((self.name, generator_id, harness_id, self.seed,
                     self.batch_size, self.budget_tests,
                     self.use_default_filters))


# -- health --------------------------------------------------------------------


class SliceTimeout(RuntimeError):
    """A slice exceeded ``slice_timeout``.  Raised parent-side (a worker
    cannot time itself out) and fed to the ordinary retry machinery."""


@dataclass
class QuarantinedArm:
    """One arm removed from scheduling after exhausting its retries.

    ``tests_run`` is where the arm's last good state stops — its partial
    results still count in the fleet aggregate; ``error`` is the terminal
    exception of the final attempt (earlier attempts may have failed
    differently, e.g. a timeout before a raise).
    """

    arm: int
    name: str
    error: str
    retries: int
    tests_run: int


@dataclass
class FleetHealth:
    """Fault-tolerance ledger for one fleet run (and its checkpoints).

    All-zero/empty (``healthy``) on the fault-free path.  Checkpoint
    manifests persist it via :meth:`state_dict`, so a resumed fleet knows
    prior retries and — critically — never resurrects a quarantined arm.
    """

    #: Slices re-dispatched after a retryable failure (includes timeouts).
    retries: int = 0
    #: Slices that exceeded ``slice_timeout`` (subset of ``retries`` unless
    #: the timeout exhausted the retry budget).
    timeouts: int = 0
    #: Worker pools discarded and respawned after worker death or a hang.
    pool_rebuilds: int = 0
    #: Arms removed from scheduling, in quarantine order.
    quarantined: list[QuarantinedArm] = field(default_factory=list)
    #: Checkpoint snapshots dropped by torn-write recovery (human-readable;
    #: empty unless ``checkpoint_recover`` salvaged a resume).
    dropped_snapshots: list[str] = field(default_factory=list)

    @property
    def healthy(self) -> bool:
        """True when the run needed no recovery of any kind."""
        return not (self.retries or self.timeouts or self.pool_rebuilds
                    or self.quarantined or self.dropped_snapshots)

    def quarantined_arms(self) -> set[int]:
        return {record.arm for record in self.quarantined}

    def state_dict(self) -> dict:
        return {
            "retries": self.retries,
            "timeouts": self.timeouts,
            "pool_rebuilds": self.pool_rebuilds,
            "quarantined": [
                {"arm": q.arm, "name": q.name, "error": q.error,
                 "retries": q.retries, "tests_run": q.tests_run}
                for q in self.quarantined
            ],
            "dropped_snapshots": list(self.dropped_snapshots),
        }

    @classmethod
    def from_state_dict(cls, state: dict) -> "FleetHealth":
        return cls(
            retries=int(state.get("retries", 0)),
            timeouts=int(state.get("timeouts", 0)),
            pool_rebuilds=int(state.get("pool_rebuilds", 0)),
            quarantined=[
                QuarantinedArm(arm=int(q["arm"]), name=q["name"],
                               error=q["error"], retries=int(q["retries"]),
                               tests_run=int(q["tests_run"]))
                for q in state.get("quarantined", [])
            ],
            dropped_snapshots=list(state.get("dropped_snapshots", [])),
        )

    def summary(self) -> str:
        if self.healthy:
            return "health: ok"
        parts = [f"{self.retries} retries", f"{self.timeouts} timeouts",
                 f"{self.pool_rebuilds} pool rebuilds"]
        if self.dropped_snapshots:
            parts.append(f"{len(self.dropped_snapshots)} dropped snapshots")
        lines = ["health: " + ", ".join(parts) +
                 f", {len(self.quarantined)} quarantined"]
        lines += [
            f"  quarantined {q.name!r} (arm {q.arm}) after {q.retries} "
            f"retries at {q.tests_run} tests: {q.error}"
            for q in self.quarantined
        ]
        return "\n".join(lines)


# -- aggregation ---------------------------------------------------------------


@dataclass
class FleetStats:
    """Dispatch accounting for one fleet entry-point call.

    ``busy_seconds`` is worker-side compute (summed over slices, measured
    inside :func:`_run_slice` around the actual campaign work), so
    ``utilisation`` = busy / (wall x worker slots) exposes exactly what the
    streaming runtime exists to improve: how much of the pool's capacity
    round barriers leave idle.  In-process runs have one slot and so sit
    near 1.0 by construction; the metric is only discriminating on >= 2
    workers (``BENCH_fleet.json`` records it per mode).
    """

    mode: str = "rounds"
    n_workers: int = 0
    #: Effective concurrent execution slots: 1 in-process, else the worker
    #: count clamped by the run's concurrency cap (``concurrent_slices`` /
    #: the job count) — so utilisation measures dispatch quality against
    #: the slots the run could actually fill, not raw pool size.
    worker_slots: int = 1
    wall_seconds: float = 0.0
    busy_seconds: float = 0.0
    slices: int = 0
    tests: int = 0
    #: Fault-tolerance ledger for this call (shared object with the
    #: :class:`FleetResult` the call returns).
    health: FleetHealth = field(default_factory=FleetHealth)

    @property
    def utilisation(self) -> float:
        """Mean fraction of worker slots kept busy over the run's wall time."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.busy_seconds / (self.wall_seconds
                                    * max(1, self.worker_slots))


@dataclass
class FleetResult:
    """Aggregated outcome of a fleet run (campaigns in spec order).

    ``health`` records what the fault-tolerance layer had to do: a
    quarantined arm's campaign entry holds its last good partial state,
    so aggregates stay well-defined under graceful degradation — check
    ``health.quarantined`` before treating every arm as having reached
    its budget.
    """

    campaigns: list[CampaignResult]
    health: FleetHealth = field(default_factory=FleetHealth)

    @property
    def total_tests(self) -> int:
        return sum(c.tests_run for c in self.campaigns)

    @property
    def total_sim_hours(self) -> float:
        """Aggregate simulator-hours (the paper's "ten VCS instances" cost
        axis): campaigns run in parallel, so this is compute, not latency."""
        return sum(c.sim_hours for c in self.campaigns)

    def _universe(self) -> int:
        sizes = {c.total_arms for c in self.campaigns if c.total_arms}
        if len(sizes) > 1:
            raise ValueError(
                "campaigns cover different DUT universes "
                f"({sorted(sizes)} arms); union coverage is only defined "
                "per-universe — aggregate matching campaigns separately"
            )
        return sizes.pop() if sizes else 0

    def union_coverage(self) -> Bitset:
        """Union of every campaign's packed coverage bitmap (no
        re-simulation — the whole point of carrying bitmaps in results)."""
        universe = self._universe()
        bits = 0
        for campaign in self.campaigns:
            bits |= campaign.final_coverage.to_int()
        return Bitset(bits, universe)

    @property
    def union_percent(self) -> float:
        universe = self._universe()
        if universe == 0:
            return 0.0
        return 100.0 * len(self.union_coverage()) / universe

    def merged_curve(self) -> list[CurvePoint]:
        """The fleet's coverage trajectory on a shared sim-hours epoch.

        Campaigns run in parallel and each charges its own elaboration, so
        their clocks share one epoch; at every snapshot time the fleet's
        coverage is the *union* of each campaign's latest bitmap (percent
        values cannot be merged, bitmaps can).  ``tests`` accumulates the
        fleet-wide test count at that moment.
        """
        universe = self._universe()
        events = sorted(
            ((point.sim_hours, index, point)
             for index, campaign in enumerate(self.campaigns)
             for point in campaign.curve),
            key=lambda event: (event[0], event[1], event[2].tests),
        )
        latest_bits = [0] * len(self.campaigns)
        latest_tests = [0] * len(self.campaigns)
        merged: list[CurvePoint] = []
        for position, (hours, index, point) in enumerate(events):
            if point.hits is not None:
                latest_bits[index] = point.hits.to_int()
            latest_tests[index] = point.tests
            # Emit one point per distinct time: fold simultaneous snapshots.
            if position + 1 < len(events) and events[position + 1][0] == hours:
                continue
            union = 0
            for bits in latest_bits:
                union |= bits
            merged.append(CurvePoint(
                tests=sum(latest_tests),
                sim_hours=hours,
                coverage_percent=(
                    100.0 * union.bit_count() / universe if universe else 0.0
                ),
                hits=Bitset(union, universe),
            ))
        return merged

    @property
    def unique_signatures(self) -> set[tuple]:
        """Mismatch signatures deduped across campaigns (count-once view;
        per-campaign attribution lives in ``repro.analysis.fleet``)."""
        return {m.signature for c in self.campaigns for m in c.mismatches}

    def summary(self) -> str:
        lines = [
            f"fleet: {len(self.campaigns)} campaigns, "
            f"{self.total_tests} tests, "
            f"{self.total_sim_hours:.2f} sim-hours, "
            f"union coverage {self.union_percent:.2f}%, "
            f"{len(self.unique_signatures)} deduped unique mismatches",
        ]
        lines += [f"  {campaign.summary()}" for campaign in self.campaigns]
        if not self.health.healthy:
            lines.append(self.health.summary())
        return "\n".join(lines)


# -- worker protocol -----------------------------------------------------------

#: Installed by :func:`_fleet_init` in each pool worker.
_WORKER_SPECS: list[CampaignSpec] | None = None
#: Campaign shells cached per spec index (harness built once per worker).
_WORKER_CAMPAIGNS: dict[int, Campaign] = {}


def _fleet_init(specs: list[CampaignSpec]) -> None:
    global _WORKER_SPECS, _WORKER_CAMPAIGNS
    _WORKER_SPECS = specs
    _WORKER_CAMPAIGNS = {}


def _get_campaign(specs, cache, index: int, fresh: bool) -> Campaign:
    """The cached campaign shell for ``index`` (rebuilt when ``fresh``).

    ``fresh`` marks a campaign's first-ever slice: no state will be loaded,
    so a shell left over from an earlier fleet run on this worker must not
    leak its state forward.
    """
    campaign = cache.get(index)
    if campaign is None or fresh:
        campaign = cache[index] = specs[index].build_campaign()
    return campaign


def _run_slice(campaign: Campaign, n_tests: int, state: dict | None,
               fault: FaultPoint | None = None, collect: bool = False):
    """Continue one campaign by one slice; returns (new state, snapshot,
    busy seconds, events).

    ``state`` is the authoritative mutable state from the parent (None only
    for a campaign's very first slice) — the cached shell contributes only
    the immutable, expensive parts (harness, executor), so slices of one
    campaign may land on different workers in any order.  ``busy seconds``
    is the wall time this slice held its worker slot (state restore +
    simulation + snapshot), the numerator of
    :attr:`FleetStats.utilisation`.

    ``events`` is the slice's telemetry relay: with ``collect`` the
    campaign's in-slice events (per-phase batch timings, coverage points,
    mismatch discoveries — see :mod:`repro.obs.events`) are recorded into a
    temporary :class:`~repro.obs.events.ListSink` and returned as picklable
    ``(kind, data)`` pairs for the parent to re-emit into its own sink,
    tagged with the arm — so one fleet keeps *one* writer per store
    segment no matter how many workers it shards over.  Without
    ``collect`` (the default, and the whole no-sink fast path) it is
    ``None`` and the campaign does zero telemetry work.

    An injected ``fault`` fires first, before any campaign state is
    touched, so faulted slices are side-effect-free and retrying one from
    the same ``state`` is exact (a ``"hang"`` fault returns and runs the
    slice normally — its stall is charged to busy seconds, which is what
    the in-process timeout check inspects).
    """
    started = time.perf_counter()
    if fault is not None:
        fault.fire()
    if state is not None:
        campaign.load_state_dict(state)
    events = None
    if collect:
        relay = ListSink(writer="slice")
        previous = campaign.loop.sink
        campaign.loop.sink = relay
        try:
            result = campaign.run_slice(n_tests)
        finally:
            campaign.loop.sink = previous
        events = [(event.kind, event.data) for event in relay.events]
    else:
        result = campaign.run_slice(n_tests)
    return (campaign.state_dict(), result,
            time.perf_counter() - started, events)


def _fleet_slice(index: int, n_tests: int, state: dict | None,
                 fault: FaultPoint | None = None, collect: bool = False):
    campaign = _get_campaign(_WORKER_SPECS, _WORKER_CAMPAIGNS, index,
                             fresh=state is None)
    return _run_slice(campaign, n_tests, state, fault, collect)


@dataclass
class _SliceTask:
    """One dispatchable slice plus its fault-tolerance bookkeeping.

    ``ordinal`` counts the arm's dispatches within the current entry-point
    call (the fault plan's schedule key — retries keep their ordinal and
    bump ``attempt``); ``deadline`` is the ``time.monotonic()`` instant
    after which a pooled slice is considered hung (None until submitted,
    and reset on requeue).
    """

    arm: int
    n_tests: int
    state: dict | None
    ordinal: int
    attempt: int = 0
    deadline: float | None = None


# -- checkpointing -------------------------------------------------------------


class FleetCheckpoint:
    """JSON+bitmap snapshots of per-campaign fleet state.

    Layout under ``directory`` (one set per campaign arm ``i``):

    - ``campaign_<i>.json`` — human-readable scalars: tests run, sim clock,
      coverage curve (bitmaps hex-packed per point), mismatch counters;
    - ``campaign_<i>.cov``  — the packed cumulative coverage bitmap;
    - ``campaign_<i>.pkl``  — the generator + detector objects (the state
      with no faithful JSON form: RNGs, corpora, signature dicts);
    - ``manifest.json``     — fleet-level: spec fingerprints, per-arm test
      counts, scheduler state, rounds completed.

    Torn-write safety: every file is written to a temp name and
    ``os.replace``d (each file is all-or-nothing), the manifest is written
    last, and all three arm artifacts carry the arm's test count (the JSON
    directly, the pickle via a ``tests_run`` stamp, the bitmap via its
    popcount — coverage only ever grows, so equal popcounts mean equal
    bitmaps).  A kill between any two writes therefore leaves a mix that
    :meth:`load_arm` detects and refuses rather than silently resuming
    from inconsistent state.  With ``recover=True`` a torn arm does not
    block resume: :meth:`recover_arm` falls back to the arm's last
    *internally* consistent snapshot — the arm files may legitimately be
    one slice ahead of a manifest the kill pre-empted — and drops the arm
    (restart from scratch) only when no intact snapshot exists, reporting
    either way so :class:`FleetHealth` can surface what was lost.
    """

    def __init__(self, directory: Path, specs: Sequence[CampaignSpec],
                 recover: bool = False) -> None:
        self.directory = Path(directory)
        self.specs = list(specs)
        self.recover = recover

    def _fingerprints(self) -> list[str]:
        return [spec.fingerprint() for spec in self.specs]

    @property
    def manifest_path(self) -> Path:
        return self.directory / "manifest.json"

    def _arm_paths(self, index: int) -> tuple[Path, Path, Path]:
        stem = self.directory / f"campaign_{index}"
        return (stem.with_suffix(".json"), stem.with_suffix(".cov"),
                stem.with_suffix(".pkl"))

    # -- save ------------------------------------------------------------------

    @staticmethod
    def _write_atomic(path: Path, data: bytes) -> None:
        """All-or-nothing file write (temp + rename): a kill mid-write can
        never leave a truncated artifact behind."""
        temp = path.with_name(path.name + ".tmp")
        temp.write_bytes(data)
        os.replace(temp, path)

    def save_arm(self, index: int, state: dict) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        json_path, cov_path, pkl_path = self._arm_paths(index)
        loop = state["loop"]
        coverage: Bitset = loop["coverage"]
        detector = loop["detector"]
        self._write_atomic(cov_path, coverage.to_bytes())
        self._write_atomic(pkl_path, pickle.dumps({
            "tests_run": loop["tests_run"],  # cross-file consistency stamp
            "generator": loop["generator"],
            "detector": detector,
        }))
        document = {
            "name": self.specs[index].name,
            "tests_run": loop["tests_run"],
            "clock_seconds": loop["clock_seconds"],
            "clock_started": loop["clock_started"],
            "total_arms": coverage.nbits,
            "covered_arms": len(coverage),
            "raw_mismatches": detector.raw_count,
            "filtered_mismatches": detector.filtered_count,
            "unique_mismatches": detector.unique_count,
            "curve": [
                {
                    "tests": point.tests,
                    "sim_hours": point.sim_hours,
                    "coverage_percent": point.coverage_percent,
                    "hits": (point.hits.to_bytes().hex()
                             if point.hits is not None else None),
                }
                for point in (state["curve"] or [])
            ],
        }
        self._write_atomic(json_path,
                           (json.dumps(document, indent=2) + "\n").encode())

    def save_manifest(self, states: dict[int, dict],
                      scheduler: BudgetScheduler | None,
                      rounds: int,
                      health: FleetHealth | None = None) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        manifest = {
            "fingerprints": self._fingerprints(),
            "rounds": rounds,
            "arms": {
                str(index): {"tests_run": state["loop"]["tests_run"]}
                for index, state in states.items()
            },
            "scheduler": scheduler.state_dict() if scheduler else None,
            "health": health.state_dict() if health is not None else None,
        }
        self._write_atomic(self.manifest_path,
                           (json.dumps(manifest, indent=2) + "\n").encode())

    # -- load ------------------------------------------------------------------

    def load(self) -> dict | None:
        """The manifest, or None when no checkpoint exists yet.

        Raises on a spec mismatch (the checkpoint belongs to a different
        fleet) — resuming someone else's state silently would be worse.
        """
        if not self.manifest_path.exists():
            return None
        manifest = json.loads(self.manifest_path.read_text())
        if manifest["fingerprints"] != self._fingerprints():
            raise ValueError(
                f"checkpoint at {self.directory} was written for different "
                "campaign specs; point the fleet at a fresh directory or "
                "delete the stale checkpoint"
            )
        return manifest

    def load_arm(self, index: int, expected_tests: int) -> dict:
        json_path, cov_path, pkl_path = self._arm_paths(index)
        document = json.loads(json_path.read_text())

        def torn(artifact: str, found) -> ValueError:
            return ValueError(
                f"torn checkpoint for arm {index}: manifest says "
                f"{expected_tests} tests, {artifact} says {found} — "
                f"delete {self.directory} and rerun"
            )

        if document["tests_run"] != expected_tests:
            raise torn(json_path.name, document["tests_run"])
        total_arms = document["total_arms"]
        coverage = Bitset.from_bytes(cov_path.read_bytes(), total_arms)
        # Coverage grows monotonically, so a bitmap from any other round
        # has a different popcount — this pins .cov to the JSON's round.
        if len(coverage) != document["covered_arms"]:
            raise torn(cov_path.name, f"{len(coverage)} covered arms")
        with pkl_path.open("rb") as fh:
            opaque = pickle.load(fh)
        if opaque["tests_run"] != expected_tests:
            raise torn(pkl_path.name, opaque["tests_run"])
        curve = [
            CurvePoint(
                tests=point["tests"],
                sim_hours=point["sim_hours"],
                coverage_percent=point["coverage_percent"],
                hits=(Bitset.from_bytes(bytes.fromhex(point["hits"]),
                                        total_arms)
                      if point["hits"] is not None else None),
            )
            for point in document["curve"]
        ]
        return {
            "loop": {
                "generator": opaque["generator"],
                "detector": opaque["detector"],
                "coverage": coverage,
                "clock_seconds": document["clock_seconds"],
                "clock_started": document["clock_started"],
                "tests_run": document["tests_run"],
            },
            "curve": curve or None,
        }

    def recover_arm(self, index: int,
                    expected_tests: int) -> tuple[dict | None, str | None]:
        """Best-effort arm load for torn-write recovery: ``(state, note)``.

        First tries the strict :meth:`load_arm`.  On a tear, retries at
        the test count the arm's own JSON claims — a kill between the arm
        writes and the manifest write leaves the arm files intact but
        *ahead* of the manifest, and that completed work is recoverable.
        If the arm files disagree among themselves too, the snapshot is
        unusable: returns ``(None, note)`` and the arm restarts from
        scratch.  ``note`` is non-None whenever anything was dropped.
        """
        try:
            return self.load_arm(index, expected_tests), None
        except Exception as torn:
            try:
                json_path = self._arm_paths(index)[0]
                actual = json.loads(json_path.read_text())["tests_run"]
                if actual != expected_tests:
                    state = self.load_arm(index, actual)
                    return state, (
                        f"arm {index}: manifest said {expected_tests} tests "
                        f"but found an intact snapshot at {actual}; resumed "
                        f"from the snapshot"
                    )
            except Exception:
                pass
            return None, (
                f"arm {index}: snapshot dropped, restarting the arm from "
                f"scratch ({torn})"
            )


# -- the runner ----------------------------------------------------------------


class FleetRunner:
    """Runs a fleet of campaign specs, optionally sharded over a process
    pool and scheduled by a budget policy (see module docstring).

    Parameters
    ----------
    specs:
        The campaign arms, in result order.  Names must be unique (they key
        cross-campaign mismatch attribution).
    n_workers:
        ``0`` runs everything in-process (deterministic and pool-free — the
        right mode for tests and one-core machines); ``N >= 1`` shards
        slices over ``N`` worker processes.  Defaults to the machine's core
        count.  Results are identical across modes (for scheduled runs, at
        equal ``concurrent_slices``): state travels with each slice, so
        placement never affects behaviour.
    checkpoint_dir:
        Enables :class:`FleetCheckpoint` snapshots (written incrementally,
        as slices complete) and resume-on-construction: an existing
        compatible checkpoint is loaded and completed work is not redone.
    checkpoint_recover:
        Torn-write recovery on resume: instead of refusing a torn arm
        snapshot, fall back to its last intact state (or restart the arm)
        and report the loss in ``FleetHealth.dropped_snapshots``.
    max_retries:
        Retries per slice after a retryable failure (any ``Exception``,
        including worker death and timeouts) before the arm is handled
        per ``quarantine``.  ``0`` disables retrying.  Fault-free runs are
        unaffected: retry bookkeeping adds no dispatch-path work.
    retry_backoff:
        Base of the exponential retry delay: attempt ``k`` sleeps
        ``retry_backoff * 2**k`` seconds before re-dispatch.  ``0``
        retries immediately (what the deterministic tests use).
    slice_timeout:
        Seconds a slice may hold a worker slot.  Pooled, it is a dispatch
        deadline — an overdue slice's pool is recycled (a hung worker
        cannot be interrupted individually) and innocent in-flight slices
        are requeued without being charged; in-process it is enforced
        post-hoc on the slice's busy seconds.  Timeouts count as
        retryable failures.  None (default) disables the mechanism.
    quarantine:
        When an arm exhausts its retries: ``True`` (default) quarantines
        it — the fleet completes with partial results and the failure
        recorded in ``FleetHealth`` — while ``False`` restores fail-fast
        (the terminal exception propagates).
    fault_plan:
        A :class:`~repro.fuzzing.faults.FaultPlan` of injected faults for
        chaos testing; None (default) injects nothing.
    sink:
        Telemetry sink (:mod:`repro.obs.events`) for the structured event
        stream: fleet lifecycle (``fleet_started``/``fleet_finished``),
        dispatch (``slice_dispatched``/``slice_completed``), fault
        tolerance (``slice_retried``/``slice_timeout``/
        ``arm_quarantined``/``pool_rebuilt``), checkpoints
        (``checkpoint_written``), scheduler rewards (``arm_reward``), plus
        the relayed in-slice events (batch phase timings, coverage points,
        mismatch discoveries — see :func:`_run_slice`).  Per-arm coverage
        bitmaps go to ``sink.save_coverage`` as slices fold.  The default
        :data:`~repro.obs.events.NULL_SINK` disables all of it: no
        payloads, no timers, no worker-side relay — a no-sink run is
        bit-identical to an uninstrumented one (pinned in ``tests/obs/``).
        Pass a :class:`~repro.obs.store.StoreSink` for a durable results
        store a dashboard can watch live.

    Every entry point records its dispatch accounting in
    :attr:`last_stats` (wall/busy seconds, slice count, worker
    utilisation, fault-tolerance health) — the observable the streaming
    mode improves.
    """

    def __init__(self, specs: Sequence[CampaignSpec],
                 n_workers: int | None = None,
                 checkpoint_dir: str | Path | None = None,
                 checkpoint_recover: bool = False,
                 max_retries: int = 2,
                 retry_backoff: float = 0.05,
                 slice_timeout: float | None = None,
                 quarantine: bool = True,
                 fault_plan: FaultPlan | None = None,
                 sink: EventSink = NULL_SINK) -> None:
        self.specs = list(specs)
        if not self.specs:
            raise ValueError("a fleet needs at least one campaign spec")
        names = [spec.name for spec in self.specs]
        if len(set(names)) != len(names):
            raise ValueError(f"campaign names must be unique, got {names}")
        self.n_workers = default_workers() if n_workers is None else n_workers
        if self.n_workers < 0:
            raise ValueError(f"n_workers must be >= 0, got {self.n_workers}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if slice_timeout is not None and slice_timeout <= 0:
            raise ValueError(
                f"slice_timeout must be positive or None, got {slice_timeout}"
            )
        self.checkpoint = (
            FleetCheckpoint(Path(checkpoint_dir), self.specs,
                            recover=checkpoint_recover)
            if checkpoint_dir is not None else None
        )
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self.slice_timeout = slice_timeout
        self.quarantine = quarantine
        self.fault_plan = fault_plan
        self.sink = sink
        #: Dispatch accounting of the most recent run/run_scheduled call.
        self.last_stats = FleetStats(n_workers=self.n_workers)
        self._pool: ProcessPoolExecutor | None = None
        self._local_campaigns: dict[int, Campaign] = {}
        self._closed = False

    # -- lifecycle -------------------------------------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._closed:
            raise RuntimeError("FleetRunner is closed")
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.n_workers,
                initializer=_fleet_init,
                initargs=(self.specs,),
            )
        return self._pool

    def close(self) -> None:
        """Release the worker pool; in-process shells stay.

        Idempotent, and safe while slices are in flight: queued slices are
        cancelled, running ones finish and are discarded, and no worker
        processes are left behind (a dispatch loop interrupted this way
        surfaces ``CancelledError`` to its caller rather than hanging).
        Also safe after worker death — shutting down a broken pool can
        raise, and that must never mask the error that broke it.
        """
        self._closed = True
        pool, self._pool = self._pool, None
        if pool is not None:
            try:
                pool.shutdown(wait=True, cancel_futures=True)
            except Exception:
                pass

    def _kill_pool(self) -> None:
        """Hard-discard the pool (dead or hung) without waiting on it.

        Live worker processes are terminated — a hung worker would
        otherwise hold its slot (and the machine's core) indefinitely —
        and the next ``_ensure_pool`` spawns a replacement pool.
        """
        pool, self._pool = self._pool, None
        if pool is None:
            return
        for process in list((getattr(pool, "_processes", None) or {}).values()):
            try:
                process.terminate()
            except Exception:
                pass
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass

    def __enter__(self) -> "FleetRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- dispatch --------------------------------------------------------------

    def _begin_stats(self, mode: str, concurrency: int,
                     health: FleetHealth) -> FleetStats:
        slots = (1 if self.n_workers == 0
                 else max(1, min(self.n_workers, concurrency)))
        self.last_stats = FleetStats(mode=mode, n_workers=self.n_workers,
                                     worker_slots=slots, health=health)
        return self.last_stats

    def _run_local_slice(self, index: int, n_tests: int, state: dict | None,
                         fault: FaultPoint | None = None):
        """Run one slice in-process on the cached local campaign shell."""
        campaign = _get_campaign(
            self.specs, self._local_campaigns, index, fresh=state is None
        )
        return _run_slice(campaign, n_tests, state, fault,
                          collect=self.sink.enabled)

    # -- telemetry -------------------------------------------------------------

    def _emit_completion(self, arm: int, output, ran: int) -> None:
        """Re-emit a finished slice's relayed events, then announce the
        completion and persist the arm's latest coverage bitmap.

        The relay is replayed *before* ``slice_completed`` so a reader of
        the single parent-side segment sees the slice's internal timeline
        (batch timings, coverage points, mismatches) close before its
        completion record — the same order events happened in the worker.
        """
        if not self.sink.enabled:
            return
        name = self.specs[arm].name
        _, result, busy, events = output
        for kind, data in events or ():
            payload = {"arm": arm, "name": name}
            payload.update(data)
            self.sink.emit(kind, **payload)
        self.sink.emit(
            "slice_completed", arm=arm, name=name,
            tests=result.tests_run, ran=ran, busy_seconds=busy,
            coverage_percent=result.final_coverage_percent,
        )
        self.sink.save_coverage(f"{arm:02d}_{name}", result.final_coverage)

    # -- fault-tolerant dispatch -----------------------------------------------

    def _fault_for(self, task: _SliceTask) -> FaultPoint | None:
        if self.fault_plan is None:
            return None
        return self.fault_plan.find(task.arm, task.ordinal, task.attempt)

    def _retry_or_quarantine(self, task: _SliceTask, exc: BaseException,
                             health: FleetHealth,
                             on_quarantine) -> _SliceTask | None:
        """Central failure policy: the retry task, or None after
        quarantining the arm (or a re-raise when neither applies).

        Only ``Exception``s are retryable — ``KeyboardInterrupt``,
        ``SystemExit`` and other ``BaseException``s (an operator kill)
        abort the fleet with checkpoints intact.  ``on_quarantine`` (may
        be None) lets each dispatch loop release its own bookkeeping for
        the removed arm and persist the decision immediately.
        """
        if not isinstance(exc, Exception):
            raise exc
        if isinstance(exc, SliceTimeout):
            health.timeouts += 1
            if self.sink.enabled:
                self.sink.emit(
                    "slice_timeout", arm=task.arm,
                    name=self.specs[task.arm].name, ordinal=task.ordinal,
                    limit_seconds=self.slice_timeout,
                )
        if task.attempt < self.max_retries:
            health.retries += 1
            if self.sink.enabled:
                self.sink.emit(
                    "slice_retried", arm=task.arm,
                    name=self.specs[task.arm].name, ordinal=task.ordinal,
                    attempt=task.attempt + 1,
                    error=f"{type(exc).__name__}: {exc}",
                )
            if self.retry_backoff > 0:
                time.sleep(self.retry_backoff * (2 ** task.attempt))
            return replace(task, attempt=task.attempt + 1, deadline=None)
        if not self.quarantine:
            raise exc
        health.quarantined.append(QuarantinedArm(
            arm=task.arm,
            name=self.specs[task.arm].name,
            error=f"{type(exc).__name__}: {exc}",
            retries=task.attempt,
            tests_run=self._state_tests(task.state),
        ))
        if self.sink.enabled:
            record = health.quarantined[-1]
            self.sink.emit(
                "arm_quarantined", arm=record.arm, name=record.name,
                error=record.error, retries=record.retries,
                tests_run=record.tests_run,
            )
        if on_quarantine is not None:
            on_quarantine(task)
        return None

    def _run_task_local(self, task: _SliceTask, health: FleetHealth,
                        on_quarantine):
        """In-process execution with retry: ``(task, output)``, or None
        when the arm was quarantined.

        The timeout is enforced post-hoc on the slice's busy seconds (an
        in-process slice cannot be interrupted).  Because in-process state
        dicts share live objects with the parent's ``states`` map, any
        attempt that might be discarded and retried (a scheduled fault, or
        any run under a timeout) works on a defensive deep copy, keeping
        the retry's input state pristine.
        """
        while True:
            fault = self._fault_for(task)
            if self.sink.enabled:
                self.sink.emit(
                    "slice_dispatched", arm=task.arm,
                    name=self.specs[task.arm].name, ordinal=task.ordinal,
                    attempt=task.attempt, n_tests=task.n_tests,
                )
            state = task.state
            if state is not None and (fault is not None
                                      or self.slice_timeout is not None):
                state = copy.deepcopy(state)
            try:
                output = self._run_local_slice(task.arm, task.n_tests,
                                               state, fault)
                if (self.slice_timeout is not None
                        and output[2] > self.slice_timeout):
                    raise SliceTimeout(
                        f"arm {task.arm} slice {task.ordinal} busy for "
                        f"{output[2]:.3f}s > slice_timeout="
                        f"{self.slice_timeout}s"
                    )
                return task, output
            except BaseException as exc:
                retry = self._retry_or_quarantine(task, exc, health,
                                                  on_quarantine)
                if retry is None:
                    return None
                task = retry

    def _submit_task(self, inflight: dict[Future, _SliceTask],
                     task: _SliceTask, health: FleetHealth) -> None:
        """Submit one slice to the pool (rebuilding it once if the submit
        itself finds the pool broken — the task never ran, so no attempt
        is charged)."""
        if self.slice_timeout is not None and task.deadline is None:
            task.deadline = time.monotonic() + self.slice_timeout
        fault = self._fault_for(task)
        collect = self.sink.enabled
        if collect:
            self.sink.emit(
                "slice_dispatched", arm=task.arm,
                name=self.specs[task.arm].name, ordinal=task.ordinal,
                attempt=task.attempt, n_tests=task.n_tests,
            )
        try:
            future = self._ensure_pool().submit(
                _fleet_slice, task.arm, task.n_tests, task.state, fault,
                collect,
            )
        except BrokenProcessPool:
            self._kill_pool()
            health.pool_rebuilds += 1
            if collect:
                self.sink.emit("pool_rebuilt", layer="fleet",
                               reason="pool found broken at submit")
            future = self._ensure_pool().submit(
                _fleet_slice, task.arm, task.n_tests, task.state, fault,
                collect,
            )
        inflight[future] = task

    def _pump(self, inflight: dict[Future, _SliceTask], health: FleetHealth,
              on_quarantine) -> list[tuple[_SliceTask, tuple]]:
        """Advance the pooled dispatch loop by one wait: successfully
        completed ``(task, output)`` pairs, sorted by arm.

        All recovery happens inside: failed slices are retried (requeued
        into ``inflight``), worker death recycles the pool and requeues
        every in-flight slice (the pool cannot say which task killed the
        worker, so each is charged an attempt), an overdue slice recycles
        the pool with only the overdue arms charged (innocents requeue
        free — their slices never misbehaved), and exhausted arms are
        quarantined.  May return an empty list when the wait's progress
        was recovery rather than completion.
        """
        timeout = None
        if self.slice_timeout is not None:
            soonest = min(task.deadline for task in inflight.values())
            timeout = max(0.0, soonest - time.monotonic())
        done, _ = wait(set(inflight), timeout=timeout,
                       return_when=FIRST_COMPLETED)

        completed: list[tuple[_SliceTask, tuple]] = []
        failed: list[tuple[_SliceTask, Exception]] = []
        requeue: list[_SliceTask] = []
        broken = False
        # Deterministic handling order among simultaneous completions.
        for future in sorted(done, key=lambda f: inflight[f].arm):
            task = inflight.pop(future)
            try:
                completed.append((task, future.result()))
            except BrokenProcessPool as exc:
                broken = True
                failed.append((task, exc))
            except Exception as exc:
                failed.append((task, exc))

        if broken:
            # Worker death strands every other in-flight slice on the dead
            # pool too; recycle once and requeue them all.
            for task in sorted(inflight.values(), key=lambda t: t.arm):
                failed.append((task, BrokenProcessPool(
                    "slice was in flight on a pool a worker death broke"
                )))
            inflight.clear()
            self._kill_pool()
            health.pool_rebuilds += 1
            if self.sink.enabled:
                self.sink.emit("pool_rebuilt", layer="fleet",
                               reason="worker death (BrokenProcessPool)")
        elif self.slice_timeout is not None and inflight:
            now = time.monotonic()
            if any(task.deadline <= now for task in inflight.values()):
                # A hung worker cannot be interrupted individually —
                # recycle the pool.  Overdue arms are charged a timeout;
                # the innocent in-flight slices requeue at the same
                # attempt.
                for task in sorted(inflight.values(), key=lambda t: t.arm):
                    if task.deadline <= now:
                        failed.append((task, SliceTimeout(
                            f"arm {task.arm} slice {task.ordinal} exceeded "
                            f"slice_timeout={self.slice_timeout}s"
                        )))
                    else:
                        requeue.append(replace(task, deadline=None))
                inflight.clear()
                self._kill_pool()
                health.pool_rebuilds += 1
                if self.sink.enabled:
                    self.sink.emit("pool_rebuilt", layer="fleet",
                                   reason="hung slice past slice_timeout")

        for task, exc in failed:
            retry = self._retry_or_quarantine(task, exc, health,
                                              on_quarantine)
            if retry is not None:
                requeue.append(retry)
        for task in requeue:
            self._submit_task(inflight, task, health)
        return completed

    def _execute_barrier(self, tasks: list[_SliceTask], health: FleetHealth,
                         on_quarantine) -> dict[int, tuple]:
        """Run every task to completion (with retry/healing/quarantine):
        ``{arm: output}`` — quarantined arms are simply absent.  The round
        mode's primitive; the streaming loop drives :meth:`_pump` itself.
        """
        if self._closed:
            raise RuntimeError("FleetRunner is closed")
        outputs: dict[int, tuple] = {}
        if self.n_workers == 0:
            for task in tasks:
                finished = self._run_task_local(task, health, on_quarantine)
                if finished is not None:
                    outputs[finished[0].arm] = finished[1]
            return outputs
        inflight: dict[Future, _SliceTask] = {}
        try:
            for task in tasks:
                self._submit_task(inflight, task, health)
            while inflight:
                for task, output in self._pump(inflight, health,
                                               on_quarantine):
                    outputs[task.arm] = output
        except BaseException:
            for future in inflight:
                future.cancel()
            raise
        return outputs

    # -- checkpoint plumbing ---------------------------------------------------

    @staticmethod
    def _state_tests(state: dict | None) -> int:
        return 0 if state is None else state["loop"]["tests_run"]

    def _load_states(self, scheduler: BudgetScheduler | None):
        """(states, rounds, health) from the checkpoint, or fresh.

        ``health`` starts as the persisted ledger (quarantined arms stay
        quarantined across resume) and keeps accumulating through the
        run.  In recovery mode a torn arm snapshot falls back to its last
        intact state via :meth:`FleetCheckpoint.recover_arm` instead of
        blocking the resume.
        """
        states: dict[int, dict] = {}
        health = FleetHealth()
        if self.checkpoint is None:
            return states, 0, health
        manifest = self.checkpoint.load()
        if manifest is None:
            return states, 0, health
        if manifest.get("health"):
            health = FleetHealth.from_state_dict(manifest["health"])
        for key, arm in manifest["arms"].items():
            index = int(key)
            if self.checkpoint.recover:
                state, note = self.checkpoint.recover_arm(
                    index, arm["tests_run"]
                )
                if note is not None:
                    health.dropped_snapshots.append(note)
                if state is not None:
                    states[index] = state
            else:
                states[index] = self.checkpoint.load_arm(
                    index, arm["tests_run"]
                )
        if scheduler is not None and manifest["scheduler"] is not None:
            scheduler.load_state_dict(manifest["scheduler"])
        return states, manifest["rounds"], health

    def _save_round(self, states: dict[int, dict],
                    scheduler: BudgetScheduler | None, rounds: int,
                    dirty: Sequence[int],
                    health: FleetHealth | None = None) -> None:
        if self.checkpoint is None:
            return
        for index in dirty:
            self.checkpoint.save_arm(index, states[index])
        self.checkpoint.save_manifest(states, scheduler, rounds, health)
        if self.sink.enabled:
            self.sink.emit("checkpoint_written", rounds=rounds,
                           dirty=list(dirty))

    @staticmethod
    def _result_from_state(name: str, state: dict) -> CampaignResult:
        """Rebuild the result snapshot a finished slice would have returned
        (field-for-field identical to ``Campaign._finalize`` output)."""
        loop = state["loop"]
        coverage: Bitset = loop["coverage"]
        detector = loop["detector"]
        # Same association order as CumulativeCoverage.percent, so rebuilt
        # results compare bit-identical to live ones.
        percent = (100.0 * (len(coverage) / coverage.nbits)
                   if coverage.nbits else 0.0)
        return CampaignResult(
            name=name,
            curve=list(state["curve"] or []),
            tests_run=loop["tests_run"],
            sim_hours=loop["clock_seconds"] / 3600.0,
            final_coverage_percent=percent,
            raw_mismatches=detector.raw_count,
            unique_mismatches=detector.unique_count,
            final_coverage=coverage,
            mismatches=list(detector.unique.values()),
        )

    # -- entry points ----------------------------------------------------------

    def run(self) -> FleetResult:
        """Run every spec to its full ``budget_tests`` (one slice each).

        The basic sharding mode: N independent campaigns spread over the
        pool, gathered in spec order.  Dispatch is event-driven: each
        campaign is checkpointed the moment its slice completes (not at an
        end-of-fleet barrier), so a kill loses only in-flight work.  With a
        checkpoint, arms that already reached their budget are not re-run,
        and arms quarantined by a previous run stay quarantined.
        """
        if self._closed:
            raise RuntimeError("FleetRunner is closed")
        started = time.perf_counter()
        states, rounds, health = self._load_states(scheduler=None)
        quarantined = health.quarantined_arms()
        tasks = []
        for index, spec in enumerate(self.specs):
            if index in quarantined:
                continue
            remaining = spec.budget_tests - self._state_tests(states.get(index))
            if remaining > 0:
                tasks.append(_SliceTask(index, remaining, states.get(index),
                                        ordinal=0))
        stats = self._begin_stats("whole-budget", concurrency=len(tasks),
                                  health=health)
        if self.sink.enabled:
            self.sink.emit(
                "fleet_started", mode="whole-budget",
                n_workers=self.n_workers, worker_slots=stats.worker_slots,
                arms=len(self.specs),
                resumed_tests=sum(self._state_tests(s)
                                  for s in states.values()),
            )
        results: dict[int, CampaignResult] = {}
        meta = {"rounds": rounds}

        def fold(task: _SliceTask, output) -> None:
            state, result, busy, _events = output
            ran = result.tests_run - self._state_tests(states.get(task.arm))
            self._emit_completion(task.arm, output, ran)
            states[task.arm] = state
            results[task.arm] = result
            stats.busy_seconds += busy
            stats.slices += 1
            stats.tests += ran
            meta["rounds"] += 1
            self._save_round(states, None, meta["rounds"], dirty=[task.arm],
                             health=health)

        def on_quarantine(task: _SliceTask) -> None:
            # The arm's last good state (if any) is already in ``states``;
            # persist the quarantine decision itself right away.
            self._save_round(states, None, meta["rounds"], dirty=[],
                             health=health)

        if self.n_workers == 0:
            for task in tasks:
                finished = self._run_task_local(task, health, on_quarantine)
                if finished is not None:
                    fold(*finished)
        else:
            inflight: dict[Future, _SliceTask] = {}
            try:
                for task in tasks:
                    self._submit_task(inflight, task, health)
                while inflight:
                    for task, output in self._pump(inflight, health,
                                                   on_quarantine):
                        fold(task, output)
            except BaseException:
                for future in inflight:
                    future.cancel()
                raise
        stats.wall_seconds = time.perf_counter() - started
        for index, spec in enumerate(self.specs):
            if index not in results:  # prior run, quarantined, or n=0
                results[index] = (
                    self._result_from_state(spec.name, states[index])
                    if index in states else CampaignResult(name=spec.name)
                )
        fleet_result = FleetResult(
            [results[i] for i in range(len(self.specs))], health=health
        )
        if self.sink.enabled:
            self.sink.emit(
                "fleet_finished", mode="whole-budget",
                wall_seconds=stats.wall_seconds,
                busy_seconds=stats.busy_seconds, slices=stats.slices,
                tests=stats.tests, union_percent=fleet_result.union_percent,
            )
        return fleet_result

    def run_scheduled(self, scheduler: BudgetScheduler | None = None,
                      slice_tests: int = 64,
                      total_tests: int | None = None,
                      target_percent: float | None = None,
                      concurrent_slices: int | None = None,
                      mode: str = "rounds") -> FleetResult:
        """Allocate the budget in slices via ``scheduler`` (MABFuzz-style).

        ``mode="rounds"`` (the default) is barrier-synchronised: each round
        the scheduler picks up to ``concurrent_slices`` distinct arms
        (default: the worker count); their slices run concurrently, then
        the scheduler is updated in pick order with each slice's reward —
        the arm's *new* contribution to the fleet-wide coverage union,
        normalised by the universe size.  Rounds are deterministic for a
        given configuration regardless of worker timing, at the cost of
        every round waiting for its slowest slice.

        ``mode="streaming"`` is the event-driven dispatch loop: one slice
        per free worker slot, and each completion is immediately folded
        into the union, reported to ``scheduler.on_slice_complete``,
        checkpointed, and replaced by the next
        ``scheduler.next_campaign`` dispatch — worker slots never idle at
        a barrier.  The determinism contract: every campaign's *own*
        trajectory stays deterministic (slices carry their state, and a
        campaign never has two slices in flight), so with per-arm budgets
        as the only stop condition the final per-campaign results — and
        hence the fleet union — are bit-identical to round mode.  Only the
        *interleaving* (scheduler observation order, and therefore the
        allocation under shared ``total_tests`` / ``target_percent`` caps
        on a real pool) varies run-to-run.  In-process streaming
        (``n_workers=0``) has one slot and is fully deterministic — the
        reference for the kill/resume equality tests.

        Stops when every arm reached its ``budget_tests``, the fleet spent
        ``total_tests`` (checked at slice granularity — batch rounding may
        overshoot slightly), or union coverage reached ``target_percent``.
        An arm that exhausts its retries is quarantined (see the class
        docstring): it leaves the scheduler's eligible set, its partial
        state stays in the aggregate, and the remaining arms keep running
        to their budgets.
        """
        if mode not in ("rounds", "streaming"):
            raise ValueError(
                f"mode must be 'rounds' or 'streaming', got {mode!r}"
            )
        if self._closed:
            raise RuntimeError("FleetRunner is closed")
        scheduler = scheduler if scheduler is not None else RoundRobin()
        scheduler.bind(len(self.specs))
        if self.sink.enabled:
            scheduler.attach_sink(self.sink)
        started = time.perf_counter()
        states, rounds, health = self._load_states(scheduler)
        quarantined = health.quarantined_arms()
        concurrency = (concurrent_slices if concurrent_slices is not None
                       else max(1, self.n_workers))
        stats = self._begin_stats(mode, concurrency, health)
        union_bits = 0
        universe = 0
        for state in states.values():
            coverage: Bitset = state["loop"]["coverage"]
            union_bits |= coverage.to_int()
            universe = max(universe, coverage.nbits)
        spent = sum(self._state_tests(s) for s in states.values())
        box = {"union_bits": union_bits, "universe": universe,
               "spent": spent, "rounds": rounds}
        if self.sink.enabled:
            self.sink.emit(
                "fleet_started", mode=mode, n_workers=self.n_workers,
                worker_slots=stats.worker_slots, arms=len(self.specs),
                scheduler=type(scheduler).__name__, resumed_tests=spent,
            )

        def on_quarantine(task: _SliceTask) -> None:
            quarantined.add(task.arm)
            scheduler.on_arm_quarantined(task.arm)
            self._save_round(states, scheduler, box["rounds"], dirty=[],
                             health=health)

        def target_reached() -> bool:
            return (target_percent is not None and box["universe"] > 0
                    and 100.0 * box["union_bits"].bit_count()
                    / box["universe"] >= target_percent)

        def fold_completion(arm: int, output, event_driven: bool) -> None:
            """Fold one finished slice: union, reward, scheduler, stats,
            checkpoint.  Shared verbatim by both modes so their per-slice
            bookkeeping cannot drift apart."""
            state, result, busy, _events = output
            ran = result.tests_run - self._state_tests(states.get(arm))
            self._emit_completion(arm, output, ran)
            box["spent"] += ran
            states[arm] = state
            bits = result.final_coverage.to_int()
            gained = (bits & ~box["union_bits"]).bit_count()
            box["union_bits"] |= bits
            box["universe"] = max(box["universe"],
                                  result.final_coverage.nbits)
            reward = gained / box["universe"] if box["universe"] else 0.0
            if event_driven:
                scheduler.on_slice_complete(arm, ran, reward)
            else:
                scheduler.update(arm, ran, reward)
            stats.busy_seconds += busy
            stats.slices += 1
            stats.tests += ran
            if event_driven:
                box["rounds"] += 1
                self._save_round(states, scheduler, box["rounds"],
                                 dirty=[arm], health=health)

        if mode == "streaming":
            self._run_streaming(scheduler, slice_tests, total_tests,
                                concurrency, states, box, target_reached,
                                fold_completion, health, quarantined,
                                on_quarantine)
        else:
            self._run_rounds(scheduler, slice_tests, total_tests,
                             concurrency, states, box, target_reached,
                             fold_completion, health, quarantined,
                             on_quarantine)
        stats.wall_seconds = time.perf_counter() - started
        fleet_result = FleetResult([
            self._result_from_state(spec.name, states[index])
            if index in states
            else CampaignResult(name=spec.name)
            for index, spec in enumerate(self.specs)
        ], health=health)
        if self.sink.enabled:
            self.sink.emit(
                "fleet_finished", mode=mode,
                wall_seconds=stats.wall_seconds,
                busy_seconds=stats.busy_seconds, slices=stats.slices,
                tests=stats.tests, union_percent=fleet_result.union_percent,
            )
        return fleet_result

    def _run_rounds(self, scheduler, slice_tests, total_tests, concurrency,
                    states, box, target_reached, fold_completion, health,
                    quarantined, on_quarantine) -> None:
        """The barrier-synchronised scheduling loop (pre-streaming
        behaviour, bit for bit on the fault-free path: same picks, same
        update order, same round-granular checkpoints).  A quarantined
        pick simply contributes no output to its round — the budget it
        reserved was never spent and frees up for the next round's picks.
        """
        ordinals: dict[int, int] = {}
        while True:
            if target_reached():
                break
            if total_tests is not None and box["spent"] >= total_tests:
                break
            available = {
                index for index, spec in enumerate(self.specs)
                if index not in quarantined
                and self._state_tests(states.get(index)) < spec.budget_tests
            }
            if not available:
                break
            picks: list[tuple[int, int]] = []
            budget_left = (None if total_tests is None
                           else total_tests - box["spent"])
            while available and len(picks) < concurrency:
                if budget_left is not None and budget_left <= 0:
                    break
                arm = scheduler.select(sorted(available))
                available.discard(arm)
                spec = self.specs[arm]
                n_tests = min(
                    slice_tests,
                    spec.budget_tests - self._state_tests(states.get(arm)),
                )
                if budget_left is not None:
                    n_tests = min(n_tests, budget_left)
                    budget_left -= n_tests
                picks.append((arm, n_tests))
            if not picks:
                break
            tasks = []
            for arm, n_tests in picks:
                ordinal = ordinals.get(arm, 0)
                ordinals[arm] = ordinal + 1
                tasks.append(_SliceTask(arm, n_tests, states.get(arm),
                                        ordinal=ordinal))
            outputs = self._execute_barrier(tasks, health, on_quarantine)
            for arm, _ in picks:
                if arm in outputs:
                    fold_completion(arm, outputs[arm], event_driven=False)
            box["rounds"] += 1
            self._save_round(states, scheduler, box["rounds"],
                             dirty=[arm for arm, _ in picks
                                    if arm in outputs],
                             health=health)

    def _run_streaming(self, scheduler, slice_tests, total_tests,
                       concurrency, states, box, target_reached,
                       fold_completion, health, quarantined,
                       on_quarantine) -> None:
        """The futures-based dispatch loop (see :meth:`run_scheduled`).

        ``reserved`` counts tests promised to in-flight slices so the
        shared ``total_tests`` cap is respected at dispatch time; an arm
        never has two slices in flight (its state travels with the slice),
        which is what keeps per-campaign trajectories deterministic.  A
        retried slice keeps its arm in flight (the requeue happens inside
        :meth:`_pump`); only completion or quarantine releases the slot.
        """
        inflight_arms: set[int] = set()
        reserved = 0
        ordinals: dict[int, int] = {}

        def next_task() -> _SliceTask | None:
            if target_reached():
                return None
            if (total_tests is not None
                    and box["spent"] + reserved >= total_tests):
                return None
            eligible = [
                index for index, spec in enumerate(self.specs)
                if index not in inflight_arms
                and index not in quarantined
                and self._state_tests(states.get(index)) < spec.budget_tests
            ]
            if not eligible:
                return None
            arm = scheduler.next_campaign(eligible)
            n_tests = min(
                slice_tests,
                self.specs[arm].budget_tests
                - self._state_tests(states.get(arm)),
            )
            if total_tests is not None:
                n_tests = min(n_tests,
                              total_tests - box["spent"] - reserved)
            if n_tests <= 0:
                return None
            ordinal = ordinals.get(arm, 0)
            ordinals[arm] = ordinal + 1
            return _SliceTask(arm, n_tests, states.get(arm), ordinal=ordinal)

        if self.n_workers == 0:
            # One slot: dispatch -> complete -> fold, immediately.  Fully
            # deterministic — the streaming mode's reference trajectory.
            while True:
                task = next_task()
                if task is None:
                    break
                finished = self._run_task_local(task, health, on_quarantine)
                if finished is None:
                    continue  # arm quarantined; keep scheduling the rest
                fold_completion(task.arm, finished[1], event_driven=True)
            return

        def release_and_quarantine(task: _SliceTask) -> None:
            # The quarantined arm leaves flight: free its slot and its
            # budget reservation before the shared bookkeeping runs.
            nonlocal reserved
            inflight_arms.discard(task.arm)
            reserved -= task.n_tests
            on_quarantine(task)

        inflight: dict[Future, _SliceTask] = {}
        try:
            while True:
                while len(inflight) < concurrency:
                    task = next_task()
                    if task is None:
                        break
                    inflight_arms.add(task.arm)
                    reserved += task.n_tests
                    self._submit_task(inflight, task, health)
                if not inflight:
                    break
                # Stable fold order among simultaneous completions (the
                # arrival *timing* still varies run-to-run — that is the
                # documented interleaving nondeterminism).
                for task, output in self._pump(inflight, health,
                                               release_and_quarantine):
                    inflight_arms.discard(task.arm)
                    reserved -= task.n_tests
                    fold_completion(task.arm, output, event_driven=True)
        except BaseException:
            for future in inflight:
                future.cancel()
            raise
