"""The Mismatch Detector (paper §III-C, §IV-A).

Compares architectural-state changes between the DUT trace and the golden
trace of the same test input, producing :class:`Mismatch` records.  Two
mechanisms reproduce the paper's workflow:

- **signature-based unique filtering** — multiple instances of the same bug
  produce many raw mismatches but one *unique* mismatch (paper: 5,866 raw →
  >100 unique, automated);
- **user filters** — predicates that suppress known-benign divergences
  ("architectural state values that … filter out most of the false positive
  mismatches"), e.g. reads of the cycle counter, which legitimately differs
  between an RTL simulation and an untimed ISS.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.golden.trace import CommitTrace, TraceEntry
from repro.isa.decoder import decode
from repro.isa.spec import CSR_CYCLE, CSR_INSTRET, CSR_TIME


@dataclass(frozen=True)
class Mismatch:
    """One detected divergence between DUT and golden execution."""

    kind: str
    index: int
    pc: int
    detail: str
    #: Dedup key: mismatches with equal signatures are "the same bug".
    signature: tuple

    def __str__(self) -> str:
        return f"[{self.kind}] @pc={self.pc:#x} idx={self.index}: {self.detail}"


FilterFn = Callable[[Mismatch, TraceEntry | None, TraceEntry | None], bool]


def counter_csr_filter(mismatch: Mismatch, dut: TraceEntry | None,
                       gold: TraceEntry | None) -> bool:
    """Suppress rd-value mismatches caused by cycle/time CSR reads.

    An RTL simulation's cycle counter legitimately differs from an untimed
    ISS — the canonical false positive the paper's filters remove.
    """
    if mismatch.kind != "rd_value" or dut is None:
        return False
    instr = decode(dut.instr)
    if instr is None or not instr.spec.is_csr:
        return False
    return instr.csr in (CSR_CYCLE, CSR_TIME, CSR_INSTRET)


def _mnemonic(entry: TraceEntry | None) -> str:
    if entry is None:
        return "<none>"
    instr = decode(entry.instr)
    return instr.mnemonic if instr is not None else "<invalid>"


def compare_traces(dut: CommitTrace, gold: CommitTrace) -> list[Mismatch]:
    """Diff two commit traces entry-by-entry.

    Comparison stops at the first PC divergence or instruction-word
    divergence (everything after is cascade noise from the same root cause);
    field-level mismatches on aligned entries are all reported.
    """
    mismatches: list[Mismatch] = []
    for i, (d, g) in enumerate(zip(dut.entries, gold.entries)):
        # Decoded lazily: mnemonics are only needed when a mismatch fires,
        # and the overwhelmingly common aligned entry has none.
        if d.pc != g.pc:
            mismatches.append(Mismatch(
                "pc_divergence", i, d.pc,
                f"dut pc {d.pc:#x} vs golden {g.pc:#x}",
                ("pc_divergence", _mnemonic(g)),
            ))
            return mismatches
        if d.instr != g.instr:
            # Same PC, different instruction word: the DUT fetched stale
            # bytes — the direct evidence of Bug1 (CWE-1202).
            mismatches.append(Mismatch(
                "instr_word", i, d.pc,
                f"dut fetched {d.instr:#010x}, golden {g.instr:#010x}",
                ("instr_word", _mnemonic(g)),
            ))
            return mismatches
        if d.trapped or g.trapped:
            if d.trap_cause != g.trap_cause:
                mismatches.append(Mismatch(
                    "trap_cause", i, d.pc,
                    f"dut cause {d.trap_cause} vs golden {g.trap_cause}",
                    ("trap_cause", _mnemonic(d), d.trap_cause, g.trap_cause),
                ))
            continue
        if d.rd != g.rd:
            if d.rd == 0:
                kind = "rd_spurious_x0"
                detail = f"dut trace writes x0 <- {d.rd_value:#x}"
            elif d.rd is None:
                kind = "rd_missing"
                detail = f"golden writes x{g.rd} <- {g.rd_value:#x}, dut trace omits it"
            else:
                kind = "rd_target"
                detail = f"dut rd x{d.rd} vs golden x{g.rd}"
            mismatches.append(Mismatch(
                kind, i, d.pc, detail, (kind, _mnemonic(d))))
        elif d.rd is not None and d.rd_value != g.rd_value:
            mismatches.append(Mismatch(
                "rd_value", i, d.pc,
                f"x{d.rd}: dut {d.rd_value:#x} vs golden {g.rd_value:#x}",
                ("rd_value", _mnemonic(d)),
            ))
        if (d.mem is None) != (g.mem is None) or (
            d.mem is not None and d.mem != g.mem
        ):
            mismatches.append(Mismatch(
                "mem", i, d.pc,
                f"dut {d.mem} vs golden {g.mem}",
                ("mem", _mnemonic(d)),
            ))
        if d.csr_write != g.csr_write:
            mismatches.append(Mismatch(
                "csr", i, d.pc,
                f"dut {d.csr_write} vs golden {g.csr_write}",
                ("csr", _mnemonic(d)),
            ))
    if len(dut.entries) != len(gold.entries):
        mismatches.append(Mismatch(
            "trace_length", min(len(dut.entries), len(gold.entries)), 0,
            f"dut {len(dut.entries)} entries vs golden {len(gold.entries)}",
            ("trace_length",),
        ))
    elif dut.stop_reason != gold.stop_reason:
        mismatches.append(Mismatch(
            "stop_reason", len(dut.entries), 0,
            f"dut {dut.stop_reason} vs golden {gold.stop_reason}",
            ("stop_reason", dut.stop_reason, gold.stop_reason),
        ))
    return mismatches


@dataclass
class MismatchDetector:
    """Campaign-level mismatch accounting with filters and unique tracking."""

    filters: list[FilterFn] = field(default_factory=list)
    raw_count: int = 0
    filtered_count: int = 0
    unique: dict[tuple, Mismatch] = field(default_factory=dict)
    #: Raw (unfiltered) mismatch count per kind.
    by_kind: dict[str, int] = field(default_factory=dict)

    def observe(self, dut: CommitTrace, gold: CommitTrace) -> list[Mismatch]:
        """Diff one test's traces; returns the surviving (unfiltered) list."""
        surviving = []
        for mismatch in compare_traces(dut, gold):
            self.raw_count += 1
            self.by_kind[mismatch.kind] = self.by_kind.get(mismatch.kind, 0) + 1
            index = mismatch.index
            dut_entry = dut.entries[index] if index < len(dut.entries) else None
            gold_entry = gold.entries[index] if index < len(gold.entries) else None
            if any(f(mismatch, dut_entry, gold_entry) for f in self.filters):
                self.filtered_count += 1
                continue
            surviving.append(mismatch)
            if mismatch.signature not in self.unique:
                self.unique[mismatch.signature] = mismatch
        return surviving

    @property
    def unique_count(self) -> int:
        return len(self.unique)

    def summary(self) -> str:
        lines = [
            f"raw mismatches:      {self.raw_count}",
            f"filtered out:        {self.filtered_count}",
            f"unique mismatches:   {self.unique_count}",
            "by kind: " + ", ".join(
                f"{k}={v}" for k, v in sorted(self.by_kind.items())
            ),
        ]
        return "\n".join(lines)
