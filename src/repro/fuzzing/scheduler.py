"""Budget schedulers: which campaign arm gets the next slice of tests.

A fleet (``repro.fuzzing.fleet``) spends one shared test budget across many
campaign *arms* — different fuzzers, seeds or SoC configs.  A static split
wastes budget on arms that stopped discovering coverage; MABFuzz (Gohil et
al., 2023) shows that treating the fuzzers as a multi-armed bandit and
allocating successive budget slices by observed reward beats static splits
on processor-fuzzing workloads.

Two policies are provided behind one small protocol:

- :class:`RoundRobin` — the static-split baseline: cycle through the
  eligible arms in order.
- :class:`BanditScheduler` — UCB1: play each arm once, then pick the arm
  maximising ``mean_reward + c * sqrt(2 ln N / n_i)``.  The fleet's reward
  for a slice is the *new* coverage it contributed to the fleet-wide union
  (an incremental :class:`~repro.rtl.bitset.Bitset` delta, normalised by
  the universe size), so arms exploring already-covered ground decay
  towards pure exploration terms and the budget flows to whichever fuzzer
  is still finding new arms.

The protocol is *event-driven*: the fleet runner asks
:meth:`BudgetScheduler.next_campaign` whenever a worker frees up and
reports each finished slice through
:meth:`BudgetScheduler.on_slice_complete` the moment it completes — no
round barrier is implied by the interface.  The pre-streaming round-mode
entry points (:meth:`BudgetScheduler.select` /
:meth:`BudgetScheduler.update`) survive as thin adapters over the
event-driven pair, so round-synchronised fleets drive the exact same
policy state and stay bit-identical to their pre-refactor behaviour.
Policies should override the event-driven pair; a legacy subclass that
only overrides ``select``/``update`` keeps working in round mode but
cannot serve a streaming fleet.

Schedulers are deterministic (ties break to the lowest arm index) and
checkpointable (:meth:`BudgetScheduler.state_dict`), so a resumed fleet
continues the exact allocation sequence of an uninterrupted one.  In
streaming mode the *completion order* of concurrent slices feeds
``on_slice_complete``, so a pooled streaming fleet's allocation sequence
can vary run-to-run — see the determinism contract on
:meth:`repro.fuzzing.fleet.FleetRunner.run_scheduled`.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.obs.events import NULL_SINK, EventSink


class BudgetScheduler:
    """Protocol for slice-allocation policies (event-driven).

    Lifecycle: :meth:`bind` once with the number of arms, then the fleet
    runner calls :meth:`next_campaign` each time a worker slot frees up
    and :meth:`on_slice_complete` as each slice finishes.  Both must be
    deterministic given the call history — fleet checkpoint/resume
    equality depends on it.  The round-mode pair (:meth:`select` /
    :meth:`update`) are adapters over the event-driven pair: one round of
    barrier-synchronised picks is just N ``next_campaign`` calls whose
    completions happen to be reported together, so one policy
    implementation serves both fleet modes with identical state
    evolution.
    """

    n_arms: int = 0
    #: Telemetry sink (:mod:`repro.obs.events`); the fleet runner attaches
    #: its own via :meth:`attach_sink`.  Policies emit *observations* of
    #: their internal state (e.g. per-arm reward trajectories) — sinks
    #: must never influence scheduling, and the sink is excluded from
    #: :meth:`state_dict` (telemetry is an observer, not policy state).
    sink: EventSink = NULL_SINK

    def bind(self, n_arms: int) -> None:
        """Declare the arm universe; called once by the fleet runner."""
        if n_arms < 1:
            raise ValueError(f"need at least one arm, got {n_arms}")
        self.n_arms = n_arms

    def attach_sink(self, sink: EventSink) -> None:
        """Route this policy's telemetry to ``sink`` (the runner's)."""
        self.sink = sink

    # -- event-driven interface (override these) -------------------------------

    def next_campaign(self, eligible: Sequence[int]) -> int:
        """Choose the campaign for a freed worker from the (sorted)
        eligible indices (arms under budget and not already in flight)."""
        raise NotImplementedError

    def on_slice_complete(self, arm: int, tests: int, reward: float) -> None:
        """Fold one completed slice on ``arm`` into policy state (no-op by
        default).  Called the moment the slice finishes — in streaming
        fleets that is completion order, not dispatch order."""

    def on_arm_quarantined(self, arm: int) -> None:
        """The fleet removed ``arm`` from scheduling after it exhausted
        its retries (see ``repro.fuzzing.fleet``).  No-op by default —
        the runner already drops the arm from every future ``eligible``
        set, so policies only need this hook to rebalance internal state
        (e.g. redistribute a static split).  The arm never returns."""

    # -- round-mode adapters (legacy interface) --------------------------------

    def select(self, eligible: Sequence[int]) -> int:
        """Round-mode adapter for :meth:`next_campaign`."""
        return self.next_campaign(eligible)

    def update(self, arm: int, tests: int, reward: float) -> None:
        """Round-mode adapter for :meth:`on_slice_complete`."""
        self.on_slice_complete(arm, tests, reward)

    # -- checkpointing ---------------------------------------------------------

    def state_dict(self) -> dict:
        """Picklable/JSON-able policy state for fleet checkpoints."""
        return {}

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output."""


class RoundRobin(BudgetScheduler):
    """Static budget split: cycle through eligible arms in index order."""

    def __init__(self) -> None:
        self._cursor = 0

    def next_campaign(self, eligible: Sequence[int]) -> int:
        if not eligible:
            raise ValueError("no eligible arms to schedule")
        pool = set(eligible)
        for offset in range(max(self.n_arms, max(pool) + 1)):
            arm = (self._cursor + offset) % max(self.n_arms, 1)
            if arm in pool:
                self._cursor = arm + 1
                return arm
        raise ValueError(f"eligible arms {sorted(pool)} outside universe")

    def state_dict(self) -> dict:
        return {"cursor": self._cursor}

    def load_state_dict(self, state: dict) -> None:
        self._cursor = int(state["cursor"])


class BanditScheduler(BudgetScheduler):
    """UCB1 over campaign arms, rewarded by new fleet-union coverage.

    Parameters
    ----------
    exploration:
        Multiplier ``c`` on the confidence-bound term.  The default 1.0 is
        classic UCB1; lower values commit to the best-looking arm sooner
        (coverage rewards are far below 1, so a small ``c`` is usually the
        better fit — MABFuzz tunes the equivalent knob the same way).
    """

    def __init__(self, exploration: float = 1.0) -> None:
        self.exploration = exploration
        self.counts: list[int] = []
        self.totals: list[float] = []

    def bind(self, n_arms: int) -> None:
        super().bind(n_arms)
        if len(self.counts) != n_arms:
            self.counts = [0] * n_arms
            self.totals = [0.0] * n_arms

    def next_campaign(self, eligible: Sequence[int]) -> int:
        if not eligible:
            raise ValueError("no eligible arms to schedule")
        unplayed = [arm for arm in eligible if self.counts[arm] == 0]
        if unplayed:
            return min(unplayed)
        plays = max(1, sum(self.counts))
        return max(
            sorted(eligible),
            key=lambda arm: (
                self.totals[arm] / self.counts[arm]
                + self.exploration
                * math.sqrt(2.0 * math.log(plays) / self.counts[arm]),
                -arm,  # deterministic tie-break: lowest index wins
            ),
        )

    def on_slice_complete(self, arm: int, tests: int, reward: float) -> None:
        self.counts[arm] += 1
        self.totals[arm] += reward
        if self.sink.enabled:
            # The MABFuzz debuggability hook: the allocation trajectory
            # (per-arm plays and running mean reward) as first-class data
            # rather than state buried inside the policy.
            self.sink.emit(
                "arm_reward", arm=arm, tests=tests, reward=reward,
                count=self.counts[arm],
                mean=self.totals[arm] / self.counts[arm],
                total=self.totals[arm],
            )

    def state_dict(self) -> dict:
        return {"counts": list(self.counts), "totals": list(self.totals)}

    def load_state_dict(self, state: dict) -> None:
        self.counts = [int(c) for c in state["counts"]]
        self.totals = [float(t) for t in state["totals"]]
