"""Campaign driver: run a fuzzer to a budget, record the coverage curve.

Benches use this to regenerate the paper's evaluation artifacts: Figure 2's
coverage-over-time series and the coverage-at-budget / time-to-coverage
numbers of §V-A.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fuzzing.chatfuzz import FuzzLoop
from repro.rtl.bitset import Bitset


@dataclass(frozen=True)
class CurvePoint:
    """One sample of the campaign's coverage trajectory."""

    tests: int
    sim_hours: float
    coverage_percent: float


@dataclass
class CampaignResult:
    """Outcome of one fuzzing campaign."""

    name: str
    curve: list[CurvePoint] = field(default_factory=list)
    tests_run: int = 0
    sim_hours: float = 0.0
    final_coverage_percent: float = 0.0
    raw_mismatches: int = 0
    unique_mismatches: int = 0
    #: Packed bitmap of every arm the campaign covered — lets campaign
    #: results be unioned (multi-campaign sharding) without re-simulating.
    final_coverage: Bitset = field(default_factory=Bitset)

    def coverage_at_tests(self, n: int) -> float:
        """Coverage percent at the last curve point with <= n tests."""
        best = 0.0
        for point in self.curve:
            if point.tests <= n:
                best = point.coverage_percent
        return best

    def time_to_coverage(self, percent: float) -> float | None:
        """Simulated hours when coverage first reached ``percent``, or None."""
        for point in self.curve:
            if point.coverage_percent >= percent:
                return point.sim_hours
        return None

    def summary(self) -> str:
        return (
            f"{self.name}: {self.tests_run} tests, "
            f"{self.sim_hours:.2f} sim-hours, "
            f"coverage {self.final_coverage_percent:.2f}%, "
            f"mismatches raw={self.raw_mismatches} unique={self.unique_mismatches}"
        )


class Campaign:
    """Runs a :class:`FuzzLoop` until a test/time/coverage budget is hit.

    Usable as a context manager, which closes the loop's executor on exit —
    relevant when the loop runs on a worker pool
    (:class:`~repro.fuzzing.pool.ShardedExecutor`)::

        with Campaign(FuzzLoop(gen, factory, executor=exec_), "c") as camp:
            result = camp.run_tests(1000)
    """

    def __init__(self, loop: FuzzLoop, name: str = "campaign") -> None:
        self.loop = loop
        self.name = name

    def close(self) -> None:
        """Release the loop's executor resources."""
        self.loop.close()

    def __enter__(self) -> "Campaign":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _snapshot(self, result: CampaignResult) -> None:
        result.curve.append(CurvePoint(
            tests=self.loop.tests_run,
            sim_hours=self.loop.clock.hours,
            coverage_percent=self.loop.total_percent,
        ))

    def _finalize(self, result: CampaignResult) -> CampaignResult:
        result.tests_run = self.loop.tests_run
        result.sim_hours = self.loop.clock.hours
        result.final_coverage_percent = self.loop.total_percent
        result.raw_mismatches = self.loop.detector.raw_count
        result.unique_mismatches = self.loop.detector.unique_count
        result.final_coverage = self.loop.calculator.cumulative.hits
        return result

    def run_tests(self, n_tests: int) -> CampaignResult:
        """Run until at least ``n_tests`` tests have executed."""
        result = CampaignResult(name=self.name)
        # Charge elaboration up front (as run_sim_hours always has) so the
        # sim_hours epoch of every CurvePoint — including the initial
        # snapshot — is consistent across all three entry points.
        self.loop.clock.start()
        self._snapshot(result)
        while self.loop.tests_run < n_tests:
            self.loop.run_batch()
            self._snapshot(result)
        return self._finalize(result)

    def run_sim_hours(self, hours: float, max_tests: int | None = None) -> CampaignResult:
        """Run until the simulated clock passes ``hours``."""
        result = CampaignResult(name=self.name)
        self.loop.clock.start()
        self._snapshot(result)
        while self.loop.clock.hours < hours:
            if max_tests is not None and self.loop.tests_run >= max_tests:
                break
            self.loop.run_batch()
            self._snapshot(result)
        return self._finalize(result)

    def run_to_coverage(self, percent: float, max_tests: int) -> CampaignResult:
        """Run until total coverage reaches ``percent`` (or the test cap)."""
        result = CampaignResult(name=self.name)
        self.loop.clock.start()  # consistent epoch; see run_tests
        self._snapshot(result)
        while (
            self.loop.total_percent < percent
            and self.loop.tests_run < max_tests
        ):
            self.loop.run_batch()
            self._snapshot(result)
        return self._finalize(result)
