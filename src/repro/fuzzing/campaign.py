"""Campaign driver: run a fuzzer to a budget, record the coverage curve.

Benches use this to regenerate the paper's evaluation artifacts: Figure 2's
coverage-over-time series and the coverage-at-budget / time-to-coverage
numbers of §V-A.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fuzzing.chatfuzz import FuzzLoop
from repro.fuzzing.mismatch import Mismatch
from repro.rtl.bitset import Bitset


@dataclass(frozen=True)
class CurvePoint:
    """One sample of the campaign's coverage trajectory.

    ``hits`` optionally carries the packed cumulative bitmap at this point,
    which is what lets fleet aggregation merge curves from many campaigns
    onto one sim-hours epoch by *union* instead of by (meaningless) percent
    arithmetic — see :meth:`repro.fuzzing.fleet.FleetResult.merged_curve`.
    """

    tests: int
    sim_hours: float
    coverage_percent: float
    hits: Bitset | None = None


@dataclass
class CampaignResult:
    """Outcome of one fuzzing campaign."""

    name: str
    curve: list[CurvePoint] = field(default_factory=list)
    tests_run: int = 0
    sim_hours: float = 0.0
    final_coverage_percent: float = 0.0
    raw_mismatches: int = 0
    unique_mismatches: int = 0
    #: Packed bitmap of every arm the campaign covered — lets campaign
    #: results be unioned (multi-campaign sharding) without re-simulating.
    final_coverage: Bitset = field(default_factory=Bitset)
    #: The unique mismatch representatives (one per signature), so fleets can
    #: dedupe identical signatures found by different campaigns while keeping
    #: per-campaign attribution (see ``repro.analysis.fleet``).
    mismatches: list[Mismatch] = field(default_factory=list)

    @property
    def total_arms(self) -> int:
        """Size of the DUT's coverage universe (from the packed bitmap)."""
        return self.final_coverage.nbits

    def coverage_at_tests(self, n: int) -> float:
        """Coverage percent at the last curve point with <= n tests."""
        best = 0.0
        for point in self.curve:
            if point.tests <= n:
                best = point.coverage_percent
        return best

    def time_to_coverage(self, percent: float) -> float | None:
        """Simulated hours when coverage first reached ``percent``, or None."""
        for point in self.curve:
            if point.coverage_percent >= percent:
                return point.sim_hours
        return None

    def summary(self) -> str:
        return (
            f"{self.name}: {self.tests_run} tests, "
            f"{self.sim_hours:.2f} sim-hours, "
            f"coverage {self.final_coverage_percent:.2f}%, "
            f"mismatches raw={self.raw_mismatches} unique={self.unique_mismatches}"
        )


class Campaign:
    """Runs a :class:`FuzzLoop` until a test/time/coverage budget is hit.

    Usable as a context manager, which closes the loop's executor on exit —
    relevant when the loop runs on a worker pool
    (:class:`~repro.fuzzing.pool.ShardedExecutor`)::

        with Campaign(FuzzLoop(gen, factory, executor=exec_), "c") as camp:
            result = camp.run_tests(1000)

    A *pipelined* loop (``FuzzLoop(..., pipeline=True)``) works with every
    whole-budget entry point below and keeps one generated batch in flight
    between calls; exiting the context discards that prefetch (call
    ``loop.drain()`` first to fold it into the result instead).  The slice
    API is the exception: :meth:`state_dict` snapshots cannot represent an
    in-flight batch, so fleet campaigns — whose slices are shipped between
    workers as state dicts — run synchronous loops by construction (see
    ``CampaignSpec.build_campaign``).
    """

    def __init__(self, loop: FuzzLoop, name: str = "campaign") -> None:
        self.loop = loop
        self.name = name
        #: Persistent result the slice API accumulates into (run_slice); the
        #: whole-budget entry points below each build a fresh result instead.
        self._result: CampaignResult | None = None

    def close(self) -> None:
        """Release the loop's executor resources."""
        self.loop.close()

    def __enter__(self) -> "Campaign":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _snapshot(self, result: CampaignResult) -> None:
        point = CurvePoint(
            tests=self.loop.tests_run,
            sim_hours=self.loop.clock.hours,
            coverage_percent=self.loop.total_percent,
            hits=self.loop.calculator.cumulative.hits,
        )
        result.curve.append(point)
        if self.loop.sink.enabled:
            self.loop.sink.emit(
                "coverage_point", campaign=self.name, tests=point.tests,
                sim_hours=point.sim_hours,
                coverage_percent=point.coverage_percent,
            )

    def _finalize(self, result: CampaignResult) -> CampaignResult:
        result.tests_run = self.loop.tests_run
        result.sim_hours = self.loop.clock.hours
        result.final_coverage_percent = self.loop.total_percent
        result.raw_mismatches = self.loop.detector.raw_count
        result.unique_mismatches = self.loop.detector.unique_count
        result.final_coverage = self.loop.calculator.cumulative.hits
        result.mismatches = list(self.loop.detector.unique.values())
        return result

    # -- slice API (fleet scheduling) -------------------------------------------

    @property
    def result(self) -> CampaignResult | None:
        """The accumulating slice-API result (None before the first slice)."""
        return self._result

    def run_slice(self, n_tests: int) -> CampaignResult:
        """Run ``n_tests`` *more* tests (whole batches) and return the
        up-to-date result.

        Unlike :meth:`run_tests`, successive calls continue one campaign —
        the curve, coverage, mismatch accounting and sim clock all carry
        over.  This is the unit of work a fleet budget scheduler allocates
        (:mod:`repro.fuzzing.scheduler`): the returned
        :class:`CampaignResult` is a live snapshot whose ``final_coverage``
        delta against the fleet union is the scheduler's reward signal.
        """
        if self._result is None:
            self._result = CampaignResult(name=self.name)
            self.loop.clock.start()  # consistent epoch; see run_tests
            self._snapshot(self._result)
        target = self.loop.tests_run + n_tests
        while self.loop.tests_run < target:
            self.loop.run_batch()
            self._snapshot(self._result)
        return self._finalize(self._result)

    def state_dict(self) -> dict:
        """Picklable snapshot of all mutable campaign state.

        Together with the :class:`~repro.fuzzing.fleet.CampaignSpec` that
        built this campaign, the state dict fully determines future
        behaviour: fleets ship it between scheduler slices (any worker can
        continue any campaign) and persist it in checkpoints.  Raises if
        the loop has a pipelined batch in flight (drain it first) — a
        snapshot that silently dropped a prefetch would break the
        resume-equality guarantee.
        """
        return {
            "loop": self.loop.state_dict(),
            "curve": list(self._result.curve) if self._result is not None
            else None,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output into this campaign shell."""
        self.loop.load_state_dict(state["loop"])
        if state["curve"] is None:
            self._result = None
        else:
            self._result = self._finalize(
                CampaignResult(name=self.name, curve=list(state["curve"]))
            )

    def run_tests(self, n_tests: int) -> CampaignResult:
        """Run until at least ``n_tests`` tests have executed."""
        result = CampaignResult(name=self.name)
        # Charge elaboration up front (as run_sim_hours always has) so the
        # sim_hours epoch of every CurvePoint — including the initial
        # snapshot — is consistent across all three entry points.
        self.loop.clock.start()
        self._snapshot(result)
        while self.loop.tests_run < n_tests:
            self.loop.run_batch()
            self._snapshot(result)
        return self._finalize(result)

    def run_sim_hours(self, hours: float, max_tests: int | None = None) -> CampaignResult:
        """Run until the simulated clock passes ``hours``."""
        result = CampaignResult(name=self.name)
        self.loop.clock.start()
        self._snapshot(result)
        while self.loop.clock.hours < hours:
            if max_tests is not None and self.loop.tests_run >= max_tests:
                break
            self.loop.run_batch()
            self._snapshot(result)
        return self._finalize(result)

    def run_to_coverage(self, percent: float, max_tests: int) -> CampaignResult:
        """Run until total coverage reaches ``percent`` (or the test cap)."""
        result = CampaignResult(name=self.name)
        self.loop.clock.start()  # consistent epoch; see run_tests
        self._snapshot(result)
        while (
            self.loop.total_percent < percent
            and self.loop.tests_run < max_tests
        ):
            self.loop.run_batch()
            self._snapshot(result)
        return self._finalize(result)
