"""Sharded harness execution across a pool of worker processes.

Each worker owns one process-local :class:`~repro.soc.harness.DutHarness`
(DUT core + golden ISS), built **once** by the pool initializer from a
pickled factory — construction cost (condition-coverage elaboration) is paid
per worker, not per test.  Batches are split into contiguous chunks, chunks
are simulated concurrently, and the parent stitches the chunk results back
together in submission order, so downstream consumers cannot tell the
difference from serial execution (see ``repro.fuzzing.executor``).

Design notes
------------
- The factory must be a picklable zero-arg callable, e.g.
  :class:`~repro.soc.harness.HarnessFactory`; live harness objects are
  rejected because shipping one per task would swamp the IPC channel and
  resurrect the per-test construction cost this module exists to remove.
- Workers are reused across batches: the pool spins up lazily on the first
  ``run_batch`` and lives until :meth:`ShardedExecutor.close`.
- Result transfer is bitset-packed: each chunk's coverage reports cross the
  pipe as packed bitmaps (one small bytes payload per report) rather than
  pickled per-arm frozensets, which shrinks the result pickle and lifts the
  sharded speedup ceiling on IPC-bound machines (``BENCH_harness.json``).
- A worker raising mid-chunk fails only that batch: remaining chunk futures
  are cancelled, the original exception propagates to the caller, and the
  pool stays usable for the next batch.
- A worker *dying* (hard crash) surfaces as ``BrokenProcessPool`` — and the
  executor **self-heals**: the dead pool is discarded, a fresh one is
  spawned, and the batch's chunks are resubmitted whole (a batch mutates
  nothing until its results are folded, so resubmission is idempotent), up
  to ``max_retries`` rebuilds per batch before the error propagates.
  ``close()`` is safe and idempotent even when the pool died first — a
  broken pool is discarded, never re-raised from shutdown.
"""

from __future__ import annotations

import os
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from repro.fuzzing.executor import DifferentialResult, HarnessExecutor

#: Process-local harness, installed by :func:`_init_worker` in each worker.
_WORKER_HARNESS = None


def _init_worker(factory) -> None:
    global _WORKER_HARNESS
    _WORKER_HARNESS = factory()


def _run_chunk(bodies: list[list[int]]) -> list[DifferentialResult]:
    """Worker-side task: differentially simulate one contiguous chunk.

    A chunk is also the batched engines' lane group: harnesses built with
    ``golden_lanes > 0`` run the chunk's golden traces as one vectorised
    call, and ``dut_lanes > 0`` does the same for the DUT traces and
    coverage reports, so pool chunking and laning compose (see the
    ROADMAP's "Choosing lane widths (golden + DUT)" guidance).
    """
    harness = _WORKER_HARNESS
    batched = getattr(harness, "run_differential_batch", None)
    if batched is not None:
        return [DifferentialResult(*r) for r in batched(bodies)]
    return [DifferentialResult(*harness.run_differential(body))
            for body in bodies]


def default_workers() -> int:
    """A sensible worker count for this machine (physical parallelism)."""
    return max(1, os.cpu_count() or 1)


@dataclass
class PoolStats:
    """Lifetime accounting for one :class:`ShardedExecutor`."""

    batches: int = 0
    tests: int = 0
    chunks: int = 0
    #: Pools discarded and respawned after worker death (self-healing).
    rebuilds: int = 0


@dataclass
class SubmittedBatch:
    """Handle for a batch whose chunks are in flight on the pool.

    Single-use: :meth:`ShardedExecutor.collect` consumes it.  Multiple
    handles may be outstanding at once (the pool queues excess chunks),
    which is what the pipelined fuzz loop relies on.  The handle keeps
    the chunk bodies and the pool *generation* it was submitted to, so
    ``collect`` can resubmit the whole batch on a rebuilt pool after
    ``BrokenProcessPool`` — and knows whether the breakage it sees is
    from the current pool or one another handle already replaced.
    """

    futures: list[Future] = field(default_factory=list)
    n_bodies: int = 0
    collected: bool = False
    chunks: list = field(default_factory=list)
    generation: int = 0


class ShardedExecutor(HarnessExecutor):
    """Process-pool harness executor (see module docstring).

    Parameters
    ----------
    harness_factory:
        Picklable zero-arg callable building a ``DutHarness``
        (:class:`~repro.soc.harness.HarnessFactory` is the canonical one).
        May be omitted and supplied later through ``bind`` — which is what
        ``FuzzLoop(generator, factory, executor=ShardedExecutor(n_workers=4))``
        does.
    n_workers:
        Pool size.  Defaults to the machine's CPU count.
    chunk_size:
        Bodies per worker task.  Defaults to an even split of the batch over
        the workers (one task per worker), which minimises IPC; set it lower
        to improve load balance when per-test simulation cost is very skewed.
    max_retries:
        Pool rebuilds allowed per batch after worker death
        (``BrokenProcessPool``): the dead pool is replaced and the batch's
        chunks resubmitted whole.  ``0`` restores the old fail-fast
        behaviour (the breakage propagates on first occurrence).
    """

    def __init__(self, harness_factory=None, n_workers: int | None = None,
                 chunk_size: int | None = None, max_retries: int = 1) -> None:
        if harness_factory is not None and not callable(harness_factory):
            raise TypeError(
                "ShardedExecutor needs a picklable zero-arg factory (e.g. "
                "repro.soc.harness.HarnessFactory), not a live harness; "
                "workers build their own harness from it"
            )
        super().__init__(harness_factory)
        self.n_workers = n_workers if n_workers is not None else default_workers()
        if self.n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {self.n_workers}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.chunk_size = chunk_size
        self.max_retries = max_retries
        self.stats = PoolStats()
        self._pool: ProcessPoolExecutor | None = None
        self._generation = 0
        self._total_arms: int | None = None
        self._closed = False

    def bind(self, harness_or_factory) -> "ShardedExecutor":
        if self._factory is None and not callable(harness_or_factory):
            raise TypeError(
                "ShardedExecutor cannot adopt a live harness; bind a "
                "picklable zero-arg factory instead"
            )
        super().bind(harness_or_factory)
        return self

    # -- lifecycle -------------------------------------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._closed:
            raise RuntimeError("ShardedExecutor is closed")
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.n_workers,
                initializer=_init_worker,
                initargs=(self._require_factory(),),
            )
        return self._pool

    def _discard_pool(self) -> None:
        """Drop the current pool (dead or alive) without propagating its
        shutdown errors; the next ``_ensure_pool`` spawns a fresh one."""
        pool, self._pool = self._pool, None
        self._generation += 1
        if pool is not None:
            try:
                pool.shutdown(wait=False, cancel_futures=True)
            except Exception:
                pass

    def close(self) -> None:
        self._closed = True
        pool, self._pool = self._pool, None
        if pool is not None:
            try:
                pool.shutdown(wait=True, cancel_futures=True)
            except Exception:
                # A pool whose workers died can raise from shutdown; close()
                # must stay safe and idempotent regardless.
                pass

    # -- interface -------------------------------------------------------------

    @property
    def total_arms(self) -> int:
        if self._total_arms is None:
            # One throwaway parent-side harness for the static metadata; only
            # the int is kept — per-test simulation happens in the workers.
            self._total_arms = self._require_factory()().total_arms
        return self._total_arms

    def _lane_width(self) -> int:
        """Largest lane-group width the bound factory's harnesses use.

        Factories without lane knobs (custom callables, stubs) report 0.
        """
        factory = self._factory
        return max(int(getattr(factory, "golden_lanes", 0) or 0),
                   int(getattr(factory, "dut_lanes", 0) or 0))

    def _chunks(self, bodies: list[list[int]]) -> list[list[list[int]]]:
        size = self.chunk_size
        if size is None:
            size = max(1, -(-len(bodies) // self.n_workers))  # ceil division
            # A chunk is also the lane group (see _run_chunk): splitting a
            # batch below the configured lane width would leave the batched
            # engines running partially-filled groups, so the even split
            # only shrinks chunks down to that width, never below it.
            size = max(size, self._lane_width())
        return [bodies[i:i + size] for i in range(0, len(bodies), size)]

    def submit_batch(self, bodies: list[list[int]]) -> SubmittedBatch:
        """Dispatch a batch's chunks to the pool immediately (no waiting).

        Unlike the base executor's deferred handle, the chunks start
        simulating right away, so the caller can do CPU work (generate the
        next batch) while the workers run this one.
        """
        if not bodies:
            return SubmittedBatch()
        pool = self._ensure_pool()
        chunks = self._chunks(bodies)
        return SubmittedBatch(
            futures=[pool.submit(_run_chunk, chunk) for chunk in chunks],
            n_bodies=len(bodies),
            chunks=chunks,
            generation=self._generation,
        )

    def collect(self, handle) -> list[DifferentialResult]:
        if not isinstance(handle, SubmittedBatch):
            return super().collect(handle)
        if handle.collected:
            raise RuntimeError("batch handle was already collected")
        handle.collected = True
        if self._closed:
            # close() cancelled queued chunks; collecting now would either
            # raise CancelledError or block on a dead pool.
            raise RuntimeError("ShardedExecutor is closed")
        results: list[DifferentialResult] = []
        rebuilds = 0
        while True:
            try:
                # Gather in submission order: chunks are contiguous slices,
                # so concatenating their results reconstructs the batch order
                # even though the chunks *executed* concurrently.
                for future in handle.futures:
                    results.extend(future.result())
                break
            except BrokenProcessPool:
                # Worker death.  Self-heal: discard the dead pool, spawn a
                # fresh one, resubmit this batch's chunks whole (a batch
                # mutates nothing until folded, so resubmission is
                # idempotent).  The generation check keeps a second
                # outstanding handle from discarding a pool another collect
                # already replaced.
                if rebuilds >= self.max_retries:
                    raise
                rebuilds += 1
                if handle.generation == self._generation:
                    self._discard_pool()
                    self.stats.rebuilds += 1
                    if self.sink.enabled:
                        self.sink.emit(
                            "pool_rebuilt", layer="executor",
                            reason="worker death during batch collect",
                        )
                results.clear()
                pool = self._ensure_pool()
                handle.futures = [pool.submit(_run_chunk, chunk)
                                  for chunk in handle.chunks]
                handle.generation = self._generation
            except BaseException:
                for future in handle.futures:
                    future.cancel()
                raise
        if handle.n_bodies:
            self.stats.batches += 1
            self.stats.tests += handle.n_bodies
            self.stats.chunks += len(handle.futures)
        return results

    def run_batch(self, bodies: list[list[int]]) -> list[DifferentialResult]:
        if not bodies:
            return []
        return self.collect(self.submit_batch(bodies))
