"""The fuzzing loop of Figure 1a.

Generic over the input generator, so the same loop drives ChatFuzz (the LLM
generator), TheHuzz, DifuzzRTL and random regression — only the generator
differs, which is exactly the paper's experimental control.

Per batch:

1. the generator produces test bodies;
2. each body runs on the DUT (trace + coverage report) and on the golden ISS
   (trace);
3. the Mismatch Detector diffs the traces;
4. the Coverage Calculator scores each input (stand-alone / incremental /
   total) and the scores are fed back to the generator via ``observe`` —
   mutation fuzzers use them for corpus selection; the LLM generator may use
   them for online PPO.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.coverage.calculator import CoverageCalculator, InputCoverage
from repro.coverage.scoring import CoverageScorer
from repro.fuzzing.executor import HarnessExecutor, SerialExecutor
from repro.fuzzing.input import TestInput
from repro.fuzzing.mismatch import MismatchDetector, counter_csr_filter
from repro.fuzzing.simclock import SimClock


@dataclass
class BatchOutcome:
    """Everything the loop learned from one generation batch."""

    inputs: list[TestInput]
    coverages: list[InputCoverage]
    scores: list[float]
    mismatch_count: int
    total_percent: float


class FuzzLoop:
    """The differential fuzzing loop (see module docstring).

    Parameters
    ----------
    generator:
        Object with ``generate_batch(n) -> list[list[int]]`` and optionally
        ``observe(inputs, coverages, scores)`` for feedback-driven fuzzers.
    harness:
        A :class:`~repro.soc.harness.DutHarness`, or a zero-arg factory for
        one (e.g. :class:`~repro.soc.harness.HarnessFactory`).  Factories are
        what parallel executors need — each worker process builds its own
        harness from the pickled factory.
    batch_size:
        Tests per generation batch (the paper's batch granularity drives
        incremental-coverage baselines).
    use_default_filters:
        Install the counter-CSR false-positive filter (paper §IV-A).
    executor:
        Execution strategy for the differential step
        (:class:`~repro.fuzzing.executor.HarnessExecutor`).  Defaults to
        :class:`~repro.fuzzing.executor.SerialExecutor`; pass
        ``ShardedExecutor(n_workers=...)`` to spread each batch over a
        process pool.  An executor constructed without a factory is bound to
        ``harness`` here, so ``FuzzLoop(gen, factory,
        executor=ShardedExecutor(n_workers=4))`` just works.  Whatever the
        strategy, per-test results reach the calculator, detector and
        generator feedback in submission order, identical to serial.
    """

    def __init__(
        self,
        generator,
        harness=None,
        batch_size: int = 16,
        clock: SimClock | None = None,
        use_default_filters: bool = True,
        scorer: CoverageScorer | None = None,
        executor: HarnessExecutor | None = None,
    ) -> None:
        self.generator = generator
        if executor is None:
            executor = SerialExecutor(harness)
        elif harness is not None:
            executor.bind(harness)
        self.executor = executor
        self.batch_size = batch_size
        self.clock = clock or SimClock()
        self.calculator = CoverageCalculator(executor.total_arms, batch_mode=True)
        self.scorer = scorer or CoverageScorer()
        self.detector = MismatchDetector(
            filters=[counter_csr_filter] if use_default_filters else []
        )
        self.tests_run = 0

    @property
    def harness(self):
        """The in-process harness, when the executor owns one (serial path)."""
        return getattr(self.executor, "harness", None)

    def close(self) -> None:
        """Release executor resources (worker processes, for pooled runs)."""
        self.executor.close()

    def __enter__(self) -> "FuzzLoop":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- state capture (fleet checkpoint/resume) -------------------------------

    def state_dict(self) -> dict:
        """Picklable snapshot of the loop's mutable state.

        The generator and detector are carried whole (both are small,
        picklable objects — mutation corpora are lists of ints, the LLM
        generator's model a few small arrays); coverage travels as one packed
        :class:`~repro.rtl.bitset.Bitset`.  Restoring the snapshot into a
        freshly-built loop of the same configuration reproduces future
        batches exactly, which is what lets a fleet continue a campaign on
        any worker (see ``repro.fuzzing.fleet``).
        """
        return {
            "generator": self.generator,
            "detector": self.detector,
            "coverage": self.calculator.cumulative.hits,
            "clock_seconds": self.clock.seconds,
            "clock_started": self.clock.started,
            "tests_run": self.tests_run,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (inverse operation)."""
        self.generator = state["generator"]
        self.detector = state["detector"]
        calculator = CoverageCalculator(
            self.calculator.total_arms, batch_mode=self.calculator.batch_mode
        )
        calculator.cumulative.merge_bits(state["coverage"].to_int())
        self.calculator = calculator
        self.clock.seconds = state["clock_seconds"]
        self.clock.started = state["clock_started"]
        self.tests_run = state["tests_run"]

    # -- one batch ------------------------------------------------------------

    def run_batch(self) -> BatchOutcome:
        bodies = self.generator.generate_batch(self.batch_size)
        inputs = [
            body if isinstance(body, TestInput) else TestInput(list(body))
            for body in bodies
        ]
        # Simulate the whole batch first (possibly sharded over workers) and
        # only then fold results into campaign state, so a failed batch
        # leaves tests_run / coverage / mismatch accounting untouched.
        results = self.executor.run_batch([test.words for test in inputs])
        mismatches = 0
        for res in results:
            mismatches += len(
                self.detector.observe(res.dut_trace, res.golden_trace)
            )
        # Whole-batch coverage scoring in one vectorised sweep (identical to
        # per-report observes — see repro.coverage.calculator).
        reports = [res.report for res in results]
        coverages: list[InputCoverage] = self.calculator.observe_batch(reports)
        self.clock.charge_tests(len(inputs))
        self.tests_run += len(inputs)
        scores = self.scorer.score_batch(coverages)
        observe = getattr(self.generator, "observe", None)
        if observe is not None:
            observe(inputs, coverages, scores, reports)
        return BatchOutcome(
            inputs=inputs,
            coverages=coverages,
            scores=scores,
            mismatch_count=mismatches,
            total_percent=self.calculator.total_percent,
        )

    @property
    def total_percent(self) -> float:
        return self.calculator.total_percent
