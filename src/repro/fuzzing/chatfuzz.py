"""The fuzzing loop of Figure 1a.

Generic over the input generator, so the same loop drives ChatFuzz (the LLM
generator), TheHuzz, DifuzzRTL and random regression — only the generator
differs, which is exactly the paper's experimental control.

Per batch:

1. the generator produces test bodies;
2. each body runs on the DUT (trace + coverage report) and on the golden ISS
   (trace);
3. the Mismatch Detector diffs the traces;
4. the Coverage Calculator scores each input (stand-alone / incremental /
   total) and the scores are fed back to the generator via ``observe`` —
   mutation fuzzers use them for corpus selection; the LLM generator may use
   them for online PPO.

Pipelined mode (``FuzzLoop(..., pipeline=True)``) overlaps stage 1 of batch
N+1 with stage 2 of batch N: generation is CPU-bound numpy decode in the
parent process, execution runs on the executor (a process pool for
:class:`~repro.fuzzing.pool.ShardedExecutor`), so the two use disjoint
resources.  Each ``run_batch`` call still folds exactly one batch into
campaign state and ``observe`` still sees whole batches in submission
order; the one semantic shift is a one-batch feedback lag — batch N+1 is
generated *before* batch N's scores reach ``observe`` — so feedback-free
generators are byte-identical to synchronous mode while feedback-driven
ones learn from a stream delayed by one batch (pinned by
``tests/fuzzing/test_pipeline.py``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.coverage.calculator import CoverageCalculator, InputCoverage
from repro.coverage.scoring import CoverageScorer
from repro.fuzzing.executor import HarnessExecutor, SerialExecutor
from repro.fuzzing.input import TestInput
from repro.fuzzing.mismatch import MismatchDetector, counter_csr_filter
from repro.fuzzing.simclock import SimClock
from repro.obs.events import NULL_SINK, EventSink


@dataclass
class BatchOutcome:
    """Everything the loop learned from one generation batch."""

    inputs: list[TestInput]
    coverages: list[InputCoverage]
    scores: list[float]
    mismatch_count: int
    total_percent: float


class FuzzLoop:
    """The differential fuzzing loop (see module docstring).

    Parameters
    ----------
    generator:
        Object with ``generate_batch(n) -> list[list[int]]`` and optionally
        ``observe(inputs, coverages, scores)`` for feedback-driven fuzzers.
    harness:
        A :class:`~repro.soc.harness.DutHarness`, or a zero-arg factory for
        one (e.g. :class:`~repro.soc.harness.HarnessFactory`).  Factories are
        what parallel executors need — each worker process builds its own
        harness from the pickled factory.
    batch_size:
        Tests per generation batch (the paper's batch granularity drives
        incremental-coverage baselines).
    use_default_filters:
        Install the counter-CSR false-positive filter (paper §IV-A).
    executor:
        Execution strategy for the differential step
        (:class:`~repro.fuzzing.executor.HarnessExecutor`).  Defaults to
        :class:`~repro.fuzzing.executor.SerialExecutor`; pass
        ``ShardedExecutor(n_workers=...)`` to spread each batch over a
        process pool.  An executor constructed without a factory is bound to
        ``harness`` here, so ``FuzzLoop(gen, factory,
        executor=ShardedExecutor(n_workers=4))`` just works.  Whatever the
        strategy, per-test results reach the calculator, detector and
        generator feedback in submission order, identical to serial.
    pipeline:
        Overlap generation of batch N+1 with execution of batch N via the
        executor's ``submit_batch``/``collect`` split (see module
        docstring).  With a :class:`SerialExecutor` the split defers
        execution to collect time, so the loop degenerates to the
        synchronous path; the overlap only buys wall-clock with a
        pool-backed executor.  A pipelined loop keeps one generated batch
        in flight between ``run_batch`` calls — :meth:`drain` folds it,
        :meth:`close` discards it, and :meth:`state_dict` refuses to
        snapshot around it.
    sink:
        Telemetry sink (:mod:`repro.obs.events`).  With the default
        :data:`~repro.obs.events.NULL_SINK` the loop does *no* telemetry
        work — not even ``perf_counter`` calls — and behaves bit-identical
        to an uninstrumented loop.  An enabled sink receives per-phase
        timer events (``batch_generated`` / ``batch_executed`` /
        ``batch_folded``: generation vs. execution vs. coverage-fold wall
        time per batch) and a ``mismatch_found`` event per *new* unique
        mismatch signature.  Sinks never feed back into the loop; the
        sink is deliberately excluded from :meth:`state_dict` (telemetry
        is an observer, not campaign state).
    """

    def __init__(
        self,
        generator,
        harness=None,
        batch_size: int = 16,
        clock: SimClock | None = None,
        use_default_filters: bool = True,
        scorer: CoverageScorer | None = None,
        executor: HarnessExecutor | None = None,
        pipeline: bool = False,
        sink: EventSink = NULL_SINK,
    ) -> None:
        self.generator = generator
        self.sink = sink
        if executor is None:
            executor = SerialExecutor(harness)
        elif harness is not None:
            executor.bind(harness)
        self.executor = executor
        self.batch_size = batch_size
        self.pipeline = pipeline
        self.clock = clock or SimClock()
        self.calculator = CoverageCalculator(executor.total_arms, batch_mode=True)
        self.scorer = scorer or CoverageScorer()
        self.detector = MismatchDetector(
            filters=[counter_csr_filter] if use_default_filters else []
        )
        self.tests_run = 0
        #: Pipelined mode's prefetched batch: (inputs, executor handle).
        self._inflight: tuple[list[TestInput], object] | None = None

    @property
    def harness(self):
        """The in-process harness, when the executor owns one (serial path)."""
        return getattr(self.executor, "harness", None)

    def close(self) -> None:
        """Release executor resources (worker processes, for pooled runs).

        Idempotent, and safe with a pipelined batch still in flight: the
        prefetch is discarded (its results are never folded, so campaign
        state stays consistent) and the executor's own close cancels or
        drains any worker-side chunks.  Call :meth:`drain` first to keep
        the prefetched batch instead.
        """
        self._inflight = None
        self.executor.close()

    def __enter__(self) -> "FuzzLoop":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- state capture (fleet checkpoint/resume) -------------------------------

    def state_dict(self) -> dict:
        """Picklable snapshot of the loop's mutable state.

        The generator and detector are carried whole (both are small,
        picklable objects — mutation corpora are lists of ints, the LLM
        generator's model a few small arrays); coverage travels as one packed
        :class:`~repro.rtl.bitset.Bitset`.  Restoring the snapshot into a
        freshly-built loop of the same configuration reproduces future
        batches exactly, which is what lets a fleet continue a campaign on
        any worker (see ``repro.fuzzing.fleet``).
        """
        if self._inflight is not None:
            raise RuntimeError(
                "a pipelined batch is in flight; drain() the loop before "
                "snapshotting — the prefetch is not part of the state dict"
            )
        return {
            "generator": self.generator,
            "detector": self.detector,
            "coverage": self.calculator.cumulative.hits,
            "clock_seconds": self.clock.seconds,
            "clock_started": self.clock.started,
            "tests_run": self.tests_run,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (inverse operation)."""
        self.generator = state["generator"]
        self.detector = state["detector"]
        calculator = CoverageCalculator(
            self.calculator.total_arms, batch_mode=self.calculator.batch_mode
        )
        calculator.cumulative.merge_bits(state["coverage"].to_int())
        self.calculator = calculator
        self.clock.seconds = state["clock_seconds"]
        self.clock.started = state["clock_started"]
        self.tests_run = state["tests_run"]

    # -- one batch ------------------------------------------------------------

    def _generate_inputs(self) -> list[TestInput]:
        bodies = self.generator.generate_batch(self.batch_size)
        return [
            body if isinstance(body, TestInput) else TestInput(list(body))
            for body in bodies
        ]

    def _submit(self) -> tuple[list[TestInput], object]:
        inputs = self._generate_inputs()
        return inputs, self.executor.submit_batch(
            [test.words for test in inputs]
        )

    def run_batch(self) -> BatchOutcome:
        if not self.pipeline:
            if self.sink.enabled:
                return self._run_batch_timed()
            inputs = self._generate_inputs()
            # Simulate the whole batch first (possibly sharded over workers)
            # and only then fold results into campaign state, so a failed
            # batch leaves tests_run / coverage / mismatch accounting
            # untouched.
            results = self.executor.run_batch(
                [test.words for test in inputs]
            )
            return self._fold(inputs, results)
        # Pipelined: batch N is already in flight (or submitted now, on the
        # first call); prefetch batch N+1 so the executor's workers simulate
        # N while the parent generates N+1, then collect and fold N.
        inflight = self._inflight if self._inflight is not None \
            else self._submit()
        self._inflight = None  # a collect failure must not be re-collected
        next_inflight = self._submit()
        try:
            results = self.executor.collect(inflight[1])
        except BaseException:
            self._inflight = next_inflight  # keep the healthy prefetch
            raise
        self._inflight = next_inflight
        return self._fold(inflight[0], results)

    def _run_batch_timed(self) -> BatchOutcome:
        """The synchronous batch with per-phase timers (enabled sinks only).

        The profiling hooks of the observability layer: one timer event per
        phase — generation, differential execution, coverage fold — so
        hot-path regressions show up in the results store, not just in
        ``BENCH_*.json``.  Phase structure and fold semantics are identical
        to the untimed path; only ``perf_counter`` sampling and event
        emission are added.  Pipelined loops skip the timers (their phases
        overlap by design, so per-phase wall time would be misleading).
        """
        t0 = time.perf_counter()
        inputs = self._generate_inputs()
        t1 = time.perf_counter()
        self.sink.emit("batch_generated", n=len(inputs), seconds=t1 - t0)
        results = self.executor.run_batch([test.words for test in inputs])
        t2 = time.perf_counter()
        self.sink.emit("batch_executed", n=len(inputs), seconds=t2 - t1)
        outcome = self._fold(inputs, results)
        self.sink.emit(
            "batch_folded", n=len(inputs),
            seconds=time.perf_counter() - t2,
            mismatches=outcome.mismatch_count,
        )
        return outcome

    def drain(self) -> BatchOutcome | None:
        """Collect and fold the pipelined in-flight batch, if any.

        Returns its :class:`BatchOutcome` (``None`` when nothing is in
        flight).  After draining, the loop has no prefetch outstanding, so
        :meth:`state_dict` is valid again and a sync/pipelined pair that
        folded the same number of batches is directly comparable.
        """
        if self._inflight is None:
            return None
        inputs, handle = self._inflight
        self._inflight = None
        return self._fold(inputs, self.executor.collect(handle))

    def _fold(self, inputs: list[TestInput], results) -> BatchOutcome:
        unique_before = self.detector.unique_count if self.sink.enabled else 0
        mismatches = 0
        for res in results:
            mismatches += len(
                self.detector.observe(res.dut_trace, res.golden_trace)
            )
        if self.sink.enabled and self.detector.unique_count > unique_before:
            # Announce each *new* unique signature once (dict preserves
            # insertion order, so the new ones are exactly the tail).
            for found in list(self.detector.unique.values())[unique_before:]:
                self.sink.emit(
                    "mismatch_found", kind=found.kind,
                    signature=list(found.signature), pc=found.pc,
                    detail=found.detail,
                )
        # Whole-batch coverage scoring in one vectorised sweep (identical to
        # per-report observes — see repro.coverage.calculator).
        reports = [res.report for res in results]
        coverages: list[InputCoverage] = self.calculator.observe_batch(reports)
        self.clock.charge_tests(len(inputs))
        self.tests_run += len(inputs)
        scores = self.scorer.score_batch(coverages)
        observe = getattr(self.generator, "observe", None)
        if observe is not None:
            observe(inputs, coverages, scores, reports)
        return BatchOutcome(
            inputs=inputs,
            coverages=coverages,
            scores=scores,
            mismatch_count=mismatches,
            total_percent=self.calculator.total_percent,
        )

    @property
    def total_percent(self) -> float:
        return self.calculator.total_percent
