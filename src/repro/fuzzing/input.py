"""Test-input container with provenance tracking."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

_IDS = itertools.count()


@dataclass
class TestInput:
    """One fuzzing test case: a list of 32-bit instruction words.

    ``source`` records provenance ("llm", "seed", "mutation"); ``parent`` is
    the id of the input this one was mutated from, when applicable.  The
    fuzzers use provenance for corpus management and the analysis package
    uses it in reports.
    """

    words: list[int]
    source: str = "llm"
    parent: int | None = None
    input_id: int = field(default_factory=lambda: next(_IDS))

    def __len__(self) -> int:
        return len(self.words)

    def __iter__(self):
        return iter(self.words)
