"""Harness executors: how a batch of test bodies gets simulated.

The differential step of the fuzzing loop — run each body on the DUT and on
the golden ISS, collect (dut trace, golden trace, coverage report) — is
embarrassingly parallel: tests in a batch are independent and a
:class:`~repro.soc.harness.DutHarness` run is a pure function of the body
(``RocketCore.run`` resets all microarchitectural state up front).  This
module defines the execution strategy as an injectable component so the
same :class:`~repro.fuzzing.chatfuzz.FuzzLoop` can simulate serially (the
default) or shard a batch across a process pool
(:class:`~repro.fuzzing.pool.ShardedExecutor`).

Whatever the strategy, :meth:`HarnessExecutor.run_batch` returns results in
**submission order**, so the coverage calculator, mismatch detector, sim
clock and generator feedback all see byte-identical streams to the serial
path — pinned by the parity tests in ``tests/fuzzing/test_executor.py``.

Executors also expose the asynchronous split :meth:`HarnessExecutor.
submit_batch` / :meth:`HarnessExecutor.collect`, which is what lets a
pipelined :class:`~repro.fuzzing.chatfuzz.FuzzLoop` overlap generating
batch N+1 with the (pool-side) execution of batch N.  The base
implementation *defers*: ``submit_batch`` just records the bodies and
``collect`` runs them synchronously, so :class:`SerialExecutor` degenerates
to the plain synchronous path and the split is safe to use against any
executor.  Collected results are in submission order either way.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.golden.trace import CommitTrace
from repro.obs.events import NULL_SINK, EventSink
from repro.rtl.report import CoverageReport


@dataclass(frozen=True)
class DifferentialResult:
    """Everything one differential simulation of a test body produced.

    The coverage report's hits travel as a packed
    :class:`~repro.rtl.bitset.Bitset` (``total_arms / 8`` bytes on the
    wire), so shipping a chunk of results back from a worker process costs
    an order of magnitude less IPC than the per-arm pickled frozensets it
    replaced — see ``tests/fuzzing/test_report_pickle.py``.
    """

    dut_trace: CommitTrace
    golden_trace: CommitTrace
    report: CoverageReport


@dataclass
class DeferredBatch:
    """Handle for a batch whose execution is deferred to :meth:`collect`.

    The base executor's ``submit_batch`` returns one of these; executors
    with real asynchronous submission (the process pool) return their own
    handle type instead.  Handles are single-use tokens — collect each one
    exactly once, on the executor that issued it.
    """

    bodies: list[list[int]]
    collected: bool = False


def _as_factory(harness_or_factory):
    """Normalise to a zero-arg callable returning a harness.

    Accepts either an already-built harness object (wrapped in a trivial
    closure — fine for in-process executors, rejected by process-pool ones)
    or a zero-arg factory such as
    :class:`~repro.soc.harness.HarnessFactory`.
    """
    if harness_or_factory is None:
        raise TypeError("executor needs a harness or harness factory")
    if callable(harness_or_factory):
        return harness_or_factory
    return lambda: harness_or_factory


class HarnessExecutor:
    """Base class / protocol for harness execution strategies.

    An executor is bound to a harness factory (at construction or later via
    :meth:`bind`, which is what ``FuzzLoop`` uses when it receives both a
    factory and an unbound executor), runs batches with :meth:`run_batch`,
    and releases any held resources on :meth:`close`.  Executors are context
    managers; ``close`` is idempotent.
    """

    #: Telemetry sink (:mod:`repro.obs.events`): executors report pool
    #: health events (e.g. ``pool_rebuilt`` after worker death) to it.
    #: Assign a live sink directly; the default no-op sink keeps the
    #: unobserved hot path free of telemetry work.
    sink: EventSink = NULL_SINK

    def __init__(self, harness_or_factory=None) -> None:
        self._factory = (
            _as_factory(harness_or_factory)
            if harness_or_factory is not None else None
        )

    # -- binding ---------------------------------------------------------------

    @property
    def bound(self) -> bool:
        return self._factory is not None

    def bind(self, harness_or_factory) -> "HarnessExecutor":
        """Attach the harness source; a no-op when already bound."""
        if self._factory is None:
            self._factory = _as_factory(harness_or_factory)
        return self

    def _require_factory(self):
        if self._factory is None:
            raise RuntimeError(
                f"{type(self).__name__} is not bound to a harness factory; "
                "pass one at construction or via bind()"
            )
        return self._factory

    # -- interface -------------------------------------------------------------

    @property
    def total_arms(self) -> int:
        """Static size of the DUT's condition-coverage universe."""
        raise NotImplementedError

    def run_batch(self, bodies: list[list[int]]) -> list[DifferentialResult]:
        """Differentially simulate every body; results in submission order."""
        raise NotImplementedError

    # -- asynchronous split ----------------------------------------------------

    def submit_batch(self, bodies: list[list[int]]):
        """Begin executing a batch; returns an opaque handle for
        :meth:`collect`.

        The base implementation defers execution entirely — the handle
        carries the bodies and :meth:`collect` runs them via
        :meth:`run_batch` — which is the correct degenerate behaviour for
        in-process executors: there is no second resource to overlap with,
        so eager in-process execution would only reorder work for nothing.
        Pool-backed executors override this pair to dispatch immediately.
        """
        return DeferredBatch(list(bodies))

    def collect(self, handle) -> list[DifferentialResult]:
        """Wait for a :meth:`submit_batch` handle; results in submission
        order.  Each handle may be collected exactly once."""
        if not isinstance(handle, DeferredBatch):
            raise TypeError(
                f"{type(self).__name__}.collect got {type(handle).__name__}, "
                "expected a handle from this executor's submit_batch"
            )
        if handle.collected:
            raise RuntimeError("batch handle was already collected")
        handle.collected = True
        return self.run_batch(handle.bodies)

    def close(self) -> None:
        """Release executor resources (idempotent)."""

    def __enter__(self) -> "HarnessExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SerialExecutor(HarnessExecutor):
    """Current behaviour: one harness, tests simulated in order, in-process."""

    def __init__(self, harness_or_factory=None) -> None:
        super().__init__(harness_or_factory)
        self._harness = None

    @property
    def harness(self):
        """The lazily-built process-local harness."""
        if self._harness is None:
            self._harness = self._require_factory()()
        return self._harness

    @property
    def total_arms(self) -> int:
        return self.harness.total_arms

    def run_batch(self, bodies: list[list[int]]) -> list[DifferentialResult]:
        harness = self.harness
        # Whole-batch routing lets the batched engines (DutHarness with
        # golden_lanes > 0 and/or dut_lanes > 0) run every golden trace —
        # and every DUT trace+report — in one vectorised call; harnesses
        # without the batch method (test stubs) run per body.
        batched = getattr(harness, "run_differential_batch", None)
        if batched is not None:
            return [DifferentialResult(*r) for r in batched(bodies)]
        return [DifferentialResult(*harness.run_differential(body))
                for body in bodies]
