"""Observability layer: structured events, durable results store, dashboard.

``repro.obs.events`` defines the telemetry vocabulary and sink protocol,
``repro.obs.store`` the append-only multi-writer results database, and
``repro.obs.dashboard`` the stdlib live dashboard over a store.  The
runtime only ever imports ``events`` (sinks are cheap and dependency-free);
store and dashboard are read/write endpoints layered on top.
"""

from repro.obs.events import (
    EVENT_KINDS,
    NULL_SINK,
    SCHEMA_VERSION,
    Event,
    EventSink,
    ListSink,
    NullSink,
    TeeSink,
    WorkerIdentity,
)
from repro.obs.store import (
    ResultsStore,
    StoreAggregates,
    StoreSink,
    downsample,
    linearize_events,
)

__all__ = [
    "EVENT_KINDS",
    "NULL_SINK",
    "SCHEMA_VERSION",
    "Event",
    "EventSink",
    "ListSink",
    "NullSink",
    "ResultsStore",
    "StoreAggregates",
    "StoreSink",
    "TeeSink",
    "WorkerIdentity",
    "downsample",
    "linearize_events",
]
