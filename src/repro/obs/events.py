"""Structured telemetry events: the fleet's observable vocabulary.

Everything the runtime can *tell* an observer — a slice was dispatched, a
pool was rebuilt, a batch spent so long in generation vs. execution — is an
:class:`Event`: a versioned ``kind`` plus a flat JSON-able payload, stamped
with the emitting writer's identity and a per-writer sequence number.  The
emitting code never talks to files or sockets; it talks to an
:class:`EventSink`, and the sink decides what telemetry costs:

- :data:`NULL_SINK` (the default everywhere) is disabled: instrumented code
  guards its payload construction — and even its ``perf_counter`` calls —
  behind ``sink.enabled``, so an unobserved run does no telemetry work at
  all and stays bit-identical to the pre-instrumentation runtime.
- :class:`ListSink` buffers events in memory (tests, and the worker-side
  relay: a fleet worker records its slice's events into a list that ships
  home with the slice result).
- :class:`~repro.obs.store.StoreSink` appends them to a per-writer segment
  file in a durable results store.
- :class:`TeeSink` fans one emission out to several sinks.

Telemetry is *semantics-free by contract*: no sink may feed information
back into generation, scheduling or execution, and nothing in the data
path reads sink state — pinned by the instrumented-vs-uninstrumented
equality tests in ``tests/obs/``.

The schema is versioned (:data:`SCHEMA_VERSION`, carried on every
serialised event) so a store written by one release can be read — or
explicitly refused — by another.  Every kind the runtime emits is declared
in :data:`EVENT_KINDS`; the golden round-trip test covers each one.
"""

from __future__ import annotations

import json
import os
import platform
import socket
import time
from dataclasses import dataclass, field

#: Bump when an event's payload changes shape incompatibly.
SCHEMA_VERSION = 1

#: Every event kind the runtime emits, with the emitting layer and payload
#: documented where the emission happens.  Grouped by layer:
EVENT_KINDS = frozenset({
    # -- store bookkeeping (repro.obs.store) --
    "worker_started",       # first event of every segment: writer identity
    # -- fleet dispatch (repro.fuzzing.fleet.FleetRunner) --
    "fleet_started",        # mode, workers, arms, resumed test count
    "fleet_finished",       # wall/busy seconds, slices, tests, union %
    "slice_dispatched",     # arm, ordinal, attempt, n_tests
    "slice_completed",      # arm, cumulative tests, busy seconds, coverage
    "slice_retried",        # arm, ordinal, next attempt, error
    "slice_timeout",        # arm, ordinal, configured limit
    "arm_quarantined",      # arm, terminal error, retries, tests_run
    "pool_rebuilt",         # layer ("fleet" | "executor"), reason
    "checkpoint_written",   # rounds, dirty arm indices
    # -- budget scheduling (repro.fuzzing.scheduler) --
    "arm_reward",           # arm, reward, per-arm play count / mean so far
    # -- fuzz loop phases (repro.fuzzing.chatfuzz.FuzzLoop) --
    "batch_generated",      # n bodies, generation seconds
    "batch_executed",       # n bodies, execution seconds
    "batch_folded",         # n bodies, coverage-fold seconds, mismatches
    # -- campaign trajectory (repro.fuzzing.campaign.Campaign) --
    "coverage_point",       # campaign, tests, sim_hours, coverage %
    "mismatch_found",       # campaign/arm, kind, signature, pc, detail
})


@dataclass(frozen=True)
class Event:
    """One telemetry event (see module docstring).

    ``seq`` is monotonic *per writer* — together with ``writer`` it orders
    a segment even when wall clocks misbehave; ``t`` (epoch seconds) is
    what cross-writer linearisation sorts on
    (:func:`repro.obs.store.linearize_events`).  ``data`` must stay
    JSON-able: scalars, strings, lists — packed bitmaps travel through
    :meth:`EventSink.save_coverage` instead, never through event payloads.
    """

    kind: str
    data: dict = field(default_factory=dict)
    t: float = 0.0
    seq: int = 0
    writer: str = ""
    version: int = SCHEMA_VERSION

    def to_json(self) -> str:
        """One-line JSON form (the segment-file record format)."""
        return json.dumps(
            {"v": self.version, "kind": self.kind, "t": self.t,
             "seq": self.seq, "writer": self.writer, "data": self.data},
            separators=(",", ":"), sort_keys=True,
        )

    @classmethod
    def from_json(cls, line: str) -> "Event":
        """Parse :meth:`to_json` output (raises on unknown major version)."""
        record = json.loads(line)
        version = int(record["v"])
        if version > SCHEMA_VERSION:
            raise ValueError(
                f"event schema v{version} is newer than this reader "
                f"(v{SCHEMA_VERSION}); upgrade to read this store"
            )
        return cls(kind=record["kind"], data=record["data"],
                   t=float(record["t"]), seq=int(record["seq"]),
                   writer=record["writer"], version=version)


@dataclass(frozen=True)
class WorkerIdentity:
    """Who wrote a telemetry segment: host, pid, versions, start time.

    The hypofuzz-style multi-writer key: every runner (a fleet parent
    process today, a remote worker daemon tomorrow) gets its own identity,
    its own append-only segment file named by :attr:`writer_id`, and the
    store merges segments by identity — no cross-process file locking
    anywhere.  ``nonce`` disambiguates two writers that share host+pid
    (a resumed run after pid reuse, or two stores in one process).
    """

    host: str
    pid: int
    python: str
    started: float
    nonce: str

    _COUNTER = iter(range(1, 1 << 62))

    @classmethod
    def local(cls) -> "WorkerIdentity":
        return cls(
            host=socket.gethostname(),
            pid=os.getpid(),
            python=platform.python_version(),
            started=time.time(),
            nonce=f"{next(cls._COUNTER):x}-{time.time_ns() & 0xFFFFFF:06x}",
        )

    @property
    def writer_id(self) -> str:
        """Filesystem-safe unique segment name for this writer."""
        host = "".join(c if c.isalnum() or c in "-." else "_"
                       for c in self.host)
        return f"{host}-{self.pid}-{self.nonce}"

    def as_dict(self) -> dict:
        return {"host": self.host, "pid": self.pid, "python": self.python,
                "started": self.started, "nonce": self.nonce}

    @classmethod
    def from_dict(cls, record: dict) -> "WorkerIdentity":
        return cls(host=record["host"], pid=int(record["pid"]),
                   python=record["python"], started=float(record["started"]),
                   nonce=record["nonce"])


class EventSink:
    """Where instrumented code sends telemetry (see module docstring).

    The emitting contract: hot paths check :attr:`enabled` before doing
    *any* telemetry work (timers, payload dicts), call
    :meth:`emit` with the kind plus flat JSON-able keyword fields, and
    hand packed coverage bitmaps to :meth:`save_coverage` (bitmaps have no
    reasonable JSON form and only their latest value matters).  Sinks must
    never raise into the data path and never feed anything back.
    """

    #: False only on :class:`NullSink` — the "is telemetry on?" fast guard.
    enabled: bool = True

    def emit(self, kind: str, /, **data) -> None:
        """Record one event (kind + flat JSON-able payload)."""
        raise NotImplementedError

    def save_coverage(self, key: str, bitmap) -> None:
        """Record the latest packed coverage bitmap for ``key``.

        No-op by default: in-memory sinks aggregate events, and only
        durable sinks (the store) need the bitmaps for union arithmetic.
        """

    def close(self) -> None:
        """Flush and release sink resources (idempotent)."""

    def __enter__(self) -> "EventSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class NullSink(EventSink):
    """The default sink: telemetry off, emission a no-op.

    ``enabled`` is False so instrumented code skips payload construction
    entirely; ``emit`` still exists (and stays cheap) for call sites that
    don't bother guarding.
    """

    enabled = False

    def emit(self, kind: str, /, **data) -> None:
        pass


#: Shared disabled sink — the default value of every ``sink`` parameter.
NULL_SINK = NullSink()


class ListSink(EventSink):
    """In-memory sink: events accumulate on :attr:`events` in emit order.

    Used by tests and by the fleet's worker-side relay (a slice's events
    are recorded in the worker and re-emitted by the parent into its own
    sink, keeping one writer per store segment).
    """

    def __init__(self, writer: str = "memory") -> None:
        self.writer = writer
        self.events: list[Event] = []

    def emit(self, kind: str, /, **data) -> None:
        self.events.append(Event(kind=kind, data=data, t=time.time(),
                                 seq=len(self.events), writer=self.writer))

    def __len__(self) -> int:
        return len(self.events)


class TeeSink(EventSink):
    """Fan one emission out to several sinks (e.g. store + live list).

    Disabled sinks are dropped at construction; ``enabled`` reflects
    whether anything is left, so a tee of null sinks costs what a null
    sink costs.
    """

    def __init__(self, *sinks: EventSink) -> None:
        self.sinks = tuple(s for s in sinks if s.enabled)
        self.enabled = bool(self.sinks)

    def emit(self, kind: str, /, **data) -> None:
        for sink in self.sinks:
            sink.emit(kind, **data)

    def save_coverage(self, key: str, bitmap) -> None:
        for sink in self.sinks:
            sink.save_coverage(key, bitmap)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()
