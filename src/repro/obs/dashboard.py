"""Live fleet dashboard: stdlib HTTP server over a results store.

hypofuzz's dashboard pattern without the dependencies: the fleet writes
append-only segments into a :class:`~repro.obs.store.ResultsStore`, and
this server *polls the store* — it holds no live references into the
runtime, so it can watch a fleet in another process, a finished store, or
a store being written by several machines onto a shared filesystem.

Endpoints (all GET):

- ``/``             — HTML page that polls the JSON API and renders arm
  curves (inline SVG), the fleet summary, health and the E-BUGS table.
- ``/api/summary``  — :meth:`StoreAggregates.as_dict` plus classified
  ``bugs`` rows: per-arm downsampled coverage curves, fleet union %,
  worker utilisation, retry/quarantine health, per-phase wall time.
- ``/api/events``   — the most recent linearized events
  (``?tail=N``, default 100) for tail -f-style debugging.

Aggregates are recomputed at most every ``refresh_seconds`` (default 1 s)
no matter how many clients poll, keeping the read path cheap while a
fleet writes.  ``python -m repro.obs.dashboard --store DIR`` serves
standalone; ``--report`` prints the text report instead (headless boxes).
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from urllib.parse import parse_qs, urlparse

from repro.obs.store import ResultsStore

_PAGE = """<!doctype html>
<html><head><meta charset="utf-8"><title>fleet dashboard</title>
<style>
 body { font-family: ui-monospace, monospace; margin: 1.5em; background: #111;
        color: #ddd; }
 h1 { font-size: 1.2em; } h2 { font-size: 1em; margin-top: 1.4em; }
 table { border-collapse: collapse; margin-top: .4em; }
 th, td { border: 1px solid #444; padding: .25em .6em; text-align: left; }
 th { background: #222; }
 .quarantined { color: #f66; }
 svg { background: #181818; border: 1px solid #444; margin-top: .4em; }
 #meta { color: #9a9; }
</style></head><body>
<h1>fleet dashboard</h1>
<div id="meta">loading&hellip;</div>
<svg id="curves" width="640" height="240" viewBox="0 0 640 240"></svg>
<div id="legend"></div>
<h2>arms</h2><table id="arms"></table>
<h2>health</h2><table id="health"></table>
<h2>phases</h2><table id="phases"></table>
<h2>E-BUGS</h2><table id="bugs"></table>
<script>
const COLORS = ["#6cf","#fc6","#6f9","#f6c","#9cf","#cf6","#c9f","#fc9"];
function fill(id, headers, rows) {
  const table = document.getElementById(id);
  table.innerHTML = "<tr>" + headers.map(h => `<th>${h}</th>`).join("") +
    "</tr>" + rows.map(r => "<tr>" +
      r.map(c => `<td>${c}</td>`).join("") + "</tr>").join("");
}
function draw(arms) {
  const svg = document.getElementById("curves");
  const W = 640, H = 240, PAD = 6;
  let maxT = 1, maxC = 1;
  for (const a of arms) for (const [t, , c] of a.curve) {
    maxT = Math.max(maxT, t); maxC = Math.max(maxC, c);
  }
  svg.innerHTML = arms.map((a, i) => {
    const pts = a.curve.map(([t, , c]) =>
      `${PAD + (W - 2 * PAD) * t / maxT},` +
      `${H - PAD - (H - 2 * PAD) * c / maxC}`).join(" ");
    return `<polyline fill="none" stroke="${COLORS[i % COLORS.length]}"` +
           ` stroke-width="1.5" points="${pts}"/>`;
  }).join("");
  document.getElementById("legend").innerHTML = arms.map((a, i) =>
    `<span style="color:${COLORS[i % COLORS.length]}">&#9644; ${a.name}` +
    ` ${a.coverage_percent.toFixed(2)}%</span>`).join(" &nbsp; ");
}
async function refresh() {
  try {
    const agg = await (await fetch("api/summary")).json();
    document.getElementById("meta").textContent =
      `union ${agg.union_percent.toFixed(2)}% of ${agg.universe}` +
      ` | tests ${agg.total_tests} | mode ${agg.mode || "-"}` +
      ` | slots ${agg.worker_slots}` +
      ` | utilisation ${(100 * agg.utilisation).toFixed(0)}%` +
      ` | wall ${agg.wall_seconds.toFixed(1)}s` +
      (agg.live ? " | LIVE" : "");
    draw(agg.arms);
    fill("arms", ["arm", "tests", "cov %", "busy s", "slices", "state"],
      agg.arms.map(a => [a.name, a.tests, a.coverage_percent.toFixed(2),
        a.busy_seconds.toFixed(1), a.slices,
        a.quarantined ? '<span class="quarantined">quarantined</span>' : "ok"]));
    fill("health", ["retries", "timeouts", "pool rebuilds", "quarantined"],
      [[agg.health.retries, agg.health.timeouts, agg.health.pool_rebuilds,
        agg.health.quarantined.length]]);
    fill("phases", ["generation s", "execution s", "fold s"],
      [[agg.phases.generation_seconds.toFixed(2),
        agg.phases.execution_seconds.toFixed(2),
        agg.phases.fold_seconds.toFixed(2)]]);
    fill("bugs", ["bug", "kind", "campaigns", "detail"],
      agg.bugs.map(b => [b.bug, b.kind, b.campaigns.join(", "), b.detail]));
  } catch (e) { document.getElementById("meta").textContent = `error: ${e}`; }
}
refresh(); setInterval(refresh, 2000);
</script></body></html>
"""


def classify_bug_rows(aggregates_dict: dict) -> list[dict]:
    """Attribute a store's unique mismatch signatures to known bugs.

    The JSON form of the E-BUGS table: one row per unique signature with
    the matched bug id (``UNEXPLAINED`` if none) and the arms that saw it.
    """
    from repro.analysis.bugs import classify_mismatch
    from repro.fuzzing.mismatch import Mismatch

    def freeze(value):
        if isinstance(value, list):
            return tuple(freeze(item) for item in value)
        return value

    rows = []
    for entry in aggregates_dict.get("mismatches", []):
        match = classify_mismatch(Mismatch(
            kind=entry["kind"], index=0, pc=entry["pc"],
            detail=entry["detail"], signature=freeze(entry["signature"]),
        ))
        rows.append({
            "bug": match.bug_id if match else "UNEXPLAINED",
            "kind": entry["kind"],
            "campaigns": entry["campaigns"],
            "detail": entry["detail"],
        })
    rows.sort(key=lambda row: (row["bug"], row["kind"]))
    return rows


class DashboardServer:
    """Serve one results store (see module docstring).

    ``port=0`` binds an ephemeral port (read :attr:`port` after
    construction — the smoke test and example CLIs do).  :meth:`start`
    serves from a daemon thread so a fleet can run in the foreground;
    use as a context manager for deterministic shutdown.
    """

    def __init__(self, store: ResultsStore | str | Path,
                 host: str = "127.0.0.1", port: int = 8080,
                 refresh_seconds: float = 1.0) -> None:
        self.store = (store if isinstance(store, ResultsStore)
                      else ResultsStore(store))
        self.refresh_seconds = refresh_seconds
        self._lock = threading.Lock()
        self._cached: dict | None = None
        self._cached_at = 0.0
        dashboard = self

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, *args) -> None:
                pass  # keep the fleet's stdout clean

            def do_GET(self) -> None:
                url = urlparse(self.path)
                if url.path in ("/", "/index.html"):
                    self._send(200, "text/html; charset=utf-8",
                               _PAGE.encode())
                elif url.path == "/api/summary":
                    payload = dashboard.summary()
                    self._send(200, "application/json",
                               json.dumps(payload).encode())
                elif url.path == "/api/events":
                    query = parse_qs(url.query)
                    tail = int(query.get("tail", ["100"])[0])
                    events = dashboard.store.read_events()
                    payload = [json.loads(e.to_json())
                               for e in events[-max(0, tail):]]
                    self._send(200, "application/json",
                               json.dumps(payload).encode())
                else:
                    self._send(404, "text/plain", b"not found\n")

            def _send(self, status: int, content_type: str,
                      body: bytes) -> None:
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.send_header("Cache-Control", "no-store")
                self.end_headers()
                self.wfile.write(body)

        self._server = ThreadingHTTPServer((host, port), Handler)
        self._server.daemon_threads = True
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        host = self._server.server_address[0]
        return f"http://{host}:{self.port}/"

    def summary(self) -> dict:
        """The ``/api/summary`` payload, recomputed at most once per
        ``refresh_seconds`` regardless of client count."""
        with self._lock:
            now = time.monotonic()
            if (self._cached is None
                    or now - self._cached_at >= self.refresh_seconds):
                payload = self.store.aggregate().as_dict()
                payload["bugs"] = classify_bug_rows(payload)
                self._cached = payload
                self._cached_at = now
            return self._cached

    def start(self) -> "DashboardServer":
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-dashboard", daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "DashboardServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="Serve (or print) a fleet results store.")
    parser.add_argument("--store", required=True, help="store directory")
    parser.add_argument("--port", type=int, default=8080)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--report", action="store_true",
                        help="print the text report and exit (no server)")
    args = parser.parse_args(argv)

    store = ResultsStore(args.store, create=False)
    if args.report:
        from repro.analysis.report import store_report

        print(store_report(store.aggregate()))
        return 0
    with DashboardServer(store, host=args.host, port=args.port) as server:
        print(f"dashboard: {server.url} (ctrl-c to stop)")
        try:
            while True:
                time.sleep(3600)
        except KeyboardInterrupt:
            return 0


if __name__ == "__main__":
    raise SystemExit(main())
