"""Durable, append-only results store: the fleet's persistent database.

Checkpoints (`repro.fuzzing.fleet.FleetCheckpoint`) answer "where do I
resume?" — mutable snapshots that are overwritten in place and die with
their directory.  The store answers "what happened?": an append-only event
log plus latest-value coverage bitmaps that accumulate across runs, kills,
resumes and (eventually) remote writers, and that a dashboard or report
can read *while a fleet writes*.  Layout under one directory::

    store.json               # {"version": ..., "created": ...}
    events/<writer>.jsonl    # one append-only segment per writer
    coverage/<key>.cov       # latest packed bitmap per campaign arm

Multi-writer safety follows hypofuzz's ``HypofuzzDatabase`` playbook: no
shared file is ever appended by two processes.  Every writer — keyed by a
:class:`~repro.obs.events.WorkerIdentity` — owns one segment file and
announces itself with a ``worker_started`` event; readers merge segments
with :func:`linearize_events`, a deterministic sort on ``(t, writer,
seq)`` (hypofuzz's ``linearize_reports`` for asynchronous per-worker
report streams).  Coverage bitmaps are latest-value-wins and written with
atomic replace, which is safe for monotone data: coverage only grows.

Crash tolerance is structural rather than transactional: segment appends
mean a kill can only tear the *final line* of a segment, and
:meth:`ResultsStore.read_segments` silently drops a torn tail — the
intact prefix is always a valid store.  A resumed fleet opens a *new*
segment (fresh writer identity) and, because resume skips checkpointed
slices, re-emits only work whose completion the kill discarded;
:meth:`ResultsStore.aggregate` additionally dedupes per-slice and
per-point events by their cumulative test count, so the one slice that
may legitimately be re-run after a kill (completed, event written,
checkpoint pre-empted) never double-counts.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.obs.events import (
    SCHEMA_VERSION,
    Event,
    EventSink,
    WorkerIdentity,
)
from repro.rtl.bitset import Bitset

#: Bitmap file header: 8 little-endian bytes of universe size (nbits).
_COV_HEADER_BYTES = 8

#: Default per-arm curve-point cap served to dashboards/reports.
CURVE_POINT_CAP = 256


def linearize_events(events: Iterable[Event]) -> list[Event]:
    """Merge per-writer event streams into one deterministic timeline.

    Sorted by ``(t, writer, seq)``: wall-clock first (the fleet timeline),
    writer id then per-writer sequence as tie-breaks — so the merge of any
    set of segments is a pure function of their contents, independent of
    read order, dict iteration or hash seed (pinned under
    ``PYTHONHASHSEED=0`` in CI's observability job).
    """
    return sorted(events, key=lambda e: (e.t, e.writer, e.seq))


def downsample(points: list, cap: int = CURVE_POINT_CAP) -> list:
    """Thin a curve to at most ``cap`` points, always keeping the last.

    Deterministic stride sampling — the dashboard's curves stay bounded no
    matter how long a fleet runs, and the final point (the headline
    number) is always exact.
    """
    if cap <= 0 or len(points) <= cap:
        return list(points)
    stride = -(-len(points) // cap)
    thinned = points[::stride]
    if thinned[-1] is not points[-1]:
        thinned.append(points[-1])
    return thinned


class StoreSink(EventSink):
    """An :class:`~repro.obs.events.EventSink` appending to one store segment.

    One sink = one writer = one segment file; construct a fresh sink per
    process and per run (the default :meth:`WorkerIdentity.local` identity
    embeds pid and a nonce, so resumes and concurrent writers can never
    collide).  Every event is flushed on emit — the durability contract is
    "a reader sees every event the writer survived", and at fuzzing batch
    rates (tens of events/sec) the flush cost is noise (measured by
    ``benchmarks/test_perf_obs.py``).
    """

    def __init__(self, store: "ResultsStore | str | Path",
                 identity: WorkerIdentity | None = None) -> None:
        self.store = (store if isinstance(store, ResultsStore)
                      else ResultsStore(store))
        self.identity = identity if identity is not None \
            else WorkerIdentity.local()
        self._seq = 0
        self.path = self.store.events_dir / f"{self.identity.writer_id}.jsonl"
        self.store.events_dir.mkdir(parents=True, exist_ok=True)
        self._fh = self.path.open("a", encoding="utf-8")
        self.emit("worker_started", identity=self.identity.as_dict())

    def emit(self, kind: str, /, **data) -> None:
        if self._fh is None:
            return  # closed sinks drop late emissions rather than raise
        event = Event(kind=kind, data=data, t=time.time(), seq=self._seq,
                      writer=self.identity.writer_id)
        self._seq += 1
        self._fh.write(event.to_json() + "\n")
        self._fh.flush()

    def save_coverage(self, key: str, bitmap: Bitset) -> None:
        self.store.save_coverage(key, bitmap)

    def close(self) -> None:
        fh, self._fh = self._fh, None
        if fh is not None:
            fh.close()


class ResultsStore:
    """One campaign-fleet database directory (see module docstring).

    Writers get segments via :meth:`sink`; readers use
    :meth:`read_events` / :meth:`load_coverage` for the raw data and
    :meth:`aggregate` for the precomputed view the dashboard and text
    report serve.  A store may be read at any moment, including while a
    fleet is writing into it — every read path tolerates concurrent
    appends and in-progress atomic replaces.
    """

    def __init__(self, directory: str | Path, create: bool = True) -> None:
        self.directory = Path(directory)
        self.meta_path = self.directory / "store.json"
        if create:
            self.directory.mkdir(parents=True, exist_ok=True)
            if not self.meta_path.exists():
                self._write_atomic(self.meta_path, json.dumps(
                    {"version": SCHEMA_VERSION, "created": time.time()},
                    indent=2,
                ).encode() + b"\n")
        elif not self.meta_path.exists():
            raise FileNotFoundError(f"no results store at {self.directory}")

    @property
    def events_dir(self) -> Path:
        return self.directory / "events"

    @property
    def coverage_dir(self) -> Path:
        return self.directory / "coverage"

    def sink(self, identity: WorkerIdentity | None = None) -> StoreSink:
        """Open a new writer segment (one per process per run)."""
        return StoreSink(self, identity)

    # -- writing ---------------------------------------------------------------

    @staticmethod
    def _write_atomic(path: Path, data: bytes) -> None:
        temp = path.with_name(path.name + ".tmp")
        temp.write_bytes(data)
        os.replace(temp, path)

    @staticmethod
    def _coverage_key(key: str) -> str:
        return "".join(c if c.isalnum() or c in "-._" else "_" for c in key)

    def save_coverage(self, key: str, bitmap: Bitset) -> None:
        """Record ``key``'s latest packed bitmap (atomic replace; coverage
        is monotone, so latest-value-wins loses nothing)."""
        self.coverage_dir.mkdir(parents=True, exist_ok=True)
        payload = (bitmap.nbits.to_bytes(_COV_HEADER_BYTES, "little")
                   + bitmap.to_bytes())
        self._write_atomic(self.coverage_dir / f"{self._coverage_key(key)}.cov",
                           payload)

    # -- reading ---------------------------------------------------------------

    def read_segments(self) -> dict[str, list[Event]]:
        """Every segment's intact event prefix, keyed by writer id.

        A kill mid-append can only tear a segment's final line; the first
        undecodable line therefore ends that segment's readable prefix
        (everything before it was written by completed appends).
        """
        segments: dict[str, list[Event]] = {}
        if not self.events_dir.is_dir():
            return segments
        for path in sorted(self.events_dir.glob("*.jsonl")):
            events: list[Event] = []
            for line in path.read_text(encoding="utf-8",
                                       errors="replace").splitlines():
                if not line.strip():
                    continue
                try:
                    events.append(Event.from_json(line))
                except (json.JSONDecodeError, KeyError, TypeError):
                    break  # torn tail: keep the intact prefix
            segments[path.stem] = events
        return segments

    def read_events(self) -> list[Event]:
        """All intact events across all writers, linearized."""
        return linearize_events(
            event for events in self.read_segments().values()
            for event in events
        )

    def load_coverage(self) -> dict[str, Bitset]:
        """The latest packed bitmap per key (see :meth:`save_coverage`)."""
        bitmaps: dict[str, Bitset] = {}
        if not self.coverage_dir.is_dir():
            return bitmaps
        for path in sorted(self.coverage_dir.glob("*.cov")):
            data = path.read_bytes()
            if len(data) < _COV_HEADER_BYTES:
                continue  # torn write of a non-atomic copy; skip
            nbits = int.from_bytes(data[:_COV_HEADER_BYTES], "little")
            bitmaps[path.stem] = Bitset.from_bytes(
                data[_COV_HEADER_BYTES:], nbits
            )
        return bitmaps

    def aggregate(self) -> "StoreAggregates":
        """The precomputed dashboard/report view of the whole store."""
        return StoreAggregates.build(self.read_events(),
                                     self.load_coverage())


@dataclass
class StoreAggregates:
    """Precomputed aggregates over one store: what dashboards serve.

    All fields are plain JSON-able values (:meth:`as_dict` is the API
    payload).  Built in one linear pass over the linearized event log
    plus the latest coverage bitmaps — no simulation state is ever
    reconstructed, which is what keeps the read path cheap while fleets
    write.
    """

    #: Per-arm rows: name, tests, coverage %, downsampled curve, busy
    #: seconds, quarantine flag and per-phase wall-time sums.
    arms: list[dict] = field(default_factory=list)
    #: Fleet-union coverage percent (union of the latest per-arm bitmaps).
    union_percent: float = 0.0
    universe: int = 0
    total_tests: int = 0
    busy_seconds: float = 0.0
    wall_seconds: float = 0.0
    worker_slots: int = 1
    utilisation: float = 0.0
    mode: str = ""
    #: fleet_started count — 1 for a single run, more after resumes.
    runs: int = 0
    live: bool = False
    health: dict = field(default_factory=dict)
    #: Per-phase wall-time sums across all arms (generation / execution /
    #: fold), from the loop's timer events.
    phases: dict = field(default_factory=dict)
    #: Deduped mismatch signatures with per-arm attribution.
    mismatches: list[dict] = field(default_factory=list)
    events: int = 0
    last_event_t: float = 0.0

    def as_dict(self) -> dict:
        from dataclasses import asdict

        return asdict(self)

    @classmethod
    def build(cls, events: list[Event],
              bitmaps: dict[str, Bitset]) -> "StoreAggregates":
        arms: dict[str, dict] = {}
        seen_slices: set[tuple] = set()
        seen_points: set[tuple] = set()
        seen_signatures: dict[tuple, dict] = {}
        health = {"retries": 0, "timeouts": 0, "pool_rebuilds": 0,
                  "quarantined": []}
        phases = {"generation_seconds": 0.0, "execution_seconds": 0.0,
                  "fold_seconds": 0.0}
        agg = cls()

        def arm_row(name: str) -> dict:
            row = arms.get(name)
            if row is None:
                row = arms[name] = {
                    "name": name, "arm": None, "tests": 0,
                    "coverage_percent": 0.0, "sim_hours": 0.0,
                    "busy_seconds": 0.0, "slices": 0, "quarantined": False,
                    "curve": [],
                    "phases": dict.fromkeys(phases, 0.0),
                }
            return row

        open_run_started: float | None = None
        for event in events:
            agg.events += 1
            agg.last_event_t = max(agg.last_event_t, event.t)
            data = event.data
            kind = event.kind
            name = data.get("name") or data.get("campaign")
            if kind == "fleet_started":
                agg.runs += 1
                agg.mode = data.get("mode", agg.mode)
                agg.worker_slots = int(data.get("worker_slots",
                                                agg.worker_slots))
                open_run_started = event.t
            elif kind == "fleet_finished":
                agg.wall_seconds += float(data.get("wall_seconds", 0.0))
                open_run_started = None
            elif kind == "slice_completed":
                row = arm_row(name)
                row["arm"] = data.get("arm", row["arm"])
                key = (name, data.get("tests", 0))
                if key in seen_slices:
                    continue  # kill/resume re-ran an unsnapshotted slice
                seen_slices.add(key)
                row["slices"] += 1
                row["tests"] = max(row["tests"], int(data.get("tests", 0)))
                row["coverage_percent"] = max(
                    row["coverage_percent"],
                    float(data.get("coverage_percent", 0.0)),
                )
                row["busy_seconds"] += float(data.get("busy_seconds", 0.0))
            elif kind == "coverage_point":
                row = arm_row(name)
                key = (name, data.get("tests", 0))
                if key in seen_points:
                    continue
                seen_points.add(key)
                row["curve"].append([
                    int(data.get("tests", 0)),
                    float(data.get("sim_hours", 0.0)),
                    float(data.get("coverage_percent", 0.0)),
                ])
                row["tests"] = max(row["tests"], int(data.get("tests", 0)))
                row["sim_hours"] = max(row["sim_hours"],
                                       float(data.get("sim_hours", 0.0)))
                row["coverage_percent"] = max(
                    row["coverage_percent"],
                    float(data.get("coverage_percent", 0.0)),
                )
            elif kind == "slice_retried":
                health["retries"] += 1
            elif kind == "slice_timeout":
                health["timeouts"] += 1
            elif kind == "pool_rebuilt":
                health["pool_rebuilds"] += 1
            elif kind == "arm_quarantined":
                arm_row(name)["quarantined"] = True
                health["quarantined"].append({
                    "name": name, "error": data.get("error", ""),
                    "retries": int(data.get("retries", 0)),
                    "tests_run": int(data.get("tests_run", 0)),
                })
            elif kind in ("batch_generated", "batch_executed",
                          "batch_folded"):
                phase = {"batch_generated": "generation_seconds",
                         "batch_executed": "execution_seconds",
                         "batch_folded": "fold_seconds"}[kind]
                seconds = float(data.get("seconds", 0.0))
                phases[phase] += seconds
                if name is not None:
                    arm_row(name)["phases"][phase] += seconds
            elif kind == "mismatch_found":
                signature = tuple(_freeze(data.get("signature", [])))
                entry = seen_signatures.get(signature)
                if entry is None:
                    entry = seen_signatures[signature] = {
                        "kind": data.get("kind", ""),
                        "signature": list(signature),
                        "pc": data.get("pc", 0),
                        "detail": data.get("detail", ""),
                        "campaigns": [],
                    }
                if name is not None and name not in entry["campaigns"]:
                    entry["campaigns"].append(name)

        if open_run_started is not None:
            agg.live = True
            agg.wall_seconds += max(0.0, agg.last_event_t - open_run_started)

        union = 0
        for bitmap in bitmaps.values():
            union |= bitmap.to_int()
            agg.universe = max(agg.universe, bitmap.nbits)
        if agg.universe:
            agg.union_percent = 100.0 * union.bit_count() / agg.universe

        for name in sorted(arms):
            row = arms[name]
            row["curve"].sort(key=lambda point: point[0])
            row["curve"] = downsample(row["curve"])
            agg.total_tests += row["tests"]
            agg.busy_seconds += row["busy_seconds"]
            agg.arms.append(row)
        if agg.wall_seconds > 0:
            agg.utilisation = agg.busy_seconds / (
                agg.wall_seconds * max(1, agg.worker_slots)
            )
        agg.health = health
        agg.phases = phases
        agg.mismatches = list(seen_signatures.values())
        return agg


def _freeze(value):
    """JSON round-trips tuples as lists; re-freeze nested lists so rebuilt
    mismatch signatures hash and compare like the originals."""
    if isinstance(value, list):
        return tuple(_freeze(item) for item in value)
    return value
