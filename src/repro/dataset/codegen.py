"""Synthetic compiler back-end: emits function-shaped RV64 machine code.

The generator imitates what a compiler emits for C functions — the training
distribution the paper harvests from the compiled Linux kernel:

- standard prologue/epilogue with callee-saved spills and ``ret``;
- pointer registers (sp/s0/gp/tp) used for addressing with small aligned
  offsets; scalar registers carrying data-dependent value chains;
- bounded counted loops, forward conditional skips, intra-function
  call/return pairs;
- M-extension arithmetic, LR/SC and AMO sequences, occasional CSR reads;
- rare self-modifying "code patching" sequences (the kernel's alternatives
  mechanism), half of which correctly issue ``FENCE.I`` — the other half are
  exactly the Bug1 trigger.

Every operand choice favours recently-written registers, producing the
interdependent data/control-flow *entangled* sequences the paper says
random-instruction fuzzers lack.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.isa.encoder import encode
from repro.isa.spec import CSR_CYCLE, CSR_INSTRET, CSR_MHARTID

#: Pointer registers: always hold valid data addresses (set by the harness
#: preamble during fuzzing, by the ABI in real compiled code).
POINTER_REGS = (2, 8, 3, 4, 9)  # sp, s0, gp, tp, s1
#: Scalar (data) registers the generator allocates from.
SCALAR_REGS = (10, 11, 12, 13, 14, 15, 16, 17, 5, 6, 7, 28, 29, 30, 18, 19, 20, 21)

_ALU_RR = ("add", "sub", "and", "or", "xor", "sll", "srl", "sra", "slt", "sltu",
           "addw", "subw", "sllw", "srlw", "sraw")
_ALU_RI = ("addi", "andi", "ori", "xori", "slti", "sltiu", "addiw")
_SHIFT_I = ("slli", "srli", "srai", "slliw", "srliw", "sraiw")
_MULDIV = ("mul", "mulh", "mulhu", "mulhsu", "div", "divu", "rem", "remu",
           "mulw", "divw", "remw", "divuw", "remuw")
_BRANCHES = ("beq", "bne", "blt", "bge", "bltu", "bgeu")
_AMO_D = ("amoadd.d", "amoswap.d", "amoor.d", "amoand.d", "amoxor.d",
          "amomin.d", "amomax.d", "amominu.d", "amomaxu.d")
_AMO_W = ("amoadd.w", "amoswap.w", "amoor.w", "amoand.w", "amoxor.w")
_IMMEDIATES = (0, 1, -1, 2, 3, 4, 7, 8, 15, 16, 31, 32, 63, 64, 100, 127, 255,
               -2, -8, -16, 0x7F, 0x100, 0x3FF, -100)


@dataclass(frozen=True)
class CodegenConfig:
    """Knobs of the synthetic compiler."""

    min_snippets: int = 3
    max_snippets: int = 10
    #: Relative weights of each snippet kind in a function body.
    weights: dict = field(
        default_factory=lambda: {
            "alu_chain": 30,
            "load_compute_store": 22,
            "loop_counted": 10,
            "branch_skip": 12,
            "muldiv_seq": 8,
            "amo_seq": 5,
            "lr_sc_pair": 3,
            "store_load_forward": 4,
            "csr_read": 2,
            "call_pair": 4,
            "smc_patch": 2,
            "priv_drop": 1,
            "fence_barrier": 3,
            "assert_trap": 1,
            "wild_pointer": 3,
            "array_walk": 6,
            "spill_reload": 6,
            "nested_call": 2,
            "contended_lock": 2,
            "cmp_branch": 6,
            "csr_roundtrip": 1,
        }
    )
    #: Probability that an smc_patch snippet correctly emits FENCE.I.
    fencei_probability: float = 0.5
    #: Probability of picking a recently-written register as a source.
    dependency_bias: float = 0.65


@dataclass(frozen=True)
class Function:
    """One generated 'compiled function' (a training entry)."""

    name: str
    words: tuple[int, ...]

    def __len__(self) -> int:
        return len(self.words)


class FunctionGenerator:
    """Generates function-shaped machine code (see module docstring)."""

    def __init__(self, config: CodegenConfig | None = None, seed: int = 0) -> None:
        self.config = config or CodegenConfig()
        self.rng = random.Random(seed)
        self._counter = 0
        kinds = list(self.config.weights)
        weights = [self.config.weights[k] for k in kinds]
        self._kinds = kinds
        self._weights = weights

    # -- register allocation helpers ------------------------------------------

    def _src(self, recent: list[int]) -> int:
        """A source register, biased toward recent results (dependencies)."""
        if recent and self.rng.random() < self.config.dependency_bias:
            return self.rng.choice(recent)
        return self.rng.choice(SCALAR_REGS)

    def _dst(self, recent: list[int]) -> int:
        """A destination register; remembers it as 'recent'."""
        reg = self.rng.choice(SCALAR_REGS)
        recent.append(reg)
        del recent[:-4]  # keep a short dependence window
        return reg

    def _ptr(self) -> int:
        return self.rng.choice(POINTER_REGS)

    def _off(self, align: int) -> int:
        return align * self.rng.randrange(-8, 15)

    # -- snippets ------------------------------------------------------------------

    def _alu_chain(self, recent: list[int]) -> list[int]:
        words = []
        for _ in range(self.rng.randrange(2, 6)):
            choice = self.rng.random()
            if choice < 0.45:
                words.append(encode(self.rng.choice(_ALU_RR),
                                    rd=self._dst(recent),
                                    rs1=self._src(recent),
                                    rs2=self._src(recent)))
            elif choice < 0.85:
                words.append(encode(self.rng.choice(_ALU_RI),
                                    rd=self._dst(recent),
                                    rs1=self._src(recent),
                                    imm=self.rng.choice(_IMMEDIATES)))
            else:
                mnemonic = self.rng.choice(_SHIFT_I)
                limit = 32 if mnemonic.endswith("w") else 64
                words.append(encode(mnemonic, rd=self._dst(recent),
                                    rs1=self._src(recent),
                                    shamt=self.rng.randrange(0, limit)))
        return words

    def _load_compute_store(self, recent: list[int]) -> list[int]:
        ptr = self._ptr()
        if self.rng.random() < 0.7:
            load, store, align = "ld", "sd", 8
        else:
            load, store, align = "lw", "sw", 4
        offset = self._off(align)
        value = self._dst(recent)
        words = [encode(load, rd=value, rs1=ptr, imm=offset)]
        words += self._alu_chain(recent)[:2]
        words.append(encode(store, rs2=self._src(recent), rs1=ptr,
                            imm=self._off(align)))
        return words

    def _loop_counted(self, recent: list[int]) -> list[int]:
        counter = self.rng.choice(SCALAR_REGS)
        iterations = self.rng.randrange(2, 6)
        body = self._alu_chain(recent)[: self.rng.randrange(1, 3)]
        words = [encode("addi", rd=counter, rs1=0, imm=iterations)]
        words += body
        words.append(encode("addi", rd=counter, rs1=counter, imm=-1))
        back = -4 * (len(body) + 1)
        words.append(encode("bne", rs1=counter, rs2=0, imm=back))
        return words

    def _branch_skip(self, recent: list[int]) -> list[int]:
        skipped = self._alu_chain(recent)[: self.rng.randrange(1, 4)]
        mnemonic = self.rng.choice(_BRANCHES)
        words = [encode(mnemonic, rs1=self._src(recent), rs2=self._src(recent),
                        imm=4 * (len(skipped) + 1))]
        words += skipped
        return words

    def _muldiv_seq(self, recent: list[int]) -> list[int]:
        words = []
        for _ in range(self.rng.randrange(1, 4)):
            words.append(encode(self.rng.choice(_MULDIV),
                                rd=self._dst(recent),
                                rs1=self._src(recent),
                                rs2=self._src(recent)))
        return words

    def _amo_seq(self, recent: list[int]) -> list[int]:
        ptr = self._ptr()
        if self.rng.random() < 0.6:
            mnemonics, align = _AMO_D, 8
        else:
            mnemonics, align = _AMO_W, 4
        rd = 0 if self.rng.random() < 0.15 else self._dst(recent)
        words = [encode(self.rng.choice(mnemonics), rd=rd, rs1=ptr,
                        rs2=self._src(recent),
                        aq=self.rng.randrange(2), rl=self.rng.randrange(2))]
        if rd and self.rng.random() < 0.5:
            # Chain: the fetched old value feeds the next atomic (the
            # read-modify-write-retry shape of lockless updates).
            words.append(encode(self.rng.choice(mnemonics),
                                rd=self._dst(recent), rs1=ptr, rs2=rd))
        return words

    def _lr_sc_pair(self, recent: list[int]) -> list[int]:
        ptr = self._ptr()
        wide = self.rng.random() < 0.6
        loaded = self._dst(recent)
        status = self._dst(recent)
        words = [
            encode("lr.d" if wide else "lr.w", rd=loaded, rs1=ptr),
            encode("addi", rd=loaded, rs1=loaded, imm=1),
            encode("sc.d" if wide else "sc.w", rd=status, rs1=ptr, rs2=loaded),
        ]
        return words

    def _store_load_forward(self, recent: list[int]) -> list[int]:
        ptr = self._ptr()
        offset = self._off(8)
        return [
            encode("sd", rs2=self._src(recent), rs1=ptr, imm=offset),
            encode("ld", rd=self._dst(recent), rs1=ptr, imm=offset),
        ]

    def _csr_read(self, recent: list[int]) -> list[int]:
        csr = self.rng.choice((CSR_CYCLE, CSR_INSTRET, CSR_MHARTID))
        return [encode("csrrs", rd=self._dst(recent), csr=csr, rs1=0)]

    def _call_pair(self, recent: list[int]) -> list[int]:
        """An intra-function call: jal over the continuation to a local
        helper that returns; the continuation then jumps past the helper."""
        continuation = self._alu_chain(recent)[: self.rng.randrange(1, 3)]
        helper = self._alu_chain(recent)[: self.rng.randrange(1, 3)]
        words = [encode("jal", rd=1, imm=4 * (len(continuation) + 2))]
        words += continuation
        words.append(encode("jal", rd=0, imm=4 * (len(helper) + 2)))
        words += helper
        words.append(encode("jalr", rd=0, rs1=1, imm=0))
        return words

    def _smc_patch(self, recent: list[int]) -> list[int]:
        """Code patching (the kernel-alternatives shape): execute the target
        once, overwrite it with ``addi t2, t2, 1``, execute it again.
        Half the time the required FENCE.I is present; the other half is
        exactly the Bug1 (CWE-1202) trigger — the second execution fetches
        the stale pre-patch instruction from the I-cache."""
        patched = encode("addi", rd=7, rs1=7, imm=1)
        use_fencei = self.rng.random() < self.config.fencei_probability
        # Build the 32-bit patch constant with the usual lui+addi split.
        upper = (patched + (1 << 11)) >> 12
        lower = patched - (upper << 12)
        return [
            encode("auipc", rd=6, imm=0),          # w0: t1 = pc
            encode("addi", rd=6, rs1=6, imm=36),   # w1: t1 = &target (w9)
            encode("lui", rd=5, imm=upper),        # w2: t0 = patch word
            encode("addi", rd=5, rs1=5, imm=lower),  # w3
            encode("addi", rd=28, rs1=0, imm=0),   # w4: t3 = pass counter
            encode("jal", rd=0, imm=16),           # w5: first pass -> w9
            encode("sw", rs2=5, rs1=6, imm=0),     # w6: patch the target
            encode("fence.i") if use_fencei
            else encode("addi", rd=0, rs1=0, imm=0),  # w7
            encode("jal", rd=0, imm=4),            # w8: second pass -> w9
            encode("addi", rd=7, rs1=7, imm=2),    # w9: TARGET
            encode("bne", rs1=28, rs2=0, imm=12),  # w10: done after pass 2
            encode("addi", rd=28, rs1=0, imm=1),   # w11: mark pass 2
            encode("jal", rd=0, imm=-24),          # w12: back to patch (w6)
        ]

    def _priv_drop(self, recent: list[int]) -> list[int]:
        """Drop to U-mode via mret, then ecall back (covers U-mode paths)."""
        return [
            encode("auipc", rd=5, imm=0),             # t0 = pc
            encode("addi", rd=5, rs1=5, imm=28),      # return point: the ecall
            encode("csrrw", rd=0, csr=0x341, rs1=5),  # mepc = t0
            encode("lui", rd=6, imm=2),               # t1 = 0x2000
            encode("addi", rd=6, rs1=6, imm=-0x800),  # t1 = 0x1800 (MPP mask)
            encode("csrrc", rd=0, csr=0x300, rs1=6),  # clear mstatus.MPP -> U
            encode("mret"),                           # enter U-mode
            encode("ecall"),                          # U-mode ecall (cause 8)
        ]

    def _fence_barrier(self, recent: list[int]) -> list[int]:
        """Memory barrier around a store, as lock/unlock code emits.
        Occasionally a bare FENCE.I (module-init style, possibly with a
        clean cache)."""
        if self.rng.random() < 0.2:
            return [encode("fence.i")]
        ptr = self._ptr()
        return [
            encode("fence"),
            encode("sd", rs2=self._src(recent), rs1=ptr, imm=self._off(8)),
            encode("fence"),
        ]

    def _assert_trap(self, recent: list[int]) -> list[int]:
        """A BUG()-style guarded ebreak: branch over it unless the 'assert'
        fires (compares a register against itself + 1, so it never fires in
        corpus code — but mutated/completed variants do)."""
        reg = self._src(recent)
        return [
            encode("beq", rs1=reg, rs2=reg, imm=8),  # always skips the ebreak
            encode("ebreak"),
        ]

    def _wild_pointer(self, recent: list[int]) -> list[int]:
        """Dereference a computed pointer (a scalar register): compiled code
        chases pointers whose values are data-dependent — under fuzzing they
        are usually garbage and fault, exercising the access-fault paths."""
        return [
            encode("ld", rd=self._dst(recent), rs1=self._src(recent),
                   imm=self._off(8)),
        ]

    def _array_walk(self, recent: list[int]) -> list[int]:
        """Strided sweep over a buffer: the memcpy/memset shape.  Exercises
        line streaming, set conflicts and victim revisits."""
        ptr = self._ptr()
        stride = self.rng.choice((8, 16, 32))
        start = self._off(8)
        count = self.rng.randrange(3, 7)
        words = []
        value = self._dst(recent)
        for i in range(count):
            offset = start + stride * i
            if not -2048 <= offset < 2048:
                break
            if self.rng.random() < 0.5:
                words.append(encode("ld", rd=value, rs1=ptr, imm=offset))
            else:
                words.append(encode("sd", rs2=self._src(recent), rs1=ptr,
                                    imm=offset))
        return words

    def _spill_reload(self, recent: list[int]) -> list[int]:
        """Register spill: store to an sp slot, compute, reload the slot."""
        offset = 8 * self.rng.randrange(0, 8)
        spilled = self._src(recent)
        words = [encode("sd", rs2=spilled, rs1=2, imm=offset)]
        words += self._alu_chain(recent)[: self.rng.randrange(1, 3)]
        words.append(encode("ld", rd=self._dst(recent), rs1=2, imm=offset))
        return words

    def _nested_call(self, recent: list[int]) -> list[int]:
        """A call made while another call's return address is spilled —
        the standard non-leaf-function shape."""
        leaf = self._alu_chain(recent)[:1]
        return [
            encode("sd", rs2=1, rs1=2, imm=-8),        # save outer ra
            encode("jal", rd=1, imm=8),                # call the leaf below
            encode("jal", rd=0, imm=4 * (len(leaf) + 2)),  # skip leaf after ret
            *leaf,
            encode("jalr", rd=0, rs1=1, imm=0),        # leaf return
            encode("ld", rd=1, rs1=2, imm=-8),         # restore outer ra
        ]

    def _contended_lock(self, recent: list[int]) -> list[int]:
        """LR / interfering store / SC: the failing-reservation shape of a
        contended lock acquisition."""
        ptr = self._ptr()
        loaded = self._dst(recent)
        status = self._dst(recent)
        return [
            encode("lr.d", rd=loaded, rs1=ptr),
            encode("sd", rs2=self._src(recent), rs1=ptr, imm=0),
            encode("sc.d", rd=status, rs1=ptr, rs2=loaded),
        ]

    def _cmp_branch(self, recent: list[int]) -> list[int]:
        """Compare-then-branch: slt feeding a bne/beq, compiled `if (a<b)`."""
        flag = self._dst(recent)
        cmp_op = self.rng.choice(("slt", "sltu", "slti", "sltiu"))
        skipped = self._alu_chain(recent)[: self.rng.randrange(1, 3)]
        if cmp_op in ("slt", "sltu"):
            first = encode(cmp_op, rd=flag, rs1=self._src(recent),
                           rs2=self._src(recent))
        else:
            first = encode(cmp_op, rd=flag, rs1=self._src(recent),
                           imm=self.rng.choice(_IMMEDIATES))
        branch = self.rng.choice(("beq", "bne"))
        words = [first,
                 encode(branch, rs1=flag, rs2=0, imm=4 * (len(skipped) + 1))]
        words += skipped
        return words

    def _csr_roundtrip(self, recent: list[int]) -> list[int]:
        """Write mscratch, then read it back (context-switch save idiom)."""
        return [
            encode("csrrw", rd=0, csr=0x340, rs1=self._src(recent)),
            encode("csrrs", rd=self._dst(recent), csr=0x340, rs1=0),
        ]

    _SNIPPETS = {
        "alu_chain": _alu_chain,
        "load_compute_store": _load_compute_store,
        "loop_counted": _loop_counted,
        "branch_skip": _branch_skip,
        "muldiv_seq": _muldiv_seq,
        "amo_seq": _amo_seq,
        "lr_sc_pair": _lr_sc_pair,
        "store_load_forward": _store_load_forward,
        "csr_read": _csr_read,
        "call_pair": _call_pair,
        "smc_patch": _smc_patch,
        "priv_drop": _priv_drop,
        "fence_barrier": _fence_barrier,
        "assert_trap": _assert_trap,
        "wild_pointer": _wild_pointer,
        "array_walk": _array_walk,
        "spill_reload": _spill_reload,
        "nested_call": _nested_call,
        "contended_lock": _contended_lock,
        "cmp_branch": _cmp_branch,
        "csr_roundtrip": _csr_roundtrip,
    }

    # -- function assembly ------------------------------------------------------

    def prologue(self, frame: int, saves: int) -> list[int]:
        words = [encode("addi", rd=2, rs1=2, imm=-frame)]
        for i in range(saves):
            words.append(encode("sd", rs2=(1 if i == 0 else 7 + i),
                                rs1=2, imm=8 * i))
        return words

    def epilogue(self, frame: int, saves: int) -> list[int]:
        words = []
        for i in range(saves):
            words.append(encode("ld", rd=(1 if i == 0 else 7 + i),
                                rs1=2, imm=8 * i))
        words.append(encode("addi", rd=2, rs1=2, imm=frame))
        words.append(encode("jalr", rd=0, rs1=1, imm=0))  # ret
        return words

    def function(self) -> Function:
        """Generate one complete function."""
        self._counter += 1
        frame = 8 * self.rng.randrange(2, 6)
        saves = self.rng.randrange(1, min(4, frame // 8 + 1))
        recent: list[int] = []
        words = self.prologue(frame, saves)
        n_snippets = self.rng.randrange(self.config.min_snippets,
                                        self.config.max_snippets + 1)
        for _ in range(n_snippets):
            kind = self.rng.choices(self._kinds, weights=self._weights, k=1)[0]
            words += self._SNIPPETS[kind](self, recent)
        words += self.epilogue(frame, saves)
        return Function(name=f"func_{self._counter:06d}", words=tuple(words))


def generate_binary(
    n_functions: int,
    seed: int = 0,
    config: CodegenConfig | None = None,
) -> list[int]:
    """Emit a flat 'compiled binary': concatenated functions with alignment
    padding (zero words), as a linker would lay them out.  Use
    :func:`repro.dataset.extraction.extract_functions` to recover them."""
    generator = FunctionGenerator(config, seed=seed)
    words: list[int] = []
    for _ in range(n_functions):
        words += generator.function().words
        while len(words) % 4:  # 16-byte function alignment
            words.append(0)
    return words
