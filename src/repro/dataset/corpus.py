"""Corpus container: the training set of per-function machine code."""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.dataset.codegen import CodegenConfig, generate_binary
from repro.dataset.extraction import extract_functions
from repro.isa.decoder import decode


@dataclass
class Corpus:
    """A machine-language training corpus: one entry per extracted function."""

    entries: list[tuple[int, ...]]

    def __len__(self) -> int:
        return len(self.entries)

    def __getitem__(self, idx: int) -> tuple[int, ...]:
        return self.entries[idx]

    def __iter__(self):
        return iter(self.entries)

    # -- construction ----------------------------------------------------------

    @classmethod
    def synthesize(
        cls,
        n_functions: int,
        seed: int = 0,
        config: CodegenConfig | None = None,
    ) -> "Corpus":
        """Generate a binary and run the static extraction pass over it."""
        binary = generate_binary(n_functions, seed=seed, config=config)
        return cls(entries=[tuple(f) for f in extract_functions(binary)])

    def split(self, validation_fraction: float = 0.05) -> tuple["Corpus", "Corpus"]:
        """Deterministic train/validation split."""
        n_validation = max(1, int(len(self.entries) * validation_fraction))
        return (
            Corpus(self.entries[:-n_validation]),
            Corpus(self.entries[-n_validation:]),
        )

    # -- statistics ------------------------------------------------------------

    def total_instructions(self) -> int:
        return sum(len(entry) for entry in self.entries)

    def mnemonic_histogram(self) -> dict[str, int]:
        """Instruction-frequency profile (used by tests and EXPERIMENTS.md)."""
        histogram: dict[str, int] = {}
        for entry in self.entries:
            for word in entry:
                instr = decode(word)
                key = instr.mnemonic if instr is not None else "<invalid>"
                histogram[key] = histogram.get(key, 0) + 1
        return histogram

    # -- persistence -------------------------------------------------------------

    def save(self, path: str | Path) -> None:
        payload = {"entries": [list(entry) for entry in self.entries]}
        Path(path).write_text(json.dumps(payload))

    @classmethod
    def load(cls, path: str | Path) -> "Corpus":
        payload = json.loads(Path(path).read_text())
        return cls(entries=[tuple(entry) for entry in payload["entries"]])
