"""Machine-language training data (paper §III-A).

The paper statically collects ~500K test vectors by compiling the Linux
kernel, disassembling the binaries and extracting per-function machine code.
Offline we cannot compile a kernel, so :mod:`repro.dataset.codegen` is a
synthetic compiler back-end that emits function-shaped RV64 machine code with
the register discipline and idioms of real compiled code (prologues,
callee-saved handling, bounded loops, sp/s0-relative addressing, call/return
pairs, atomics, occasional code patching).  The extraction pass
(:mod:`repro.dataset.extraction`) then recovers function boundaries from the
flat binary exactly as the paper's pipeline does, and
:mod:`repro.dataset.corpus` holds the result.

See DESIGN.md §1 for why the substitution preserves what the LLM must learn.
"""

from repro.dataset.codegen import CodegenConfig, FunctionGenerator, generate_binary
from repro.dataset.corpus import Corpus
from repro.dataset.extraction import extract_functions

__all__ = [
    "CodegenConfig",
    "Corpus",
    "FunctionGenerator",
    "extract_functions",
    "generate_binary",
]
