"""Static function extraction from flat binaries (paper §III-A2).

The paper disassembles compiled binaries and "automatically identif[ies] the
start and end locations of functions", making each function one training
entry.  This module performs the same recovery on our synthetic binaries
using the standard signature heuristics a disassembler would use:

- a function *starts* at a stack-allocating ``addi sp, sp, -N``;
- it *ends* at the first ``ret`` (``jalr x0, 0(ra)``) at or below the
  starting stack depth;
- alignment padding (zero words, which are not valid instructions) between
  functions is discarded.
"""

from __future__ import annotations

from repro.isa.decoder import decode


def _is_stack_alloc(word: int) -> bool:
    instr = decode(word)
    return (
        instr is not None
        and instr.mnemonic == "addi"
        and instr.rd == 2
        and instr.rs1 == 2
        and instr.imm < 0
    )


def _is_ret(word: int) -> bool:
    instr = decode(word)
    return (
        instr is not None
        and instr.mnemonic == "jalr"
        and instr.rd == 0
        and instr.rs1 == 1
        and instr.imm == 0
    )


def extract_functions(binary: list[int], max_len: int = 512) -> list[tuple[int, ...]]:
    """Recover per-function word sequences from a flat binary image.

    Returns the list of functions in layout order.  Sequences longer than
    ``max_len`` are truncated (guards against mis-detected starts).
    """
    functions: list[tuple[int, ...]] = []
    i = 0
    n = len(binary)
    while i < n:
        if not _is_stack_alloc(binary[i]):
            i += 1
            continue
        start = i
        end = None
        for j in range(start + 1, min(n, start + max_len)):
            if _is_ret(binary[j]):
                end = j
                break
        if end is None:
            i += 1
            continue
        functions.append(tuple(binary[start : end + 1]))
        i = end + 1
    return functions
