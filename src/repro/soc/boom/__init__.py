"""BOOM-like out-of-order core model.

The paper reports 97.02% condition coverage on BOOM within 49 minutes —
BOOM's coverage profile is dominated by structural/occupancy conditions that
any sufficiently varied stream of *legal* instructions exercises.  This model
reproduces that profile: a rename/issue/ROB/LSU pipeline whose conditions
saturate quickly, with only a small never-reachable residue (~3% of arms).
"""

from repro.soc.boom.core import BoomCore, BoomRunState
from repro.soc.boom.params import BoomParams

__all__ = ["BoomCore", "BoomParams", "BoomRunState"]
