"""The BOOM-like out-of-order core: timed interpreter with OoO structures.

Models the microarchitectural skeleton that matters for condition coverage:
fetch buffer, return-address stack, register renaming (free list / WAW
remap), issue-queue and ROB occupancy, a load/store queue with
store-to-load forwarding, plus caches and a branch predictor.  Instruction
semantics come from the golden executor, as for Rocket (DESIGN.md §5).

No bugs are injected here: the paper's bug findings are on RocketCore; BOOM
carries the fast-saturating coverage claim (97.02% in 49 minutes).
"""

from __future__ import annotations

from repro.golden.exceptions import Trap
from repro.golden.executor import execute
from repro.golden.memory import SparseMemory
from repro.golden.simulator import trap_handler_image
from repro.golden.state import ArchState
from repro.golden.trace import CommitTrace, TraceEntry
from repro.isa.decoder import decode
from repro.isa.spec import (
    DRAM_BASE,
    EXC_ILLEGAL_INSTRUCTION,
    EXC_INSTR_ACCESS_FAULT,
    PRV_M,
    PRV_U,
    TRAP_VECTOR,
    WORD_MASK,
)
from repro.rtl.coverage import ConditionCoverage
from repro.rtl.module import Module
from repro.rtl.report import CoverageReport
from repro.soc.boom.params import BoomParams
from repro.soc.caches import SetAssocCache
from repro.soc.predictor import BranchPredictor

_CAUSE_CONDITIONS = (0, 1, 2, 3, 4, 5, 6, 7, 8, 11)

#: Debug-module conditions: present in the netlist, never exercised by
#: instruction fuzzing.  These are BOOM's small unreachable residue (~2.5%
#: of arms — the paper's 97.02% plateau implies ~3% unreachable).
_DEBUG_CONDITIONS = ("dm.halt_req", "dm.single_step")


class BoomRunState:
    """Loop state of one :meth:`BoomCore.run` — the per-cycle step hook's
    working set.

    Mirrors :class:`repro.soc.rocket.core.RunState`: everything the scalar
    run loop used to keep in locals lives here so that
    :meth:`BoomCore.step_cycle` can execute exactly one loop iteration at a
    time.  That is the shared per-instruction step hook the batched engine
    (``repro.soc.batch_boom``) peels hard lanes to: the batch side splices
    lane state into a :class:`BoomRunState`, steps the retained scalar
    core, and splices the result back — hard-case semantics keep one
    implementation.
    """

    __slots__ = (
        "memory", "state", "trace", "handler_lo", "handler_hi",
        "iterations", "cycles", "traps_taken", "ras", "busy_phys",
        "renamed", "rob_occupancy", "iq_occupancy", "ldq", "stq",
        "retired_since_drain", "prev_rd", "last_stall",
    )


class BoomCore(Module):
    """Out-of-order RV64IMA_Zicsr core model with condition coverage."""

    def __init__(self, params: BoomParams | None = None) -> None:
        cov = ConditionCoverage()
        super().__init__("boom", cov)
        self.params = params or BoomParams()
        p = self.params

        self.icache = self.child(
            SetAssocCache("boom.icache", cov, ways=p.icache_ways,
                          sets=p.icache_sets, line_bytes=p.line_bytes,
                          miss_penalty=p.icache_miss_penalty,
                          writable=False)
        )
        self.dcache = self.child(
            SetAssocCache("boom.dcache", cov, ways=p.dcache_ways,
                          sets=p.dcache_sets, line_bytes=p.line_bytes,
                          miss_penalty=p.dcache_miss_penalty)
        )
        self.predictor = self.child(BranchPredictor("boom.bpu", cov))

        self.conditions(
            # frontend
            "frontend.fetch_fault",
            "frontend.fb_full",
            "frontend.fb_empty",
            "frontend.ras_push",
            "frontend.ras_pop",
            "frontend.ras_underflow",
            "frontend.ras_overflow",
            # decode / rename
            "decode.illegal",
            "decode.is_load",
            "decode.is_store",
            "decode.is_branch",
            "decode.is_jump",
            "decode.is_amo",
            "decode.is_muldiv",
            "decode.is_csr",
            "decode.is_system",
            "decode.is_fence",
            "rename.stall_freelist",
            "rename.waw_remap",
            "rename.rd_x0",
            "rename.freelist_low",
            # issue
            "issue.iq_full",
            "issue.iq_empty",
            "issue.rs1_ready",
            "issue.rs2_ready",
            "issue.wakeup_bypass",
            # ROB
            "rob.full",
            "rob.empty",
            "rob.commit_two",
            "rob.exception_at_head",
            "rob.flush",
            # LSU
            "lsu.ldq_full",
            "lsu.stq_full",
            "lsu.stl_forward",
            "lsu.misaligned",
            "lsu.access_fault",
            "lsu.reservation_set",
            "lsu.sc_success",
            # execute
            "execute.br_taken",
            "execute.br_backward",
            "execute.div_by_zero",
            "execute.mul_high",
            "execute.result_zero",
            # CSR / traps
            "csr.trap_taken",
            *[f"csr.cause_is_{c}" for c in _CAUSE_CONDITIONS],
            "csr.write",
            "csr.in_user_mode",
            "csr.mret",
            "csr.wfi",
            # unreachable residue
            *_DEBUG_CONDITIONS,
        )
        cov.freeze()

        # Memoized group masks (see RocketCore): the decode condition group
        # is a pure function of the instruction word, the trap-comparator
        # group of the cause — each folds to one record_mask per evaluation.
        self._decode_mask_cache: dict[int, int] = {}
        self._trap_mask_cache: dict[int, int] = {}

    # ------------------------------------------------------------------ run --

    def run(self, program: list[int], base: int = DRAM_BASE) -> tuple[CommitTrace, CoverageReport]:
        """Simulate one test program; returns (commit trace, coverage report)."""
        rs = self.begin_run(program, base)
        while self.step_cycle(rs):
            pass
        return self.finish_run(rs)

    def begin_run(self, program: list[int], base: int = DRAM_BASE,
                  memory: SparseMemory | None = None) -> BoomRunState:
        """Reset the core and build the loop state for one run.

        ``memory`` lets the batched engine substitute a lane-arena-backed
        view; the default builds a fresh :class:`SparseMemory` with the
        program and trap handler loaded.
        """
        self.reset()
        self.cov.begin_run()

        rs = BoomRunState()
        if memory is None:
            memory = SparseMemory()
            memory.load_program(program, base)
            memory.load_program(trap_handler_image(), TRAP_VECTOR)
        rs.memory = memory
        rs.state = ArchState(pc=base)
        rs.trace = CommitTrace()

        rs.handler_lo = TRAP_VECTOR
        rs.handler_hi = TRAP_VECTOR + 4 * len(trap_handler_image())

        rs.iterations = 0
        rs.cycles = 0
        rs.traps_taken = 0
        rs.ras = []
        # physical registers still "in flight"; models free-list pressure.
        rs.busy_phys = 0
        # architectural -> renamed flag, for WAW detection.
        rs.renamed = set()
        rs.rob_occupancy = 0
        rs.iq_occupancy = 0
        rs.ldq = 0
        rs.stq = 0
        rs.retired_since_drain = 0
        rs.prev_rd = None
        # stall cycles of the previous instruction: while the backend waits
        # on a miss or a long op, the frontend keeps filling the window.
        rs.last_stall = 0
        return rs

    def finish_run(self, rs: BoomRunState) -> tuple[CommitTrace, CoverageReport]:
        """Seal a finished run into (commit trace, coverage report)."""
        rs.trace.cycles = rs.cycles
        return rs.trace, CoverageReport.from_coverage(self.cov, rs.cycles)

    def step_cycle(self, rs: BoomRunState) -> bool:
        """Execute exactly one run-loop iteration (the shared step hook).

        Returns True while the run should continue; False once a stop
        reason has been recorded on ``rs.trace``.  One iteration is one
        fetch attempt: a retired instruction, or a trap entry.
        """
        p = self.params
        if rs.iterations >= p.max_steps:
            rs.trace.stop_reason = "max_steps"
            return False
        rs.iterations += 1

        state = rs.state
        memory = rs.memory
        trace = rs.trace
        pc = state.pc
        in_handler = rs.handler_lo <= pc < rs.handler_hi
        instr_start_cycles = rs.cycles

        # Two-wide machine: occupancies drain every other instruction,
        # but a stalled backend lets the in-flight window fill up.
        rs.retired_since_drain += 1
        rs.rob_occupancy = min(p.rob_entries,
                               rs.rob_occupancy + rs.last_stall // 2)
        rs.iq_occupancy = min(p.issue_queue_entries,
                              rs.iq_occupancy + rs.last_stall // 4)
        rs.busy_phys = min(p.phys_regs - 32, rs.busy_phys + rs.last_stall // 4)
        if rs.retired_since_drain >= 2:
            rs.retired_since_drain = 0
            rs.cycles += 1
            rs.rob_occupancy = max(0, rs.rob_occupancy - 2)
            rs.iq_occupancy = max(0, rs.iq_occupancy - 2)
            rs.ldq = max(0, rs.ldq - 1)
            rs.stq = max(0, rs.stq - 1)
            rs.busy_phys = max(0, rs.busy_phys - 2)

        # ---------------- fetch -----------------------------------------
        if not memory.is_mapped(pc, 4):
            self.cond("frontend.fetch_fault", True)
            rs.cycles += p.mispredict_penalty
            rs.traps_taken += 1
            self._trap_conditions(EXC_INSTR_ACCESS_FAULT)
            trace.append(TraceEntry(pc=pc, instr=0, priv=state.priv,
                                    trap_cause=EXC_INSTR_ACCESS_FAULT,
                                    trap_tval=pc))
            state.reservation = None
            state.pc = state.csr.enter_trap(
                EXC_INSTR_ACCESS_FAULT, pc, pc, state.priv)
            state.priv = PRV_M
            state.csr.tick()
            if rs.traps_taken >= p.max_traps:
                trace.stop_reason = "max_traps"
                return False
            return True
        self.cond("frontend.fetch_fault", False)
        if self.icache.lookup(pc) is None:
            self.icache.refill(pc, memory.read_bytes)
            rs.cycles += self.icache.miss_penalty
            self.cond("frontend.fb_empty", True)
        else:
            self.cond("frontend.fb_empty", False)
        self.cond("frontend.fb_full", rs.rob_occupancy >= p.rob_entries - 2)
        word = memory.load(pc, 4)  # BOOM's I$ snoops stores: always fresh

        # ---------------- decode / rename --------------------------------
        instr = decode(word)
        self._decode_conditions(instr, word)
        if instr is None:
            rs.cycles += p.mispredict_penalty
            rs.traps_taken += 1
            self._trap_conditions(EXC_ILLEGAL_INSTRUCTION)
            trace.append(TraceEntry(pc=pc, instr=word, priv=state.priv,
                                    trap_cause=EXC_ILLEGAL_INSTRUCTION,
                                    trap_tval=word))
            state.reservation = None
            state.pc = state.csr.enter_trap(
                EXC_ILLEGAL_INSTRUCTION, pc, word, state.priv)
            state.priv = PRV_M
            state.csr.tick()
            if rs.traps_taken >= p.max_traps:
                trace.stop_reason = "max_traps"
                return False
            return True
        spec = instr.spec
        m = spec.mnemonic

        if spec.writes_rd:
            self.cond("rename.rd_x0", instr.rd == 0)
            if instr.rd != 0:
                self.cond("rename.waw_remap", instr.rd in rs.renamed)
                rs.renamed.add(instr.rd)
                rs.busy_phys += 1
        free = self.params.phys_regs - 32 - rs.busy_phys
        self.cond("rename.freelist_low", free <= 4)
        self.cond("rename.stall_freelist", free <= 0)
        if free <= 0:
            rs.cycles += 2
            rs.busy_phys = max(0, rs.busy_phys - 4)

        # ---------------- issue ------------------------------------------
        rs.iq_occupancy += 1
        self.cond("issue.iq_full", rs.iq_occupancy >= p.issue_queue_entries)
        self.cond("issue.iq_empty", rs.iq_occupancy <= 1)
        if rs.iq_occupancy >= p.issue_queue_entries:
            rs.cycles += 1
            rs.iq_occupancy -= 2
        rs1_dep = spec.reads_rs1 and instr.rs1 != 0 and instr.rs1 == rs.prev_rd
        rs2_dep = spec.reads_rs2 and instr.rs2 != 0 and instr.rs2 == rs.prev_rd
        self.cond("issue.rs1_ready", not rs1_dep)
        self.cond("issue.rs2_ready", not rs2_dep)
        self.cond("issue.wakeup_bypass", rs1_dep or rs2_dep)

        rs.rob_occupancy += 1
        self.cond("rob.full", rs.rob_occupancy >= p.rob_entries)
        self.cond("rob.empty", rs.rob_occupancy <= 1)
        self.cond("rob.commit_two", rs.retired_since_drain == 0)
        if rs.rob_occupancy >= p.rob_entries:
            rs.cycles += 1
            rs.rob_occupancy -= 2

        # RAS: calls push, returns pop.
        is_call = spec.is_jump and instr.rd == 1
        is_ret = m == "jalr" and instr.rd == 0 and instr.rs1 == 1
        self.cond("frontend.ras_push", is_call)
        self.cond("frontend.ras_pop", is_ret)
        if is_call:
            self.cond("frontend.ras_overflow", len(rs.ras) >= p.ras_entries)
            rs.ras.append((pc + 4) & WORD_MASK)
            del rs.ras[: max(0, len(rs.ras) - p.ras_entries)]
        if is_ret:
            self.cond("frontend.ras_underflow", not rs.ras)
            if rs.ras:
                rs.ras.pop()

        # ---------------- execute ----------------------------------------
        predicted = False
        if spec.is_branch:
            predicted = self.predictor.predict(pc)
        prv_before = state.priv
        self.cond("csr.in_user_mode", state.priv == PRV_U)
        try:
            result = execute(state, memory, instr, pc)
        except Trap as trap:
            rs.cycles += p.mispredict_penalty
            rs.traps_taken += 1
            self._trap_conditions(trap.cause)
            self.cond("rob.exception_at_head", True)
            self.cond("rob.flush", True)
            if spec.is_memory:
                self.cond("lsu.misaligned", trap.cause in (4, 6))
                self.cond("lsu.access_fault", trap.cause in (5, 7))
            trace.append(TraceEntry(pc=pc, instr=word, priv=prv_before,
                                    trap_cause=trap.cause,
                                    trap_tval=trap.tval))
            state.reservation = None
            rs.rob_occupancy = 0
            rs.iq_occupancy = 0
            state.pc = state.csr.enter_trap(trap.cause, pc, trap.tval, prv_before)
            state.priv = PRV_M
            state.csr.tick()
            rs.prev_rd = None
            if rs.traps_taken >= p.max_traps:
                trace.stop_reason = "max_traps"
                return False
            return True
        self.cond("csr.trap_taken", False)
        self.cond("rob.exception_at_head", False)

        if spec.is_branch:
            taken = result.next_pc != (pc + 4) & WORD_MASK
            self.cond("execute.br_taken", taken)
            self.cond("execute.br_backward", instr.imm < 0)
            self.predictor.update(pc, taken, predicted)
            mispredicted = taken != predicted
            self.cond("rob.flush", mispredicted)
            if mispredicted:
                rs.cycles += p.mispredict_penalty
                rs.rob_occupancy = 0
                rs.iq_occupancy = 0
        if spec.is_muldiv:
            divlike = m.startswith(("div", "rem"))
            if divlike:
                self.cond("execute.div_by_zero",
                          state.read_reg(instr.rs2) == 0)
                rs.cycles += p.div_latency
            else:
                self.cond("execute.mul_high", m in ("mulh", "mulhsu", "mulhu"))
                rs.cycles += p.mul_latency
        if result.rd is not None and result.rd != 0:
            self.cond("execute.result_zero", result.rd_value == 0)

        # ---------------- LSU ---------------------------------------------
        if result.mem is not None:
            addr = result.mem.addr
            if result.mem.is_store:
                rs.stq += 1
                self.cond("lsu.stq_full", rs.stq >= p.stq_entries)
                if rs.stq >= p.stq_entries:
                    rs.cycles += 1
                    rs.stq -= 1
            else:
                rs.ldq += 1
                self.cond("lsu.ldq_full", rs.ldq >= p.ldq_entries)
                self.cond("lsu.stl_forward", rs.stq > 0 and not spec.is_amo)
                if rs.ldq >= p.ldq_entries:
                    rs.cycles += 1
                    rs.ldq -= 1
            self.cond("lsu.misaligned", False)
            self.cond("lsu.access_fault", False)
            self.cond("lsu.reservation_set", m.startswith("lr."))
            if m.startswith("sc."):
                self.cond("lsu.sc_success", result.rd_value == 0)
            if self.dcache.lookup(addr) is None:
                self.dcache.refill(addr, memory.read_bytes)
                rs.cycles += self.dcache.miss_penalty
            if result.mem.is_store:
                data = result.mem.data.to_bytes(result.mem.size, "little")
                self.dcache.update_stored_line(addr, data)

        self.cond("csr.write", result.csr_write is not None)
        self.cond("csr.mret", m == "mret")
        self.cond("csr.wfi", result.halt)

        # ---------------- retire -------------------------------------------
        if not in_handler:
            rd = result.rd if result.rd not in (None, 0) else None
            trace.append(TraceEntry(
                pc=pc, instr=word, priv=prv_before, rd=rd,
                rd_value=result.rd_value if rd is not None else 0,
                mem=result.mem, csr_write=result.csr_write,
            ))
        rs.prev_rd = result.rd if result.rd else None
        rs.last_stall = rs.cycles - instr_start_cycles
        state.pc = result.next_pc & WORD_MASK
        state.csr.tick()
        if result.halt:
            trace.stop_reason = "wfi"
            return False
        return True

    def _decode_conditions(self, instr, word: int) -> None:
        """Record the decode-stage condition group — one OR per instruction."""
        self.record_keyed_group(self._decode_mask_cache, word,
                                self._decode_mask, instr)

    def _decode_mask(self, instr) -> int:
        arm = self.arm_bit
        mask = arm("decode.illegal", instr is None)
        if instr is None:
            # The illegal path traps before reaching the class conditions,
            # which therefore go unevaluated — exactly the old behaviour.
            return mask
        spec = instr.spec
        mask |= arm("decode.is_load", spec.is_load)
        mask |= arm("decode.is_store", spec.is_store)
        mask |= arm("decode.is_branch", spec.is_branch)
        mask |= arm("decode.is_jump", spec.is_jump)
        mask |= arm("decode.is_amo", spec.is_amo)
        mask |= arm("decode.is_muldiv", spec.is_muldiv)
        mask |= arm("decode.is_csr", spec.is_csr)
        mask |= arm("decode.is_system", spec.is_system)
        mask |= arm("decode.is_fence", spec.is_fence)
        return mask

    def _trap_conditions(self, cause: int) -> None:
        """Record the trap-entry condition group — mask memoized per cause."""
        self.record_keyed_group(self._trap_mask_cache, cause,
                                self._trap_mask, cause)

    def _trap_mask(self, cause: int) -> int:
        mask = self.arm_bit("csr.trap_taken", True)
        for c in _CAUSE_CONDITIONS:
            mask |= self.arm_bit(f"csr.cause_is_{c}", cause == c)
        return mask
