"""Configuration for the BOOM-like out-of-order core model."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BoomParams:
    """Elaboration-time parameters of :class:`~repro.soc.boom.core.BoomCore`."""

    # Cache geometry.  Small enough that eviction/conflict FSM states are
    # exercised by ordinary test programs (DESIGN.md §5).
    icache_ways: int = 2
    icache_sets: int = 4
    dcache_ways: int = 2
    dcache_sets: int = 8
    line_bytes: int = 32

    # Out-of-order structures.
    rob_entries: int = 16
    issue_queue_entries: int = 8
    ldq_entries: int = 3
    stq_entries: int = 3
    ras_entries: int = 2
    phys_regs: int = 48

    # Latencies, in cycles.
    icache_miss_penalty: int = 24
    dcache_miss_penalty: int = 24
    mul_latency: int = 3
    div_latency: int = 16
    mispredict_penalty: int = 7

    # Execution limits.
    max_steps: int = 4096
    max_traps: int = 64
