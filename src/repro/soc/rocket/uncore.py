"""Uncore blocks: debug module and interrupt controller stubs.

These blocks exist in the real RocketCore netlist and contribute condition
cover points that fuzzing *cannot* reach (no debug requests or interrupts are
ever injected during instruction fuzzing).  They are what caps achievable
condition coverage below 100%, reproducing the paper's ~79% RocketCore
plateau (DESIGN.md §5).

- :class:`DebugUnit` conditions are never evaluated at all — both arms stay
  uncovered, like logic behind a clock gate that never opens.
- :class:`InterruptController` conditions are evaluated every retired
  instruction but are always false — their true arms stay uncovered.
"""

from __future__ import annotations

from repro.rtl.coverage import ConditionCoverage
from repro.rtl.module import Module

#: Conditions inside the debug module (never evaluated during fuzzing).
DEBUG_CONDITIONS = (
    "dmactive",
    "halt_req",
    "resume_req",
    "single_step",
    "step_cmp_match",
    "ebreak_to_debug",
    "abstract_cmd_busy",
    "abstract_cmd_err",
    "progbuf_exec",
    "progbuf_fault",
    "sba_read",
    "sba_write",
    "sba_err_align",
    "sba_err_size",
    "dm_reg_sel_data0",
    "dm_reg_sel_command",
    "dm_reg_sel_dmcontrol",
    "hartsel_valid",
    "havereset",
    "resumeack",
    "authenticated",
    "authbusy",
    "dmi_req_valid",
    "dmi_resp_stall",
    "ndmreset",
)

#: Interrupt-controller conditions (polled, but never pending in fuzz runs).
IRQ_CONDITIONS = (
    "mtip_pending",
    "msip_pending",
    "meip_pending",
    "seip_pending",
    "irq_enabled_global",
    "irq_taken",
    "irq_during_wfi",
    "irq_priority_ext_over_timer",
    "nmi_pending",
    "irq_vectored_dispatch",
    "irq_masked_by_mie",
    "irq_cause_msb",
)


class DebugUnit(Module):
    """Debug module stub: declares its conditions, is never exercised."""

    def __init__(self, path: str, cov: ConditionCoverage) -> None:
        super().__init__(path, cov)
        self.conditions(*DEBUG_CONDITIONS)


class InterruptController(Module):
    """CLINT/PLIC stub: polled every retire, lines never asserted."""

    def __init__(self, path: str, cov: ConditionCoverage) -> None:
        super().__init__(path, cov)
        self.conditions(*IRQ_CONDITIONS)
        # No interrupt source is ever asserted during instruction fuzzing,
        # so every poll records the same all-false arm group: precompute its
        # packed mask once and retire the whole group in one OR per cycle.
        self._idle_mask = 0
        for name in IRQ_CONDITIONS:
            self._idle_mask |= self.arm_bit(name, False)

    def poll(self) -> None:
        """Evaluate the pending checks (always false during fuzzing)."""
        self.cov.record_mask(self._idle_mask)
