"""RocketCore-like in-order RV64IMA_Zicsr pipeline model.

Contains the five documented RocketCore behaviours the paper's fuzzer found
(all injectable via :class:`~repro.soc.rocket.params.RocketParams` flags):

- **Bug1 / CWE-1202** — stale I-cache lines served after stores to fetched
  code when ``FENCE.I`` is omitted.
- **Bug2 / CWE-440** — tracer drops the register write-back record for
  MUL/DIV-family instructions.
- **Finding1** — access-fault reported instead of address-misaligned when a
  data access is simultaneously misaligned and unmapped.
- **Finding2** — AMOs with ``rd = x0`` show data arriving at x0 in the trace.
- **Finding3** — spurious x0 write-back trace records for ``jalr x0`` (plain
  indirect jumps) immediately following a load.
"""

from repro.soc.rocket.core import RocketCore
from repro.soc.rocket.params import RocketParams

__all__ = ["RocketCore", "RocketParams"]
