"""The RocketCore model: an in-order timed interpreter with full condition
coverage instrumentation.

Instruction *semantics* are delegated to the golden executor
(:func:`repro.golden.executor.execute`); everything microarchitectural —
I$/D$ behaviour, branch prediction, hazards, the store buffer, trap entry,
the commit tracer and the timing model — is modelled here and is the source
of both the condition coverage points and the injected paper behaviours
(Bug1 and Finding1 live in this file; Bug2/Finding2/Finding3 in the tracer).
"""

from __future__ import annotations

from repro.golden.exceptions import Trap
from repro.golden.executor import execute
from repro.golden.memory import SparseMemory
from repro.golden.simulator import trap_handler_image
from repro.golden.state import ArchState
from repro.golden.trace import CommitTrace, TraceEntry
from repro.isa.decoder import decode
from repro.isa.spec import (
    CSR_CYCLE,
    CSR_INSTRET,
    CSR_MCYCLE,
    CSR_MEPC,
    CSR_MSTATUS,
    CSR_TIME,
    DRAM_BASE,
    EXC_ILLEGAL_INSTRUCTION,
    EXC_INSTR_ACCESS_FAULT,
    EXC_LOAD_ACCESS_FAULT,
    EXC_LOAD_MISALIGNED,
    EXC_STORE_ACCESS_FAULT,
    EXC_STORE_MISALIGNED,
    PRV_M,
    PRV_U,
    TRAP_VECTOR,
    WORD_MASK,
    csr_is_read_only,
    csr_min_privilege,
)
from repro.rtl.coverage import ConditionCoverage
from repro.rtl.module import Module
from repro.rtl.report import CoverageReport
from repro.soc.caches import SetAssocCache
from repro.soc.predictor import BranchPredictor
from repro.soc.rocket.params import RocketParams
from repro.soc.rocket.tracer import Tracer
from repro.soc.rocket.uncore import DebugUnit, InterruptController

_LOAD_SIZE = {"lb": 1, "lbu": 1, "lh": 2, "lhu": 2, "lw": 4, "lwu": 4, "ld": 8}
_STORE_SIZE = {"sb": 1, "sh": 2, "sw": 4, "sd": 8}

#: mcause codes that have a dedicated comparator condition in the CSR unit.
_CAUSE_CONDITIONS = (0, 1, 2, 3, 4, 5, 6, 7, 8, 11)


class RunState:
    """Loop state of one :meth:`RocketCore.run` — the per-cycle step hook's
    working set.

    Everything the scalar run loop used to keep in locals lives here so
    that :meth:`RocketCore.step_cycle` can execute exactly one loop
    iteration at a time.  That is the shared per-instruction step hook the
    batched engine (``repro.soc.batch``) peels hard lanes to, exactly as
    ``golden.batch`` peels to ``step_instruction``: the batch side splices
    lane state into a :class:`RunState`, steps the retained scalar core,
    and splices the result back — hard-case semantics keep one
    implementation.
    """

    __slots__ = (
        "memory", "state", "trace", "handler_lo", "handler_hi",
        "iterations", "cycles", "traps_taken", "prev1", "prev2",
        "muldiv_busy_until", "store_buffer", "dep_chain", "prev_wrote_sp",
        "branch_taken_counts", "link_stack", "ra_saved", "branch_outcomes",
        "csrs_written", "last_muldiv_was_mul", "prev_was_cmp_rd",
    )


class RocketCore(Module):
    """In-order RV64IMA_Zicsr core with condition coverage (see module doc)."""

    def __init__(self, params: RocketParams | None = None) -> None:
        cov = ConditionCoverage()
        super().__init__("rocket", cov)
        self.params = params or RocketParams()
        p = self.params

        self.icache = self.child(
            SetAssocCache(
                "rocket.icache", cov,
                ways=p.icache_ways, sets=p.icache_sets, line_bytes=p.line_bytes,
                miss_penalty=p.icache_miss_penalty,
                writable=False,  # read-only port: no dirty-path conditions
            )
        )
        self.dcache = self.child(
            SetAssocCache(
                "rocket.dcache", cov,
                ways=p.dcache_ways, sets=p.dcache_sets, line_bytes=p.line_bytes,
                miss_penalty=p.dcache_miss_penalty,
            )
        )
        self.predictor = self.child(BranchPredictor("rocket.frontend.bpu", cov))
        self.tracer = self.child(Tracer("rocket.tracer", cov, p))
        self.debug = self.child(DebugUnit("rocket.dm", cov))
        self.irq = self.child(InterruptController("rocket.clint", cov))

        self._hit_streak = 0
        self._last_line: int | None = None

        self.conditions(
            # frontend
            "frontend.fetch_fault",
            "frontend.redirect",
            "frontend.line_cross",
            # decode
            "decode.is_alu_reg",
            "decode.is_alu_imm",
            "decode.is_lui",
            "decode.is_auipc",
            "decode.is_load",
            "decode.is_store",
            "decode.is_branch",
            "decode.is_jal",
            "decode.is_jalr",
            "decode.is_amo",
            "decode.is_lr",
            "decode.is_sc",
            "decode.is_muldiv",
            "decode.is_csr",
            "decode.is_system",
            "decode.is_fence",
            "decode.is_fencei",
            "decode.illegal",
            "decode.rd_x0",
            "decode.rs1_x0",
            "decode.word_op",
            # hazards / bypass network
            "hazard.raw_rs1_ex",
            "hazard.raw_rs2_ex",
            "hazard.raw_rs1_mem",
            "hazard.raw_rs2_mem",
            "hazard.load_use_stall",
            "hazard.muldiv_busy",
            "hazard.chain3",          # >=3-deep dependency chain in flight
            "hazard.chain5",          # >=5-deep dependency chain
            "hazard.sp_update_use",   # sp consumed right after an sp update
            "hazard.load_use_after_miss",  # load-use stall on a missing load
            # execute
            "execute.br_taken",
            "execute.br_backward",
            "execute.result_zero",
            "execute.result_negative",
            "execute.div_by_zero",
            "execute.div_overflow",
            "execute.mul_high",
            "execute.shift_zero_amount",
            "execute.beq_taken",       # equality branch actually taken
            "execute.link_reg_used",   # jal/jalr writing ra (call idiom)
            "execute.muldiv_chain",    # muldiv consuming a muldiv result
            "execute.div_after_mul",   # div issued in a mul's shadow
            "execute.branch_after_cmp",  # slt/sltu result branched on
            # CSR dataflow
            "csr.write_read_roundtrip",  # read of a CSR written this test
            "csr.mepc_user_write",       # explicit mepc write (not handler)
            "csr.mstatus_mpp_clear",     # mstatus write dropping MPP
            # memory unit
            "mem.misaligned",
            "mem.access_fault",
            "mem.is_amo_op",
            "mem.sc_success",
            "mem.reservation_set",
            "mem.storebuf_forward",
            "mem.storebuf_full",
            "mem.fencei_flush",
            "mem.fencei_dirty",
            "mem.base_is_sp",          # frame-pointer addressing idioms
            "mem.base_is_gp_tp",
            "mem.frame_access",        # sp-relative, small positive offset
            "mem.neg_offset_store",    # push-style store
            "mem.hit_streak4",         # >=4 consecutive D$ hits (locality)
            "mem.same_line_reuse",     # access to the line touched last
            # deep cache-controller FSM states: these need specific address
            # sequences (locality, conflict, spill/reload patterns) that
            # random instruction streams almost never form — the paper's
            # "hard-to-reach critical components"
            "mem.line_reuse3",         # same line touched 3+ times
            "mem.set_thrash",          # two lines of one set each touched 2+
            "mem.victim_revisit",      # access to a line evicted this test
            "mem.redirty",             # store to an already-dirty line
            "mem.coalesce",            # consecutive stores, same address
            "mem.cross_line_pair",     # adjacent-line streaming pair
            "mem.forward_depth2",      # store-buffer forward from older entry
            "mem.spill_reload",        # sp-slot store later reloaded
            "mem.sc_after_store_fail", # reservation broken by own store
            "mem.amo_chain",           # AMO result feeding the next AMO
            "mem.lr_replay",           # LR replacing a live reservation
            # frontend loop/call behaviour
            "frontend.loop_iteration",  # same branch PC taken twice
            "frontend.tight_loop",      # short backward taken branch
            "frontend.branch_both_ways",  # same branch seen taken AND not
            "frontend.call_return_pair",  # return to the live call link
            "frontend.call_depth2",       # nested call with ra spilled
            "frontend.jalr_to_link",      # indirect jump through a live link
            # CSR unit / trap logic
            "csr.trap_taken",
            *[f"csr.cause_is_{c}" for c in _CAUSE_CONDITIONS],
            "csr.write",
            "csr.read_only_violation",
            "csr.priv_violation",
            "csr.counter_read",
            "csr.mret",
            "csr.in_user_mode",
            "csr.enter_user",
            "csr.wfi",
        )
        cov.freeze()

        # Memoized group masks: the decode conditions are a pure function of
        # the instruction word and the trap-cause comparators of the cause,
        # so each group collapses to one packed-bitmap OR per evaluation
        # (ConditionCoverage.record_mask) after the first sighting.
        self._decode_mask_cache: dict[int, int] = {}
        self._trap_mask_cache: dict[int, int] = {}
        # The always-on hazard conditions are data-dependent (no memoizing),
        # but their per-arm bits can be prebound as (false_bit, true_bit)
        # pairs: the run loop indexes each pair with the condition's bool and
        # folds the whole group into one record_mask.
        self._hazard_pairs = tuple(
            (self.arm_bit(name, False), self.arm_bit(name, True))
            for name in (
                "hazard.raw_rs1_ex", "hazard.raw_rs2_ex",
                "hazard.raw_rs1_mem", "hazard.raw_rs2_mem",
                "hazard.load_use_stall", "hazard.muldiv_busy",
                "hazard.chain3", "hazard.chain5",
                "hazard.sp_update_use", "hazard.load_use_after_miss",
            )
        )

    # ------------------------------------------------------------------ run --

    def run(self, program: list[int], base: int = DRAM_BASE) -> tuple[CommitTrace, CoverageReport]:
        """Simulate one test program; returns (commit trace, coverage report)."""
        rs = self.begin_run(program, base)
        while self.step_cycle(rs):
            pass
        return self.finish_run(rs)

    def begin_run(self, program: list[int], base: int = DRAM_BASE,
                  memory: SparseMemory | None = None) -> RunState:
        """Reset the core and build the loop state for one run.

        ``memory`` lets the batched engine substitute a lane-arena-backed
        view; the default builds a fresh :class:`SparseMemory` with the
        program and trap handler loaded.
        """
        self.reset()
        self.cov.begin_run()

        rs = RunState()
        if memory is None:
            memory = SparseMemory()
            memory.load_program(program, base)
            memory.load_program(trap_handler_image(), TRAP_VECTOR)
        rs.memory = memory
        rs.state = ArchState(pc=base)
        rs.trace = CommitTrace()

        rs.handler_lo = TRAP_VECTOR
        rs.handler_hi = TRAP_VECTOR + 4 * len(trap_handler_image())

        rs.iterations = 0
        rs.cycles = 0
        rs.traps_taken = 0
        # (rd, was_load, was_muldiv) of the previous two retired instructions.
        rs.prev1 = (None, False, False)
        rs.prev2 = (None, False, False)
        rs.muldiv_busy_until = 0
        rs.store_buffer = []
        rs.dep_chain = 0
        rs.prev_wrote_sp = False
        rs.branch_taken_counts = {}
        self._hit_streak = 0
        self._last_line: int | None = None
        # Deep-FSM trackers (see the condition block in __init__).
        self._line_touches: dict[int, int] = {}
        self._evicted_lines: set[int] = set()
        self._last_store_addr: int | None = None
        self._sp_slots: set[int] = set()
        self._resv_addr: int | None = None
        self._resv_broken = False
        self._amo_rd: int | None = None
        self._amo_age = 0
        self._prev_load_missed = False
        rs.link_stack = []
        rs.ra_saved = False
        rs.branch_outcomes = {}
        rs.csrs_written = set()
        rs.last_muldiv_was_mul = False
        rs.prev_was_cmp_rd = None
        return rs

    def finish_run(self, rs: RunState) -> tuple[CommitTrace, CoverageReport]:
        """Seal a finished run into (commit trace, coverage report)."""
        rs.trace.cycles = rs.cycles
        return rs.trace, CoverageReport.from_coverage(self.cov, rs.cycles)

    def step_cycle(self, rs: RunState) -> bool:
        """Execute exactly one run-loop iteration (the shared step hook).

        Returns True while the run should continue; False once a stop
        reason has been recorded on ``rs.trace``.  One iteration is one
        fetch attempt: a retired instruction, or a trap entry.
        """
        p = self.params
        if rs.iterations >= p.max_steps:
            rs.trace.stop_reason = "max_steps"
            return False
        rs.iterations += 1

        state = rs.state
        memory = rs.memory
        trace = rs.trace
        pc = state.pc
        in_handler = rs.handler_lo <= pc < rs.handler_hi

        self.irq.poll()
        rs.cycles += 1  # base CPI of 1

        # ---------------- fetch (through the I$: Bug1 lives here) -------
        word, fetch_cycles, fault = self._fetch(pc, memory)
        rs.cycles += fetch_cycles
        if fault:
            rs.cycles += p.trap_penalty
            rs.traps_taken += 1
            self._trap_conditions(EXC_INSTR_ACCESS_FAULT)
            trace.append(TraceEntry(pc=pc, instr=0, priv=state.priv,
                                    trap_cause=EXC_INSTR_ACCESS_FAULT,
                                    trap_tval=pc))
            state.reservation = None
            state.pc = state.csr.enter_trap(
                EXC_INSTR_ACCESS_FAULT, pc, pc, state.priv)
            state.priv = PRV_M
            state.csr.tick()
            if rs.traps_taken >= p.max_traps:
                trace.stop_reason = "max_traps"
                return False
            return True

        # ---------------- decode ----------------------------------------
        instr = decode(word)
        self._decode_conditions(instr, word)
        if instr is None:
            rs.cycles += p.trap_penalty
            rs.traps_taken += 1
            self._trap_conditions(EXC_ILLEGAL_INSTRUCTION)
            trace.append(TraceEntry(pc=pc, instr=word, priv=state.priv,
                                    trap_cause=EXC_ILLEGAL_INSTRUCTION,
                                    trap_tval=word))
            state.reservation = None
            state.pc = state.csr.enter_trap(
                EXC_ILLEGAL_INSTRUCTION, pc, word, state.priv)
            state.priv = PRV_M
            state.csr.tick()
            if rs.traps_taken >= p.max_traps:
                trace.stop_reason = "max_traps"
                return False
            return True

        spec = instr.spec

        # ---------------- hazards ---------------------------------------
        # Condition values are computed up front, the timing bookkeeping
        # runs on them, and the whole group is recorded as one packed
        # mask (recording has no side effects, so ordering is free).
        rs1 = instr.rs1 if spec.reads_rs1 else None
        rs2 = instr.rs2 if spec.reads_rs2 else None
        raw1_ex = rs1 is not None and rs1 != 0 and rs1 == rs.prev1[0]
        raw2_ex = rs2 is not None and rs2 != 0 and rs2 == rs.prev1[0]
        load_use = (raw1_ex or raw2_ex) and rs.prev1[1]
        if load_use:
            rs.cycles += 1
        muldiv_stall = spec.is_muldiv and rs.cycles < rs.muldiv_busy_until
        if muldiv_stall:
            rs.cycles = rs.muldiv_busy_until
        if raw1_ex or raw2_ex:
            rs.dep_chain += 1
        else:
            rs.dep_chain = 1 if spec.writes_rd else 0
        (p_raw1_ex, p_raw2_ex, p_raw1_mem, p_raw2_mem, p_load_use,
         p_muldiv, p_chain3, p_chain5, p_sp_use, p_lu_miss,
         ) = self._hazard_pairs
        self.cov.record_mask(
            p_raw1_ex[raw1_ex]
            | p_raw2_ex[raw2_ex]
            | p_raw1_mem[rs1 is not None and rs1 != 0 and rs1 == rs.prev2[0]]
            | p_raw2_mem[rs2 is not None and rs2 != 0 and rs2 == rs.prev2[0]]
            | p_load_use[load_use]
            | p_muldiv[muldiv_stall]
            | p_chain3[rs.dep_chain >= 3]
            | p_chain5[rs.dep_chain >= 5]
            | p_sp_use[bool(rs.prev_wrote_sp and rs1 == 2)]
            | p_lu_miss[bool(load_use and self._prev_load_missed)]
        )
        rs.prev_wrote_sp = spec.writes_rd and instr.rd == 2
        if spec.is_muldiv:
            self.cond("execute.muldiv_chain",
                      (raw1_ex or raw2_ex) and rs.prev1[2])
            divlike_now = spec.mnemonic.startswith(("div", "rem"))
            self.cond("execute.div_after_mul",
                      divlike_now and rs.last_muldiv_was_mul
                      and rs.cycles < rs.muldiv_busy_until + p.mul_latency)
            rs.last_muldiv_was_mul = not divlike_now

        # CSR-unit pre-checks (access legality conditions).
        if spec.is_csr:
            self.cond("csr.read_only_violation",
                      csr_is_read_only(instr.csr)
                      and not (spec.mnemonic in ("csrrs", "csrrc") and instr.rs1 == 0)
                      and not (spec.mnemonic in ("csrrsi", "csrrci") and instr.zimm == 0))
            self.cond("csr.priv_violation",
                      state.priv < csr_min_privilege(instr.csr))
            self.cond("csr.counter_read",
                      instr.csr in (CSR_CYCLE, CSR_TIME, CSR_INSTRET))
        self.cond("csr.in_user_mode", state.priv == PRV_U)

        # ---------------- execute ---------------------------------------
        predicted = False
        if spec.is_branch:
            predicted = self.predictor.predict(pc)
        prv_before = state.priv
        try:
            result = execute(state, memory, instr, pc)
        except Trap as trap:
            trap = self._adjust_trap_priority(trap, instr, memory)
            rs.cycles += p.trap_penalty
            rs.traps_taken += 1
            self._trap_conditions(trap.cause)
            self._mem_fault_conditions(instr, trap)
            trace.append(TraceEntry(pc=pc, instr=word, priv=prv_before,
                                    trap_cause=trap.cause,
                                    trap_tval=trap.tval))
            state.reservation = None
            rs.store_buffer.clear()
            state.pc = state.csr.enter_trap(trap.cause, pc, trap.tval, prv_before)
            state.priv = PRV_M
            state.csr.tick()
            rs.prev1, rs.prev2 = (None, False, False), rs.prev1
            if rs.traps_taken >= p.max_traps:
                trace.stop_reason = "max_traps"
                return False
            return True

        self.cond("csr.trap_taken", False)
        rs.cycles += self._execute_conditions(instr, result, state, pc)
        rs.cycles += self._memory_model(instr, result, memory, rs.store_buffer)

        if spec.is_branch:
            taken = result.next_pc != (pc + 4) & WORD_MASK
            self.predictor.update(pc, taken, predicted)
            if taken != predicted:
                rs.cycles += p.mispredict_penalty
            if taken:
                rs.branch_taken_counts[pc] = rs.branch_taken_counts.get(pc, 0) + 1
            self.cond("frontend.loop_iteration",
                      taken and rs.branch_taken_counts.get(pc, 0) >= 2)
            self.cond("frontend.tight_loop",
                      taken and -64 <= instr.imm < 0)
            self.cond("execute.beq_taken",
                      spec.mnemonic == "beq" and taken)
            outcomes = rs.branch_outcomes.setdefault(pc, set())
            outcomes.add(taken)
            self.cond("frontend.branch_both_ways", len(outcomes) == 2)
            self.cond("execute.branch_after_cmp",
                      rs.prev_was_cmp_rd is not None
                      and rs.prev_was_cmp_rd in (instr.rs1, instr.rs2))
        if spec.is_jump:
            self.cond("execute.link_reg_used", instr.rd == 1)
            if spec.mnemonic == "jal" and instr.rd == 1:
                self.cond("frontend.call_depth2",
                          rs.ra_saved and bool(rs.link_stack))
                rs.link_stack.append((pc + 4) & WORD_MASK)
                del rs.link_stack[:-8]
            if spec.mnemonic == "jalr":
                via_link = instr.rs1 == 1 and bool(rs.link_stack)
                self.cond("frontend.jalr_to_link", via_link)
                is_return = (
                    via_link and instr.rd == 0
                    and rs.link_stack and result.next_pc == rs.link_stack[-1]
                )
                self.cond("frontend.call_return_pair", is_return)
                if is_return:
                    rs.link_stack.pop()
        rs.prev_was_cmp_rd = (
            instr.rd
            if spec.mnemonic in ("slt", "sltu", "slti", "sltiu") and instr.rd
            else None
        )
        if spec.is_store and instr.rs2 == 1:
            rs.ra_saved = True
        elif spec.is_load and instr.rd == 1:
            rs.ra_saved = False
        if spec.is_csr:
            self.cond("csr.write_read_roundtrip",
                      not in_handler and instr.csr in rs.csrs_written)
            will_write = result.csr_write is not None
            self.cond("csr.mepc_user_write",
                      not in_handler and will_write
                      and instr.csr == CSR_MEPC)
            mpp_cleared = (
                will_write and instr.csr == CSR_MSTATUS
                and result.csr_write[1] & 0x1800 == 0
            )
            self.cond("csr.mstatus_mpp_clear", mpp_cleared)
            if will_write and not in_handler:
                rs.csrs_written.add(instr.csr)
        self.cond("frontend.redirect",
                  result.next_pc != (pc + 4) & WORD_MASK)

        if spec.mnemonic == "fence.i":
            dirty = any(
                line.dirty for ways in self.dcache.lines for line in ways
            )
            self.cond("mem.fencei_flush", True)
            self.cond("mem.fencei_dirty", dirty)
            self.icache.invalidate_all()
            rs.cycles += p.fencei_penalty
        elif spec.is_fence:
            self.cond("mem.fencei_flush", False)

        self.cond("csr.mret", spec.mnemonic == "mret")
        self.cond("csr.enter_user",
                  spec.mnemonic == "mret" and state.priv == PRV_U)
        self.cond("csr.wfi", result.halt)
        self.cond("csr.write", result.csr_write is not None)

        # ---------------- retire ----------------------------------------
        if not in_handler:
            trace.append(self.tracer.retire(pc, instr, prv_before, result))
        if spec.is_muldiv:
            latency = (
                p.div_latency if spec.mnemonic.startswith(("div", "rem"))
                else p.mul_latency
            )
            rs.muldiv_busy_until = rs.cycles + latency
        rs.prev1, rs.prev2 = (
            (result.rd if result.rd else None, spec.is_load, spec.is_muldiv),
            rs.prev1,
        )
        state.pc = result.next_pc & WORD_MASK
        state.csr.tick()
        if p.timed_counter_csr:
            # Expose the timed cycle count through mcycle — realistic,
            # but a false-positive source vs. the untimed golden model.
            delta = rs.cycles - state.csr.raw_read(CSR_MCYCLE)
            if delta > 0:
                state.csr.tick(cycles=delta, instret=0)
        if result.halt:
            trace.stop_reason = "wfi"
            return False
        return True

    # ---------------------------------------------------------------- fetch --

    def _fetch(self, pc: int, memory: SparseMemory) -> tuple[int, int, bool]:
        """Fetch through the I$. Returns (word, extra_cycles, fault).

        With ``bug1_fencei`` enabled, a cached line is served even when the
        backing memory has since been modified — the stale-instruction
        behaviour behind CWE-1202.
        """
        if not memory.is_mapped(pc, 4):
            self.cond("frontend.fetch_fault", True)
            return 0, 0, True
        self.cond("frontend.fetch_fault", False)
        self.cond("frontend.line_cross",
                  (pc & (self.icache.line_bytes - 1)) == self.icache.line_bytes - 4)
        line = self.icache.lookup(pc)
        if line is None:
            self.icache.refill(pc, memory.read_bytes)
            cached = self.icache.read_cached(pc, 4)
            return int.from_bytes(cached, "little"), self.icache.miss_penalty, False
        cached = self.icache.read_cached(pc, 4)
        if not self.params.bug1_fencei:
            # Clean core: I$ snoops stores, so always serve fresh memory.
            return int.from_bytes(memory.read_bytes(pc, 4), "little"), 0, False
        return int.from_bytes(cached, "little"), 0, False

    # ------------------------------------------------------------- conditions --

    def _decode_conditions(self, instr, word: int) -> None:
        """Record the decode-stage condition group — one OR per instruction.

        All 23 decode conditions are a pure function of the fetched word, so
        the group's packed arm mask is built once per distinct word and then
        folded with a single ``record_mask``.
        """
        self.record_keyed_group(self._decode_mask_cache, word,
                                self._decode_mask, instr)

    def _decode_mask(self, instr) -> int:
        spec = instr.spec if instr is not None else None
        m = spec.mnemonic if spec else ""
        arm = self.arm_bit
        mask = arm("decode.illegal", instr is None)
        mask |= arm("decode.is_alu_reg", spec is not None and spec.fmt == "R"
                    and not spec.is_muldiv)
        mask |= arm("decode.is_alu_imm", spec is not None
                    and spec.fmt in ("I", "I_SHIFT64", "I_SHIFT32")
                    and not (spec.is_load or spec.is_jump))
        mask |= arm("decode.is_lui", m == "lui")
        mask |= arm("decode.is_auipc", m == "auipc")
        mask |= arm("decode.is_load", spec is not None and spec.is_load)
        mask |= arm("decode.is_store", spec is not None and spec.is_store)
        mask |= arm("decode.is_branch", spec is not None and spec.is_branch)
        mask |= arm("decode.is_jal", m == "jal")
        mask |= arm("decode.is_jalr", m == "jalr")
        mask |= arm("decode.is_amo", spec is not None and spec.is_amo
                    and not m.startswith(("lr.", "sc.")))
        mask |= arm("decode.is_lr", m.startswith("lr."))
        mask |= arm("decode.is_sc", m.startswith("sc."))
        mask |= arm("decode.is_muldiv", spec is not None and spec.is_muldiv)
        mask |= arm("decode.is_csr", spec is not None and spec.is_csr)
        mask |= arm("decode.is_system", spec is not None and spec.is_system)
        mask |= arm("decode.is_fence", m == "fence")
        mask |= arm("decode.is_fencei", m == "fence.i")
        mask |= arm("decode.rd_x0", spec is not None and spec.writes_rd
                    and instr.rd == 0)
        mask |= arm("decode.rs1_x0", spec is not None and spec.reads_rs1
                    and instr.rs1 == 0)
        word_op = spec is not None and (
            (m.endswith("w") and m not in ("lw", "sw", "lwu", "lhu"))
            or m.endswith(".w")
        )
        mask |= arm("decode.word_op", word_op)
        return mask

    def _execute_conditions(self, instr, result, state, pc: int) -> int:
        """Record execute-stage conditions; returns extra cycles."""
        spec = instr.spec
        extra = 0
        if spec.is_branch:
            taken = result.next_pc != (pc + 4) & WORD_MASK
            self.cond("execute.br_taken", taken)
            self.cond("execute.br_backward", instr.imm < 0)
        if result.rd is not None and result.rd != 0:
            self.cond("execute.result_zero", result.rd_value == 0)
            self.cond("execute.result_negative", bool(result.rd_value >> 63))
        if spec.is_muldiv:
            m = spec.mnemonic
            divlike = m.startswith(("div", "rem"))
            if divlike:
                divisor = state.read_reg(instr.rs2)
                self.cond("execute.div_by_zero", divisor == 0)
                dividend = state.read_reg(instr.rs1)
                self.cond(
                    "execute.div_overflow",
                    divisor == WORD_MASK and dividend == 1 << 63,
                )
                extra += self.params.div_latency
            else:
                self.cond("execute.mul_high", m in ("mulh", "mulhsu", "mulhu"))
                extra += self.params.mul_latency
        if spec.fmt in ("I_SHIFT64", "I_SHIFT32"):
            self.cond("execute.shift_zero_amount", instr.shamt == 0)
        return extra

    def _memory_model(self, instr, result, memory, store_buffer: list[int]) -> int:
        """D$-side modelling for a successfully executed instruction."""
        spec = instr.spec
        # SC conditions must also fire for *failed* SCs, which perform no
        # memory operation at all.
        if spec.mnemonic.startswith("sc."):
            failed = result.rd_value != 0
            self.cond("mem.sc_success", not failed)
            self.cond("mem.sc_after_store_fail", failed and self._resv_broken)
            self._resv_addr = None
            self._resv_broken = False
        if result.mem is None:
            return 0
        extra = 0
        addr = result.mem.addr
        self.cond("mem.misaligned", False)
        self.cond("mem.access_fault", False)
        self.cond("mem.is_amo_op", spec.is_amo)
        self.cond("mem.reservation_set", spec.mnemonic.startswith("lr."))
        # Addressing-idiom and locality conditions.
        imm = instr.imm if not spec.is_amo else 0
        is_store = result.mem.is_store
        self.cond("mem.base_is_sp", instr.rs1 == 2)
        self.cond("mem.base_is_gp_tp", instr.rs1 in (3, 4))
        self.cond("mem.frame_access", instr.rs1 == 2 and 0 <= imm < 64)
        self.cond("mem.neg_offset_store", is_store and imm < 0)
        line_key = addr // self.dcache.line_bytes
        self.cond("mem.same_line_reuse", line_key == self._last_line)
        self.cond("mem.cross_line_pair",
                  self._last_line is not None
                  and abs(line_key - self._last_line) == 1)
        self._last_line = line_key

        # Line-reuse / conflict FSM tracking.
        touches = self._line_touches
        touches[line_key] = touches.get(line_key, 0) + 1
        self.cond("mem.line_reuse3", touches[line_key] >= 3)
        set_idx = self.dcache.set_index(addr)
        same_set_hot = [
            key for key, count in touches.items()
            if count >= 2 and self.dcache.set_index(key * self.dcache.line_bytes) == set_idx
        ]
        self.cond("mem.set_thrash",
                  touches[line_key] >= 2 and len(same_set_hot) >= 2)
        self.cond("mem.victim_revisit", line_key in self._evicted_lines)
        self.cond("mem.redirty", is_store and self.dcache.is_dirty(addr))
        self.cond("mem.coalesce", is_store and addr == self._last_store_addr)
        if is_store:
            self._last_store_addr = addr

        # Spill/reload: sp-relative store slot later loaded back.
        if instr.rs1 == 2 and not spec.is_amo:
            if is_store:
                self._sp_slots.add(addr)
                self.cond("mem.spill_reload", False)
            else:
                self.cond("mem.spill_reload", addr in self._sp_slots)

        # LR reservation FSM (the SC side is handled above, before the
        # early-return, so failed SCs participate too).
        m = spec.mnemonic
        if m.startswith("lr."):
            self.cond("mem.lr_replay", self._resv_addr is not None)
            self._resv_addr = addr
            self._resv_broken = False
        elif is_store and not m.startswith("sc.") and addr == self._resv_addr:
            self._resv_broken = True
            self._resv_addr = None

        # Chained atomics.
        if spec.is_amo and not m.startswith(("lr.", "sc.")):
            self.cond("mem.amo_chain",
                      self._amo_rd is not None and self._amo_age <= 4
                      and self._amo_rd in (instr.rs1, instr.rs2))
            if result.rd:
                self._amo_rd = result.rd
                self._amo_age = 0
        self._amo_age += 1

        line = self.dcache.lookup(addr)
        if line is not None:
            self._hit_streak += 1
        else:
            self._hit_streak = 0
        self.cond("mem.hit_streak4", self._hit_streak >= 4)
        if line is None:
            self.dcache.refill(addr, memory.read_bytes)
            if self.dcache.last_evicted is not None:
                self._evicted_lines.add(self.dcache.last_evicted)
            extra += self.dcache.miss_penalty
        self._prev_load_missed = spec.is_load and line is None
        if result.mem.is_store:
            data = result.mem.data.to_bytes(result.mem.size, "little")
            self.dcache.update_stored_line(addr, data)
            self.cond("mem.storebuf_full",
                      len(store_buffer) >= self.params.store_buffer_depth)
            if len(store_buffer) >= self.params.store_buffer_depth:
                extra += 1
                store_buffer.pop(0)
            store_buffer.append(addr)
        else:
            self.cond("mem.storebuf_forward", addr in store_buffer)
            if store_buffer:
                store_buffer.pop(0)
        return extra

    def _trap_conditions(self, cause: int) -> None:
        """Record the trap-entry condition group — mask memoized per cause."""
        self.record_keyed_group(self._trap_mask_cache, cause,
                                self._trap_mask, cause)

    def _trap_mask(self, cause: int) -> int:
        mask = self.arm_bit("csr.trap_taken", True)
        for c in _CAUSE_CONDITIONS:
            mask |= self.arm_bit(f"csr.cause_is_{c}", cause == c)
        return mask

    def _mem_fault_conditions(self, instr, trap: Trap) -> None:
        if instr is None or not instr.spec.is_memory:
            return
        self.cond("mem.misaligned",
                  trap.cause in (EXC_LOAD_MISALIGNED, EXC_STORE_MISALIGNED))
        self.cond("mem.access_fault",
                  trap.cause in (EXC_LOAD_ACCESS_FAULT, EXC_STORE_ACCESS_FAULT))

    # ----------------------------------------------------------- Finding1 ----

    def _adjust_trap_priority(self, trap: Trap, instr, memory: SparseMemory) -> Trap:
        """Finding1: report access-fault when an access is misaligned *and*
        unmapped (the spec — and golden model — prioritise misaligned)."""
        if not self.params.finding1_trap_priority or instr is None:
            return trap
        spec = instr.spec
        if not spec.is_memory:
            return trap
        if trap.cause == EXC_LOAD_MISALIGNED:
            size = _LOAD_SIZE.get(spec.mnemonic, 4 if spec.mnemonic.endswith(".w") else 8)
            if not memory.is_mapped(trap.tval, size):
                return Trap(EXC_LOAD_ACCESS_FAULT, tval=trap.tval)
        elif trap.cause == EXC_STORE_MISALIGNED:
            size = _STORE_SIZE.get(spec.mnemonic, 4 if spec.mnemonic.endswith(".w") else 8)
            if not memory.is_mapped(trap.tval, size):
                return Trap(EXC_STORE_ACCESS_FAULT, tval=trap.tval)
        return trap
