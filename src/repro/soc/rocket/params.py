"""Configuration for the RocketCore model: geometry, latencies, bug switches."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RocketParams:
    """Elaboration-time parameters of :class:`~repro.soc.rocket.core.RocketCore`.

    The bug flags default to True because the paper's DUT *contains* these
    behaviours; tests and ablations flip them off to obtain a clean core.
    """

    # Cache geometry (RocketCore defaults scaled down: 2-way, 8 sets, 32 B).
    icache_ways: int = 2
    icache_sets: int = 8
    dcache_ways: int = 2
    dcache_sets: int = 8
    line_bytes: int = 32

    # Latencies, in cycles (timing model; see DESIGN.md §5).
    icache_miss_penalty: int = 20
    dcache_miss_penalty: int = 20
    dirty_evict_penalty: int = 8
    mul_latency: int = 4
    div_latency: int = 20
    mispredict_penalty: int = 3
    trap_penalty: int = 5
    fencei_penalty: int = 10

    # Execution limits (match the golden SimConfig defaults).
    max_steps: int = 4096
    max_traps: int = 64

    # Store buffer depth.
    store_buffer_depth: int = 2

    #: When True, CSR reads of cycle/time expose the *timed* cycle count,
    #: which legitimately differs from the untimed golden model — the classic
    #: differential-testing false positive that mismatch filters remove
    #: (paper §IV-A).  Default False: counters are virtualised to match the
    #: golden model, as co-simulation environments (Chipyard DiffTest) do.
    timed_counter_csr: bool = False

    # --- injected paper behaviours -----------------------------------------
    bug1_fencei: bool = True          # CWE-1202 stale I$ without FENCE.I
    bug2_tracer_muldiv: bool = True   # CWE-440 missing mul/div trace write-back
    finding1_trap_priority: bool = True  # access-fault over misaligned
    finding2_amo_x0_trace: bool = True   # AMO rd=x0 shows data in trace
    finding3_x0_trace: bool = True       # spurious x0 writes in trace

    @classmethod
    def clean(cls) -> "RocketParams":
        """A bug-free Rocket (used to validate trace equivalence vs golden)."""
        return cls(
            bug1_fencei=False,
            bug2_tracer_muldiv=False,
            finding1_trap_priority=False,
            finding2_amo_x0_trace=False,
            finding3_x0_trace=False,
        )
