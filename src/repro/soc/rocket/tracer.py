"""Commit tracer with the paper's trace-layer bugs injected.

The tracer turns retired-instruction effects into :class:`TraceEntry`
records — RocketCore's equivalent of its trace port.  Three of the paper's
findings live *here*, in the trace layer, not in the datapath:

- **Bug2 (CWE-440)**: MUL/DIV write-backs are omitted from the trace even
  though the register file is updated correctly.
- **Finding2**: AMOs with ``rd = x0`` emit a trace record showing the loaded
  data "arriving" at x0.
- **Finding3**: a ``jalr x0`` retiring immediately after a load emits a
  spurious x0 write-back record.
"""

from __future__ import annotations

from repro.golden.executor import ExecResult
from repro.golden.trace import TraceEntry
from repro.isa.decoder import DecodedInstr
from repro.rtl.coverage import ConditionCoverage
from repro.rtl.module import Module
from repro.soc.rocket.params import RocketParams


class Tracer(Module):
    """Trace-port model; see module docstring for the injected behaviours."""

    def __init__(self, path: str, cov: ConditionCoverage, params: RocketParams):
        super().__init__(path, cov)
        self.params = params
        self._prev_was_load = False
        self.conditions(
            "emit_rd",
            "suppress_muldiv",   # Bug2 activation
            "x0_amo_quirk",      # Finding2 activation
            "x0_jalr_quirk",     # Finding3 activation
        )

    def reset(self) -> None:
        super().reset()
        self._prev_was_load = False

    def retire(
        self,
        pc: int,
        instr: DecodedInstr,
        priv: int,
        result: ExecResult,
    ) -> TraceEntry:
        """Build the trace record for one retired instruction."""
        spec = instr.spec
        rd: int | None = result.rd if result.rd not in (None, 0) else None
        rd_value = result.rd_value if rd is not None else 0

        suppress = self.params.bug2_tracer_muldiv and spec.is_muldiv
        self.cond("suppress_muldiv", suppress)
        if suppress:
            rd = None
            rd_value = 0

        amo_quirk = (
            self.params.finding2_amo_x0_trace
            and spec.is_amo
            and not spec.mnemonic.startswith(("lr.", "sc."))
            and result.rd == 0
        )
        self.cond("x0_amo_quirk", amo_quirk)
        if amo_quirk:
            rd = 0
            rd_value = result.rd_value

        jalr_quirk = (
            self.params.finding3_x0_trace
            and spec.mnemonic == "jalr"
            and instr.rd == 0
            and self._prev_was_load
        )
        self.cond("x0_jalr_quirk", jalr_quirk)
        if jalr_quirk:
            rd = 0
            rd_value = (pc + 4) & 0xFFFF_FFFF_FFFF_FFFF

        self.cond("emit_rd", rd is not None)
        self._prev_was_load = spec.is_load
        return TraceEntry(
            pc=pc,
            instr=instr.raw,
            priv=priv,
            rd=rd,
            rd_value=rd_value,
            mem=result.mem,
            csr_write=result.csr_write,
        )
