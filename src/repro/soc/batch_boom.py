"""Batched structure-of-arrays DUT execution for the BOOM core model.

``repro.soc.batch`` vectorised RocketCore; this module closes the SoC
matrix by doing the same for :class:`~repro.soc.boom.core.BoomCore`, so a
fleet mixing Rocket and BOOM arms is vector-fast on both sides.  A
:class:`BoomBatchSimulator` runs N test programs as lockstep numpy lanes
through the superscalar model — the same arena/dispatch-table substrate,
per-lane coverage bitmap matrix and peel bridge as the Rocket engine
(which it subclasses), with the kernels swapped for what the out-of-order
pipeline actually models:

- **Occupancy drain columns.**  BOOM is a two-wide machine: ROB / issue
  queue / load-store queue / free-list occupancies fill with the previous
  instruction's stall cycles and drain every other retirement.  These are
  per-lane int64 columns mutated by masked kernels in exactly the scalar
  order (drain, rename, issue, ROB, LSU), because the full/empty coverage
  conditions read them mid-update.
- **SoA front end.**  Fetch-buffer occupancy conditions read the
  post-drain ROB column; the branch predictor/BTB is the same per-lane
  valid/pc/ctr plane as the Rocket engine with masked probe (decode) and
  update (execute) kernels; the return-address stack collapses to a depth
  column — the stacked values are provably dead (only ``len(ras)`` feeds
  conditions; pops discard the value), so a depth vector is exact.
- **Executed trap-handler columns with an analytic clean-handler
  fast-forward.**  As for Rocket, the handler image is appended to the
  dispatch table and can run as ordinary vector rounds with trace emission
  suppressed.  A trap whose handler is pristine (``handler_ok``) and whose
  mtvec still targets it is instead fast-forwarded at trap entry
  (:meth:`_BoomLaneGroup._handler_skip`): the six-step occupancy walk is
  unrolled over the trap lanes (the queue levels *do* depend on entry
  state, so unlike Rocket's closed form the walk is replayed — but as six
  cheap vector steps over the trap subset instead of six full rounds over
  every active lane), the I$ runs its real kernel once per handler line,
  and the constant decode/hazard/system arms fold into one cached row.
- **Lane-wise coverage.**  Every scalar recording site folds to a
  compiled ``_CondBlock`` scatter into the per-lane packed bitmap matrix,
  bit-identical to the scalar core's ``record_mask`` stream.

Rare/hard events — atomics, misaligned fetch — peel single lanes to the
retained scalar core via the shared per-cycle step hook
(:meth:`~repro.soc.boom.core.BoomCore.step_cycle`): lane state is spliced
into a :class:`~repro.soc.boom.core.BoomRunState`, the scalar core steps
until the lane can rejoin, and the result is spliced back.

Parity — traces *and* coverage reports, at every lane width, including the
peel/fallback paths — is pinned by ``tests/soc/test_batch_boom.py``.
"""

from __future__ import annotations

from repro.golden.csr import (
    MSTATUS_MIE,
    MSTATUS_MPIE,
    MSTATUS_MPP_MASK,
    MSTATUS_MPP_SHIFT,
)
from repro.golden.batch import F_IMM, K_AMO, K_ILLEGAL, K_MRET, K_PEEL
from repro.isa import spec
from repro.soc.batch import (
    DEFAULT_LANES,
    LANE_MIN,
    M_BRANCH,
    M_DIVLIKE,
    M_JALR,
    M_JUMP,
    M_MEM,
    M_MULDIV,
    M_MULHI,
    M_RS1READ,
    M_RS2READ,
    M_WRD,
    DutBatchSimulator,
    _DutLaneGroup,
    _nz1,
)
from repro.soc.boom.core import BoomCore
from repro.soc.boom.params import BoomParams

try:
    import numpy as _np
except ImportError:  # pragma: no cover - the CI image always has numpy
    _np = None

__all__ = ["BoomBatchSimulator", "DEFAULT_LANES", "LANE_MIN"]


#: Compiled-site specs (see ``repro.soc.batch._CondBlock``): ``"D"``
#: dynamic, ``"G"`` gated, bool literal constant.  Gates are passed in
#: gated-item order.

# fetch plane: fault arm, I$ probe/refill, fetch-buffer occupancy.
_BIC_SPEC = (
    ("boom.frontend.fetch_fault", False),
    ("boom.icache.hit", "D"),
    ("boom.icache.refill", "D"),
    ("boom.icache.hit_way0", "G"),
    ("boom.icache.hit_way1", "G"),
    ("boom.icache.set_conflict", "G"),
    ("boom.icache.evict_valid", "G"),
    ("boom.frontend.fb_empty", "D"),
    ("boom.frontend.fb_full", "D"),
)

# decode/rename/issue/ROB/RAS stage + predictor probe — runs for every
# decoded lane, including lanes that later trap in execute.
_BDSTAGE_SPEC = (
    ("boom.rename.rd_x0", "G"),
    ("boom.rename.waw_remap", "G"),
    ("boom.rename.freelist_low", "D"),
    ("boom.rename.stall_freelist", "D"),
    ("boom.issue.iq_full", "D"),
    ("boom.issue.iq_empty", "D"),
    ("boom.issue.rs1_ready", "D"),
    ("boom.issue.rs2_ready", "D"),
    ("boom.issue.wakeup_bypass", "D"),
    ("boom.rob.full", "D"),
    ("boom.rob.empty", "D"),
    ("boom.rob.commit_two", "D"),
    ("boom.frontend.ras_push", "D"),
    ("boom.frontend.ras_pop", "D"),
    ("boom.frontend.ras_overflow", "G"),
    ("boom.frontend.ras_underflow", "G"),
    ("boom.csr.in_user_mode", "D"),
    ("boom.bpu.btb_hit", "G"),
    ("boom.bpu.btb_alias", "G"),
    ("boom.bpu.pred_taken", "G"),
)

# execute-raised traps: ROB flush pair always, LSU fault pair for memory ops.
_BTRAP_SPEC = (
    ("boom.rob.exception_at_head", True),
    ("boom.rob.flush", True),
    ("boom.lsu.misaligned", "G"),
    ("boom.lsu.access_fault", "G"),
)

# successfully executed lanes: branch resolution + BTB update, muldiv,
# result and system arms.
_BEXEC_SPEC = (
    ("boom.csr.trap_taken", False),
    ("boom.rob.exception_at_head", False),
    ("boom.execute.br_taken", "G"),
    ("boom.execute.br_backward", "G"),
    ("boom.bpu.mispredict", "G"),
    ("boom.bpu.update_new_entry", "G"),
    ("boom.bpu.ctr_saturated_taken", "G"),
    ("boom.bpu.ctr_saturated_not_taken", "G"),
    ("boom.rob.flush", "G"),
    ("boom.execute.div_by_zero", "G"),
    ("boom.execute.mul_high", "G"),
    ("boom.execute.result_zero", "G"),
    ("boom.csr.write", "D"),
    ("boom.csr.mret", "D"),
    ("boom.csr.wfi", "D"),
)

# collapsed I$ record for the 2nd..nth sequential handler fetch of one
# line: always a hit of the way the first access left the line in, and a
# refill never drains the fetch buffer again.
_BIC_COLLAPSE_SPEC = (
    ("boom.frontend.fetch_fault", False),
    ("boom.icache.hit", True),
    ("boom.icache.refill", False),
    ("boom.icache.hit_way0", "G"),
    ("boom.icache.hit_way1", "G"),
    ("boom.frontend.fb_empty", False),
)

# per-step occupancy arms of the handler fast-forward walk (see
# ``_handler_skip``): these six conditions read queue levels mid-update,
# so each of the six unrolled steps contributes its own dynamic values.
_BHSKIP_STEP = (
    ("boom.rename.freelist_low", "D"),
    ("boom.rename.stall_freelist", "D"),
    ("boom.issue.iq_full", "D"),
    ("boom.issue.iq_empty", "D"),
    ("boom.rob.full", "D"),
    ("boom.rob.empty", "D"),
)

# LSU + D$ for non-trapping memory lanes.  Atomics (lr/sc/amo) always
# peel, so the reservation/misalignment arms are constant-false here and
# ``sc_success`` never records on the vector path.
_BLSU_SPEC = (
    ("boom.lsu.stq_full", "G"),
    ("boom.lsu.ldq_full", "G"),
    ("boom.lsu.stl_forward", "G"),
    ("boom.lsu.misaligned", False),
    ("boom.lsu.access_fault", False),
    ("boom.lsu.reservation_set", False),
    ("boom.dcache.hit", "D"),
    ("boom.dcache.refill", "D"),
    ("boom.dcache.hit_way0", "G"),
    ("boom.dcache.hit_way1", "G"),
    ("boom.dcache.set_conflict", "G"),
    ("boom.dcache.evict_valid", "G"),
    ("boom.dcache.evict_dirty", "G"),
    ("boom.dcache.mark_dirty", "G"),
)


class BoomBatchSimulator(DutBatchSimulator):
    """Structure-of-arrays batch DUT for BOOM, scalar-identical.

    >>> batch = BoomBatchSimulator(lanes=32)
    >>> results = batch.run_batch([prog0, prog1, ...])   # doctest: +SKIP

    ``run_batch`` returns one ``(CommitTrace, CoverageReport)`` pair per
    program — the same tuple ``BoomCore.run`` produces, bit-identical.
    """

    _CORE_CLS = BoomCore
    _PARAMS_CLS = BoomParams

    def _group(self, chunk, base: int):
        return _BoomLaneGroup(self, chunk, base)


class _BoomLaneGroup(_DutLaneGroup):
    """One lockstep group of BOOM lanes.

    Subclasses the Rocket lane group for the shared substrate — arena,
    widened dispatch table with handler columns, per-word metadata planes,
    covmat, SoA caches/BTB, splice/peel scaffolding, trace columns — and
    replaces the run-state trackers, the round kernel and the splice
    bridge with the out-of-order model's.
    """

    def _init_extra(self, g: int) -> None:
        """BOOM's vectorised run-state trackers (spliced on peel)."""
        np = _np
        self.rob_occ = np.zeros(g, dtype=np.int64)
        self.iq_occ = np.zeros(g, dtype=np.int64)
        self.busy_reg = np.zeros(g, dtype=np.int64)     # busy_phys
        self.ldq_occ = np.zeros(g, dtype=np.int64)
        self.stq_occ = np.zeros(g, dtype=np.int64)
        self.rsd = np.zeros(g, dtype=np.int64)          # retired_since_drain
        self.last_stall = np.zeros(g, dtype=np.int64)
        self.prev_rd = np.full(g, -1, dtype=np.int64)   # -1 == None
        self.ras_depth = np.zeros(g, dtype=np.int64)
        self.renamed = np.zeros((g, 32), dtype=bool)

        # -- analytic trap-handler fast-forward (see _handler_skip) --------
        # Decode rows, rename targets and I$ line geometry of the pristine
        # handler image, captured at build time (handler_ok gates dirty
        # lanes off the fast path, so the snapshot stays valid for every
        # lane that uses it).
        hslots = range(self.ncode, self.ncode + self.nhandler)
        dmr = self._dm_matrix()[self.dmidx[0, self.ncode:
                                           self.ncode + self.nhandler]]
        self._bhskip_dm = np.bitwise_or.reduce(dmr, axis=0)
        self._bhskip_row = None
        hm = [int(self.meta_flat[s]) for s in hslots]
        #: per-step "renames a non-x0 destination" flags: those steps claim
        #: a physical register before the free-list conditions are read.
        self._h_wnz = [(m & M_WRD) != 0 and (m & 31) != 0 for m in hm]
        hl: list = []
        for k in range(self.nhandler):
            key = (spec.TRAP_VECTOR + 4 * k) >> self.off_bits
            if hl and hl[-1][0] == key:
                hl[-1][1] += 1
            else:
                hl.append([key, 1])
        self._hlines = [(int(k), int(cnt)) for k, cnt in hl]
        #: step index -> (line key, run length) at each first line access.
        self._hfirst = {}
        s0 = 0
        for key, cnt in self._hlines:
            self._hfirst[s0] = (key, cnt)
            s0 += cnt
        # fb_full is recorded inside the real I$ kernel on first-access
        # steps and folded separately on the collapsed ones.
        nfb = self.nhandler - len(self._hlines)
        self._bhskip_spec = (
            (("boom.rename.waw_remap", "D"),)
            + _BHSKIP_STEP * self.nhandler
            + (("boom.frontend.fb_full", "D"),) * nfb
            + (("boom.execute.result_zero", "D"),) * 4
        )
        # The walk below is specific to the stock six-instruction image
        # (csrrw/csrrs/addi/csrrw/csrrw/mret, all register traffic on x31).
        self._hskip_on = self.nhandler == 6

    # -- vector I$ + fetch-buffer kernel --------------------------------------

    def _ifetch(self, lanes, pcs, robv):
        """Vector I$ probe + refill for one round's mapped fetches.

        Same 2-way probe/victim kernel as the Rocket engine, with BOOM's
        fetch-plane arms folded into the scatter: the fault arm's false
        side, ``fb_empty`` (= miss: a refill drains the fetch buffer) and
        ``fb_full`` against the post-drain ROB occupancy ``robv``.
        Returns the miss mask.
        """
        np = _np
        ic = self.ic
        key = (pcs >> np.uint64(self.off_bits)).astype(np.int64)
        idx = key & self.ic_mask
        tag = key >> self.ic_tag_shift
        v0 = ic.valid[lanes, idx, 0]
        t0 = ic.tag[lanes, idx, 0]
        v1 = ic.valid[lanes, idx, 1]
        t1 = ic.tag[lanes, idx, 1]
        h0 = v0 & (t0 == tag)
        h1 = ~h0 & v1 & (t1 == tag)
        hit = h0 | h1
        miss = ~hit
        l0 = ic.lru[lanes, idx, 0]
        l1 = ic.lru[lanes, idx, 1]
        take0a = (v0 < v1) | ((v0 == v1) & (l0 <= l1))
        vvalida = np.where(take0a, v0, v1)
        self._recb("bic", _BIC_SPEC, lanes,
                   (hit, miss, h0, h1, v0 & v1, vvalida,
                    miss, robv >= self.params.rob_entries - 2),
                   (hit, hit, miss, miss))
        hp = hit.nonzero()[0]
        if hp.size:
            lh = lanes[hp]
            ic.clock[lh] += 1
            way = np.where(h0[hp], 0, 1)
            ic.lru[lh, idx[hp], way] = ic.clock[lh]
        mp = miss.nonzero()[0]
        if mp.size:
            lm = lanes[mp]
            im = idx[mp]
            take0 = take0a[mp]
            vvalid = vvalida[mp]
            vtag = np.where(take0, t0[mp], t1[mp])
            ic.last_ev[lm] = np.where(
                vvalid, (vtag << self.ic_tag_shift) | im, ic.last_ev[lm])
            ic.last_ev_valid[lm] = vvalid
            way = np.where(take0, 0, 1)
            ic.valid[lm, im, way] = True
            ic.dirty[lm, im, way] = False
            ic.tag[lm, im, way] = tag[mp]
            ic.clock[lm] += 1
            ic.lru[lm, im, way] = ic.clock[lm]
        return miss

    # -- analytic trap-handler fast-forward ----------------------------------

    def _bhskip_const(self):
        """Constant coverage row of one clean handler pass.

        Derived from the instruction walk of the stock image (csrrw x31 /
        csrrs x31,x0 / addi x31 / csrrw x0 / csrrw x31 / mret): e.g.
        ``rs1_ready`` is true at i1 (rs1=x0) and false at i2 (addi reads
        x31 straight after the csrrs renames it), so both arms are
        constant; the drain alternates every other retirement, so three of
        the six steps see ``commit_two`` each way regardless of entry
        parity.  ``csr.write`` hits both arms because csrrw always writes
        while csrrs with rs1=x0 (and addi/mret) never does.
        """
        row = self._bhskip_row
        if row is None:
            ip = self._ip
            arms = [
                ("boom.rename.rd_x0", False),        # i0/i1/i2/i4 -> x31
                ("boom.rename.rd_x0", True),         # i3 -> x0
                ("boom.rename.waw_remap", True),     # i1/i2/i4 re-rename x31
                ("boom.issue.rs1_ready", True),
                ("boom.issue.rs1_ready", False),
                ("boom.issue.rs2_ready", True),      # no rs2 traffic
                ("boom.issue.wakeup_bypass", True),
                ("boom.issue.wakeup_bypass", False),
                ("boom.rob.commit_two", True),
                ("boom.rob.commit_two", False),
                ("boom.frontend.ras_push", False),   # no calls/returns
                ("boom.frontend.ras_pop", False),
                ("boom.csr.in_user_mode", False),    # the pass runs in M
                ("boom.csr.trap_taken", False),
                ("boom.rob.exception_at_head", False),
                ("boom.csr.write", True),
                ("boom.csr.write", False),
                ("boom.csr.mret", True),
                ("boom.csr.mret", False),
                ("boom.csr.wfi", False),
            ]
            m = 0
            for name, val in arms:
                m |= ip[name][val]
            row = self.sim._row(m)
            row |= self._bhskip_dm
            self._bhskip_row = row
        return row

    def _handler_skip(self, cl, tpc, cyc, rob, iqo, busy, ldq, stq,
                      rsd) -> None:
        """Apply one clean trap-handler pass as six unrolled vector steps.

        A trap whose handler image is pristine (``handler_ok``) and whose
        mtvec still targets it runs six fixed instructions with no
        branches, no memory ops and no further traps, then lands back in
        the body at mepc+4.  Stepping those six rounds through the full
        vector round is the dominant cost of trap-heavy workloads (the
        handler commits are untraced, so most trap-chain lane-steps
        produce no trace entries) — and because the commits carry no
        branches or memory ops, each round pays the whole kernel for a
        handful of occupancy updates.  Instead, fast-forward the pass at
        trap entry: BOOM's queue levels depend on the entry state, so the
        drain/rename/issue/ROB walk is replayed exactly — but unrolled
        over the *trap lanes only*, with the per-step full/empty arms
        folded into one compiled scatter, the I$ kernel run once per
        handler line (remaining fetches collapse to one record and a
        clock bump), and everything entry-independent OR'd as one cached
        constant row.  The exit state is closed-form: x31 is saved and
        restored so the register file is net-unchanged, mepc = mscratch =
        return pc, mret recomposes mstatus and drops back to the trapped
        privilege, and the wakeup window always ends empty (mret has no
        rd).

        ``rob`` .. ``rsd`` are the round's act-space occupancy arrays
        (mutated at ``tpc``, scattered back by the round's epilogue).
        Bit-identical to the stepwise rounds; lanes that would die
        mid-handler (steps budget) are excluded by the caller and keep
        the stepwise path.
        """
        np = _np
        c = self.c
        p = self.params
        csrv = self.csrv
        u0 = c["u0"]
        # architectural values surfacing in result arms
        mscr_old = csrv[spec.CSR_MSCRATCH][cl]
        x31_old = self.regs_flat[cl * 32 + 31]
        v2 = csrv[spec.CSR_MEPC][cl]            # written at trap entry
        v3 = (v2 + c["u4"]) & c["mask"]         # return pc (even, so the
        #                                         mepc write mask is a no-op)
        # i0's WAW arm reads the pre-trap renamed bitmap; i1/i2/i4 then
        # re-rename x31 with the bit guaranteed set.
        ren31 = self.renamed[cl, 31]
        self.renamed[cl, 31] = True
        # occupancy walk: six unrolled steps over the trap lanes, exactly
        # the scalar order (drain, fetch, rename, issue, ROB, retire)
        ROBN = np.int64(p.rob_entries)
        IQN = np.int64(p.issue_queue_entries)
        PHN = np.int64(p.phys_regs - 32)
        PEN = np.int64(p.icache_miss_penalty)
        z = np.int64(0)
        lst = self.last_stall[cl]
        rsdv = rsd[tpc]
        robv = rob[tpc]
        iqv = iqo[tpc]
        busyv = busy[tpc]
        ldqv = ldq[tpc]
        stqv = stq[tpc]
        dcyc = np.zeros(cl.size, dtype=np.int64)
        step_vals: list = []
        fbf_vals: list = []
        ones = np.ones(cl.size, dtype=bool)
        ic = self.ic
        for k in range(self.nhandler):
            start_c = dcyc.copy()
            # drain
            rsdv = rsdv + 1
            robv = np.minimum(ROBN, robv + lst // 2)
            iqv = np.minimum(IQN, iqv + lst // 4)
            busyv = np.minimum(PHN, busyv + lst // 4)
            drm = rsdv >= 2
            dcyc += drm
            robv = np.where(drm, np.maximum(z, robv - 2), robv)
            iqv = np.where(drm, np.maximum(z, iqv - 2), iqv)
            ldqv = np.where(drm, np.maximum(z, ldqv - 1), ldqv)
            stqv = np.where(drm, np.maximum(z, stqv - 1), stqv)
            busyv = np.where(drm, np.maximum(z, busyv - 2), busyv)
            rsdv = np.where(drm, z, rsdv)
            # fetch: real I$ kernel at each line's first access (its own
            # fb arms ride the kernel's scatter), collapsed record +
            # clock/LRU bump for the sequential re-fetches of that line
            info = self._hfirst.get(k)
            if info is not None:
                key, cnt = info
                miss = self._ifetch(
                    cl,
                    np.full(cl.size, np.uint64(key << self.off_bits),
                            dtype=np.uint64),
                    robv)
                dcyc += np.where(miss, PEN, z)
                if cnt > 1:
                    idx0 = key & self.ic_mask
                    tag0 = key >> self.ic_tag_shift
                    w0 = ic.valid[cl, idx0, 0] & (ic.tag[cl, idx0, 0]
                                                  == tag0)
                    self._recb("bicc", _BIC_COLLAPSE_SPEC, cl, (w0, ~w0),
                               (ones, ones))
                    ic.clock[cl] += cnt - 1
                    ic.lru[cl, idx0, np.where(w0, 0, 1)] = ic.clock[cl]
            else:
                fbf_vals.append(robv >= ROBN - 2)
            # rename
            if self._h_wnz[k]:
                busyv = busyv + 1
            free = PHN - busyv
            fstl = free <= 0
            dcyc += 2 * fstl
            busyv = np.where(fstl, np.maximum(z, busyv - 4), busyv)
            # issue
            iqv = iqv + 1
            iqf = iqv >= IQN
            dcyc += iqf
            step_vals.extend((free <= 4, fstl, iqf, iqv <= 1))
            iqv = np.where(iqf, iqv - 2, iqv)
            # ROB
            robv = robv + 1
            robf = robv >= ROBN
            dcyc += robf
            step_vals.extend((robf, robv <= 1))
            robv = np.where(robf, robv - 2, robv)
            # retire: the next step's refills read this step's stall
            lst = dcyc - start_c
        self._recb("bhskip", self._bhskip_spec, cl,
                   (ren31, *step_vals, *fbf_vals,
                    mscr_old == u0, v2 == u0, v3 == u0, x31_old == u0))
        self.covmat[cl] |= self._bhskip_const()
        # exit state: CSRs, privilege, pc (vector CSRFile write + K_MRET)
        csrv[spec.CSR_MEPC][cl] = v3
        csrv[spec.CSR_MSCRATCH][cl] = v3
        ms = csrv[spec.CSR_MSTATUS][cl]
        keep = np.uint64(spec.WORD_MASK
                         & ~(MSTATUS_MIE | MSTATUS_MPIE | MSTATUS_MPP_MASK))
        npv = (ms >> np.uint64(MSTATUS_MPP_SHIFT)) & c["u3"]
        msn = ms & keep
        msn |= np.where((ms & np.uint64(MSTATUS_MPIE)) != 0,
                        np.uint64(MSTATUS_MIE), u0)
        msn |= np.uint64(MSTATUS_MPIE)
        csrv[spec.CSR_MSTATUS][cl] = msn
        self.priv[cl] = npv.astype(np.int64)
        if (npv != np.uint64(spec.PRV_M)).any():
            self.all_m = False
        self.pc[cl] = v3
        # occupancy + wakeup-window exit state
        rob[tpc] = robv
        iqo[tpc] = iqv
        busy[tpc] = busyv
        ldq[tpc] = ldqv
        stq[tpc] = stqv
        rsd[tpc] = rsdv
        self.last_stall[cl] = lst
        self.prev_rd[cl] = -1           # mret has no rd
        self.steps[cl] += self.nhandler
        cyc[tpc] += dcyc

    # -- the BOOM round -------------------------------------------------------

    #: Below this many active lanes a vector round's fixed numpy-dispatch
    #: cost exceeds the scalar core's per-step cost, so the straggler tail
    #: (deep trap chains, runaway loops) finishes on the scalar core via
    #: the exact to-completion peel.
    _TAIL_PEEL = 12

    def _round(self, act) -> None:
        np = _np
        c = self.c
        p = self.params
        fnz = _nz1
        if act.size <= self._TAIL_PEEL:
            for lane in act.tolist():
                self._peel(int(lane), to_completion=True)
            return
        n = act.size
        pcs = self.pc[act]

        # --- fetch classification ----------------------------------------
        moff = pcs - c["dram"]
        mapped = moff <= c["dlim"]
        aligned = (pcs & c["u3"]) == c["u0"]
        toff = pcs - self.base_u
        hoff = pcs - self.hvec
        in_handler = hoff < self.hspan
        okf = mapped & aligned
        in_code = okf & (toff < self.tab_u)
        in_htab = okf & (hoff < self.hspan)
        in_tab = in_code | in_htab

        # --- result planes (same layout as the golden round) ---------------
        r_cause = np.full(n, -1, dtype=np.int64)
        r_tval = np.zeros(n, dtype=np.uint64)
        r_peel = np.zeros(n, dtype=bool)
        r_halt = np.zeros(n, dtype=bool)
        r_npc = pcs + c["u4"]
        r_hasrd = np.zeros(n, dtype=bool)
        r_val = np.zeros(n, dtype=np.uint64)
        r_memk = np.zeros(n, dtype=np.int64)
        r_mema = np.zeros(n, dtype=np.uint64)
        r_mems = np.zeros(n, dtype=np.int64)
        r_memd = np.zeros(n, dtype=np.uint64)
        r_csra = np.full(n, -1, dtype=np.int64)
        r_csrv = np.zeros(n, dtype=np.uint64)

        # --- dispatch-table gather (pure reads: includes lanes that later
        # peel — nothing may take effect until the peel set is known) ------
        it = fnz(in_tab)
        lanes_it = act[it]
        slots = np.where(
            in_code[it],
            (toff[it] >> c["u2"]).astype(np.int64),
            np.int64(self.ncode) + (hoff[it] >> c["u2"]).astype(np.int64),
        )
        flat = lanes_it * self.width + slots
        rec = self.packed_flat[flat]
        imm = self.imm_flat[flat]
        word = self.words_flat[flat]
        kind = rec & 0xFF
        rd = (rec >> 8) & 0xFF
        rs1 = (rec >> 16) & 0xFF
        rs2 = (rec >> 24) & 0xFF
        flags = rec >> 32
        a = self.regs_flat[lanes_it * 32 + rs1]
        breg = self.regs_flat[lanes_it * 32 + rs2]
        b = np.where((flags & F_IMM) != 0, imm, breg)

        # act-space scatters of the per-word planes
        kf = np.full(n, -1, dtype=np.int64)
        kf[it] = kind
        mf = np.zeros(n, dtype=np.int64)
        mf[it] = self.meta_flat[flat]
        immf = np.zeros(n, dtype=np.int64)
        immf[it] = imm.astype(np.int64)
        dmif = np.full(n, -1, dtype=np.int64)
        dmif[it] = self.dmidx_flat[flat]
        r_word = np.zeros(n, dtype=np.uint32)
        r_word[it] = word
        r_rd = np.zeros(n, dtype=np.int64)
        r_rd[it] = rd

        # --- peel classification (before any vector side effect) ----------
        peelm = mapped & ~aligned       # misaligned pc: scalar-only path
        rest = okf & ~in_tab
        oowm = np.zeros(n, dtype=bool)
        if rest.any():
            ra = fnz(rest)
            aw = self.arena32[act[ra], (moff[ra] >> c["u2"]).astype(np.int64)]
            zero = aw == 0
            oowm[ra[zero]] = True       # zero word: vector illegal trap
            peelm[ra[~zero]] = True     # real code outside the table
        if lanes_it.size:
            peelm[it[kind == K_PEEL]] = True
            pa = fnz(kind == K_AMO)
            if pa.size:
                # Mapped, aligned atomics run scalar; faulting ones trap in
                # the vector plane (the kernel raises them exactly).
                wl = (flags[pa] >> 1) & 3
                wsz = np.where(wl == 2, np.uint64(4), np.uint64(8))
                addr = a[pa]
                ok = (((addr & (wsz - c["u1"])) == c["u0"])
                      & ((addr - c["dram"]) <= (c["dsize"] - wsz)))
                peelm[it[pa[ok]]] = True
        npm = ~peelm
        lanes_np = act[npm]

        # --- occupancy drain (pre-fetch, exactly the scalar order; the
        # instruction's stall accounting starts before the drain cycle) ----
        cyc = self.cycles[act]       # fancy indexing: already a fresh copy
        cyc0 = cyc.copy()
        rob = self.rob_occ[act]
        iqo = self.iq_occ[act]
        busy = self.busy_reg[act]
        ldq = self.ldq_occ[act]
        stq = self.stq_occ[act]
        rsd = self.rsd[act] + 1
        lst = self.last_stall[act]
        z = np.int64(0)
        rob = np.minimum(np.int64(p.rob_entries), rob + lst // 2)
        iqo = np.minimum(np.int64(p.issue_queue_entries), iqo + lst // 4)
        busy = np.minimum(np.int64(p.phys_regs - 32), busy + lst // 4)
        dr = fnz(rsd >= 2)
        if dr.size:
            cyc[dr] += 1
            rob[dr] = np.maximum(z, rob[dr] - 2)
            iqo[dr] = np.maximum(z, iqo[dr] - 2)
            ldq[dr] = np.maximum(z, ldq[dr] - 1)
            stq[dr] = np.maximum(z, stq[dr] - 1)
            busy[dr] = np.maximum(z, busy[dr] - 2)
            rsd[dr] = 0

        # --- fetch: fault plane + vector I$ --------------------------------
        um = fnz(~mapped)               # unmapped lanes never peel
        if um.size:
            self._rec_true(act[um], "boom.frontend.fetch_fault")
        pm = fnz(mapped & npm)
        if pm.size:
            miss = self._ifetch(act[pm], pcs[pm], rob[pm])
            cyc[pm[miss]] += p.icache_miss_penalty

        # --- decode condition rows ----------------------------------------
        if oowm.any():
            _zmeta, zidx = self._meta_rec(0)
            dmif[oowm] = zidx
        dp = fnz((dmif >= 0) & npm)
        if dp.size:
            self.covmat[act[dp]] |= self._dm_matrix()[dmif[dp]]

        # --- rename / issue / ROB / RAS stage + predictor probe — runs
        # for lanes that later trap in execute, too ------------------------
        d = fnz(npm & in_tab & (kf != K_ILLEGAL))
        pred = np.zeros(n, dtype=bool)
        if d.size:
            lanes_d = act[d]
            md = mf[d]
            mrd = md & 31
            mrs1 = (md >> 5) & 31
            mrs2 = (md >> 10) & 31
            # rename: WAW detection against the per-lane renamed bitmap,
            # free-list pressure from the busy-physical-registers column
            wrd = (md & M_WRD) != 0
            wnz = wrd & (mrd != 0)
            waw = np.zeros(d.size, dtype=bool)
            wi = fnz(wnz)
            if wi.size:
                lw = lanes_d[wi]
                rdw = mrd[wi]
                waw[wi] = self.renamed[lw, rdw]
                self.renamed[lw, rdw] = True
                busy[d[wi]] += 1
            free = np.int64(p.phys_regs - 32) - busy[d]
            flow = free <= 4
            fstl = free <= 0
            fs = fnz(fstl)
            if fs.size:
                cyc[d[fs]] += 2
                busy[d[fs]] = np.maximum(z, busy[d[fs]] - 4)
            # issue queue
            iqo[d] += 1
            iqv = iqo[d]
            iq_full = iqv >= p.issue_queue_entries
            iq_empty = iqv <= 1
            qf = fnz(iq_full)
            if qf.size:
                cyc[d[qf]] += 1
                iqo[d[qf]] -= 2
            prd = self.prev_rd[lanes_d]
            rs1_dep = ((md & M_RS1READ) != 0) & (mrs1 != 0) & (mrs1 == prd)
            rs2_dep = ((md & M_RS2READ) != 0) & (mrs2 != 0) & (mrs2 == prd)
            # ROB
            rob[d] += 1
            robv = rob[d]
            rob_full = robv >= p.rob_entries
            rob_empty = robv <= 1
            commit2 = rsd[d] == 0
            rf = fnz(rob_full)
            if rf.size:
                cyc[d[rf]] += 1
                rob[d[rf]] -= 2
            # RAS: calls push, returns pop; only the depth is live state
            is_call = ((md & M_JUMP) != 0) & (mrd == 1)
            is_ret = ((md & M_JALR) != 0) & (mrd == 0) & (mrs1 == 1)
            depth = self.ras_depth[lanes_d]
            ras_over = depth >= p.ras_entries
            ras_under = depth == 0
            self.ras_depth[lanes_d] = np.where(
                is_call,
                np.minimum(np.int64(p.ras_entries), depth + 1),
                np.where(is_ret, np.maximum(z, depth - 1), depth),
            )
            # predictor probe: SoA BTB gather, recorded (and consumed)
            # only where the instruction is a branch
            is_br_d = (md & M_BRANCH) != 0
            pc_d = pcs[d]
            slot_d = ((pc_d >> c["u2"]) % np.uint64(self.btb_n)).astype(
                np.int64)
            bv_d = self.btb_valid[lanes_d, slot_d]
            bpc_d = self.btb_pc[lanes_d, slot_d]
            hitb = bv_d & (bpc_d == pc_d)
            ptaken = hitb & (self.btb_ctr[lanes_d, slot_d] >= 2)
            self._recb("bdstage", _BDSTAGE_SPEC, lanes_d, (
                mrd == 0, waw, flow, fstl,
                iq_full, iq_empty, ~rs1_dep, ~rs2_dep, rs1_dep | rs2_dep,
                rob_full, rob_empty, commit2,
                is_call, is_ret, ras_over, ras_under,
                self.priv[lanes_d] == spec.PRV_U,
                hitb, bv_d & (bpc_d != pc_d), ptaken,
            ), (wrd, wnz, is_call, is_ret, is_br_d, is_br_d, is_br_d))
            pred[d] = ptaken & is_br_d

        # --- per-kind execution via the golden kernels --------------------
        prv_before = self.priv[act]
        sel = fnz(npm[it]) if it.size else it
        any_trap = any_halt = any_mem = any_csr = False
        if sel.size:
            it2 = it[sel]
            any_trap, _exec_peel, any_halt, any_mem, any_csr = self._exec_kinds(
                act, it2, act[it2], kind[sel], rd[sel], rs1[sel], rs2[sel],
                flags[sel], a[sel], b[sel], breg[sel], imm[sel], pcs[it2],
                word[sel],
                r_cause, r_tval, r_peel, r_halt, r_npc, r_hasrd, r_val,
                r_memk, r_mema, r_mems, r_memd, r_csra, r_csrv,
            )
        if um.size:
            r_cause[um] = spec.EXC_INSTR_ACCESS_FAULT
            r_tval[um] = pcs[um]
            any_trap = True
        ow = fnz(oowm)
        if ow.size:
            r_cause[ow] = spec.EXC_ILLEGAL_INSTRUCTION
            any_trap = True             # tval/word stay 0 for a zero word

        # --- stores into the handler image refresh its table columns ------
        if any_mem:
            sm = fnz(r_memk == 2)
            if sm.size:
                sa = r_mema[sm]
                ss = r_mems[sm].astype(np.uint64)
                th = (sa < self.hvec + self.hspan) & (sa + ss > self.hvec)
                for pos in sm[th].tolist():
                    self._refresh_handler(int(act[pos]))

        # --- trap plane: real (non-analytic) trap entry --------------------
        self._grow_cols(self.hi + 1)
        self.hi += 1
        cap = self.cap
        tp = fnz(r_cause >= 0)
        if tp.size:
            lanes_t = act[tp]
            decill = oowm[tp] | (kf[tp] == K_ILLEGAL)
            fetchf = ~mapped[tp]
            xp = tp[~decill & ~fetchf]      # traps raised by execute
            if xp.size:
                # Execute-raised traps additionally record the ROB-flush
                # pair and (for memory ops) the LSU fault arms, zero the
                # ROB/issue queue and clear the wakeup window — fetch and
                # decode traps return before reaching any of these.
                lanes_x = act[xp]
                ismem_x = (mf[xp] & M_MEM) != 0
                cx = r_cause[xp]
                self._recb("btrap", _BTRAP_SPEC, lanes_x, (
                    (cx == spec.EXC_LOAD_MISALIGNED)
                    | (cx == spec.EXC_STORE_MISALIGNED),
                    (cx == spec.EXC_LOAD_ACCESS_FAULT)
                    | (cx == spec.EXC_STORE_ACCESS_FAULT),
                ), (ismem_x, ismem_x))
                rob[xp] = 0
                iqo[xp] = 0
                self.prev_rd[lanes_x] = -1
            for cse in np.unique(r_cause[tp]).tolist():
                lc = lanes_t[r_cause[tp] == cse]
                self.covmat[lc] |= self.sim._trap_row(int(cse))
            cyc[tp] += p.mispredict_penalty    # flush-and-redirect cost
            cnt = self.counts[lanes_t]
            self.c_pc[lanes_t, cnt] = pcs[tp]
            self.c_word[lanes_t, cnt] = r_word[tp]
            if not self.all_m:
                self.c_priv[lanes_t, cnt] = prv_before[tp]
            self.c_tc[lanes_t, cnt] = r_cause[tp]
            self.c_tv[lanes_t, cnt] = r_tval[tp]
            self.counts[lanes_t] = cnt + 1
            self.traps[lanes_t] += 1
            self.steps[lanes_t] += 1
            self.res_valid[lanes_t] = False
            # vector CSRFile.enter_trap
            csrv = self.csrv
            csrv[spec.CSR_MCAUSE][lanes_t] = r_cause[tp].astype(np.uint64)
            csrv[spec.CSR_MEPC][lanes_t] = pcs[tp] & c["not1"]
            csrv[spec.CSR_MTVAL][lanes_t] = r_tval[tp] & c["mask"]
            ms = csrv[spec.CSR_MSTATUS][lanes_t]
            keep = np.uint64(spec.WORD_MASK
                             & ~(MSTATUS_MIE | MSTATUS_MPIE | MSTATUS_MPP_MASK))
            msn = ms & keep
            msn |= np.where((ms & np.uint64(MSTATUS_MIE)) != 0,
                            np.uint64(MSTATUS_MPIE), np.uint64(0))
            msn |= (prv_before[tp].astype(np.uint64)
                    << np.uint64(MSTATUS_MPP_SHIFT))
            csrv[spec.CSR_MSTATUS][lanes_t] = msn
            self.pc[lanes_t] = (csrv[spec.CSR_MTVEC][lanes_t]
                                & np.uint64(spec.WORD_MASK & ~0b11))
            self.priv[lanes_t] = spec.PRV_M
            stop3 = self.traps[lanes_t] >= self.config.max_traps
            l3 = lanes_t[stop3]
            self.stop_code[l3] = 3
            self.running[l3] = False
            if self._hskip_on:
                cand = (self.running[lanes_t]
                        & self.handler_ok[lanes_t]
                        & self.mtvec_ok[lanes_t]
                        & (self.steps[lanes_t] + self.nhandler
                           <= self.config.max_steps))
                hq = fnz(cand)
                if hq.size:
                    self._handler_skip(lanes_t[hq], tp[hq], cyc, rob, iqo,
                                       busy, ldq, stq, rsd)

        # --- plainly executed lanes ----------------------------------------
        E = fnz(npm & ~r_peel & (r_cause < 0))
        lanes_e = act[E]
        if E.size:
            mE = mf[E]
            rdE = r_rd[E]
            valE = r_val[E]
            hasE = r_hasrd[E] & (rdE > 0)
            # Register writeback first: the divide-operand condition reads
            # the post-writeback register file, exactly like the scalar core.
            wr = fnz(hasE)
            if wr.size:
                self.regs_flat[lanes_e[wr] * 32 + rdE[wr]] = valE[wr]

            isbr = (mE & M_BRANCH) != 0
            notseq = r_npc[E] != (pcs[E] + c["u4"])
            taken = isbr & notseq
            ismd = (mE & M_MULDIV) != 0
            dvl = (mE & M_DIVLIKE) != 0
            isdv = ismd & dvl
            divisor = self.regs_flat[lanes_e * 32 + ((mE >> 10) & 31)]
            # SoA BTB resolution: gathers/updates mirror BranchPredictor
            # .update for every branch lane at once; the probe-side ``pred``
            # vector carries the decode-stage prediction across.
            pc_e = pcs[E]
            slot_e = ((pc_e >> c["u2"]) % np.uint64(self.btb_n)).astype(
                np.int64)
            bv_e = self.btb_valid[lanes_e, slot_e]
            bctr_e = self.btb_ctr[lanes_e, slot_e]
            newent = ~(bv_e & (self.btb_pc[lanes_e, slot_e] == pc_e))
            mispred = taken != pred[E]
            ctr_upd = np.minimum(
                np.int64(3),
                np.maximum(np.int64(0), bctr_e + np.where(taken, 1, -1)))
            oldent = isbr & ~newent
            self._recb("bexec", _BEXEC_SPEC, lanes_e, (
                notseq,
                immf[E] < 0,
                mispred, newent, ctr_upd == 3, ctr_upd == 0,
                mispred,
                divisor == c["u0"],
                (mE & M_MULHI) != 0,
                valE == c["u0"],
                r_csra[E] >= 0,
                kf[E] == K_MRET,
                r_halt[E],
            ), (isbr, isbr, isbr, isbr, oldent, oldent, isbr,
                isdv, ismd & ~dvl, hasE))
            bp2 = fnz(isbr)
            if bp2.size:
                lb2 = lanes_e[bp2]
                sb2 = slot_e[bp2]
                self.btb_valid[lb2, sb2] = True
                self.btb_pc[lb2, sb2] = pc_e[bp2]
                self.btb_ctr[lb2, sb2] = np.where(
                    newent[bp2], np.where(taken[bp2], 2, 1), ctr_upd[bp2])
                mp2 = bp2[mispred[bp2]]
                if mp2.size:
                    # mispredict: redirect penalty + pipeline flush
                    cyc[E[mp2]] += p.mispredict_penalty
                    rob[E[mp2]] = 0
                    iqo[E[mp2]] = 0
            cyc[E] += np.where(
                ismd,
                np.where(dvl, np.int64(p.div_latency),
                         np.int64(p.mul_latency)),
                z)

            # LSU + D$ for non-trapping memory lanes
            dcv = self.dc
            mm = fnz(r_memk[E] != 0)
            if mm.size:
                lmm = lanes_e[mm]
                Em = E[mm]
                addr = r_mema[Em]
                is_st = r_memk[Em] == 2
                is_ld = ~is_st
                sq = fnz(is_st)
                stq[Em[sq]] += 1
                lq = fnz(is_ld)
                ldq[Em[lq]] += 1
                stqv = stq[Em]
                ldqv = ldq[Em]
                stq_full = is_st & (stqv >= p.stq_entries)
                ldq_full = is_ld & (ldqv >= p.ldq_entries)
                sfp = fnz(stq_full)
                if sfp.size:
                    cyc[Em[sfp]] += 1
                    stq[Em[sfp]] -= 1
                lfp = fnz(ldq_full)
                if lfp.size:
                    cyc[Em[lfp]] += 1
                    ldq[Em[lfp]] -= 1
                # D$ probe/refill — same 2-way kernel as the Rocket engine
                line_key = (addr >> np.uint64(self.off_bits)).astype(np.int64)
                idx_s = line_key & self.dc_mask
                tag_s = line_key >> self.dc_tag_shift
                v0 = dcv.valid[lmm, idx_s, 0]
                t0 = dcv.tag[lmm, idx_s, 0]
                d0 = dcv.dirty[lmm, idx_s, 0]
                v1 = dcv.valid[lmm, idx_s, 1]
                t1 = dcv.tag[lmm, idx_s, 1]
                d1 = dcv.dirty[lmm, idx_s, 1]
                h0 = v0 & (t0 == tag_s)
                h1 = ~h0 & v1 & (t1 == tag_s)
                hit = h0 | h1
                miss = ~hit
                dhit = np.where(h0, d0, d1)     # dirty at the hit way
                l0 = dcv.lru[lmm, idx_s, 0]
                l1 = dcv.lru[lmm, idx_s, 1]
                take0 = (v0 < v1) | ((v0 == v1) & (l0 <= l1))
                vv = np.where(take0, v0, v1)
                vdirty = np.where(take0, d0, d1)
                ev_key = ((np.where(take0, t0, t1) << self.dc_tag_shift)
                          | idx_s)
                self._recb("blsu", _BLSU_SPEC, lmm, (
                    stqv >= p.stq_entries,
                    ldqv >= p.ldq_entries,
                    stqv > 0,               # vector loads are never amo
                    hit, miss, h0, h1, v0 & v1, vv, vv & vdirty,
                    ~(hit & dhit),
                ), (is_st, is_ld, is_ld, hit, hit, miss, miss, miss, is_st))
                hp2 = fnz(hit)
                if hp2.size:
                    lh2 = lmm[hp2]
                    dcv.clock[lh2] += 1
                    dcv.lru[lh2, idx_s[hp2], np.where(h0[hp2], 0, 1)] = (
                        dcv.clock[lh2])
                mp3 = fnz(miss)
                if mp3.size:
                    lm2 = lmm[mp3]
                    im2 = idx_s[mp3]
                    wv2 = np.where(take0[mp3], 0, 1)
                    dcv.last_ev[lm2] = np.where(vv[mp3], ev_key[mp3],
                                                dcv.last_ev[lm2])
                    dcv.last_ev_valid[lm2] = vv[mp3]
                    dcv.valid[lm2, im2, wv2] = True
                    dcv.dirty[lm2, im2, wv2] = False
                    dcv.tag[lm2, im2, wv2] = tag_s[mp3]
                    dcv.clock[lm2] += 1
                    dcv.lru[lm2, im2, wv2] = dcv.clock[lm2]
                    cyc[Em[mp3]] += p.dcache_miss_penalty
                stp = fnz(is_st)
                if stp.size:
                    ls2 = lmm[stp]
                    wfin = np.where(hit[stp], np.where(h0[stp], 0, 1),
                                    np.where(take0[stp], 0, 1))
                    dcv.dirty[ls2, idx_s[stp], wfin] = True

            # retire: trace columns (handler commits are untraced, exactly
            # like the scalar `if not in_handler` gate)
            ret = fnz(~in_handler[E])
            if ret.size:
                Er = E[ret]
                lr = lanes_e[ret]
                rdt = np.where(hasE[ret], rdE[ret], np.int64(-1))
                idx = self.counts[lr]
                flatc = lr * cap + idx
                self.c_pc_flat[flatc] = pcs[Er]
                self.c_word_flat[flatc] = r_word[Er]
                if not self.all_m:
                    self.c_priv_flat[flatc] = prv_before[Er]
                wv = fnz(rdt >= 0)
                self.c_rdx_flat[flatc[wv]] = rdt[wv]
                self.c_val_flat[flatc[wv]] = valE[ret][wv]
                if any_mem:
                    mmv = fnz(r_memk[Er] > 0)
                    fm = flatc[mmv]
                    self.c_memk_flat[fm] = r_memk[Er][mmv]
                    self.c_mema_flat[fm] = r_mema[Er][mmv]
                    self.c_mems_flat[fm] = r_mems[Er][mmv]
                    self.c_memd_flat[fm] = r_memd[Er][mmv]
                if any_csr:
                    cmv = fnz(r_csra[Er] >= 0)
                    fc = flatc[cmv]
                    self.c_ca_flat[fc] = r_csra[Er][cmv]
                    self.c_cv_flat[fc] = r_csrv[Er][cmv]
                self.counts[lr] = idx + 1

            # wakeup window + stall accounting, unconditional at retirement
            self.prev_rd[lanes_e] = np.where(hasE, rdE, np.int64(-1))
            self.last_stall[lanes_e] = cyc[E] - cyc0[E]
            self.pc[lanes_e] = r_npc[E]
            self.steps[lanes_e] += 1

            hl = fnz(r_halt[E])
            if hl.size:
                lh = lanes_e[hl]
                self.stop_code[lh] = 1
                self.running[lh] = False

        # budget cutoff applies to every vector lane that stepped (scalar
        # checks it at the top of the NEXT step_cycle, which is equivalent)
        over = fnz(npm & (self.steps[act] >= self.config.max_steps)
                   & self.running[act])
        if over.size:
            lo = act[over]
            self.stop_code[lo] = 2
            self.running[lo] = False

        self.cycles[lanes_np] = cyc[npm]
        self.rob_occ[lanes_np] = rob[npm]
        self.iq_occ[lanes_np] = iqo[npm]
        self.busy_reg[lanes_np] = busy[npm]
        self.ldq_occ[lanes_np] = ldq[npm]
        self.stq_occ[lanes_np] = stq[npm]
        self.rsd[lanes_np] = rsd[npm]

        # peel dispatch last: the scalar core sees every vector side effect
        for pos in fnz(peelm | r_peel).tolist():
            self._peel(int(act[pos]))

    # -- scalar peel bridge --------------------------------------------------

    def _splice_in(self, lane: int, rs) -> None:
        """Load one lane's microarchitectural state into the scalar core."""
        core = self.core
        self._cache_in(core.icache, self.ic, lane)
        self._cache_in(core.dcache, self.dc, lane)
        btb = core.predictor.btb
        for s in range(self.btb_n):
            if self.btb_valid[lane, s]:
                btb[s] = {"pc": int(self.btb_pc[lane, s]),
                          "ctr": int(self.btb_ctr[lane, s])}
            else:
                btb[s] = None
        rs.iterations = int(self.steps[lane])
        rs.cycles = int(self.cycles[lane])
        rs.traps_taken = int(self.traps[lane])
        # RAS values are dead state (only the depth feeds conditions and
        # pops discard the value), so the depth column reconstructs it.
        rs.ras = [0] * int(self.ras_depth[lane])
        rs.busy_phys = int(self.busy_reg[lane])
        rs.renamed = set(_np.flatnonzero(self.renamed[lane]).tolist())
        rs.rob_occupancy = int(self.rob_occ[lane])
        rs.iq_occupancy = int(self.iq_occ[lane])
        rs.ldq = int(self.ldq_occ[lane])
        rs.stq = int(self.stq_occ[lane])
        rs.retired_since_drain = int(self.rsd[lane])
        pr = int(self.prev_rd[lane])
        rs.prev_rd = pr if pr >= 0 else None
        rs.last_stall = int(self.last_stall[lane])

    def _splice_out(self, lane: int, rs) -> None:
        """Store the scalar core's state back into the lane's SoA planes."""
        core = self.core
        self._cache_out(core.icache, self.ic, lane)
        self._cache_out(core.dcache, self.dc, lane)
        for s, e in enumerate(core.predictor.btb):
            if e is None:
                self.btb_valid[lane, s] = False
            else:
                self.btb_valid[lane, s] = True
                self.btb_pc[lane, s] = e["pc"]
                self.btb_ctr[lane, s] = e["ctr"]
        self.cycles[lane] = rs.cycles
        self.ras_depth[lane] = len(rs.ras)
        self.busy_reg[lane] = rs.busy_phys
        row = self.renamed[lane]
        row[:] = False
        if rs.renamed:
            row[list(rs.renamed)] = True
        self.rob_occ[lane] = rs.rob_occupancy
        self.iq_occ[lane] = rs.iq_occupancy
        self.ldq_occ[lane] = rs.ldq
        self.stq_occ[lane] = rs.stq
        self.rsd[lane] = rs.retired_since_drain
        self.prev_rd[lane] = -1 if rs.prev_rd is None else rs.prev_rd
        self.last_stall[lane] = rs.last_stall

    def _dut_rejoinable(self, lane: int, rs) -> bool:
        """May this peeled lane resume vector execution at its current pc?

        An aligned pc inside the dispatch table (code or handler) suffices:
        BOOM's I$ snoops stores (fetch always reads backing memory), so
        there is no stale-line state to keep a lane scalar for.
        """
        pc = rs.state.pc
        if pc & 3:
            return False
        off = pc - self.base
        hoff = pc - spec.TRAP_VECTOR
        return 0 <= off < 4 * self.lmax or 0 <= hoff < 4 * self.nhandler
