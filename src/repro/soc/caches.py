"""Set-associative cache models shared by the SoC designs.

Caches are the main source of *sequence-dependent* coverage: hits need
address reuse, dirty evictions need write streaks over conflicting lines, and
the I-cache's stale-line behaviour implements the paper's Bug1 (CWE-1202:
missing FENCE.I cache-coherency management).
"""

from __future__ import annotations

from repro.rtl.coverage import ConditionCoverage
from repro.rtl.module import Module


class CacheLine:
    """One line of a set-associative cache."""

    __slots__ = ("valid", "dirty", "tag", "data", "lru")

    def __init__(self) -> None:
        self.valid = False
        self.dirty = False
        self.tag = 0
        self.data = b""
        self.lru = 0


class SetAssocCache(Module):
    """Generic N-way write-through cache with dirty-bit tracking.

    The backing store is always updated on stores (so architectural memory
    state is exact); dirty bits and eviction kinds are still modelled because
    they drive latency and coverage conditions, as in the write-back original.

    Parameters
    ----------
    path, cov:
        Module identity and coverage database.
    ways, sets, line_bytes:
        Geometry; ``line_bytes`` must be a power of two.
    hit_latency, miss_penalty:
        Cycle costs reported to the core's timing model.
    """

    def __init__(
        self,
        path: str,
        cov: ConditionCoverage,
        ways: int = 2,
        sets: int = 8,
        line_bytes: int = 32,
        hit_latency: int = 1,
        miss_penalty: int = 20,
        writable: bool = True,
    ) -> None:
        super().__init__(path, cov)
        self.ways = ways
        self.sets = sets
        self.line_bytes = line_bytes
        self.hit_latency = hit_latency
        self.miss_penalty = miss_penalty
        self.writable = writable
        self._offset_bits = line_bytes.bit_length() - 1
        self._index_mask = sets - 1
        self.lines = [[CacheLine() for _ in range(ways)] for _ in range(sets)]
        self._lru_clock = 0
        #: Line-address key (addr // line_bytes) of the last evicted line.
        self.last_evicted: int | None = None
        self.conditions(
            "hit",
            "hit_way0",
            "hit_way1",
            "refill",
            "evict_valid",
            "set_conflict",  # refill into a set with all ways valid
        )
        if writable:
            # Dirty-path conditions only exist in caches with a store port
            # (the I$ is read-only: no such logic, no such cover points).
            self.conditions("evict_dirty", "mark_dirty")

    # -- geometry helpers ------------------------------------------------------

    def _split(self, addr: int) -> tuple[int, int, int]:
        line_addr = addr >> self._offset_bits
        return line_addr & self._index_mask, line_addr >> (
            self._index_mask.bit_length()
        ), addr & (self.line_bytes - 1)

    def _line_base(self, index: int, tag: int) -> int:
        return ((tag << self._index_mask.bit_length()) | index) << self._offset_bits

    # -- lookup / fill -----------------------------------------------------------

    def lookup(self, addr: int) -> CacheLine | None:
        """Probe for a hit, recording the hit/way conditions."""
        index, tag, _ = self._split(addr)
        found = None
        for way, line in enumerate(self.lines[index]):
            if line.valid and line.tag == tag:
                found = line
                if way < 2:  # per-way conditions exist for the first two ways
                    self.cond("hit_way0", way == 0)
                    self.cond("hit_way1", way == 1)
                break
        self.cond("hit", found is not None)
        self.cond("refill", found is None)  # a miss starts the refill FSM
        if found is not None:
            self._lru_clock += 1
            found.lru = self._lru_clock
        return found

    def refill(self, addr: int, fetch_line) -> CacheLine:
        """Install the line containing ``addr``; ``fetch_line(base, n)`` reads
        backing memory.  Records refill/eviction conditions and remembers the
        evicted line's address key in :attr:`last_evicted`."""
        index, tag, _ = self._split(addr)
        ways = self.lines[index]
        victim = min(ways, key=lambda line: (line.valid, line.lru))
        self.cond("set_conflict", all(line.valid for line in ways))
        self.cond("evict_valid", victim.valid)
        if self.writable:
            self.cond("evict_dirty", victim.valid and victim.dirty)
        if victim.valid:
            self.last_evicted = self._line_base(index, victim.tag) // self.line_bytes
        else:
            self.last_evicted = None
        base = addr & ~(self.line_bytes - 1)
        victim.valid = True
        victim.dirty = False
        victim.tag = tag
        victim.data = bytes(fetch_line(base, self.line_bytes))
        self._lru_clock += 1
        victim.lru = self._lru_clock
        return victim

    def update_stored_line(self, addr: int, data: bytes) -> None:
        """Write ``data`` into a cached copy if present (keeps D$ coherent
        with the write-through backing store)."""
        if not self.writable:
            raise RuntimeError(f"{self.path} has no store port")
        line = self._peek(addr)
        if line is not None:
            _, _, offset = self._split(addr)
            buf = bytearray(line.data)
            buf[offset : offset + len(data)] = data
            line.data = bytes(buf)
            # The condition is the clean->dirty *transition* (re-dirtying an
            # already-dirty line evaluates it false).
            self.cond("mark_dirty", not line.dirty)
            line.dirty = True

    def _peek(self, addr: int) -> CacheLine | None:
        """Hit check without recording conditions or touching LRU."""
        index, tag, _ = self._split(addr)
        for line in self.lines[index]:
            if line.valid and line.tag == tag:
                return line
        return None

    def contains(self, addr: int) -> bool:
        return self._peek(addr) is not None

    def read_cached(self, addr: int, size: int) -> bytes | None:
        """Return cached bytes (possibly stale!) or None when absent."""
        line = self._peek(addr)
        if line is None:
            return None
        _, _, offset = self._split(addr)
        return line.data[offset : offset + size]

    def invalidate_all(self) -> None:
        """FENCE.I / reset: drop every line."""
        for ways in self.lines:
            for line in ways:
                line.valid = False
                line.dirty = False

    def set_index(self, addr: int) -> int:
        """The set an address maps to (used by set-thrash tracking)."""
        return self._split(addr)[0]

    def is_dirty(self, addr: int) -> bool:
        line = self._peek(addr)
        return line is not None and line.dirty

    def reset(self) -> None:
        super().reset()
        self.invalidate_all()
        # Also clear per-line LRU stamps: invalidate_all (the FENCE.I path)
        # deliberately keeps them, but a *reset* must leave no trace of the
        # previous program — way allocation would otherwise depend on the
        # last test's access pattern, breaking run-to-run determinism (and
        # with it serial/sharded executor parity).
        for ways in self.lines:
            for line in ways:
                line.lru = 0
        self._lru_clock = 0
        self.last_evicted = None
