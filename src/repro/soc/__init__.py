"""SoC models: the designs under test.

Two processor models stand in for the paper's RTL testbeds (DESIGN.md §1):

- :mod:`repro.soc.rocket` — a RocketCore-like in-order RV64IMA_Zicsr pipeline
  with I$/D$, branch prediction, a store buffer and the five documented
  RocketCore behaviours injected (Bug1, Bug2, Findings 1–3).
- :mod:`repro.soc.boom` — a BOOM-like out-of-order core whose coverage
  profile saturates quickly under varied legal code, as in the paper.

Both are *timed interpreters*: each retired instruction advances the clock by
its microarchitectural latency (cache misses, hazards, mispredicts), while
instruction semantics come from the golden executor so ISA correctness lives
in one place.  :class:`~repro.soc.harness.DutHarness` runs a program and
returns ``(CommitTrace, CoverageReport)`` — the two artifacts the fuzzing
loop consumes.
"""

from repro.soc.harness import DutHarness, make_boom_harness, make_rocket_harness

__all__ = ["DutHarness", "make_boom_harness", "make_rocket_harness"]
