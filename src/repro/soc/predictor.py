"""Branch predictor model: BTB + 2-bit counters.

Mispredict recovery is one of the pipeline's big latency/coverage levers;
hitting the predictor's conditions requires *repeated* control flow over the
same PCs (loops) — exactly the entangled behaviour the paper argues random
instruction streams lack.
"""

from __future__ import annotations

from repro.rtl.coverage import ConditionCoverage
from repro.rtl.module import Module


class BranchPredictor(Module):
    """Direct-mapped BTB with per-entry 2-bit saturating counters."""

    def __init__(self, path: str, cov: ConditionCoverage, entries: int = 16) -> None:
        super().__init__(path, cov)
        self.entries = entries
        self.btb: list[dict | None] = [None] * entries
        self.conditions(
            "btb_hit",
            "btb_alias",       # hit on a different branch PC (tag mismatch)
            "pred_taken",
            "mispredict",
            "ctr_saturated_taken",
            "ctr_saturated_not_taken",
            "update_new_entry",
        )

    def _index(self, pc: int) -> int:
        return (pc >> 2) % self.entries

    def predict(self, pc: int) -> bool:
        """Predict taken/not-taken for the branch at ``pc``."""
        entry = self.btb[self._index(pc)]
        hit = entry is not None and entry["pc"] == pc
        self.cond("btb_hit", hit)
        self.cond("btb_alias", entry is not None and entry["pc"] != pc)
        taken = bool(hit and entry["ctr"] >= 2)
        self.cond("pred_taken", taken)
        return taken

    def update(self, pc: int, taken: bool, predicted: bool) -> None:
        """Train the predictor with the resolved outcome."""
        self.cond("mispredict", taken != predicted)
        index = self._index(pc)
        entry = self.btb[index]
        if entry is None or entry["pc"] != pc:
            self.cond("update_new_entry", True)
            self.btb[index] = {"pc": pc, "ctr": 2 if taken else 1}
            return
        self.cond("update_new_entry", False)
        if taken:
            entry["ctr"] = min(3, entry["ctr"] + 1)
        else:
            entry["ctr"] = max(0, entry["ctr"] - 1)
        self.cond("ctr_saturated_taken", entry["ctr"] == 3)
        self.cond("ctr_saturated_not_taken", entry["ctr"] == 0)

    def reset(self) -> None:
        super().reset()
        self.btb = [None] * self.entries
