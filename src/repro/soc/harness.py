"""Test harness: turns a fuzzer-generated instruction body into a full
program image and runs it on a DUT and/or the golden model.

As in real processor-fuzzing setups (TheHuzz, DifuzzRTL), a fixed preamble
initialises the pointer registers to valid data addresses before the test
body runs, so that memory instructions have a fighting chance of touching
mapped memory; a ``wfi`` terminator marks normal test completion.  The same
image runs on both simulators, so the preamble can never cause a mismatch.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, NamedTuple

from repro.golden.simulator import GoldenSimulator, SimConfig
from repro.golden.trace import CommitTrace
from repro.isa.encoder import encode
from repro.isa.spec import DRAM_BASE
from repro.rtl.report import CoverageReport


# -- engine-capability registry ----------------------------------------------


class EngineSpec(NamedTuple):
    """What one harness kind can do.

    ``batch_cls`` is the kind's batched DUT engine (a
    ``DutBatchSimulator``-shaped class) or ``None`` for kinds that only
    have a scalar core — requesting ``dut_lanes`` on those fails loudly.
    """

    core_cls: type
    params_cls: type
    batch_cls: type | None


def _load_rocket() -> EngineSpec:
    from repro.soc.batch import DutBatchSimulator
    from repro.soc.rocket import RocketCore, RocketParams

    return EngineSpec(RocketCore, RocketParams, DutBatchSimulator)


def _load_boom() -> EngineSpec:
    from repro.soc.batch_boom import BoomBatchSimulator
    from repro.soc.boom import BoomCore, BoomParams

    return EngineSpec(BoomCore, BoomParams, BoomBatchSimulator)


#: kind -> lazy :class:`EngineSpec` loader.  This is the single place a
#: harness kind declares its core, params and (optional) batch engine:
#: adding a core kind means adding one loader entry here — the harness,
#: factory and fleet layers all dispatch through it.
ENGINE_REGISTRY: dict[str, Callable[[], EngineSpec]] = {
    "rocket": _load_rocket,
    "boom": _load_boom,
}

#: Harness kinds a :class:`HarnessFactory` can build (CampaignSpec wiring).
HARNESS_KINDS = tuple(ENGINE_REGISTRY)


def resolve_engine(kind: str) -> EngineSpec:
    """Registry lookup with the loud unknown-kind error.

    Deliberately uncached: the loaders only touch ``sys.modules`` after
    the first import, and tests register throwaway kinds.
    """
    try:
        loader = ENGINE_REGISTRY[kind]
    except KeyError:
        raise ValueError(
            f"unknown harness kind: {kind!r} (expected one of {HARNESS_KINDS})"
        ) from None
    return loader()


def _batch_engine_for(core) -> type | None:
    """The registered batch engine matching a scalar core, if any."""
    for kind in ENGINE_REGISTRY:
        spec = resolve_engine(kind)
        if isinstance(core, spec.core_cls):
            return spec.batch_cls
    return None


@lru_cache(maxsize=1)
def _preamble_cached() -> tuple[int, ...]:
    """Encoded preamble — fixed, so encoded once per process."""
    return (
        encode("auipc", rd=2, imm=0x80),        # sp = pc + 0x80000
        encode("addi", rd=2, rs1=2, imm=0x400),
        encode("auipc", rd=8, imm=0x80),        # s0 = pc+8 + 0x80000
        encode("addi", rd=8, rs1=8, imm=0xF8),
        encode("auipc", rd=3, imm=0x80),        # gp = pc+16 + 0x80000
        encode("addi", rd=3, rs1=3, imm=-16),
        encode("auipc", rd=4, imm=0x80),        # tp = pc+24 + 0x80000
        encode("addi", rd=4, rs1=4, imm=0x1E8),
        encode("addi", rd=10, rs1=0, imm=8),    # a0 = 8
        encode("addi", rd=11, rs1=0, imm=3),    # a1 = 3
        encode("addi", rd=12, rs1=0, imm=-1),   # a2 = -1
        encode("addi", rd=5, rs1=0, imm=0x7F),  # t0 = 127
        encode("addi", rd=6, rs1=0, imm=1),     # t1 = 1
        encode("slli", rd=6, rs1=6, shamt=31),  # t1 = 1 << 31
        encode("addi", rd=7, rs1=0, imm=0),     # t2 = 0
        encode("addi", rd=9, rs1=2, imm=64),    # s1 = sp + 64
    )


def preamble_words() -> list[int]:
    """Register-initialisation preamble (position: start of the image).

    Uses ``auipc``-relative addressing so it works regardless of the sign
    of the load address.  After it runs::

        sp = base + 0x80400    s0 = base + 0x80100    gp = base + 0x80000
        tp = base + 0x80200    a0..a2, t0..t2 = small mixed constants
    """
    return list(_preamble_cached())


TERMINATOR = encode("wfi")


@lru_cache(maxsize=8192)
def _ra_setup_cached(body_len: int) -> tuple[int, ...]:
    """``ra``-initialisation chain — depends only on the body length.

    ra = pc_of_auipc + offset  ->  address of the wfi terminator.  The
    offset depends on how many addi instructions the chain itself needs.
    """
    n_addi = 1
    while 4 * (1 + n_addi + body_len) - 2044 * (n_addi - 1) > 2047:
        n_addi += 1
    total = 4 * (1 + n_addi + body_len)
    ra_setup = [encode("auipc", rd=1, imm=0)]
    ra_setup += [encode("addi", rd=1, rs1=1, imm=2044)] * (n_addi - 1)
    ra_setup.append(encode("addi", rd=1, rs1=1, imm=total - 2044 * (n_addi - 1)))
    return tuple(ra_setup)


def build_program(body: list[int]) -> list[int]:
    """Full program image: preamble + ra setup + fuzzed body + terminator.

    ``ra`` is pointed at the terminating ``wfi`` so that generated code
    ending in ``ret`` (every corpus-shaped function does) terminates the test
    cleanly instead of escaping to address 0.  The fixed parts (preamble,
    per-length ra chain) are memoized — the harness builds one image per
    test, so re-encoding them dominated image construction.
    """
    return [*_preamble_cached(), *_ra_setup_cached(len(body)),
            *body, TERMINATOR]


class DutHarness:
    """Runs test bodies on one DUT core and on the golden model.

    Parameters
    ----------
    core:
        Any object with ``run(program, base) -> (CommitTrace, CoverageReport)``
        (RocketCore or BoomCore).
    max_steps:
        Execution cap forwarded to the golden model (must match the core's
        own ``params.max_steps`` for trace comparability).
    golden_lanes:
        Lane-group width for the batched golden engine
        (:class:`repro.golden.batch.GoldenBatchSimulator`).  ``0`` (the
        default) keeps the scalar golden path; any positive width routes
        :meth:`run_golden_batch` / :meth:`run_differential_batch` through
        numpy lane execution, which is bit-identical to the scalar engine
        (pinned by ``tests/golden/test_batch.py``) but several times
        faster on whole batches.
    dut_lanes:
        Lane-group width for the batched DUT engine of the core's kind
        (:class:`repro.soc.batch.DutBatchSimulator` for Rocket,
        :class:`repro.soc.batch_boom.BoomBatchSimulator` for BOOM,
        resolved through :data:`ENGINE_REGISTRY`).  ``0`` (the default)
        keeps the scalar DUT; any positive width routes
        :meth:`run_dut_batch` / :meth:`run_differential_batch` through
        numpy lane execution producing bit-identical traces *and* coverage
        reports (pinned by ``tests/soc/test_batch.py`` and
        ``tests/soc/test_batch_boom.py``).  Cores whose kind declares no
        batch engine reject it loudly.
    """

    def __init__(self, core, max_steps: int = 4096,
                 golden_lanes: int = 0, dut_lanes: int = 0) -> None:
        self.core = core
        self.max_steps = max_steps
        self.golden_lanes = golden_lanes
        self.dut_lanes = dut_lanes
        self.golden = GoldenSimulator(SimConfig(max_steps=max_steps))
        self._golden_batch = None
        self._dut_batch = None
        if golden_lanes > 0:
            from repro.golden.batch import GoldenBatchSimulator

            self._golden_batch = GoldenBatchSimulator(
                SimConfig(max_steps=max_steps), lanes=golden_lanes
            )
        if dut_lanes > 0:
            batch_cls = _batch_engine_for(core)
            if batch_cls is None:
                raise ValueError(
                    f"dut_lanes requires a DUT core with a batch engine; "
                    f"{type(core).__name__} declares none in ENGINE_REGISTRY")
            self._dut_batch = batch_cls(core.params, lanes=dut_lanes)

    @property
    def total_arms(self) -> int:
        """Static size of the DUT's condition-coverage universe."""
        return self.core.cov.total_arms

    def run_dut(self, body: list[int], base: int = DRAM_BASE) -> tuple[CommitTrace, CoverageReport]:
        """Simulate the body on the DUT; returns (trace, coverage report)."""
        return self.core.run(build_program(body), base)

    def run_golden(self, body: list[int], base: int = DRAM_BASE) -> CommitTrace:
        """Simulate the body on the golden model; returns its trace."""
        return self.golden.run(build_program(body), base)

    def run_differential(self, body: list[int], base: int = DRAM_BASE):
        """Run both simulators; returns (dut_trace, golden_trace, report)."""
        dut_trace, report = self.run_dut(body, base)
        golden_trace = self.run_golden(body, base)
        return dut_trace, golden_trace, report

    # -- batched golden path ------------------------------------------------

    def run_golden_batch(self, bodies: list[list[int]],
                         base: int = DRAM_BASE) -> list[CommitTrace]:
        """Golden traces for a whole batch of bodies, in order.

        With ``golden_lanes > 0`` the bodies execute as lockstep numpy
        lanes; otherwise this is the scalar path in a loop.  Either way the
        traces are bit-identical to ``[self.run_golden(b) for b in bodies]``.
        """
        programs = [build_program(body) for body in bodies]
        if self._golden_batch is not None:
            return self._golden_batch.run_batch(programs, base)
        return [self.golden.run(program, base) for program in programs]

    def run_dut_batch(self, bodies: list[list[int]],
                      base: int = DRAM_BASE) -> list[tuple[CommitTrace, CoverageReport]]:
        """DUT ``(trace, report)`` pairs for a whole batch, in order.

        With ``dut_lanes > 0`` the bodies execute as lockstep numpy lanes;
        otherwise this is the scalar path in a loop.  Either way the pairs
        are bit-identical to ``[self.run_dut(b) for b in bodies]``.
        """
        programs = [build_program(body) for body in bodies]
        if self._dut_batch is not None:
            return self._dut_batch.run_batch(programs, base)
        return [self.core.run(program, base) for program in programs]

    def run_differential_batch(self, bodies: list[list[int]],
                               base: int = DRAM_BASE):
        """Batch form of :meth:`run_differential`; results in order.

        Each side that has a lane engine configured runs as one batched
        call; with both ``golden_lanes`` and ``dut_lanes`` set the whole
        differential chunk is vectorised end to end.  Executors route whole
        batches here so the speedup survives the executor and fleet layers.
        """
        golden_traces = self.run_golden_batch(bodies, base)
        dut_results = self.run_dut_batch(bodies, base)
        return [(dut_trace, golden_trace, report)
                for (dut_trace, report), golden_trace
                in zip(dut_results, golden_traces)]


def make_harness(kind: str = "rocket", params=None, golden_lanes: int = 0,
                 dut_lanes: int = 0) -> DutHarness:
    """Harness around any registered core kind, batch engines included."""
    engine = resolve_engine(kind)
    core_params = params or engine.params_cls()
    return DutHarness(engine.core_cls(core_params),
                      max_steps=core_params.max_steps,
                      golden_lanes=golden_lanes, dut_lanes=dut_lanes)


def make_rocket_harness(params=None, golden_lanes: int = 0,
                        dut_lanes: int = 0) -> DutHarness:
    """Harness around a (buggy, by default) RocketCore."""
    return make_harness("rocket", params, golden_lanes, dut_lanes)


def make_boom_harness(params=None, golden_lanes: int = 0,
                      dut_lanes: int = 0) -> DutHarness:
    """Harness around a BoomCore."""
    return make_harness("boom", params, golden_lanes, dut_lanes)


@dataclass(frozen=True)
class HarnessFactory:
    """Picklable recipe for building a :class:`DutHarness`.

    Executors that shard simulation across processes
    (:class:`~repro.fuzzing.pool.ShardedExecutor`) ship this to each worker,
    which builds its own harness once from it — the params dataclasses
    pickle cheaply, while a live harness (core + caches + coverage database)
    would not.  Calling the factory builds a fresh, independent harness, so
    it also serves as the harness argument to ``FuzzLoop``.
    """

    kind: str = "rocket"
    params: object = None
    #: Lane-group width for the batched golden engine (0 = scalar golden).
    golden_lanes: int = 0
    #: Lane-group width for the kind's batched DUT engine (0 = scalar DUT;
    #: kinds without a registered engine reject it with a loud error).
    dut_lanes: int = 0

    def __call__(self) -> DutHarness:
        return make_harness(self.kind, self.params, self.golden_lanes,
                            self.dut_lanes)


def harness_factory(kind: str = "rocket", params=None,
                    golden_lanes: int = 0,
                    dut_lanes: int = 0) -> HarnessFactory:
    """Picklable factory for any registered harness kind.

    The generic entry point fleet specs use
    (:class:`repro.fuzzing.fleet.CampaignSpec` accepts a kind string and
    resolves it here), validating the kind — and, when ``dut_lanes`` is
    requested, the kind's batch-engine capability — at spec-build time
    rather than inside a worker process.
    """
    engine = resolve_engine(kind)
    if dut_lanes and engine.batch_cls is None:
        raise ValueError(
            f"dut_lanes requires a harness kind with a batch engine; "
            f"{kind!r} declares none in ENGINE_REGISTRY")
    return HarnessFactory(kind, params, golden_lanes, dut_lanes)


def rocket_harness_factory(params=None, golden_lanes: int = 0,
                           dut_lanes: int = 0) -> HarnessFactory:
    """Picklable factory for :func:`make_rocket_harness`."""
    return HarnessFactory("rocket", params, golden_lanes, dut_lanes)


def boom_harness_factory(params=None, golden_lanes: int = 0,
                         dut_lanes: int = 0) -> HarnessFactory:
    """Picklable factory for :func:`make_boom_harness`."""
    return HarnessFactory("boom", params, golden_lanes, dut_lanes)
