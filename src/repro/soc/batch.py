"""Batched structure-of-arrays DUT execution: numpy lanes for RocketCore.

The golden half of the vectorise-the-simulators item (``repro.golden.batch``)
made the reference ISS cheap; this module closes the DUT half.  A
:class:`DutBatchSimulator` executes N test programs as lockstep numpy lanes
through the Rocket core model — PC vector, ``32xN`` register file, per-lane
dense memory arena and the same precomputed decode dispatch table the golden
engine builds — producing per-lane :class:`~repro.golden.trace.CommitTrace`\\ s
*and* per-lane :class:`~repro.rtl.report.CoverageReport`\\ s bit-identical to
the scalar ``RocketCore.run`` path.

What is new relative to the golden half is microarchitectural state and
coverage:

- **SoA caches and predictor.**  ``SetAssocCache`` valid/tag/LRU state and
  the BTB live as per-lane arrays (:class:`_SoACache`) with masked update
  kernels for the fetch path; the D$ side and the predictor update run as
  exact per-lane mirror loops (memory instructions are a minority of the
  stream, so the vector win comes from the fetch/decode/ALU/CSR planes).
- **Lane-wise coverage.**  Every scalar ``record_mask`` fold — the memoized
  decode masks, the trap-cause comparator groups, the hazard pairs, the
  idle interrupt poll — becomes a vectorised OR into an N-lane bitmap
  matrix (``covmat``, one row of packed uint64 words per lane) that
  collapses to per-lane packed :class:`~repro.rtl.bitset.Bitset` reports at
  the end.  Condition *values* replicate the scalar dataflow exactly;
  recording order is free because coverage accumulation is an OR.
- **The trap handler is part of the dispatch table.**  Unlike the golden
  engine's analytic trap plane, the DUT must execute handler instructions
  (they cost cycles, hit the I$, write x31, record hazards).  The handler
  image is appended to the dispatch table as six extra columns, so trap
  entry is just a vectorised PC redirect and the handler body runs as
  ordinary vector rounds with trace emission suppressed.

Rare/hard events — atomics, misaligned fetch, stores that would make a
cached I$ line stale under Bug1 — peel single lanes to the retained scalar
core via the shared per-instruction step hook
(:meth:`~repro.soc.rocket.core.RocketCore.step_cycle`), exactly as
``golden.batch`` peels to ``step_instruction``: lane state is spliced into a
:class:`~repro.soc.rocket.core.RunState`, the scalar core steps until the
lane can rejoin, and the result (including the peeled steps' coverage bits)
is spliced back.  Hard-case semantics keep one implementation.

Parity — traces *and* coverage reports, at every lane width, including the
peel/fallback paths — is pinned by ``tests/soc/test_batch.py``.
"""

from __future__ import annotations

from repro.golden.csr import (
    MSTATUS_MIE,
    MSTATUS_MPIE,
    MSTATUS_MPP_MASK,
    MSTATUS_MPP_SHIFT,
)
from repro.golden.simulator import SimConfig, trap_handler_image
from repro.golden.batch import (
    DEFAULT_LANES,
    F_IMM,
    K_AMO,
    K_ILLEGAL,
    K_MRET,
    K_PEEL,
    K_STORE,
    LANE_MIN,
    _LaneGroup,
    _LaneMemory,
    _record as _table_record,
)
from repro.golden.trace import CommitTrace, MemOp, TraceEntry
from repro.isa import spec
from repro.isa.decoder import decode
from repro.rtl.bitset import Bitset
from repro.rtl.report import CoverageReport
from repro.soc.rocket.core import RocketCore
from repro.soc.rocket.params import RocketParams

try:
    import numpy as _np
except ImportError:  # pragma: no cover - the CI image always has numpy
    _np = None

__all__ = ["DutBatchSimulator", "DEFAULT_LANES", "LANE_MIN"]


def _nz1(mask):
    """``flatnonzero`` for 1-D masks without the ravel/asarray wrapper —
    the round loop calls this dozens of times per step."""
    return mask.nonzero()[0]

# -- per-word metadata table -------------------------------------------------
#
# The golden dispatch table carries what *execution* needs (kind, operand
# fields, flags); the DUT additionally needs what the *coverage and timing*
# model reads off the decoded instruction.  Bits 0-14 are the raw rd/rs1/rs2
# fields; the M_* flags above bit 16 are static predicates of the word.

M_RS1READ = 1 << 16    # spec.reads_rs1
M_RS2READ = 1 << 17    # spec.reads_rs2
M_WRD = 1 << 18        # spec.writes_rd
M_MULDIV = 1 << 19
M_DIVLIKE = 1 << 20    # mnemonic starts with div/rem
M_LOAD = 1 << 21
M_STORE = 1 << 22
M_MEM = 1 << 23        # spec.is_memory (loads/stores/amos)
M_BRANCH = 1 << 24
M_BEQ = 1 << 25
M_JAL = 1 << 26
M_JALR = 1 << 27
M_JUMP = 1 << 28       # spec.is_jump
M_CSR = 1 << 29
M_CSR_RO = 1 << 30     # static csr.read_only_violation value
M_CSR_CTR = 1 << 31    # csr in (cycle, time, instret)
M_FENCE = 1 << 32      # spec.is_fence
M_FENCEI = 1 << 33     # mnemonic == "fence.i"
M_CMP = 1 << 34        # slt/sltu/slti/sltiu
M_SHIFTI = 1 << 35     # fmt in (I_SHIFT64, I_SHIFT32)
M_MULHI = 1 << 36      # mulh/mulhsu/mulhu
M_AMO = 1 << 37
M_MINPRIV_SHIFT = 38   # bits 38-39: csr_min_privilege(csr)


def _meta_for(core: RocketCore, word: int) -> tuple[int, int]:
    """(meta flags, packed decode-condition mask) for one instruction word.

    Derived from the same :func:`decode` the scalar core uses; the decode
    mask comes from the core's own ``_decode_mask`` builder, so the two
    paths can never disagree on decode coverage.
    """
    ins = decode(word)
    dmask = core._decode_mask(ins)
    if ins is None:
        return 0, dmask
    s = ins.spec
    m = s.mnemonic
    meta = ins.rd | ins.rs1 << 5 | ins.rs2 << 10
    if s.reads_rs1:
        meta |= M_RS1READ
    if s.reads_rs2:
        meta |= M_RS2READ
    if s.writes_rd:
        meta |= M_WRD
    if s.is_muldiv:
        meta |= M_MULDIV
        if m.startswith(("div", "rem")):
            meta |= M_DIVLIKE
        if m in ("mulh", "mulhsu", "mulhu"):
            meta |= M_MULHI
    if s.is_load:
        meta |= M_LOAD
    if s.is_store:
        meta |= M_STORE
    if s.is_memory:
        meta |= M_MEM
    if s.is_amo:
        meta |= M_AMO
    if s.is_branch:
        meta |= M_BRANCH
        if m == "beq":
            meta |= M_BEQ
    if m == "jal":
        meta |= M_JAL
    elif m == "jalr":
        meta |= M_JALR
    if s.is_jump:
        meta |= M_JUMP
    if s.is_csr:
        meta |= M_CSR
        ro = (
            spec.csr_is_read_only(ins.csr)
            and not (m in ("csrrs", "csrrc") and ins.rs1 == 0)
            and not (m in ("csrrsi", "csrrci") and ins.zimm == 0)
        )
        if ro:
            meta |= M_CSR_RO
        if ins.csr in (spec.CSR_CYCLE, spec.CSR_TIME, spec.CSR_INSTRET):
            meta |= M_CSR_CTR
        meta |= spec.csr_min_privilege(ins.csr) << M_MINPRIV_SHIFT
    if s.is_fence:
        meta |= M_FENCE
    if m == "fence.i":
        meta |= M_FENCEI
    if m in ("slt", "sltu", "slti", "sltiu"):
        meta |= M_CMP
    if s.fmt in ("I_SHIFT64", "I_SHIFT32"):
        meta |= M_SHIFTI
    return meta, dmask


class DutBatchSimulator:
    """Structure-of-arrays batch DUT producing scalar-identical results.

    >>> batch = DutBatchSimulator(lanes=32)
    >>> results = batch.run_batch([prog0, prog1, ...])   # doctest: +SKIP

    ``run_batch`` returns one ``(CommitTrace, CoverageReport)`` pair per
    program — the same tuple ``RocketCore.run`` produces, bit-identical.

    Parameters
    ----------
    params:
        Same :class:`RocketParams` the scalar core takes.  The retained
        scalar core (also the peel target) is built from it once.
    lanes:
        Lane-group width; see the ROADMAP's "Choosing lane widths
        (golden + DUT)" guidance.
    """

    #: Core/params classes — subclasses (``repro.soc.batch_boom``) override
    #: these two attributes plus :meth:`_group` to batch a different core.
    _CORE_CLS = RocketCore
    _PARAMS_CLS = RocketParams

    def __init__(self, params=None, lanes: int = DEFAULT_LANES) -> None:
        if lanes < 1:
            raise ValueError(f"lanes must be >= 1, got {lanes}")
        self.params = params or self._PARAMS_CLS()
        self.lanes = lanes
        self._core = self._CORE_CLS(self.params)
        #: word -> (meta flags, packed decode mask), shared across groups.
        self._meta_cache: dict[int, tuple[int, int]] = {}
        #: cause -> coverage row for the trap-entry condition group.
        self._trap_rows: dict[int, object] = {}
        self._arm_vec: dict[str, tuple[int, object, object]] | None = None
        self._arm_int: dict[str, tuple[int, int]] | None = None
        self._cblocks: dict[str, "_CondBlock"] = {}
        self._idle_row = None
        cov = self._core.cov
        self.total_arms = cov.total_arms
        #: covmat width: packed-arm bitmap words per lane.
        self.W = (cov.total_arms + 63) // 64

    # -- coverage plumbing ---------------------------------------------------

    def _row(self, mask: int):
        """Fold a python-int arm mask into a (W,) uint64 coverage row."""
        np = _np
        row = np.zeros(self.W, dtype=np.uint64)
        lo = (1 << 64) - 1
        for w in range(self.W):
            if not mask:
                break
            row[w] = mask & lo
            mask >>= 64
        return row

    def _arm_tables(self):
        """(vector pairs, int pairs): for every declared condition, the
        false/true arm bits keyed by full condition name.

        Vector pairs are ``(word, F_bit, T_bit)`` — the two arms of one
        condition always share a 64-bit word because the false arm index is
        even.  Int pairs are full-precision ``(F_mask, T_mask)`` python
        ints for the per-lane mirror loops, which accumulate one int mask
        per lane and fold it once.
        """
        if self._arm_vec is None:
            np = _np
            vec: dict[str, tuple[int, object, object]] = {}
            ints: dict[str, tuple[int, int]] = {}
            for name, info in self._core.cov._by_name.items():
                b = 2 * info.index
                vec[name] = (
                    b >> 6,
                    np.uint64(1 << (b & 63)),
                    np.uint64(1 << ((b & 63) + 1)),
                )
                ints[name] = (1 << b, 1 << (b + 1))
            self._arm_vec = vec
            self._arm_int = ints
        return self._arm_vec, self._arm_int

    def _cond_block(self, key: str, items):
        """Memoized :class:`_CondBlock` for one static recording site."""
        blk = self._cblocks.get(key)
        if blk is None:
            blk = self._cblocks[key] = _CondBlock(self._arm_tables()[0], items)
        return blk

    def _trap_row(self, cause: int):
        row = self._trap_rows.get(cause)
        if row is None:
            row = self._row(self._core._trap_mask(cause))
            self._trap_rows[cause] = row
        return row

    def _idle(self):
        if self._idle_row is None:
            self._idle_row = self._row(self._core.irq._idle_mask)
        return self._idle_row

    def _meta(self, word: int) -> tuple[int, int]:
        rec = self._meta_cache.get(word)
        if rec is None:
            if len(self._meta_cache) >= 65536:
                self._meta_cache.clear()
            rec = _meta_for(self._core, word)
            self._meta_cache[word] = rec
        return rec

    # -- entry point ---------------------------------------------------------

    def run_batch(self, programs, base: int = spec.DRAM_BASE):
        """Execute ``programs``; one ``(trace, report)`` pair each, in order,
        bit-identical to ``[RocketCore(params).run(p, base) for p in ...]``.
        """
        progs = [list(p) for p in programs]
        if not progs:
            return []
        if not self._batchable(progs, base):
            return [self._core.run(p, base) for p in progs]
        out = []
        for i in range(0, len(progs), self.lanes):
            chunk = progs[i:i + self.lanes]
            if len(chunk) < LANE_MIN:
                out.extend(self._core.run(p, base) for p in chunk)
            else:
                out.extend(self._group(chunk, base).run())
        return out

    def _group(self, chunk, base: int):
        """Lane-group class hook; subclasses return their own group."""
        return _DutLaneGroup(self, chunk, base)

    def _batchable(self, progs: list[list[int]], base: int) -> bool:
        if _np is None or len(progs) < LANE_MIN:
            return False
        p = self.params
        # The vector cache kernels model the default 2-way geometry; exotic
        # configurations stay on the (retained, exact) scalar path.
        if p.icache_ways != 2 or p.dcache_ways != 2:
            return False
        lmax = max(len(q) for q in progs)
        # The dispatch table must sit inside DRAM, clear of the handler.
        return spec.DRAM_BASE <= base and base + 4 * lmax <= spec.TRAP_VECTOR


class _CondBlock:
    """A compiled multi-condition recording site.

    ``_recs`` pays ~3 numpy calls *per condition*; at lane widths of a few
    hundred that fixed per-call overhead dwarfs the actual bit work.  A
    block is compiled once per static call site from ``(name, mode)`` items
    — mode ``"D"`` dynamic, ``"G"`` dynamic-gated (contributes nothing
    where the gate is false), or a bool literal for constant-arm items —
    and records the whole site with O(1) numpy calls: stack the value rows,
    one ``where`` against per-item arm columns, zero the gated rows' masked
    lanes, segment-OR rows sharing a bitmap word (``bitwise_or.reduceat``),
    then a single scatter into the lane bitmap matrix.
    """

    __slots__ = ("fb", "tb", "order", "starts", "uw", "gidx", "cvec",
                 "extra", "permute")

    def __init__(self, vp, items) -> None:
        np = _np
        rows = []          # (word, F_bit, T_bit) per dynamic item
        gidx = []          # dynamic-row indices that carry a gate
        consts: dict[int, int] = {}
        for name, mode in items:
            w, fb, tb = vp[name]
            if mode is True or mode is False:
                consts[w] = consts.get(w, 0) | int(tb if mode else fb)
                continue
            if mode == "G":
                gidx.append(len(rows))
            rows.append((w, fb, tb))
        ws = np.array([r[0] for r in rows], dtype=np.intp)
        self.fb = np.array([r[1] for r in rows], dtype=np.uint64)[:, None]
        self.tb = np.array([r[2] for r in rows], dtype=np.uint64)[:, None]
        self.gidx = np.array(gidx, dtype=np.intp)
        order = np.argsort(ws, kind="stable")
        self.permute = bool((order != np.arange(order.size)).any())
        self.order = order
        sw = ws[order]
        uw, starts = np.unique(sw, return_index=True)
        self.uw = uw
        self.starts = starts
        # Constant contributions: fold into the reduced rows where the word
        # is already present, else scatter separately.
        cvec = np.zeros((uw.size, 1), dtype=np.uint64)
        extra = []
        hit_any = False
        pos = {int(w): i for i, w in enumerate(uw)}
        for w, v in consts.items():
            if w in pos:
                cvec[pos[w], 0] = np.uint64(v)
                hit_any = True
            else:
                extra.append((w, np.uint64(v)))
        self.cvec = cvec if hit_any else None
        self.extra = extra

    def record(self, covmat, lanes, vals, gates=()) -> None:
        """OR this site's arms into ``covmat[lanes]``.

        ``vals``: one (k,) bool array per dynamic item, in item order.
        ``gates``: one (k,) bool array per gated item, in gated-item order.
        """
        if not lanes.size:
            return
        np = _np
        k = lanes.size
        # concatenate+reshape beats np.stack here: same layout, none of the
        # per-row python shim the stack wrapper pays.
        contrib = np.where(np.concatenate(vals).reshape(len(vals), k),
                           self.tb, self.fb)
        if gates:
            gi = self.gidx
            contrib[gi] = np.where(
                np.concatenate(gates).reshape(len(gates), k),
                contrib[gi], np.uint64(0))
        if self.permute:
            contrib = contrib[self.order]
        red = np.bitwise_or.reduceat(contrib, self.starts, axis=0)
        if self.cvec is not None:
            red |= self.cvec
        uw = self.uw
        if uw.size == 1:
            covmat[lanes, uw[0]] |= red[0]
        else:
            covmat[lanes[:, None], uw[None, :]] |= red.T
        for w, v in self.extra:
            covmat[lanes, w] |= v


#: Compiled-site specs (see :class:`_CondBlock`): ``"D"`` dynamic, ``"G"``
#: gated, bool literal constant.  Gates are passed in gated-item order.
_IC_SPEC = (
    ("rocket.icache.hit", "D"),
    ("rocket.icache.refill", "D"),
    ("rocket.icache.hit_way0", "G"),
    ("rocket.icache.hit_way1", "G"),
    ("rocket.icache.set_conflict", "G"),
    ("rocket.icache.evict_valid", "G"),
)

_DSTAGE_SPEC = (
    ("rocket.hazard.raw_rs1_ex", "D"),
    ("rocket.hazard.raw_rs2_ex", "D"),
    ("rocket.hazard.raw_rs1_mem", "D"),
    ("rocket.hazard.raw_rs2_mem", "D"),
    ("rocket.hazard.load_use_stall", "D"),
    ("rocket.hazard.muldiv_busy", "D"),
    ("rocket.hazard.chain3", "D"),
    ("rocket.hazard.chain5", "D"),
    ("rocket.hazard.sp_update_use", "D"),
    ("rocket.hazard.load_use_after_miss", "D"),
    ("rocket.execute.muldiv_chain", "G"),
    ("rocket.execute.div_after_mul", "G"),
    ("rocket.csr.read_only_violation", "G"),
    ("rocket.csr.priv_violation", "G"),
    ("rocket.csr.counter_read", "G"),
    ("rocket.csr.in_user_mode", "D"),
    ("rocket.frontend.bpu.btb_hit", "G"),
    ("rocket.frontend.bpu.btb_alias", "G"),
    ("rocket.frontend.bpu.pred_taken", "G"),
)

_EXEC_SPEC = (
    ("rocket.csr.trap_taken", False),
    ("rocket.execute.br_taken", "G"),
    ("rocket.execute.br_backward", "G"),
    ("rocket.execute.result_zero", "G"),
    ("rocket.execute.result_negative", "G"),
    ("rocket.execute.div_by_zero", "G"),
    ("rocket.execute.div_overflow", "G"),
    ("rocket.execute.mul_high", "G"),
    ("rocket.execute.shift_zero_amount", "G"),
    ("rocket.frontend.redirect", "D"),
    ("rocket.mem.fencei_flush", "G"),
    ("rocket.csr.mret", "D"),
    ("rocket.csr.enter_user", "D"),
    ("rocket.csr.wfi", "D"),
    ("rocket.csr.write", "D"),
    ("rocket.frontend.bpu.mispredict", "G"),
    ("rocket.frontend.bpu.update_new_entry", "G"),
    ("rocket.frontend.bpu.ctr_saturated_taken", "G"),
    ("rocket.frontend.bpu.ctr_saturated_not_taken", "G"),
    ("rocket.frontend.tight_loop", "G"),
    ("rocket.execute.beq_taken", "G"),
    ("rocket.execute.branch_after_cmp", "G"),
)

_MEM_SPEC = (
    ("rocket.mem.misaligned", False),
    ("rocket.mem.access_fault", False),
    ("rocket.mem.is_amo_op", False),
    ("rocket.mem.reservation_set", False),
    ("rocket.mem.base_is_sp", "D"),
    ("rocket.mem.base_is_gp_tp", "D"),
    ("rocket.mem.frame_access", "D"),
    ("rocket.mem.neg_offset_store", "D"),
    ("rocket.mem.same_line_reuse", "D"),
    ("rocket.mem.cross_line_pair", "D"),
    ("rocket.mem.redirty", "D"),
    ("rocket.mem.coalesce", "D"),
    ("rocket.dcache.hit_way0", "G"),
    ("rocket.dcache.hit_way1", "G"),
    ("rocket.dcache.hit", "D"),
    ("rocket.dcache.refill", "D"),
    ("rocket.mem.hit_streak4", "D"),
    ("rocket.dcache.set_conflict", "G"),
    ("rocket.dcache.evict_valid", "G"),
    ("rocket.dcache.evict_dirty", "G"),
    ("rocket.dcache.mark_dirty", "G"),
)

_RETIRE_SPEC = (
    ("rocket.tracer.suppress_muldiv", "D"),
    ("rocket.tracer.x0_amo_quirk", False),
    ("rocket.tracer.x0_jalr_quirk", "D"),
    ("rocket.tracer.emit_rd", "D"),
)

#: Variable arms of the analytic trap-handler pass (see ``_handler_skip``).
#: Everything else the six handler instructions record is the same on every
#: pass and lives in the precomputed constant row.
_HSKIP_D_SPEC = (
    ("rocket.hazard.load_use_stall", "D"),
    ("rocket.hazard.chain5", "D"),
    ("rocket.hazard.load_use_after_miss", "D"),
)

_HSKIP_X_SPEC = (
    # result arms for the four handler instructions with rd=x31: the values
    # written are mscratch_old, mepc, mepc+4 and the restored original x31.
    ("rocket.execute.result_zero", "D"),
    ("rocket.execute.result_zero", "D"),
    ("rocket.execute.result_zero", "D"),
    ("rocket.execute.result_zero", "D"),
    ("rocket.execute.result_negative", "D"),
    ("rocket.execute.result_negative", "D"),
    ("rocket.execute.result_negative", "D"),
    ("rocket.execute.result_negative", "D"),
    ("rocket.csr.enter_user", "D"),
    ("rocket.frontend.redirect", "D"),
)


class _SoACache:
    """Per-lane SoA mirror of :class:`SetAssocCache` bookkeeping state.

    Valid/dirty/tag/LRU arrays plus the per-lane LRU clock and last-evicted
    key.  Deliberately **no data arrays**: the D$ is write-through (line
    payloads always equal the arena) and vector-lane I$ payloads equal the
    arena by the poison-peel invariant (a store that would make a cached I$
    line stale peels the lane first), so payloads are reconstructed from the
    arena only when a lane peels to the scalar core.
    """

    __slots__ = ("valid", "dirty", "tag", "lru", "clock",
                 "last_ev", "last_ev_valid")

    def __init__(self, g: int, sets: int, ways: int) -> None:
        np = _np
        self.valid = np.zeros((g, sets, ways), dtype=bool)
        self.dirty = np.zeros((g, sets, ways), dtype=bool)
        self.tag = np.zeros((g, sets, ways), dtype=np.int64)
        self.lru = np.zeros((g, sets, ways), dtype=np.int64)
        self.clock = np.zeros(g, dtype=np.int64)
        self.last_ev = np.zeros(g, dtype=np.int64)
        self.last_ev_valid = np.zeros(g, dtype=bool)


class _DutLaneGroup(_LaneGroup):
    """One lockstep group of DUT lanes.

    Subclasses the golden engine's :class:`_LaneGroup` for the shared SoA
    substrate — arena, dispatch table, register/CSR vectors, trace columns,
    per-kind execution kernels — and replaces the round loop with the DUT's:
    microarchitectural modelling, lane-wise coverage, real (non-analytic)
    trap entry, and peeling to ``RocketCore.step_cycle``.
    """

    def __init__(self, sim: DutBatchSimulator, programs, base: int) -> None:
        np = _np
        self.sim = sim
        self.core = sim._core
        self.params = sim.params
        p = self.params
        self.W = sim.W
        self._vp, self._ip = sim._arm_tables()
        #: decode-mask row storage, keyed by packed mask (many words share
        #: one mask); grown on demand for self-modifying code.
        self._dm_index: dict[int, int] = {}
        self._dm_list: list = []
        self._dm_cache = None
        super().__init__(
            SimConfig(max_steps=p.max_steps, max_traps=p.max_traps),
            programs, base,
        )
        g = self.g

        # -- widen the dispatch table with the trap-handler image ----------
        # The DUT *executes* handler instructions (they cost cycles, hit the
        # I$, write x31, record hazards), so the handler image becomes six
        # extra table columns and trap entry is just a PC redirect.
        self.ncode = self.words.shape[1]
        hw = np.array([w & 0xFFFFFFFF for w in trap_handler_image()],
                      dtype="<u4")
        self.nhandler = hw.shape[0]
        self.words = np.hstack([self.words, np.tile(hw, (g, 1))])
        self._build_table()
        self.width = self.words.shape[1]
        self.hvec = np.uint64(spec.TRAP_VECTOR)
        self.hspan = np.uint64(4 * self.nhandler)

        # -- per-word metadata (coverage/timing predicates + true fields) --
        uw, inv = np.unique(self.words, return_inverse=True)
        inv = inv.reshape(-1)
        recs = [self._meta_rec(int(w)) for w in uw.tolist()]
        shape = self.words.shape
        self.meta = np.array([r[0] for r in recs], dtype=np.int64)[inv].reshape(shape)
        self.dmidx = np.array([r[1] for r in recs], dtype=np.int32)[inv].reshape(shape)
        self.meta_flat = self.meta.reshape(-1)
        self.dmidx_flat = self.dmidx.reshape(-1)

        # -- lane-wise coverage bitmap + timing ----------------------------
        self.covmat = np.zeros((g, self.W), dtype=np.uint64)
        self.cycles = np.zeros(g, dtype=np.int64)

        # -- SoA caches, BTB and geometry ----------------------------------
        self.ic = _SoACache(g, p.icache_sets, p.icache_ways)
        self.dc = _SoACache(g, p.dcache_sets, p.dcache_ways)
        self.off_bits = p.line_bytes.bit_length() - 1
        self.ic_mask = p.icache_sets - 1
        self.ic_tag_shift = self.ic_mask.bit_length()
        self.dc_mask = p.dcache_sets - 1
        self.dc_tag_shift = self.dc_mask.bit_length()
        ne = self.core.predictor.entries
        self.btb_n = ne
        self.btb_valid = np.zeros((g, ne), dtype=bool)
        self.btb_pc = np.zeros((g, ne), dtype=np.uint64)
        self.btb_ctr = np.zeros((g, ne), dtype=np.int64)

        # -- core-specific run-state trackers ------------------------------
        self._init_extra(g)

    def _init_extra(self, g: int) -> None:
        """Rocket's vectorised run-state trackers (spliced on peel)."""
        np = _np
        sim = self.sim
        p = self.params
        self.idle_row = sim._idle()
        self.prev1_rd = np.full(g, -1, dtype=np.int64)
        self.prev1_load = np.zeros(g, dtype=bool)
        self.prev1_md = np.zeros(g, dtype=bool)
        self.prev2_rd = np.full(g, -1, dtype=np.int64)
        self.prev2_load = np.zeros(g, dtype=bool)
        self.prev2_md = np.zeros(g, dtype=bool)
        self.muldiv_busy = np.zeros(g, dtype=np.int64)
        self.dep_chain = np.zeros(g, dtype=np.int64)
        self.prev_wrote_sp = np.zeros(g, dtype=bool)
        self.last_mul = np.zeros(g, dtype=bool)
        self.prev_cmp_rd = np.full(g, -1, dtype=np.int64)
        self.ra_saved = np.zeros(g, dtype=bool)
        self.t_prev_load = np.zeros(g, dtype=bool)  # tracer._prev_was_load
        self.prev_load_missed = np.zeros(g, dtype=bool)
        #: CSRs written outside the handler (rs.csrs_written), as a bitmap.
        self.csrw = np.zeros((g, 4096), dtype=bool)

        # -- per-lane python trackers (memory instructions are a minority;
        # the D$ mirror loop runs scalar, so plain python state is cheaper
        # than numpy scalar indexing — and peels share them by reference) --
        self.hit_streak = np.zeros(g, dtype=np.int64)
        self.last_line = np.full(g, -1, dtype=np.int64)        # -1 == None
        self.last_store_addr = np.zeros(g, dtype=np.uint64)    # 0 == None
        self.resv_addr = np.zeros(g, dtype=np.uint64)   # FSM tracker, not the
        self.resv_broken = np.zeros(g, dtype=bool)      # arch. reservation
        self.amo_rd: list = [None] * g
        self.amo_age = np.zeros(g, dtype=np.int64)
        self.t_store_buf: list = [[] for _ in range(g)]
        self.t_branch_counts: list = [dict() for _ in range(g)]
        self.t_branch_outcomes: list = [dict() for _ in range(g)]
        self.t_link_stack: list = [[] for _ in range(g)]
        self.t_line_touches: list = [dict() for _ in range(g)]
        self.t_evicted: list = [set() for _ in range(g)]
        self.t_sp_slots: list = [set() for _ in range(g)]

        # -- analytic trap-handler fast-forward (see _handler_skip) --------
        # Decode rows and I$ line geometry of the pristine handler image,
        # captured at build time (handler_ok gates dirty lanes off the fast
        # path, so the snapshot stays valid for every lane that uses it).
        dmr = self._dm_matrix()[
            self.dmidx[0, self.ncode:self.ncode + self.nhandler]]
        self._hskip_dm = np.bitwise_or.reduce(dmr, axis=0)
        self._hskip_row = None
        hl: list = []
        for k in range(self.nhandler):
            key = (spec.TRAP_VECTOR + 4 * k) >> self.off_bits
            if hl and hl[-1][0] == key:
                hl[-1][1] += 1
            else:
                hl.append([key, 1])
        self._hlines = [(int(k), int(cnt)) for k, cnt in hl]
        # The pass walk below is specific to the stock six-instruction image;
        # the timed-counter CSR needs per-instruction cycle checkpoints, so
        # that variant stays on the (exact) stepwise rounds.
        self._hskip_on = self.nhandler == 6 and not p.timed_counter_csr

    # -- per-word metadata ----------------------------------------------------

    def _meta_rec(self, word: int) -> tuple[int, int]:
        """(meta bits, decode-mask row index) for one instruction word."""
        meta, dmask = self.sim._meta(word)
        idx = self._dm_index.get(dmask)
        if idx is None:
            idx = len(self._dm_list)
            self._dm_index[dmask] = idx
            self._dm_list.append(self.sim._row(dmask))
            self._dm_cache = None
        return meta, idx

    def _dm_matrix(self):
        """Stacked decode-mask rows, indexable by ``dmidx`` values."""
        rows = self._dm_cache
        if rows is None or rows.shape[0] != len(self._dm_list):
            rows = self._dm_cache = _np.vstack(self._dm_list)
        return rows

    def _refresh_meta(self, lane: int, slot: int) -> None:
        meta, idx = self._meta_rec(int(self.words[lane, slot]))
        self.meta[lane, slot] = meta
        self.dmidx[lane, slot] = idx

    def _refresh_handler(self, lane: int) -> None:
        """Re-derive the handler's table columns from the arena.

        Self-modifying code can rewrite the handler; the DUT executes
        whatever bytes are there, so the handler columns must track the
        arena exactly like the code columns do.
        """
        hoff = (spec.TRAP_VECTOR - spec.DRAM_BASE) // 4
        for k in range(self.nhandler):
            word = int(self.arena32[lane, hoff + k])
            slot = self.ncode + k
            if int(self.words[lane, slot]) == word:
                continue
            packed, imm = _table_record(word)
            self.words[lane, slot] = word
            self.packed[lane, slot] = packed
            self.imm_tab[lane, slot] = imm
            self._refresh_meta(lane, slot)

    def note_write(self, lane: int, addr: int, size: int) -> None:
        super().note_write(lane, addr, size)  # code columns + handler_ok
        tlo = self.base
        thi = tlo + 4 * self.lmax
        if addr < thi and addr + size > tlo:
            s0 = max(0, (addr - tlo) // 4)
            s1 = min(self.lmax - 1, (addr + size - 1 - tlo) // 4)
            for slot in range(s0, s1 + 1):
                self._refresh_meta(lane, slot)
        hlo, hhi = self.handler_span
        if addr < hhi and addr + size > hlo:
            self._refresh_handler(lane)

    def _grow_cols(self, need: int) -> None:
        if need <= self.cap:
            return
        old_cap = self.cap
        old = getattr(self, "c_rdx", None)
        super()._grow_cols(need)
        # Widened rd column: the tracer can emit rd=0 entries (x0 quirks),
        # which the base engine's "0 means None" c_rd cannot represent.
        arr = _np.full((self.g, self.cap), -1, dtype=_np.int16)
        if old is not None:
            arr[:, :old_cap] = old
        self.c_rdx = arr
        self.c_rdx_flat = arr.reshape(-1)

    # -- lane-wise coverage ---------------------------------------------------

    def _rec(self, lanes, name: str, vals) -> None:
        """Vectorised ``record_mask``: OR each lane's T/F arm for one
        condition (``lanes`` must hold unique indices)."""
        w, fb, tb = self._vp[name]
        self.covmat[lanes, w] |= _np.where(vals, tb, fb)

    def _rec_true(self, lanes, name: str) -> None:
        w, fb, tb = self._vp[name]
        self.covmat[lanes, w] |= tb

    def _rec_false(self, lanes, name: str) -> None:
        w, fb, tb = self._vp[name]
        self.covmat[lanes, w] |= fb

    def _recs(self, lanes, items) -> None:
        """Batched :meth:`_rec`: accumulate many conditions over one lane
        set into a local (k, W) block, then scatter once.  Column slices of
        the accumulator are views, so each condition costs one cheap OR
        instead of a fancy-indexed read-modify-write of ``covmat``.

        Items are ``(name, vals)`` or ``(name, vals, gate)``; a gated item
        contributes nothing to lanes where ``gate`` is false (OR with zero),
        letting subset-only conditions ride in the superset's scatter."""
        if not lanes.size:
            return
        np = _np
        acc = np.zeros((lanes.size, self.W), dtype=np.uint64)
        vp = self._vp
        zero = np.uint64(0)
        for item in items:
            if len(item) == 2:
                name, vals = item
                gate = None
            else:
                name, vals, gate = item
            w, fb, tb = vp[name]
            col = acc[:, w]
            if vals is True:
                v = tb
            elif vals is False:
                v = fb
            else:
                v = np.where(vals, tb, fb)
            if gate is not None:
                v = np.where(gate, v, zero)
            col |= v
        self.covmat[lanes] |= acc

    def _recb(self, key: str, items, lanes, vals, gates=()) -> None:
        """Record one static multi-condition site through the simulator's
        compiled :class:`_CondBlock` cache (see that class)."""
        self.sim._cond_block(key, items).record(self.covmat, lanes, vals,
                                                gates)

    def _fold_int(self, lane: int, mask: int) -> None:
        """Fold a python-int arm mask (scalar-core ``run_bits``, mirror-loop
        accumulations) into one lane's bitmap row."""
        cm = self.covmat
        w = 0
        while mask:
            cm[lane, w] |= _np.uint64(mask & 0xFFFFFFFFFFFFFFFF)
            mask >>= 64
            w += 1

    def _report(self, lane: int) -> CoverageReport:
        """Collapse one lane's bitmap row into a packed report."""
        return CoverageReport(
            hits=Bitset.from_words(self.covmat[lane], self.sim.total_arms),
            total_arms=self.sim.total_arms,
            cycles=int(self.cycles[lane]),
        )

    # -- vector I$ kernels ----------------------------------------------------

    def _ic_has(self, lanes, key):
        """Per-lane I$ residency probe for line keys (no conditions, no LRU
        — mirrors ``_peek``); used by the Bug1 poison-peel check."""
        ic = self.ic
        idx = key & self.ic_mask
        tag = key >> self.ic_tag_shift
        return (
            (ic.valid[lanes, idx, 0] & (ic.tag[lanes, idx, 0] == tag))
            | (ic.valid[lanes, idx, 1] & (ic.tag[lanes, idx, 1] == tag))
        )

    def _icache_fetch(self, lanes, pcs):
        """Vector I$ probe + refill for one round's mapped fetches.

        Mirrors ``SetAssocCache.lookup`` then ``refill`` (2-way): first-match
        probe with per-way hit conditions, LRU-clock bump on hit, ``(valid,
        lru)``-min victim choice with way-0 tie-break on miss.  No data
        movement — vector-resident lines always equal the arena by the
        poison-peel invariant.  Returns the miss mask.
        """
        np = _np
        ic = self.ic
        key = (pcs >> np.uint64(self.off_bits)).astype(np.int64)
        idx = key & self.ic_mask
        tag = key >> self.ic_tag_shift
        v0 = ic.valid[lanes, idx, 0]
        t0 = ic.tag[lanes, idx, 0]
        v1 = ic.valid[lanes, idx, 1]
        t1 = ic.tag[lanes, idx, 1]
        h0 = v0 & (t0 == tag)
        h1 = ~h0 & v1 & (t1 == tag)
        hit = h0 | h1
        miss = ~hit
        l0 = ic.lru[lanes, idx, 0]
        l1 = ic.lru[lanes, idx, 1]
        take0a = (v0 < v1) | ((v0 == v1) & (l0 <= l1))
        vvalida = np.where(take0a, v0, v1)
        self._recb("ic", _IC_SPEC, lanes,
                   (hit, miss, h0, h1, v0 & v1, vvalida),
                   (hit, hit, miss, miss))
        hp = hit.nonzero()[0]
        if hp.size:
            lh = lanes[hp]
            ic.clock[lh] += 1
            way = np.where(h0[hp], 0, 1)
            ic.lru[lh, idx[hp], way] = ic.clock[lh]
        mp = miss.nonzero()[0]
        if mp.size:
            lm = lanes[mp]
            im = idx[mp]
            take0 = take0a[mp]
            vvalid = vvalida[mp]
            vtag = np.where(take0, t0[mp], t1[mp])
            ic.last_ev[lm] = np.where(
                vvalid, (vtag << self.ic_tag_shift) | im, ic.last_ev[lm])
            ic.last_ev_valid[lm] = vvalid  # no eviction -> None
            way = np.where(take0, 0, 1)
            ic.valid[lm, im, way] = True
            ic.dirty[lm, im, way] = False
            ic.tag[lm, im, way] = tag[mp]
            ic.clock[lm] += 1
            ic.lru[lm, im, way] = ic.clock[lm]
        return ~hit

    # -- analytic trap-handler fast-forward ----------------------------------

    def _hskip_const(self):
        """Constant coverage row of one clean handler pass.

        The six handler instructions record the same decode rows, hazard,
        CSR-check and system arms on every pass; fold them into one row so
        :meth:`_handler_skip` pays a single OR.  Derived from the
        instruction walk of the stock image (csrrw/csrrs/addi/csrrw/csrrw/
        mret, all rs1/rd traffic on x31): e.g. raw_rs1_ex is False at i1
        (rs1=x0) and True at i2 (addi after csrrs), so both arms are
        constant; the dep chain hits exactly 3 at i3 regardless of entry
        state, making chain3's arms constant too.
        """
        row = self._hskip_row
        if row is None:
            ip = self._ip
            arms = [
                ("rocket.hazard.raw_rs1_ex", False),
                ("rocket.hazard.raw_rs1_ex", True),
                ("rocket.hazard.raw_rs2_ex", False),
                ("rocket.hazard.raw_rs1_mem", False),
                ("rocket.hazard.raw_rs1_mem", True),
                ("rocket.hazard.raw_rs2_mem", False),
                ("rocket.hazard.load_use_stall", False),
                ("rocket.hazard.muldiv_busy", False),
                ("rocket.hazard.chain3", False),
                ("rocket.hazard.chain3", True),
                ("rocket.hazard.chain5", False),
                ("rocket.hazard.sp_update_use", False),
                ("rocket.hazard.load_use_after_miss", False),
                ("rocket.csr.read_only_violation", False),
                ("rocket.csr.priv_violation", False),
                ("rocket.csr.counter_read", False),
                ("rocket.csr.in_user_mode", False),
                ("rocket.csr.trap_taken", False),
                ("rocket.frontend.redirect", False),
                ("rocket.csr.mret", False),
                ("rocket.csr.mret", True),
                ("rocket.csr.enter_user", False),
                ("rocket.csr.wfi", False),
                ("rocket.csr.write", False),
                ("rocket.csr.write", True),
                ("rocket.csr.write_read_roundtrip", False),
                ("rocket.csr.mepc_user_write", False),
                ("rocket.csr.mstatus_mpp_clear", False),
                ("rocket.frontend.fetch_fault", False),
            ]
            lb = self.params.line_bytes
            for k in range(self.nhandler):
                arms.append(("rocket.frontend.line_cross",
                             ((spec.TRAP_VECTOR + 4 * k) & (lb - 1))
                             == lb - 4))
            m = 0
            for name, val in arms:
                m |= ip[name][val]
            row = self.sim._row(m)
            row |= self._hskip_dm
            self._hskip_row = row
        return row

    def _handler_skip(self, cl, tpc, cyc) -> None:
        """Apply one clean trap-handler pass as a closed form.

        A trap whose handler image is pristine (``handler_ok``) and whose
        mtvec still targets it runs six fixed instructions with no branches,
        no memory ops and no further traps, then lands back in the body at
        mepc+4.  Executing those six rounds stepwise is the dominant cost of
        trap-heavy workloads (the handler commits are untraced, so ~5/6 of
        all lane-steps produce no trace entries); instead, fast-forward the
        whole pass at trap entry: the same I$ kernel per line, the variable
        coverage arms, one constant row for everything else, and the exact
        architectural/hazard exit state (x31 is saved and restored, so the
        register file is net-unchanged; mepc = mscratch = return pc; mret
        recomposes mstatus and drops back to the trapped privilege).

        Bit-identical to the stepwise rounds; lanes that would die
        mid-handler (steps budget) are excluded by the caller and keep the
        stepwise path.
        """
        np = _np
        c = self.c
        p = self.params
        csrv = self.csrv
        # i0 (csrrw x31, mscratch, x31) is the only instruction whose hazard
        # arms see pre-trap state: its rs1=x31 read races the last body
        # writeback.  chain5 can only fire there (dep peaks at 3 inside).
        r1 = self.prev1_rd[cl] == 31
        lu = r1 & self.prev1_load[cl]
        self._recb("hskip_d", _HSKIP_D_SPEC, cl, (
            lu,
            r1 & (self.dep_chain[cl] + 1 >= 5),
            lu & self.prev_load_missed[cl],
        ))
        # architectural values surfacing in result arms
        mscr_old = csrv[spec.CSR_MSCRATCH][cl]
        x31_old = self.regs_flat[cl * 32 + 31]
        v2 = csrv[spec.CSR_MEPC][cl]            # written at trap entry
        v3 = (v2 + c["u4"]) & c["mask"]         # return pc (even, so the
        u0 = c["u0"]                            # mepc write mask is a no-op)
        hi63 = np.uint64(63)
        # I$: six sequential fetches of the handler line(s) — first access
        # per line through the real kernel (hit/miss arms, refill, LRU),
        # remaining accesses collapse to one record + clock bump.
        dcyc = np.full(cl.size, self.nhandler, dtype=np.int64)
        dcyc += lu
        ic = self.ic
        ones = np.ones(cl.size, dtype=bool)
        zeros = np.zeros(cl.size, dtype=bool)
        for key, cnt in self._hlines:
            missk = self._icache_fetch(
                cl, np.full(cl.size, key << self.off_bits, dtype=np.uint64))
            dcyc[missk] += p.icache_miss_penalty
            if cnt > 1:
                idx0 = key & self.ic_mask
                tag0 = key >> self.ic_tag_shift
                w0 = ic.valid[cl, idx0, 0] & (ic.tag[cl, idx0, 0] == tag0)
                self._recb("ic", _IC_SPEC, cl,
                           (ones, zeros, w0, ~w0, zeros, zeros),
                           (ones, ones, zeros, zeros))
                ic.clock[cl] += cnt - 1
                ic.lru[cl, idx0, np.where(w0, 0, 1)] = ic.clock[cl]
        # execute-stage variable arms + mret privilege return
        ms = csrv[spec.CSR_MSTATUS][cl]
        npv = (ms >> np.uint64(MSTATUS_MPP_SHIFT)) & c["u3"]
        self._recb("hskip_x", _HSKIP_X_SPEC, cl, (
            mscr_old == u0, v2 == u0, v3 == u0, x31_old == u0,
            (mscr_old >> hi63) != u0, (v2 >> hi63) != u0,
            (v3 >> hi63) != u0, (x31_old >> hi63) != u0,
            npv == np.uint64(spec.PRV_U),
            # mret redirects unless the trap was at the mret slot itself
            # (reachable only by a body jumping into the handler), where
            # return-pc happens to equal pc+4.
            v3 != ((self.hvec + self.hspan) & c["mask"]),
        ))
        self.covmat[cl] |= self._hskip_const()
        # exit state: CSRs, privilege, pc (vector CSRFile write + K_MRET)
        csrv[spec.CSR_MEPC][cl] = v3
        csrv[spec.CSR_MSCRATCH][cl] = v3
        keep = np.uint64(spec.WORD_MASK
                         & ~(MSTATUS_MIE | MSTATUS_MPIE | MSTATUS_MPP_MASK))
        msn = ms & keep
        msn |= np.where((ms & np.uint64(MSTATUS_MPIE)) != 0,
                        np.uint64(MSTATUS_MIE), u0)
        msn |= np.uint64(MSTATUS_MPIE)
        csrv[spec.CSR_MSTATUS][cl] = msn
        self.priv[cl] = npv.astype(np.int64)
        if (npv != np.uint64(spec.PRV_M)).any():
            self.all_m = False
        self.pc[cl] = v3
        # hazard-window exit state is entry-independent: mret has no rd, the
        # final csrrw writes x31, the dep chain resets at i1 and ends 0.
        self.prev1_rd[cl] = -1
        self.prev1_load[cl] = False
        self.prev1_md[cl] = False
        self.prev2_rd[cl] = 31
        self.prev2_load[cl] = False
        self.prev2_md[cl] = False
        self.dep_chain[cl] = 0
        self.prev_wrote_sp[cl] = False
        self.prev_cmp_rd[cl] = -1
        self.steps[cl] += self.nhandler
        cyc[tpc] += dcyc

    # -- the DUT round --------------------------------------------------------

    def _round(self, act) -> None:
        np = _np
        c = self.c
        p = self.params
        fnz = _nz1   # 1-D fast path: skips flatnonzero's ravel
        n = act.size
        pcs = self.pc[act]

        # --- fetch classification ----------------------------------------
        moff = pcs - c["dram"]
        mapped = moff <= c["dlim"]
        aligned = (pcs & c["u3"]) == c["u0"]
        toff = pcs - self.base_u
        hoff = pcs - self.hvec
        in_handler = hoff < self.hspan
        okf = mapped & aligned
        in_code = okf & (toff < self.tab_u)
        in_htab = okf & (hoff < self.hspan)
        in_tab = in_code | in_htab

        # --- result planes (same layout as the golden round) ---------------
        r_cause = np.full(n, -1, dtype=np.int64)
        r_tval = np.zeros(n, dtype=np.uint64)
        r_peel = np.zeros(n, dtype=bool)
        r_halt = np.zeros(n, dtype=bool)
        r_npc = pcs + c["u4"]
        r_hasrd = np.zeros(n, dtype=bool)
        r_val = np.zeros(n, dtype=np.uint64)
        r_memk = np.zeros(n, dtype=np.int64)
        r_mema = np.zeros(n, dtype=np.uint64)
        r_mems = np.zeros(n, dtype=np.int64)
        r_memd = np.zeros(n, dtype=np.uint64)
        r_csra = np.full(n, -1, dtype=np.int64)
        r_csrv = np.zeros(n, dtype=np.uint64)

        # --- dispatch-table gather (pure reads: includes lanes that later
        # peel — nothing may take effect until the peel set is known) ------
        it = fnz(in_tab)
        lanes_it = act[it]
        slots = np.where(
            in_code[it],
            (toff[it] >> c["u2"]).astype(np.int64),
            np.int64(self.ncode) + (hoff[it] >> c["u2"]).astype(np.int64),
        )
        flat = lanes_it * self.width + slots
        rec = self.packed_flat[flat]
        imm = self.imm_flat[flat]
        word = self.words_flat[flat]
        kind = rec & 0xFF
        rd = (rec >> 8) & 0xFF
        rs1 = (rec >> 16) & 0xFF
        rs2 = (rec >> 24) & 0xFF
        flags = rec >> 32
        a = self.regs_flat[lanes_it * 32 + rs1]
        breg = self.regs_flat[lanes_it * 32 + rs2]
        b = np.where((flags & F_IMM) != 0, imm, breg)

        # act-space scatters of the per-word planes
        kf = np.full(n, -1, dtype=np.int64)
        kf[it] = kind
        mf = np.zeros(n, dtype=np.int64)
        mf[it] = self.meta_flat[flat]
        immf = np.zeros(n, dtype=np.int64)
        immf[it] = imm.astype(np.int64)
        flagf = np.zeros(n, dtype=np.int64)
        flagf[it] = flags.astype(np.int64)
        dmif = np.full(n, -1, dtype=np.int64)
        dmif[it] = self.dmidx_flat[flat]
        r_word = np.zeros(n, dtype=np.uint32)
        r_word[it] = word
        r_rd = np.zeros(n, dtype=np.int64)
        r_rd[it] = rd

        # --- peel classification (before any vector side effect) ----------
        peelm = mapped & ~aligned       # misaligned pc: scalar-only path
        rest = okf & ~in_tab
        oowm = np.zeros(n, dtype=bool)
        if rest.any():
            ra = fnz(rest)
            aw = self.arena32[act[ra], (moff[ra] >> c["u2"]).astype(np.int64)]
            zero = aw == 0
            oowm[ra[zero]] = True       # zero word: vector illegal trap
            peelm[ra[~zero]] = True     # real code outside the table
        if lanes_it.size:
            peelm[it[kind == K_PEEL]] = True
            pa = fnz(kind == K_AMO)
            if pa.size:
                # Mapped, aligned atomics run scalar; faulting ones trap in
                # the vector plane (the kernel raises them exactly).
                wl = (flags[pa] >> 1) & 3
                wsz = np.where(wl == 2, np.uint64(4), np.uint64(8))
                addr = a[pa]
                ok = (((addr & (wsz - c["u1"])) == c["u0"])
                      & ((addr - c["dram"]) <= (c["dsize"] - wsz)))
                peelm[it[pa[ok]]] = True
            if p.bug1_fencei:
                ps = fnz(kind == K_STORE)
                if ps.size:
                    # Bug1 poison: a successful store into a line this
                    # lane's I$ holds would leave the cached copy stale —
                    # staleness only the scalar core models.  Peel first.
                    wl = (flags[ps] >> 1) & 3
                    wsz = c["u1"] << wl.astype(np.uint64)
                    addr = a[ps] + imm[ps]
                    ok = (((addr & (wsz - c["u1"])) == c["u0"])
                          & ((addr - c["dram"]) <= (c["dsize"] - wsz)))
                    offb = np.uint64(self.off_bits)
                    l0 = (addr >> offb).astype(np.int64)
                    l1 = ((addr + wsz - c["u1"]) >> offb).astype(np.int64)
                    lps = lanes_it[ps]
                    poison = ok & (self._ic_has(lps, l0) | self._ic_has(lps, l1))
                    peelm[it[ps[poison]]] = True
        npm = ~peelm
        lanes_np = act[npm]

        # --- per-step effects: interrupt-idle poll + base CPI --------------
        self.covmat[lanes_np] |= self.idle_row
        cyc = self.cycles[act].copy()
        cyc[npm] += 1

        # --- fetch: fault plane + vector I$ --------------------------------
        um = fnz(~mapped)               # unmapped lanes never peel
        if um.size:
            self._rec_true(act[um], "rocket.frontend.fetch_fault")
        pm = fnz(mapped & npm)
        if pm.size:
            lanes_m = act[pm]
            self._rec_false(lanes_m, "rocket.frontend.fetch_fault")
            lb = np.uint64(p.line_bytes)
            self._rec(lanes_m, "rocket.frontend.line_cross",
                      (pcs[pm] & (lb - c["u1"])) == lb - c["u4"])
            miss = self._icache_fetch(lanes_m, pcs[pm])
            cyc[pm[miss]] += p.icache_miss_penalty

        # --- decode condition rows ----------------------------------------
        if oowm.any():
            _zmeta, zidx = self._meta_rec(0)
            dmif[oowm] = zidx
        dp = fnz((dmif >= 0) & npm)
        if dp.size:
            self.covmat[act[dp]] |= self._dm_matrix()[dmif[dp]]

        # --- decoded-lane pipeline stage (hazards, CSR pre-checks,
        # predictor probe) — runs for lanes that later trap, too -----------
        d = fnz(npm & in_tab & (kf != K_ILLEGAL))
        pred = np.zeros(n, dtype=bool)
        if d.size:
            lanes_d = act[d]
            md = mf[d]
            mrd = md & 31
            mrs1 = (md >> 5) & 31
            mrs2 = (md >> 10) & 31
            p1rd = self.prev1_rd[lanes_d]
            p1ld = self.prev1_load[lanes_d]
            p1md = self.prev1_md[lanes_d]
            p2rd = self.prev2_rd[lanes_d]
            raw1 = ((md & M_RS1READ) != 0) & (mrs1 != 0) & (mrs1 == p1rd)
            raw2 = ((md & M_RS2READ) != 0) & (mrs2 != 0) & (mrs2 == p1rd)
            raw1m = ((md & M_RS1READ) != 0) & (mrs1 != 0) & (mrs1 == p2rd)
            raw2m = ((md & M_RS2READ) != 0) & (mrs2 != 0) & (mrs2 == p2rd)
            load_use = (raw1 | raw2) & p1ld
            cyc[d[load_use]] += 1
            is_md = (md & M_MULDIV) != 0
            busy = self.muldiv_busy[lanes_d]
            stall = is_md & (cyc[d] < busy)
            cyc[d] = np.where(stall, busy, cyc[d])
            dep = np.where(raw1 | raw2, self.dep_chain[lanes_d] + 1,
                           np.where((md & M_WRD) != 0, 1, 0))
            self.dep_chain[lanes_d] = dep
            sp_use = (self.prev_wrote_sp[lanes_d]
                      & ((md & M_RS1READ) != 0) & (mrs1 == 2))
            lu_miss = load_use & self.prev_load_missed[lanes_d]
            divlike = (md & M_DIVLIKE) != 0
            dam = (divlike & self.last_mul[lanes_d]
                   & (cyc[d] < busy + p.mul_latency))
            is_csr = (md & M_CSR) != 0
            prv_d = self.priv[lanes_d]
            # Predictor probe: SoA BTB gather for every decoded lane, recorded
            # (and consumed) only where the instruction is a branch.
            is_br_d = (md & M_BRANCH) != 0
            pc_d = pcs[d]
            slot_d = ((pc_d >> c["u2"]) % np.uint64(self.btb_n)).astype(
                np.int64)
            bv_d = self.btb_valid[lanes_d, slot_d]
            bpc_d = self.btb_pc[lanes_d, slot_d]
            hitb = bv_d & (bpc_d == pc_d)
            ptaken = hitb & (self.btb_ctr[lanes_d, slot_d] >= 2)
            self._recb("dstage", _DSTAGE_SPEC, lanes_d, (
                raw1, raw2, raw1m, raw2m, load_use, stall,
                dep >= 3, dep >= 5, sp_use, lu_miss,
                (raw1 | raw2) & p1md, dam,
                (md & M_CSR_RO) != 0,
                prv_d < ((md >> M_MINPRIV_SHIFT) & 3),
                (md & M_CSR_CTR) != 0,
                prv_d == spec.PRV_U,
                hitb, bv_d & (bpc_d != pc_d), ptaken,
            ), (is_md, is_md, is_csr, is_csr, is_csr,
                is_br_d, is_br_d, is_br_d))
            self.prev_wrote_sp[lanes_d] = ((md & M_WRD) != 0) & (mrd == 2)
            mdp = fnz(is_md)
            if mdp.size:
                lmd = lanes_d[mdp]
                self.last_mul[lmd] = ~divlike[mdp]
            pred[d] = ptaken & is_br_d

        # --- per-kind execution via the golden kernels --------------------
        prv_before = self.priv[act].copy()
        sel = fnz(npm[it]) if it.size else it
        any_trap = any_halt = any_mem = any_csr = False
        if sel.size:
            it2 = it[sel]
            any_trap, _exec_peel, any_halt, any_mem, any_csr = self._exec_kinds(
                act, it2, act[it2], kind[sel], rd[sel], rs1[sel], rs2[sel],
                flags[sel], a[sel], b[sel], breg[sel], imm[sel], pcs[it2],
                word[sel],
                r_cause, r_tval, r_peel, r_halt, r_npc, r_hasrd, r_val,
                r_memk, r_mema, r_mems, r_memd, r_csra, r_csrv,
            )
        if um.size:
            r_cause[um] = spec.EXC_INSTR_ACCESS_FAULT
            r_tval[um] = pcs[um]
            any_trap = True
        ow = fnz(oowm)
        if ow.size:
            r_cause[ow] = spec.EXC_ILLEGAL_INSTRUCTION
            any_trap = True             # tval/word stay 0 for a zero word

        # --- Finding1: misaligned + unmapped reports access-fault ---------
        if p.finding1_trap_priority and any_trap:
            f1 = fnz(((r_cause == spec.EXC_LOAD_MISALIGNED)
                      | (r_cause == spec.EXC_STORE_MISALIGNED))
                     & ((mf & M_MEM) != 0))
            if f1.size:
                wl1 = (flagf[f1] >> 1) & 3
                sz = np.where(kf[f1] == K_AMO,
                              np.where(wl1 == 2, 4, 8),
                              1 << wl1).astype(np.uint64)
                bump = (r_tval[f1] - c["dram"]) > (c["dsize"] - sz)
                r_cause[f1[bump]] += 1  # *_MISALIGNED -> *_ACCESS_FAULT

        # --- stores into the handler image refresh its table columns ------
        if any_mem:
            sm = fnz(r_memk == 2)
            if sm.size:
                sa = r_mema[sm]
                ss = r_mems[sm].astype(np.uint64)
                th = (sa < self.hvec + self.hspan) & (sa + ss > self.hvec)
                for pos in sm[th].tolist():
                    self._refresh_handler(int(act[pos]))

        # --- trap plane: real (non-analytic) trap entry --------------------
        self._grow_cols(self.hi + 1)
        self.hi += 1
        cap = self.cap
        tp = fnz(r_cause >= 0)
        if tp.size:
            lanes_t = act[tp]
            decill = oowm[tp] | (kf[tp] == K_ILLEGAL)
            fetchf = ~mapped[tp]
            xp = tp[~decill & ~fetchf]      # traps raised by execute
            if xp.size:
                # Execute-raised traps additionally record the mem-fault
                # pair, clear the store buffer and shift the hazard window
                # (fetch/decode traps return before reaching any of these).
                lanes_x = act[xp]
                memm = fnz((mf[xp] & M_MEM) != 0)
                if memm.size:
                    lmx = lanes_x[memm]
                    cx = r_cause[xp[memm]]
                    self._rec(lmx, "rocket.mem.misaligned",
                              (cx == spec.EXC_LOAD_MISALIGNED)
                              | (cx == spec.EXC_STORE_MISALIGNED))
                    self._rec(lmx, "rocket.mem.access_fault",
                              (cx == spec.EXC_LOAD_ACCESS_FAULT)
                              | (cx == spec.EXC_STORE_ACCESS_FAULT))
                for lane in lanes_x.tolist():
                    self.t_store_buf[lane].clear()
                self.prev2_rd[lanes_x] = self.prev1_rd[lanes_x]
                self.prev2_load[lanes_x] = self.prev1_load[lanes_x]
                self.prev2_md[lanes_x] = self.prev1_md[lanes_x]
                self.prev1_rd[lanes_x] = -1
                self.prev1_load[lanes_x] = False
                self.prev1_md[lanes_x] = False
            for cse in np.unique(r_cause[tp]).tolist():
                lc = lanes_t[r_cause[tp] == cse]
                self.covmat[lc] |= self.sim._trap_row(int(cse))
            cyc[tp] += p.trap_penalty
            cnt = self.counts[lanes_t]
            self.c_pc[lanes_t, cnt] = pcs[tp]
            self.c_word[lanes_t, cnt] = r_word[tp]
            if not self.all_m:
                self.c_priv[lanes_t, cnt] = prv_before[tp]
            self.c_tc[lanes_t, cnt] = r_cause[tp]
            self.c_tv[lanes_t, cnt] = r_tval[tp]
            self.counts[lanes_t] = cnt + 1
            self.traps[lanes_t] += 1
            self.steps[lanes_t] += 1
            self.res_valid[lanes_t] = False
            # vector CSRFile.enter_trap
            csrv = self.csrv
            csrv[spec.CSR_MCAUSE][lanes_t] = r_cause[tp].astype(np.uint64)
            csrv[spec.CSR_MEPC][lanes_t] = pcs[tp] & c["not1"]
            csrv[spec.CSR_MTVAL][lanes_t] = r_tval[tp] & c["mask"]
            ms = csrv[spec.CSR_MSTATUS][lanes_t]
            keep = np.uint64(spec.WORD_MASK
                             & ~(MSTATUS_MIE | MSTATUS_MPIE | MSTATUS_MPP_MASK))
            msn = ms & keep
            msn |= np.where((ms & np.uint64(MSTATUS_MIE)) != 0,
                            np.uint64(MSTATUS_MPIE), np.uint64(0))
            msn |= (prv_before[tp].astype(np.uint64)
                    << np.uint64(MSTATUS_MPP_SHIFT))
            csrv[spec.CSR_MSTATUS][lanes_t] = msn
            self.pc[lanes_t] = (csrv[spec.CSR_MTVEC][lanes_t]
                                & np.uint64(spec.WORD_MASK & ~0b11))
            self.priv[lanes_t] = spec.PRV_M
            stop3 = self.traps[lanes_t] >= self.config.max_traps
            l3 = lanes_t[stop3]
            self.stop_code[l3] = 3
            self.running[l3] = False
            if self._hskip_on:
                cand = (self.running[lanes_t]
                        & self.handler_ok[lanes_t]
                        & self.mtvec_ok[lanes_t]
                        & (self.steps[lanes_t] + self.nhandler
                           <= self.config.max_steps))
                hq = fnz(cand)
                if hq.size:
                    self._handler_skip(lanes_t[hq], tp[hq], cyc)

        # --- plainly executed lanes ----------------------------------------
        E = fnz(npm & ~r_peel & (r_cause < 0))
        lanes_e = act[E]
        if E.size:
            ip = self._ip
            mE = mf[E]
            rdE = r_rd[E]
            valE = r_val[E]
            hasE = r_hasrd[E] & (rdE > 0)
            # Register writeback first: the divide-operand conditions read
            # the post-writeback register file, exactly like the scalar core.
            wr = fnz(hasE)
            if wr.size:
                self.regs_flat[lanes_e[wr] * 32 + rdE[wr]] = valE[wr]

            # Execute- and system-stage conditions: one gated scatter per
            # round.  Every value below is stable across the E block (the
            # mirror loops don't touch priv/regs), so subset conditions ride
            # the lane-wide accumulator as gated items.
            isbr = (mE & M_BRANCH) != 0
            notseq = r_npc[E] != (pcs[E] + c["u4"])
            taken = isbr & notseq
            ismd = (mE & M_MULDIV) != 0
            dvl = (mE & M_DIVLIKE) != 0
            divisor = self.regs_flat[lanes_e * 32 + ((mE >> 10) & 31)]
            dividend = self.regs_flat[lanes_e * 32 + ((mE >> 5) & 31)]
            ismret = kf[E] == K_MRET
            isdv = ismd & dvl
            # SoA BTB resolution: gathers/updates mirror BranchPredictor
            # .update for every branch lane at once; the probe-side ``pred``
            # vector carries the decode-stage prediction across.
            pc_e = pcs[E]
            slot_e = ((pc_e >> c["u2"]) % np.uint64(self.btb_n)).astype(
                np.int64)
            bv_e = self.btb_valid[lanes_e, slot_e]
            bctr_e = self.btb_ctr[lanes_e, slot_e]
            newent = ~(bv_e & (self.btb_pc[lanes_e, slot_e] == pc_e))
            mispred = taken != pred[E]
            ctr_upd = np.minimum(
                np.int64(3),
                np.maximum(np.int64(0), bctr_e + np.where(taken, 1, -1)))
            oldent = isbr & ~newent
            pcmp = self.prev_cmp_rd[lanes_e]
            self._recb("exec", _EXEC_SPEC, lanes_e, (
                notseq,
                immf[E] < 0,
                valE == c["u0"],
                (valE >> np.uint64(63)) != 0,
                divisor == c["u0"],
                (divisor == c["mask"])
                & (dividend == (c["u1"] << np.uint64(63))),
                (mE & M_MULHI) != 0,
                immf[E] == 0,
                notseq,
                (mE & M_FENCEI) != 0,
                ismret,
                ismret & (self.priv[lanes_e] == spec.PRV_U),
                r_halt[E],
                r_csra[E] >= 0,
                mispred, newent, ctr_upd == 3, ctr_upd == 0,
                taken & (immf[E] >= -64) & (immf[E] < 0),
                taken & ((mE & M_BEQ) != 0),
                (pcmp != -1)
                & ((pcmp == ((mE >> 5) & 31)) | (pcmp == ((mE >> 10) & 31))),
            ), (isbr, isbr, hasE, hasE, isdv, isdv, ismd & ~dvl,
                (mE & M_SHIFTI) != 0, (mE & (M_FENCE | M_FENCEI)) != 0,
                isbr, isbr, oldent, oldent, isbr, isbr, isbr))
            bp2 = fnz(isbr)
            if bp2.size:
                lb2 = lanes_e[bp2]
                sb2 = slot_e[bp2]
                self.btb_valid[lb2, sb2] = True
                self.btb_pc[lb2, sb2] = pc_e[bp2]
                self.btb_ctr[lb2, sb2] = np.where(
                    newent[bp2], np.where(taken[bp2], 2, 1), ctr_upd[bp2])
                cyc[E[bp2[mispred[bp2]]]] += p.mispredict_penalty
            cyc[E] += np.where(
                ismd, np.where(dvl, p.div_latency, p.mul_latency), 0)

            # memory-stage mirror: the SoA D$ and the scalar-valued
            # trackers (last line/store, reservation, streaks) replicate
            # RocketCore._memory_model as masked vector kernels; only the
            # dict/set/list-backed locality and store-buffer trackers stay
            # in a (much slimmer) per-lane python loop.
            dcv = self.dc
            dcm = self.dc_mask
            mm = fnz(r_memk[E] != 0)
            if mm.size:
                lmm = lanes_e[mm]
                Em = E[mm]
                addr = r_mema[Em]
                is_st = r_memk[Em] == 2
                mrs1m = (mf[Em] >> 5) & 31
                immm = immf[Em]
                line_key = (addr >> np.uint64(self.off_bits)).astype(np.int64)
                last = self.last_line[lmm]
                idx_s = line_key & dcm
                tag_s = line_key >> self.dc_tag_shift
                v0 = dcv.valid[lmm, idx_s, 0]
                t0 = dcv.tag[lmm, idx_s, 0]
                d0 = dcv.dirty[lmm, idx_s, 0]
                v1 = dcv.valid[lmm, idx_s, 1]
                t1 = dcv.tag[lmm, idx_s, 1]
                d1 = dcv.dirty[lmm, idx_s, 1]
                h0 = v0 & (t0 == tag_s)
                h1 = ~h0 & v1 & (t1 == tag_s)
                hit = h0 | h1
                miss = ~hit
                dhit = np.where(h0, d0, d1)     # dirty at the hit way
                l0 = dcv.lru[lmm, idx_s, 0]
                l1 = dcv.lru[lmm, idx_s, 1]
                take0 = (v0 < v1) | ((v0 == v1) & (l0 <= l1))
                vv = np.where(take0, v0, v1)
                vdirty = np.where(take0, d0, d1)
                ev_key = (np.where(take0, t0, t1) << self.dc_tag_shift) | idx_s
                streak = np.where(hit, self.hit_streak[lmm] + 1, 0)
                self.hit_streak[lmm] = streak
                rb = is_st & (addr == self.resv_addr[lmm])
                self._recb("mem", _MEM_SPEC, lmm, (
                    mrs1m == 2,
                    (mrs1m == 3) | (mrs1m == 4),
                    (mrs1m == 2) & (immm >= 0) & (immm < 64),
                    is_st & (immm < 0),
                    line_key == last,
                    (last >= 0) & (np.abs(line_key - last) == 1),
                    is_st & hit & dhit,
                    is_st & (addr == self.last_store_addr[lmm]),
                    h0, h1, hit, miss,
                    streak >= 4,
                    v0 & v1, vv, vv & vdirty,
                    ~(hit & dhit),
                ), (hit, hit, miss, miss, miss, is_st))
                self.last_line[lmm] = line_key
                hp2 = fnz(hit)
                if hp2.size:
                    lh2 = lmm[hp2]
                    dcv.clock[lh2] += 1
                    dcv.lru[lh2, idx_s[hp2], np.where(h0[hp2], 0, 1)] = (
                        dcv.clock[lh2])
                mp2 = fnz(miss)
                if mp2.size:
                    lm2 = lmm[mp2]
                    im2 = idx_s[mp2]
                    wv2 = np.where(take0[mp2], 0, 1)
                    dcv.last_ev[lm2] = np.where(vv[mp2], ev_key[mp2],
                                                dcv.last_ev[lm2])
                    dcv.last_ev_valid[lm2] = vv[mp2]
                    dcv.valid[lm2, im2, wv2] = True
                    dcv.dirty[lm2, im2, wv2] = False
                    dcv.tag[lm2, im2, wv2] = tag_s[mp2]
                    dcv.clock[lm2] += 1
                    dcv.lru[lm2, im2, wv2] = dcv.clock[lm2]
                    cyc[Em[mp2]] += p.dcache_miss_penalty
                stp = fnz(is_st)
                if stp.size:
                    ls2 = lmm[stp]
                    wfin = np.where(hit[stp], np.where(h0[stp], 0, 1),
                                    np.where(take0[stp], 0, 1))
                    dcv.dirty[ls2, idx_s[stp], wfin] = True
                    self.last_store_addr[ls2] = addr[stp]
                rbp = fnz(rb)
                if rbp.size:
                    self.resv_broken[lmm[rbp]] = True
                    self.resv_addr[lmm[rbp]] = c["u0"]
                self.amo_age[lmm] += 1
                self.prev_load_missed[lmm] = miss & ~is_st
                evadd = miss & vv
                for q in range(lmm.size):
                    lane = int(lmm[q])
                    lk = int(line_key[q])
                    st_q = bool(is_st[q])
                    touches = self.t_line_touches[lane]
                    touches[lk] = touches.get(lk, 0) + 1
                    m_ = ip["rocket.mem.line_reuse3"][touches[lk] >= 3]
                    set_idx = lk & dcm
                    hot = sum(1 for key, count in touches.items()
                              if count >= 2 and (key & dcm) == set_idx)
                    m_ |= ip["rocket.mem.set_thrash"][
                        touches[lk] >= 2 and hot >= 2]
                    m_ |= ip["rocket.mem.victim_revisit"][
                        lk in self.t_evicted[lane]]
                    if evadd[q]:
                        self.t_evicted[lane].add(int(ev_key[q]))
                    if int(mrs1m[q]) == 2:
                        if st_q:
                            self.t_sp_slots[lane].add(int(addr[q]))
                            m_ |= ip["rocket.mem.spill_reload"][False]
                        else:
                            m_ |= ip["rocket.mem.spill_reload"][
                                int(addr[q]) in self.t_sp_slots[lane]]
                    buf = self.t_store_buf[lane]
                    if st_q:
                        full = len(buf) >= p.store_buffer_depth
                        m_ |= ip["rocket.mem.storebuf_full"][full]
                        if full:
                            cyc[int(Em[q])] += 1
                            buf.pop(0)
                        buf.append(int(addr[q]))
                    else:
                        m_ |= ip["rocket.mem.storebuf_forward"][
                            int(addr[q]) in buf]
                        if buf:
                            buf.pop(0)
                    self._fold_int(lane, m_)

            # branch taken-history trackers: only the dict/set-backed
            # per-PC counters stay in python (the BTB itself is SoA above)
            for j in bp2.tolist():
                ep = int(E[j])
                lane = int(lanes_e[j])
                pc_i = int(pcs[ep])
                tk = bool(taken[j])
                counts_b = self.t_branch_counts[lane]
                if tk:
                    counts_b[pc_i] = counts_b.get(pc_i, 0) + 1
                m_ = ip["rocket.frontend.loop_iteration"][
                    tk and counts_b.get(pc_i, 0) >= 2]
                outs = self.t_branch_outcomes[lane].setdefault(pc_i, set())
                outs.add(tk)
                m_ |= ip["rocket.frontend.branch_both_ways"][len(outs) == 2]
                self._fold_int(lane, m_)

            # jumps: link-register heuristics + call/return stack
            for j in fnz((mE & M_JUMP) != 0).tolist():
                ep = int(E[j])
                lane = int(lanes_e[j])
                mv = int(mf[ep])
                mrd = mv & 31
                m_ = ip["rocket.execute.link_reg_used"][mrd == 1]
                stack = self.t_link_stack[lane]
                if (mv & M_JAL) != 0 and mrd == 1:
                    m_ |= ip["rocket.frontend.call_depth2"][
                        bool(self.ra_saved[lane]) and bool(stack)]
                    stack.append((int(pcs[ep]) + 4) & spec.WORD_MASK)
                    del stack[:-8]
                if (mv & M_JALR) != 0:
                    via = ((mv >> 5) & 31) == 1 and bool(stack)
                    m_ |= ip["rocket.frontend.jalr_to_link"][via]
                    is_ret = (via and mrd == 0
                              and int(r_npc[ep]) == stack[-1])
                    m_ |= ip["rocket.frontend.call_return_pair"][is_ret]
                    if is_ret:
                        stack.pop()
                self._fold_int(lane, m_)

            # compare/link trackers feeding the next step's heuristics
            self.prev_cmp_rd[lanes_e] = np.where(
                ((mE & M_CMP) != 0) & ((mE & 31) != 0),
                (mE & 31), -1)
            stv = (mE & M_STORE) != 0
            ldv2 = (mE & M_LOAD) != 0
            ra_set = stv & (((mE >> 10) & 31) == 1)
            ra_clr = ~ra_set & ldv2 & ((mE & 31) == 1)
            self.ra_saved[lanes_e[ra_set]] = True
            self.ra_saved[lanes_e[ra_clr]] = False

            # CSR post-execute conditions
            csE = fnz((mE & M_CSR) != 0)
            if csE.size:
                lcs = lanes_e[csE]
                eps = E[csE]
                caddr = immf[eps]           # table imm is the CSR address
                will = r_csra[eps] >= 0
                inh = in_handler[eps]
                self._recs(lcs, (
                    ("rocket.csr.write_read_roundtrip",
                     ~inh & self.csrw[lcs, caddr]),
                    ("rocket.csr.mepc_user_write",
                     ~inh & will & (caddr == spec.CSR_MEPC)),
                    ("rocket.csr.mstatus_mpp_clear",
                     will & (caddr == spec.CSR_MSTATUS)
                     & ((r_csrv[eps] & np.uint64(0x1800)) == c["u0"])),
                ))
                wu = fnz(will & ~inh)
                self.csrw[lcs[wu], caddr[wu]] = True

            # fence.i state effects (the flush/dirty conditions rode the
            # lane-wide scatter above, except dirty which needs the D$ scan)
            fi = fnz((mE & M_FENCEI) != 0)
            if fi.size:
                lfi = lanes_e[fi]
                self._rec(lfi, "rocket.mem.fencei_dirty",
                          self.dc.dirty[lfi].any(axis=(1, 2)))
                self.ic.valid[lfi] = False
                self.ic.dirty[lfi] = False
                cyc[E[fi]] += p.fencei_penalty

            # retire: tracer quirks + trace columns (handler commits are
            # untraced, exactly like the scalar `if not in_handler` gate)
            ret = fnz(~in_handler[E])
            if ret.size:
                Er = E[ret]
                lr = lanes_e[ret]
                mr = mE[ret]
                rdt = np.where(hasE[ret], rdE[ret], np.int64(-1))
                vals = valE[ret].copy()
                sup = ((mr & M_MULDIV) != 0) & p.bug2_tracer_muldiv
                rdt[sup] = -1
                vals[sup] = 0
                jq = (((mr & M_JALR) != 0) & ((mr & 31) == 0)
                      & self.t_prev_load[lr] & p.finding3_x0_trace)
                rdt[jq] = 0
                vals[jq] = ((pcs[Er] + c["u4"]) & c["mask"])[jq]
                self._recb("retire", _RETIRE_SPEC, lr,
                           (sup, jq, rdt >= 0))
                idx = self.counts[lr]
                flatc = lr * cap + idx
                self.c_pc_flat[flatc] = pcs[Er]
                self.c_word_flat[flatc] = r_word[Er]
                if not self.all_m:
                    self.c_priv_flat[flatc] = prv_before[Er]
                wv = fnz(rdt >= 0)
                self.c_rdx_flat[flatc[wv]] = rdt[wv]
                self.c_val_flat[flatc[wv]] = vals[wv]
                if any_mem:
                    mmv = fnz(r_memk[Er] > 0)
                    fm = flatc[mmv]
                    self.c_memk_flat[fm] = r_memk[Er][mmv]
                    self.c_mema_flat[fm] = r_mema[Er][mmv]
                    self.c_mems_flat[fm] = r_mems[Er][mmv]
                    self.c_memd_flat[fm] = r_memd[Er][mmv]
                if any_csr:
                    cmv = fnz(r_csra[Er] >= 0)
                    fc = flatc[cmv]
                    self.c_ca_flat[fc] = r_csra[Er][cmv]
                    self.c_cv_flat[fc] = r_csrv[Er][cmv]
                self.counts[lr] = idx + 1
                self.t_prev_load[lr] = (mr & M_LOAD) != 0

            # muldiv busy horizon reads the FINAL cycle count (latency was
            # already added above, so busy = cycles + latency double-counts
            # it exactly as the scalar core does)
            mdE = fnz(ismd)
            if mdE.size:
                lat = np.where(dvl[mdE],
                               np.int64(p.div_latency),
                               np.int64(p.mul_latency))
                self.muldiv_busy[lanes_e[mdE]] = cyc[E[mdE]] + lat

            # hazard-window shift
            self.prev2_rd[lanes_e] = self.prev1_rd[lanes_e]
            self.prev2_load[lanes_e] = self.prev1_load[lanes_e]
            self.prev2_md[lanes_e] = self.prev1_md[lanes_e]
            self.prev1_rd[lanes_e] = np.where(
                hasE, rdE, np.int64(-1))
            self.prev1_load[lanes_e] = (mE & M_LOAD) != 0
            self.prev1_md[lanes_e] = (mE & M_MULDIV) != 0

            self.pc[lanes_e] = r_npc[E]
            self.steps[lanes_e] += 1

            if p.timed_counter_csr:
                off = self.csrv[spec.CSR_MCYCLE][lanes_e]
                stp = self.steps[lanes_e].astype(np.uint64)
                real = ((off + stp) & c["mask"]).astype(np.int64)
                upd = cyc[E] > real
                lu = lanes_e[upd]
                self.csrv[spec.CSR_MCYCLE][lu] = (
                    (cyc[E][upd].astype(np.uint64) - stp[upd]) & c["mask"])

            hl = fnz(r_halt[E])
            if hl.size:
                lh = lanes_e[hl]
                self.stop_code[lh] = 1
                self.running[lh] = False

        # budget cutoff applies to every vector lane that stepped (scalar
        # checks it at the top of the NEXT step_cycle, which is equivalent)
        over = fnz(npm & (self.steps[act] >= self.config.max_steps)
                   & self.running[act])
        if over.size:
            lo = act[over]
            self.stop_code[lo] = 2
            self.running[lo] = False

        self.cycles[lanes_np] = cyc[npm]

        # peel dispatch last: the scalar core sees every vector side effect
        for pos in fnz(peelm | r_peel).tolist():
            self._peel(int(act[pos]))

    # -- scalar peel bridge --------------------------------------------------

    def _cache_in(self, cache, soa, lane: int) -> None:
        """Splice one lane's SoA cache planes into the scalar cache object.

        Line data is reconstructed from the arena: vector residency is only
        ever granted to lines that match backing memory (the bug1 poison
        peel guarantees it for the I$; the D$ is write-through-coherent by
        construction), so the arena bytes ARE the line bytes.
        """
        idx_bits = cache._index_mask.bit_length()
        off_bits = cache._offset_bits
        lb = cache.line_bytes
        for s, ways in enumerate(cache.lines):
            for w, line in enumerate(ways):
                line.valid = bool(soa.valid[lane, s, w])
                line.dirty = bool(soa.dirty[lane, s, w])
                line.tag = int(soa.tag[lane, s, w])
                line.lru = int(soa.lru[lane, s, w])
                if line.valid:
                    base_addr = ((line.tag << idx_bits) | s) << off_bits
                    off = base_addr - spec.DRAM_BASE
                    line.data = self.arena[lane, off:off + lb].tobytes()
                else:
                    line.data = b""
        cache._lru_clock = int(soa.clock[lane])
        cache.last_evicted = (int(soa.last_ev[lane])
                              if soa.last_ev_valid[lane] else None)

    def _cache_out(self, cache, soa, lane: int) -> None:
        for s, ways in enumerate(cache.lines):
            for w, line in enumerate(ways):
                soa.valid[lane, s, w] = line.valid
                soa.dirty[lane, s, w] = line.dirty
                soa.tag[lane, s, w] = line.tag
                soa.lru[lane, s, w] = line.lru
        soa.clock[lane] = cache._lru_clock
        if cache.last_evicted is None:
            soa.last_ev_valid[lane] = False
        else:
            soa.last_ev[lane] = cache.last_evicted
            soa.last_ev_valid[lane] = True

    def _splice_in(self, lane: int, rs) -> None:
        """Load one lane's microarchitectural state into the scalar core."""
        core = self.core
        self._cache_in(core.icache, self.ic, lane)
        self._cache_in(core.dcache, self.dc, lane)
        btb = core.predictor.btb
        for s in range(self.btb_n):
            if self.btb_valid[lane, s]:
                btb[s] = {"pc": int(self.btb_pc[lane, s]),
                          "ctr": int(self.btb_ctr[lane, s])}
            else:
                btb[s] = None
        core.tracer._prev_was_load = bool(self.t_prev_load[lane])
        core._hit_streak = int(self.hit_streak[lane])
        ll = int(self.last_line[lane])
        core._last_line = None if ll < 0 else ll
        core._line_touches = self.t_line_touches[lane]
        core._evicted_lines = self.t_evicted[lane]
        lsa = int(self.last_store_addr[lane])
        core._last_store_addr = None if lsa == 0 else lsa
        core._sp_slots = self.t_sp_slots[lane]
        ra = int(self.resv_addr[lane])
        core._resv_addr = None if ra == 0 else ra
        core._resv_broken = bool(self.resv_broken[lane])
        core._amo_rd = self.amo_rd[lane]
        core._amo_age = int(self.amo_age[lane])
        core._prev_load_missed = bool(self.prev_load_missed[lane])
        rs.iterations = int(self.steps[lane])
        rs.cycles = int(self.cycles[lane])
        rs.traps_taken = int(self.traps[lane])
        p1 = int(self.prev1_rd[lane])
        p2 = int(self.prev2_rd[lane])
        rs.prev1 = (p1 if p1 >= 0 else None,
                    bool(self.prev1_load[lane]), bool(self.prev1_md[lane]))
        rs.prev2 = (p2 if p2 >= 0 else None,
                    bool(self.prev2_load[lane]), bool(self.prev2_md[lane]))
        rs.muldiv_busy_until = int(self.muldiv_busy[lane])
        rs.store_buffer = self.t_store_buf[lane]     # shared by reference
        rs.dep_chain = int(self.dep_chain[lane])
        rs.prev_wrote_sp = bool(self.prev_wrote_sp[lane])
        rs.branch_taken_counts = self.t_branch_counts[lane]
        rs.link_stack = self.t_link_stack[lane]
        rs.ra_saved = bool(self.ra_saved[lane])
        rs.branch_outcomes = self.t_branch_outcomes[lane]
        rs.csrs_written = set(
            _np.flatnonzero(self.csrw[lane]).tolist())
        rs.last_muldiv_was_mul = bool(self.last_mul[lane])
        pc_ = int(self.prev_cmp_rd[lane])
        rs.prev_was_cmp_rd = pc_ if pc_ >= 0 else None

    def _splice_out(self, lane: int, rs) -> None:
        """Store the scalar core's state back into the lane's SoA planes."""
        core = self.core
        self._cache_out(core.icache, self.ic, lane)
        self._cache_out(core.dcache, self.dc, lane)
        for s, e in enumerate(core.predictor.btb):
            if e is None:
                self.btb_valid[lane, s] = False
            else:
                self.btb_valid[lane, s] = True
                self.btb_pc[lane, s] = e["pc"]
                self.btb_ctr[lane, s] = e["ctr"]
        self.t_prev_load[lane] = core.tracer._prev_was_load
        self.hit_streak[lane] = core._hit_streak
        self.last_line[lane] = (
            -1 if core._last_line is None else core._last_line)
        self.t_line_touches[lane] = core._line_touches
        self.t_evicted[lane] = core._evicted_lines
        self.last_store_addr[lane] = core._last_store_addr or 0
        self.t_sp_slots[lane] = core._sp_slots
        self.resv_addr[lane] = core._resv_addr or 0
        self.resv_broken[lane] = core._resv_broken
        self.amo_rd[lane] = core._amo_rd
        self.amo_age[lane] = core._amo_age
        self.prev_load_missed[lane] = core._prev_load_missed
        self.cycles[lane] = rs.cycles
        r1, l1_, m1 = rs.prev1
        r2, l2_, m2 = rs.prev2
        self.prev1_rd[lane] = -1 if r1 is None else r1
        self.prev1_load[lane] = l1_
        self.prev1_md[lane] = m1
        self.prev2_rd[lane] = -1 if r2 is None else r2
        self.prev2_load[lane] = l2_
        self.prev2_md[lane] = m2
        self.muldiv_busy[lane] = rs.muldiv_busy_until
        self.t_store_buf[lane] = rs.store_buffer
        self.dep_chain[lane] = rs.dep_chain
        self.prev_wrote_sp[lane] = rs.prev_wrote_sp
        self.t_branch_counts[lane] = rs.branch_taken_counts
        self.t_link_stack[lane] = rs.link_stack
        self.ra_saved[lane] = rs.ra_saved
        self.t_branch_outcomes[lane] = rs.branch_outcomes
        row = self.csrw[lane]
        row[:] = False
        if rs.csrs_written:
            row[list(rs.csrs_written)] = True
        self.last_mul[lane] = rs.last_muldiv_was_mul
        self.prev_cmp_rd[lane] = (-1 if rs.prev_was_cmp_rd is None
                                  else rs.prev_was_cmp_rd)

    def _dut_rejoinable(self, lane: int, rs) -> bool:
        """May this peeled lane resume vector execution at its current pc?

        Requires an aligned pc inside the dispatch table (code or handler)
        AND, under bug1, no live stale-line state: the vector I$ keeps no
        line data, so a lane whose scalar I$ disagrees with backing memory
        must stay scalar until the staleness is flushed or evicted away.
        """
        pc = rs.state.pc
        if pc & 3:
            return False
        off = pc - self.base
        hoff = pc - spec.TRAP_VECTOR
        if not (0 <= off < 4 * self.lmax or 0 <= hoff < 4 * self.nhandler):
            return False
        if self.params.bug1_fencei:
            cache = self.core.icache
            lb = cache.line_bytes
            for s, ways in enumerate(cache.lines):
                for line in ways:
                    if not line.valid:
                        continue
                    base_addr = cache._line_base(s, line.tag)
                    o = base_addr - spec.DRAM_BASE
                    if line.data != self.arena[lane, o:o + lb].tobytes():
                        return False
        return True

    def _peel(self, lane: int, to_completion: bool = False) -> None:
        """Run ``lane`` on the retained scalar core until it can rejoin.

        Unlike the golden peel there is no analytic handler skip: the DUT
        models per-instruction microarchitectural coverage inside the
        handler too, so handler steps execute for real (vector lanes run
        them through the dispatch table's handler slots instead).
        """
        core = self.core
        st, mem = self._lane_ctx(lane)
        rs = core.begin_run([], self.base, memory=mem)
        rs.state = st
        self._sync_out(lane, st)
        self._splice_in(lane, rs)
        max_steps = self.config.max_steps
        ov = self.overrides[lane]
        count = int(self.counts[lane])
        stop = None
        first = True
        while True:
            if rs.iterations >= max_steps:
                stop = "max_steps"
                break
            if not first and not to_completion and self._dut_rejoinable(lane, rs):
                break
            n0 = len(rs.trace.entries)
            alive = core.step_cycle(rs)
            for entry in rs.trace.entries[n0:]:
                ov[count] = entry
                count += 1
            first = False
            if not alive:
                stop = rs.trace.stop_reason
                break
        self.steps[lane] = rs.iterations  # before _sync_in: counters rebase
        self.traps[lane] = rs.traps_taken
        self.counts[lane] = count
        if count > self.hi:
            self.hi = count
        self._sync_in(lane, st)
        self._splice_out(lane, rs)
        self._fold_int(lane, core.cov.run_bits())
        if stop is not None:
            self.stop_code[lane] = {
                "wfi": 1, "max_steps": 2, "max_traps": 3}[stop]
            self.running[lane] = False

    # -- trace materialisation ----------------------------------------------

    def _materialize(self, lane: int) -> CommitTrace:
        n = int(self.counts[lane])
        ov = self.overrides[lane]
        ncol = min(n, self.cap)
        rows = zip(
            self.c_pc[lane, :ncol].tolist(),
            self.c_word[lane, :ncol].tolist(),
            self.c_priv[lane, :ncol].tolist(),
            self.c_rdx[lane, :ncol].tolist(),
            self.c_val[lane, :ncol].tolist(),
            self.c_memk[lane, :ncol].tolist(),
            self.c_mema[lane, :ncol].tolist(),
            self.c_mems[lane, :ncol].tolist(),
            self.c_memd[lane, :ncol].tolist(),
            self.c_tc[lane, :ncol].tolist(),
            self.c_tv[lane, :ncol].tolist(),
            self.c_ca[lane, :ncol].tolist(),
            self.c_cv[lane, :ncol].tolist(),
        )
        new = TraceEntry.__new__
        osa = object.__setattr__
        entries: list[TraceEntry] = [None] * n  # type: ignore[list-item]
        i = 0
        # Same __dict__-swap trick as the golden engine, but rd comes from
        # the int16 column: the tracer quirks legitimately emit rd=0, which
        # the golden "rd_ if rd_ else None" encoding cannot represent.
        for pc_, w_, pr_, rd_, v_, mk_, ma_, ms_, md_, tc_, tv_, ca_, cv_ in rows:
            e = new(TraceEntry)
            osa(e, "__dict__", {
                "pc": pc_,
                "instr": w_,
                "priv": pr_,
                "rd": rd_ if rd_ >= 0 else None,
                "rd_value": v_,
                "mem": MemOp(ma_, ms_, mk_ == 2, md_) if mk_ else None,
                "trap_cause": tc_ if tc_ >= 0 else None,
                "trap_tval": tv_,
                "csr_write": (ca_, cv_) if ca_ >= 0 else None,
            })
            entries[i] = e
            i += 1
        if ov:
            for j, e in ov.items():
                if j < n:
                    entries[j] = e
        reason = ("wfi", "max_steps", "max_traps")[int(self.stop_code[lane]) - 1]
        trace = CommitTrace(entries=entries, stop_reason=reason, instret=n)
        trace.cycles = int(self.cycles[lane])
        return trace

    def run(self) -> list[tuple[CommitTrace, CoverageReport]]:
        traces = super().run()
        return [(trace, self._report(lane))
                for lane, trace in enumerate(traces)]
