"""Synchronous trap machinery with architectural priority resolution."""

from __future__ import annotations

from repro.isa.spec import EXC_NAMES, EXCEPTION_PRIORITY


class Trap(Exception):
    """A synchronous exception raised during instruction execution.

    ``cause`` is the mcause code, ``tval`` the value loaded into mtval
    (faulting address / offending instruction bits, per spec).
    """

    def __init__(self, cause: int, tval: int = 0) -> None:
        super().__init__(EXC_NAMES.get(cause, f"cause {cause}"))
        self.cause = cause
        self.tval = tval

    def __repr__(self) -> str:
        return f"Trap(cause={self.cause}, tval={self.tval:#x})"


_PRIORITY_INDEX = {cause: i for i, cause in enumerate(EXCEPTION_PRIORITY)}


def select_trap(candidates: list[Trap]) -> Trap:
    """Pick the highest-priority trap among simultaneous candidates.

    This implements the privileged-spec ordering — notably
    *address-misaligned above access-fault* for loads and stores, the corner
    the paper's Finding1 shows RocketCore getting wrong.
    """
    if not candidates:
        raise ValueError("select_trap() with no candidates")
    return min(candidates, key=lambda t: _PRIORITY_INDEX.get(t.cause, 99))
