"""Machine-mode CSR file with privilege and writability checking."""

from __future__ import annotations

from repro.golden.exceptions import Trap
from repro.isa import spec
from repro.isa.spec import EXC_ILLEGAL_INSTRUCTION

# mstatus bit positions we model (RV64, M/U profile).
MSTATUS_MIE = 1 << 3
MSTATUS_MPIE = 1 << 7
MSTATUS_MPP_SHIFT = 11
MSTATUS_MPP_MASK = 0b11 << MSTATUS_MPP_SHIFT

#: Writable bits of mstatus in this profile (WARL — all else reads zero).
MSTATUS_WRITE_MASK = MSTATUS_MIE | MSTATUS_MPIE | MSTATUS_MPP_MASK


class CSRFile:
    """The implemented CSRs with spec-conformant access rules.

    Reads/writes go through :meth:`read` / :meth:`write`, which raise
    illegal-instruction traps for unimplemented CSRs, insufficient privilege
    or writes to read-only registers — exactly the behaviour that generates
    architectural trap activity during fuzzing.
    """

    def __init__(self) -> None:
        self._values: dict[int, int] = {
            spec.CSR_MSTATUS: MSTATUS_MPP_MASK,  # MPP=M out of reset
            spec.CSR_MISA: spec.MISA_RESET,
            spec.CSR_MIE: 0,
            spec.CSR_MTVEC: spec.TRAP_VECTOR,
            spec.CSR_MCOUNTEREN: 0b111,
            spec.CSR_MSCRATCH: 0,
            spec.CSR_MEPC: 0,
            spec.CSR_MCAUSE: 0,
            spec.CSR_MTVAL: 0,
            spec.CSR_MIP: 0,
            spec.CSR_MCYCLE: 0,
            spec.CSR_MINSTRET: 0,
            spec.CSR_MVENDORID: spec.MVENDORID_RESET,
            spec.CSR_MARCHID: spec.MARCHID_RESET,
            spec.CSR_MIMPID: spec.MIMPID_RESET,
            spec.CSR_MHARTID: 0,
        }

    # -- raw access for the trap machinery (no privilege checks) ------------

    def raw_read(self, addr: int) -> int:
        return self._values.get(addr, 0)

    def raw_write(self, addr: int, value: int) -> None:
        self._values[addr] = value & spec.WORD_MASK

    # -- architectural access -------------------------------------------------

    def read(self, addr: int, priv: int, instr_bits: int = 0) -> int:
        """CSR read with privilege / existence checks."""
        self._check_access(addr, priv, instr_bits, for_write=False)
        if addr == spec.CSR_CYCLE:
            return self._values[spec.CSR_MCYCLE]
        if addr == spec.CSR_INSTRET:
            return self._values[spec.CSR_MINSTRET]
        if addr == spec.CSR_TIME:
            return self._values[spec.CSR_MCYCLE]  # time == cycle in simulation
        return self._values[addr]

    def write(self, addr: int, value: int, priv: int, instr_bits: int = 0) -> None:
        """CSR write with privilege / read-only / WARL handling."""
        self._check_access(addr, priv, instr_bits, for_write=True)
        value &= spec.WORD_MASK
        if addr == spec.CSR_MSTATUS:
            value &= MSTATUS_WRITE_MASK
            # WARL: MPP can only hold M (0b11) or U (0b00) in this profile.
            mpp = (value & MSTATUS_MPP_MASK) >> MSTATUS_MPP_SHIFT
            if mpp not in (spec.PRV_U, spec.PRV_M):
                value = (value & ~MSTATUS_MPP_MASK) | (
                    spec.PRV_M << MSTATUS_MPP_SHIFT
                )
        elif addr == spec.CSR_MISA:
            return  # WARL: writes ignored, extensions fixed
        elif addr == spec.CSR_MTVEC:
            value &= ~0b11  # direct mode only
        elif addr == spec.CSR_MEPC:
            value &= ~0b1  # IALIGN=32: low bit always zero
        self._values[addr] = value

    def _check_access(self, addr: int, priv: int, instr_bits: int, for_write: bool):
        implemented = addr in spec.IMPLEMENTED_CSRS or addr in (
            spec.CSR_CYCLE,
            spec.CSR_TIME,
            spec.CSR_INSTRET,
        )
        if not implemented:
            raise Trap(EXC_ILLEGAL_INSTRUCTION, tval=instr_bits)
        if priv < spec.csr_min_privilege(addr):
            raise Trap(EXC_ILLEGAL_INSTRUCTION, tval=instr_bits)
        if for_write and spec.csr_is_read_only(addr):
            raise Trap(EXC_ILLEGAL_INSTRUCTION, tval=instr_bits)
        if addr in (spec.CSR_CYCLE, spec.CSR_TIME, spec.CSR_INSTRET):
            if priv < spec.PRV_M and not self._values[spec.CSR_MCOUNTEREN] & 1:
                raise Trap(EXC_ILLEGAL_INSTRUCTION, tval=instr_bits)

    # -- counters ------------------------------------------------------------

    def tick(self, cycles: int = 1, instret: int = 1) -> None:
        """Advance the hardware counters after a retired instruction."""
        self._values[spec.CSR_MCYCLE] = (
            self._values[spec.CSR_MCYCLE] + cycles
        ) & spec.WORD_MASK
        self._values[spec.CSR_MINSTRET] = (
            self._values[spec.CSR_MINSTRET] + instret
        ) & spec.WORD_MASK

    # -- trap entry / return --------------------------------------------------

    def enter_trap(self, cause: int, epc: int, tval: int, priv: int) -> int:
        """Record a trap and return the handler PC. Updates mstatus stack."""
        self._values[spec.CSR_MCAUSE] = cause
        self._values[spec.CSR_MEPC] = epc & ~0b1 & spec.WORD_MASK
        self._values[spec.CSR_MTVAL] = tval & spec.WORD_MASK
        mstatus = self._values[spec.CSR_MSTATUS]
        mie = bool(mstatus & MSTATUS_MIE)
        mstatus &= ~(MSTATUS_MIE | MSTATUS_MPIE | MSTATUS_MPP_MASK)
        if mie:
            mstatus |= MSTATUS_MPIE
        mstatus |= priv << MSTATUS_MPP_SHIFT
        self._values[spec.CSR_MSTATUS] = mstatus
        return self._values[spec.CSR_MTVEC] & ~0b11

    def leave_trap(self) -> tuple[int, int]:
        """Execute the mstatus side of MRET; returns (new_priv, return_pc)."""
        mstatus = self._values[spec.CSR_MSTATUS]
        new_priv = (mstatus & MSTATUS_MPP_MASK) >> MSTATUS_MPP_SHIFT
        mpie = bool(mstatus & MSTATUS_MPIE)
        mstatus &= ~(MSTATUS_MIE | MSTATUS_MPIE | MSTATUS_MPP_MASK)
        if mpie:
            mstatus |= MSTATUS_MIE
        mstatus |= MSTATUS_MPIE  # MPIE set to 1 on mret
        # MPP set to least-privileged mode (U) after mret.
        self._values[spec.CSR_MSTATUS] = mstatus
        return new_priv, self._values[spec.CSR_MEPC]
