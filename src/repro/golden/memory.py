"""Byte-addressed sparse memory with access-fault checking.

Memory is organised as 4 KiB pages allocated on demand inside explicitly
mapped regions.  Accesses outside every mapped region raise access-fault
traps — the mechanism that, combined with misaligned addresses, exercises
the trap-priority corner of the paper's Finding1.
"""

from __future__ import annotations

from repro.golden.exceptions import Trap
from repro.isa.spec import (
    DRAM_BASE,
    DRAM_SIZE,
    EXC_INSTR_ACCESS_FAULT,
    EXC_LOAD_ACCESS_FAULT,
    EXC_STORE_ACCESS_FAULT,
)

_PAGE_SHIFT = 12
_PAGE_SIZE = 1 << _PAGE_SHIFT


class SparseMemory:
    """Sparse physical memory.

    Parameters
    ----------
    regions:
        Iterable of ``(base, size)`` mapped windows.  Defaults to the single
        DRAM window used by the SoC harness.
    """

    def __init__(self, regions: tuple[tuple[int, int], ...] = ((DRAM_BASE, DRAM_SIZE),)):
        self.regions = tuple(regions)
        self._pages: dict[int, bytearray] = {}

    # -- mapping ------------------------------------------------------------

    def is_mapped(self, addr: int, size: int = 1) -> bool:
        """True when the whole ``[addr, addr+size)`` range is mapped."""
        for base, length in self.regions:
            if base <= addr and addr + size <= base + length:
                return True
        return False

    def _page(self, addr: int) -> bytearray:
        key = addr >> _PAGE_SHIFT
        page = self._pages.get(key)
        if page is None:
            page = bytearray(_PAGE_SIZE)
            self._pages[key] = page
        return page

    # -- raw access (no fault checks; used by loaders and the harness) ------

    def write_bytes(self, addr: int, data: bytes) -> None:
        """Bulk write without fault checking (program loading)."""
        offset = 0
        while offset < len(data):
            page = self._page(addr + offset)
            start = (addr + offset) & (_PAGE_SIZE - 1)
            chunk = min(_PAGE_SIZE - start, len(data) - offset)
            page[start : start + chunk] = data[offset : offset + chunk]
            offset += chunk

    def read_bytes(self, addr: int, size: int) -> bytes:
        """Bulk read without fault checking."""
        out = bytearray()
        offset = 0
        while offset < size:
            page = self._page(addr + offset)
            start = (addr + offset) & (_PAGE_SIZE - 1)
            chunk = min(_PAGE_SIZE - start, size - offset)
            out += page[start : start + chunk]
            offset += chunk
        return bytes(out)

    # -- checked access (architectural) --------------------------------------

    def load(self, addr: int, size: int) -> int:
        """Load ``size`` bytes little-endian; raises load access fault."""
        if not self.is_mapped(addr, size):
            raise Trap(EXC_LOAD_ACCESS_FAULT, tval=addr)
        return int.from_bytes(self.read_bytes(addr, size), "little")

    def store(self, addr: int, value: int, size: int) -> None:
        """Store ``size`` bytes little-endian; raises store access fault."""
        if not self.is_mapped(addr, size):
            raise Trap(EXC_STORE_ACCESS_FAULT, tval=addr)
        self.write_bytes(addr, (value & ((1 << (8 * size)) - 1)).to_bytes(size, "little"))

    def fetch(self, addr: int) -> int:
        """Fetch a 32-bit instruction word; raises instruction access fault."""
        if not self.is_mapped(addr, 4):
            raise Trap(EXC_INSTR_ACCESS_FAULT, tval=addr)
        return int.from_bytes(self.read_bytes(addr, 4), "little")

    def load_program(self, words: list[int], base: int) -> None:
        """Write a program image (little-endian 32-bit words) at ``base``."""
        image = b"".join((w & 0xFFFFFFFF).to_bytes(4, "little") for w in words)
        self.write_bytes(base, image)
