"""Architectural state: register file, PC, privilege, LR/SC reservation."""

from __future__ import annotations

from repro.golden.csr import CSRFile
from repro.isa.spec import DRAM_BASE, NUM_REGS, PRV_M, WORD_MASK


class ArchState:
    """The complete architectural state of one hart.

    x0 is hardwired to zero: writes are accepted and discarded, matching the
    ISA.  (Finding3 in the paper is RocketCore's *trace log* showing x0
    writes — the golden model never emits them.)
    """

    def __init__(self, pc: int = DRAM_BASE) -> None:
        self.regs = [0] * NUM_REGS
        self.pc = pc & WORD_MASK
        self.priv = PRV_M
        self.csr = CSRFile()
        #: LR/SC reservation address, or None when no reservation is held.
        self.reservation: int | None = None

    def read_reg(self, idx: int) -> int:
        return self.regs[idx]

    def write_reg(self, idx: int, value: int) -> None:
        if idx != 0:
            self.regs[idx] = value & WORD_MASK

    def snapshot_regs(self) -> tuple[int, ...]:
        """Immutable copy of the register file (used by tests/properties)."""
        return tuple(self.regs)

    def __repr__(self) -> str:
        return f"ArchState(pc={self.pc:#x}, priv={self.priv})"
