"""Batched structure-of-arrays golden ISS: numpy lane execution.

Executes N test programs as lockstep *lanes*: a PC vector, a ``32xN``
register-file matrix, a per-lane dense memory arena and vectorised CSR
state.  Each round fetches one instruction per live lane from a
precomputed dispatch table (built once per batch by running every unique
word through :func:`repro.isa.decoder.decode`) and executes the common
planes — ALU, mul/div, branches, loads/stores, jumps, CSR ops — as
masked numpy kernels over the lane subset taking each kind.

Two design points carry the speedup on trap-heavy fuzzing workloads:

- **Analytic trap resolution.**  While a lane's trap handler image and
  ``mtvec`` are untouched, the net architectural effect of trap entry
  plus the six-instruction handler is a closed formula (registers
  preserved, ``mepc``/``mscratch`` = pc+4, ``mstatus`` MPIE stacking,
  seven counter ticks, resume at pc+4).  Trapping lanes therefore
  resolve in one vector pass instead of seven scalar steps — and the
  bench workload is trap-dominated.
- **Scalar peel.**  Anything rare or stateful — atomics, wild PCs,
  misaligned fetch, dirtied handlers — peels the lane out to the exact
  scalar path (:func:`repro.golden.simulator.step_instruction`, the same
  single-step function the scalar :class:`GoldenSimulator` loop runs)
  against a :class:`SparseMemory` adapter over the lane's arena row, and
  rejoins vector execution when the PC returns to the dispatch table.
  Hard-case behaviour thus has exactly one implementation.

The scalar :class:`GoldenSimulator` is retained untouched as the parity
reference: ``run_batch`` produces bit-identical :class:`CommitTrace`\\ s
(including trap-handler commits and ``max_steps``/``max_traps`` cutoffs
per lane), pinned by ``tests/golden/test_batch.py``.  When numpy is
unavailable, the batch is smaller than the lane minimum, or the config
asks for handler tracing, execution falls back to the scalar engine.
"""

from __future__ import annotations

from functools import lru_cache

from repro.golden.csr import (
    CSRFile,
    MSTATUS_MIE,
    MSTATUS_MPIE,
    MSTATUS_MPP_MASK,
    MSTATUS_MPP_SHIFT,
    MSTATUS_WRITE_MASK,
)
from repro.golden.memory import SparseMemory
from repro.golden.simulator import (
    GoldenSimulator,
    SimConfig,
    step_instruction,
    trap_handler_image,
)
from repro.golden.state import ArchState
from repro.golden.trace import CommitTrace, MemOp, TraceEntry
from repro.isa import spec
from repro.isa.decoder import decode

try:
    import numpy as _np
except ImportError:  # pragma: no cover - the CI image always has numpy
    _np = None

def _nz1(mask):
    """``flatnonzero`` for 1-D masks without the ravel/asarray wrapper —
    the round loop and kind kernels call this dozens of times per step."""
    return mask.nonzero()[0]


#: Default lane-group width; see ROADMAP "Choosing lane widths (golden + DUT)".
DEFAULT_LANES = 32
#: Below this many programs per group, vector overhead loses to scalar.
LANE_MIN = 4

# -- instruction kinds (dispatch-table classification) -----------------------

K_PEEL = 0      # vectorisation not attempted: always peel to scalar
K_ILLEGAL = 1   # decode() returned None (word 0 included)
K_ADD = 2       # add/addi/sub (+W) via the NEG flag
K_BIT = 3       # xor/or/and (+i) via a 2-bit subcode
K_SLT = 4       # slt/sltu (+i) via the SIGNED flag
K_SHIFT = 5     # sll/srl/sra (+i, +W) via subcode
K_LUIPC = 6     # lui/auipc
K_JAL = 7       # jal/jalr
K_BR = 8        # all six branches via a 3-bit condition code
K_LOAD = 9      # lb..lwu via width-log2 + SIGNED
K_STORE = 10    # sb..sd via width-log2
K_AMO = 11      # lr/sc/amo*: vector trap checks, mapped ops peel
K_CSR = 12      # csrr* on the vector CSR file
K_MUL = 13      # mul/mulw
K_MULH = 14     # mulh/mulhsu/mulhu
K_DIV = 15      # div/divu/rem/remu (+W)
K_FENCE = 16    # fence/fence.i: retire with no effects
K_WFI = 17
K_ECALL = 18
K_EBREAK = 19
K_MRET = 20
N_KINDS = 21

# record flag bits (per-kind meaning; bit 0 is global)
F_IMM = 1       # operand b comes from the imm column
F_SUB_SHIFT = 1  # bits 1-2: 2-bit subcode (K_BIT/K_SHIFT/K_MULH/K_CSR op,
#                  width-log2 for K_LOAD/K_STORE/K_AMO, REM for K_DIV)
F_X = 8         # bit 3: NEG / SIGNED / AUIPC / JALR / store-check (by kind)
F_W32 = 16      # bit 4: 32-bit word variant
F_CC_SHIFT = 5  # bits 5-7: branch condition code

_BR_CODES = {"beq": 0, "bne": 1, "blt": 2, "bge": 3, "bltu": 4, "bgeu": 5}
_LOAD_META = {
    "lb": (0, True), "lh": (1, True), "lw": (2, True), "ld": (3, True),
    "lbu": (0, False), "lhu": (1, False), "lwu": (2, False),
}
_STORE_META = {"sb": 0, "sh": 1, "sw": 2, "sd": 3}
_BIT_CODES = {"xor": 0, "xori": 0, "or": 1, "ori": 1, "and": 2, "andi": 2}
_SHIFT_CODES = {
    "sll": 0, "slli": 0, "sllw": 0, "slliw": 0,
    "srl": 1, "srli": 1, "srlw": 1, "srliw": 1,
    "sra": 2, "srai": 2, "sraw": 2, "sraiw": 2,
}
_CSR_OPS = {"csrrw": 0, "csrrs": 1, "csrrc": 2,
            "csrrwi": 0, "csrrsi": 1, "csrrci": 2}


def _pack(kind: int, rd: int = 0, rs1: int = 0, rs2: int = 0, flags: int = 0) -> int:
    return kind | rd << 8 | rs1 << 16 | rs2 << 24 | flags << 32


@lru_cache(maxsize=65536)
def _record(word: int) -> tuple[int, int]:
    """Dispatch-table record for one instruction word: ``(packed, imm)``.

    ``packed`` holds kind | rd<<8 | rs1<<16 | rs2<<24 | flags<<32; ``imm``
    is the pre-wrapped 64-bit unsigned immediate (CSR address for K_CSR).
    Derived from the same :func:`decode` the scalar engine uses, so the
    two paths can never disagree on decoding.
    """
    ins = decode(word)
    if ins is None:
        return _pack(K_ILLEGAL), 0
    s = ins.spec
    m = s.mnemonic
    rd, rs1, rs2 = ins.rd, ins.rs1, ins.rs2
    imm = ins.imm & spec.WORD_MASK
    if s.is_branch:
        return _pack(K_BR, 0, rs1, rs2, _BR_CODES[m] << F_CC_SHIFT), imm
    if s.is_load:
        wl, signed = _LOAD_META[m]
        return _pack(K_LOAD, rd, rs1, 0, wl << 1 | (F_X if signed else 0)), imm
    if s.is_store:
        return _pack(K_STORE, 0, rs1, rs2, _STORE_META[m] << 1), imm
    if s.is_amo:
        wl = 2 if m.endswith(".w") else 3
        st = 0 if m.startswith("lr.") else F_X  # sc/amo* use store-fault causes
        return _pack(K_AMO, rd, rs1, rs2, wl << 1 | st), 0
    if s.is_csr:
        flags = _CSR_OPS[m] << 1
        if m.endswith("i"):
            flags |= F_IMM
            rs1 = ins.zimm  # the rs1 column carries zimm for immediates
        return _pack(K_CSR, rd, rs1, 0, flags), ins.csr
    if s.is_muldiv:
        if m in ("mul", "mulw"):
            return _pack(K_MUL, rd, rs1, rs2, F_W32 if m == "mulw" else 0), 0
        if m in ("mulh", "mulhsu", "mulhu"):
            sub = {"mulh": 0, "mulhsu": 1, "mulhu": 2}[m]
            return _pack(K_MULH, rd, rs1, rs2, sub << 1), 0
        base = m.rstrip("w") if m.endswith("w") else m
        flags = (F_W32 if m.endswith("w") else 0)
        if base.startswith("rem"):
            flags |= 1 << 1
        if base in ("div", "rem"):
            flags |= F_X  # signed
        return _pack(K_DIV, rd, rs1, rs2, flags), 0
    if m == "lui":
        return _pack(K_LUIPC, rd), imm
    if m == "auipc":
        return _pack(K_LUIPC, rd, 0, 0, F_X), imm
    if m == "jal":
        return _pack(K_JAL, rd), imm
    if m == "jalr":
        return _pack(K_JAL, rd, rs1, 0, F_X), imm
    if m in ("add", "addi", "sub", "addw", "addiw", "subw"):
        flags = (F_IMM if s.fmt == "I" else 0)
        flags |= F_X if m in ("sub", "subw") else 0
        flags |= F_W32 if m.endswith("w") else 0
        return _pack(K_ADD, rd, rs1, rs2, flags), imm
    if m in _BIT_CODES:
        flags = _BIT_CODES[m] << 1 | (F_IMM if s.fmt == "I" else 0)
        return _pack(K_BIT, rd, rs1, rs2, flags), imm
    if m in ("slt", "slti", "sltu", "sltiu"):
        flags = (F_IMM if s.fmt == "I" else 0) | (F_X if "u" not in m else 0)
        return _pack(K_SLT, rd, rs1, rs2, flags), imm
    if m in _SHIFT_CODES:
        flags = _SHIFT_CODES[m] << 1
        flags |= F_W32 if "w" in m else 0
        if s.fmt in ("I_SHIFT64", "I_SHIFT32"):
            flags |= F_IMM
            return _pack(K_SHIFT, rd, rs1, 0, flags), ins.shamt
        return _pack(K_SHIFT, rd, rs1, rs2, flags), 0
    if m in ("fence", "fence.i"):
        return _pack(K_FENCE), 0
    if m == "wfi":
        return _pack(K_WFI), 0
    if m == "ecall":
        return _pack(K_ECALL), 0
    if m == "ebreak":
        return _pack(K_EBREAK), 0
    if m == "mret":
        return _pack(K_MRET), 0
    # Anything unclassified stays correct via the scalar path.
    return _pack(K_PEEL), 0


class _LaneMemory(SparseMemory):
    """Scalar-peel adapter: SparseMemory API over one lane's arena row.

    Reads and writes land directly in the numpy arena (no copy on
    peel/rejoin); writes notify the group so handler-integrity flags and
    dispatch-table slots stay coherent with self-modifying code.
    """

    def __init__(self, group: "_LaneGroup", lane: int) -> None:
        super().__init__()
        self._group = group
        self._lane = lane

    def read_bytes(self, addr: int, size: int) -> bytes:
        off = addr - spec.DRAM_BASE
        return self._group.arena[self._lane, off:off + size].tobytes()

    def write_bytes(self, addr: int, data: bytes) -> None:
        off = addr - spec.DRAM_BASE
        self._group.arena[self._lane, off:off + len(data)] = _np.frombuffer(
            bytes(data), dtype=_np.uint8
        )
        self._group.note_write(self._lane, addr, len(data))


class GoldenBatchSimulator:
    """Structure-of-arrays batch ISS producing scalar-identical traces.

    >>> batch = GoldenBatchSimulator(lanes=32)
    >>> traces = batch.run_batch([prog0, prog1, ...])   # doctest: +SKIP

    Parameters
    ----------
    config:
        Same :class:`SimConfig` the scalar engine takes.  A config with
        ``trace_handler=True`` always runs scalar (the analytic trap
        plane elides handler commits by construction).
    lanes:
        Lane-group width: programs are executed in groups of this many
        lockstep lanes.  Wider groups amortise per-round numpy overhead
        over more lanes but suffer more divergence drag; see the ROADMAP
        guidance section.
    """

    def __init__(self, config: SimConfig | None = None, lanes: int = DEFAULT_LANES):
        if lanes < 1:
            raise ValueError(f"lanes must be >= 1, got {lanes}")
        self.config = config or SimConfig()
        self.lanes = lanes
        self._scalar = GoldenSimulator(self.config)

    def run_batch(self, programs, base: int = spec.DRAM_BASE) -> list[CommitTrace]:
        """Execute ``programs`` (lists of 32-bit words); one trace each.

        Results are bit-identical to ``[GoldenSimulator(config).run(p, base)
        for p in programs]`` in the same order.
        """
        progs = [list(p) for p in programs]
        if not progs:
            return []
        if not self._batchable(progs, base):
            return [self._scalar.run(p, base) for p in progs]
        out: list[CommitTrace] = []
        for i in range(0, len(progs), self.lanes):
            chunk = progs[i:i + self.lanes]
            if len(chunk) < LANE_MIN:
                out.extend(self._scalar.run(p, base) for p in chunk)
            else:
                out.extend(_LaneGroup(self.config, chunk, base).run())
        return out

    def _batchable(self, progs: list[list[int]], base: int) -> bool:
        if _np is None or self.config.trace_handler:
            return False
        if len(progs) < LANE_MIN:
            return False
        lmax = max(len(p) for p in progs)
        # The dispatch table must sit inside DRAM, clear of the handler.
        return spec.DRAM_BASE <= base and base + 4 * lmax <= spec.TRAP_VECTOR


# Bound numpy uint64 constants (python ints can't mix with uint64 arrays
# when negative, and silently upcast otherwise).
def _u64consts():
    np = _np
    return {
        "u0": np.uint64(0), "u1": np.uint64(1), "u2": np.uint64(2),
        "u3": np.uint64(3), "u4": np.uint64(4), "u6": np.uint64(6),
        "m32": np.uint64(0xFFFF_FFFF), "b31": np.uint64(0x8000_0000),
        "not1": np.uint64(spec.WORD_MASK & ~1),
        "mask": np.uint64(spec.WORD_MASK),
        "dram": np.uint64(spec.DRAM_BASE),
        "dlim": np.uint64(spec.DRAM_SIZE - 4),
        "dsize": np.uint64(spec.DRAM_SIZE),
    }


class _LaneGroup:
    """One lockstep group of lanes; see module docstring for the design."""

    def __init__(self, config: SimConfig, programs: list[list[int]], base: int):
        np = _np
        self.config = config
        self.base = base
        g = len(programs)
        self.g = g
        lmax = max(len(p) for p in programs)
        self.lmax = lmax
        self.c = _u64consts()

        handler = trap_handler_image()
        self.handler_span = (spec.TRAP_VECTOR, spec.TRAP_VECTOR + 4 * len(handler))
        h_img = np.frombuffer(
            b"".join((w & 0xFFFFFFFF).to_bytes(4, "little") for w in handler),
            dtype=np.uint8,
        )
        hoff = spec.TRAP_VECTOR - spec.DRAM_BASE
        boff = base - spec.DRAM_BASE

        self.arena = np.zeros((g, spec.DRAM_SIZE), dtype=np.uint8)
        self.words = np.zeros((g, max(lmax, 1)), dtype="<u4")
        for i, p in enumerate(programs):
            if p:
                self.words[i, :len(p)] = [x & 0xFFFFFFFF for x in p]
        # Tail slots past a shorter program stay zero, matching the arena's
        # zero-fill, so one blit loads every lane's image at once.
        wspan = 4 * self.words.shape[1]
        self.arena[:, boff:boff + wspan] = self.words.view(np.uint8)
        self.arena[:, hoff:hoff + len(h_img)] = h_img
        self.arena16 = self.arena.view("<u2").reshape(g, -1)
        self.arena32 = self.arena.view("<u4").reshape(g, -1)
        self.arena64 = self.arena.view("<u8").reshape(g, -1)
        self._build_table()

        self.pc = np.full(g, base, dtype=np.uint64)
        self.regs = np.zeros((g, 32), dtype=np.uint64)
        self.regs_flat = self.regs.reshape(-1)
        self.priv = np.full(g, spec.PRV_M, dtype=np.int64)
        self.res_valid = np.zeros(g, dtype=bool)
        self.res_addr = np.zeros(g, dtype=np.uint64)
        self.csrv = {
            addr: np.full(g, val, dtype=np.uint64)
            for addr, val in CSRFile()._values.items()
        }
        self.handler_ok = np.ones(g, dtype=bool)
        self.mtvec_ok = np.ones(g, dtype=bool)  # reset mtvec == TRAP_VECTOR
        self.running = np.ones(g, dtype=bool)
        self.stop_code = np.zeros(g, dtype=np.int8)  # 1 wfi, 2 max_steps, 3 max_traps
        self.steps = np.zeros(g, dtype=np.int64)
        self.traps = np.zeros(g, dtype=np.int64)

        self.base_u = np.uint64(base)
        self.tab_u = np.uint64(4 * lmax)
        #: Monotone upper bound on max(counts) — lets rounds grow columns
        #: without re-scanning counts.
        self.hi = 0
        #: True while every lane is still in M-mode (the common case) —
        #: c_priv cells keep their PRV_M prefill and rounds skip the write.
        self.all_m = True
        self.cap = 0
        self._grow_cols(min(256, max(config.max_steps, 1)))
        self.counts = np.zeros(g, dtype=np.int64)
        #: Per-lane {trace index: TraceEntry} for scalar-peeled commits.
        self.overrides: list[dict[int, TraceEntry]] = [dict() for _ in range(g)]
        self._ctx: dict[int, tuple[ArchState, _LaneMemory]] = {}

    # -- dispatch table -----------------------------------------------------

    def _build_table(self) -> None:
        np = _np
        uw, inv = np.unique(self.words, return_inverse=True)
        inv = inv.reshape(-1)
        recs = [_record(int(w)) for w in uw]
        up = np.array([r[0] for r in recs], dtype=np.int64)
        ui = np.array([r[1] for r in recs], dtype=np.uint64)
        shape = self.words.shape
        self.packed = up[inv].reshape(shape)
        self.imm_tab = ui[inv].reshape(shape)
        self.packed_flat = self.packed.reshape(-1)
        self.imm_flat = self.imm_tab.reshape(-1)
        self.words_flat = self.words.reshape(-1)

    def note_write(self, lane: int, addr: int, size: int) -> None:
        """Memory-write hook: keep handler flags and table slots coherent."""
        hlo, hhi = self.handler_span
        if addr < hhi and addr + size > hlo:
            self.handler_ok[lane] = False
        tlo, thi = self.base, self.base + 4 * self.lmax
        if addr < thi and addr + size > tlo:
            s0 = max(0, (addr - tlo) // 4)
            s1 = min(self.lmax - 1, (addr + size - 1 - tlo) // 4)
            woff = (tlo - spec.DRAM_BASE) // 4
            for slot in range(s0, s1 + 1):
                w = int(self.arena32[lane, woff + slot])
                packed, imm = _record(w)
                self.words[lane, slot] = w
                self.packed[lane, slot] = packed
                self.imm_tab[lane, slot] = imm

    # -- trace columns ------------------------------------------------------

    def _grow_cols(self, need: int) -> None:
        np = _np
        if need <= self.cap:
            return
        new = max(need, self.cap * 2, 16)
        g = self.g

        def grow(old, dtype, fill=0):
            arr = np.full((g, new), fill, dtype=dtype)
            if old is not None:
                arr[:, :self.cap] = old
            return arr

        # Each (lane, index) cell is written at most once, so the fills
        # double as the per-entry defaults: rounds only scatter cells that
        # differ (no rd write, no mem op, no trap, no CSR write ⇒ no-op).
        self.c_pc = grow(getattr(self, "c_pc", None), np.uint64)
        self.c_word = grow(getattr(self, "c_word", None), np.uint32)
        self.c_priv = grow(getattr(self, "c_priv", None), np.int8, spec.PRV_M)
        self.c_rd = grow(getattr(self, "c_rd", None), np.int8)
        self.c_val = grow(getattr(self, "c_val", None), np.uint64)
        self.c_memk = grow(getattr(self, "c_memk", None), np.int8)
        self.c_mema = grow(getattr(self, "c_mema", None), np.uint64)
        self.c_mems = grow(getattr(self, "c_mems", None), np.int8)
        self.c_memd = grow(getattr(self, "c_memd", None), np.uint64)
        self.c_tc = grow(getattr(self, "c_tc", None), np.int16, -1)
        self.c_tv = grow(getattr(self, "c_tv", None), np.uint64)
        self.c_ca = grow(getattr(self, "c_ca", None), np.int16, -1)
        self.c_cv = grow(getattr(self, "c_cv", None), np.uint64)
        self.cap = new
        # Flat views for single-index scatters (cheaper than (row, col)
        # advanced indexing in the per-round hot path).
        self.c_pc_flat = self.c_pc.reshape(-1)
        self.c_word_flat = self.c_word.reshape(-1)
        self.c_priv_flat = self.c_priv.reshape(-1)
        self.c_rd_flat = self.c_rd.reshape(-1)
        self.c_val_flat = self.c_val.reshape(-1)
        self.c_memk_flat = self.c_memk.reshape(-1)
        self.c_mema_flat = self.c_mema.reshape(-1)
        self.c_mems_flat = self.c_mems.reshape(-1)
        self.c_memd_flat = self.c_memd.reshape(-1)
        self.c_ca_flat = self.c_ca.reshape(-1)
        self.c_cv_flat = self.c_cv.reshape(-1)

    # -- scalar peel --------------------------------------------------------

    def _lane_ctx(self, lane: int) -> tuple[ArchState, _LaneMemory]:
        ctx = self._ctx.get(lane)
        if ctx is None:
            ctx = (ArchState(pc=0), _LaneMemory(self, lane))
            self._ctx[lane] = ctx
        return ctx

    def _sync_out(self, lane: int, st: ArchState) -> None:
        st.regs = self.regs[lane].tolist()
        st.pc = int(self.pc[lane])
        st.priv = int(self.priv[lane])
        st.reservation = int(self.res_addr[lane]) if self.res_valid[lane] else None
        values = st.csr._values
        for addr, vec in self.csrv.items():
            values[addr] = int(vec[lane])
        # The counter CSRs are stored as offsets from ``steps`` (they tick
        # once per step, so the vector planes never need to touch them);
        # rebase to real values for the scalar path.
        steps = int(self.steps[lane])
        for addr in (spec.CSR_MCYCLE, spec.CSR_MINSTRET):
            values[addr] = (values[addr] + steps) & spec.WORD_MASK

    def _sync_in(self, lane: int, st: ArchState) -> None:
        self.regs[lane] = st.regs
        self.pc[lane] = st.pc
        self.priv[lane] = st.priv
        if st.priv != spec.PRV_M:
            self.all_m = False
        if st.reservation is None:
            self.res_valid[lane] = False
        else:
            self.res_valid[lane] = True
            self.res_addr[lane] = st.reservation
        values = st.csr._values
        for addr, vec in self.csrv.items():
            vec[lane] = values[addr]
        steps = int(self.steps[lane])
        for addr in (spec.CSR_MCYCLE, spec.CSR_MINSTRET):
            self.csrv[addr][lane] = (values[addr] - steps) & spec.WORD_MASK
        self.mtvec_ok[lane] = values[spec.CSR_MTVEC] == spec.TRAP_VECTOR

    def _rejoinable(self, pc: int) -> bool:
        off = pc - self.base
        return 0 <= off < 4 * self.lmax and off % 4 == 0

    def _peel(self, lane: int, to_completion: bool = False) -> None:
        """Run ``lane`` scalar until it can rejoin vector execution.

        Semantics come from :func:`step_instruction` — the same function
        the scalar engine's loop runs — so peeled steps are exact.  An
        intact trap handler is still skipped analytically (same formula
        as the vector trap plane, minus the entry the scalar step
        already performed).
        """
        st, mem = self._lane_ctx(lane)
        self._sync_out(lane, st)
        cfg = self.config
        hlo, hhi = self.handler_span
        max_steps = cfg.max_steps
        steps = int(self.steps[lane])
        traps = int(self.traps[lane])
        ov = self.overrides[lane]
        count = int(self.counts[lane])
        stop = None
        first = True
        while True:
            if steps >= max_steps:
                stop = "max_steps"
                break
            pc = st.pc
            if not first and not to_completion and self._rejoinable(pc):
                break
            if (pc == spec.TRAP_VECTOR and st.priv == spec.PRV_M
                    and self.handler_ok[lane]):
                # Intact handler: apply its closed-form effect (x31
                # round-trips; mepc/mscratch advance; mret unstacks).
                if max_steps - steps < 6:
                    stop = "max_steps"  # budget dies inside the (untraced) handler
                    break
                values = st.csr._values
                ret = (values[spec.CSR_MEPC] + 4) & spec.WORD_MASK
                values[spec.CSR_MEPC] = ret
                values[spec.CSR_MSCRATCH] = ret
                ms = values[spec.CSR_MSTATUS]
                new_priv = (ms & MSTATUS_MPP_MASK) >> MSTATUS_MPP_SHIFT
                msn = ms & ~(MSTATUS_MIE | MSTATUS_MPIE | MSTATUS_MPP_MASK)
                if ms & MSTATUS_MPIE:
                    msn |= MSTATUS_MIE
                msn |= MSTATUS_MPIE
                values[spec.CSR_MSTATUS] = msn
                values[spec.CSR_MCYCLE] = (values[spec.CSR_MCYCLE] + 6) & spec.WORD_MASK
                values[spec.CSR_MINSTRET] = (values[spec.CSR_MINSTRET] + 6) & spec.WORD_MASK
                st.priv = new_priv
                st.pc = ret
                steps += 6
                first = False
                continue
            entry, traps, stop_reason = step_instruction(
                st, mem, cfg, hlo, hhi, traps
            )
            steps += 1
            if entry is not None:
                ov[count] = entry
                count += 1
            first = False
            if stop_reason is not None:
                stop = stop_reason
                break
        self.steps[lane] = steps  # before _sync_in: counter CSRs rebase on steps
        self.traps[lane] = traps
        self.counts[lane] = count
        if count > self.hi:
            self.hi = count
        self._sync_in(lane, st)
        if stop is not None:
            self.stop_code[lane] = {"wfi": 1, "max_steps": 2, "max_traps": 3}[stop]
            self.running[lane] = False

    # -- vector trap plane --------------------------------------------------

    def _resolve_traps(self, lanes, pcs, causes, tvals, words) -> None:
        """Analytic trap entry + handler for lanes with intact handlers.

        Mirrors the scalar sequence exactly: trap commit entry, counter
        tick, ``max_traps`` cutoff, then — if the remaining step budget
        covers the six handler instructions — the handler's closed-form
        effect; otherwise the lane dies mid-handler with ``max_steps``
        (handler steps are untraced, so the trace is already complete).
        """
        np = _np
        c = self.c
        idx = self.counts[lanes]
        self.c_pc[lanes, idx] = pcs
        self.c_word[lanes, idx] = words
        self.c_priv[lanes, idx] = self.priv[lanes]
        self.c_tc[lanes, idx] = causes
        self.c_tv[lanes, idx] = tvals
        self.counts[lanes] += 1
        self.traps[lanes] += 1
        self.steps[lanes] += 1
        self.res_valid[lanes] = False
        self.csrv[spec.CSR_MCAUSE][lanes] = causes.astype(np.uint64)
        self.csrv[spec.CSR_MTVAL][lanes] = tvals & c["mask"]

        stop3 = self.traps[lanes] >= self.config.max_traps
        l3 = lanes[stop3]
        self.stop_code[l3] = 3
        self.running[l3] = False

        cont = ~stop3
        rem = self.config.max_steps - self.steps[lanes]
        short = cont & (rem < 6)
        l2 = lanes[short]
        self.stop_code[l2] = 2
        self.running[l2] = False

        go = cont & ~short
        lg = lanes[go]
        if lg.size:
            ret = ((pcs[go] & c["not1"]) + c["u4"]) & c["mask"]
            self.csrv[spec.CSR_MEPC][lg] = ret
            self.csrv[spec.CSR_MSCRATCH][lg] = ret
            ms = self.csrv[spec.CSR_MSTATUS][lg]
            mpie = np.uint64(MSTATUS_MPIE)
            keep = np.uint64(spec.WORD_MASK & ~(MSTATUS_MPIE | MSTATUS_MPP_MASK))
            self.csrv[spec.CSR_MSTATUS][lg] = (ms & keep) | mpie
            self.steps[lg] += 6
            self.pc[lg] = ret
            done = self.steps[lg] >= self.config.max_steps
            ld = lg[done]
            self.stop_code[ld] = 2
            self.running[ld] = False

    def _chain(self, lane: int) -> None:
        """Resolve a run of fetch traps (unmapped pc or zero instruction
        words) for one lane in closed form.

        Such a lane re-traps on every handler return — pc only advances
        by 4 — so the whole run is deterministic: k trap commits, then
        either a limit stop or a resume at the first fetchable pc.
        Collapsing the run matters because runaway trap loops otherwise
        cost one vector round per trap while the other lanes idle along.
        """
        np = _np
        c = self.c
        pc0 = int(self.pc[lane])
        if (pc0 & 1) or not (self.handler_ok[lane] and self.mtvec_ok[lane]):
            self._peel(lane)  # dirty handler (or odd pc): scalar path
            return
        cfg = self.config
        max_steps, max_traps = cfg.max_steps, cfg.max_traps
        steps = int(self.steps[lane])
        traps = int(self.traps[lane])
        kmax = min(max_traps - traps, (max_steps - steps) // 7 + 1)
        pcs = np.uint64(pc0) + c["u4"] * np.arange(kmax, dtype=np.uint64)
        moff = pcs - c["dram"]
        unmapped = moff > c["dlim"]
        zero_ok = (~unmapped
                   & ((moff & c["u3"]) == c["u0"])
                   & ((pcs - np.uint64(self.base)) >= np.uint64(4 * self.lmax)))
        word_zero = np.zeros(kmax, dtype=bool)
        widx = np.flatnonzero(zero_ok)
        if widx.size:
            w = self.arena32[lane, (moff[widx] >> c["u2"]).astype(np.int64)]
            word_zero[widx] = w == 0
        chainable = unmapped | (zero_ok & word_zero)
        nc = np.flatnonzero(~chainable)
        limit = int(nc[0]) if nc.size else kmax
        # Walk the stop logic; mirrors _resolve_traps entry-by-entry.
        k = 0
        stop = 0
        while k < limit:
            steps += 1
            traps += 1
            k += 1
            if traps >= max_traps:
                stop = 3
                break
            if max_steps - steps < 6:
                stop = 2
                break
            steps += 6
            if steps >= max_steps:
                stop = 2
                break
        n0 = int(self.counts[lane])
        self._grow_cols(n0 + k)
        if n0 + k > self.hi:
            self.hi = n0 + k
        sl = slice(n0, n0 + k)
        unm_k = unmapped[:k]
        self.c_pc[lane, sl] = pcs[:k]
        self.c_priv[lane, sl] = int(self.priv[lane])
        self.c_tc[lane, sl] = np.where(
            unm_k, spec.EXC_INSTR_ACCESS_FAULT, spec.EXC_ILLEGAL_INSTRUCTION
        )
        self.c_tv[lane, sl] = np.where(unm_k, pcs[:k], c["u0"])
        # c_word keeps its 0 default: both chain causes read the word as 0.
        self.counts[lane] = n0 + k
        self.steps[lane] = steps
        self.traps[lane] = traps
        self.res_valid[lane] = False
        if stop:
            self.stop_code[lane] = stop
            self.running[lane] = False
            return
        # The lane survives the run: commit the composed CSR effects of the
        # final trap + handler pass (earlier passes are fully overwritten).
        last = int(pcs[k - 1])
        ret = (last + 4) & spec.WORD_MASK
        if unmapped[k - 1]:
            self.csrv[spec.CSR_MCAUSE][lane] = spec.EXC_INSTR_ACCESS_FAULT
            self.csrv[spec.CSR_MTVAL][lane] = last
        else:
            self.csrv[spec.CSR_MCAUSE][lane] = spec.EXC_ILLEGAL_INSTRUCTION
            self.csrv[spec.CSR_MTVAL][lane] = 0
        self.csrv[spec.CSR_MEPC][lane] = ret
        self.csrv[spec.CSR_MSCRATCH][lane] = ret
        ms = int(self.csrv[spec.CSR_MSTATUS][lane])
        self.csrv[spec.CSR_MSTATUS][lane] = (
            ms & ~(MSTATUS_MPIE | MSTATUS_MPP_MASK)
        ) | MSTATUS_MPIE
        self.pc[lane] = ret

    # -- main loop ----------------------------------------------------------

    def run(self) -> list[CommitTrace]:
        np = _np
        if self.config.max_steps <= 0:
            self.stop_code[:] = 2
            self.running[:] = False
        tail = max(1, self.g // 16)
        guard = 2 * self.config.max_steps + self.g + 64
        rounds = 0
        while True:
            act = _nz1(self.running)
            if act.size == 0:
                break
            if act.size <= tail:
                for lane in act.tolist():
                    self._peel(lane, to_completion=True)
                break
            rounds += 1
            if rounds > guard:  # pragma: no cover - termination backstop
                raise RuntimeError("batched golden ISS failed to converge")
            self._round(act)
        return [self._materialize(lane) for lane in range(self.g)]

    def _round(self, act) -> None:
        np = _np
        c = self.c
        fnz = _nz1    # 1-D fast path: skips flatnonzero's ravel
        n = act.size
        pcs = self.pc[act]

        # --- fetch classification ----------------------------------------
        moff = pcs - c["dram"]
        toff = pcs - self.base_u
        in_tab = ((toff < self.tab_u) & ((toff & c["u3"]) == c["u0"])
                  & (moff <= c["dlim"]))
        all_tab = bool(in_tab.all())

        r_cause = np.full(n, -1, dtype=np.int64)
        r_tval = np.zeros(n, dtype=np.uint64)
        r_peel = np.zeros(n, dtype=bool)
        r_halt = np.zeros(n, dtype=bool)
        r_npc = pcs + c["u4"]
        r_hasrd = np.zeros(n, dtype=bool)
        r_val = np.zeros(n, dtype=np.uint64)
        r_memk = np.zeros(n, dtype=np.int64)
        r_mema = np.zeros(n, dtype=np.uint64)
        r_mems = np.zeros(n, dtype=np.int64)
        r_memd = np.zeros(n, dtype=np.uint64)
        r_csra = np.full(n, -1, dtype=np.int64)
        r_csrv = np.zeros(n, dtype=np.uint64)

        r_chain = None
        any_chain = any_peel = False
        if not all_tab:
            # Unmapped or zero-word fetches trap on every subsequent fetch
            # too (the handler only advances pc by 4) — _chain resolves
            # the whole run per lane instead of one trap per round.
            m_ok = moff <= c["dlim"]
            r_chain = ~m_ok
            rest = m_ok & ~in_tab
            if rest.any():
                # In DRAM but outside the table: zero words (the common
                # case — falling through data) chain as illegal-
                # instruction traps; anything else peels.
                aligned = rest & ((moff & c["u3"]) == c["u0"])
                mis = fnz(rest & ~aligned)
                if mis.size:
                    r_peel[mis] = True
                    any_peel = True
                ra = fnz(aligned)
                if ra.size:
                    aw = self.arena32[act[ra], (moff[ra] >> c["u2"]).astype(np.int64)]
                    zero = aw == 0
                    r_chain[ra[zero]] = True
                    nz = ra[~zero]
                    if nz.size:
                        r_peel[nz] = True
                        any_peel = True
            any_chain = bool(r_chain.any())

        # --- decode-table gather + per-kind execution ---------------------
        if all_tab:
            it = None
            lanes_it = act
            slots = (toff >> c["u2"]).astype(np.int64)
            pcs_it = pcs
        else:
            it = fnz(in_tab)
            lanes_it = act[it]
            slots = (toff[it] >> c["u2"]).astype(np.int64)
            pcs_it = pcs[it]
        any_trap = any_halt = any_mem = any_csr = False
        if lanes_it.size:
            flat = lanes_it * self.words.shape[1] + slots
            rec = self.packed_flat[flat]
            imm = self.imm_flat[flat]
            word = self.words_flat[flat]
            kind = rec & 0xFF
            rd = (rec >> 8) & 0xFF
            rs1 = (rec >> 16) & 0xFF
            rs2 = (rec >> 24) & 0xFF
            flags = rec >> 32
            a = self.regs_flat[lanes_it * 32 + rs1]
            breg = self.regs_flat[lanes_it * 32 + rs2]
            b = np.where((flags & F_IMM) != 0, imm, breg)
            if it is None:
                r_word = word
                r_rd = rd
            else:
                r_word = np.zeros(n, dtype=np.uint32)
                r_rd = np.zeros(n, dtype=np.int64)
                r_word[it] = word
                r_rd[it] = rd
            any_trap, exec_peel, any_halt, any_mem, any_csr = self._exec_kinds(
                act, it, lanes_it, kind, rd, rs1, rs2, flags, a, b, breg,
                imm, pcs_it, word,
                r_cause, r_tval, r_peel, r_halt, r_npc, r_hasrd, r_val,
                r_memk, r_mema, r_mems, r_memd, r_csra, r_csrv,
            )
            any_peel = any_peel or exec_peel
        else:
            r_word = np.zeros(n, dtype=np.uint32)
            r_rd = np.zeros(n, dtype=np.int64)

        # --- split traps: analytic fast path vs dirty-handler peel --------
        tp = None
        if any_trap:
            tp = fnz(r_cause >= 0)
            tl = act[tp]
            fast = self.handler_ok[tl] & self.mtvec_ok[tl]
            if not fast.all():
                dirty = tp[~fast]
                r_peel[dirty] = True
                r_cause[dirty] = -1
                any_peel = True
                tp = tp[fast]

        # --- writeback for plainly-executed lanes -------------------------
        self._grow_cols(self.hi + 1)
        self.hi += 1
        cap = self.cap
        if not (any_trap or any_peel or any_chain):
            E = slice(None)
            lanes_e = act
            has_exec = True
        else:
            badm = r_peel
            if r_chain is not None:
                badm = badm | r_chain
            if any_trap:
                badm = badm | (r_cause >= 0)
            E = fnz(~badm)
            lanes_e = act[E]
            has_exec = E.size > 0
        if has_exec:
            idx = self.counts[lanes_e]
            flatc = lanes_e * cap + idx
            self.c_pc_flat[flatc] = pcs[E]
            self.c_word_flat[flatc] = r_word[E]
            if not self.all_m:
                self.c_priv_flat[flatc] = self.priv[lanes_e]
            rdE = r_rd[E]
            valE = r_val[E]
            wr = fnz(r_hasrd[E] & (rdE > 0))
            if wr.size:
                fw = flatc[wr]
                self.c_rd_flat[fw] = rdE[wr]
                self.c_val_flat[fw] = valE[wr]
                self.regs_flat[lanes_e[wr] * 32 + rdE[wr]] = valE[wr]
            if any_mem:
                memkE = r_memk[E]
                mm = fnz(memkE)
                if mm.size:
                    fm = flatc[mm]
                    self.c_memk_flat[fm] = memkE[mm]
                    self.c_mema_flat[fm] = r_mema[E][mm]
                    self.c_mems_flat[fm] = r_mems[E][mm]
                    self.c_memd_flat[fm] = r_memd[E][mm]
            if any_csr:
                csraE = r_csra[E]
                cs = fnz(csraE >= 0)
                if cs.size:
                    fc = flatc[cs]
                    self.c_ca_flat[fc] = csraE[cs]
                    self.c_cv_flat[fc] = r_csrv[E][cs]
            self.counts[lanes_e] = idx + 1
            self.steps[lanes_e] += 1
            self.pc[lanes_e] = r_npc[E]
            if any_halt:
                lh = lanes_e[r_halt[E]]
                self.stop_code[lh] = 1
                self.running[lh] = False
            over = (self.steps[lanes_e] >= self.config.max_steps) & self.running[lanes_e]
            if over.any():
                lo = lanes_e[over]
                self.stop_code[lo] = 2
                self.running[lo] = False

        if tp is not None and tp.size:
            self._resolve_traps(
                act[tp], pcs[tp], r_cause[tp], r_tval[tp],
                r_word[tp],
            )

        if any_chain:
            for pos in fnz(r_chain).tolist():
                self._chain(int(act[pos]))

        if any_peel:
            for pos in fnz(r_peel).tolist():
                self._peel(int(act[pos]))

    # -- per-kind kernels ---------------------------------------------------

    def _exec_kinds(self, act, it, lanes_it, kind, rd, rs1, rs2, flags, a, b,
                    breg, imm, pcs_it, word,
                    r_cause, r_tval, r_peel, r_halt, r_npc, r_hasrd, r_val,
                    r_memk, r_mema, r_mems, r_memd, r_csra, r_csrv):
        """Masked per-kind execution; returns python-level presence flags
        ``(any_trap, any_peel, any_halt, any_mem, any_csr)`` so the caller
        can skip absent machinery without re-scanning arrays."""
        np = _np
        c = self.c
        # One stable sort replaces a kind == K scan per opcode class: the
        # sorted positions of kind k are order[start_k : start_k + cnt_k].
        cnt = np.bincount(kind, minlength=N_KINDS).tolist()
        order = np.argsort(kind, kind="stable")
        starts = [0] * N_KINDS
        s = 0
        for k_ in range(N_KINDS):
            starts[k_] = s
            s += cnt[k_]

        def grp(k_):
            return order[starts[k_]:starts[k_] + cnt[k_]]

        if it is None:
            def gof(p):
                return p
        else:
            def gof(p):
                return it[p]

        any_trap = any_peel = any_halt = any_mem = any_csr = False

        def sx32(x):
            return ((x & c["m32"]) ^ c["b31"]) - c["b31"]

        if cnt[K_ILLEGAL]:
            p = grp(K_ILLEGAL)
            gp = gof(p)
            r_cause[gp] = spec.EXC_ILLEGAL_INSTRUCTION
            r_tval[gp] = word[p]
            any_trap = True
        if cnt[K_PEEL]:
            r_peel[gof(grp(K_PEEL))] = True
            any_peel = True

        if cnt[K_ADD]:
            p = grp(K_ADD)
            f = flags[p]
            bb = np.where((f & F_X) != 0, c["u0"] - b[p], b[p])
            v = a[p] + bb
            v = np.where((f & F_W32) != 0, sx32(v), v)
            gp = gof(p)
            r_val[gp] = v
            r_hasrd[gp] = True
        if cnt[K_BIT]:
            p = grp(K_BIT)
            sub = (flags[p] >> F_SUB_SHIFT) & 3
            v = np.where(sub == 0, a[p] ^ b[p],
                         np.where(sub == 1, a[p] | b[p], a[p] & b[p]))
            gp = gof(p)
            r_val[gp] = v
            r_hasrd[gp] = True
        if cnt[K_SLT]:
            p = grp(K_SLT)
            lt_s = a[p].astype(np.int64) < b[p].astype(np.int64)
            lt_u = a[p] < b[p]
            v = np.where((flags[p] & F_X) != 0, lt_s, lt_u).astype(np.uint64)
            gp = gof(p)
            r_val[gp] = v
            r_hasrd[gp] = True
        if cnt[K_SHIFT]:
            p = grp(K_SHIFT)
            f = flags[p]
            w32 = (f & F_W32) != 0
            sh = b[p] & np.where(w32, np.uint64(31), np.uint64(63))
            left = a[p] << sh
            srl = np.where(w32, a[p] & c["m32"], a[p]) >> sh
            sra_src = np.where(w32, sx32(a[p]), a[p]).astype(np.int64)
            sra = (sra_src >> sh.astype(np.int64)).astype(np.uint64)
            sub = (f >> F_SUB_SHIFT) & 3
            v = np.where(sub == 0, left, np.where(sub == 1, srl, sra))
            v = np.where(w32, sx32(v), v)
            gp = gof(p)
            r_val[gp] = v
            r_hasrd[gp] = True
        if cnt[K_LUIPC]:
            p = grp(K_LUIPC)
            v = np.where((flags[p] & F_X) != 0, pcs_it[p] + imm[p], imm[p])
            gp = gof(p)
            r_val[gp] = v
            r_hasrd[gp] = True
        if cnt[K_JAL]:
            p = grp(K_JAL)
            is_jalr = (flags[p] & F_X) != 0
            tgt = np.where(is_jalr, (a[p] + imm[p]) & c["not1"], pcs_it[p] + imm[p])
            mis = (tgt & c["u3"]) != c["u0"]
            gp = gof(p)
            if mis.any():
                r_cause[gp[mis]] = spec.EXC_INSTR_MISALIGNED
                r_tval[gp[mis]] = tgt[mis]
                any_trap = True
                ok = ~mis
                go = gp[ok]
                r_npc[go] = tgt[ok]
                r_val[go] = pcs_it[p][ok] + c["u4"]
                r_hasrd[go] = True
            else:
                r_npc[gp] = tgt
                r_val[gp] = pcs_it[p] + c["u4"]
                r_hasrd[gp] = True
        if cnt[K_BR]:
            p = grp(K_BR)
            cc = (flags[p] >> F_CC_SHIFT) & 7
            eq = a[p] == b[p]
            lt = a[p].astype(np.int64) < b[p].astype(np.int64)
            ltu = a[p] < b[p]
            # cc is {eq,ne,lt,ge,ltu,geu}: pick the base compare by cc >> 1,
            # low bit flips the sense — same table np.choose walked, cheaper.
            taken = (np.where(cc < 2, eq, np.where(cc < 4, lt, ltu))
                     ^ ((cc & 1) != 0))
            tgt = pcs_it[p] + imm[p]
            mis = taken & ((tgt & c["u3"]) != c["u0"])
            gp = gof(p)
            if mis.any():
                r_cause[gp[mis]] = spec.EXC_INSTR_MISALIGNED
                r_tval[gp[mis]] = tgt[mis]
                any_trap = True
                go = taken & ~mis
            else:
                go = taken
            r_npc[gp[go]] = tgt[go]
        if cnt[K_LOAD]:
            any_mem = True
            if self._mem_kernel(grp(K_LOAD), gof, lanes_it, flags, a, breg,
                                imm, K_LOAD, r_cause, r_tval, r_hasrd, r_val,
                                r_memk, r_mema, r_mems, r_memd):
                any_trap = True
        if cnt[K_STORE]:
            any_mem = True
            if self._mem_kernel(grp(K_STORE), gof, lanes_it, flags, a, breg,
                                imm, K_STORE, r_cause, r_tval, r_hasrd, r_val,
                                r_memk, r_mema, r_mems, r_memd):
                any_trap = True
        if cnt[K_AMO]:
            p = grp(K_AMO)
            f = flags[p]
            wl = (f >> F_SUB_SHIFT) & 3
            wsz = np.where(wl == 2, np.uint64(4), np.uint64(8))
            addr = a[p]
            is_st = (f & F_X) != 0
            mis = (addr & (wsz - c["u1"])) != c["u0"]
            off = addr - c["dram"]
            unmap = off > (c["dsize"] - wsz)
            bad = mis | unmap
            cause = np.where(
                mis,
                np.where(is_st, spec.EXC_STORE_MISALIGNED, spec.EXC_LOAD_MISALIGNED),
                np.where(is_st, spec.EXC_STORE_ACCESS_FAULT, spec.EXC_LOAD_ACCESS_FAULT),
            )
            gp = gof(p)
            if bad.any():
                r_cause[gp[bad]] = cause[bad]
                r_tval[gp[bad]] = addr[bad]
                any_trap = True
            ok = gp[~bad]
            if ok.size:
                r_peel[ok] = True  # mapped atomics run scalar
                any_peel = True
        if cnt[K_CSR]:
            any_csr = True
            if self._csr_kernel(grp(K_CSR), gof, lanes_it, flags, rd, rs1, a,
                                imm, word, r_cause, r_tval, r_hasrd, r_val,
                                r_csra, r_csrv):
                any_trap = True
        if cnt[K_MUL]:
            p = grp(K_MUL)
            v = a[p] * b[p]
            v = np.where((flags[p] & F_W32) != 0, sx32(v), v)
            gp = gof(p)
            r_val[gp] = v
            r_hasrd[gp] = True
        if cnt[K_MULH]:
            p = grp(K_MULH)
            aa, bb = a[p], b[p]
            al = aa & c["m32"]
            ah = aa >> np.uint64(32)
            bl = bb & c["m32"]
            bh = bb >> np.uint64(32)
            ll = al * bl
            lh = al * bh
            hl = ah * bl
            mid = (ll >> np.uint64(32)) + (lh & c["m32"]) + (hl & c["m32"])
            hu = ah * bh + (lh >> np.uint64(32)) + (hl >> np.uint64(32)) + (mid >> np.uint64(32))
            sub = (flags[p] >> F_SUB_SHIFT) & 3
            a_neg = aa.astype(np.int64) < 0
            b_neg = bb.astype(np.int64) < 0
            v = hu - np.where(a_neg & (sub <= 1), bb, c["u0"])
            v = v - np.where(b_neg & (sub == 0), aa, c["u0"])
            gp = gof(p)
            r_val[gp] = v
            r_hasrd[gp] = True
        if cnt[K_DIV]:
            p = grp(K_DIV)
            f = flags[p]
            w32 = (f & F_W32) != 0
            rem = ((f >> F_SUB_SHIFT) & 3) != 0
            sgn = (f & F_X) != 0
            ua = np.where(w32, a[p] & c["m32"], a[p])
            ub = np.where(w32, b[p] & c["m32"], b[p])
            sa = np.where(w32, sx32(a[p]), a[p]).astype(np.int64)
            sb = np.where(w32, sx32(b[p]), b[p]).astype(np.int64)
            # signed: truncating division via floor + adjust
            ovf_min = np.where(w32, np.int64(-(1 << 31)), np.int64(-(1 << 63)))
            bz_s = sb == 0
            ovf = (sa == ovf_min) & (sb == -1)
            bsafe = np.where(bz_s | ovf, np.int64(1), sb)
            q = sa // bsafe
            r = sa - q * bsafe
            adj = (r != 0) & ((sa < 0) != (bsafe < 0))
            qt = q + adj
            rt = sa - qt * bsafe
            q_s = np.where(bz_s, np.int64(-1), np.where(ovf, sa, qt)).astype(np.uint64)
            r_s = np.where(bz_s, sa, np.where(ovf, np.int64(0), rt)).astype(np.uint64)
            # unsigned
            bz_u = ub == 0
            ubs = np.where(bz_u, c["u1"], ub)
            qu = ua // ubs
            q_u = np.where(bz_u, c["mask"], qu)
            r_u = np.where(bz_u, ua, ua - qu * ubs)
            v = np.where(sgn, np.where(rem, r_s, q_s), np.where(rem, r_u, q_u))
            v = np.where(w32, sx32(v), v)
            gp = gof(p)
            r_val[gp] = v
            r_hasrd[gp] = True
        if cnt[K_WFI]:
            r_halt[gof(grp(K_WFI))] = True
            any_halt = True
        if cnt[K_ECALL]:
            p = grp(K_ECALL)
            gp = gof(p)
            r_cause[gp] = np.where(
                self.priv[lanes_it[p]] == spec.PRV_M,
                spec.EXC_ECALL_FROM_M, spec.EXC_ECALL_FROM_U,
            )
            any_trap = True
        if cnt[K_EBREAK]:
            p = grp(K_EBREAK)
            gp = gof(p)
            r_cause[gp] = spec.EXC_BREAKPOINT
            r_tval[gp] = pcs_it[p]
            any_trap = True
        if cnt[K_MRET]:
            p = grp(K_MRET)
            gp = gof(p)
            lanes_p = lanes_it[p]
            bad = self.priv[lanes_p] != spec.PRV_M
            if bad.any():
                r_cause[gp[bad]] = spec.EXC_ILLEGAL_INSTRUCTION
                r_tval[gp[bad]] = word[p][bad]
                any_trap = True
            ok = ~bad
            lq = lanes_p[ok]
            if lq.size:
                ms = self.csrv[spec.CSR_MSTATUS][lq]
                new_priv = (ms >> np.uint64(MSTATUS_MPP_SHIFT)) & c["u3"]
                r_npc[gp[ok]] = self.csrv[spec.CSR_MEPC][lq]
                keep = np.uint64(
                    spec.WORD_MASK & ~(MSTATUS_MIE | MSTATUS_MPIE | MSTATUS_MPP_MASK)
                )
                msn = ms & keep
                msn |= np.where((ms & np.uint64(MSTATUS_MPIE)) != 0,
                                np.uint64(MSTATUS_MIE), c["u0"])
                msn |= np.uint64(MSTATUS_MPIE)
                self.csrv[spec.CSR_MSTATUS][lq] = msn
                self.priv[lq] = new_priv.astype(np.int64)
                if (new_priv != np.uint64(spec.PRV_M)).any():
                    self.all_m = False
        # K_FENCE retires with defaults (npc = pc+4, no effects).
        return any_trap, any_peel, any_halt, any_mem, any_csr

    def _mem_kernel(self, p, gof, lanes_it, flags, a, breg, imm,
                    which, r_cause, r_tval, r_hasrd, r_val,
                    r_memk, r_mema, r_mems, r_memd) -> bool:
        np = _np
        c = self.c
        is_store = which == K_STORE
        f = flags[p]
        wl = (f >> F_SUB_SHIFT) & 3
        wsz = c["u1"] << wl.astype(np.uint64)
        addr = a[p] + imm[p]
        mis = (addr & (wsz - c["u1"])) != c["u0"]
        off = addr - c["dram"]
        unmap = off > (c["dsize"] - wsz)
        bad = mis | unmap
        gp = gof(p)
        trapped = bool(bad.any())
        if trapped:
            if is_store:
                cause = np.where(mis, spec.EXC_STORE_MISALIGNED,
                                 spec.EXC_STORE_ACCESS_FAULT)
            else:
                cause = np.where(mis, spec.EXC_LOAD_MISALIGNED,
                                 spec.EXC_LOAD_ACCESS_FAULT)
            r_cause[gp[bad]] = cause[bad]
            r_tval[gp[bad]] = addr[bad]
        ok = ~bad
        views = (self.arena, self.arena16, self.arena32, self.arena64)
        for w in range(4):
            q = _nz1(ok & (wl == w))
            if not q.size:
                continue
            lanes_q = lanes_it[p][q]
            gq = gp[q]
            addr_q = addr[q]
            iq = ((addr_q - c["dram"]) >> np.uint64(w)).astype(np.int64)
            if is_store:
                mask_w = np.uint64(spec.WORD_MASK if w == 3 else (1 << (8 << w)) - 1)
                sv = breg[p][q] & mask_w
                views[w][lanes_q, iq] = sv
                match = self.res_valid[lanes_q] & (self.res_addr[lanes_q] == addr_q)
                self.res_valid[lanes_q[match]] = False
                size = 1 << w
                hlo, hhi = self.handler_span
                touch_h = (addr_q < np.uint64(hhi)) & (addr_q + np.uint64(size) > np.uint64(hlo))
                self.handler_ok[lanes_q[touch_h]] = False
                tlo, thi = self.base, self.base + 4 * self.lmax
                touch_t = (addr_q < np.uint64(thi)) & (addr_q + np.uint64(size) > np.uint64(tlo))
                for j in np.flatnonzero(touch_t).tolist():
                    # Rare self-modifying store into the code window:
                    # refresh the affected dispatch-table slots.
                    self.note_write(int(lanes_q[j]), int(addr_q[j]), size)
                r_memk[gq] = 2
                r_memd[gq] = sv
            else:
                raw = views[w][lanes_q, iq].astype(np.uint64)
                if w == 3:
                    v = raw
                else:
                    sbit = np.uint64(1 << ((8 << w) - 1))
                    signed = (f[q] & F_X) != 0
                    v = np.where(signed, (raw ^ sbit) - sbit, raw)
                r_val[gq] = v
                r_hasrd[gq] = True
                r_memk[gq] = 1
                r_memd[gq] = v
            r_mema[gq] = addr_q
            r_mems[gq] = 1 << w
        return trapped

    def _csr_kernel(self, p, gof, lanes_it, flags, rd, rs1, a, imm, word,
                    r_cause, r_tval, r_hasrd, r_val, r_csra, r_csrv) -> bool:
        np = _np
        c = self.c
        f = flags[p]
        caddr = imm[p].astype(np.int64)
        lanes_p = lanes_it[p]
        pl = self.priv[lanes_p]
        impl = _csr_tables()[0][caddr]
        minpriv = _csr_tables()[1][caddr]
        ro = _csr_tables()[2][caddr]
        opk = (f >> F_SUB_SHIFT) & 3
        operand = np.where((f & F_IMM) != 0, rs1[p].astype(np.uint64), a[p])
        will = ~((opk != 0) & (rs1[p] == 0))
        counter = (caddr >= spec.CSR_CYCLE) & (caddr <= spec.CSR_INSTRET)
        gate = counter & (pl < spec.PRV_M) & (
            (self.csrv[spec.CSR_MCOUNTEREN][lanes_p] & c["u1"]) == c["u0"]
        )
        bad = ~impl | (pl < minpriv) | gate | (will & ro)
        gp = gof(p)
        trapped = bool(bad.any())
        if trapped:
            r_cause[gp[bad]] = spec.EXC_ILLEGAL_INSTRUCTION
            r_tval[gp[bad]] = word[p][bad]
        fine = ~bad
        if not fine.any():
            return trapped
        for A in np.unique(caddr[fine]).tolist():
            q = _nz1(fine & (caddr == A))
            lq = lanes_p[q]
            gq = gp[q]
            src = A
            if A in (spec.CSR_CYCLE, spec.CSR_TIME):
                src = spec.CSR_MCYCLE
            elif A == spec.CSR_INSTRET:
                src = spec.CSR_MINSTRET
            old = self.csrv[src][lq]
            if src in (spec.CSR_MCYCLE, spec.CSR_MINSTRET):
                # Counters are stored as offsets from ``steps``.
                old = old + self.steps[lq].astype(np.uint64)
            r_val[gq] = old
            r_hasrd[gq] = True
            wq = _nz1(will[q])
            if not wq.size:
                continue
            op_w = opk[q][wq]
            opd = operand[q][wq]
            old_w = old[wq]
            wv = np.where(op_w == 0, opd,
                          np.where(op_w == 1, old_w | opd, old_w & ~opd))
            if A == spec.CSR_MSTATUS:
                wv = wv & np.uint64(MSTATUS_WRITE_MASK)
                mpp = (wv >> np.uint64(MSTATUS_MPP_SHIFT)) & c["u3"]
                fix = (mpp != np.uint64(spec.PRV_U)) & (mpp != np.uint64(spec.PRV_M))
                forced = (wv & np.uint64(spec.WORD_MASK & ~MSTATUS_MPP_MASK)) | np.uint64(
                    spec.PRV_M << MSTATUS_MPP_SHIFT
                )
                wv = np.where(fix, forced, wv)
            elif A == spec.CSR_MTVEC:
                wv = wv & np.uint64(spec.WORD_MASK & ~0b11)
            elif A == spec.CSR_MEPC:
                wv = wv & c["not1"]
            lw = lq[wq]
            if A in (spec.CSR_MCYCLE, spec.CSR_MINSTRET):
                self.csrv[A][lw] = wv - self.steps[lw].astype(np.uint64)
                r_csra[gq[wq]] = A
                r_csrv[gq[wq]] = wv
                continue
            if A != spec.CSR_MISA:  # misa writes are WARL-ignored
                self.csrv[A][lw] = wv
                if A == spec.CSR_MTVEC:
                    self.mtvec_ok[lw] = wv == np.uint64(spec.TRAP_VECTOR)
            r_csra[gq[wq]] = A
            r_csrv[gq[wq]] = self.csrv[A][lw]
        return trapped

    # -- trace materialisation ----------------------------------------------

    def _materialize(self, lane: int) -> CommitTrace:
        n = int(self.counts[lane])
        ov = self.overrides[lane]
        ncol = min(n, self.cap)
        rows = zip(
            self.c_pc[lane, :ncol].tolist(),
            self.c_word[lane, :ncol].tolist(),
            self.c_priv[lane, :ncol].tolist(),
            self.c_rd[lane, :ncol].tolist(),
            self.c_val[lane, :ncol].tolist(),
            self.c_memk[lane, :ncol].tolist(),
            self.c_mema[lane, :ncol].tolist(),
            self.c_mems[lane, :ncol].tolist(),
            self.c_memd[lane, :ncol].tolist(),
            self.c_tc[lane, :ncol].tolist(),
            self.c_tv[lane, :ncol].tolist(),
            self.c_ca[lane, :ncol].tolist(),
            self.c_cv[lane, :ncol].tolist(),
        )
        # Frozen-dataclass construction is the per-entry hot path; a direct
        # __dict__ swap via object.__setattr__ skips __init__/__setattr__.
        new = TraceEntry.__new__
        osa = object.__setattr__
        entries: list[TraceEntry] = [None] * n  # type: ignore[list-item]
        i = 0
        for pc_, w_, pr_, rd_, v_, mk_, ma_, ms_, md_, tc_, tv_, ca_, cv_ in rows:
            e = new(TraceEntry)
            osa(e, "__dict__", {
                "pc": pc_,
                "instr": w_,
                "priv": pr_,
                "rd": rd_ if rd_ else None,
                "rd_value": v_,
                "mem": MemOp(ma_, ms_, mk_ == 2, md_) if mk_ else None,
                "trap_cause": tc_ if tc_ >= 0 else None,
                "trap_tval": tv_,
                "csr_write": (ca_, cv_) if ca_ >= 0 else None,
            })
            entries[i] = e
            i += 1
        if ov:
            for j, e in ov.items():
                if j < n:
                    entries[j] = e
        reason = ("wfi", "max_steps", "max_traps")[int(self.stop_code[lane]) - 1]
        return CommitTrace(entries=entries, stop_reason=reason, instret=n)


@lru_cache(maxsize=1)
def _csr_tables():
    """(implemented, min-privilege, read-only) lookup tables over the
    12-bit CSR address space, mirroring ``CSRFile._check_access``."""
    np = _np
    ok = np.zeros(4096, dtype=bool)
    for addr in spec.IMPLEMENTED_CSRS:
        ok[addr] = True
    addrs = np.arange(4096, dtype=np.int64)
    minpriv = (addrs >> 8) & 0b11
    ro = ((addrs >> 10) & 0b11) == 0b11
    return ok, minpriv, ro
