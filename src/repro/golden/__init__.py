"""Golden-model instruction-set simulator (the paper's Spike stand-in).

A spec-faithful RV64IMA_Zicsr executor with M/U privilege, full synchronous
trap priority, and commit-log tracing.  The differential fuzzing loop
(:mod:`repro.fuzzing`) runs every test input here and on the DUT
(:mod:`repro.soc`), then diffs the two traces.

Public API
----------
- :class:`~repro.golden.simulator.GoldenSimulator` — load + run programs.
- :class:`~repro.golden.batch.GoldenBatchSimulator` — same results for a
  whole batch at once, executed as lockstep numpy lanes (falls back to the
  scalar engine when numpy is unavailable or the batch is tiny).
- :class:`~repro.golden.trace.CommitTrace` / ``TraceEntry`` — the commit-log
  format shared with the SoC harness.
- :class:`~repro.golden.memory.SparseMemory` — byte-addressed sparse memory.
"""

from repro.golden.batch import DEFAULT_LANES, LANE_MIN, GoldenBatchSimulator
from repro.golden.exceptions import Trap
from repro.golden.memory import SparseMemory
from repro.golden.simulator import GoldenSimulator, SimConfig
from repro.golden.state import ArchState
from repro.golden.trace import CommitTrace, TraceEntry

__all__ = [
    "ArchState",
    "CommitTrace",
    "DEFAULT_LANES",
    "GoldenBatchSimulator",
    "GoldenSimulator",
    "LANE_MIN",
    "SimConfig",
    "SparseMemory",
    "Trap",
    "TraceEntry",
]
