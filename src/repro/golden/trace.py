"""Commit-log trace format shared by the golden model and the SoC models.

The Mismatch Detector (paper §IV-A) compares *architectural state changes*
between DUT and golden model.  A :class:`TraceEntry` records exactly those
per-retired-instruction changes: the register write-back, the memory
operation, and any trap taken.  Both simulators emit this format so the diff
is purely structural.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class MemOp:
    """One data-memory access performed by a retired instruction."""

    addr: int
    size: int  # bytes: 1, 2, 4 or 8
    is_store: bool
    data: int  # value stored, or value loaded (post-extension)

    def __str__(self) -> str:
        kind = "ST" if self.is_store else "LD"
        return f"{kind}[{self.addr:#x},{self.size}]={self.data:#x}"


@dataclass(frozen=True)
class TraceEntry:
    """Architectural effects of one retired (or trapping) instruction."""

    pc: int
    instr: int
    priv: int
    #: Destination register number for a register write-back, else None.
    rd: int | None = None
    #: Value written to ``rd`` (64-bit unsigned), when ``rd`` is not None.
    rd_value: int = 0
    mem: MemOp | None = None
    #: Synchronous trap cause taken *by* this instruction, else None.
    trap_cause: int | None = None
    trap_tval: int = 0
    #: CSR writes performed by the instruction: (addr, new value).
    csr_write: tuple[int, int] | None = None

    @property
    def trapped(self) -> bool:
        return self.trap_cause is not None

    def summary(self) -> str:
        """Compact single-line rendering used in mismatch reports."""
        parts = [f"pc={self.pc:#x}", f"instr={self.instr:#010x}", f"prv={self.priv}"]
        if self.rd is not None:
            parts.append(f"x{self.rd}<-{self.rd_value:#x}")
        if self.mem is not None:
            parts.append(str(self.mem))
        if self.csr_write is not None:
            parts.append(f"csr[{self.csr_write[0]:#x}]<-{self.csr_write[1]:#x}")
        if self.trapped:
            parts.append(f"trap={self.trap_cause} tval={self.trap_tval:#x}")
        return " ".join(parts)


@dataclass
class CommitTrace:
    """Ordered commit log of one program execution."""

    entries: list[TraceEntry] = field(default_factory=list)
    #: Why execution stopped: "wfi", "max_steps", "pc_escape" or "running".
    stop_reason: str = "running"
    #: Total instructions retired (== len(entries) unless truncated).
    instret: int = 0
    #: DUT cycle count (0 for the golden model, which is untimed).
    cycles: int = 0

    def append(self, entry: TraceEntry) -> None:
        self.entries.append(entry)
        self.instret += 1

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def __getitem__(self, idx):
        return self.entries[idx]

    @property
    def trap_count(self) -> int:
        return sum(1 for e in self.entries if e.trapped)

    def render(self, limit: int | None = None) -> str:
        """Multi-line human-readable log (``limit`` caps the line count)."""
        rows = [e.summary() for e in self.entries[:limit]]
        if limit is not None and len(self.entries) > limit:
            rows.append(f"... ({len(self.entries) - limit} more)")
        rows.append(f"-- stop: {self.stop_reason}, instret={self.instret}")
        return "\n".join(rows)
