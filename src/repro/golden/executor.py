"""Spec-faithful execution semantics for every implemented instruction.

:func:`execute` runs one decoded instruction against an
(:class:`~repro.golden.state.ArchState`, memory) pair and returns the
architectural effects as an :class:`ExecResult`.  It raises
:class:`~repro.golden.exceptions.Trap` for synchronous exceptions, resolving
simultaneous candidates with the privileged-spec priority (misaligned above
access-fault — the ordering the paper's Finding1 shows RocketCore violating).

The SoC models reuse these semantics for functional execution and wrap them
with microarchitectural state machines, so ISA correctness lives in exactly
one place (see DESIGN.md §5).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.golden.exceptions import Trap, select_trap
from repro.golden.memory import SparseMemory
from repro.golden.state import ArchState
from repro.golden.trace import MemOp
from repro.isa.decoder import DecodedInstr
from repro.isa.fields import sign_extend, to_unsigned
from repro.isa.spec import (
    EXC_BREAKPOINT,
    EXC_ECALL_FROM_M,
    EXC_ECALL_FROM_U,
    EXC_ILLEGAL_INSTRUCTION,
    EXC_INSTR_MISALIGNED,
    EXC_LOAD_ACCESS_FAULT,
    EXC_LOAD_MISALIGNED,
    EXC_STORE_ACCESS_FAULT,
    EXC_STORE_MISALIGNED,
    PRV_M,
    PRV_U,
    WORD_MASK,
)

_S64 = lambda v: sign_extend(v, 64)  # noqa: E731 - local shorthand
_S32 = lambda v: sign_extend(v, 32)  # noqa: E731


@dataclass
class ExecResult:
    """Architectural effects of one executed instruction."""

    next_pc: int
    rd: int | None = None
    rd_value: int = 0
    mem: MemOp | None = None
    csr_write: tuple[int, int] | None = None
    halt: bool = False  # wfi: treated as end-of-test by the harness


# Load/store width and signedness per mnemonic.
_LOAD_WIDTH = {
    "lb": (1, True), "lh": (2, True), "lw": (4, True), "ld": (8, True),
    "lbu": (1, False), "lhu": (2, False), "lwu": (4, False),
}
_STORE_WIDTH = {"sb": 1, "sh": 2, "sw": 4, "sd": 8}


def _check_data_addr(memory: SparseMemory, addr: int, size: int, is_store: bool):
    """Raise the highest-priority trap for a bad data address, if any."""
    candidates = []
    if addr % size:
        candidates.append(
            Trap(EXC_STORE_MISALIGNED if is_store else EXC_LOAD_MISALIGNED, tval=addr)
        )
    if not memory.is_mapped(addr, size):
        candidates.append(
            Trap(
                EXC_STORE_ACCESS_FAULT if is_store else EXC_LOAD_ACCESS_FAULT,
                tval=addr,
            )
        )
    if candidates:
        raise select_trap(candidates)


def _alu_op(mnemonic: str, a: int, b: int, shamt: int | None = None) -> int:
    """Integer ALU semantics; ``a``/``b`` are 64-bit unsigned operands."""
    if mnemonic in ("add", "addi"):
        return (a + b) & WORD_MASK
    if mnemonic == "sub":
        return (a - b) & WORD_MASK
    if mnemonic in ("xor", "xori"):
        return a ^ b
    if mnemonic in ("or", "ori"):
        return a | b
    if mnemonic in ("and", "andi"):
        return a & b
    if mnemonic in ("slt", "slti"):
        return 1 if _S64(a) < _S64(b) else 0
    if mnemonic in ("sltu", "sltiu"):
        return 1 if a < b else 0
    if mnemonic in ("sll", "slli"):
        sh = shamt if shamt is not None else b & 0x3F
        return (a << sh) & WORD_MASK
    if mnemonic in ("srl", "srli"):
        sh = shamt if shamt is not None else b & 0x3F
        return a >> sh
    if mnemonic in ("sra", "srai"):
        sh = shamt if shamt is not None else b & 0x3F
        return to_unsigned(_S64(a) >> sh)
    if mnemonic in ("addw", "addiw"):
        return to_unsigned(_S32((a + b) & 0xFFFF_FFFF))
    if mnemonic == "subw":
        return to_unsigned(_S32((a - b) & 0xFFFF_FFFF))
    if mnemonic in ("sllw", "slliw"):
        sh = shamt if shamt is not None else b & 0x1F
        return to_unsigned(_S32((a << sh) & 0xFFFF_FFFF))
    if mnemonic in ("srlw", "srliw"):
        sh = shamt if shamt is not None else b & 0x1F
        return to_unsigned(_S32((a & 0xFFFF_FFFF) >> sh))
    if mnemonic in ("sraw", "sraiw"):
        sh = shamt if shamt is not None else b & 0x1F
        return to_unsigned(_S32(to_unsigned(_S32(a) >> sh, 32)))
    raise AssertionError(f"not an ALU op: {mnemonic}")  # pragma: no cover


def _muldiv_op(mnemonic: str, a: int, b: int) -> int:
    """M-extension semantics, including the spec's div-by-zero/overflow rules."""
    sa, sb = _S64(a), _S64(b)
    if mnemonic == "mul":
        return (a * b) & WORD_MASK
    if mnemonic == "mulh":
        return to_unsigned((sa * sb) >> 64)
    if mnemonic == "mulhsu":
        return to_unsigned((sa * b) >> 64)
    if mnemonic == "mulhu":
        return (a * b) >> 64
    if mnemonic == "div":
        if sb == 0:
            return WORD_MASK  # quotient = -1
        if sa == -(1 << 63) and sb == -1:
            return a  # overflow: quotient = dividend
        return to_unsigned(int(abs(sa) // abs(sb)) * (1 if (sa < 0) == (sb < 0) else -1))
    if mnemonic == "divu":
        return WORD_MASK if b == 0 else a // b
    if mnemonic == "rem":
        if sb == 0:
            return a
        if sa == -(1 << 63) and sb == -1:
            return 0
        return to_unsigned(abs(sa) % abs(sb) * (1 if sa >= 0 else -1))
    if mnemonic == "remu":
        return a if b == 0 else a % b
    # 32-bit word variants: compute in 32 bits, sign-extend the result.
    wa, wb = a & 0xFFFF_FFFF, b & 0xFFFF_FFFF
    swa, swb = _S32(wa), _S32(wb)
    if mnemonic == "mulw":
        return to_unsigned(_S32((wa * wb) & 0xFFFF_FFFF))
    if mnemonic == "divw":
        if swb == 0:
            return WORD_MASK
        if swa == -(1 << 31) and swb == -1:
            return to_unsigned(_S32(wa))
        q = int(abs(swa) // abs(swb)) * (1 if (swa < 0) == (swb < 0) else -1)
        return to_unsigned(_S32(to_unsigned(q, 32)))
    if mnemonic == "divuw":
        return WORD_MASK if wb == 0 else to_unsigned(_S32(wa // wb))
    if mnemonic == "remw":
        if swb == 0:
            return to_unsigned(_S32(wa))
        if swa == -(1 << 31) and swb == -1:
            return 0
        r = abs(swa) % abs(swb) * (1 if swa >= 0 else -1)
        return to_unsigned(_S32(to_unsigned(r, 32)))
    if mnemonic == "remuw":
        return to_unsigned(_S32(wa)) if wb == 0 else to_unsigned(_S32(wa % wb))
    raise AssertionError(f"not a muldiv op: {mnemonic}")  # pragma: no cover


_AMO_FN = {
    "amoswap": lambda old, src, _s64: src,
    "amoadd": lambda old, src, w: (old + src) & ((1 << (8 * w)) - 1),
    "amoxor": lambda old, src, _w: old ^ src,
    "amoand": lambda old, src, _w: old & src,
    "amoor": lambda old, src, _w: old | src,
    "amomin": lambda old, src, w: old if sign_extend(old, 8 * w) <= sign_extend(src, 8 * w) else src,
    "amomax": lambda old, src, w: old if sign_extend(old, 8 * w) >= sign_extend(src, 8 * w) else src,
    "amominu": lambda old, src, _w: min(old, src),
    "amomaxu": lambda old, src, _w: max(old, src),
}

_BRANCH_TAKEN = {
    "beq": lambda a, b: a == b,
    "bne": lambda a, b: a != b,
    "blt": lambda a, b: _S64(a) < _S64(b),
    "bge": lambda a, b: _S64(a) >= _S64(b),
    "bltu": lambda a, b: a < b,
    "bgeu": lambda a, b: a >= b,
}


def execute(
    state: ArchState,
    memory: SparseMemory,
    instr: DecodedInstr,
    pc: int,
) -> ExecResult:
    """Execute one instruction; mutates ``state``/``memory`` and reports effects.

    The caller (golden simulator or SoC model) is responsible for fetch,
    trap entry and tracing; this function only performs the instruction's own
    architectural semantics.
    """
    spec_ = instr.spec
    m = spec_.mnemonic
    seq_pc = (pc + 4) & WORD_MASK

    # --- control flow -------------------------------------------------------
    if m == "jal":
        target = (pc + instr.imm) & WORD_MASK
        if target % 4:
            raise Trap(EXC_INSTR_MISALIGNED, tval=target)
        state.write_reg(instr.rd, seq_pc)
        return ExecResult(target, rd=instr.rd, rd_value=seq_pc)
    if m == "jalr":
        target = (state.read_reg(instr.rs1) + instr.imm) & WORD_MASK & ~1
        if target % 4:
            raise Trap(EXC_INSTR_MISALIGNED, tval=target)
        state.write_reg(instr.rd, seq_pc)
        return ExecResult(target, rd=instr.rd, rd_value=seq_pc)
    if spec_.is_branch:
        taken = _BRANCH_TAKEN[m](state.read_reg(instr.rs1), state.read_reg(instr.rs2))
        if not taken:
            return ExecResult(seq_pc)
        target = (pc + instr.imm) & WORD_MASK
        if target % 4:
            raise Trap(EXC_INSTR_MISALIGNED, tval=target)
        return ExecResult(target)

    # --- loads / stores -------------------------------------------------------
    if spec_.is_load:
        width, signed = _LOAD_WIDTH[m]
        addr = (state.read_reg(instr.rs1) + instr.imm) & WORD_MASK
        _check_data_addr(memory, addr, width, is_store=False)
        raw = memory.load(addr, width)
        value = to_unsigned(sign_extend(raw, 8 * width)) if signed else raw
        state.write_reg(instr.rd, value)
        return ExecResult(
            seq_pc,
            rd=instr.rd,
            rd_value=state.read_reg(instr.rd) if instr.rd else value,
            mem=MemOp(addr, width, is_store=False, data=value),
        )
    if spec_.is_store:
        width = _STORE_WIDTH[m]
        addr = (state.read_reg(instr.rs1) + instr.imm) & WORD_MASK
        _check_data_addr(memory, addr, width, is_store=True)
        value = state.read_reg(instr.rs2) & ((1 << (8 * width)) - 1)
        memory.store(addr, value, width)
        if state.reservation is not None and addr == state.reservation:
            state.reservation = None  # stores break a matching reservation
        return ExecResult(seq_pc, mem=MemOp(addr, width, is_store=True, data=value))

    # --- atomics ---------------------------------------------------------------
    if spec_.is_amo:
        width = 4 if m.endswith(".w") else 8
        addr = state.read_reg(instr.rs1)
        if m.startswith("lr."):
            _check_data_addr(memory, addr, width, is_store=False)
            raw = memory.load(addr, width)
            value = to_unsigned(sign_extend(raw, 8 * width))
            state.write_reg(instr.rd, value)
            state.reservation = addr
            return ExecResult(
                seq_pc, rd=instr.rd, rd_value=value,
                mem=MemOp(addr, width, is_store=False, data=value),
            )
        if m.startswith("sc."):
            _check_data_addr(memory, addr, width, is_store=True)
            if state.reservation == addr:
                src = state.read_reg(instr.rs2) & ((1 << (8 * width)) - 1)
                memory.store(addr, src, width)
                state.reservation = None
                state.write_reg(instr.rd, 0)
                return ExecResult(
                    seq_pc, rd=instr.rd, rd_value=0,
                    mem=MemOp(addr, width, is_store=True, data=src),
                )
            state.reservation = None
            state.write_reg(instr.rd, 1)
            return ExecResult(seq_pc, rd=instr.rd, rd_value=1)
        # read-modify-write AMOs
        _check_data_addr(memory, addr, width, is_store=True)
        old_raw = memory.load(addr, width)
        src = state.read_reg(instr.rs2) & ((1 << (8 * width)) - 1)
        fn = _AMO_FN[m.split(".")[0]]
        new_raw = fn(old_raw, src, width) & ((1 << (8 * width)) - 1)
        memory.store(addr, new_raw, width)
        old_value = to_unsigned(sign_extend(old_raw, 8 * width))
        state.write_reg(instr.rd, old_value)
        return ExecResult(
            seq_pc, rd=instr.rd, rd_value=old_value,
            mem=MemOp(addr, width, is_store=True, data=new_raw),
        )

    # --- CSR ----------------------------------------------------------------
    if spec_.is_csr:
        csr_addr = instr.csr
        write_val: int | None
        if m in ("csrrw", "csrrs", "csrrc"):
            operand = state.read_reg(instr.rs1)
            skip_write = m != "csrrw" and instr.rs1 == 0
        else:
            operand = instr.zimm
            skip_write = m != "csrrwi" and instr.zimm == 0
        old = state.csr.read(csr_addr, state.priv, instr.raw)
        if skip_write:
            write_val = None
        elif m in ("csrrw", "csrrwi"):
            write_val = operand
        elif m in ("csrrs", "csrrsi"):
            write_val = old | operand
        else:  # csrrc / csrrci
            write_val = old & ~operand
        csr_write = None
        if write_val is not None:
            state.csr.write(csr_addr, write_val, state.priv, instr.raw)
            csr_write = (csr_addr, state.csr.raw_read(csr_addr))
        state.write_reg(instr.rd, old)
        return ExecResult(
            seq_pc, rd=instr.rd, rd_value=old, csr_write=csr_write
        )

    # --- system / fence -------------------------------------------------------
    if m == "ecall":
        raise Trap(EXC_ECALL_FROM_M if state.priv == PRV_M else EXC_ECALL_FROM_U)
    if m == "ebreak":
        raise Trap(EXC_BREAKPOINT, tval=pc)
    if m == "mret":
        if state.priv != PRV_M:
            raise Trap(EXC_ILLEGAL_INSTRUCTION, tval=instr.raw)
        new_priv, return_pc = state.csr.leave_trap()
        state.priv = new_priv
        return ExecResult(return_pc & WORD_MASK)
    if m == "wfi":
        return ExecResult(seq_pc, halt=True)
    if m in ("fence", "fence.i"):
        return ExecResult(seq_pc)

    # --- plain ALU -------------------------------------------------------------
    a = state.read_reg(instr.rs1)
    if spec_.is_muldiv:
        value = _muldiv_op(m, a, state.read_reg(instr.rs2))
    elif m == "lui":
        value = to_unsigned(instr.imm)
    elif m == "auipc":
        value = (pc + instr.imm) & WORD_MASK
    elif spec_.fmt in ("I_SHIFT64", "I_SHIFT32"):
        value = _alu_op(m, a, 0, shamt=instr.shamt)
    elif spec_.fmt == "I":
        value = _alu_op(m, a, to_unsigned(instr.imm))
    else:  # R-format ALU
        value = _alu_op(m, a, state.read_reg(instr.rs2))
    state.write_reg(instr.rd, value)
    return ExecResult(seq_pc, rd=instr.rd, rd_value=value if instr.rd else 0)
