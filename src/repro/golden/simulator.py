"""The golden-model ISS: program loading, trap handling, commit tracing.

Mirrors how Spike is used in the paper's fuzzing loop: load a test program,
run it to completion, emit a commit log.  A small machine-code trap handler
(the same image the SoC harness installs) skips over faulting instructions so
that a single bad instruction does not end the test — the behaviour hardware
fuzzers rely on to keep exploring past exceptions.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.golden.exceptions import Trap
from repro.golden.executor import execute
from repro.golden.memory import SparseMemory
from repro.golden.state import ArchState
from repro.golden.trace import CommitTrace, TraceEntry
from repro.isa.decoder import decode
from repro.isa.encoder import encode
from repro.isa.spec import (
    CSR_MEPC,
    CSR_MSCRATCH,
    DRAM_BASE,
    EXC_ILLEGAL_INSTRUCTION,
    PRV_M,
    TRAP_VECTOR,
    WORD_MASK,
)


@lru_cache(maxsize=1)
def _handler_image_cached() -> tuple[int, ...]:
    """Encoded trap-handler stub — fixed, so encoded once per process."""
    return (
        encode("csrrw", rd=31, csr=CSR_MSCRATCH, rs1=31),
        encode("csrrs", rd=31, csr=CSR_MEPC, rs1=0),
        encode("addi", rd=31, rs1=31, imm=4),
        encode("csrrw", rd=0, csr=CSR_MEPC, rs1=31),
        encode("csrrw", rd=31, csr=CSR_MSCRATCH, rs1=31),
        encode("mret"),
    )


def trap_handler_image() -> list[int]:
    """The trap-handler stub installed at ``TRAP_VECTOR``.

    Advances ``mepc`` past the faulting instruction and returns, preserving
    all registers via ``mscratch``:

    .. code-block:: asm

        csrrw x31, mscratch, x31   # save x31
        csrrs x31, mepc, x0        # x31 = mepc
        addi  x31, x31, 4
        csrrw x0,  mepc, x31       # mepc += 4
        csrrw x31, mscratch, x31   # restore x31
        mret
    """
    return list(_handler_image_cached())


def step_instruction(
    state: ArchState,
    memory: SparseMemory,
    config: "SimConfig",
    handler_lo: int,
    handler_hi: int,
    traps_taken: int,
) -> tuple[TraceEntry | None, int, str | None]:
    """One iteration of the golden run loop: execute a single instruction or
    take a single trap, advancing ``state``/``memory`` in place.

    Returns ``(entry, traps_taken, stop_reason)`` where ``entry`` is the
    commit-trace entry to record (``None`` for untraced trap-handler steps),
    ``traps_taken`` is the updated trap count, and ``stop_reason`` is
    ``"max_traps"``/``"wfi"`` when the run must stop after this step (the
    caller owns the ``max_steps`` budget).

    This is the single source of truth for per-instruction semantics: the
    scalar :class:`GoldenSimulator` loop and the batched engine's lane peel
    (``repro.golden.batch``) both call it, so the hard cases (traps, CSRs,
    atomics, misaligned access) have exactly one implementation.
    """
    pc = state.pc
    in_handler = handler_lo <= pc < handler_hi

    word = 0
    try:
        word = memory.fetch(pc)
        instr = decode(word)
        if instr is None:
            raise Trap(EXC_ILLEGAL_INSTRUCTION, tval=word)
        result = execute(state, memory, instr, pc)
    except Trap as trap:
        traps_taken += 1
        entry = TraceEntry(
            pc=pc,
            instr=word,
            priv=state.priv,
            trap_cause=trap.cause,
            trap_tval=trap.tval,
        )
        state.reservation = None
        handler_pc = state.csr.enter_trap(trap.cause, pc, trap.tval, state.priv)
        state.priv = PRV_M
        state.pc = handler_pc
        state.csr.tick()
        if traps_taken >= config.max_traps:
            return entry, traps_taken, "max_traps"
        return entry, traps_taken, None

    entry = None
    if not in_handler or config.trace_handler:
        rd = result.rd if result.rd not in (None, 0) else None
        entry = TraceEntry(
            pc=pc,
            instr=word,
            priv=state.priv,
            rd=rd,
            rd_value=result.rd_value if rd is not None else 0,
            mem=result.mem,
            csr_write=result.csr_write,
        )
    state.pc = result.next_pc & WORD_MASK
    state.csr.tick()
    if result.halt:
        return entry, traps_taken, "wfi"
    return entry, traps_taken, None


@dataclass
class SimConfig:
    """Execution limits and trace policy for one simulation run."""

    max_steps: int = 4096
    #: Include instructions executed inside the trap handler in the trace.
    trace_handler: bool = False
    #: Abort if this many traps occur (runaway trap loops — e.g. a wild jump
    #: into unmapped space faults on every subsequent fetch).
    max_traps: int = 64


class GoldenSimulator:
    """Single-hart RV64IMA_Zicsr ISS with commit tracing.

    >>> sim = GoldenSimulator()
    >>> trace = sim.run([0x00500513])   # addi a0, zero, 5
    >>> trace[0].rd_value
    5
    """

    def __init__(self, config: SimConfig | None = None) -> None:
        self.config = config or SimConfig()

    def run(self, program: list[int], base: int = DRAM_BASE) -> CommitTrace:
        """Execute ``program`` (a list of 32-bit words) and return its trace."""
        memory = SparseMemory()
        memory.load_program(program, base)
        memory.load_program(trap_handler_image(), TRAP_VECTOR)
        state = ArchState(pc=base)
        return self._run_loop(state, memory)

    def _run_loop(self, state: ArchState, memory: SparseMemory) -> CommitTrace:
        trace = CommitTrace()
        handler_lo = TRAP_VECTOR
        handler_hi = TRAP_VECTOR + 4 * len(trap_handler_image())
        traps_taken = 0

        for _ in range(self.config.max_steps):
            entry, traps_taken, stop = step_instruction(
                state, memory, self.config, handler_lo, handler_hi, traps_taken
            )
            if entry is not None:
                trace.append(entry)
            if stop is not None:
                trace.stop_reason = stop
                break
        else:
            trace.stop_reason = "max_steps"
        return trace
