"""A minimal cycle-driven RTL simulation framework with condition coverage.

This package replaces Synopsys VCS in the paper's stack (see DESIGN.md §1).
It provides:

- :class:`~repro.rtl.coverage.ConditionCoverage` — declare-before-use
  condition cover points; each condition contributes a *true arm* and a
  *false arm*, matching VCS condition-coverage accounting.
- :class:`~repro.rtl.module.Module` — hierarchical design units whose
  ``cond()`` calls are auto-prefixed with the instance path.
- :class:`~repro.rtl.signal.Reg` — two-phase clocked state.
- :class:`~repro.rtl.simulator.ClockDomain` — drives ``tick()`` across the
  module tree and counts cycles.
- :class:`~repro.rtl.report.CoverageReport` — the per-test coverage report
  consumed by the Coverage Calculator (:mod:`repro.coverage`).
- :class:`~repro.rtl.bitset.Bitset` — the packed, set-compatible bitmap the
  whole coverage data path (recording, reports, merging, IPC) runs on.
"""

from repro.rtl.bitset import Bitset
from repro.rtl.coverage import ConditionCoverage
from repro.rtl.module import Module
from repro.rtl.report import CoverageReport
from repro.rtl.signal import Reg
from repro.rtl.simulator import ClockDomain

__all__ = ["Bitset", "ClockDomain", "ConditionCoverage", "CoverageReport",
           "Module", "Reg"]
