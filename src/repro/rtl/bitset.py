"""Packed bitsets over a fixed arm universe.

Condition coverage is a *fixed universe* of cover points known at
elaboration (``ConditionCoverage.freeze``), which is exactly the shape that
wants a packed bitmap instead of hash sets: membership is one bit, union is
a bitwise OR, counting is a popcount, and the whole set ships across a
process pool as ``total_arms / 8`` bytes instead of one pickled object per
arm index.

:class:`Bitset` is the immutable value type the coverage data path carries
(per-test reports, cumulative totals, feedback masks).  It is backed by a
single Python ``int`` — an arbitrary-precision bitmap whose bitwise ops,
popcount (``int.bit_count``) and (de)serialisation all run limb-at-a-time in
C.  For a few hundred arms this beats both ``numpy`` scalar indexing (per-op
dispatch overhead) and ``bytearray`` read-modify-write on the record path,
while still exposing the packed bytes (:meth:`to_bytes`, :meth:`words`) that
the vectorised batch consumers (``repro.coverage.calculator``) feed to
``numpy``.

The API is deliberately set-compatible — ``in``, ``len``, iteration,
equality against ``set``/``frozenset``, ``&``/``|``/``-`` (including
reflected forms so ``some_set - bitset`` works) — so existing consumers and
tests read unchanged.
"""

from __future__ import annotations

from typing import Iterable, Iterator


def mask_of(indices: Iterable[int]) -> int:
    """Pack an iterable of bit indices into an int bitmap."""
    bits = 0
    for index in indices:
        bits |= 1 << index
    return bits


class Bitset:
    """An immutable packed set of non-negative integers (see module doc).

    ``nbits`` records the universe size (for ``__invert__`` and byte-width
    decisions); equality and hashing depend only on the *members*, so bitsets
    of different declared widths with the same bits compare equal — matching
    ``set`` semantics.
    """

    __slots__ = ("_bits", "_nbits")

    def __init__(self, bits: int = 0, nbits: int = 0) -> None:
        if bits < 0:
            raise ValueError("Bitset bits must be a non-negative bitmap")
        self._bits = bits
        self._nbits = max(nbits, bits.bit_length())

    # -- constructors ----------------------------------------------------------

    @classmethod
    def from_iterable(cls, indices: Iterable[int], nbits: int = 0) -> "Bitset":
        """Build from arm indices (a set, list, generator, ...)."""
        if isinstance(indices, Bitset):
            return cls(indices._bits, max(nbits, indices._nbits))
        return cls(mask_of(indices), nbits)

    @classmethod
    def from_bytes(cls, data: bytes, nbits: int = 0) -> "Bitset":
        """Build from a little-endian packed byte string."""
        return cls(int.from_bytes(data, "little"), nbits)

    @classmethod
    def from_words(cls, words: Iterable[int], nbits: int = 0) -> "Bitset":
        """Build from 64-bit words in ascending order — the inverse of
        :meth:`words`, so vectorised producers (the batched engines'
        per-lane bitmap rows) collapse to a report without a python-level
        bit loop."""
        bits = 0
        shift = 0
        for word in words:
            bits |= int(word) << shift
            shift += 64
        return cls(bits, nbits)

    # -- packed views ----------------------------------------------------------

    def to_int(self) -> int:
        """The raw int bitmap (bit ``i`` set <=> ``i in self``)."""
        return self._bits

    def to_bytes(self, length: int | None = None) -> bytes:
        """Little-endian packed bytes, zero-padded to ``length`` if given."""
        if length is None:
            length = (self._nbits + 7) // 8
        return self._bits.to_bytes(length, "little")

    def words(self, n_words: int | None = None):
        """The bitmap as a ``numpy`` uint64 array (for vectorised consumers)."""
        import numpy as np

        if n_words is None:
            n_words = (self._nbits + 63) // 64
        return np.frombuffer(self.to_bytes(8 * n_words), dtype="<u8")

    @property
    def nbits(self) -> int:
        return self._nbits

    # -- set protocol ----------------------------------------------------------

    def __contains__(self, index: int) -> bool:
        return index >= 0 and (self._bits >> index) & 1 == 1

    def __iter__(self) -> Iterator[int]:
        bits = self._bits
        while bits:
            low = bits & -bits
            yield low.bit_length() - 1
            bits ^= low

    def __len__(self) -> int:
        return self._bits.bit_count()

    def __bool__(self) -> bool:
        return self._bits != 0

    def __eq__(self, other) -> bool:
        if isinstance(other, Bitset):
            return self._bits == other._bits
        if isinstance(other, (set, frozenset)):
            return self._bits == mask_of(other)
        return NotImplemented

    def __hash__(self) -> int:
        # Must match frozenset's hash for equal members (eq/hash contract:
        # a Bitset compares equal to the frozenset of its members, so mixed
        # containers need them in the same bucket).  Hashing is rare on the
        # coverage path; the O(n) member walk only happens when asked for.
        return hash(frozenset(self))

    def isdisjoint(self, other) -> bool:
        return self._bits & _as_mask(other) == 0

    def to_frozenset(self) -> frozenset[int]:
        return frozenset(self)

    # -- bitwise algebra (results keep the wider universe) ----------------------

    def __and__(self, other) -> "Bitset":
        return Bitset(self._bits & _as_mask(other), self._nbits)

    __rand__ = __and__

    def __or__(self, other) -> "Bitset":
        return Bitset(self._bits | _as_mask(other), self._nbits)

    __ror__ = __or__

    def __sub__(self, other) -> "Bitset":
        return Bitset(self._bits & ~_as_mask(other), self._nbits)

    def __rsub__(self, other) -> "Bitset":
        return Bitset(_as_mask(other) & ~self._bits, self._nbits)

    def __xor__(self, other) -> "Bitset":
        return Bitset(self._bits ^ _as_mask(other), self._nbits)

    __rxor__ = __xor__

    def __invert__(self) -> "Bitset":
        """Complement within the declared ``nbits`` universe."""
        return Bitset(~self._bits & ((1 << self._nbits) - 1), self._nbits)

    # -- pickling (the IPC payload of sharded execution) -------------------------

    def __reduce__(self):
        # A (bytes, nbits) pair: ~nbits/8 bytes on the wire, versus one
        # pickled int per member for the frozenset it replaces.
        return (Bitset.from_bytes, (self.to_bytes(), self._nbits))

    def __repr__(self) -> str:
        return f"Bitset({len(self)} of {self._nbits} bits)"


def _as_mask(other) -> int:
    """Coerce a Bitset / set / iterable-of-ints operand to an int bitmap."""
    if isinstance(other, Bitset):
        return other._bits
    if isinstance(other, int):
        raise TypeError(
            "raw ints are ambiguous here (bitmap or index?); wrap the "
            "operand in a Bitset or a set"
        )
    return mask_of(other)
