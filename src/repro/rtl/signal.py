"""Two-phase clocked state elements.

:class:`Reg` models a flip-flop/register: combinational logic assigns
``reg.next`` during the cycle; :meth:`Reg.commit` latches it at the clock
edge.  The :class:`~repro.rtl.simulator.ClockDomain` commits every register
it knows about after all modules have evaluated, giving race-free
cycle semantics without an event queue.
"""

from __future__ import annotations

from typing import Any


class Reg:
    """A clocked register holding an arbitrary Python value.

    >>> r = Reg(0)
    >>> r.next = 5
    >>> r.value
    0
    >>> r.commit()
    >>> r.value
    5
    """

    __slots__ = ("value", "next", "reset_value")

    def __init__(self, reset_value: Any = 0) -> None:
        self.reset_value = reset_value
        self.value = reset_value
        self.next = reset_value

    def commit(self) -> None:
        """Latch ``next`` into ``value`` (clock edge)."""
        self.value = self.next

    def reset(self) -> None:
        """Return to the reset value (both phases)."""
        self.value = self.reset_value
        self.next = self.reset_value

    def __repr__(self) -> str:
        return f"Reg(value={self.value!r}, next={self.next!r})"
