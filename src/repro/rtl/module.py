"""Hierarchical design modules with scoped condition coverage."""

from __future__ import annotations

from repro.rtl.coverage import ConditionCoverage
from repro.rtl.signal import Reg


class Module:
    """Base class for design units.

    A module is constructed with its instance ``path`` (e.g.
    ``"rocket.dcache"``) and the shared :class:`ConditionCoverage` database.
    Subclasses declare conditions during ``__init__`` with :meth:`condition`
    and record observations with :meth:`cond`; registers created with
    :meth:`reg` are committed automatically by the clock domain.
    """

    def __init__(self, path: str, cov: ConditionCoverage) -> None:
        self.path = path
        self.cov = cov
        self._handles: dict[str, int] = {}
        self._regs: list[Reg] = []
        self._children: list[Module] = []

    # -- elaboration -----------------------------------------------------------

    def condition(self, name: str) -> None:
        """Declare a condition local to this module (``<path>.<name>``)."""
        self._handles[name] = self.cov.declare(f"{self.path}.{name}")

    def conditions(self, *names: str) -> None:
        """Declare several conditions at once."""
        for name in names:
            self.condition(name)

    def reg(self, reset_value=0) -> Reg:
        """Create a clocked register owned by this module."""
        register = Reg(reset_value)
        self._regs.append(register)
        return register

    def child(self, module: "Module") -> "Module":
        """Register a sub-module so clocking and reset reach it."""
        self._children.append(module)
        return module

    # -- runtime -----------------------------------------------------------------

    def cond(self, name: str, value) -> bool:
        """Record one observation of a declared condition; returns bool(value)."""
        return self.cov.record(self._handles[name], bool(value))

    def arm_bit(self, name: str, value) -> int:
        """Bitmap contribution of observing ``name`` with ``value``.

        For building memoized group masks: OR the bits of a correlated
        condition group once, then retire the whole group per evaluation
        with ``self.cov.record_mask(mask)``.
        """
        return self.cov.arm_bit(self._handles[name], value)

    def record_keyed_group(self, cache: dict, key, builder, arg,
                           cap: int = 65536) -> None:
        """Record a condition group whose outcome is a pure function of
        ``key``, memoizing its packed mask in ``cache``.

        On a miss, ``builder(arg)`` computes the group's arm mask (via
        :meth:`arm_bit`); on a hit the whole group costs one dict probe and
        one bitmap OR.  ``cache`` is bounded: at ``cap`` entries it is
        cleared and rebuilt from the (small) hot working set, matching the
        decoder's bounded-LRU policy rather than growing for the lifetime
        of a campaign.
        """
        mask = cache.get(key)
        if mask is None:
            if len(cache) >= cap:
                cache.clear()
            mask = builder(arg)
            cache[key] = mask
        self.cov.record_mask(mask)

    def commit(self) -> None:
        """Clock edge: latch every register in this module and its children."""
        for register in self._regs:
            register.commit()
        for module in self._children:
            module.commit()

    def reset(self) -> None:
        """Reset every register in this module and its children."""
        for register in self._regs:
            register.reset()
        for module in self._children:
            module.reset()

    def iter_modules(self):
        """Yield this module and all descendants depth-first."""
        yield self
        for module in self._children:
            yield from module.iter_modules()
