"""Per-test coverage reports — the RTL simulator's output to the fuzzer.

A :class:`CoverageReport` is what "parsing the VCS coverage report" yields in
the paper's Coverage Calculator (§IV-B): the set of condition arms this test
hit, plus the design's static totals.  Reports are cheap, immutable value
objects; cumulative accounting lives in
:class:`repro.coverage.calculator.CoverageCalculator`.

Hits are carried as a packed :class:`~repro.rtl.bitset.Bitset` — snapshotting
a report off the coverage database is one int copy, merging is a bitwise OR
plus popcount, and the pickle payload shipped across the sharded executor's
process pool is ``total_arms / 8`` bytes instead of a per-arm pickled
frozenset.  The bitset keeps the old set API (membership, iteration,
``len``, equality with sets), so report consumers are source-compatible.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.rtl.bitset import Bitset
from repro.rtl.coverage import ConditionCoverage


@dataclass(frozen=True)
class CoverageReport:
    """Coverage outcome of simulating one test input."""

    #: Packed arm indices hit during this test (ConditionCoverage indexing).
    #: Accepts any iterable of arm indices at construction; normalised to a
    #: :class:`Bitset`.
    hits: Bitset
    #: Static number of condition arms in the design (2 per condition).
    total_arms: int
    #: Simulated clock cycles consumed by the test.
    cycles: int = 0

    def __post_init__(self) -> None:
        if not isinstance(self.hits, Bitset):
            object.__setattr__(
                self, "hits", Bitset.from_iterable(self.hits, self.total_arms)
            )

    @classmethod
    def from_coverage(cls, cov: ConditionCoverage, cycles: int = 0) -> "CoverageReport":
        """Snapshot the per-run hit bitmap of a coverage database."""
        return cls(hits=Bitset(cov.run_bits(), cov.total_arms),
                   total_arms=cov.total_arms, cycles=cycles)

    @property
    def standalone_count(self) -> int:
        """Number of cover points attained by this input alone (paper §IV-B)."""
        return len(self.hits)

    @property
    def standalone_fraction(self) -> float:
        if self.total_arms == 0:
            return 0.0
        return len(self.hits) / self.total_arms


class CumulativeCoverage:
    """Mutable union of report hits — the "total coverage" accumulator.

    Internally one int bitmap + a popcount kept incrementally, so
    :meth:`merge` is a bitwise OR and the coverage fraction never rescans
    the set.
    """

    def __init__(self, total_arms: int, hits=None) -> None:
        self.total_arms = total_arms
        self._bits = Bitset.from_iterable(hits or (), total_arms).to_int()
        self._count = self._bits.bit_count()

    def merge(self, report: CoverageReport) -> int:
        """Fold one report in; returns the number of newly-hit arms."""
        return self.merge_bits(report.hits.to_int())

    def merge_bits(self, bits: int) -> int:
        """Fold a raw packed bitmap in; returns the number of new arms."""
        new = bits & ~self._bits
        if not new:
            return 0
        self._bits |= new
        gained = new.bit_count()
        self._count += gained
        return gained

    @property
    def hits(self) -> Bitset:
        """The merged arm set (immutable packed view)."""
        return Bitset(self._bits, self.total_arms)

    def bits(self) -> int:
        """The raw packed bitmap (zero-copy view for the calculator)."""
        return self._bits

    def missing(self) -> Bitset:
        """The arms not yet covered (complement within the universe)."""
        return ~self.hits

    @property
    def count(self) -> int:
        return self._count

    @property
    def fraction(self) -> float:
        if self.total_arms == 0:
            return 0.0
        return self._count / self.total_arms

    @property
    def percent(self) -> float:
        return 100.0 * self.fraction
