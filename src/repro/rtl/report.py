"""Per-test coverage reports — the RTL simulator's output to the fuzzer.

A :class:`CoverageReport` is what "parsing the VCS coverage report" yields in
the paper's Coverage Calculator (§IV-B): the set of condition arms this test
hit, plus the design's static totals.  Reports are cheap, immutable value
objects; cumulative accounting lives in
:class:`repro.coverage.calculator.CoverageCalculator`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.rtl.coverage import ConditionCoverage


@dataclass(frozen=True)
class CoverageReport:
    """Coverage outcome of simulating one test input."""

    #: Arm indices hit during this test (see ConditionCoverage indexing).
    hits: frozenset[int]
    #: Static number of condition arms in the design (2 per condition).
    total_arms: int
    #: Simulated clock cycles consumed by the test.
    cycles: int = 0

    @classmethod
    def from_coverage(cls, cov: ConditionCoverage, cycles: int = 0) -> "CoverageReport":
        """Snapshot the per-run hit set of a coverage database."""
        return cls(hits=frozenset(cov.run_hits), total_arms=cov.total_arms,
                   cycles=cycles)

    @property
    def standalone_count(self) -> int:
        """Number of cover points attained by this input alone (paper §IV-B)."""
        return len(self.hits)

    @property
    def standalone_fraction(self) -> float:
        if self.total_arms == 0:
            return 0.0
        return len(self.hits) / self.total_arms


@dataclass
class CumulativeCoverage:
    """Mutable union of report hits — the "total coverage" accumulator."""

    total_arms: int
    hits: set[int] = field(default_factory=set)

    def merge(self, report: CoverageReport) -> int:
        """Fold one report in; returns the number of newly-hit arms."""
        new = report.hits - self.hits
        self.hits |= new
        return len(new)

    @property
    def count(self) -> int:
        return len(self.hits)

    @property
    def fraction(self) -> float:
        if self.total_arms == 0:
            return 0.0
        return len(self.hits) / self.total_arms

    @property
    def percent(self) -> float:
        return 100.0 * self.fraction
