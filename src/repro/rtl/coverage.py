"""Condition-coverage instrumentation.

VCS condition coverage counts, for every boolean condition in the design,
whether the condition has been observed *true* and observed *false* — two
cover points ("arms") per condition.  :class:`ConditionCoverage` reproduces
that model with a declare-before-use discipline: the universe of cover points
is a static property of the elaborated design, never of the stimulus, so
percentages are comparable across runs (and fuzzers).

Conditions are declared once (at module construction = "elaboration") and
recorded by integer handle on the hot path.

Recording is bitset-based: the per-run hit state is one packed int bitmap
(bit ``arm`` set <=> arm observed), kept alongside a per-arm bit table that
is filled in during elaboration and sealed at :meth:`freeze`.  A scalar
:meth:`record` is a single table lookup + OR; correlated condition groups
whose outcomes are a pure function of one key (the decode conditions of an
instruction word, the cause comparators of a trap, an idle interrupt poll)
should be folded with :meth:`record_mask` — one OR retires the whole group,
which is where the engine's throughput win over per-arm ``set.add`` comes
from (see ``benchmarks/test_perf_coverage.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.rtl.bitset import Bitset


@dataclass(frozen=True)
class ConditionInfo:
    """Metadata for one declared condition."""

    index: int
    name: str


class ConditionCoverage:
    """The coverage database for one elaborated design.

    Arms are indexed ``2*idx`` (false arm) and ``2*idx + 1`` (true arm).
    The packed per-run bitmap accumulates the arms observed since the last
    :meth:`begin_run`; :attr:`run_hits` exposes it as an immutable
    set-compatible :class:`~repro.rtl.bitset.Bitset`.
    """

    def __init__(self) -> None:
        self._by_name: dict[str, ConditionInfo] = {}
        self._names: list[str] = []
        self._frozen = False
        #: Packed per-run hit bitmap (bit ``arm`` <=> arm observed this run).
        self._run_bits = 0
        #: Per-arm bit masks (``_arm_bits[arm] == 1 << arm``), grown at
        #: declare time so the record path never constructs shift results.
        self._arm_bits: list[int] = []

    # -- elaboration ---------------------------------------------------------

    def declare(self, name: str) -> int:
        """Register a condition; returns the handle used by :meth:`record`."""
        if self._frozen:
            raise RuntimeError(
                f"cannot declare {name!r}: design already elaborated (frozen)"
            )
        if name in self._by_name:
            raise ValueError(f"condition {name!r} declared twice")
        info = ConditionInfo(index=len(self._names), name=name)
        self._by_name[name] = info
        self._names.append(name)
        arm = 2 * info.index
        self._arm_bits.append(1 << arm)
        self._arm_bits.append(1 << (arm + 1))
        return info.index

    def freeze(self) -> None:
        """End elaboration: the arm universe (and bit table) is now fixed."""
        self._frozen = True

    # -- recording (hot path) --------------------------------------------------

    def record(self, handle: int, value) -> bool:
        """Record one observation of a condition; returns ``bool(value)`` so
        the call can wrap the condition in-line: ``if cov.record(h, a == b):``"""
        value = bool(value)
        self._run_bits |= self._arm_bits[2 * handle + value]
        return value

    def record_mask(self, mask: int) -> None:
        """Fold a precomputed group of arm observations in one OR.

        ``mask`` is an int bitmap of arm indices (build it with
        :meth:`arm_bit` /
        :meth:`~repro.rtl.module.Module.arm_bit` at group-memoization time).
        This is the vectorised record path: a whole correlated condition
        group costs one call instead of one per arm.
        """
        self._run_bits |= mask

    def arm_bit(self, handle: int, value) -> int:
        """The bitmap contribution of one observation (for mask building)."""
        return self._arm_bits[2 * handle + (1 if value else 0)]

    # -- per-test bookkeeping ----------------------------------------------------

    def begin_run(self) -> None:
        """Clear the per-test hit bitmap (total counts live in the calculator)."""
        self._run_bits = 0

    @property
    def run_hits(self) -> Bitset:
        """The arms observed since :meth:`begin_run`, as an immutable bitset."""
        return Bitset(self._run_bits, self.total_arms)

    def run_bits(self) -> int:
        """The raw packed per-run bitmap (zero-copy view for snapshots)."""
        return self._run_bits

    # -- introspection -------------------------------------------------------------

    @property
    def num_conditions(self) -> int:
        return len(self._names)

    @property
    def total_arms(self) -> int:
        return 2 * len(self._names)

    def arm_name(self, arm: int) -> str:
        """Human-readable name of one arm, e.g. ``core.dcache.hit:T``."""
        return f"{self._names[arm // 2]}:{'T' if arm % 2 else 'F'}"

    def arm_index(self, arm_name: str) -> int:
        """Inverse of :meth:`arm_name`: ``core.dcache.hit:T`` -> arm index."""
        name, _, polarity = arm_name.rpartition(":")
        if polarity not in ("T", "F") or name not in self._by_name:
            raise KeyError(f"not a declared arm: {arm_name!r}")
        return 2 * self._by_name[name].index + (1 if polarity == "T" else 0)

    def names(self) -> tuple[str, ...]:
        return tuple(self._names)
