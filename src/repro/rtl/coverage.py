"""Condition-coverage instrumentation.

VCS condition coverage counts, for every boolean condition in the design,
whether the condition has been observed *true* and observed *false* — two
cover points ("arms") per condition.  :class:`ConditionCoverage` reproduces
that model with a declare-before-use discipline: the universe of cover points
is a static property of the elaborated design, never of the stimulus, so
percentages are comparable across runs (and fuzzers).

Conditions are declared once (at module construction = "elaboration") and
recorded by integer handle on the hot path.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ConditionInfo:
    """Metadata for one declared condition."""

    index: int
    name: str


class ConditionCoverage:
    """The coverage database for one elaborated design.

    Arms are indexed ``2*idx`` (false arm) and ``2*idx + 1`` (true arm).
    ``run_hits`` accumulates the arms observed since the last
    :meth:`begin_run`, which is what the per-test report exposes.
    """

    def __init__(self) -> None:
        self._by_name: dict[str, ConditionInfo] = {}
        self._names: list[str] = []
        self._frozen = False
        self.run_hits: set[int] = set()

    # -- elaboration ---------------------------------------------------------

    def declare(self, name: str) -> int:
        """Register a condition; returns the handle used by :meth:`record`."""
        if self._frozen:
            raise RuntimeError(
                f"cannot declare {name!r}: design already elaborated (frozen)"
            )
        if name in self._by_name:
            raise ValueError(f"condition {name!r} declared twice")
        info = ConditionInfo(index=len(self._names), name=name)
        self._by_name[name] = info
        self._names.append(name)
        return info.index

    def freeze(self) -> None:
        """End elaboration: no further conditions may be declared."""
        self._frozen = True

    # -- recording (hot path) --------------------------------------------------

    def record(self, handle: int, value) -> bool:
        """Record one observation of a condition; returns ``bool(value)`` so
        the call can wrap the condition in-line: ``if cov.record(h, a == b):``"""
        value = bool(value)
        self.run_hits.add(2 * handle + (1 if value else 0))
        return value

    # -- per-test bookkeeping ----------------------------------------------------

    def begin_run(self) -> None:
        """Clear the per-test hit set (total counts live in the calculator)."""
        self.run_hits = set()

    # -- introspection -------------------------------------------------------------

    @property
    def num_conditions(self) -> int:
        return len(self._names)

    @property
    def total_arms(self) -> int:
        return 2 * len(self._names)

    def arm_name(self, arm: int) -> str:
        """Human-readable name of one arm, e.g. ``core.dcache.hit:T``."""
        return f"{self._names[arm // 2]}:{'T' if arm % 2 else 'F'}"

    def names(self) -> tuple[str, ...]:
        return tuple(self._names)
