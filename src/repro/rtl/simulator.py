"""Clock domain: drives evaluation and register commit across a design."""

from __future__ import annotations

from repro.rtl.module import Module


class ClockDomain:
    """Cycle driver for a module tree.

    Each :meth:`tick` calls the design's ``evaluate()`` (combinational +
    next-state logic) once and then commits every register, emulating a
    single-clock synchronous design.  ``cycles`` is the elapsed cycle count
    since the last :meth:`restart`, which the SoC harness reports as the
    test's simulated duration.
    """

    def __init__(self, top: Module) -> None:
        self.top = top
        self.cycles = 0

    def restart(self) -> None:
        """Reset the design and the cycle counter (new test)."""
        self.top.reset()
        self.cycles = 0

    def tick(self) -> None:
        """Advance one clock cycle."""
        evaluate = getattr(self.top, "evaluate", None)
        if evaluate is None:
            raise TypeError(
                f"top module {type(self.top).__name__} must define evaluate()"
            )
        evaluate()
        self.top.commit()
        self.cycles += 1
