"""A TheHuzz-style coverage-guided mutation fuzzer (paper [9], §II-A1).

Seeds are random streams of valid instructions; each round, the best inputs
from the preceding round (by coverage score) are mutated with the classic
operator set to form the next batch.  The engine knows *instructions* are
valid but has "no well-defined feedback to determine a meaningful sequence
of instructions" — the paper's core criticism, which is what the LLM
generator adds.
"""

from __future__ import annotations

import random

from repro.baselines.mutations import MutationEngine
from repro.fuzzing.input import TestInput


class TheHuzzGenerator:
    """Coverage-guided mutation generator with an elitist corpus.

    Parameters
    ----------
    body_instructions:
        Instructions per test (the paper holds this equal across fuzzers).
    corpus_size:
        Elite pool size; inputs enter it when their coverage score ranks.
    seed_fraction:
        Fraction of each batch drawn fresh from the random seed generator
        (keeps exploration alive, as TheHuzz's scheduler does).
    """

    def __init__(
        self,
        body_instructions: int = 24,
        corpus_size: int = 64,
        seed_fraction: float = 0.2,
        mutations_per_input: int = 1,
        splice_probability: float = 0.5,
        seed: int = 0,
    ) -> None:
        self.body_instructions = body_instructions
        self.corpus_size = corpus_size
        self.seed_fraction = seed_fraction
        self.mutations_per_input = mutations_per_input
        self.splice_probability = splice_probability
        self.engine = MutationEngine(seed=seed)
        self.rng = random.Random(seed + 1)
        #: Interesting-input pool, AFL-style: inputs that found new coverage.
        self.pool: list[list[int]] = []
        self._next_parent = 0
        #: Packed bitmap of arms this fuzzer's feedback channel has seen
        #: (admission novelty).
        self._seen = 0

    # -- feedback channel (subclasses narrow it; see DifuzzRTL) -----------------

    def _visible_bits(self, report) -> int:
        """Packed bitmap of the cover points this feedback channel observes."""
        return report.hits.to_int()

    # -- generation -----------------------------------------------------------

    def _make_child(self) -> list[int]:
        parent = self.pool[self._next_parent % len(self.pool)]
        self._next_parent += 1
        if len(self.pool) >= 2 and self.rng.random() < self.splice_probability:
            # Splice: combine two interesting inputs, chaining the structure
            # each one carries (AFL havoc's crossover stage).
            other = self.pool[self.rng.randrange(len(self.pool))]
            cut = self.rng.randrange(1, self.body_instructions)
            parent = (parent[:cut] + other[cut:])[: self.body_instructions + 8]
        return self.engine.mutate(parent, self.mutations_per_input)

    def generate_batch(self, n: int) -> list[TestInput]:
        batch: list[TestInput] = []
        n_seeds = max(1, int(n * self.seed_fraction)) if self.pool else n
        for _ in range(n_seeds):
            batch.append(TestInput(
                self.engine.random_body(self.body_instructions), source="seed"
            ))
        while len(batch) < n:
            batch.append(TestInput(self._make_child(), source="mutation"))
        return batch

    # -- feedback ---------------------------------------------------------------

    def observe(self, inputs, coverages, scores, reports=None) -> None:
        """Admit inputs whose *visible* coverage contains unseen points."""
        if reports is None:
            for test, coverage in zip(inputs, coverages):
                if coverage.incremental > 0:
                    self.pool.append(list(test.words))
        else:
            for test, report in zip(inputs, reports):
                new = self._visible_bits(report) & ~self._seen
                if new:
                    self._seen |= new
                    self.pool.append(list(test.words))
        # Keep the most recent discoveries when over budget (older entries
        # have been mutated many times already).
        if len(self.pool) > self.corpus_size:
            del self.pool[: len(self.pool) - self.corpus_size]
