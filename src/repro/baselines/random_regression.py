"""Random regression: the feedback-free baseline (paper §I).

Generates independent random valid-instruction streams every batch and
ignores all feedback — the traditional verification technique the paper
says fuzzers outperform.
"""

from __future__ import annotations

from repro.baselines.mutations import MutationEngine
from repro.fuzzing.input import TestInput


class RandomRegressionGenerator:
    """Stateless random test generation."""

    def __init__(self, body_instructions: int = 24, seed: int = 0) -> None:
        self.body_instructions = body_instructions
        self.engine = MutationEngine(seed=seed)

    def generate_batch(self, n: int) -> list[TestInput]:
        return [
            TestInput(self.engine.random_body(self.body_instructions),
                      source="seed")
            for _ in range(n)
        ]
