"""Baseline fuzzers the paper compares against (§II-A1, §V-A).

All baselines plug into the same :class:`~repro.fuzzing.chatfuzz.FuzzLoop`
as ChatFuzz — only the input generator differs:

- :class:`~repro.baselines.thehuzz.TheHuzzGenerator` — random valid-
  instruction seeds + coverage-guided mutation (bit/byte flip, swap, delete,
  clone), modelled on TheHuzz [9].
- :class:`~repro.baselines.difuzzrtl.DifuzzRTLGenerator` — same engine but
  guided only by control-register coverage, DifuzzRTL's weaker feedback [8].
- :class:`~repro.baselines.random_regression.RandomRegressionGenerator` —
  feedback-free random instruction streams.
"""

from repro.baselines.difuzzrtl import DifuzzRTLGenerator
from repro.baselines.mutations import MutationEngine
from repro.baselines.random_regression import RandomRegressionGenerator
from repro.baselines.thehuzz import TheHuzzGenerator

__all__ = [
    "DifuzzRTLGenerator",
    "MutationEngine",
    "RandomRegressionGenerator",
    "TheHuzzGenerator",
]
