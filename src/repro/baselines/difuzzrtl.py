"""A DifuzzRTL-style fuzzer (paper [8]): control-register coverage feedback.

DifuzzRTL guides mutation with *control-register* coverage — a coarser
signal than condition coverage.  We model that by scoring inputs only on the
subset of condition arms belonging to control-ish units (CSR/trap logic,
frontend control), discarding everything datapath/cache-related.  With less
of the design visible to the feedback, corpus selection is less informed and
coverage grows more slowly — the paper quotes TheHuzz as ~3.33x faster.
"""

from __future__ import annotations

from repro.baselines.thehuzz import TheHuzzGenerator
from repro.rtl.bitset import mask_of


#: Condition-name prefixes that count as "control-register" coverage.
CONTROL_PREFIXES = ("rocket.csr", "rocket.frontend", "boom.csr",
                    "boom.frontend")


class DifuzzRTLGenerator(TheHuzzGenerator):
    """TheHuzz's engine with DifuzzRTL's coarser feedback.

    The loop still measures and reports full condition coverage (that is the
    evaluation metric); only the *selection* signal is restricted, via
    :meth:`observe` re-scoring inputs on the control subset.
    """

    def __init__(self, control_arm_indices: frozenset[int] | None = None,
                 **kwargs) -> None:
        super().__init__(**kwargs)
        self.control_arm_indices = control_arm_indices or frozenset()
        #: The control subset as a packed bitmap — the feedback projection
        #: becomes one AND against each report's packed hits.
        self._control_mask = mask_of(self.control_arm_indices)

    @classmethod
    def for_core(cls, core, **kwargs) -> "DifuzzRTLGenerator":
        """Build with the control-arm subset extracted from a core's coverage DB."""
        arms = set()
        for handle, name in enumerate(core.cov.names()):
            if name.startswith(CONTROL_PREFIXES):
                arms.add(2 * handle)
                arms.add(2 * handle + 1)
        return cls(control_arm_indices=frozenset(arms), **kwargs)

    def _visible_bits(self, report) -> int:
        """Only control-register cover points are visible to the feedback:
        the coarser projection means fewer inputs look interesting, so the
        pool accumulates less of the design's structure — DifuzzRTL's
        handicap relative to TheHuzz."""
        if not self._control_mask:
            return report.hits.to_int()
        return report.hits.to_int() & self._control_mask
