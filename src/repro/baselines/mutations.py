"""Mutation operators for the baseline fuzzers (paper §II-A).

"During each fuzzing round, the fuzzer manipulates the best test inputs from
the preceding round using mutation operations like bit/byte flipping,
swapping, deleting, or cloning" — this module implements exactly that set,
plus the random *valid* instruction generator the seed stage uses (TheHuzz's
"seed generator and mutation engine … can identify valid instructions from
the ISA").
"""

from __future__ import annotations

import random

from repro.isa.encoder import encode
from repro.isa.instructions import (
    FMT_AMO,
    FMT_B,
    FMT_CSR,
    FMT_CSR_IMM,
    FMT_I,
    FMT_I_SHIFT32,
    FMT_I_SHIFT64,
    FMT_J,
    FMT_LR,
    FMT_S,
    FMT_U,
    INSTRUCTIONS,
)
from repro.isa.spec import CSR_NAMES


class MutationEngine:
    """Random-valid-instruction generation and AFL-style word mutations."""

    #: Mnemonics eligible for random seeding (every implemented instruction).
    MNEMONICS = tuple(INSTRUCTIONS)
    _CSRS = tuple(CSR_NAMES.values())

    def __init__(self, seed: int = 0) -> None:
        self.rng = random.Random(seed)

    # -- random valid instructions ------------------------------------------------

    def random_instruction(self) -> int:
        """One uniformly random *valid* instruction with random operands."""
        mnemonic = self.rng.choice(self.MNEMONICS)
        spec = INSTRUCTIONS[mnemonic]
        rng = self.rng
        kwargs: dict[str, int] = {}
        fmt = spec.fmt
        if fmt in (FMT_I, FMT_S):
            kwargs["imm"] = rng.randrange(-2048, 2048)
        elif fmt == FMT_B:
            kwargs["imm"] = 2 * rng.randrange(-2048, 2048)
        elif fmt == FMT_U:
            kwargs["imm"] = rng.randrange(-(1 << 19), 1 << 19)
        elif fmt == FMT_J:
            kwargs["imm"] = 2 * rng.randrange(-(1 << 19), 1 << 19)
        elif fmt in (FMT_I_SHIFT64,):
            kwargs["shamt"] = rng.randrange(64)
        elif fmt in (FMT_I_SHIFT32,):
            kwargs["shamt"] = rng.randrange(32)
        elif fmt in (FMT_CSR, FMT_CSR_IMM):
            kwargs["csr"] = rng.choice(self._CSRS)
            if fmt == FMT_CSR_IMM:
                kwargs["zimm"] = rng.randrange(32)
        if fmt in (FMT_AMO, FMT_LR):
            kwargs["aq"] = rng.randrange(2)
            kwargs["rl"] = rng.randrange(2)
        for reg_field in ("rd", "rs1", "rs2"):
            if reg_field in spec.operands:
                kwargs[reg_field] = rng.randrange(32)
        return encode(mnemonic, **kwargs)

    def random_body(self, n_instructions: int) -> list[int]:
        return [self.random_instruction() for _ in range(n_instructions)]

    # -- mutations -------------------------------------------------------------------

    def bit_flip(self, words: list[int]) -> list[int]:
        out = list(words)
        idx = self.rng.randrange(len(out))
        out[idx] ^= 1 << self.rng.randrange(32)
        return out

    def byte_flip(self, words: list[int]) -> list[int]:
        out = list(words)
        idx = self.rng.randrange(len(out))
        out[idx] ^= 0xFF << (8 * self.rng.randrange(4))
        return out

    def swap(self, words: list[int]) -> list[int]:
        out = list(words)
        if len(out) >= 2:
            i, j = self.rng.sample(range(len(out)), 2)
            out[i], out[j] = out[j], out[i]
        return out

    def delete(self, words: list[int]) -> list[int]:
        out = list(words)
        if len(out) >= 2:
            del out[self.rng.randrange(len(out))]
        return out

    def clone(self, words: list[int]) -> list[int]:
        out = list(words)
        idx = self.rng.randrange(len(out))
        out.insert(self.rng.randrange(len(out) + 1), out[idx])
        return out

    def replace_with_random(self, words: list[int]) -> list[int]:
        out = list(words)
        out[self.rng.randrange(len(out))] = self.random_instruction()
        return out

    _OPERATORS = ("bit_flip", "byte_flip", "swap", "delete", "clone",
                  "replace_with_random")

    def mutate(self, words: list[int], n_ops: int = 1) -> list[int]:
        """Apply ``n_ops`` randomly chosen mutation operators."""
        out = list(words)
        for _ in range(n_ops):
            op = getattr(self, self.rng.choice(self._OPERATORS))
            out = op(out)
        return out if out else self.random_body(1)
