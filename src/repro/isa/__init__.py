"""RISC-V RV64IMA_Zicsr instruction-set layer.

This package is the single source of truth for instruction encodings used by
every other subsystem: the golden-model ISS (:mod:`repro.golden`), the SoC
models (:mod:`repro.soc`), the dataset generator (:mod:`repro.dataset`) and —
crucially for the paper — the disassembler that acts as the deterministic
reward agent in ChatFuzz's step-2 PPO training (:mod:`repro.ml.rewards`).

Public API
----------
- :data:`~repro.isa.instructions.INSTRUCTIONS` — the instruction database.
- :func:`~repro.isa.encoder.encode` — assemble one instruction to a word.
- :func:`~repro.isa.decoder.decode` — decode a word (or ``None`` if illegal).
- :class:`~repro.isa.disassembler.Disassembler` — textual disassembly and
  legality scoring of raw instruction streams.
- :class:`~repro.isa.assembler.Assembler` — two-pass text assembler with
  label support, used by the examples and tests.
"""

from repro.isa.decoder import DecodedInstr, decode
from repro.isa.disassembler import Disassembler
from repro.isa.encoder import encode
from repro.isa.assembler import Assembler, AssemblerError
from repro.isa.instructions import INSTRUCTIONS, InstrSpec

__all__ = [
    "Assembler",
    "AssemblerError",
    "DecodedInstr",
    "Disassembler",
    "INSTRUCTIONS",
    "InstrSpec",
    "decode",
    "encode",
]
