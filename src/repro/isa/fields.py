"""Bit-field helpers shared by the encoder, decoder and golden model.

All helpers operate on plain Python ints.  Instruction words are 32-bit
unsigned; architectural values are 64-bit unsigned with explicit sign helpers.
"""

MASK32 = 0xFFFF_FFFF
MASK64 = 0xFFFF_FFFF_FFFF_FFFF


def bits(value: int, hi: int, lo: int) -> int:
    """Extract the inclusive bit slice ``value[hi:lo]`` as an unsigned int."""
    if hi < lo:
        raise ValueError(f"invalid slice [{hi}:{lo}]")
    return (value >> lo) & ((1 << (hi - lo + 1)) - 1)


def bit(value: int, pos: int) -> int:
    """Extract a single bit."""
    return (value >> pos) & 1


def sign_extend(value: int, width: int) -> int:
    """Interpret ``value``'s low ``width`` bits as two's complement."""
    value &= (1 << width) - 1
    if value & (1 << (width - 1)):
        return value - (1 << width)
    return value


def to_unsigned(value: int, width: int = 64) -> int:
    """Wrap a (possibly negative) int into ``width`` unsigned bits."""
    return value & ((1 << width) - 1)


def to_signed(value: int, width: int = 64) -> int:
    """Alias of :func:`sign_extend` with the architectural default width."""
    return sign_extend(value, width)


def fits_signed(value: int, width: int) -> bool:
    """True when ``value`` is representable as a ``width``-bit signed int."""
    return -(1 << (width - 1)) <= value < (1 << (width - 1))


def fits_unsigned(value: int, width: int) -> bool:
    """True when ``value`` is representable as a ``width``-bit unsigned int."""
    return 0 <= value < (1 << width)


# ---------------------------------------------------------------------------
# Immediate packing/unpacking per instruction format.
#
# The *_imm_encode functions take the semantic immediate and return the bits
# to OR into the instruction word; the *_imm_decode functions invert them and
# sign-extend.  Formats follow the unprivileged spec chapter 2.
# ---------------------------------------------------------------------------


def i_imm_encode(imm: int) -> int:
    if not fits_signed(imm, 12):
        raise ValueError(f"I-immediate {imm} out of range")
    return (imm & 0xFFF) << 20


def i_imm_decode(word: int) -> int:
    return sign_extend(bits(word, 31, 20), 12)


def s_imm_encode(imm: int) -> int:
    if not fits_signed(imm, 12):
        raise ValueError(f"S-immediate {imm} out of range")
    imm &= 0xFFF
    return (bits(imm, 11, 5) << 25) | (bits(imm, 4, 0) << 7)


def s_imm_decode(word: int) -> int:
    raw = (bits(word, 31, 25) << 5) | bits(word, 11, 7)
    return sign_extend(raw, 12)


def b_imm_encode(imm: int) -> int:
    if imm % 2:
        raise ValueError(f"B-immediate {imm} must be even")
    if not fits_signed(imm, 13):
        raise ValueError(f"B-immediate {imm} out of range")
    imm &= 0x1FFF
    return (
        (bit(imm, 12) << 31)
        | (bits(imm, 10, 5) << 25)
        | (bits(imm, 4, 1) << 8)
        | (bit(imm, 11) << 7)
    )


def b_imm_decode(word: int) -> int:
    raw = (
        (bit(word, 31) << 12)
        | (bit(word, 7) << 11)
        | (bits(word, 30, 25) << 5)
        | (bits(word, 11, 8) << 1)
    )
    return sign_extend(raw, 13)


def u_imm_encode(imm: int) -> int:
    """``imm`` is the 20-bit *upper* immediate, as written in assembly.

    ``lui rd, 0x80080`` loads ``0x80080000`` — the encoder takes ``0x80080``
    (GNU as convention); the decoder returns the shifted, sign-extended
    semantic value.
    """
    if not fits_signed(imm, 20) and not fits_unsigned(imm, 20):
        raise ValueError(f"U-immediate {imm:#x} does not fit in 20 bits")
    return (imm & 0xF_FFFF) << 12


def u_imm_decode(word: int) -> int:
    return sign_extend(word & 0xFFFF_F000, 32)


def j_imm_encode(imm: int) -> int:
    if imm % 2:
        raise ValueError(f"J-immediate {imm} must be even")
    if not fits_signed(imm, 21):
        raise ValueError(f"J-immediate {imm} out of range")
    imm &= 0x1F_FFFF
    return (
        (bit(imm, 20) << 31)
        | (bits(imm, 10, 1) << 21)
        | (bit(imm, 11) << 20)
        | (bits(imm, 19, 12) << 12)
    )


def j_imm_decode(word: int) -> int:
    raw = (
        (bit(word, 31) << 20)
        | (bits(word, 19, 12) << 12)
        | (bit(word, 20) << 11)
        | (bits(word, 30, 21) << 1)
    )
    return sign_extend(raw, 21)
