"""Instruction decoder: 32-bit word -> :class:`DecodedInstr` (or ``None``)."""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.isa import fields
from repro.isa.instructions import (
    DECODE_TABLE,
    FMT_AMO,
    FMT_B,
    FMT_CSR,
    FMT_CSR_IMM,
    FMT_I,
    FMT_I_SHIFT32,
    FMT_I_SHIFT64,
    FMT_J,
    FMT_LR,
    FMT_R,
    FMT_S,
    FMT_U,
    InstrSpec,
)


@dataclass(frozen=True)
class DecodedInstr:
    """A fully-decoded instruction.

    ``imm`` is the sign-extended semantic immediate (branch/jump offsets are
    byte offsets relative to the instruction's own PC).  Fields not present
    in the instruction's format decode to 0.
    """

    spec: InstrSpec
    raw: int
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0
    csr: int = 0
    zimm: int = 0
    shamt: int = 0
    aq: int = 0
    rl: int = 0

    @property
    def mnemonic(self) -> str:
        return self.spec.mnemonic

    def __str__(self) -> str:  # delegated to the disassembler for one format
        from repro.isa.disassembler import format_instr

        return format_instr(self)


def _decode_uncached(word: int) -> DecodedInstr | None:
    word &= 0xFFFF_FFFF
    candidates = DECODE_TABLE.get(word & 0x7F)
    if not candidates:
        return None
    for spec in candidates:
        if word & spec.mask != spec.match:
            continue
        fmt = spec.fmt
        rd = fields.bits(word, 11, 7)
        rs1 = fields.bits(word, 19, 15)
        rs2 = fields.bits(word, 24, 20)
        if fmt == FMT_R:
            return DecodedInstr(spec, word, rd=rd, rs1=rs1, rs2=rs2)
        if fmt == FMT_I:
            return DecodedInstr(spec, word, rd=rd, rs1=rs1, imm=fields.i_imm_decode(word))
        if fmt == FMT_I_SHIFT64:
            return DecodedInstr(spec, word, rd=rd, rs1=rs1, shamt=fields.bits(word, 25, 20))
        if fmt == FMT_I_SHIFT32:
            return DecodedInstr(spec, word, rd=rd, rs1=rs1, shamt=fields.bits(word, 24, 20))
        if fmt == FMT_S:
            return DecodedInstr(spec, word, rs1=rs1, rs2=rs2, imm=fields.s_imm_decode(word))
        if fmt == FMT_B:
            return DecodedInstr(spec, word, rs1=rs1, rs2=rs2, imm=fields.b_imm_decode(word))
        if fmt == FMT_U:
            return DecodedInstr(spec, word, rd=rd, imm=fields.u_imm_decode(word))
        if fmt == FMT_J:
            return DecodedInstr(spec, word, rd=rd, imm=fields.j_imm_decode(word))
        if fmt == FMT_CSR:
            return DecodedInstr(spec, word, rd=rd, rs1=rs1, csr=fields.bits(word, 31, 20))
        if fmt == FMT_CSR_IMM:
            return DecodedInstr(
                spec, word, rd=rd, zimm=rs1, csr=fields.bits(word, 31, 20)
            )
        if fmt in (FMT_AMO, FMT_LR):
            return DecodedInstr(
                spec,
                word,
                rd=rd,
                rs1=rs1,
                rs2=rs2 if fmt == FMT_AMO else 0,
                aq=fields.bit(word, 26),
                rl=fields.bit(word, 25),
            )
        # FENCE / SYS carry no operands.
        return DecodedInstr(spec, word, rd=0, rs1=0)
    return None


@lru_cache(maxsize=65536)
def decode(word: int) -> DecodedInstr | None:
    """Decode a 32-bit instruction word.

    Returns ``None`` when no implemented instruction matches — the caller
    decides whether that is an illegal-instruction trap (golden model / DUT)
    or a reward penalty (disassembler agent).

    Decoding is memoised: fuzzing campaigns decode the same hot words
    millions of times.
    """
    return _decode_uncached(word)


def is_legal(word: int) -> bool:
    """True when ``word`` decodes to an implemented instruction."""
    return decode(word) is not None
