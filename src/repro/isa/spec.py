"""Architectural constants for RV64IMA_Zicsr.

Names follow the RISC-V unprivileged/privileged specifications (the paper's
reference [15]).  Everything downstream — encoder, golden model, SoC models —
imports these constants instead of re-declaring magic numbers.
"""

XLEN = 64
WORD_MASK = (1 << XLEN) - 1
INSTR_BYTES = 4

# ---------------------------------------------------------------------------
# Register file
# ---------------------------------------------------------------------------

NUM_REGS = 32

#: ABI names indexed by register number (x0..x31).
ABI_NAMES = (
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
    "s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
    "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
    "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
)

#: Map from every accepted register spelling ("x13", "a3", "fp") to number.
REG_NUMBERS = {f"x{i}": i for i in range(NUM_REGS)}
REG_NUMBERS.update({name: i for i, name in enumerate(ABI_NAMES)})
REG_NUMBERS["fp"] = 8  # alias of s0

#: Callee-saved registers under the standard calling convention.
CALLEE_SAVED = (2, 8, 9, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27)
#: Argument/return registers a0-a7.
ARG_REGS = (10, 11, 12, 13, 14, 15, 16, 17)
#: Temporaries t0-t6.
TEMP_REGS = (5, 6, 7, 28, 29, 30, 31)

# ---------------------------------------------------------------------------
# Privilege levels
# ---------------------------------------------------------------------------

PRV_U = 0
PRV_S = 1
PRV_M = 3

# ---------------------------------------------------------------------------
# Control and status registers (machine + user-counter subset)
# ---------------------------------------------------------------------------

CSR_MSTATUS = 0x300
CSR_MISA = 0x301
CSR_MIE = 0x304
CSR_MTVEC = 0x305
CSR_MCOUNTEREN = 0x306
CSR_MSCRATCH = 0x340
CSR_MEPC = 0x341
CSR_MCAUSE = 0x342
CSR_MTVAL = 0x343
CSR_MIP = 0x344
CSR_MCYCLE = 0xB00
CSR_MINSTRET = 0xB02
CSR_CYCLE = 0xC00
CSR_TIME = 0xC01
CSR_INSTRET = 0xC02
CSR_MVENDORID = 0xF11
CSR_MARCHID = 0xF12
CSR_MIMPID = 0xF13
CSR_MHARTID = 0xF14

#: Accepted CSR name spellings for the assembler / disassembler.
CSR_NAMES = {
    "mstatus": CSR_MSTATUS,
    "misa": CSR_MISA,
    "mie": CSR_MIE,
    "mtvec": CSR_MTVEC,
    "mcounteren": CSR_MCOUNTEREN,
    "mscratch": CSR_MSCRATCH,
    "mepc": CSR_MEPC,
    "mcause": CSR_MCAUSE,
    "mtval": CSR_MTVAL,
    "mip": CSR_MIP,
    "mcycle": CSR_MCYCLE,
    "minstret": CSR_MINSTRET,
    "cycle": CSR_CYCLE,
    "time": CSR_TIME,
    "instret": CSR_INSTRET,
    "mvendorid": CSR_MVENDORID,
    "marchid": CSR_MARCHID,
    "mimpid": CSR_MIMPID,
    "mhartid": CSR_MHARTID,
}

CSR_ADDR_TO_NAME = {addr: name for name, addr in CSR_NAMES.items()}

#: CSRs that exist in this profile (reads of others raise illegal instr).
IMPLEMENTED_CSRS = frozenset(CSR_NAMES.values())

#: Read-only CSR address range check: top two bits of the 12-bit address.
def csr_is_read_only(addr: int) -> bool:
    """True when the CSR address is architecturally read-only (bits [11:10]==0b11)."""
    return (addr >> 10) & 0b11 == 0b11


def csr_min_privilege(addr: int) -> int:
    """Lowest privilege allowed to access the CSR (bits [9:8] of the address)."""
    return (addr >> 8) & 0b11


# ---------------------------------------------------------------------------
# Exception causes (mcause values, interrupt bit clear)
# ---------------------------------------------------------------------------

EXC_INSTR_MISALIGNED = 0
EXC_INSTR_ACCESS_FAULT = 1
EXC_ILLEGAL_INSTRUCTION = 2
EXC_BREAKPOINT = 3
EXC_LOAD_MISALIGNED = 4
EXC_LOAD_ACCESS_FAULT = 5
EXC_STORE_MISALIGNED = 6
EXC_STORE_ACCESS_FAULT = 7
EXC_ECALL_FROM_U = 8
EXC_ECALL_FROM_S = 9
EXC_ECALL_FROM_M = 11

EXC_NAMES = {
    EXC_INSTR_MISALIGNED: "instruction address misaligned",
    EXC_INSTR_ACCESS_FAULT: "instruction access fault",
    EXC_ILLEGAL_INSTRUCTION: "illegal instruction",
    EXC_BREAKPOINT: "breakpoint",
    EXC_LOAD_MISALIGNED: "load address misaligned",
    EXC_LOAD_ACCESS_FAULT: "load access fault",
    EXC_STORE_MISALIGNED: "store/AMO address misaligned",
    EXC_STORE_ACCESS_FAULT: "store/AMO access fault",
    EXC_ECALL_FROM_U: "environment call from U-mode",
    EXC_ECALL_FROM_S: "environment call from S-mode",
    EXC_ECALL_FROM_M: "environment call from M-mode",
}

#: Synchronous-exception priority per the privileged spec (highest first).
#: Used by the golden model; Finding1 is Rocket *violating* the
#: misaligned-over-access-fault ordering for loads/stores.
EXCEPTION_PRIORITY = (
    EXC_BREAKPOINT,
    EXC_INSTR_MISALIGNED,
    EXC_INSTR_ACCESS_FAULT,
    EXC_ILLEGAL_INSTRUCTION,
    EXC_ECALL_FROM_M,
    EXC_ECALL_FROM_S,
    EXC_ECALL_FROM_U,
    EXC_STORE_MISALIGNED,
    EXC_LOAD_MISALIGNED,
    EXC_STORE_ACCESS_FAULT,
    EXC_LOAD_ACCESS_FAULT,
)

# ---------------------------------------------------------------------------
# Default memory map used across golden model, SoC harness and dataset
# ---------------------------------------------------------------------------

#: Reset / program load address (RocketCore's DRAM base in Chipyard).
DRAM_BASE = 0x8000_0000
#: Size of the simulated main memory window in bytes.
DRAM_SIZE = 1 << 20
#: Default data scratch region (inside DRAM, away from code).
DATA_BASE = DRAM_BASE + (DRAM_SIZE // 2)
#: Reset value of mtvec: trap handler location (harness installs a stub).
TRAP_VECTOR = DRAM_BASE + DRAM_SIZE - 0x1000

MISA_RESET = (2 << 62) | (1 << 0) | (1 << 8) | (1 << 12)  # RV64 A, I, M
MVENDORID_RESET = 0
MARCHID_RESET = 0x5EED
MIMPID_RESET = 0x1
