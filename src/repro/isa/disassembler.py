"""Disassembler: textual rendering and legality scoring of raw words.

Besides producing human-readable listings, this module is the *deterministic
reward agent* of ChatFuzz's step-2 PPO training (paper §III-B2): it counts
how many words of a generated test vector fail to decode, feeding the reward
``f(GenText_i) = N_i - 5 * Invalid_i`` (Eq. 1).  The scoring logic lives here
so the ML package depends on the ISA layer, never the other way round.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.decoder import DecodedInstr, decode
from repro.isa.instructions import (
    FMT_AMO,
    FMT_B,
    FMT_CSR,
    FMT_CSR_IMM,
    FMT_FENCE,
    FMT_I,
    FMT_I_SHIFT32,
    FMT_I_SHIFT64,
    FMT_J,
    FMT_LR,
    FMT_R,
    FMT_S,
    FMT_SYS,
    FMT_U,
)
from repro.isa.spec import ABI_NAMES, CSR_ADDR_TO_NAME


def _reg(n: int) -> str:
    return ABI_NAMES[n]


def _csr(addr: int) -> str:
    return CSR_ADDR_TO_NAME.get(addr, f"{addr:#x}")


def format_instr(instr: DecodedInstr) -> str:
    """Render one decoded instruction in conventional assembler syntax."""
    spec = instr.spec
    m = spec.mnemonic
    fmt = spec.fmt
    if fmt == FMT_R:
        return f"{m} {_reg(instr.rd)}, {_reg(instr.rs1)}, {_reg(instr.rs2)}"
    if fmt == FMT_I:
        if spec.is_load:
            return f"{m} {_reg(instr.rd)}, {instr.imm}({_reg(instr.rs1)})"
        if m == "jalr":
            return f"{m} {_reg(instr.rd)}, {instr.imm}({_reg(instr.rs1)})"
        return f"{m} {_reg(instr.rd)}, {_reg(instr.rs1)}, {instr.imm}"
    if fmt in (FMT_I_SHIFT64, FMT_I_SHIFT32):
        return f"{m} {_reg(instr.rd)}, {_reg(instr.rs1)}, {instr.shamt}"
    if fmt == FMT_S:
        return f"{m} {_reg(instr.rs2)}, {instr.imm}({_reg(instr.rs1)})"
    if fmt == FMT_B:
        return f"{m} {_reg(instr.rs1)}, {_reg(instr.rs2)}, {instr.imm}"
    if fmt in (FMT_U, FMT_J):
        return f"{m} {_reg(instr.rd)}, {instr.imm:#x}" if fmt == FMT_U else (
            f"{m} {_reg(instr.rd)}, {instr.imm}"
        )
    if fmt == FMT_CSR:
        return f"{m} {_reg(instr.rd)}, {_csr(instr.csr)}, {_reg(instr.rs1)}"
    if fmt == FMT_CSR_IMM:
        return f"{m} {_reg(instr.rd)}, {_csr(instr.csr)}, {instr.zimm}"
    if fmt == FMT_AMO:
        suffix = ".aq" * instr.aq + ".rl" * instr.rl
        return f"{m}{suffix} {_reg(instr.rd)}, {_reg(instr.rs2)}, ({_reg(instr.rs1)})"
    if fmt == FMT_LR:
        suffix = ".aq" * instr.aq + ".rl" * instr.rl
        return f"{m}{suffix} {_reg(instr.rd)}, ({_reg(instr.rs1)})"
    if fmt in (FMT_FENCE, FMT_SYS):
        return m
    raise AssertionError(f"unhandled format {fmt}")  # pragma: no cover


@dataclass(frozen=True)
class DisassemblyResult:
    """Outcome of disassembling a raw word stream."""

    lines: tuple[str, ...]
    total: int
    invalid: int

    @property
    def valid(self) -> int:
        return self.total - self.invalid

    @property
    def validity_rate(self) -> float:
        """Fraction of words that decode; 1.0 for an empty stream."""
        if self.total == 0:
            return 1.0
        return self.valid / self.total


class Disassembler:
    """Stateless disassembler over 32-bit instruction word streams.

    Parameters
    ----------
    invalid_marker:
        Text emitted for undecodable words (mirrors objdump's ``.word``).
    """

    def __init__(self, invalid_marker: str = ".word") -> None:
        self.invalid_marker = invalid_marker

    def disassemble_word(self, word: int) -> str:
        """Disassemble one word; undecodable words render as raw data."""
        instr = decode(word)
        if instr is None:
            return f"{self.invalid_marker} {word & 0xFFFFFFFF:#010x}"
        return format_instr(instr)

    def disassemble(self, words: list[int]) -> DisassemblyResult:
        """Disassemble a stream, counting invalid words for reward scoring."""
        lines = []
        invalid = 0
        for word in words:
            instr = decode(word)
            if instr is None:
                invalid += 1
                lines.append(f"{self.invalid_marker} {word & 0xFFFFFFFF:#010x}")
            else:
                lines.append(format_instr(instr))
        return DisassemblyResult(tuple(lines), total=len(words), invalid=invalid)

    def count_invalid(self, words: list[int]) -> int:
        """Number of words in the stream that do not decode."""
        return sum(1 for word in words if decode(word) is None)

    def listing(self, words: list[int], base: int = 0) -> str:
        """Full objdump-style listing with addresses, for reports/examples."""
        rows = []
        for i, word in enumerate(words):
            rows.append(f"{base + 4 * i:#010x}:  {word & 0xFFFFFFFF:08x}  "
                        f"{self.disassemble_word(word)}")
        return "\n".join(rows)
