"""The RV64IMA_Zicsr instruction database.

Each instruction is an :class:`InstrSpec` carrying its format, fixed encoding
bits and semantic classification flags.  The module computes a
``(match, mask)`` pair per instruction — the same representation used by
riscv-opcodes — which drives both the encoder and the decoder and guarantees
they can never disagree.
"""

from __future__ import annotations

from dataclasses import dataclass, field

# Instruction formats.  The format determines operand fields and immediate
# packing; see :mod:`repro.isa.fields`.
FMT_R = "R"
FMT_I = "I"
FMT_I_SHIFT64 = "I_SHIFT64"  # RV64 shifts: 6-bit shamt, funct6
FMT_I_SHIFT32 = "I_SHIFT32"  # *W shifts: 5-bit shamt, funct7
FMT_S = "S"
FMT_B = "B"
FMT_U = "U"
FMT_J = "J"
FMT_CSR = "CSR"
FMT_CSR_IMM = "CSR_IMM"
FMT_AMO = "AMO"
FMT_LR = "LR"
FMT_FENCE = "FENCE"
FMT_SYS = "SYS"  # fully-fixed 32-bit words (ecall/ebreak/mret/wfi)

#: Operand names exposed by each format, in assembler order.
FORMAT_OPERANDS = {
    FMT_R: ("rd", "rs1", "rs2"),
    FMT_I: ("rd", "rs1", "imm"),
    FMT_I_SHIFT64: ("rd", "rs1", "shamt"),
    FMT_I_SHIFT32: ("rd", "rs1", "shamt"),
    FMT_S: ("rs2", "rs1", "imm"),
    FMT_B: ("rs1", "rs2", "imm"),
    FMT_U: ("rd", "imm"),
    FMT_J: ("rd", "imm"),
    FMT_CSR: ("rd", "csr", "rs1"),
    FMT_CSR_IMM: ("rd", "csr", "zimm"),
    FMT_AMO: ("rd", "rs2", "rs1"),
    FMT_LR: ("rd", "rs1"),
    FMT_FENCE: (),
    FMT_SYS: (),
}

# Major opcodes (bits [6:0]).
OP_LUI = 0b0110111
OP_AUIPC = 0b0010111
OP_JAL = 0b1101111
OP_JALR = 0b1100111
OP_BRANCH = 0b1100011
OP_LOAD = 0b0000011
OP_STORE = 0b0100011
OP_IMM = 0b0010011
OP_IMM32 = 0b0011011
OP_REG = 0b0110011
OP_REG32 = 0b0111011
OP_MISC_MEM = 0b0001111
OP_SYSTEM = 0b1110011
OP_AMO = 0b0101111


@dataclass(frozen=True)
class InstrSpec:
    """Static description of one instruction.

    Attributes
    ----------
    mnemonic:
        Canonical lower-case name (``"amoswap.d"``).
    fmt:
        One of the ``FMT_*`` format constants.
    opcode, funct3, funct7, funct5, funct6:
        Fixed encoding fields; ``None`` where the format does not use them.
    match, mask:
        ``word & mask == match`` identifies this instruction.
    is_load / is_store / is_branch / is_jump / is_amo / is_muldiv / is_csr /
    is_system / is_fence:
        Semantic classification used by the SoC models, the mutation engine
        and the dataset generator.
    """

    mnemonic: str
    fmt: str
    opcode: int
    funct3: int | None = None
    funct7: int | None = None
    funct5: int | None = None
    funct6: int | None = None
    fixed_word: int | None = None
    is_load: bool = False
    is_store: bool = False
    is_branch: bool = False
    is_jump: bool = False
    is_amo: bool = False
    is_muldiv: bool = False
    is_csr: bool = False
    is_system: bool = False
    is_fence: bool = False
    match: int = field(default=0, compare=False)
    mask: int = field(default=0, compare=False)

    @property
    def operands(self) -> tuple[str, ...]:
        """Operand field names in assembler order."""
        return FORMAT_OPERANDS[self.fmt]

    @property
    def writes_rd(self) -> bool:
        """True when the instruction has an architectural destination register."""
        return "rd" in self.operands

    @property
    def reads_rs1(self) -> bool:
        return "rs1" in self.operands

    @property
    def reads_rs2(self) -> bool:
        return "rs2" in self.operands

    @property
    def is_memory(self) -> bool:
        """Loads, stores and atomics — everything that touches the D-side."""
        return self.is_load or self.is_store or self.is_amo

    @property
    def is_control_flow(self) -> bool:
        return self.is_branch or self.is_jump


def _match_mask(spec: InstrSpec) -> tuple[int, int]:
    """Compute the (match, mask) identification pair for ``spec``."""
    if spec.fixed_word is not None:
        return spec.fixed_word, 0xFFFF_FFFF
    match = spec.opcode
    mask = 0x7F
    if spec.funct3 is not None:
        match |= spec.funct3 << 12
        mask |= 0x7 << 12
    if spec.fmt == FMT_I_SHIFT64:
        match |= spec.funct6 << 26
        mask |= 0x3F << 26
    elif spec.funct7 is not None:
        match |= spec.funct7 << 25
        mask |= 0x7F << 25
    if spec.fmt == FMT_AMO or spec.fmt == FMT_LR:
        match |= spec.funct5 << 27
        mask |= 0x1F << 27
        if spec.fmt == FMT_LR:  # rs2 must be zero for LR
            mask |= 0x1F << 20
    return match, mask


def _make(spec: InstrSpec) -> InstrSpec:
    match, mask = _match_mask(spec)
    object.__setattr__(spec, "match", match)
    object.__setattr__(spec, "mask", mask)
    return spec


def _r(mnemonic, funct3, funct7, opcode=OP_REG, **flags) -> InstrSpec:
    return _make(InstrSpec(mnemonic, FMT_R, opcode, funct3=funct3, funct7=funct7, **flags))


def _i(mnemonic, funct3, opcode=OP_IMM, **flags) -> InstrSpec:
    return _make(InstrSpec(mnemonic, FMT_I, opcode, funct3=funct3, **flags))


def _amo(mnemonic, funct5, funct3, fmt=FMT_AMO) -> InstrSpec:
    return _make(
        InstrSpec(mnemonic, fmt, OP_AMO, funct3=funct3, funct5=funct5, is_amo=True)
    )


_SPECS = [
    # --- RV32I / RV64I base ------------------------------------------------
    _make(InstrSpec("lui", FMT_U, OP_LUI)),
    _make(InstrSpec("auipc", FMT_U, OP_AUIPC)),
    _make(InstrSpec("jal", FMT_J, OP_JAL, is_jump=True)),
    _i("jalr", 0b000, OP_JALR, is_jump=True),
    _make(InstrSpec("beq", FMT_B, OP_BRANCH, funct3=0b000, is_branch=True)),
    _make(InstrSpec("bne", FMT_B, OP_BRANCH, funct3=0b001, is_branch=True)),
    _make(InstrSpec("blt", FMT_B, OP_BRANCH, funct3=0b100, is_branch=True)),
    _make(InstrSpec("bge", FMT_B, OP_BRANCH, funct3=0b101, is_branch=True)),
    _make(InstrSpec("bltu", FMT_B, OP_BRANCH, funct3=0b110, is_branch=True)),
    _make(InstrSpec("bgeu", FMT_B, OP_BRANCH, funct3=0b111, is_branch=True)),
    _i("lb", 0b000, OP_LOAD, is_load=True),
    _i("lh", 0b001, OP_LOAD, is_load=True),
    _i("lw", 0b010, OP_LOAD, is_load=True),
    _i("ld", 0b011, OP_LOAD, is_load=True),
    _i("lbu", 0b100, OP_LOAD, is_load=True),
    _i("lhu", 0b101, OP_LOAD, is_load=True),
    _i("lwu", 0b110, OP_LOAD, is_load=True),
    _make(InstrSpec("sb", FMT_S, OP_STORE, funct3=0b000, is_store=True)),
    _make(InstrSpec("sh", FMT_S, OP_STORE, funct3=0b001, is_store=True)),
    _make(InstrSpec("sw", FMT_S, OP_STORE, funct3=0b010, is_store=True)),
    _make(InstrSpec("sd", FMT_S, OP_STORE, funct3=0b011, is_store=True)),
    _i("addi", 0b000),
    _i("slti", 0b010),
    _i("sltiu", 0b011),
    _i("xori", 0b100),
    _i("ori", 0b110),
    _i("andi", 0b111),
    _make(InstrSpec("slli", FMT_I_SHIFT64, OP_IMM, funct3=0b001, funct6=0b000000)),
    _make(InstrSpec("srli", FMT_I_SHIFT64, OP_IMM, funct3=0b101, funct6=0b000000)),
    _make(InstrSpec("srai", FMT_I_SHIFT64, OP_IMM, funct3=0b101, funct6=0b010000)),
    _r("add", 0b000, 0b0000000),
    _r("sub", 0b000, 0b0100000),
    _r("sll", 0b001, 0b0000000),
    _r("slt", 0b010, 0b0000000),
    _r("sltu", 0b011, 0b0000000),
    _r("xor", 0b100, 0b0000000),
    _r("srl", 0b101, 0b0000000),
    _r("sra", 0b101, 0b0100000),
    _r("or", 0b110, 0b0000000),
    _r("and", 0b111, 0b0000000),
    _make(InstrSpec("fence", FMT_FENCE, OP_MISC_MEM, funct3=0b000, is_fence=True)),
    _make(InstrSpec("fence.i", FMT_FENCE, OP_MISC_MEM, funct3=0b001, is_fence=True)),
    _make(InstrSpec("ecall", FMT_SYS, OP_SYSTEM, fixed_word=0x0000_0073, is_system=True)),
    _make(InstrSpec("ebreak", FMT_SYS, OP_SYSTEM, fixed_word=0x0010_0073, is_system=True)),
    _make(InstrSpec("mret", FMT_SYS, OP_SYSTEM, fixed_word=0x3020_0073, is_system=True)),
    _make(InstrSpec("wfi", FMT_SYS, OP_SYSTEM, fixed_word=0x1050_0073, is_system=True)),
    # --- RV64I word ops ----------------------------------------------------
    _i("addiw", 0b000, OP_IMM32),
    _make(InstrSpec("slliw", FMT_I_SHIFT32, OP_IMM32, funct3=0b001, funct7=0b0000000)),
    _make(InstrSpec("srliw", FMT_I_SHIFT32, OP_IMM32, funct3=0b101, funct7=0b0000000)),
    _make(InstrSpec("sraiw", FMT_I_SHIFT32, OP_IMM32, funct3=0b101, funct7=0b0100000)),
    _r("addw", 0b000, 0b0000000, OP_REG32),
    _r("subw", 0b000, 0b0100000, OP_REG32),
    _r("sllw", 0b001, 0b0000000, OP_REG32),
    _r("srlw", 0b101, 0b0000000, OP_REG32),
    _r("sraw", 0b101, 0b0100000, OP_REG32),
    # --- M extension ---------------------------------------------------------
    _r("mul", 0b000, 0b0000001, is_muldiv=True),
    _r("mulh", 0b001, 0b0000001, is_muldiv=True),
    _r("mulhsu", 0b010, 0b0000001, is_muldiv=True),
    _r("mulhu", 0b011, 0b0000001, is_muldiv=True),
    _r("div", 0b100, 0b0000001, is_muldiv=True),
    _r("divu", 0b101, 0b0000001, is_muldiv=True),
    _r("rem", 0b110, 0b0000001, is_muldiv=True),
    _r("remu", 0b111, 0b0000001, is_muldiv=True),
    _r("mulw", 0b000, 0b0000001, OP_REG32, is_muldiv=True),
    _r("divw", 0b100, 0b0000001, OP_REG32, is_muldiv=True),
    _r("divuw", 0b101, 0b0000001, OP_REG32, is_muldiv=True),
    _r("remw", 0b110, 0b0000001, OP_REG32, is_muldiv=True),
    _r("remuw", 0b111, 0b0000001, OP_REG32, is_muldiv=True),
    # --- A extension ---------------------------------------------------------
    _amo("lr.w", 0b00010, 0b010, fmt=FMT_LR),
    _amo("sc.w", 0b00011, 0b010),
    _amo("amoswap.w", 0b00001, 0b010),
    _amo("amoadd.w", 0b00000, 0b010),
    _amo("amoxor.w", 0b00100, 0b010),
    _amo("amoand.w", 0b01100, 0b010),
    _amo("amoor.w", 0b01000, 0b010),
    _amo("amomin.w", 0b10000, 0b010),
    _amo("amomax.w", 0b10100, 0b010),
    _amo("amominu.w", 0b11000, 0b010),
    _amo("amomaxu.w", 0b11100, 0b010),
    _amo("lr.d", 0b00010, 0b011, fmt=FMT_LR),
    _amo("sc.d", 0b00011, 0b011),
    _amo("amoswap.d", 0b00001, 0b011),
    _amo("amoadd.d", 0b00000, 0b011),
    _amo("amoxor.d", 0b00100, 0b011),
    _amo("amoand.d", 0b01100, 0b011),
    _amo("amoor.d", 0b01000, 0b011),
    _amo("amomin.d", 0b10000, 0b011),
    _amo("amomax.d", 0b10100, 0b011),
    _amo("amominu.d", 0b11000, 0b011),
    _amo("amomaxu.d", 0b11100, 0b011),
    # --- Zicsr ---------------------------------------------------------------
    _make(InstrSpec("csrrw", FMT_CSR, OP_SYSTEM, funct3=0b001, is_csr=True)),
    _make(InstrSpec("csrrs", FMT_CSR, OP_SYSTEM, funct3=0b010, is_csr=True)),
    _make(InstrSpec("csrrc", FMT_CSR, OP_SYSTEM, funct3=0b011, is_csr=True)),
    _make(InstrSpec("csrrwi", FMT_CSR_IMM, OP_SYSTEM, funct3=0b101, is_csr=True)),
    _make(InstrSpec("csrrsi", FMT_CSR_IMM, OP_SYSTEM, funct3=0b110, is_csr=True)),
    _make(InstrSpec("csrrci", FMT_CSR_IMM, OP_SYSTEM, funct3=0b111, is_csr=True)),
]

#: Mnemonic -> spec for every implemented instruction.
INSTRUCTIONS: dict[str, InstrSpec] = {s.mnemonic: s for s in _SPECS}

#: Specs grouped by major opcode, longest mask first — the decoder's dispatch
#: table.  Fixed-word instructions sort before field-matched ones so that
#: e.g. ``ecall`` wins over ``csrrw`` with funct3==0.
DECODE_TABLE: dict[int, tuple[InstrSpec, ...]] = {}
for _spec in _SPECS:
    DECODE_TABLE.setdefault(_spec.opcode, ())
DECODE_TABLE = {
    opcode: tuple(
        sorted(
            (s for s in _SPECS if s.opcode == opcode),
            key=lambda s: -bin(s.mask).count("1"),
        )
    )
    for opcode in DECODE_TABLE
}

#: Convenience mnemonic groups used by dataset generation and mutations.
LOADS = tuple(s.mnemonic for s in _SPECS if s.is_load)
STORES = tuple(s.mnemonic for s in _SPECS if s.is_store)
BRANCHES = tuple(s.mnemonic for s in _SPECS if s.is_branch)
MULDIVS = tuple(s.mnemonic for s in _SPECS if s.is_muldiv)
AMOS = tuple(s.mnemonic for s in _SPECS if s.is_amo)
CSR_OPS = tuple(s.mnemonic for s in _SPECS if s.is_csr)
ALU_REG_OPS = tuple(
    s.mnemonic
    for s in _SPECS
    if s.fmt == FMT_R and not s.is_muldiv
)
ALU_IMM_OPS = tuple(
    s.mnemonic
    for s in _SPECS
    if s.fmt in (FMT_I, FMT_I_SHIFT64, FMT_I_SHIFT32)
    and not (s.is_load or s.is_jump)
)
