"""Instruction encoder: mnemonic + operands -> 32-bit word."""

from __future__ import annotations

from repro.isa import fields
from repro.isa.instructions import (
    FMT_AMO,
    FMT_B,
    FMT_CSR,
    FMT_CSR_IMM,
    FMT_FENCE,
    FMT_I,
    FMT_I_SHIFT32,
    FMT_I_SHIFT64,
    FMT_J,
    FMT_LR,
    FMT_R,
    FMT_S,
    FMT_SYS,
    FMT_U,
    INSTRUCTIONS,
)


class EncodingError(ValueError):
    """Raised for unknown mnemonics or out-of-range operands."""


def _check_reg(name: str, value: int) -> int:
    if not 0 <= value < 32:
        raise EncodingError(f"{name}={value} is not a valid register number")
    return value


def encode(
    mnemonic: str,
    rd: int = 0,
    rs1: int = 0,
    rs2: int = 0,
    imm: int = 0,
    csr: int = 0,
    zimm: int = 0,
    shamt: int = 0,
    aq: int = 0,
    rl: int = 0,
) -> int:
    """Assemble one instruction into its 32-bit encoding.

    Only the operands belonging to the instruction's format are consulted;
    the rest are ignored so callers can pass a uniform operand record.

    Raises
    ------
    EncodingError
        For unknown mnemonics, bad register numbers or immediates that do not
        fit the format's field.
    """
    spec = INSTRUCTIONS.get(mnemonic)
    if spec is None:
        raise EncodingError(f"unknown mnemonic {mnemonic!r}")

    word = spec.match  # fixed fields (opcode/funct*) are already in `match`
    fmt = spec.fmt
    try:
        if fmt == FMT_R:
            word |= (_check_reg("rd", rd) << 7) | (_check_reg("rs1", rs1) << 15)
            word |= _check_reg("rs2", rs2) << 20
        elif fmt == FMT_I:
            word |= (_check_reg("rd", rd) << 7) | (_check_reg("rs1", rs1) << 15)
            word |= fields.i_imm_encode(imm)
        elif fmt == FMT_I_SHIFT64:
            if not 0 <= shamt < 64:
                raise EncodingError(f"shamt={shamt} out of range for RV64 shift")
            word |= (_check_reg("rd", rd) << 7) | (_check_reg("rs1", rs1) << 15)
            word |= shamt << 20
        elif fmt == FMT_I_SHIFT32:
            if not 0 <= shamt < 32:
                raise EncodingError(f"shamt={shamt} out of range for *W shift")
            word |= (_check_reg("rd", rd) << 7) | (_check_reg("rs1", rs1) << 15)
            word |= shamt << 20
        elif fmt == FMT_S:
            word |= (_check_reg("rs1", rs1) << 15) | (_check_reg("rs2", rs2) << 20)
            word |= fields.s_imm_encode(imm)
        elif fmt == FMT_B:
            word |= (_check_reg("rs1", rs1) << 15) | (_check_reg("rs2", rs2) << 20)
            word |= fields.b_imm_encode(imm)
        elif fmt == FMT_U:
            word |= _check_reg("rd", rd) << 7
            word |= fields.u_imm_encode(imm)
        elif fmt == FMT_J:
            word |= _check_reg("rd", rd) << 7
            word |= fields.j_imm_encode(imm)
        elif fmt == FMT_CSR:
            word |= (_check_reg("rd", rd) << 7) | (_check_reg("rs1", rs1) << 15)
            word |= (csr & 0xFFF) << 20
        elif fmt == FMT_CSR_IMM:
            if not 0 <= zimm < 32:
                raise EncodingError(f"zimm={zimm} out of range")
            word |= (_check_reg("rd", rd) << 7) | (zimm << 15)
            word |= (csr & 0xFFF) << 20
        elif fmt == FMT_AMO:
            word |= (_check_reg("rd", rd) << 7) | (_check_reg("rs1", rs1) << 15)
            word |= _check_reg("rs2", rs2) << 20
            word |= ((aq & 1) << 26) | ((rl & 1) << 25)
        elif fmt == FMT_LR:
            word |= (_check_reg("rd", rd) << 7) | (_check_reg("rs1", rs1) << 15)
            word |= ((aq & 1) << 26) | ((rl & 1) << 25)
        elif fmt in (FMT_FENCE, FMT_SYS):
            pass  # encoding is fully fixed
        else:  # pragma: no cover - table is closed
            raise EncodingError(f"unhandled format {fmt}")
    except ValueError as exc:  # immediate range errors from fields.*
        raise EncodingError(str(exc)) from exc
    return word & 0xFFFF_FFFF


def encode_program(entries: list[tuple]) -> list[int]:
    """Encode ``[(mnemonic, kwargs-dict), ...]`` into a list of words."""
    words = []
    for mnemonic, operands in entries:
        words.append(encode(mnemonic, **operands))
    return words
