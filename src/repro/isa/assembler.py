"""A small two-pass assembler for RV64IMA_Zicsr text programs.

Supports labels, the memory-operand syntax ``imm(reg)``, ABI register names,
CSR names, ``#`` comments, a handful of common pseudo-instructions and the
``.word`` data directive.  It exists for the examples and tests — fuzzing
inputs are raw word streams and never go through here.
"""

from __future__ import annotations

import re

from repro.isa.encoder import EncodingError, encode
from repro.isa.instructions import INSTRUCTIONS
from repro.isa.spec import CSR_NAMES, REG_NUMBERS


class AssemblerError(ValueError):
    """Raised with a line number for any parse or encoding failure."""


_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):(.*)$")
_MEM_RE = re.compile(r"^(-?\w+)\((\w+)\)$")

#: Pseudo-instructions expanded during parsing: name -> expansion builder.
#: Each builder receives the operand strings and returns a list of
#: (mnemonic, operand-strings) tuples.
_PSEUDOS = {
    "nop": lambda ops: [("addi", ["x0", "x0", "0"])],
    "mv": lambda ops: [("addi", [ops[0], ops[1], "0"])],
    "li": lambda ops: [("addi", [ops[0], "x0", ops[1]])],  # 12-bit only
    "not": lambda ops: [("xori", [ops[0], ops[1], "-1"])],
    "neg": lambda ops: [("sub", [ops[0], "x0", ops[1]])],
    "j": lambda ops: [("jal", ["x0", ops[0]])],
    "jr": lambda ops: [("jalr", ["x0", "0(" + ops[0] + ")"])],
    "ret": lambda ops: [("jalr", ["x0", "0(ra)"])],
    "beqz": lambda ops: [("beq", [ops[0], "x0", ops[1]])],
    "bnez": lambda ops: [("bne", [ops[0], "x0", ops[1]])],
    "csrr": lambda ops: [("csrrs", [ops[0], ops[1], "x0"])],
    "csrw": lambda ops: [("csrrw", ["x0", ops[0], ops[1]])],
}


def _parse_int(text: str, lineno: int) -> int:
    try:
        return int(text, 0)
    except ValueError:
        raise AssemblerError(f"line {lineno}: bad integer {text!r}") from None


class Assembler:
    """Two-pass assembler.

    >>> words = Assembler().assemble('''
    ...     li a0, 5
    ... loop:
    ...     addi a0, a0, -1
    ...     bnez a0, loop
    ... ''')
    """

    def __init__(self, base: int = 0) -> None:
        self.base = base

    # -- public API ---------------------------------------------------------

    def assemble(self, text: str) -> list[int]:
        """Assemble a program, returning its instruction words."""
        statements, labels = self._first_pass(text)
        return self._second_pass(statements, labels)

    # -- pass 1: tokenize, expand pseudos, collect label addresses ----------

    def _first_pass(self, text: str):
        statements = []  # (lineno, mnemonic-or-.word, operand-strings)
        labels: dict[str, int] = {}
        offset = 0
        for lineno, raw_line in enumerate(text.splitlines(), start=1):
            line = raw_line.split("#", 1)[0].strip()
            while line:
                matched = _LABEL_RE.match(line)
                if not matched:
                    break
                label, line = matched.group(1), matched.group(2).strip()
                if label in labels:
                    raise AssemblerError(f"line {lineno}: duplicate label {label!r}")
                labels[label] = self.base + offset
            if not line:
                continue
            parts = line.split(None, 1)
            mnemonic = parts[0].lower()
            operands = (
                [op.strip() for op in parts[1].split(",")] if len(parts) > 1 else []
            )
            if mnemonic in _PSEUDOS:
                try:
                    expansion = _PSEUDOS[mnemonic](operands)
                except IndexError:
                    raise AssemblerError(
                        f"line {lineno}: wrong operand count for {mnemonic!r}"
                    ) from None
                for real_mnemonic, real_ops in expansion:
                    statements.append((lineno, real_mnemonic, real_ops))
                    offset += 4
            else:
                statements.append((lineno, mnemonic, operands))
                offset += 4
        return statements, labels

    # -- pass 2: resolve labels and encode -----------------------------------

    def _second_pass(self, statements, labels) -> list[int]:
        words = []
        for index, (lineno, mnemonic, operand_texts) in enumerate(statements):
            pc = self.base + 4 * index
            if mnemonic == ".word":
                if len(operand_texts) != 1:
                    raise AssemblerError(f"line {lineno}: .word takes one value")
                words.append(_parse_int(operand_texts[0], lineno) & 0xFFFFFFFF)
                continue
            spec = INSTRUCTIONS.get(mnemonic)
            if spec is None:
                raise AssemblerError(f"line {lineno}: unknown mnemonic {mnemonic!r}")
            kwargs = self._bind_operands(spec, operand_texts, labels, pc, lineno)
            try:
                words.append(encode(mnemonic, **kwargs))
            except EncodingError as exc:
                raise AssemblerError(f"line {lineno}: {exc}") from exc
        return words

    def _bind_operands(self, spec, operand_texts, labels, pc, lineno):
        expected = spec.operands
        kwargs: dict[str, int] = {}
        texts = list(operand_texts)

        # Atomics write the address operand as "(reg)" with no offset.
        if texts and (bare := re.match(r"^\((\w+)\)$", texts[-1])):
            texts[-1] = bare.group(1)

        # Loads/stores/jalr accept "imm(reg)" combining two formal operands.
        if texts and (mem := _MEM_RE.match(texts[-1])):
            if "imm" in expected and "rs1" in expected:
                texts[-1] = mem.group(1)
                texts.append(mem.group(2))
                ordered = [op for op in expected if op not in ("imm", "rs1")]
                ordered += ["imm", "rs1"]
                expected = tuple(ordered)

        if len(texts) != len(expected):
            raise AssemblerError(
                f"line {lineno}: {spec.mnemonic} expects {len(spec.operands)} "
                f"operand(s), got {len(operand_texts)}"
            )
        for name, text in zip(expected, texts):
            if name in ("rd", "rs1", "rs2"):
                reg = REG_NUMBERS.get(text.lower())
                if reg is None:
                    raise AssemblerError(f"line {lineno}: bad register {text!r}")
                kwargs[name] = reg
            elif name == "csr":
                if text.lower() in CSR_NAMES:
                    kwargs[name] = CSR_NAMES[text.lower()]
                else:
                    kwargs[name] = _parse_int(text, lineno)
            elif name == "imm":
                if text in labels:
                    target = labels[text]
                    kwargs[name] = (
                        target - pc if spec.is_branch or spec.is_jump else target
                    )
                else:
                    kwargs[name] = _parse_int(text, lineno)
            elif name in ("zimm", "shamt"):
                kwargs[name] = _parse_int(text, lineno)
            else:  # pragma: no cover - formats are closed
                raise AssemblerError(f"line {lineno}: unhandled operand {name}")
        return kwargs
