"""The ML subsystem: everything the paper builds on PyTorch/HuggingFace/TRL,
re-implemented on numpy (DESIGN.md §1).

Layers of the stack:

- :mod:`repro.ml.tensor` — a vectorised reverse-mode autograd engine.
- :mod:`repro.ml.layers`, :mod:`repro.ml.attention`,
  :mod:`repro.ml.transformer` — a GPT-2-family causal LM with a value head.
- :mod:`repro.ml.tokenizer` — machine-language tokenizers (half-word, the
  paper's representation; and an instruction-field alternative).
- :mod:`repro.ml.optim`, :mod:`repro.ml.sampling` — Adam and
  temperature/top-k/top-p generation.
- :mod:`repro.ml.kvcache` — the per-layer K/V cache behind the
  prefill/decode inference fast path.  Training forwards run on the
  autograd engine; generation (fuzzing campaigns, PPO rollouts) runs on a
  raw-numpy cached path that is token-identical but O(T·L) instead of
  O(T²·L) per sequence.
- :mod:`repro.ml.lm_training` — step 1: unsupervised language modelling.
- :mod:`repro.ml.ppo` — TRL-style PPO with per-token KL penalty vs. a frozen
  reference model (steps 2 and 3).
- :mod:`repro.ml.rewards` — the deterministic reward agents: disassembler
  (Eq. 1) and coverage scorer.
- :mod:`repro.ml.pipeline` — the three-step training orchestration of
  Figure 1b.
"""

from repro.ml.kvcache import KVCache
from repro.ml.pipeline import ChatFuzzPipeline, PipelineConfig
from repro.ml.tokenizer import FieldTokenizer, HalfwordTokenizer
from repro.ml.transformer import GPT2Config, GPT2LMModel

__all__ = [
    "ChatFuzzPipeline",
    "FieldTokenizer",
    "GPT2Config",
    "GPT2LMModel",
    "HalfwordTokenizer",
    "KVCache",
    "PipelineConfig",
]
