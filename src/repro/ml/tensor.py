"""A vectorised reverse-mode autograd engine on numpy.

This is the substrate under the transformer and PPO: a :class:`Tensor` wraps
an ``ndarray``, records the operations applied to it, and
:meth:`Tensor.backward` runs reverse-mode differentiation over the recorded
graph.  The op set is exactly what a GPT-2-with-value-head + PPO training
loop needs — broadcast-aware arithmetic, batched matmul, indexing/gather,
log-softmax, layernorm, GELU, clip/minimum/where — nothing speculative.

Design notes
------------
- Gradients are accumulated in float32; graphs are freed after backward.
- Broadcasting follows numpy; ``_unbroadcast`` folds gradients back to the
  operand's shape.
- ``no_grad()`` disables graph recording (used for generation rollouts,
  which would otherwise leak memory across hundreds of sampling steps).
"""

from __future__ import annotations

import contextlib
from typing import Iterable

import numpy as np

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph construction (inference mode)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` over the axes numpy broadcast to reach its shape."""
    if grad.shape == shape:
        return grad
    # Sum away leading axes added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were 1 in the original shape.
    for axis, dim in enumerate(shape):
        if dim == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


class Tensor:
    """An autograd-tracked numpy array."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(self, data, requires_grad: bool = False) -> None:
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=np.float32)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self._backward = None
        self._parents: tuple[Tensor, ...] = ()

    # -- construction helpers ---------------------------------------------------

    @classmethod
    def zeros(cls, *shape: int, requires_grad: bool = False) -> "Tensor":
        return cls(np.zeros(shape, dtype=np.float32), requires_grad)

    @classmethod
    def param(cls, array: np.ndarray) -> "Tensor":
        """A trainable parameter (requires_grad regardless of no_grad)."""
        tensor = cls(array)
        tensor.requires_grad = True
        return tensor

    # -- graph plumbing ------------------------------------------------------------

    def _make(self, data: np.ndarray, parents: Iterable["Tensor"], backward):
        """Create a result node; records the edge only when grads are on."""
        parents = tuple(parents)
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data)
        out.requires_grad = requires
        if requires:
            out._parents = parents
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = grad.astype(np.float32, copy=True)
        else:
            self.grad += grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Reverse-mode differentiation from this (typically scalar) node."""
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() without grad requires a scalar")
            grad = np.ones_like(self.data)
        topo: list[Tensor] = []
        seen: set[int] = set()
        stack = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in seen or not node.requires_grad:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                stack.append((parent, False))
        self._accumulate(np.asarray(grad, dtype=np.float32))
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)
            # Free the graph edge eagerly; parameters keep their grads.
            node._backward = None
            node._parents = ()

    def detach(self) -> "Tensor":
        """A view of the data cut off from the graph."""
        return Tensor(self.data)

    # -- shape utilities ------------------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    def reshape(self, *shape: int) -> "Tensor":
        original = self.data.shape

        def backward(grad):
            self._accumulate(grad.reshape(original))

        return self._make(self.data.reshape(shape), (self,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        axes = axes or tuple(reversed(range(self.data.ndim)))
        inverse = np.argsort(axes)

        def backward(grad):
            self._accumulate(grad.transpose(inverse))

        return self._make(self.data.transpose(axes), (self,), backward)

    def swap_last(self) -> "Tensor":
        """Swap the last two axes (matmul transpose helper)."""
        order = tuple(range(self.data.ndim - 2)) + (
            self.data.ndim - 1,
            self.data.ndim - 2,
        )
        return self.transpose(*order)

    def __getitem__(self, key) -> "Tensor":
        data = self.data[key]

        def backward(grad):
            full = np.zeros_like(self.data)
            np.add.at(full, key, grad)
            self._accumulate(full)

        return self._make(data, (self,), backward)

    # -- arithmetic -------------------------------------------------------------------

    def _coerce(self, other) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def __add__(self, other) -> "Tensor":
        other = self._coerce(other)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.data.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.data.shape))

        return self._make(self.data + other.data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad):
            self._accumulate(-grad)

        return self._make(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        return self + (-self._coerce(other))

    def __rsub__(self, other) -> "Tensor":
        return self._coerce(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = self._coerce(other)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.data.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.data.shape))

        return self._make(self.data * other.data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._coerce(other)
        return self * other ** -1.0

    def __rtruediv__(self, other) -> "Tensor":
        return self._coerce(other) * self ** -1.0

    def __pow__(self, exponent: float) -> "Tensor":
        data = self.data ** exponent

        def backward(grad):
            self._accumulate(grad * exponent * self.data ** (exponent - 1.0))

        return self._make(data, (self,), backward)

    def matmul(self, other: "Tensor") -> "Tensor":
        other = self._coerce(other)
        data = self.data @ other.data

        def backward(grad):
            if self.requires_grad:
                ga = grad @ np.swapaxes(other.data, -1, -2)
                self._accumulate(_unbroadcast(ga, self.data.shape))
            if other.requires_grad:
                gb = np.swapaxes(self.data, -1, -2) @ grad
                other._accumulate(_unbroadcast(gb, other.data.shape))

        return self._make(data, (self, other), backward)

    __matmul__ = matmul

    # -- reductions ---------------------------------------------------------------------

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad):
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            self._accumulate(np.broadcast_to(g, self.data.shape).copy())

        return self._make(data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    # -- nonlinearities ------------------------------------------------------------------

    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(grad):
            self._accumulate(grad * data)

        return self._make(data, (self,), backward)

    def log(self) -> "Tensor":
        def backward(grad):
            self._accumulate(grad / self.data)

        return self._make(np.log(self.data), (self,), backward)

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(grad):
            self._accumulate(grad * (1.0 - data * data))

        return self._make(data, (self,), backward)

    def gelu(self) -> "Tensor":
        """GPT-2's tanh-approximated GELU."""
        x = self.data
        c = np.sqrt(2.0 / np.pi).astype(np.float32)
        inner = c * (x + 0.044715 * x**3)
        t = np.tanh(inner)
        data = 0.5 * x * (1.0 + t)

        def backward(grad):
            dinner = c * (1.0 + 3 * 0.044715 * x**2)
            dt = (1.0 - t * t) * dinner
            self._accumulate(grad * (0.5 * (1.0 + t) + 0.5 * x * dt))

        return self._make(data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        """Clamp with straight-through gradient inside the bounds."""
        data = np.clip(self.data, low, high)
        pass_mask = (self.data >= low) & (self.data <= high)

        def backward(grad):
            self._accumulate(grad * pass_mask)

        return self._make(data, (self,), backward)

    def minimum(self, other: "Tensor") -> "Tensor":
        """Elementwise min; gradient flows to the smaller operand (ties: self)."""
        other = self._coerce(other)
        take_self = self.data <= other.data
        data = np.where(take_self, self.data, other.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * take_self, self.data.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * ~take_self, other.data.shape))

        return self._make(data, (self, other), backward)

    # -- softmax family --------------------------------------------------------------------

    def log_softmax(self) -> "Tensor":
        """Numerically-stable log-softmax over the last axis."""
        shifted = self.data - self.data.max(axis=-1, keepdims=True)
        log_z = np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
        data = shifted - log_z

        def backward(grad):
            softmax = np.exp(data)
            self._accumulate(grad - softmax * grad.sum(axis=-1, keepdims=True))

        return self._make(data, (self,), backward)

    def softmax(self) -> "Tensor":
        return self.log_softmax().exp()

    def gather_last(self, index: np.ndarray) -> "Tensor":
        """Select one element along the last axis per leading position.

        ``index`` has the tensor's shape minus the last axis; the result has
        that same shape.  This is the log-prob lookup used everywhere in LM
        training and PPO.
        """
        index = np.asarray(index)
        expanded = np.expand_dims(index, -1)
        data = np.take_along_axis(self.data, expanded, axis=-1).squeeze(-1)

        def backward(grad):
            full = np.zeros_like(self.data)
            np.put_along_axis(
                full, expanded, np.expand_dims(grad, -1), axis=-1
            )
            self._accumulate(full)

        return self._make(data, (self,), backward)

    # -- layernorm (fused custom op for speed and stability) ----------------------------------

    def layernorm(self, gain: "Tensor", bias: "Tensor", eps: float = 1e-5) -> "Tensor":
        """Layer normalisation over the last axis with affine parameters."""
        mu = self.data.mean(axis=-1, keepdims=True)
        var = self.data.var(axis=-1, keepdims=True)
        inv = 1.0 / np.sqrt(var + eps)
        normed = (self.data - mu) * inv
        data = normed * gain.data + bias.data

        def backward(grad):
            if gain.requires_grad:
                axes = tuple(range(grad.ndim - 1))
                gain._accumulate((grad * normed).sum(axis=axes))
            if bias.requires_grad:
                axes = tuple(range(grad.ndim - 1))
                bias._accumulate(grad.sum(axis=axes))
            if self.requires_grad:
                n = self.data.shape[-1]
                g = grad * gain.data
                term1 = g
                term2 = g.mean(axis=-1, keepdims=True)
                term3 = normed * (g * normed).mean(axis=-1, keepdims=True)
                self._accumulate((term1 - term2 - term3) * inv)

        return self._make(data, (self, gain, bias), backward)

    # -- misc -------------------------------------------------------------------------------

    def item(self) -> float:
        return float(self.data)

    def __repr__(self) -> str:
        return f"Tensor(shape={self.data.shape}, requires_grad={self.requires_grad})"
