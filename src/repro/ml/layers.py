"""Neural-network building blocks on the autograd engine.

Each module has two forward paths: ``__call__`` runs on
:class:`~repro.ml.tensor.Tensor` and records the autograd graph (training),
while ``forward_np`` runs the *same arithmetic* on raw ``float32`` numpy
arrays for the inference fast path (KV-cached generation, see
:mod:`repro.ml.kvcache`).  The two must stay numerically identical — the
decode-parity tests compare them token for token — so any change to one
formula must be mirrored in the other.
"""

from __future__ import annotations

import numpy as np

from repro.ml.tensor import Tensor


class Parameterized:
    """Base class giving modules a flat parameter list for the optimizer."""

    def parameters(self) -> list[Tensor]:
        """All trainable tensors, depth-first over attributes."""
        params: list[Tensor] = []
        seen: set[int] = set()
        for value in self.__dict__.values():
            for tensor in _collect(value):
                if id(tensor) not in seen:
                    seen.add(id(tensor))
                    params.append(tensor)
        return params

    def num_parameters(self) -> int:
        return sum(int(np.prod(p.data.shape)) for p in self.parameters())

    # -- (de)serialisation ----------------------------------------------------

    def state_arrays(self) -> list[np.ndarray]:
        return [p.data.copy() for p in self.parameters()]

    def load_state_arrays(self, arrays: list[np.ndarray]) -> None:
        params = self.parameters()
        if len(params) != len(arrays):
            raise ValueError(
                f"state mismatch: {len(params)} params, {len(arrays)} arrays"
            )
        for param, array in zip(params, arrays):
            if param.data.shape != array.shape:
                raise ValueError(f"shape mismatch {param.data.shape} vs {array.shape}")
            param.data = array.astype(np.float32).copy()


def _collect(value) -> list[Tensor]:
    if isinstance(value, Tensor):
        return [value] if value.requires_grad else []
    if isinstance(value, Parameterized):
        return value.parameters()
    if isinstance(value, (list, tuple)):
        out = []
        for item in value:
            out.extend(_collect(item))
        return out
    return []


class Linear(Parameterized):
    """Affine map ``y = x @ W + b`` with GPT-2-style initialisation."""

    def __init__(self, fan_in: int, fan_out: int, rng: np.random.Generator,
                 init_scale: float = 0.02) -> None:
        self.weight = Tensor.param(
            rng.normal(0.0, init_scale, size=(fan_in, fan_out)).astype(np.float32)
        )
        self.bias = Tensor.param(np.zeros(fan_out, dtype=np.float32))

    def __call__(self, x: Tensor) -> Tensor:
        return x.matmul(self.weight) + self.bias

    def forward_np(self, x: np.ndarray) -> np.ndarray:
        """Graph-free forward on raw arrays (inference fast path)."""
        return x @ self.weight.data + self.bias.data


class Embedding(Parameterized):
    """Token-index lookup table."""

    def __init__(self, vocab: int, dim: int, rng: np.random.Generator,
                 init_scale: float = 0.02) -> None:
        self.weight = Tensor.param(
            rng.normal(0.0, init_scale, size=(vocab, dim)).astype(np.float32)
        )

    def __call__(self, indices: np.ndarray) -> Tensor:
        return self.weight[np.asarray(indices)]


class LayerNorm(Parameterized):
    """Layer normalisation with learnable gain/bias."""

    def __init__(self, dim: int) -> None:
        self.gain = Tensor.param(np.ones(dim, dtype=np.float32))
        self.bias = Tensor.param(np.zeros(dim, dtype=np.float32))

    def __call__(self, x: Tensor) -> Tensor:
        return x.layernorm(self.gain, self.bias)

    def forward_np(self, x: np.ndarray, eps: float = 1e-5) -> np.ndarray:
        """Graph-free forward, mirroring :meth:`Tensor.layernorm` exactly."""
        mu = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        inv = 1.0 / np.sqrt(var + eps)
        return (x - mu) * inv * self.gain.data + self.bias.data


class MLP(Parameterized):
    """The transformer block's feed-forward: Linear -> GELU -> Linear."""

    def __init__(self, dim: int, hidden: int, rng: np.random.Generator) -> None:
        self.fc_in = Linear(dim, hidden, rng)
        self.fc_out = Linear(hidden, dim, rng)

    def __call__(self, x: Tensor) -> Tensor:
        return self.fc_out(self.fc_in(x).gelu())

    def forward_np(self, x: np.ndarray) -> np.ndarray:
        """Graph-free forward (inference fast path)."""
        return self.fc_out.forward_np(gelu_np(self.fc_in.forward_np(x)))


def gelu_np(x: np.ndarray) -> np.ndarray:
    """GPT-2's tanh-approximated GELU, mirroring :meth:`Tensor.gelu` exactly."""
    c = np.sqrt(2.0 / np.pi).astype(np.float32)
    inner = c * (x + 0.044715 * x**3)
    return 0.5 * x * (1.0 + np.tanh(inner))
