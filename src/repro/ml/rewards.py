"""Deterministic reward agents for the PPO steps (paper §III-B2/3).

The paper deliberately avoids learned reward models: "Employing a
deterministic reward agent, we can provide the model with more precise
guidance".  Both agents here are deterministic; the optional
``noise_stddev`` on the disassembler agent exists solely for the A-SCORE
ablation, which quantifies that design argument.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.coverage.calculator import CoverageCalculator
from repro.coverage.scoring import CoverageScorer, ScoreWeights
from repro.isa.disassembler import Disassembler


@dataclass
class DisassemblerReward:
    """Eq. 1: ``f(GenText_i) = N_i − penalty · Invalid_i`` (penalty = 5).

    ``normalize=True`` divides by the sequence length so rewards are
    comparable across response lengths (helps small-scale PPO stability
    without changing the optimum).
    """

    penalty: float = 5.0
    normalize: bool = True
    noise_stddev: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        self._disassembler = Disassembler()
        self._rng = np.random.default_rng(self.seed)

    def __call__(self, words: list[int]) -> float:
        total = len(words)
        invalid = self._disassembler.count_invalid(words)
        reward = float(total - self.penalty * invalid)
        if self.normalize and total:
            reward /= total
        if self.noise_stddev:
            reward += float(self._rng.normal(0.0, self.noise_stddev))
        return reward

    def validity_rate(self, words: list[int]) -> float:
        if not words:
            return 1.0
        return 1.0 - self._disassembler.count_invalid(words) / len(words)


class CoverageReward:
    """Step-3 reward: RTL-simulate the generation, score its coverage.

    Wraps a DUT harness with the Coverage Calculator and Scorer; the reward
    embeds stand-alone coverage, incremental coverage against the running
    campaign total, and the remaining-exploration bonus (paper §III-B3).
    ``begin_batch`` must be called once per PPO rollout batch so increments
    use the paper's batch-relative baseline.
    """

    def __init__(self, harness, weights: ScoreWeights | None = None) -> None:
        self.harness = harness
        self.calculator = CoverageCalculator(harness.total_arms, batch_mode=True)
        self.scorer = CoverageScorer(weights)
        #: Campaign telemetry, exposed for training curves.
        self.history: list[float] = []

    def begin_batch(self) -> None:
        self.calculator.begin_batch()

    def __call__(self, words: list[int]) -> float:
        _, report = self.harness.run_dut(list(words))
        coverage = self.calculator.observe(report)
        self.history.append(self.calculator.total_percent)
        return self.scorer.score(coverage)

    @property
    def total_percent(self) -> float:
        return self.calculator.total_percent
