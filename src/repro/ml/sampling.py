"""Autoregressive generation: temperature, top-k and nucleus sampling.

Generation runs in inference mode (:func:`repro.ml.tensor.no_grad`); PPO
recomputes log-probs with gradients afterwards on the concatenated
prompt+response batch, as TRL does.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class SamplerConfig:
    """Decoding hyper-parameters."""

    temperature: float = 1.0
    top_k: int | None = None
    top_p: float | None = None
    #: Token ids whose probability is forced to zero (e.g. PAD/BOS/EOS when
    #: generating fixed-length fuzzing bodies).
    forbidden_tokens: tuple[int, ...] = ()


class Sampler:
    """Batch sampler over a :class:`~repro.ml.transformer.GPT2LMModel`."""

    def __init__(self, model, config: SamplerConfig | None = None,
                 seed: int = 0) -> None:
        self.model = model
        self.config = config or SamplerConfig()
        self.rng = np.random.default_rng(seed)

    def _filter_distribution(self, probs: np.ndarray) -> np.ndarray:
        """Apply top-k / top-p filtering row-wise and renormalise."""
        config = self.config
        filtered = probs.copy()
        if config.forbidden_tokens:
            filtered[:, list(config.forbidden_tokens)] = 0.0
        if config.top_k is not None and config.top_k < probs.shape[-1]:
            kth = np.partition(filtered, -config.top_k, axis=-1)[
                :, -config.top_k : -config.top_k + 1
            ]
            filtered[filtered < kth] = 0.0
        if config.top_p is not None and config.top_p < 1.0:
            order = np.argsort(-filtered, axis=-1)
            sorted_probs = np.take_along_axis(filtered, order, axis=-1)
            cumulative = np.cumsum(sorted_probs, axis=-1)
            # Keep the smallest prefix with mass >= top_p (always >= 1 token).
            cut = cumulative - sorted_probs >= config.top_p
            sorted_probs[cut] = 0.0
            filtered = np.zeros_like(filtered)
            np.put_along_axis(filtered, order, sorted_probs, axis=-1)
        totals = filtered.sum(axis=-1, keepdims=True)
        # Rows zeroed out entirely (numerical corner) fall back to the input
        # distribution with forbidden tokens still masked; if that is also
        # empty, to uniform over the allowed vocabulary.
        dead = totals.squeeze(-1) <= 0
        if dead.any():
            fallback = probs[dead].copy()
            if config.forbidden_tokens:
                fallback[:, list(config.forbidden_tokens)] = 0.0
            empty = fallback.sum(axis=-1) <= 0
            if empty.any():
                fallback[empty] = 1.0
                if config.forbidden_tokens:
                    fallback[np.ix_(np.flatnonzero(empty),
                                    list(config.forbidden_tokens))] = 0.0
            filtered[dead] = fallback
            totals = filtered.sum(axis=-1, keepdims=True)
        return filtered / totals

    def generate(
        self,
        prompts: np.ndarray,
        n_new_tokens: int,
    ) -> np.ndarray:
        """Extend each prompt row by ``n_new_tokens`` sampled tokens.

        ``prompts`` is (batch, prompt_len); returns (batch, prompt_len +
        n_new_tokens).  All rows share a length, so no padding/attention
        masking is needed (the PPO rollout groups prompts by length).
        """
        tokens = np.asarray(prompts, dtype=np.int64)
        if tokens.ndim != 2:
            raise ValueError(f"prompts must be 2-D, got {tokens.shape}")
        temperature = max(self.config.temperature, 1e-4)
        for _ in range(n_new_tokens):
            probs = self.model.next_token_distribution(tokens)
            if temperature != 1.0:
                logits = np.log(probs + 1e-12) / temperature
                logits -= logits.max(axis=-1, keepdims=True)
                probs = np.exp(logits)
                probs /= probs.sum(axis=-1, keepdims=True)
            probs = self._filter_distribution(probs)
            cumulative = np.cumsum(probs, axis=-1)
            draws = self.rng.random((tokens.shape[0], 1))
            choice = (cumulative < draws).sum(axis=-1)
            choice = np.minimum(choice, probs.shape[-1] - 1)
            tokens = np.concatenate([tokens, choice[:, None]], axis=1)
        return tokens
