"""Autoregressive generation: temperature, top-k and nucleus sampling.

Generation runs in inference mode (:func:`repro.ml.tensor.no_grad`); PPO
recomputes log-probs with gradients afterwards on the concatenated
prompt+response batch, as TRL does.

When the model exposes the KV-cached fast path
(:meth:`~repro.ml.transformer.GPT2LMModel.prefill` /
:meth:`~repro.ml.transformer.GPT2LMModel.decode_step`), :meth:`Sampler.generate`
prefills the prompt once and then takes O(1)-length decode steps into a
preallocated token buffer — O(T·L) for a whole response instead of the
naive O(T²·L).  Models without the fast path (e.g. test stubs exposing only
``next_token_distribution``) fall back to the full-recompute loop.  Both
paths draw from the RNG identically and share the same softmax/filter
arithmetic, so they produce identical tokens for identical seeds (pinned by
the decode-parity tests).  The residual caveat: the two paths issue
different-shaped matmuls, so probabilities agree to float32 tolerance
(~1e-6) rather than bit-for-bit — a uniform draw landing inside that window
could in principle pick different tokens, though the parity tests and
whole-campaign comparisons have not observed it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class SamplerConfig:
    """Decoding hyper-parameters."""

    temperature: float = 1.0
    top_k: int | None = None
    top_p: float | None = None
    #: Token ids whose probability is forced to zero (e.g. PAD/BOS/EOS when
    #: generating fixed-length fuzzing bodies).
    forbidden_tokens: tuple[int, ...] = ()


class Sampler:
    """Batch sampler over a :class:`~repro.ml.transformer.GPT2LMModel`."""

    def __init__(self, model, config: SamplerConfig | None = None,
                 seed: int = 0, use_cache: bool = True) -> None:
        self.model = model
        self.config = config or SamplerConfig()
        self.rng = np.random.default_rng(seed)
        #: Allow forcing the uncached path (parity tests, baselines).
        self.use_cache = use_cache
        self._hoist(self.config)

    def _hoist(self, config: SamplerConfig) -> None:
        """Precompute per-step constants so the hot loop never rebuilds them.

        ``SamplerConfig`` is frozen, so the snapshot stays valid as long as
        ``self.config`` is the same object; reassigning ``sampler.config``
        is picked up on the next step via the identity check below.
        """
        self._hoisted_config = config
        self._temperature = max(config.temperature, 1e-4)
        forbidden = np.asarray(config.forbidden_tokens, dtype=np.int64)
        self._forbidden = forbidden if forbidden.size else None

    def _filter_distribution(self, probs: np.ndarray) -> np.ndarray:
        """Apply top-k / top-p filtering row-wise and renormalise."""
        config = self.config
        if config is not self._hoisted_config:
            self._hoist(config)
        if (self._forbidden is None and config.top_k is None
                and config.top_p is None):
            # Nothing to filter: the softmax output is already normalised.
            return probs
        filtered = probs.copy()
        if self._forbidden is not None:
            filtered[:, self._forbidden] = 0.0
        if config.top_k is not None and config.top_k < probs.shape[-1]:
            kth = np.partition(filtered, -config.top_k, axis=-1)[
                :, -config.top_k : -config.top_k + 1
            ]
            filtered[filtered < kth] = 0.0
        if config.top_p is not None and config.top_p < 1.0:
            order = np.argsort(-filtered, axis=-1)
            sorted_probs = np.take_along_axis(filtered, order, axis=-1)
            cumulative = np.cumsum(sorted_probs, axis=-1)
            # Keep the smallest prefix with mass >= top_p (always >= 1 token).
            cut = cumulative - sorted_probs >= config.top_p
            sorted_probs[cut] = 0.0
            filtered = np.zeros_like(filtered)
            np.put_along_axis(filtered, order, sorted_probs, axis=-1)
        totals = filtered.sum(axis=-1, keepdims=True)
        # Rows zeroed out entirely (numerical corner) fall back to the input
        # distribution with forbidden tokens still masked; if that is also
        # empty, to uniform over the allowed vocabulary.
        dead = totals.squeeze(-1) <= 0
        if dead.any():
            fallback = probs[dead].copy()
            if self._forbidden is not None:
                fallback[:, self._forbidden] = 0.0
            empty = fallback.sum(axis=-1) <= 0
            if empty.any():
                fallback[empty] = 1.0
                if self._forbidden is not None:
                    fallback[np.ix_(np.flatnonzero(empty), self._forbidden)] = 0.0
            filtered[dead] = fallback
            totals = filtered.sum(axis=-1, keepdims=True)
        return filtered / totals

    def _sample_step(self, probs: np.ndarray) -> np.ndarray:
        """Draw one token per row from a (batch, vocab) distribution."""
        if self.config is not self._hoisted_config:
            self._hoist(self.config)
        temperature = self._temperature
        if temperature != 1.0:
            logits = np.log(probs + 1e-12) / temperature
            logits -= logits.max(axis=-1, keepdims=True)
            probs = np.exp(logits)
            probs /= probs.sum(axis=-1, keepdims=True)
        probs = self._filter_distribution(probs)
        cumulative = np.cumsum(probs, axis=-1)
        draws = self.rng.random((probs.shape[0], 1))
        choice = (cumulative < draws).sum(axis=-1)
        return np.minimum(choice, probs.shape[-1] - 1)

    def generate(
        self,
        prompts: np.ndarray,
        n_new_tokens: int,
    ) -> np.ndarray:
        """Extend each prompt row by ``n_new_tokens`` sampled tokens.

        ``prompts`` is (batch, prompt_len); returns (batch, prompt_len +
        n_new_tokens).  All rows share a length, so no padding/attention
        masking is needed (the PPO rollout groups prompts by length).

        On the KV-cached fast path every *model input* must fit in the
        model's ``max_seq`` (the cache is the position-embedding table's
        length); oversized requests raise ``ValueError`` up front instead
        of failing mid-generation.  The last sampled token is never fed
        back, so the bound is ``prompt_len + n_new_tokens - 1 <= max_seq``
        — exactly what the uncached path enforces implicitly.
        """
        tokens = np.asarray(prompts, dtype=np.int64)
        if tokens.ndim != 2:
            raise ValueError(f"prompts must be 2-D, got {tokens.shape}")
        batch, prompt_len = tokens.shape
        n_new = int(n_new_tokens)
        # One preallocated output buffer, filled in place — no per-step
        # concatenate (which made even the cached loop O(T²) in copies).
        out = np.empty((batch, prompt_len + max(n_new, 0)), dtype=np.int64)
        out[:, :prompt_len] = tokens
        if n_new <= 0 or batch == 0:
            return out
        if self.use_cache and hasattr(self.model, "prefill"):
            max_seq = self.model.config.max_seq
            # The final sampled token is never fed back, so the last model
            # input has prompt_len + n_new - 1 positions — the same bound
            # the uncached path enforces implicitly.
            if prompt_len + n_new - 1 > max_seq:
                raise ValueError(
                    f"prompt ({prompt_len}) + response ({n_new}) exceeds "
                    f"max_seq {max_seq}"
                )
            probs, cache = self.model.prefill(tokens)
            for step in range(n_new):
                choice = self._sample_step(probs)
                out[:, prompt_len + step] = choice
                if step + 1 < n_new:
                    probs = self.model.decode_step(choice[:, None], cache)
        else:
            for step in range(n_new):
                probs = self.model.next_token_distribution(
                    out[:, : prompt_len + step]
                )
                out[:, prompt_len + step] = self._sample_step(probs)
        return out
