"""Per-layer key/value cache for incremental (autoregressive) decoding.

Generation is the hottest loop in the system: every fuzzing campaign and
every PPO rollout samples thousands of tokens, and the naive path re-runs
the full transformer over prompt+response for each one — O(T²·L) in
sequence length.  The KV cache removes the redundancy: the keys and values
of every already-processed position are stored once per attention layer, so
a decode step only projects the *new* token(s) and attends from them
against the cached history — O(T·L) for a whole sequence.

The cache is deliberately dumb and fast:

- Storage is preallocated to ``(batch, n_heads, max_seq, head_dim)`` per
  layer at construction, so decode steps never reallocate or concatenate.
- Everything is raw ``float32`` numpy — no autograd :class:`~repro.ml.tensor.Tensor`
  wrapping.  Generation always runs in inference mode, so building a graph
  would be pure overhead (see the two-path design note in
  :mod:`repro.ml.transformer`).
- Writes happen per layer via :meth:`KVCache.append`; the shared position
  counter advances once per model step via :meth:`KVCache.advance` after
  all layers have written their rows.

Overflow past ``max_seq`` raises instead of rolling over: the model's
position embedding table ends there, so silently wrapping would produce
garbage positions.
"""

from __future__ import annotations

import numpy as np


class KVCache:
    """Preallocated per-layer K/V storage for one generation batch."""

    __slots__ = ("max_seq", "length", "_keys", "_values")

    def __init__(self, n_layers: int, batch: int, n_heads: int,
                 max_seq: int, head_dim: int) -> None:
        if min(n_layers, batch, n_heads, max_seq, head_dim) <= 0:
            raise ValueError(
                "KVCache dimensions must be positive, got "
                f"layers={n_layers} batch={batch} heads={n_heads} "
                f"max_seq={max_seq} head_dim={head_dim}"
            )
        self.max_seq = max_seq
        #: Number of positions already decoded into the cache (shared by all
        #: layers; bumped by :meth:`advance` once per model step).
        self.length = 0
        shape = (batch, n_heads, max_seq, head_dim)
        self._keys = [np.empty(shape, dtype=np.float32) for _ in range(n_layers)]
        self._values = [np.empty(shape, dtype=np.float32) for _ in range(n_layers)]

    # -- introspection ---------------------------------------------------------

    @property
    def n_layers(self) -> int:
        return len(self._keys)

    @property
    def batch(self) -> int:
        return self._keys[0].shape[0]

    @property
    def n_heads(self) -> int:
        return self._keys[0].shape[1]

    @property
    def head_dim(self) -> int:
        return self._keys[0].shape[3]

    @property
    def remaining(self) -> int:
        """Positions still available before the cache is full."""
        return self.max_seq - self.length

    def keys(self, layer: int) -> np.ndarray:
        """The valid key rows of ``layer``: (batch, heads, length, head_dim)."""
        return self._keys[layer][:, :, : self.length]

    def values(self, layer: int) -> np.ndarray:
        """The valid value rows of ``layer``: (batch, heads, length, head_dim)."""
        return self._values[layer][:, :, : self.length]

    # -- the write path --------------------------------------------------------

    def append(self, layer: int, k: np.ndarray, v: np.ndarray):
        """Write new K/V rows for ``layer`` and return the extended views.

        ``k``/``v`` are ``(batch, n_heads, t_new, head_dim)``.  The rows are
        written at offset :attr:`length` (which :meth:`advance` bumps once
        per model step, after every layer has appended), and the returned
        arrays are ``(batch, n_heads, length + t_new, head_dim)`` views over
        the preallocated storage — no copies on the decode hot path.
        """
        if k.shape != v.shape:
            raise ValueError(f"key/value shape mismatch: {k.shape} vs {v.shape}")
        store = self._keys[layer]
        expected = (store.shape[0], store.shape[1], k.shape[2], store.shape[3])
        if k.shape != expected:
            raise ValueError(f"expected K/V rows {expected}, got {k.shape}")
        t_new = k.shape[2]
        end = self.length + t_new
        if end > self.max_seq:
            raise ValueError(
                f"KV cache overflow: {self.length} cached + {t_new} new "
                f"exceeds max_seq {self.max_seq}"
            )
        store[:, :, self.length : end] = k
        self._values[layer][:, :, self.length : end] = v
        return store[:, :, :end], self._values[layer][:, :, :end]

    def advance(self, t_new: int) -> None:
        """Commit ``t_new`` freshly-appended positions (once per model step)."""
        if self.length + t_new > self.max_seq:
            raise ValueError(
                f"KV cache overflow: cannot advance {self.length} by {t_new} "
                f"past max_seq {self.max_seq}"
            )
        self.length += t_new

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"KVCache(layers={self.n_layers}, batch={self.batch}, "
            f"heads={self.n_heads}, length={self.length}/{self.max_seq})"
        )
