"""Causal multi-head self-attention (GPT-2 style, pre-LN blocks).

Two forward paths live side by side (see :mod:`repro.ml.kvcache`):

- ``__call__`` — the training path on autograd :class:`~repro.ml.tensor.Tensor`,
  recomputing the full (T, T) attention every call.
- ``forward_cached`` — the inference fast path on raw numpy arrays, which
  appends the new positions' K/V rows to a :class:`~repro.ml.kvcache.KVCache`
  and attends only *from* the new positions against the cached history.

Both paths share the same arithmetic (same softmax formulation, same mask
values), so cached and uncached decoding agree to float32 tolerance and in
practice produce identical tokens (see the caveat in :mod:`repro.ml.sampling`).
"""

from __future__ import annotations

import functools

import numpy as np

from repro.ml.kvcache import KVCache
from repro.ml.layers import LayerNorm, Linear, MLP, Parameterized
from repro.ml.tensor import Tensor

_NEG_INF = np.float32(-1e9)


@functools.lru_cache(maxsize=None)
def causal_mask(length: int) -> np.ndarray:
    """Additive attention mask: 0 on/below the diagonal, -1e9 above.

    Memoized per length (generation calls this every step otherwise); the
    returned array is read-only — treat it as shared.
    """
    mask = np.triu(np.full((length, length), _NEG_INF, dtype=np.float32), k=1)
    mask.flags.writeable = False
    return mask


@functools.lru_cache(maxsize=None)
def extended_causal_mask(length: int, past: int) -> np.ndarray:
    """Causal mask for ``length`` new positions after ``past`` cached ones.

    Shape (length, past + length): new position i may attend everything up
    to global position past + i.  ``past=0`` reduces to :func:`causal_mask`.
    Memoized and read-only, like :func:`causal_mask`.
    """
    if past == 0:
        return causal_mask(length)
    mask = np.zeros((length, past + length), dtype=np.float32)
    mask[:, past:] = causal_mask(length)
    mask.flags.writeable = False
    return mask


class CausalSelfAttention(Parameterized):
    """Multi-head scaled-dot-product attention with a causal mask."""

    def __init__(self, dim: int, n_heads: int, rng: np.random.Generator) -> None:
        if dim % n_heads:
            raise ValueError(f"dim {dim} not divisible by heads {n_heads}")
        self.dim = dim
        self.n_heads = n_heads
        self.head_dim = dim // n_heads
        self.qkv = Linear(dim, 3 * dim, rng)
        self.proj = Linear(dim, dim, rng)

    def __call__(self, x: Tensor) -> Tensor:
        batch, length, dim = x.shape
        qkv = self.qkv(x)  # (B, T, 3D)
        qkv = qkv.reshape(batch, length, 3, self.n_heads, self.head_dim)
        qkv = qkv.transpose(2, 0, 3, 1, 4)  # (3, B, H, T, hd)
        q, k, v = qkv[0], qkv[1], qkv[2]
        scale = np.float32(1.0 / np.sqrt(self.head_dim))
        scores = q.matmul(k.swap_last()) * scale  # (B, H, T, T)
        scores = scores + Tensor(causal_mask(length))
        attn = scores.log_softmax().exp()
        out = attn.matmul(v)  # (B, H, T, hd)
        out = out.transpose(0, 2, 1, 3).reshape(batch, length, dim)
        return self.proj(out)

    def forward_cached(self, x: np.ndarray, cache: KVCache,
                       layer: int) -> np.ndarray:
        """Incremental attention: append new K/V rows, attend from them only.

        ``x`` is (batch, t_new, dim) of *new* positions on top of
        ``cache.length`` already-cached ones.  Raw numpy throughout — no
        autograd graph.  Numerically identical to ``__call__`` restricted to
        the new rows.
        """
        batch, t_new, dim = x.shape
        qkv = self.qkv.forward_np(x)  # (B, Tn, 3D)
        qkv = qkv.reshape(batch, t_new, 3, self.n_heads, self.head_dim)
        qkv = qkv.transpose(2, 0, 3, 1, 4)  # (3, B, H, Tn, hd)
        q = qkv[0]
        keys, values = cache.append(layer, qkv[1], qkv[2])  # (B, H, L+Tn, hd)
        scale = np.float32(1.0 / np.sqrt(self.head_dim))
        scores = (q @ np.swapaxes(keys, -1, -2)) * scale  # (B, H, Tn, L+Tn)
        if t_new > 1:
            scores = scores + extended_causal_mask(t_new,
                                                   keys.shape[2] - t_new)
        # Same formulation as Tensor.log_softmax().exp() for bit-parity.
        shifted = scores - scores.max(axis=-1, keepdims=True)
        log_z = np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
        attn = np.exp(shifted - log_z)
        out = attn @ values  # (B, H, Tn, hd)
        out = out.transpose(0, 2, 1, 3).reshape(batch, t_new, dim)
        return self.proj.forward_np(out)


class TransformerBlock(Parameterized):
    """Pre-LN transformer block: x + MHA(LN(x)); x + MLP(LN(x))."""

    def __init__(self, dim: int, n_heads: int, mlp_ratio: int,
                 rng: np.random.Generator) -> None:
        self.ln1 = LayerNorm(dim)
        self.attn = CausalSelfAttention(dim, n_heads, rng)
        self.ln2 = LayerNorm(dim)
        self.mlp = MLP(dim, mlp_ratio * dim, rng)

    def __call__(self, x: Tensor) -> Tensor:
        x = x + self.attn(self.ln1(x))
        x = x + self.mlp(self.ln2(x))
        return x

    def forward_cached(self, x: np.ndarray, cache: KVCache,
                       layer: int) -> np.ndarray:
        """Graph-free block forward over new positions (inference fast path)."""
        x = x + self.attn.forward_cached(self.ln1.forward_np(x), cache, layer)
        x = x + self.mlp.forward_np(self.ln2.forward_np(x))
        return x
