"""Causal multi-head self-attention (GPT-2 style, pre-LN blocks)."""

from __future__ import annotations

import numpy as np

from repro.ml.layers import LayerNorm, Linear, MLP, Parameterized
from repro.ml.tensor import Tensor

_NEG_INF = np.float32(-1e9)


def causal_mask(length: int) -> np.ndarray:
    """Additive attention mask: 0 on/below the diagonal, -1e9 above."""
    mask = np.triu(np.full((length, length), _NEG_INF, dtype=np.float32), k=1)
    return mask


class CausalSelfAttention(Parameterized):
    """Multi-head scaled-dot-product attention with a causal mask."""

    def __init__(self, dim: int, n_heads: int, rng: np.random.Generator) -> None:
        if dim % n_heads:
            raise ValueError(f"dim {dim} not divisible by heads {n_heads}")
        self.dim = dim
        self.n_heads = n_heads
        self.head_dim = dim // n_heads
        self.qkv = Linear(dim, 3 * dim, rng)
        self.proj = Linear(dim, dim, rng)

    def __call__(self, x: Tensor) -> Tensor:
        batch, length, dim = x.shape
        qkv = self.qkv(x)  # (B, T, 3D)
        qkv = qkv.reshape(batch, length, 3, self.n_heads, self.head_dim)
        qkv = qkv.transpose(2, 0, 3, 1, 4)  # (3, B, H, T, hd)
        q, k, v = qkv[0], qkv[1], qkv[2]
        scale = 1.0 / np.sqrt(self.head_dim)
        scores = q.matmul(k.swap_last()) * scale  # (B, H, T, T)
        scores = scores + Tensor(causal_mask(length))
        attn = scores.log_softmax().exp()
        out = attn.matmul(v)  # (B, H, T, hd)
        out = out.transpose(0, 2, 1, 3).reshape(batch, length, dim)
        return self.proj(out)


class TransformerBlock(Parameterized):
    """Pre-LN transformer block: x + MHA(LN(x)); x + MLP(LN(x))."""

    def __init__(self, dim: int, n_heads: int, mlp_ratio: int,
                 rng: np.random.Generator) -> None:
        self.ln1 = LayerNorm(dim)
        self.attn = CausalSelfAttention(dim, n_heads, rng)
        self.ln2 = LayerNorm(dim)
        self.mlp = MLP(dim, mlp_ratio * dim, rng)

    def __call__(self, x: Tensor) -> Tensor:
        x = x + self.attn(self.ln1(x))
        x = x + self.mlp(self.ln2(x))
        return x
