"""Optimizers: Adam with optional gradient clipping."""

from __future__ import annotations

import numpy as np

from repro.ml.tensor import Tensor


class Adam:
    """Standard Adam (Kingma & Ba) with bias correction.

    Parameters are the live :class:`Tensor` objects; :meth:`step` consumes
    and clears their ``grad`` buffers.
    """

    def __init__(
        self,
        params: list[Tensor],
        lr: float = 3e-4,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        grad_clip: float | None = 1.0,
    ) -> None:
        self.params = list(params)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.grad_clip = grad_clip
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def zero_grad(self) -> None:
        for param in self.params:
            param.grad = None

    def _global_norm(self) -> float:
        total = 0.0
        for param in self.params:
            if param.grad is not None:
                total += float((param.grad.astype(np.float64) ** 2).sum())
        return float(np.sqrt(total))

    def step(self) -> float:
        """Apply one update; returns the pre-clip global gradient norm."""
        norm = self._global_norm()
        scale = 1.0
        if self.grad_clip is not None and norm > self.grad_clip and norm > 0:
            scale = self.grad_clip / norm
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for i, param in enumerate(self.params):
            if param.grad is None:
                continue
            grad = param.grad * scale
            self._m[i] = self.beta1 * self._m[i] + (1 - self.beta1) * grad
            self._v[i] = self.beta2 * self._v[i] + (1 - self.beta2) * grad * grad
            m_hat = self._m[i] / bias1
            v_hat = self._v[i] / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
        self.zero_grad()
        return norm
