"""Proximal Policy Optimization for language models (paper §II-B1, §IV-C2/3).

TRL-style PPO: rollouts are sampled from the current policy; rewards are the
scalar sequence reward (disassembler or coverage agent) placed on the final
response token, plus a per-token KL penalty against the frozen step-1
reference model (which keeps the policy anchored to the learned machine
language).  Advantages come from GAE(λ) over token positions using the value
head; the update is the clipped surrogate objective with a clipped value
loss and an entropy bonus.

The trainer reports the telemetry the paper monitors during training: "the
PPO algorithm's loss, the Kullback-Leibler divergence between optimization
policies, and the mean rewards assigned at each step" (§IV-C2).

Rollout generation goes through :class:`~repro.ml.sampling.Sampler`, which
uses the model's KV-cached prefill/decode fast path — each PPO step's
sampling is O(T·L) per sequence instead of re-running the full transformer
per token.  The gradient passes (``logits_and_values``) stay on the
uncached autograd path, which needs every position anyway.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ml.optim import Adam
from repro.ml.sampling import Sampler, SamplerConfig
from repro.ml.tensor import Tensor, no_grad


@dataclass(frozen=True)
class PPOConfig:
    """PPO hyper-parameters (TRL-flavoured defaults, scaled down)."""

    clip_ratio: float = 0.2
    value_clip: float = 0.2
    value_coef: float = 0.5
    entropy_coef: float = 0.01
    kl_coef: float = 0.1
    gamma: float = 1.0
    lam: float = 0.95
    lr: float = 1e-4
    inner_epochs: int = 2
    minibatch_size: int = 8
    whiten_advantages: bool = True
    grad_clip: float = 1.0
    temperature: float = 1.0
    top_k: int | None = 50
    top_p: float | None = None


@dataclass
class RolloutBatch:
    """One generation batch with everything PPO needs to learn from it."""

    tokens: np.ndarray          # (B, P+R) prompt + response token ids
    prompt_len: int             # P
    old_logprobs: np.ndarray    # (B, R) log π_old(response tokens)
    ref_logprobs: np.ndarray    # (B, R) log π_ref(response tokens)
    values: np.ndarray          # (B, R) V_old at response positions
    seq_rewards: np.ndarray     # (B,) scalar environment rewards

    @property
    def response_len(self) -> int:
        return self.tokens.shape[1] - self.prompt_len


@dataclass
class PPOStats:
    """Telemetry of one PPO step (the paper's monitored quantities)."""

    mean_reward: float
    mean_kl: float
    policy_loss: float
    value_loss: float
    entropy: float
    total_loss: float
    clip_fraction: float


@dataclass
class PPOHistory:
    """Across-steps telemetry."""

    steps: list[PPOStats] = field(default_factory=list)

    def append(self, stats: PPOStats) -> None:
        self.steps.append(stats)

    @property
    def mean_rewards(self) -> list[float]:
        return [s.mean_reward for s in self.steps]

    @property
    def kls(self) -> list[float]:
        return [s.mean_kl for s in self.steps]

    @property
    def losses(self) -> list[float]:
        return [s.total_loss for s in self.steps]


class PPOTrainer:
    """PPO over a :class:`~repro.ml.transformer.GPT2LMModel` policy.

    Parameters
    ----------
    model:
        The trainable policy (with value head).
    ref_model:
        Frozen reference for the KL penalty — in the pipeline, a clone of the
        model as it stood when the PPO stage began.
    reward_fn:
        ``words -> float`` deterministic reward agent; applied to the decoded
        *response* (not the prompt).
    tokenizer:
        Used to decode responses into instruction words for the reward.
    """

    def __init__(self, model, ref_model, reward_fn, tokenizer,
                 config: PPOConfig | None = None, seed: int = 0) -> None:
        self.model = model
        self.ref_model = ref_model
        self.reward_fn = reward_fn
        self.tokenizer = tokenizer
        self.config = config or PPOConfig()
        self.rng = np.random.default_rng(seed)
        self.sampler = Sampler(
            model,
            SamplerConfig(temperature=self.config.temperature,
                          top_k=self.config.top_k, top_p=self.config.top_p),
            seed=seed,
        )
        self.optimizer = Adam(model.parameters(), lr=self.config.lr,
                              grad_clip=self.config.grad_clip)
        self.history = PPOHistory()

    # -- rollout -----------------------------------------------------------------

    def _response_logprobs_values(self, model, tokens: np.ndarray,
                                  prompt_len: int):
        """Log-probs and values for the response positions (no grad)."""
        with no_grad():
            logits, values = model.logits_and_values(tokens[:, :-1])
            log_probs = logits.log_softmax()
        picked = np.take_along_axis(
            log_probs.data, tokens[:, 1:, None], axis=-1
        ).squeeze(-1)
        # Response tokens are positions prompt_len .. end; their predictions
        # come from input positions prompt_len-1 .. end-1, i.e. the last R
        # entries of the shifted arrays.
        response = tokens.shape[1] - prompt_len
        return picked[:, -response:], values.data[:, -response:]

    def rollout(self, prompts: np.ndarray, n_new_tokens: int) -> RolloutBatch:
        """Generate responses and package them with old/ref statistics.

        Generation takes the sampler's KV-cached fast path; the old/ref
        log-prob recomputations below need all positions at once, so they
        use the regular (uncached) forward under ``no_grad``.
        """
        prompts = np.asarray(prompts, dtype=np.int64)
        tokens = self.sampler.generate(prompts, n_new_tokens)
        old_logprobs, values = self._response_logprobs_values(
            self.model, tokens, prompts.shape[1]
        )
        ref_logprobs, _ = self._response_logprobs_values(
            self.ref_model, tokens, prompts.shape[1]
        )
        seq_rewards = np.zeros(tokens.shape[0], dtype=np.float32)
        for i in range(tokens.shape[0]):
            response_tokens = tokens[i, prompts.shape[1] :]
            words = self.tokenizer.decode_tokens(response_tokens.tolist())
            seq_rewards[i] = self.reward_fn(words)
        return RolloutBatch(
            tokens=tokens,
            prompt_len=prompts.shape[1],
            old_logprobs=old_logprobs.astype(np.float32),
            ref_logprobs=ref_logprobs.astype(np.float32),
            values=values.astype(np.float32),
            seq_rewards=seq_rewards,
        )

    # -- advantage estimation --------------------------------------------------------

    def _token_rewards(self, batch: RolloutBatch) -> np.ndarray:
        """Per-token rewards: -kl_coef * KL-to-reference, + scalar at the end."""
        kl = batch.old_logprobs - batch.ref_logprobs
        rewards = -self.config.kl_coef * kl
        rewards[:, -1] += batch.seq_rewards
        return rewards.astype(np.float32)

    def _gae(self, rewards: np.ndarray, values: np.ndarray):
        """Generalised advantage estimation over token positions."""
        gamma, lam = self.config.gamma, self.config.lam
        batch, length = rewards.shape
        advantages = np.zeros_like(rewards)
        last = np.zeros(batch, dtype=np.float32)
        for t in reversed(range(length)):
            next_value = values[:, t + 1] if t + 1 < length else 0.0
            delta = rewards[:, t] + gamma * next_value - values[:, t]
            last = delta + gamma * lam * last
            advantages[:, t] = last
        returns = advantages + values
        return advantages, returns

    # -- optimisation ------------------------------------------------------------------

    def step(self, prompts: np.ndarray, n_new_tokens: int) -> PPOStats:
        """One full PPO iteration: rollout + inner-epoch updates."""
        batch = self.rollout(prompts, n_new_tokens)
        token_rewards = self._token_rewards(batch)
        advantages, returns = self._gae(token_rewards, batch.values)
        if self.config.whiten_advantages and advantages.size > 1:
            advantages = (advantages - advantages.mean()) / (
                advantages.std() + 1e-8
            )

        stats_accumulator: list[tuple[float, float, float, float, float]] = []
        n_rows = batch.tokens.shape[0]
        for _ in range(self.config.inner_epochs):
            order = self.rng.permutation(n_rows)
            for start in range(0, n_rows, self.config.minibatch_size):
                rows = order[start : start + self.config.minibatch_size]
                stats_accumulator.append(
                    self._update_minibatch(batch, rows, advantages, returns)
                )

        mean = np.mean(np.asarray(stats_accumulator), axis=0)
        stats = PPOStats(
            mean_reward=float(batch.seq_rewards.mean()),
            mean_kl=float((batch.old_logprobs - batch.ref_logprobs).mean()),
            policy_loss=float(mean[0]),
            value_loss=float(mean[1]),
            entropy=float(mean[2]),
            total_loss=float(mean[3]),
            clip_fraction=float(mean[4]),
        )
        self.history.append(stats)
        return stats

    def _update_minibatch(self, batch: RolloutBatch, rows: np.ndarray,
                          advantages: np.ndarray, returns: np.ndarray):
        config = self.config
        tokens = batch.tokens[rows]
        response = batch.response_len

        logits, values = self.model.logits_and_values(tokens[:, :-1])
        log_probs_all = logits.log_softmax()
        picked = log_probs_all.gather_last(tokens[:, 1:])
        new_logprobs = picked[:, -response:]
        new_values = values[:, -response:]

        old_logprobs = Tensor(batch.old_logprobs[rows])
        old_values = Tensor(batch.values[rows])
        advantage = Tensor(advantages[rows])
        target = Tensor(returns[rows])

        # Clipped surrogate policy loss.
        ratio = (new_logprobs - old_logprobs).exp()
        unclipped = ratio * advantage
        clipped = ratio.clip(1.0 - config.clip_ratio, 1.0 + config.clip_ratio) * advantage
        policy_loss = -(unclipped.minimum(clipped).mean())

        # Clipped value loss (PPO2 style).
        values_clipped = old_values + (new_values - old_values).clip(
            -config.value_clip, config.value_clip
        )
        value_loss_raw = (new_values - target) ** 2.0
        value_loss_clip = (values_clipped - target) ** 2.0
        # Elementwise max via min of negatives.
        value_loss = 0.5 * ((-((-value_loss_raw).minimum(-value_loss_clip))).mean())

        # Entropy of the response distribution (exploration bonus).
        response_logits = log_probs_all[:, -response:, :]
        entropy = -(response_logits.exp() * response_logits).sum(axis=-1).mean()

        total = (
            policy_loss
            + config.value_coef * value_loss
            - config.entropy_coef * entropy
        )
        total.backward()
        self.optimizer.step()

        clip_fraction = float(
            (np.abs(ratio.data - 1.0) > config.clip_ratio).mean()
        )
        return (
            policy_loss.item(),
            value_loss.item(),
            entropy.item(),
            total.item(),
            clip_fraction,
        )
