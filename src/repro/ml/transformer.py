"""The GPT-2-family causal language model, with an optional value head.

This is the paper's "GPT2 Model" (Figure 1b): trained from scratch on machine
language in step 1, then PPO-tuned in steps 2–3.  The value head (a scalar
projection of the final hidden state per position) exists for PPO's critic;
plain LM training ignores it.

Two-path design
---------------
The model exposes two forwards with identical arithmetic:

- **Training path** — :meth:`GPT2LMModel.hidden_states` / :meth:`logits` /
  :meth:`logits_and_values` on autograd :class:`~repro.ml.tensor.Tensor`;
  recomputes the whole sequence every call (teacher forcing needs every
  position anyway).
- **Inference fast path** — :meth:`GPT2LMModel.prefill` +
  :meth:`decode_step` on raw numpy with a :class:`~repro.ml.kvcache.KVCache`:
  prefill runs the prompt once and fills the cache; each decode step then
  costs O(L) instead of O(T·L).  Generation always runs inside ``no_grad``,
  so skipping the graph entirely is free.  The decode-parity tests pin the
  two paths to token-identical outputs.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

import numpy as np

from repro.ml.attention import TransformerBlock
from repro.ml.kvcache import KVCache
from repro.ml.layers import Embedding, LayerNorm, Linear, Parameterized
from repro.ml.tensor import Tensor, no_grad


@dataclass(frozen=True)
class GPT2Config:
    """Model hyper-parameters.

    The defaults are a deliberately small config that trains in minutes on a
    CPU with the numpy engine; benches/tests shrink or grow it as needed.
    """

    vocab_size: int = 512
    max_seq: int = 96
    dim: int = 64
    n_layers: int = 2
    n_heads: int = 2
    mlp_ratio: int = 4
    tie_embeddings: bool = True


def _softmax_rows(logits: np.ndarray) -> np.ndarray:
    """Stable softmax over the last axis of a raw logits array.

    Shared by the uncached ``next_token_distribution`` and the KV-cached
    ``_decode_forward`` so the two paths cannot drift numerically.
    """
    row = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(row)
    return exp / exp.sum(axis=-1, keepdims=True)


class GPT2LMModel(Parameterized):
    """Causal LM: token + position embeddings, pre-LN blocks, tied LM head."""

    def __init__(self, config: GPT2Config, seed: int = 0) -> None:
        self.config = config
        rng = np.random.default_rng(seed)
        self.tok_emb = Embedding(config.vocab_size, config.dim, rng)
        self.pos_emb = Embedding(config.max_seq, config.dim, rng)
        self.blocks = [
            TransformerBlock(config.dim, config.n_heads, config.mlp_ratio, rng)
            for _ in range(config.n_layers)
        ]
        self.ln_final = LayerNorm(config.dim)
        if not config.tie_embeddings:
            self.lm_head = Linear(config.dim, config.vocab_size, rng)
        else:
            self.lm_head = None
        self.value_head = Linear(config.dim, 1, rng)

    # -- forward -----------------------------------------------------------------

    def hidden_states(self, tokens: np.ndarray) -> Tensor:
        """Final hidden states for a (batch, seq) token array."""
        tokens = np.asarray(tokens)
        if tokens.ndim != 2:
            raise ValueError(f"expected (batch, seq) tokens, got {tokens.shape}")
        length = tokens.shape[1]
        if length > self.config.max_seq:
            raise ValueError(f"sequence {length} exceeds max_seq {self.config.max_seq}")
        x = self.tok_emb(tokens) + self.pos_emb(np.arange(length))
        for block in self.blocks:
            x = block(x)
        return self.ln_final(x)

    def logits(self, tokens: np.ndarray) -> Tensor:
        """LM logits, shape (batch, seq, vocab)."""
        hidden = self.hidden_states(tokens)
        if self.lm_head is not None:
            return self.lm_head(hidden)
        return hidden.matmul(self.tok_emb.weight.transpose())

    def logits_and_values(self, tokens: np.ndarray) -> tuple[Tensor, Tensor]:
        """(logits, per-position value estimates) — PPO's actor-critic pass."""
        hidden = self.hidden_states(tokens)
        if self.lm_head is not None:
            logits = self.lm_head(hidden)
        else:
            logits = hidden.matmul(self.tok_emb.weight.transpose())
        values = self.value_head(hidden).reshape(*tokens.shape)
        return logits, values

    # -- losses / inference helpers -------------------------------------------------

    def lm_loss(self, tokens: np.ndarray) -> Tensor:
        """Next-token cross-entropy over the sequence (teacher forcing)."""
        inputs = tokens[:, :-1]
        targets = tokens[:, 1:]
        log_probs = self.logits(inputs).log_softmax()
        picked = log_probs.gather_last(targets)
        return -picked.mean()

    def next_token_distribution(self, tokens: np.ndarray) -> np.ndarray:
        """Inference-mode softmax over the next token, shape (batch, vocab)."""
        with no_grad():
            logits = self.logits(tokens)
        return _softmax_rows(logits.data[:, -1, :])

    # -- KV-cached inference fast path ---------------------------------------------

    def new_cache(self, batch: int) -> KVCache:
        """An empty KV cache sized for this model and a ``batch`` of rows."""
        return KVCache(
            n_layers=len(self.blocks),
            batch=batch,
            n_heads=self.config.n_heads,
            max_seq=self.config.max_seq,
            head_dim=self.config.dim // self.config.n_heads,
        )

    def prefill(self, tokens: np.ndarray) -> tuple[np.ndarray, KVCache]:
        """Run the prompt once, filling a fresh KV cache.

        Returns ``(next-token probs, cache)`` — the probs are what
        :meth:`next_token_distribution` would return for the same tokens,
        and the cache holds every prompt position's K/V rows so subsequent
        :meth:`decode_step` calls cost O(L) rather than O(T·L).
        """
        tokens = np.asarray(tokens)
        if tokens.ndim != 2:
            raise ValueError(f"expected (batch, seq) tokens, got {tokens.shape}")
        cache = self.new_cache(tokens.shape[0])
        return self._decode_forward(tokens, cache), cache

    def decode_step(self, new_tokens: np.ndarray, cache: KVCache) -> np.ndarray:
        """Extend a prefilled cache by ``new_tokens`` (batch, t_new).

        Only the new positions are projected and attended *from*; the
        returned array is the next-token distribution after the last new
        position, shape (batch, vocab).
        """
        new_tokens = np.asarray(new_tokens)
        if new_tokens.ndim != 2:
            raise ValueError(
                f"expected (batch, t_new) tokens, got {new_tokens.shape}"
            )
        if new_tokens.shape[0] != cache.batch:
            raise ValueError(
                f"batch mismatch: cache {cache.batch}, tokens {new_tokens.shape[0]}"
            )
        return self._decode_forward(new_tokens, cache)

    def _decode_forward(self, tokens: np.ndarray, cache: KVCache) -> np.ndarray:
        """Shared prefill/decode body: raw numpy, no autograd graph."""
        start = cache.length
        length = tokens.shape[1]
        if start + length > self.config.max_seq:
            raise ValueError(
                f"sequence {start + length} exceeds max_seq {self.config.max_seq}"
            )
        positions = np.arange(start, start + length)
        x = self.tok_emb.weight.data[tokens] + self.pos_emb.weight.data[positions]
        for index, block in enumerate(self.blocks):
            x = block.forward_cached(x, cache, index)
        cache.advance(length)
        # Only the last position's logits matter for sampling; layernorm is
        # per-position, so restricting to it first is exact and cheaper.
        last_hidden = self.ln_final.forward_np(x[:, -1, :])
        if self.lm_head is not None:
            logits = self.lm_head.forward_np(last_hidden)
        else:
            logits = last_hidden @ self.tok_emb.weight.data.T
        return _softmax_rows(logits)

    # -- cloning (reference models for PPO) --------------------------------------------

    def clone(self) -> "GPT2LMModel":
        """Deep copy with identical weights (used as the frozen PPO reference)."""
        twin = GPT2LMModel(self.config)
        twin.load_state_arrays(self.state_arrays())
        return twin

    def save(self, path) -> None:
        arrays = {f"p{i:05d}": a for i, a in enumerate(self.state_arrays())}
        arrays["_config"] = np.array([
            self.config.vocab_size, self.config.max_seq,
            self.config.dim, self.config.n_layers,
            self.config.n_heads, self.config.mlp_ratio,
            int(self.config.tie_embeddings),
        ])
        np.savez_compressed(path, **arrays)

    @classmethod
    def load(cls, path) -> "GPT2LMModel":
        with np.load(path) as payload:
            raw = payload["_config"]
            config = GPT2Config(
                vocab_size=int(raw[0]), max_seq=int(raw[1]), dim=int(raw[2]),
                n_layers=int(raw[3]), n_heads=int(raw[4]), mlp_ratio=int(raw[5]),
                tie_embeddings=bool(raw[6]),
            )
            model = cls(config)
            keys = sorted(k for k in payload.files if k != "_config")
            arrays = [payload[k] for k in keys]
        model.load_state_arrays(arrays)
        return model
