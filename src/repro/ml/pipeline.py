"""The three-step ChatFuzz training pipeline (paper Figure 1b).

1. **Initial Training** — train the tokenizer on the corpus and the GPT-2
   model with unsupervised next-token prediction, learning the machine
   language's structure.
2. **Model Language Cleanup** — PPO with the *disassembler* as deterministic
   reward agent (Eq. 1), removing illegal instruction combinations.
3. **Model Optimization** — PPO with the *coverage* reward computed from RTL
   simulation of each generation, steering the model toward unexplored
   hardware behaviour.

Prompts for both RL steps follow §IV-C2: the first 2–5 instructions of a
corpus sample, which the model must complete.

:class:`LLMInputGenerator` wraps the trained model for the fuzzing loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dataset.corpus import Corpus
from repro.ml.lm_training import LMTrainConfig, LMTrainer, LMTrainResult
from repro.ml.ppo import PPOConfig, PPOHistory, PPOTrainer
from repro.ml.rewards import CoverageReward, DisassemblerReward
from repro.ml.sampling import Sampler, SamplerConfig
from repro.ml.tokenizer import BOS, EOS, PAD, HalfwordTokenizer
from repro.ml.transformer import GPT2Config, GPT2LMModel


@dataclass
class PipelineConfig:
    """End-to-end configuration; defaults are laptop-scale (see DESIGN.md)."""

    # Dataset (paper: ~500K vectors from the Linux kernel; 51.2K RL samples).
    corpus_functions: int = 300
    corpus_seed: int = 1

    # Tokenizer / model.
    tokenizer_max_vocab: int | None = 2048
    model: GPT2Config = field(default_factory=GPT2Config)
    model_seed: int = 0

    # Step 1.
    lm: LMTrainConfig = field(default_factory=LMTrainConfig)

    # Steps 2 and 3 (paper: 30 and 15 epochs respectively).
    ppo: PPOConfig = field(default_factory=PPOConfig)
    step2_steps: int = 12
    step3_steps: int = 6
    ppo_batch_size: int = 16
    prompt_instructions: tuple[int, int] = (2, 5)
    response_instructions: int = 16
    seed: int = 0


@dataclass
class PipelineResult:
    """Telemetry of a full pipeline run."""

    lm_result: LMTrainResult | None = None
    step2_history: PPOHistory | None = None
    step3_history: PPOHistory | None = None
    step3_coverage_percent: float = 0.0


class PromptSampler:
    """Samples PPO prompts: the first 2–5 instructions of corpus entries.

    Every batch uses a single prompt length so rows stay rectangular (the
    sampler and PPO then need no padding masks).
    """

    def __init__(self, corpus: Corpus, tokenizer, bounds: tuple[int, int],
                 seed: int = 0) -> None:
        self.corpus = corpus
        self.tokenizer = tokenizer
        self.bounds = bounds
        self.rng = np.random.default_rng(seed)

    def sample(self, batch_size: int) -> tuple[np.ndarray, int]:
        """Returns (token batch, n_prompt_instructions)."""
        lo, hi = self.bounds
        n_instr = int(self.rng.integers(lo, hi + 1))
        rows = []
        while len(rows) < batch_size:
            entry = self.corpus[int(self.rng.integers(0, len(self.corpus)))]
            if len(entry) < n_instr:
                continue
            tokens = self.tokenizer.encode_words(entry[:n_instr], add_bos=True)
            rows.append(tokens)
        return np.asarray(rows, dtype=np.int64), n_instr


class LLMInputGenerator:
    """The trained model, packaged as the fuzzing loop's input generator.

    ``generate_batch(n)`` returns ``n`` test bodies (lists of instruction
    words): prompt instructions + the model's completion, exactly how the
    paper's fuzzer builds test vectors.

    Batches are produced on the sampler's KV-cached decode fast path, so
    campaign throughput scales linearly (not quadratically) with the test
    body length — this is the fuzzer's hottest loop.
    """

    def __init__(self, model, tokenizer, corpus: Corpus,
                 prompt_bounds: tuple[int, int] = (2, 5),
                 response_instructions: int = 16,
                 sampler_config: SamplerConfig | None = None,
                 seed: int = 0) -> None:
        self.model = model
        self.tokenizer = tokenizer
        self.prompt_sampler = PromptSampler(corpus, tokenizer, prompt_bounds,
                                            seed=seed)
        self.response_instructions = response_instructions
        # Specials are suppressed so every generated body has the full,
        # TheHuzz-comparable instruction count (the paper holds instruction
        # counts equal across fuzzers).
        default_config = SamplerConfig(top_k=50,
                                       forbidden_tokens=(PAD, BOS, EOS))
        self.sampler = Sampler(model, sampler_config or default_config,
                               seed=seed + 1)

    def generate_batch(self, n: int) -> list[list[int]]:
        prompts, n_prompt_instr = self.prompt_sampler.sample(n)
        n_new = self.response_instructions * self.tokenizer.tokens_per_instruction
        budget = self.model.config.max_seq - prompts.shape[1]
        n_new = min(n_new, max(budget, self.tokenizer.tokens_per_instruction))
        tokens = self.sampler.generate(prompts, n_new)
        bodies = []
        for row in tokens:
            words = self.tokenizer.decode_tokens(row.tolist())
            bodies.append(words)
        return bodies


class ChatFuzzPipeline:
    """Orchestrates corpus synthesis + the three training steps."""

    def __init__(self, config: PipelineConfig | None = None) -> None:
        self.config = config or PipelineConfig()
        self.corpus = Corpus.synthesize(self.config.corpus_functions,
                                        seed=self.config.corpus_seed)
        self.tokenizer = HalfwordTokenizer(self.config.tokenizer_max_vocab)
        self.tokenizer.train(self.corpus)
        model_config = GPT2Config(
            vocab_size=self.tokenizer.vocab_size,
            max_seq=self.config.model.max_seq,
            dim=self.config.model.dim,
            n_layers=self.config.model.n_layers,
            n_heads=self.config.model.n_heads,
            mlp_ratio=self.config.model.mlp_ratio,
            tie_embeddings=self.config.model.tie_embeddings,
        )
        self.model = GPT2LMModel(model_config, seed=self.config.model_seed)
        self.result = PipelineResult()

    # -- step 1 -------------------------------------------------------------------

    def run_step1(self) -> LMTrainResult:
        """Unsupervised training on the corpus."""
        trainer = LMTrainer(self.model, self.tokenizer, self.config.lm)
        self.result.lm_result = trainer.train(self.corpus)
        return self.result.lm_result

    # -- step 2 -------------------------------------------------------------------

    def run_step2(self, reward: DisassemblerReward | None = None) -> PPOHistory:
        """PPO clean-up with the disassembler reward agent."""
        reward = reward or DisassemblerReward()
        trainer = PPOTrainer(
            self.model, self.model.clone(), reward, self.tokenizer,
            config=self.config.ppo, seed=self.config.seed,
        )
        prompts = PromptSampler(self.corpus, self.tokenizer,
                                self.config.prompt_instructions,
                                seed=self.config.seed + 2)
        tokens_per = self.tokenizer.tokens_per_instruction
        for _ in range(self.config.step2_steps):
            batch, _ = prompts.sample(self.config.ppo_batch_size)
            budget = self.model.config.max_seq - batch.shape[1]
            n_new = min(self.config.response_instructions * tokens_per, budget)
            trainer.step(batch, n_new)
        self.result.step2_history = trainer.history
        return trainer.history

    # -- step 3 -------------------------------------------------------------------

    def run_step3(self, harness, reward: CoverageReward | None = None) -> PPOHistory:
        """PPO coverage optimisation against a DUT harness."""
        reward = reward or CoverageReward(harness)
        trainer = PPOTrainer(
            self.model, self.model.clone(), reward, self.tokenizer,
            config=self.config.ppo, seed=self.config.seed + 10,
        )
        prompts = PromptSampler(self.corpus, self.tokenizer,
                                self.config.prompt_instructions,
                                seed=self.config.seed + 12)
        tokens_per = self.tokenizer.tokens_per_instruction
        for _ in range(self.config.step3_steps):
            reward.begin_batch()
            batch, _ = prompts.sample(self.config.ppo_batch_size)
            budget = self.model.config.max_seq - batch.shape[1]
            n_new = min(self.config.response_instructions * tokens_per, budget)
            trainer.step(batch, n_new)
        self.result.step3_history = trainer.history
        self.result.step3_coverage_percent = reward.total_percent
        return trainer.history

    # -- all together ----------------------------------------------------------------

    def run_all(self, harness) -> PipelineResult:
        self.run_step1()
        self.run_step2()
        self.run_step3(harness)
        return self.result

    def make_generator(self, seed: int = 100,
                       response_instructions: int | None = None) -> LLMInputGenerator:
        """Package the (current) model for the fuzzing loop."""
        return LLMInputGenerator(
            self.model,
            self.tokenizer,
            self.corpus,
            prompt_bounds=self.config.prompt_instructions,
            response_instructions=(
                response_instructions or self.config.response_instructions
            ),
            seed=seed,
        )
