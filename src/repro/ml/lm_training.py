"""Step 1 — unsupervised language-model training (paper §III-B1, §IV-C1).

The model "receives an input fragment of valid test vectors from our
collected dataset … and learns how to complete it": plain next-token
cross-entropy over tokenized corpus functions, chunked to the context size.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ml.optim import Adam
from repro.ml.tokenizer import PAD


@dataclass
class LMTrainConfig:
    """Hyper-parameters for the unsupervised step."""

    batch_size: int = 16
    steps: int = 300
    lr: float = 1e-3
    grad_clip: float = 1.0
    seed: int = 0
    log_every: int = 50


@dataclass
class LMTrainResult:
    """Loss telemetry of one training run."""

    losses: list[float] = field(default_factory=list)

    @property
    def initial_loss(self) -> float:
        return self.losses[0] if self.losses else float("nan")

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")


class LMTrainer:
    """Teacher-forced LM training over a tokenized corpus."""

    def __init__(self, model, tokenizer, config: LMTrainConfig | None = None):
        self.model = model
        self.tokenizer = tokenizer
        self.config = config or LMTrainConfig()
        self.rng = np.random.default_rng(self.config.seed)

    def _build_sequences(self, corpus) -> np.ndarray:
        """Tokenize every function and pack into fixed-length rows.

        Functions shorter than the context are PAD-extended (PAD targets are
        still predicted; with a tiny vocab this costs little and keeps the
        batch dense); longer ones are split into context-sized chunks.
        """
        length = self.model.config.max_seq
        rows: list[list[int]] = []
        for entry in corpus:
            tokens = self.tokenizer.encode_words(entry, add_bos=True, add_eos=True)
            for start in range(0, len(tokens), length):
                chunk = tokens[start : start + length]
                if len(chunk) < 8:  # skip degenerate tails
                    continue
                chunk = chunk + [PAD] * (length - len(chunk))
                rows.append(chunk)
        if not rows:
            raise ValueError("corpus produced no training sequences")
        return np.asarray(rows, dtype=np.int64)

    def train(self, corpus) -> LMTrainResult:
        """Run the configured number of steps; returns the loss history."""
        sequences = self._build_sequences(corpus)
        optimizer = Adam(self.model.parameters(), lr=self.config.lr,
                         grad_clip=self.config.grad_clip)
        result = LMTrainResult()
        n = sequences.shape[0]
        for step in range(self.config.steps):
            batch_idx = self.rng.integers(0, n, size=min(self.config.batch_size, n))
            batch = sequences[batch_idx]
            loss = self.model.lm_loss(batch)
            loss.backward()
            optimizer.step()
            result.losses.append(loss.item())
        return result

    def perplexity(self, corpus, max_rows: int = 64) -> float:
        """Evaluation perplexity over (a sample of) a held-out corpus."""
        sequences = self._build_sequences(corpus)[:max_rows]
        loss = self.model.lm_loss(sequences)
        return float(np.exp(loss.item()))
