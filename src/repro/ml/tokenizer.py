"""Machine-language tokenizers (paper §IV-C1).

The paper "train[s] a tokenizer on the full ISA" over hex machine code; its
Figure 1b shows 16-bit half-word units ("4118, 419c, …").
:class:`HalfwordTokenizer` reproduces that representation: the vocabulary is
the set of 16-bit half-words observed in the training corpus (most frequent
first, optionally capped), and every 32-bit instruction becomes two tokens
(low half-word first, little-endian order, as in the disassembly).

:class:`FieldTokenizer` is the alternative representation used by ablations:
one token for the mnemonic and one per operand field, which shortens the
effective vocabulary at the cost of longer sequences.

Both share the same interface: ``encode_words`` / ``decode_tokens`` plus the
special BOS/EOS/PAD/UNK ids, and are trained with :meth:`train` on a corpus
of word sequences.
"""

from __future__ import annotations

from collections import Counter

from repro.isa.decoder import decode
from repro.isa.encoder import EncodingError, encode
from repro.isa.instructions import INSTRUCTIONS

PAD, BOS, EOS, UNK = 0, 1, 2, 3
_SPECIALS = ("<pad>", "<bos>", "<eos>", "<unk>")


class HalfwordTokenizer:
    """16-bit half-word vocabulary learned from a corpus."""

    def __init__(self, max_vocab: int | None = None) -> None:
        self.max_vocab = max_vocab
        self._halfword_to_id: dict[int, int] = {}
        self._id_to_halfword: list[int | None] = [None] * len(_SPECIALS)

    # -- persistence (used by the benchmark cache) -----------------------------

    def save(self, path) -> None:
        import json
        from pathlib import Path

        payload = {
            "max_vocab": self.max_vocab,
            "halfwords": self._id_to_halfword[len(_SPECIALS):],
        }
        Path(path).write_text(json.dumps(payload))

    @classmethod
    def load(cls, path) -> "HalfwordTokenizer":
        import json
        from pathlib import Path

        payload = json.loads(Path(path).read_text())
        tokenizer = cls(payload["max_vocab"])
        for halfword in payload["halfwords"]:
            tokenizer._halfword_to_id[halfword] = len(tokenizer._id_to_halfword)
            tokenizer._id_to_halfword.append(halfword)
        return tokenizer

    # -- training ------------------------------------------------------------

    def train(self, corpus) -> "HalfwordTokenizer":
        """Build the vocabulary from an iterable of word sequences."""
        counts: Counter[int] = Counter()
        for entry in corpus:
            for word in entry:
                counts[word & 0xFFFF] += 1
                counts[(word >> 16) & 0xFFFF] += 1
        budget = None if self.max_vocab is None else self.max_vocab - len(_SPECIALS)
        most_common = counts.most_common(budget)
        for halfword, _ in most_common:
            self._halfword_to_id[halfword] = len(self._id_to_halfword)
            self._id_to_halfword.append(halfword)
        return self

    @property
    def vocab_size(self) -> int:
        return len(self._id_to_halfword)

    @property
    def tokens_per_instruction(self) -> int:
        return 2

    # -- encoding ------------------------------------------------------------

    def encode_words(self, words, add_bos: bool = True, add_eos: bool = False) -> list[int]:
        """Instruction words -> token ids (UNK for unseen half-words)."""
        tokens = [BOS] if add_bos else []
        for word in words:
            tokens.append(self._halfword_to_id.get(word & 0xFFFF, UNK))
            tokens.append(self._halfword_to_id.get((word >> 16) & 0xFFFF, UNK))
        if add_eos:
            tokens.append(EOS)
        return tokens

    def decode_tokens(self, tokens) -> list[int]:
        """Token ids -> instruction words.

        Specials are skipped; UNK half-words decode to 0x0000 (an invalid
        instruction — the disassembler reward then penalises them, which is
        exactly the training signal the clean-up step needs).  A trailing
        unpaired half-word is dropped.
        """
        halves: list[int] = []
        for token in tokens:
            if token in (PAD, BOS, EOS):
                continue
            value = (
                self._id_to_halfword[token]
                if 0 <= token < len(self._id_to_halfword)
                else None
            )
            halves.append(0 if value is None else value)
        words = []
        for i in range(0, len(halves) - 1, 2):
            words.append((halves[i + 1] << 16) | halves[i])
        return words


class FieldTokenizer:
    """Instruction-field tokens: mnemonic + register/immediate fields.

    The vocabulary is closed (built from the ISA itself plus immediate
    buckets), so :meth:`train` only needs the corpus to learn which immediate
    values deserve dedicated tokens.
    """

    #: Number of dedicated immediate-value tokens learned from the corpus.
    N_IMM_TOKENS = 64

    def __init__(self) -> None:
        self._vocab: list[str] = list(_SPECIALS)
        self._ids: dict[str, int] = {}
        self._imm_values: list[int] = []

    def train(self, corpus) -> "FieldTokenizer":
        imm_counts: Counter[int] = Counter()
        for entry in corpus:
            for word in entry:
                instr = decode(word)
                if instr is None:
                    continue
                if "imm" in instr.spec.operands:
                    imm_counts[instr.imm] += 1
        self._imm_values = [v for v, _ in imm_counts.most_common(self.N_IMM_TOKENS)]
        vocab = list(_SPECIALS)
        vocab += [f"M:{m}" for m in sorted(INSTRUCTIONS)]
        vocab += [f"R:{r}" for r in range(32)]
        vocab += [f"I:{v}" for v in self._imm_values]
        vocab += [f"S:{s}" for s in range(64)]       # shamt / zimm
        vocab += ["C:0x300", "C:0x305", "C:0x340", "C:0x341", "C:0x342",
                  "C:0xb00", "C:0xb02", "C:0xc00", "C:0xc01", "C:0xc02",
                  "C:0xf14", "C:other"]
        self._vocab = vocab
        self._ids = {text: i for i, text in enumerate(vocab)}
        return self

    @property
    def vocab_size(self) -> int:
        return len(self._vocab)

    @property
    def tokens_per_instruction(self) -> int:
        return 4

    def _imm_token(self, value: int) -> int:
        key = f"I:{value}"
        token = self._ids.get(key)
        if token is not None:
            return token
        # Snap to the nearest learned immediate (keeps the field count fixed).
        if not self._imm_values:
            return UNK
        nearest = min(self._imm_values, key=lambda v: abs(v - value))
        return self._ids[f"I:{nearest}"]

    def encode_words(self, words, add_bos: bool = True, add_eos: bool = False) -> list[int]:
        tokens = [BOS] if add_bos else []
        for word in words:
            instr = decode(word)
            if instr is None:
                tokens += [UNK, UNK, UNK, UNK]
                continue
            spec = instr.spec
            tokens.append(self._ids.get(f"M:{spec.mnemonic}", UNK))
            operands = list(spec.operands)[:3]
            slots = []
            for name in operands:
                if name in ("rd", "rs1", "rs2"):
                    slots.append(self._ids[f"R:{getattr(instr, name)}"])
                elif name == "imm":
                    slots.append(self._imm_token(instr.imm))
                elif name in ("shamt", "zimm"):
                    slots.append(self._ids[f"S:{getattr(instr, name)}"])
                elif name == "csr":
                    slots.append(self._ids.get(f"C:{instr.csr:#x}",
                                               self._ids["C:other"]))
            while len(slots) < 3:
                slots.append(PAD)
            tokens += slots
        if add_eos:
            tokens.append(EOS)
        return tokens

    def decode_tokens(self, tokens) -> list[int]:
        """Token groups of four -> instruction words (invalid groups -> 0)."""
        body = [t for t in tokens if t not in (BOS, EOS)]
        words: list[int] = []
        for i in range(0, len(body) - 3, 4):
            words.append(self._decode_group(body[i : i + 4]))
        return words

    def _decode_group(self, group: list[int]) -> int:
        def text(token: int) -> str | None:
            if 0 <= token < len(self._vocab):
                return self._vocab[token]
            return None

        head = text(group[0])
        if head is None or not head.startswith("M:"):
            return 0
        mnemonic = head[2:]
        spec = INSTRUCTIONS.get(mnemonic)
        if spec is None:
            return 0
        kwargs: dict[str, int] = {}
        for name, token in zip(spec.operands, group[1:]):
            label = text(token)
            if label is None:
                return 0
            prefix, _, payload = label.partition(":")
            try:
                value = int(payload, 0)
            except ValueError:
                return 0
            expected = {"rd": "R", "rs1": "R", "rs2": "R", "imm": "I",
                        "shamt": "S", "zimm": "S", "csr": "C"}[name]
            if prefix != expected:
                return 0
            kwargs[name] = value
        try:
            return encode(mnemonic, **kwargs)
        except EncodingError:
            return 0
