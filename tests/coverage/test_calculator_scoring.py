"""Coverage Calculator (§IV-B) and input scoring (§III-B3) semantics."""

import pytest

from repro.coverage.calculator import CoverageCalculator, InputCoverage
from repro.coverage.scoring import CoverageScorer, ScoreWeights
from repro.rtl.report import CoverageReport


def report(hits, total=20):
    return CoverageReport(hits=frozenset(hits), total_arms=total)


class TestCalculator:
    def test_standalone_incremental_total(self):
        calc = CoverageCalculator(total_arms=20)
        calc.begin_batch()
        first = calc.observe(report({0, 1, 2}))
        assert first.standalone == 3
        assert first.incremental == 3
        assert first.total == 3
        second = calc.observe(report({2, 3}))
        assert second.standalone == 2
        assert second.incremental == 2   # batch baseline was empty
        assert second.total == 4

    def test_batch_mode_baseline(self):
        """Within a batch, increments are measured against the *previous
        batch's* total — the paper's granularity."""
        calc = CoverageCalculator(total_arms=20, batch_mode=True)
        calc.begin_batch()
        calc.observe(report({0, 1}))
        repeat = calc.observe(report({0, 1}))
        assert repeat.incremental == 2  # not shadowed within the batch
        calc.begin_batch()
        after = calc.observe(report({0, 1}))
        assert after.incremental == 0   # now part of the baseline

    def test_sequential_mode(self):
        calc = CoverageCalculator(total_arms=20, batch_mode=False)
        calc.observe(report({0, 1}))
        second = calc.observe(report({0, 1, 2}))
        assert second.incremental == 1

    def test_observe_batch_resets_baseline(self):
        calc = CoverageCalculator(total_arms=20)
        outcomes = calc.observe_batch([report({0}), report({0, 1})])
        assert [o.incremental for o in outcomes] == [1, 2]

    def test_percent(self):
        calc = CoverageCalculator(total_arms=10)
        calc.begin_batch()
        calc.observe(report({0, 1, 2, 3, 4}, total=10))
        assert calc.total_percent == 50.0


class TestInputCoverage:
    def test_fractions(self):
        cov = InputCoverage(standalone=5, incremental=2, total=10, total_arms=20)
        assert cov.standalone_fraction == 0.25
        assert cov.total_fraction == 0.5
        assert cov.total_percent == 50.0
        assert cov.improved

    def test_zero_arms(self):
        cov = InputCoverage(0, 0, 0, 0)
        assert cov.standalone_fraction == 0.0
        assert not cov.improved


class TestScorer:
    def test_improvement_beats_stagnation(self):
        scorer = CoverageScorer()
        improved = InputCoverage(5, 3, 10, 100)
        stagnant = InputCoverage(5, 0, 10, 100)
        assert scorer.score(improved) > scorer.score(stagnant)

    def test_stagnation_penalty_applied(self):
        scorer = CoverageScorer(ScoreWeights(
            standalone_weight=0, incremental_weight=0,
            improvement_bonus=0, stagnation_penalty=2.5, exploration_weight=0))
        assert scorer.score(InputCoverage(5, 0, 10, 100)) == -2.5

    def test_exploration_term_decays_with_total(self):
        scorer = CoverageScorer(ScoreWeights(
            standalone_weight=0, incremental_weight=0,
            improvement_bonus=0, stagnation_penalty=0, exploration_weight=1.0))
        early = scorer.score(InputCoverage(50, 0, 10, 100))
        late = scorer.score(InputCoverage(50, 0, 90, 100))
        assert early > late

    def test_score_batch(self):
        scorer = CoverageScorer()
        scores = scorer.score_batch([InputCoverage(1, 1, 1, 10)] * 3)
        assert len(scores) == 3
        assert scores[0] == scores[1] == scores[2]
