"""Bitset engine vs the retained set engine: bit-for-bit parity.

The packed-bitset coverage engine (``repro.rtl.coverage`` /
``repro.rtl.report`` / ``repro.coverage.calculator``) must be
observationally identical to the original hash-set implementation retained
in ``repro.coverage.reference``.  These tests drive both with identical
observation streams — synthetic pseudo-random streams and real reports from
a RocketCore run — and assert equal hits, counts, increments, totals,
percents and scores in both calculator modes, through both the scalar and
the vectorised batch paths.
"""

import random

import pytest

from repro.coverage.calculator import CoverageCalculator
from repro.coverage.reference import (
    SetConditionCoverage,
    SetCoverageCalculator,
    SetCoverageReport,
)
from repro.coverage.scoring import CoverageScorer, ScoreWeights
from repro.rtl.coverage import ConditionCoverage
from repro.rtl.report import CoverageReport
from repro.soc.harness import make_rocket_harness

N_CONDITIONS = 150


def build_engines(n=N_CONDITIONS):
    bit_cov, set_cov = ConditionCoverage(), SetConditionCoverage()
    for i in range(n):
        assert bit_cov.declare(f"c{i}") == set_cov.declare(f"c{i}")
    bit_cov.freeze()
    set_cov.freeze()
    return bit_cov, set_cov


def record_stream(bit_cov, set_cov, rng, n_obs):
    """Drive both engines with one identical observation stream.

    The bitset engine exercises both record paths: scalar ``record`` and
    the memoized-group ``record_mask`` (as the cores use for decode/trap/IRQ
    condition groups).
    """
    for _ in range(n_obs):
        if rng.random() < 0.3:
            # A correlated group, folded as one mask on the bitset side.
            group = [(rng.randrange(N_CONDITIONS), rng.random() < 0.5)
                     for _ in range(rng.randrange(1, 12))]
            mask = 0
            for handle, value in group:
                mask |= bit_cov.arm_bit(handle, value)
                set_cov.record(handle, value)
            bit_cov.record_mask(mask)
        else:
            handle, value = rng.randrange(N_CONDITIONS), rng.random() < 0.5
            assert bit_cov.record(handle, value) == set_cov.record(handle, value)


def make_report_pair(bit_cov, set_cov, rng, n_obs=120):
    bit_cov.begin_run()
    set_cov.begin_run()
    record_stream(bit_cov, set_cov, rng, n_obs)
    bit_report = CoverageReport.from_coverage(bit_cov)
    set_report = SetCoverageReport.from_coverage(set_cov)
    assert bit_report.hits == set_report.hits
    return bit_report, set_report


class TestRecordingParity:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_run_hits_identical(self, seed):
        bit_cov, set_cov = build_engines()
        rng = random.Random(seed)
        record_stream(bit_cov, set_cov, rng, 400)
        assert set(bit_cov.run_hits) == set_cov.run_hits
        assert len(bit_cov.run_hits) == len(set_cov.run_hits)

    def test_begin_run_resets_both(self):
        bit_cov, set_cov = build_engines()
        record_stream(bit_cov, set_cov, random.Random(3), 50)
        bit_cov.begin_run()
        set_cov.begin_run()
        assert bit_cov.run_hits == set() == set_cov.run_hits


@pytest.mark.parametrize("batch_mode", [True, False])
@pytest.mark.parametrize("seed", [0, 7])
class TestCalculatorParity:
    def test_observe_stream(self, batch_mode, seed):
        """Scalar observes, interleaved with begin_batch, match exactly."""
        bit_cov, set_cov = build_engines()
        rng = random.Random(seed)
        bit_calc = CoverageCalculator(bit_cov.total_arms, batch_mode=batch_mode)
        set_calc = SetCoverageCalculator(set_cov.total_arms, batch_mode=batch_mode)
        for step in range(30):
            if step % 10 == 0:
                bit_calc.begin_batch()
                set_calc.begin_batch()
            bit_report, set_report = make_report_pair(bit_cov, set_cov, rng)
            assert bit_calc.observe(bit_report) == set_calc.observe(set_report)
        assert bit_calc.total_percent == set_calc.total_percent
        assert set(bit_calc.cumulative.hits) == set_calc.cumulative.hits

    def test_observe_batch_vectorised(self, batch_mode, seed):
        """The numpy batch sweep equals the reference per-report loop."""
        bit_cov, set_cov = build_engines()
        rng = random.Random(seed)
        bit_calc = CoverageCalculator(bit_cov.total_arms, batch_mode=batch_mode)
        set_calc = SetCoverageCalculator(set_cov.total_arms, batch_mode=batch_mode)
        for _ in range(4):  # several batches: baselines evolve between them
            pairs = [make_report_pair(bit_cov, set_cov, rng) for _ in range(16)]
            bit_out = bit_calc.observe_batch([p[0] for p in pairs])
            set_out = set_calc.observe_batch([p[1] for p in pairs])
            assert bit_out == set_out
        assert bit_calc.total_percent == set_calc.total_percent

    def test_vectorised_equals_scalar_path(self, batch_mode, seed):
        """observe_batch == begin_batch + observe loop on the same engine."""
        bit_cov, set_cov = build_engines()
        rng = random.Random(seed)
        vec = CoverageCalculator(bit_cov.total_arms, batch_mode=batch_mode)
        scalar = CoverageCalculator(bit_cov.total_arms, batch_mode=batch_mode)
        reports = [make_report_pair(bit_cov, set_cov, rng)[0] for _ in range(16)]
        vec_out = vec.observe_batch(reports)
        scalar.begin_batch()
        scalar_out = [scalar.observe(r) for r in reports]
        assert vec_out == scalar_out
        assert vec.cumulative.count == scalar.cumulative.count


class TestScoringParity:
    @pytest.mark.parametrize("weights", [None, ScoreWeights(
        standalone_weight=1.5, incremental_weight=12.0, improvement_bonus=0.5,
        stagnation_penalty=2.0, exploration_weight=3.0)])
    def test_score_batch_matches_scalar(self, weights):
        bit_cov, set_cov = build_engines()
        rng = random.Random(11)
        calc = CoverageCalculator(bit_cov.total_arms)
        reports = [make_report_pair(bit_cov, set_cov, rng)[0] for _ in range(32)]
        coverages = calc.observe_batch(reports)
        scorer = CoverageScorer(weights)
        assert scorer.score_batch(coverages) == [
            scorer.score(c) for c in coverages
        ]


class TestRealHarnessParity:
    def test_rocket_reports_feed_both_calculators_identically(self):
        """Real DUT coverage reports: the retained set calculator scores the
        same curve as the bitset one (fixed bodies, fixed seed)."""
        harness = make_rocket_harness()
        from repro.baselines.mutations import MutationEngine

        engine = MutationEngine(seed=5)
        bodies = [engine.random_body(16) for _ in range(12)]
        reports = [harness.run_dut(body)[1] for body in bodies]

        bit_calc = CoverageCalculator(harness.total_arms)
        set_calc = SetCoverageCalculator(harness.total_arms)
        scorer = CoverageScorer()
        bit_out = bit_calc.observe_batch(reports)
        set_out = set_calc.observe_batch([
            SetCoverageReport(hits=frozenset(r.hits), total_arms=r.total_arms,
                              cycles=r.cycles)
            for r in reports
        ])
        assert bit_out == set_out
        assert scorer.score_batch(bit_out) == scorer.score_batch(set_out)
        assert bit_calc.total_percent == set_calc.total_percent
