"""Golden simulator: whole-program runs, trap handling, tracing policy."""

from repro.golden.simulator import GoldenSimulator, SimConfig, trap_handler_image
from repro.isa.assembler import Assembler
from repro.isa.encoder import encode
from repro.isa.spec import DRAM_BASE, EXC_ECALL_FROM_M, EXC_ILLEGAL_INSTRUCTION


def run(text, config=None):
    program = Assembler(base=DRAM_BASE).assemble(text)
    return GoldenSimulator(config).run(program)


class TestBasicRuns:
    def test_wfi_stops(self):
        trace = run("li a0, 1\nwfi")
        assert trace.stop_reason == "wfi"
        assert len(trace) == 2

    def test_max_steps_stops(self):
        trace = run("loop: j loop", SimConfig(max_steps=10))
        assert trace.stop_reason == "max_steps"

    def test_loop_executes_expected_iterations(self):
        trace = run("""
            li a0, 3
        loop:
            addi a0, a0, -1
            bnez a0, loop
            wfi
        """)
        # 1 li + 3*(addi+bnez) + wfi = 8 retired instructions.
        assert trace.instret == 8

    def test_trace_records_rd_writes(self):
        trace = run("li a0, 7\nwfi")
        assert trace[0].rd == 10
        assert trace[0].rd_value == 7

    def test_trace_never_records_x0_writes(self):
        """Finding3 contrast: the golden model suppresses x0 write records."""
        trace = run("addi x0, x0, 5\nj next\nnext: wfi")
        assert all(entry.rd != 0 for entry in trace if entry.rd is not None)

    def test_trace_records_memory_ops(self):
        trace = run("""
            auipc s0, 0x80
            sd a0, 0(s0)
            ld a1, 0(s0)
            wfi
        """)
        stores = [e for e in trace if e.mem is not None and e.mem.is_store]
        loads = [e for e in trace if e.mem is not None and not e.mem.is_store]
        assert len(stores) == 1
        assert len(loads) == 1


class TestTrapHandling:
    def test_trap_skips_faulting_instruction(self):
        """The stub handler advances mepc: execution continues after a trap."""
        trace = run("""
            li a0, 1
            ecall
            li a1, 2
            wfi
        """)
        assert trace.stop_reason == "wfi"
        causes = [e.trap_cause for e in trace if e.trapped]
        assert causes == [EXC_ECALL_FROM_M]
        writes = [(e.rd, e.rd_value) for e in trace if e.rd is not None]
        assert (11, 2) in writes  # the instruction after ecall still ran

    def test_illegal_instruction_trap(self):
        trace = run(".word 0x00000000\nwfi")
        assert trace[0].trap_cause == EXC_ILLEGAL_INSTRUCTION

    def test_handler_instructions_not_traced_by_default(self):
        trace = run("ecall\nwfi")
        assert len(trace) == 2  # the trap entry + wfi; handler is hidden

    def test_handler_instructions_traced_when_enabled(self):
        trace = run("ecall\nwfi", SimConfig(trace_handler=True))
        assert len(trace) == 2 + len(trap_handler_image())

    def test_trap_preserves_registers(self):
        """The handler must not clobber any architectural register."""
        trace = run("""
            li a0, 111
            li t6, 222
            ecall
            add a1, a0, t6
            wfi
        """)
        writes = {e.rd: e.rd_value for e in trace if e.rd is not None}
        assert writes[11] == 333

    def test_max_traps_stops_runaway(self):
        # A wild jump into unmapped space faults on every fetch.
        trace = run("""
            lui t0, 1
            jr t0
        """, SimConfig(max_traps=8))
        assert trace.stop_reason == "max_traps"
        assert trace.trap_count == 8

    def test_wild_jump_within_dram_hits_illegal_zeros(self):
        trace = run("j 0x400\nwfi", SimConfig(max_traps=4))
        assert trace.trap_count == 4
        assert all(
            e.trap_cause == EXC_ILLEGAL_INSTRUCTION for e in trace if e.trapped
        )


class TestCounters:
    def test_instret_visible_to_program(self):
        trace = run("""
            csrr a0, instret
            csrr a1, instret
            wfi
        """)
        writes = {e.rd: e.rd_value for e in trace if e.rd is not None}
        assert writes[11] == writes[10] + 1


class TestHandlerImage:
    def test_is_six_instructions(self):
        assert len(trap_handler_image()) == 6

    def test_ends_with_mret(self):
        assert trap_handler_image()[-1] == encode("mret")
