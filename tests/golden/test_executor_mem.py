"""Executor memory semantics: loads/stores, trap priority, atomics, LR/SC."""

import pytest

from repro.golden.exceptions import Trap
from repro.golden.executor import execute
from repro.golden.memory import SparseMemory
from repro.golden.state import ArchState
from repro.isa.decoder import decode
from repro.isa.encoder import encode
from repro.isa.fields import to_unsigned
from repro.isa.spec import (
    DATA_BASE,
    DRAM_BASE,
    EXC_LOAD_ACCESS_FAULT,
    EXC_LOAD_MISALIGNED,
    EXC_STORE_ACCESS_FAULT,
    EXC_STORE_MISALIGNED,
)


def fresh():
    state = ArchState()
    memory = SparseMemory()
    state.write_reg(8, DATA_BASE)  # s0 -> valid data region
    return state, memory


def step(state, memory, mnemonic, **operands):
    instr = decode(encode(mnemonic, **operands))
    return execute(state, memory, instr, DRAM_BASE)


class TestLoadsStores:
    def test_store_load_roundtrip(self):
        state, memory = fresh()
        state.write_reg(5, 0xDEADBEEFCAFEF00D)
        step(state, memory, "sd", rs2=5, rs1=8, imm=16)
        step(state, memory, "ld", rd=6, rs1=8, imm=16)
        assert state.read_reg(6) == 0xDEADBEEFCAFEF00D

    def test_lb_sign_extends(self):
        state, memory = fresh()
        memory.store(DATA_BASE, 0x80, 1)
        step(state, memory, "lb", rd=6, rs1=8, imm=0)
        assert state.read_reg(6) == to_unsigned(-128)

    def test_lbu_zero_extends(self):
        state, memory = fresh()
        memory.store(DATA_BASE, 0x80, 1)
        step(state, memory, "lbu", rd=6, rs1=8, imm=0)
        assert state.read_reg(6) == 0x80

    def test_lw_sign_lwu_zero(self):
        state, memory = fresh()
        memory.store(DATA_BASE, 0x8000_0000, 4)
        step(state, memory, "lw", rd=6, rs1=8, imm=0)
        assert state.read_reg(6) == to_unsigned(-(1 << 31))
        step(state, memory, "lwu", rd=7, rs1=8, imm=0)
        assert state.read_reg(7) == 0x8000_0000

    def test_sb_stores_low_byte_only(self):
        state, memory = fresh()
        memory.store(DATA_BASE, 0xFFFF, 2)
        state.write_reg(5, 0xAA11)
        step(state, memory, "sb", rs2=5, rs1=8, imm=0)
        assert memory.load(DATA_BASE, 2) == 0xFF11

    def test_mem_op_recorded_in_result(self):
        state, memory = fresh()
        result = step(state, memory, "sw", rs2=0, rs1=8, imm=4)
        assert result.mem is not None
        assert result.mem.is_store
        assert result.mem.addr == DATA_BASE + 4
        assert result.mem.size == 4


class TestTrapPriority:
    """The privileged spec orders misaligned above access-fault — the corner
    RocketCore gets wrong (paper Finding1)."""

    def test_misaligned_only(self):
        state, memory = fresh()
        with pytest.raises(Trap) as excinfo:
            step(state, memory, "lh", rd=6, rs1=8, imm=1)
        assert excinfo.value.cause == EXC_LOAD_MISALIGNED

    def test_unmapped_only(self):
        state, memory = fresh()
        state.write_reg(8, 0x1000)
        with pytest.raises(Trap) as excinfo:
            step(state, memory, "ld", rd=6, rs1=8, imm=0)
        assert excinfo.value.cause == EXC_LOAD_ACCESS_FAULT

    def test_misaligned_and_unmapped_reports_misaligned(self):
        state, memory = fresh()
        state.write_reg(8, 0x1001)
        with pytest.raises(Trap) as excinfo:
            step(state, memory, "ld", rd=6, rs1=8, imm=0)
        assert excinfo.value.cause == EXC_LOAD_MISALIGNED

    def test_store_misaligned_and_unmapped(self):
        state, memory = fresh()
        state.write_reg(8, 0x1001)
        with pytest.raises(Trap) as excinfo:
            step(state, memory, "sd", rs2=0, rs1=8, imm=0)
        assert excinfo.value.cause == EXC_STORE_MISALIGNED

    def test_tval_is_address(self):
        state, memory = fresh()
        with pytest.raises(Trap) as excinfo:
            step(state, memory, "lw", rd=6, rs1=8, imm=2)
        assert excinfo.value.tval == DATA_BASE + 2


class TestAmo:
    def test_amoadd(self):
        state, memory = fresh()
        memory.store(DATA_BASE, 10, 8)
        state.write_reg(5, 32)
        result = step(state, memory, "amoadd.d", rd=6, rs1=8, rs2=5)
        assert state.read_reg(6) == 10           # rd gets the old value
        assert memory.load(DATA_BASE, 8) == 42   # memory gets the sum
        assert result.mem.is_store

    def test_amoswap_w_sign_extends_old(self):
        state, memory = fresh()
        memory.store(DATA_BASE, 0x8000_0000, 4)
        state.write_reg(5, 7)
        step(state, memory, "amoswap.w", rd=6, rs1=8, rs2=5)
        assert state.read_reg(6) == to_unsigned(-(1 << 31))
        assert memory.load(DATA_BASE, 4) == 7

    def test_amomax_signed(self):
        state, memory = fresh()
        memory.store(DATA_BASE, to_unsigned(-5, 64), 8)
        state.write_reg(5, 3)
        step(state, memory, "amomax.d", rd=6, rs1=8, rs2=5)
        assert memory.load(DATA_BASE, 8) == 3

    def test_amomaxu_unsigned(self):
        state, memory = fresh()
        memory.store(DATA_BASE, to_unsigned(-5, 64), 8)
        state.write_reg(5, 3)
        step(state, memory, "amomaxu.d", rd=6, rs1=8, rs2=5)
        assert memory.load(DATA_BASE, 8) == to_unsigned(-5, 64)  # 0xff..fb > 3

    def test_amo_with_rd_x0_still_updates_memory(self):
        """Finding2's architectural half: the memory op happens; only x0
        never changes (the DUT's *trace* is what differs)."""
        state, memory = fresh()
        memory.store(DATA_BASE, 1, 8)
        state.write_reg(5, 2)
        step(state, memory, "amoor.d", rd=0, rs1=8, rs2=5)
        assert memory.load(DATA_BASE, 8) == 3
        assert state.read_reg(0) == 0

    def test_amo_misaligned_is_store_exception(self):
        state, memory = fresh()
        state.write_reg(8, DATA_BASE + 4)
        with pytest.raises(Trap) as excinfo:
            step(state, memory, "amoadd.d", rd=6, rs1=8, rs2=5)
        assert excinfo.value.cause == EXC_STORE_MISALIGNED


class TestLrSc:
    def test_lr_sets_reservation_sc_succeeds(self):
        state, memory = fresh()
        memory.store(DATA_BASE, 5, 8)
        step(state, memory, "lr.d", rd=6, rs1=8)
        assert state.reservation == DATA_BASE
        state.write_reg(5, 99)
        step(state, memory, "sc.d", rd=7, rs1=8, rs2=5)
        assert state.read_reg(7) == 0           # success
        assert memory.load(DATA_BASE, 8) == 99
        assert state.reservation is None

    def test_sc_without_reservation_fails(self):
        state, memory = fresh()
        step(state, memory, "sc.d", rd=7, rs1=8, rs2=5)
        assert state.read_reg(7) == 1
        assert memory.load(DATA_BASE, 8) == 0   # no store performed

    def test_store_breaks_reservation(self):
        state, memory = fresh()
        step(state, memory, "lr.d", rd=6, rs1=8)
        step(state, memory, "sd", rs2=0, rs1=8, imm=0)  # same address
        step(state, memory, "sc.d", rd=7, rs1=8, rs2=5)
        assert state.read_reg(7) == 1

    def test_sc_to_different_address_fails(self):
        state, memory = fresh()
        step(state, memory, "lr.d", rd=6, rs1=8)
        state.write_reg(9, DATA_BASE + 8)
        step(state, memory, "sc.d", rd=7, rs1=9, rs2=5)
        assert state.read_reg(7) == 1

    def test_lr_misaligned_is_load_exception(self):
        state, memory = fresh()
        state.write_reg(8, DATA_BASE + 2)
        with pytest.raises(Trap) as excinfo:
            step(state, memory, "lr.w", rd=6, rs1=8)
        assert excinfo.value.cause == EXC_LOAD_MISALIGNED
