"""Parity suite for the batched golden engine (``repro.golden.batch``).

The scalar :class:`GoldenSimulator` is the pinned reference: every test
asserts the batched engine's ``CommitTrace``s are **bit-identical** to it,
lane for lane — including trap-handler effects, ``max_steps``/``max_traps``
cutoffs and the stop reason — plus the graceful scalar fallbacks (numpy
missing, tiny batches, handler tracing).
"""

from __future__ import annotations

import pytest

from repro.baselines.random_regression import RandomRegressionGenerator
from repro.baselines.thehuzz import TheHuzzGenerator
from repro.golden import batch as batch_mod
from repro.golden.batch import LANE_MIN, GoldenBatchSimulator
from repro.golden.simulator import GoldenSimulator, SimConfig
from repro.isa import spec
from repro.isa.encoder import encode


def assert_parity(bodies, config=None, base=spec.DRAM_BASE, lanes=32):
    """Batched traces must equal scalar traces exactly, in order."""
    cfg = config or SimConfig()
    scalar = GoldenSimulator(cfg)
    expected = [scalar.run(list(b), base) for b in bodies]
    got = GoldenBatchSimulator(cfg, lanes=lanes).run_batch(bodies, base)
    assert len(got) == len(expected)
    for i, (ref, out) in enumerate(zip(expected, got)):
        assert out.stop_reason == ref.stop_reason, f"lane {i}"
        assert len(out.entries) == len(ref.entries), f"lane {i}"
        for j, (re_, oe) in enumerate(zip(ref.entries, out.entries)):
            assert oe == re_, f"lane {i} entry {j}:\n  ref {re_}\n  got {oe}"
        assert out.instret == ref.instret, f"lane {i}"


# -- randomized property sweeps ----------------------------------------------


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("body_len", [4, 24, 64])
def test_random_bodies_parity(seed, body_len):
    """Random regression bodies: branches, mem ops, traps, runaway loops."""
    gen = RandomRegressionGenerator(body_instructions=body_len, seed=seed)
    bodies = [t.words for t in gen.generate_batch(16)]
    assert_parity(bodies)


@pytest.mark.parametrize("seed", [0, 3])
def test_thehuzz_bodies_parity(seed):
    """Mutation-shaped bodies exercise a different opcode mix."""
    gen = TheHuzzGenerator(body_instructions=24, seed=seed)
    bodies = [t.words for t in gen.generate_batch(12)]
    assert_parity(bodies)


@pytest.mark.parametrize("max_steps", [20, 23, 25, 4096])
def test_max_steps_cutoffs_parity(max_steps):
    """Cutoffs landing mid-trap-handler must truncate identically."""
    gen = RandomRegressionGenerator(body_instructions=16, seed=4)
    bodies = [t.words for t in gen.generate_batch(12)]
    assert_parity(bodies, SimConfig(max_steps=max_steps))


@pytest.mark.parametrize("max_traps", [1, 3, 64])
def test_max_traps_cutoffs_parity(max_traps):
    gen = RandomRegressionGenerator(body_instructions=16, seed=5)
    bodies = [t.words for t in gen.generate_batch(12)]
    assert_parity(bodies, SimConfig(max_traps=max_traps))


def test_lane_widths_agree():
    """The same batch must produce the same traces at any lane width."""
    gen = RandomRegressionGenerator(body_instructions=24, seed=6)
    bodies = [t.words for t in gen.generate_batch(17)]  # odd: ragged groups
    for lanes in (4, 8, 16, 64):
        assert_parity(bodies, lanes=lanes)


def test_base_override_parity():
    gen = RandomRegressionGenerator(body_instructions=8, seed=7)
    bodies = [t.words for t in gen.generate_batch(8)]
    assert_parity(bodies, base=spec.DRAM_BASE + 0x1000)


# -- targeted hard cases ------------------------------------------------------


def _targeted_bodies() -> list[list[int]]:
    return [
        [],                                              # empty body
        [encode("wfi")],                                 # immediate halt
        [encode("jal", rd=0, imm=0)],                    # tight loop: max_steps
        [encode("jalr", rd=0, rs1=0, imm=0x700)],        # wild jump: trap chain
        [0xFFFFFFFF, encode("addi", rd=1, rs1=0, imm=7)],  # illegal word
        [0, 0, 0],                                       # zero words
        [encode("addi", rd=1, rs1=0, imm=3),             # misaligned load
         encode("lw", rd=2, rs1=1, imm=0)],
        [encode("addi", rd=1, rs1=0, imm=2),             # misaligned jump tgt
         encode("jalr", rd=0, rs1=1, imm=0)],
        [encode("lui", rd=1, imm=0x80000),               # mapped atomic: peel
         encode("amoadd.w", rd=2, rs1=1, rs2=3)],
        [encode("lui", rd=1, imm=0x80000),               # lr/sc pair
         encode("lr.w", rd=2, rs1=1),
         encode("sc.w", rd=3, rs1=1, rs2=2)],
        [encode("ecall"), encode("addi", rd=1, rs1=0, imm=2)],
        [encode("ebreak"), encode("addi", rd=1, rs1=0, imm=2)],
        [encode("csrrs", rd=1, csr=spec.CSR_MCYCLE, rs1=0),   # counter CSRs
         0xFFFFFFFF,                                          # ... over a trap
         encode("csrrs", rd=2, csr=spec.CSR_MCYCLE, rs1=0),
         encode("csrrw", rd=0, csr=spec.CSR_MCYCLE, rs1=2),
         encode("csrrs", rd=3, csr=spec.CSR_MINSTRET, rs1=0)],
        [encode("csrrw", rd=0, csr=spec.CSR_MEPC, rs1=5),     # mret round-trip
         encode("mret"),
         encode("addi", rd=6, rs1=0, imm=1)],
        [encode("lui", rd=1, imm=0x80000),               # self-modifying store
         encode("sw", rd=0, rs1=1, rs2=0, imm=8)],
        [encode("auipc", rd=1, imm=0x100),               # store over handler
         encode("sd", rd=0, rs1=1, rs2=1, imm=0)],
    ]


@pytest.mark.parametrize("config", [
    SimConfig(),
    SimConfig(max_steps=20),
    SimConfig(max_steps=23),
    SimConfig(max_traps=1),
], ids=["default", "steps20", "steps23", "traps1"])
def test_targeted_cases_parity(config):
    assert_parity(_targeted_bodies(), config)


def test_mixed_divergent_batch_parity():
    """One group mixing every targeted case with random filler — lanes
    diverge maximally (halts, chains, peels, cutoffs in one group)."""
    gen = RandomRegressionGenerator(body_instructions=32, seed=8)
    bodies = _targeted_bodies() + [t.words for t in gen.generate_batch(16)]
    assert_parity(bodies, lanes=64)


# -- scalar fallbacks ---------------------------------------------------------


def test_fallback_numpy_unavailable(monkeypatch):
    """Without numpy the batch API still works — via the scalar engine."""
    gen = RandomRegressionGenerator(body_instructions=8, seed=9)
    bodies = [t.words for t in gen.generate_batch(8)]
    monkeypatch.setattr(batch_mod, "_np", None)
    assert_parity(bodies)


def test_fallback_below_lane_minimum():
    bodies = [[encode("addi", rd=1, rs1=0, imm=i)] for i in range(LANE_MIN - 1)]
    assert_parity(bodies)


def test_fallback_trace_handler():
    """trace_handler=True always runs scalar (the analytic trap plane
    elides handler commits by construction) — results must still match."""
    bodies = [[0xFFFFFFFF, encode("addi", rd=1, rs1=0, imm=1)]
              for _ in range(8)]
    assert_parity(bodies, SimConfig(trace_handler=True))


def test_empty_batch():
    assert GoldenBatchSimulator().run_batch([]) == []


def test_invalid_lanes_rejected():
    with pytest.raises(ValueError):
        GoldenBatchSimulator(lanes=0)
