"""Executor ALU / M-extension semantics, including the spec's corner cases."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.golden.executor import execute
from repro.golden.memory import SparseMemory
from repro.golden.state import ArchState
from repro.isa.decoder import decode
from repro.isa.encoder import encode
from repro.isa.fields import sign_extend, to_unsigned
from repro.isa.spec import DRAM_BASE

U64 = st.integers(min_value=0, max_value=(1 << 64) - 1)


def run_one(mnemonic, a=0, b=0, **operands):
    """Execute one instruction with rs1=a, rs2=b; returns the rd value."""
    state = ArchState()
    memory = SparseMemory()
    state.write_reg(1, a)
    state.write_reg(2, b)
    defaults = dict(rd=3, rs1=1, rs2=2)
    defaults.update(operands)
    instr = decode(encode(mnemonic, **defaults))
    result = execute(state, memory, instr, DRAM_BASE)
    assert result.next_pc == DRAM_BASE + 4
    return state.read_reg(3)


class TestBasicAlu:
    @given(U64, U64)
    @settings(max_examples=30, deadline=None)
    def test_add_wraps(self, a, b):
        assert run_one("add", a, b) == (a + b) % (1 << 64)

    @given(U64, U64)
    @settings(max_examples=30, deadline=None)
    def test_sub_wraps(self, a, b):
        assert run_one("sub", a, b) == (a - b) % (1 << 64)

    @given(U64, U64)
    @settings(max_examples=30, deadline=None)
    def test_logic_ops(self, a, b):
        assert run_one("and", a, b) == a & b
        assert run_one("or", a, b) == a | b
        assert run_one("xor", a, b) == a ^ b

    def test_slt_signed(self):
        assert run_one("slt", to_unsigned(-1), 0) == 1
        assert run_one("slt", 0, to_unsigned(-1)) == 0
        assert run_one("sltu", to_unsigned(-1), 0) == 0  # unsigned: max > 0

    def test_shift_uses_low_six_bits_of_rs2(self):
        assert run_one("sll", 1, 64) == 1       # shamt 64 & 0x3F == 0
        assert run_one("sll", 1, 65) == 2

    def test_sra_sign_fills(self):
        assert run_one("sra", to_unsigned(-8), 1) == to_unsigned(-4)

    def test_srl_zero_fills(self):
        assert run_one("srl", to_unsigned(-8), 1) == (to_unsigned(-8) >> 1)

    def test_lui_sign_extends(self):
        value = run_one("lui", imm=0x80000, rd=3)
        assert value == to_unsigned(sign_extend(0x80000 << 12, 32))

    def test_auipc_adds_pc(self):
        state = ArchState()
        instr = decode(encode("auipc", rd=3, imm=0x10))
        execute(state, SparseMemory(), instr, DRAM_BASE)
        assert state.read_reg(3) == DRAM_BASE + 0x10000

    def test_x0_write_discarded(self):
        state = ArchState()
        instr = decode(encode("addi", rd=0, rs1=0, imm=5))
        execute(state, SparseMemory(), instr, DRAM_BASE)
        assert state.read_reg(0) == 0


class TestWordOps:
    def test_addw_truncates_and_sign_extends(self):
        assert run_one("addw", 0x7FFF_FFFF, 1) == to_unsigned(-(1 << 31))

    def test_addiw(self):
        assert run_one("addiw", 0xFFFF_FFFF, rd=3, rs1=1, imm=0) == to_unsigned(-1)

    def test_subw(self):
        assert run_one("subw", 0, 1) == to_unsigned(-1)

    def test_sllw_wraps_32(self):
        assert run_one("sllw", 1, 31) == to_unsigned(-(1 << 31))

    def test_sraw(self):
        assert run_one("sraw", 0x8000_0000, 4) == to_unsigned(-(1 << 27))

    def test_srliw_zero_extends_within_32(self):
        assert run_one("srliw", 0x8000_0000, rd=3, rs1=1, shamt=4) == 0x0800_0000

    @given(U64)
    @settings(max_examples=20, deadline=None)
    def test_word_ops_only_see_low_32(self, a):
        assert run_one("addw", a, 0) == run_one("addw", a & 0xFFFF_FFFF, 0)


class TestMulDiv:
    @given(U64, U64)
    @settings(max_examples=30, deadline=None)
    def test_mul_low(self, a, b):
        assert run_one("mul", a, b) == (a * b) % (1 << 64)

    @given(U64, U64)
    @settings(max_examples=30, deadline=None)
    def test_mulhu(self, a, b):
        assert run_one("mulhu", a, b) == (a * b) >> 64

    @given(U64, U64)
    @settings(max_examples=30, deadline=None)
    def test_mulh_signed(self, a, b):
        expected = to_unsigned((sign_extend(a, 64) * sign_extend(b, 64)) >> 64)
        assert run_one("mulh", a, b) == expected

    def test_div_rounds_toward_zero(self):
        assert run_one("div", to_unsigned(-7), 2) == to_unsigned(-3)
        assert run_one("rem", to_unsigned(-7), 2) == to_unsigned(-1)

    def test_div_by_zero(self):
        assert run_one("div", 42, 0) == to_unsigned(-1)
        assert run_one("divu", 42, 0) == (1 << 64) - 1
        assert run_one("rem", 42, 0) == 42
        assert run_one("remu", 42, 0) == 42

    def test_div_overflow(self):
        most_negative = 1 << 63
        assert run_one("div", most_negative, to_unsigned(-1)) == most_negative
        assert run_one("rem", most_negative, to_unsigned(-1)) == 0

    def test_divw_by_zero(self):
        assert run_one("divw", 5, 0) == to_unsigned(-1)

    def test_divw_overflow(self):
        assert run_one("divw", 0x8000_0000, to_unsigned(-1)) == to_unsigned(
            -(1 << 31)
        )

    def test_remuw_sign_extends_result(self):
        # 0x8000_0001 % 2 == 1; result sign-extended from 32 bits is just 1.
        assert run_one("remuw", 0x8000_0001, 2) == 1

    @given(st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1),
           st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1))
    @settings(max_examples=40, deadline=None)
    def test_div_rem_identity(self, a, b):
        """RISC-V requires dividend == divisor * quotient + remainder."""
        if b == 0:
            return
        ua, ub = to_unsigned(a), to_unsigned(b)
        q = sign_extend(run_one("div", ua, ub), 64)
        r = sign_extend(run_one("rem", ua, ub), 64)
        if a == -(1 << 63) and b == -1:  # overflow case has its own rule
            return
        assert a == b * q + r
        assert abs(r) < abs(b)
