"""Sparse memory: mapping, bulk/checked access, fault behaviour."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.golden.exceptions import Trap
from repro.golden.memory import SparseMemory
from repro.isa.spec import (
    DRAM_BASE,
    DRAM_SIZE,
    EXC_INSTR_ACCESS_FAULT,
    EXC_LOAD_ACCESS_FAULT,
    EXC_STORE_ACCESS_FAULT,
)


class TestMapping:
    def test_dram_mapped(self):
        mem = SparseMemory()
        assert mem.is_mapped(DRAM_BASE)
        assert mem.is_mapped(DRAM_BASE + DRAM_SIZE - 8, 8)

    def test_outside_unmapped(self):
        mem = SparseMemory()
        assert not mem.is_mapped(0)
        assert not mem.is_mapped(DRAM_BASE - 1)
        assert not mem.is_mapped(DRAM_BASE + DRAM_SIZE)

    def test_straddling_end_unmapped(self):
        mem = SparseMemory()
        assert not mem.is_mapped(DRAM_BASE + DRAM_SIZE - 4, 8)

    def test_custom_regions(self):
        mem = SparseMemory(regions=((0x1000, 0x100), (0x4000, 0x10)))
        assert mem.is_mapped(0x1000)
        assert mem.is_mapped(0x400F)
        assert not mem.is_mapped(0x2000)


class TestAccess:
    def test_load_store_roundtrip(self):
        mem = SparseMemory()
        mem.store(DRAM_BASE, 0x1122334455667788, 8)
        assert mem.load(DRAM_BASE, 8) == 0x1122334455667788

    def test_little_endian(self):
        mem = SparseMemory()
        mem.store(DRAM_BASE, 0x0102030405060708, 8)
        assert mem.load(DRAM_BASE, 1) == 0x08
        assert mem.load(DRAM_BASE + 7, 1) == 0x01

    def test_store_truncates_to_width(self):
        mem = SparseMemory()
        mem.store(DRAM_BASE, 0x1FF, 1)
        assert mem.load(DRAM_BASE, 1) == 0xFF

    def test_uninitialised_reads_zero(self):
        assert SparseMemory().load(DRAM_BASE + 0x500, 8) == 0

    def test_cross_page_write(self):
        mem = SparseMemory()
        addr = DRAM_BASE + 0x1000 - 4  # straddles a 4 KiB page boundary
        mem.store(addr, 0xAABBCCDDEEFF0011, 8)
        assert mem.load(addr, 8) == 0xAABBCCDDEEFF0011

    @given(st.integers(min_value=0, max_value=DRAM_SIZE - 8),
           st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_roundtrip_property(self, offset, value):
        mem = SparseMemory()
        mem.store(DRAM_BASE + offset, value, 8)
        assert mem.load(DRAM_BASE + offset, 8) == value


class TestFaults:
    def test_load_fault(self):
        with pytest.raises(Trap) as excinfo:
            SparseMemory().load(0x100, 8)
        assert excinfo.value.cause == EXC_LOAD_ACCESS_FAULT
        assert excinfo.value.tval == 0x100

    def test_store_fault(self):
        with pytest.raises(Trap) as excinfo:
            SparseMemory().store(0x100, 1, 8)
        assert excinfo.value.cause == EXC_STORE_ACCESS_FAULT

    def test_fetch_fault(self):
        with pytest.raises(Trap) as excinfo:
            SparseMemory().fetch(0x100)
        assert excinfo.value.cause == EXC_INSTR_ACCESS_FAULT


class TestProgramLoading:
    def test_load_program_words(self):
        mem = SparseMemory()
        mem.load_program([0x11223344, 0xAABBCCDD], DRAM_BASE)
        assert mem.fetch(DRAM_BASE) == 0x11223344
        assert mem.fetch(DRAM_BASE + 4) == 0xAABBCCDD
