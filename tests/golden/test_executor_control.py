"""Executor control flow, CSR instructions, privilege and system ops."""

import pytest

from repro.golden.csr import MSTATUS_MPP_MASK
from repro.golden.exceptions import Trap, select_trap
from repro.golden.executor import execute
from repro.golden.memory import SparseMemory
from repro.golden.state import ArchState
from repro.isa.decoder import decode
from repro.isa.encoder import encode
from repro.isa.fields import to_unsigned
from repro.isa.spec import (
    CSR_MEPC,
    CSR_MSCRATCH,
    CSR_MSTATUS,
    DRAM_BASE,
    EXC_BREAKPOINT,
    EXC_ECALL_FROM_M,
    EXC_ECALL_FROM_U,
    EXC_ILLEGAL_INSTRUCTION,
    EXC_INSTR_MISALIGNED,
    EXC_LOAD_ACCESS_FAULT,
    EXC_LOAD_MISALIGNED,
    PRV_M,
    PRV_U,
)


def step(state, mnemonic, pc=DRAM_BASE, memory=None, **operands):
    instr = decode(encode(mnemonic, **operands))
    return execute(state, memory or SparseMemory(), instr, pc)


class TestBranches:
    @pytest.mark.parametrize("mnemonic,a,b,taken", [
        ("beq", 5, 5, True), ("beq", 5, 6, False),
        ("bne", 5, 6, True), ("bne", 5, 5, False),
        ("blt", to_unsigned(-1), 0, True), ("blt", 0, to_unsigned(-1), False),
        ("bge", 0, to_unsigned(-1), True), ("bge", to_unsigned(-1), 0, False),
        ("bltu", 0, to_unsigned(-1), True), ("bltu", to_unsigned(-1), 0, False),
        ("bgeu", to_unsigned(-1), 0, True), ("bgeu", 0, to_unsigned(-1), False),
    ])
    def test_taken_semantics(self, mnemonic, a, b, taken):
        state = ArchState()
        state.write_reg(1, a)
        state.write_reg(2, b)
        result = step(state, mnemonic, rs1=1, rs2=2, imm=16)
        expected = DRAM_BASE + (16 if taken else 4)
        assert result.next_pc == expected

    def test_backward_branch(self):
        state = ArchState()
        result = step(state, "beq", rs1=0, rs2=0, imm=-8)
        assert result.next_pc == DRAM_BASE - 8

    def test_taken_branch_to_misaligned_target_traps(self):
        state = ArchState()
        with pytest.raises(Trap) as excinfo:
            step(state, "beq", rs1=0, rs2=0, imm=2)
        assert excinfo.value.cause == EXC_INSTR_MISALIGNED
        assert excinfo.value.tval == DRAM_BASE + 2

    def test_not_taken_branch_to_misaligned_target_ok(self):
        state = ArchState()
        state.write_reg(1, 1)
        # beq x0, x1 with x1=1 is not taken; the misaligned target (pc+2)
        # must not trap because the branch does not transfer control.
        result = step(state, "beq", rs1=0, rs2=1, imm=2)
        assert result.next_pc == DRAM_BASE + 4


class TestJumps:
    def test_jal_links_and_jumps(self):
        state = ArchState()
        result = step(state, "jal", rd=1, imm=0x100)
        assert result.next_pc == DRAM_BASE + 0x100
        assert state.read_reg(1) == DRAM_BASE + 4

    def test_jalr_clears_low_bit(self):
        state = ArchState()
        state.write_reg(5, DRAM_BASE + 9)
        result = step(state, "jalr", rd=1, rs1=5, imm=0)
        assert result.next_pc == DRAM_BASE + 8

    def test_jalr_misaligned_target_traps(self):
        state = ArchState()
        state.write_reg(5, DRAM_BASE + 6)
        with pytest.raises(Trap) as excinfo:
            step(state, "jalr", rd=0, rs1=5, imm=0)
        assert excinfo.value.cause == EXC_INSTR_MISALIGNED

    def test_jal_x0_is_plain_jump(self):
        state = ArchState()
        result = step(state, "jal", rd=0, imm=8)
        assert result.next_pc == DRAM_BASE + 8
        assert state.read_reg(0) == 0


class TestCsrInstructions:
    def test_csrrw_swaps(self):
        state = ArchState()
        state.write_reg(1, 0xABC)
        step(state, "csrrw", rd=2, csr=CSR_MSCRATCH, rs1=1)
        assert state.read_reg(2) == 0                       # old value
        assert state.csr.raw_read(CSR_MSCRATCH) == 0xABC    # new value

    def test_csrrs_sets_bits(self):
        state = ArchState()
        state.csr.raw_write(CSR_MSCRATCH, 0b0011)
        state.write_reg(1, 0b0110)
        step(state, "csrrs", rd=2, csr=CSR_MSCRATCH, rs1=1)
        assert state.read_reg(2) == 0b0011
        assert state.csr.raw_read(CSR_MSCRATCH) == 0b0111

    def test_csrrc_clears_bits(self):
        state = ArchState()
        state.csr.raw_write(CSR_MSCRATCH, 0b1111)
        state.write_reg(1, 0b0101)
        step(state, "csrrc", rd=2, csr=CSR_MSCRATCH, rs1=1)
        assert state.csr.raw_read(CSR_MSCRATCH) == 0b1010

    def test_csrrs_x0_does_not_write(self):
        """csrrs with rs1=x0 must not perform a write (so reading read-only
        CSRs with csrr works)."""
        state = ArchState()
        result = step(state, "csrrs", rd=2, csr=0xF14, rs1=0)  # mhartid
        assert result.csr_write is None

    def test_csrrw_to_read_only_traps_even_with_x0(self):
        state = ArchState()
        with pytest.raises(Trap):
            step(state, "csrrw", rd=0, csr=0xF14, rs1=0)

    def test_csrrwi_uses_zimm(self):
        state = ArchState()
        step(state, "csrrwi", rd=0, csr=CSR_MSCRATCH, zimm=21)
        assert state.csr.raw_read(CSR_MSCRATCH) == 21

    def test_csrrci_zero_zimm_skips_write(self):
        state = ArchState()
        result = step(state, "csrrci", rd=2, csr=CSR_MSCRATCH, zimm=0)
        assert result.csr_write is None

    def test_user_mode_machine_csr_traps(self):
        state = ArchState()
        state.priv = PRV_U
        with pytest.raises(Trap) as excinfo:
            step(state, "csrrs", rd=1, csr=CSR_MSTATUS, rs1=0)
        assert excinfo.value.cause == EXC_ILLEGAL_INSTRUCTION


class TestSystem:
    def test_ecall_machine(self):
        state = ArchState()
        with pytest.raises(Trap) as excinfo:
            step(state, "ecall")
        assert excinfo.value.cause == EXC_ECALL_FROM_M

    def test_ecall_user(self):
        state = ArchState()
        state.priv = PRV_U
        with pytest.raises(Trap) as excinfo:
            step(state, "ecall")
        assert excinfo.value.cause == EXC_ECALL_FROM_U

    def test_ebreak(self):
        state = ArchState()
        with pytest.raises(Trap) as excinfo:
            step(state, "ebreak")
        assert excinfo.value.cause == EXC_BREAKPOINT

    def test_wfi_halts(self):
        state = ArchState()
        assert step(state, "wfi").halt

    def test_fence_is_noop(self):
        state = ArchState()
        result = step(state, "fence")
        assert result.next_pc == DRAM_BASE + 4
        assert not result.halt

    def test_mret_returns_to_mepc_with_mpp(self):
        state = ArchState()
        state.csr.enter_trap(cause=8, epc=0x8000_0040, tval=0, priv=PRV_U)
        result = step(state, "mret")
        assert result.next_pc == 0x8000_0040
        assert state.priv == PRV_U

    def test_mret_in_user_mode_is_illegal(self):
        state = ArchState()
        state.priv = PRV_U
        with pytest.raises(Trap) as excinfo:
            step(state, "mret")
        assert excinfo.value.cause == EXC_ILLEGAL_INSTRUCTION


class TestTrapSelection:
    def test_misaligned_beats_access_fault(self):
        chosen = select_trap([
            Trap(EXC_LOAD_ACCESS_FAULT, tval=1),
            Trap(EXC_LOAD_MISALIGNED, tval=1),
        ])
        assert chosen.cause == EXC_LOAD_MISALIGNED

    def test_breakpoint_highest(self):
        chosen = select_trap([
            Trap(EXC_LOAD_MISALIGNED),
            Trap(EXC_BREAKPOINT),
        ])
        assert chosen.cause == EXC_BREAKPOINT

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            select_trap([])
