"""CSR file: access control, WARL behaviour, counters, trap entry/return."""

import pytest

from repro.golden.csr import (
    CSRFile,
    MSTATUS_MIE,
    MSTATUS_MPIE,
    MSTATUS_MPP_MASK,
    MSTATUS_MPP_SHIFT,
)
from repro.golden.exceptions import Trap
from repro.isa import spec
from repro.isa.spec import PRV_M, PRV_U


class TestAccessControl:
    def test_read_machine_csr_from_user_traps(self):
        csr = CSRFile()
        with pytest.raises(Trap) as excinfo:
            csr.read(spec.CSR_MSTATUS, PRV_U)
        assert excinfo.value.cause == spec.EXC_ILLEGAL_INSTRUCTION

    def test_unimplemented_csr_traps(self):
        with pytest.raises(Trap):
            CSRFile().read(0x7C0, PRV_M)

    def test_write_read_only_traps(self):
        with pytest.raises(Trap):
            CSRFile().write(spec.CSR_MHARTID, 1, PRV_M)

    def test_user_counter_read_allowed_by_mcounteren(self):
        csr = CSRFile()
        assert csr.read(spec.CSR_CYCLE, PRV_U) == 0

    def test_user_counter_blocked_when_mcounteren_clear(self):
        csr = CSRFile()
        csr.write(spec.CSR_MCOUNTEREN, 0, PRV_M)
        with pytest.raises(Trap):
            csr.read(spec.CSR_CYCLE, PRV_U)
        # Machine mode is never blocked by mcounteren.
        assert csr.read(spec.CSR_CYCLE, PRV_M) == 0


class TestWarl:
    def test_misa_writes_ignored(self):
        csr = CSRFile()
        before = csr.read(spec.CSR_MISA, PRV_M)
        csr.write(spec.CSR_MISA, 0, PRV_M)
        assert csr.read(spec.CSR_MISA, PRV_M) == before

    def test_mtvec_forced_direct_mode(self):
        csr = CSRFile()
        csr.write(spec.CSR_MTVEC, 0x8000_0003, PRV_M)
        assert csr.read(spec.CSR_MTVEC, PRV_M) == 0x8000_0000

    def test_mepc_low_bit_clear(self):
        csr = CSRFile()
        csr.write(spec.CSR_MEPC, 0x8000_0001, PRV_M)
        assert csr.read(spec.CSR_MEPC, PRV_M) == 0x8000_0000

    def test_mstatus_only_modelled_bits(self):
        csr = CSRFile()
        csr.write(spec.CSR_MSTATUS, 0xFFFF_FFFF_FFFF_FFFF, PRV_M)
        value = csr.read(spec.CSR_MSTATUS, PRV_M)
        assert value & ~(MSTATUS_MIE | MSTATUS_MPIE | MSTATUS_MPP_MASK) == 0

    def test_mstatus_mpp_warl_snaps_to_machine(self):
        csr = CSRFile()
        csr.write(spec.CSR_MSTATUS, 0b01 << MSTATUS_MPP_SHIFT, PRV_M)  # S: invalid
        mpp = (csr.read(spec.CSR_MSTATUS, PRV_M) & MSTATUS_MPP_MASK) >> MSTATUS_MPP_SHIFT
        assert mpp == PRV_M

    def test_mstatus_mpp_user_allowed(self):
        csr = CSRFile()
        csr.write(spec.CSR_MSTATUS, 0, PRV_M)
        mpp = (csr.read(spec.CSR_MSTATUS, PRV_M) & MSTATUS_MPP_MASK) >> MSTATUS_MPP_SHIFT
        assert mpp == PRV_U


class TestCounters:
    def test_tick_advances_both(self):
        csr = CSRFile()
        csr.tick(cycles=3, instret=1)
        assert csr.read(spec.CSR_MCYCLE, PRV_M) == 3
        assert csr.read(spec.CSR_MINSTRET, PRV_M) == 1

    def test_user_aliases_reflect_machine_counters(self):
        csr = CSRFile()
        csr.tick(cycles=7, instret=7)
        assert csr.read(spec.CSR_CYCLE, PRV_M) == 7
        assert csr.read(spec.CSR_INSTRET, PRV_M) == 7
        assert csr.read(spec.CSR_TIME, PRV_M) == 7


class TestTrapEntryReturn:
    def test_enter_trap_records_state(self):
        csr = CSRFile()
        csr.write(spec.CSR_MSTATUS, MSTATUS_MIE, PRV_M)
        handler = csr.enter_trap(cause=5, epc=0x8000_0010, tval=0x123, priv=PRV_U)
        assert handler == csr.read(spec.CSR_MTVEC, PRV_M)
        assert csr.read(spec.CSR_MCAUSE, PRV_M) == 5
        assert csr.read(spec.CSR_MEPC, PRV_M) == 0x8000_0010
        assert csr.read(spec.CSR_MTVAL, PRV_M) == 0x123
        mstatus = csr.read(spec.CSR_MSTATUS, PRV_M)
        assert not mstatus & MSTATUS_MIE          # interrupts disabled
        assert mstatus & MSTATUS_MPIE             # old MIE stacked
        assert (mstatus & MSTATUS_MPP_MASK) >> MSTATUS_MPP_SHIFT == PRV_U

    def test_leave_trap_restores(self):
        csr = CSRFile()
        csr.write(spec.CSR_MSTATUS, MSTATUS_MIE, PRV_M)
        csr.enter_trap(cause=2, epc=0x8000_0020, tval=0, priv=PRV_U)
        priv, return_pc = csr.leave_trap()
        assert priv == PRV_U
        assert return_pc == 0x8000_0020
        assert csr.read(spec.CSR_MSTATUS, PRV_M) & MSTATUS_MIE  # MPIE restored
